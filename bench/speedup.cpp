// Regenerates the paper's two performance headlines (Secs IV-B, VI):
//   * software-only decoding is ~1.47x SLOWER than the uncompressed
//     baseline (kernel-level),
//   * the decoding unit makes the model ~1.35x FASTER overall.
// Every 3x3 binary convolution of the full-size ReActNet is simulated
// in the three execution variants on the A53-class timing model.
//
// The simulation consumes the engine's artifact view — the compressed
// streams compress() already produced — so simulate_speedup costs zero
// compression-pipeline work. Three self-checks pin the refactor:
//   1. the view-fed run bumps no pipeline instrumentation counter,
//   2. it beats the wall clock of the pre-refactor shape (a whole
//      compress_blocks pass per simulation, then the same simulation),
//   3. on an encoding-only engine — where re-compression is idempotent,
//      unlike re-clustering an already-clustered model, which is the
//      exact report drift the view removes — the view-fed report is
//      cycle-for-cycle identical to compress-then-simulate.
//
//   ./bench/speedup [--tiny]

#include <chrono>
#include <iostream>

#include "core/bkc.h"

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bkc;

  // --tiny swaps in the reduced test model so the CTest smoke run of
  // this binary finishes quickly.
  Engine engine(has_flag(argc, argv, "--tiny")
                    ? bnn::tiny_reactnet_config(/*seed=*/42)
                    : bnn::paper_reactnet_config(/*seed=*/42));
  engine.compress();

  std::cout << "Simulating 13 conv3x3 layers x 3 variants (sampled rows, "
               "this takes ~10s)...\n";

  // After: the artifact-view path Engine::simulate_speedup uses. The
  // instrumentation counters prove no pipeline primitive runs.
  const compress::PipelineCounters before_sim =
      compress::pipeline_counters();
  const auto after_start = clock_type::now();
  const hwsim::SpeedupReport report = engine.simulate_speedup();
  const double after_seconds = seconds_since(after_start);
  const compress::PipelineCounters sim_delta =
      compress::pipeline_counters().delta_since(before_sim);
  if (sim_delta.frequency_counts != 0 ||
      sim_delta.cluster_sequences_calls != 0 ||
      sim_delta.grouped_codec_builds != 0) {
    std::cerr << "speedup: SELF-CHECK FAILED — simulate_speedup ran "
                 "compression-pipeline work (frequency counts "
              << sim_delta.frequency_counts << ", clustering searches "
              << sim_delta.cluster_sequences_calls << ", codec builds "
              << sim_delta.grouped_codec_builds << ")\n";
    return 1;
  }

  // Before: an honest reconstruction of the pre-refactor
  // compare_model(model, compressor) cost — a full compression pass per
  // simulation, then the same view-fed simulation. (Its report is NOT
  // compared against `report` here: compress() installed clustered
  // kernels, and re-clustering a clustered model drifts — the very
  // simulated-vs-deployed mismatch the artifact view eliminates.)
  const auto before_start = clock_type::now();
  const compress::ModelCompressor compressor(
      engine.options().tree, engine.options().clustering_config);
  const auto recompressed =
      compressor.compress_blocks(engine.model(), /*apply_clustering=*/true);
  const hwsim::SpeedupReport legacy_report = hwsim::compare_model(
      compress::view_of(engine.model().op_records(), recompressed));
  const double before_seconds = seconds_since(before_start);
  if (legacy_report.total_baseline != report.total_baseline) {
    // Baseline cycles never depend on the streams, so these must agree.
    std::cerr << "speedup: SELF-CHECK FAILED — baseline cycles diverged "
                 "between the view-fed and reconstructed runs\n";
    return 1;
  }
  // The counter check above is the deterministic gate; the wall clock
  // backs it up with a tolerance so scheduler noise on a loaded box
  // cannot flake the smoke run (a regression that re-grew a compression
  // pass inside simulate_speedup would blow well past 1.25x).
  if (after_seconds >= before_seconds * 1.25) {
    std::cerr << "speedup: SELF-CHECK FAILED — view-fed simulation ("
              << after_seconds << " s) slower than compress-then-"
              << "simulate (" << before_seconds << " s)\n";
    return 1;
  }

  // Bit-identity leg, on an encoding-only engine: without clustering
  // the model keeps its original kernels and compression is a pure
  // function of them, so compress-then-simulate must reproduce the
  // view-fed report cycle-for-cycle.
  {
    EngineOptions plain_options;
    plain_options.clustering = false;
    Engine plain(engine.model().config(), plain_options);
    plain.compress();
    const hwsim::SpeedupReport via_view = plain.simulate_speedup();
    const auto replayed = compress::ModelCompressor(
                              plain.options().tree,
                              plain.options().clustering_config)
                              .compress_blocks(plain.model(),
                                               /*apply_clustering=*/false);
    const hwsim::SpeedupReport via_compress = hwsim::compare_model(
        compress::view_of(plain.model().op_records(), replayed));
    if (!hwsim::cycles_identical(via_view, via_compress)) {
      std::cerr << "speedup: SELF-CHECK FAILED — encoding-only view-fed "
                   "report diverged from compress-then-simulate\n";
      return 1;
    }
  }

  Table table({"layer", "baseline kcycles", "sw-decode kcycles",
               "hw-decode kcycles", "sw slowdown", "hw speedup"});
  for (const auto& layer : report.conv3x3) {
    table.row()
        .add(layer.name)
        .add(layer.baseline_cycles / 1000)
        .add(layer.sw_cycles / 1000)
        .add(layer.hw_cycles / 1000)
        .add(ratio_str(layer.sw_slowdown()))
        .add(ratio_str(layer.hw_speedup()));
  }
  table.print("Per-layer timing of the 3x3 binary convolutions");

  std::cout << "\nConv3x3 kernels only:\n";
  std::cout << "  software decode slowdown: "
            << ratio_str(report.conv3x3_sw_slowdown())
            << "   (paper Sec IV-B: 1.47x slower)\n";
  std::cout << "  hardware decode speedup:  "
            << ratio_str(report.conv3x3_hw_speedup()) << "\n";

  std::cout << "\nWhole model (including stem, 1x1 convs, activations, "
               "classifier):\n";
  std::cout << "  baseline: " << report.total_baseline / 1000000
            << " Mcycles, sw: " << report.total_sw / 1000000
            << " Mcycles, hw: " << report.total_hw / 1000000
            << " Mcycles\n";
  std::cout << "  software decode slowdown: "
            << ratio_str(report.model_sw_slowdown()) << "\n";
  std::cout << "  hardware decode speedup:  "
            << ratio_str(report.model_hw_speedup())
            << "   (paper Sec VI: 1.35x)\n";

  std::cout << "\nMechanism check (largest layer): the decoding unit must\n"
               "remove the baseline's weight-load stalls:\n";
  const auto& big = report.conv3x3.back();
  std::cout << "  " << big.name << ": baseline load stalls "
            << big.baseline_detail.load_stall_cycles << " cycles, hw ldps "
               "stalls "
            << big.hw_detail.ldps_stall_cycles << " cycles, DRAM accesses "
            << big.baseline_detail.dram_accesses << " -> "
            << big.hw_detail.dram_accesses << "\n";

  std::cout << "\nArtifact-view refactor: simulate from engine streams "
            << after_seconds << " s vs compress-then-simulate "
            << before_seconds << " s ("
            << ratio_str(before_seconds / after_seconds)
            << " — the duplicate compression pass the view removes); "
               "pipeline counters flat during simulation: yes\n";
  return 0;
}
