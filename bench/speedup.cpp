// Regenerates the paper's two performance headlines (Secs IV-B, VI):
//   * software-only decoding is ~1.47x SLOWER than the uncompressed
//     baseline (kernel-level),
//   * the decoding unit makes the model ~1.35x FASTER overall.
// Every 3x3 binary convolution of the full-size ReActNet is simulated
// in the three execution variants on the A53-class timing model.
//
// The simulation consumes the engine's artifact view — the compressed
// streams compress() already produced — so simulate_speedup costs zero
// compression-pipeline work. Three self-checks pin the refactor:
//   1. the view-fed run bumps no pipeline instrumentation counter,
//   2. it beats the wall clock of the pre-refactor shape (a whole
//      compress_blocks pass per simulation, then the same simulation),
//   3. on an encoding-only engine — where re-compression is idempotent,
//      unlike re-clustering an already-clustered model, which is the
//      exact report drift the view removes — the view-fed report is
//      cycle-for-cycle identical to compress-then-simulate.
//
// The bench ends with the sampled-simulation scaling section
// (hwsim/sampled.h): a DEEP schedule — every stride-1 non-expanding
// block of the MobileNet schedule repeated `--repeat` times — is timed
// exact vs sampled, with the sampled path gated on baseline
// bit-identity, <= 2% sw/hw cycle error against the exact oracle, flat
// pipeline counters, and (full-size only) >= 5x wall-clock advantage.
//
//   ./bench/speedup [--tiny] [--sampled] [--repeat R] [--threads N]
//
// --sampled skips the exact-path self-checks above and runs only the
// scaling section (the smoke_speedup_sampled CTest target).

#include <chrono>
#include <cmath>
#include <iostream>

#include "core/bkc.h"

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

double relative_error(std::uint64_t approx, std::uint64_t exact) {
  return std::abs(static_cast<double>(approx) - static_cast<double>(exact)) /
         static_cast<double>(exact);
}

/// The deep scaling configuration: the base schedule with every
/// stride-1 non-expanding block repeated `repeat` times. Repetition is
/// shape-safe (those blocks map in_channels -> in_channels at constant
/// resolution) and is exactly the regime sampling targets: many blocks
/// sharing a geometry whose streams differ only in their code-length
/// mix (the calibrated per-block Table II distributions cycle, so
/// repeats are NOT byte-identical streams).
bkc::bnn::ReActNetConfig deep_config(bool tiny, int repeat) {
  bkc::bnn::ReActNetConfig config =
      tiny ? bkc::bnn::tiny_reactnet_config(/*seed=*/42)
           : bkc::bnn::paper_reactnet_config(/*seed=*/42);
  std::vector<bkc::bnn::BlockConfig> deep;
  for (const auto& block : config.blocks) {
    deep.push_back(block);
    if (block.stride == 1 && block.out_channels == block.in_channels) {
      for (int r = 1; r < repeat; ++r) deep.push_back(block);
    }
  }
  config.blocks = std::move(deep);
  return config;
}

int run_sampled_section(bool tiny, int repeat, int num_threads) {
  using namespace bkc;
  const bnn::ReActNetConfig config = deep_config(tiny, repeat);
  std::cout << "\n=== Sampled simulation (BarrierPoint-style) ===\n"
            << "deep schedule: " << config.blocks.size()
            << " blocks (stride-1 non-expanding blocks x" << repeat
            << "), compressing...\n";
  Engine engine(config);
  engine.compress(num_threads);
  const compress::CompressedModelView view = engine.artifact_view();

  std::cout << "exact simulation of " << view.blocks.size()
            << " conv3x3 layers x 3 variants...\n";
  const auto exact_start = clock_type::now();
  const hwsim::SpeedupReport exact = hwsim::compare_model(view);
  const double exact_seconds = seconds_since(exact_start);

  // Sampled run through the Engine facade, serial like the exact run so
  // the wall-clock ratio measures the algorithm, not the thread pool.
  // The counter delta proves the sampled path is also pure consumption
  // of the artifact view.
  hwsim::SamplingConfig sampling_config;
  sampling_config.num_threads = 1;
  const compress::PipelineCounters before =
      compress::pipeline_counters();
  const auto sampled_start = clock_type::now();
  const hwsim::SampledSpeedupReport sampled =
      engine.simulate_speedup_sampled(sampling_config);
  const double sampled_seconds = seconds_since(sampled_start);
  const compress::PipelineCounters delta =
      compress::pipeline_counters().delta_since(before);
  if (delta.frequency_counts != 0 || delta.cluster_sequences_calls != 0 ||
      delta.grouped_codec_builds != 0) {
    std::cerr << "speedup: SELF-CHECK FAILED — sampled simulation ran "
                 "compression-pipeline work\n";
    return 1;
  }

  // The parallel fan-out must not change a single cycle.
  hwsim::SamplingConfig parallel_config = sampling_config;
  parallel_config.num_threads = 7;
  if (!hwsim::cycles_identical(
          engine.simulate_speedup_sampled(parallel_config).report,
          sampled.report)) {
    std::cerr << "speedup: SELF-CHECK FAILED — sampled report changed "
                 "with num_threads=7\n";
    return 1;
  }

  const hwsim::SamplingSummary& summary = sampled.summary;
  std::cout << "sampled: " << summary.simulated_blocks << " of "
            << summary.num_blocks << " blocks simulated ("
            << summary.num_clusters << " clusters over "
            << summary.num_geometry_groups
            << " geometry groups; max stream-bits skew "
            << summary.max_stream_bits_skew << ")\n";

  // Baseline cycles are memoized per exact geometry, never
  // extrapolated, so equality here is a hard gate, not a tolerance.
  if (sampled.report.total_baseline != exact.total_baseline) {
    std::cerr << "speedup: SELF-CHECK FAILED — sampled baseline cycles "
                 "diverged from exact ("
              << sampled.report.total_baseline << " vs "
              << exact.total_baseline << ")\n";
    return 1;
  }
  const double sw_error =
      relative_error(sampled.report.total_sw, exact.total_sw);
  const double hw_error =
      relative_error(sampled.report.total_hw, exact.total_hw);
  std::cout << "total cycles, exact vs sampled:\n"
            << "  baseline: " << exact.total_baseline / 1000000
            << " Mcycles vs " << sampled.report.total_baseline / 1000000
            << " Mcycles (identical by construction)\n"
            << "  sw:       " << exact.total_sw / 1000000 << " Mcycles vs "
            << sampled.report.total_sw / 1000000
            << " Mcycles (relative error " << sw_error << ")\n"
            << "  hw:       " << exact.total_hw / 1000000 << " Mcycles vs "
            << sampled.report.total_hw / 1000000
            << " Mcycles (relative error " << hw_error << ")\n";
  if (sw_error > 0.02 || hw_error > 0.02) {
    std::cerr << "speedup: SELF-CHECK FAILED — sampled cycle error above "
                 "2% (sw " << sw_error << ", hw " << hw_error << ")\n";
    return 1;
  }

  const double ratio = exact_seconds / sampled_seconds;
  std::cout << "wall clock: exact " << exact_seconds << " s, sampled "
            << sampled_seconds << " s — " << ratio_str(ratio)
            << " faster at <= 2% error\n";
  // The tiny fixture is too small for the ratio to be meaningful (both
  // runs finish in milliseconds); the full-size deep schedule must
  // show the >= 5x the sampling exists for.
  if (!tiny && ratio < 5.0) {
    std::cerr << "speedup: SELF-CHECK FAILED — sampled speedup "
              << ratio << "x below the 5x floor\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bkc;

  const bool tiny = has_flag(argc, argv, "--tiny");
  const int repeat = positive_flag_value(argc, argv, "--repeat", 8);
  const int num_threads = positive_flag_value(argc, argv, "--threads", 4);
  if (has_flag(argc, argv, "--sampled")) {
    return run_sampled_section(tiny, repeat, num_threads);
  }

  // --tiny swaps in the reduced test model so the CTest smoke run of
  // this binary finishes quickly.
  Engine engine(tiny ? bnn::tiny_reactnet_config(/*seed=*/42)
                     : bnn::paper_reactnet_config(/*seed=*/42));
  engine.compress();

  std::cout << "Simulating 13 conv3x3 layers x 3 variants (sampled rows, "
               "this takes ~10s)...\n";

  // After: the artifact-view path Engine::simulate_speedup uses. The
  // instrumentation counters prove no pipeline primitive runs.
  const compress::PipelineCounters before_sim =
      compress::pipeline_counters();
  const auto after_start = clock_type::now();
  const hwsim::SpeedupReport report = engine.simulate_speedup();
  const double after_seconds = seconds_since(after_start);
  const compress::PipelineCounters sim_delta =
      compress::pipeline_counters().delta_since(before_sim);
  if (sim_delta.frequency_counts != 0 ||
      sim_delta.cluster_sequences_calls != 0 ||
      sim_delta.grouped_codec_builds != 0) {
    std::cerr << "speedup: SELF-CHECK FAILED — simulate_speedup ran "
                 "compression-pipeline work (frequency counts "
              << sim_delta.frequency_counts << ", clustering searches "
              << sim_delta.cluster_sequences_calls << ", codec builds "
              << sim_delta.grouped_codec_builds << ")\n";
    return 1;
  }

  // Before: an honest reconstruction of the pre-refactor
  // compare_model(model, compressor) cost — a full compression pass per
  // simulation, then the same view-fed simulation. (Its report is NOT
  // compared against `report` here: compress() installed clustered
  // kernels, and re-clustering a clustered model drifts — the very
  // simulated-vs-deployed mismatch the artifact view eliminates.)
  const auto before_start = clock_type::now();
  const compress::ModelCompressor compressor(
      engine.options().tree, engine.options().clustering_config);
  const auto recompressed =
      compressor.compress_blocks(engine.model(), /*apply_clustering=*/true);
  const hwsim::SpeedupReport legacy_report = hwsim::compare_model(
      compress::view_of(engine.model().op_records(), recompressed));
  const double before_seconds = seconds_since(before_start);
  if (legacy_report.total_baseline != report.total_baseline) {
    // Baseline cycles never depend on the streams, so these must agree.
    std::cerr << "speedup: SELF-CHECK FAILED — baseline cycles diverged "
                 "between the view-fed and reconstructed runs\n";
    return 1;
  }
  // The counter check above is the deterministic gate; the wall clock
  // backs it up with a tolerance so scheduler noise on a loaded box
  // cannot flake the smoke run (a regression that re-grew a compression
  // pass inside simulate_speedup would blow well past 1.25x).
  if (after_seconds >= before_seconds * 1.25) {
    std::cerr << "speedup: SELF-CHECK FAILED — view-fed simulation ("
              << after_seconds << " s) slower than compress-then-"
              << "simulate (" << before_seconds << " s)\n";
    return 1;
  }

  // Bit-identity leg, on an encoding-only engine: without clustering
  // the model keeps its original kernels and compression is a pure
  // function of them, so compress-then-simulate must reproduce the
  // view-fed report cycle-for-cycle.
  {
    EngineOptions plain_options;
    plain_options.clustering = false;
    Engine plain(engine.model().config(), plain_options);
    plain.compress();
    const hwsim::SpeedupReport via_view = plain.simulate_speedup();
    const auto replayed = compress::ModelCompressor(
                              plain.options().tree,
                              plain.options().clustering_config)
                              .compress_blocks(plain.model(),
                                               /*apply_clustering=*/false);
    const hwsim::SpeedupReport via_compress = hwsim::compare_model(
        compress::view_of(plain.model().op_records(), replayed));
    if (!hwsim::cycles_identical(via_view, via_compress)) {
      std::cerr << "speedup: SELF-CHECK FAILED — encoding-only view-fed "
                   "report diverged from compress-then-simulate\n";
      return 1;
    }
  }

  Table table({"layer", "baseline kcycles", "sw-decode kcycles",
               "hw-decode kcycles", "sw slowdown", "hw speedup"});
  for (const auto& layer : report.conv3x3) {
    table.row()
        .add(layer.name)
        .add(layer.baseline_cycles / 1000)
        .add(layer.sw_cycles / 1000)
        .add(layer.hw_cycles / 1000)
        .add(ratio_str(layer.sw_slowdown()))
        .add(ratio_str(layer.hw_speedup()));
  }
  table.print("Per-layer timing of the 3x3 binary convolutions");

  std::cout << "\nConv3x3 kernels only:\n";
  std::cout << "  software decode slowdown: "
            << ratio_str(report.conv3x3_sw_slowdown())
            << "   (paper Sec IV-B: 1.47x slower)\n";
  std::cout << "  hardware decode speedup:  "
            << ratio_str(report.conv3x3_hw_speedup()) << "\n";

  std::cout << "\nWhole model (including stem, 1x1 convs, activations, "
               "classifier):\n";
  std::cout << "  baseline: " << report.total_baseline / 1000000
            << " Mcycles, sw: " << report.total_sw / 1000000
            << " Mcycles, hw: " << report.total_hw / 1000000
            << " Mcycles\n";
  std::cout << "  software decode slowdown: "
            << ratio_str(report.model_sw_slowdown()) << "\n";
  std::cout << "  hardware decode speedup:  "
            << ratio_str(report.model_hw_speedup())
            << "   (paper Sec VI: 1.35x)\n";

  std::cout << "\nMechanism check (largest layer): the decoding unit must\n"
               "remove the baseline's weight-load stalls:\n";
  const auto& big = report.conv3x3.back();
  std::cout << "  " << big.name << ": baseline load stalls "
            << big.baseline_detail.load_stall_cycles << " cycles, hw ldps "
               "stalls "
            << big.hw_detail.ldps_stall_cycles << " cycles, DRAM accesses "
            << big.baseline_detail.dram_accesses << " -> "
            << big.hw_detail.dram_accesses << "\n";

  std::cout << "\nArtifact-view refactor: simulate from engine streams "
            << after_seconds << " s vs compress-then-simulate "
            << before_seconds << " s ("
            << ratio_str(before_seconds / after_seconds)
            << " — the duplicate compression pass the view removes); "
               "pipeline counters flat during simulation: yes\n";

  return run_sampled_section(tiny, repeat, num_threads);
}
