// Regenerates the paper's two performance headlines (Secs IV-B, VI):
//   * software-only decoding is ~1.47x SLOWER than the uncompressed
//     baseline (kernel-level),
//   * the decoding unit makes the model ~1.35x FASTER overall.
// Every 3x3 binary convolution of the full-size ReActNet is simulated
// in the three execution variants on the A53-class timing model.

#include <iostream>

#include "core/bkc.h"

int main(int argc, char** argv) {
  using namespace bkc;

  // --tiny swaps in the reduced test model so the CTest smoke run of
  // this binary finishes in milliseconds.
  const bnn::ReActNet model(has_flag(argc, argv, "--tiny")
                                ? bnn::tiny_reactnet_config(/*seed=*/42)
                                : bnn::paper_reactnet_config(/*seed=*/42));
  const compress::ModelCompressor compressor;

  std::cout << "Simulating 13 conv3x3 layers x 3 variants (sampled rows, "
               "this takes ~10s)...\n";
  const hwsim::SpeedupReport report =
      hwsim::compare_model(model, compressor);

  Table table({"layer", "baseline kcycles", "sw-decode kcycles",
               "hw-decode kcycles", "sw slowdown", "hw speedup"});
  for (const auto& layer : report.conv3x3) {
    table.row()
        .add(layer.name)
        .add(layer.baseline_cycles / 1000)
        .add(layer.sw_cycles / 1000)
        .add(layer.hw_cycles / 1000)
        .add(ratio_str(layer.sw_slowdown()))
        .add(ratio_str(layer.hw_speedup()));
  }
  table.print("Per-layer timing of the 3x3 binary convolutions");

  std::cout << "\nConv3x3 kernels only:\n";
  std::cout << "  software decode slowdown: "
            << ratio_str(report.conv3x3_sw_slowdown())
            << "   (paper Sec IV-B: 1.47x slower)\n";
  std::cout << "  hardware decode speedup:  "
            << ratio_str(report.conv3x3_hw_speedup()) << "\n";

  std::cout << "\nWhole model (including stem, 1x1 convs, activations, "
               "classifier):\n";
  std::cout << "  baseline: " << report.total_baseline / 1000000
            << " Mcycles, sw: " << report.total_sw / 1000000
            << " Mcycles, hw: " << report.total_hw / 1000000
            << " Mcycles\n";
  std::cout << "  software decode slowdown: "
            << ratio_str(report.model_sw_slowdown()) << "\n";
  std::cout << "  hardware decode speedup:  "
            << ratio_str(report.model_hw_speedup())
            << "   (paper Sec VI: 1.35x)\n";

  std::cout << "\nMechanism check (largest layer): the decoding unit must\n"
               "remove the baseline's weight-load stalls:\n";
  const auto& big = report.conv3x3.back();
  std::cout << "  " << big.name << ": baseline load stalls "
            << big.baseline_detail.load_stall_cycles << " cycles, hw ldps "
               "stalls "
            << big.hw_detail.ldps_stall_cycles << " cycles, DRAM accesses "
            << big.baseline_detail.dram_accesses << " -> "
            << big.hw_detail.dram_accesses << "\n";
  return 0;
}
