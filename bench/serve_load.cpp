// Offered-load sweep over the serving stack (serve/registry.h +
// serve/scheduler.h): two tiny models resident in one ModelRegistry, an
// open-loop arrival process per load level, and per-request latency
// measured from submit() to future completion by a small waiter pool.
// Each level reports sustained QPS, p50/p99 latency and mean batch
// occupancy; requests rejected by admission control are counted, never
// retried (open-loop means rejects shed load instead of stretching the
// arrival schedule).
//
//   ./bench/serve_load [--tiny] [--json FILE] [--threads N] [--seed S]
//
// --json writes the sweep as BENCH_serve.json-style output (the
// checked-in file at the repo root is produced this way); --tiny
// shrinks the sweep for the CTest smoke run.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/bkc.h"
#include "serve/registry.h"
#include "serve/scheduler.h"
#include "util/json.h"

namespace {

using namespace bkc;
using Clock = std::chrono::steady_clock;

struct LevelResult {
  double offered_qps = 0.0;
  double sustained_qps = 0.0;
  std::int64_t completed = 0;
  std::int64_t rejected = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double occupancy = 0.0;
  double mean_queue_ms = 0.0;
};

struct SweepConfig {
  std::vector<double> offered_qps;
  int requests_per_level = 0;
  serve::SchedulerOptions scheduler;
};

// One request in flight: submit timestamp plus the future the waiter
// pool resolves. Latency is submit-to-completion wall time.
struct Inflight {
  Clock::time_point submitted;
  std::future<Tensor> future;
};

LevelResult run_level(const serve::ModelHandle& model_a,
                      const serve::ModelHandle& model_b, double offered_qps,
                      int num_requests, const serve::SchedulerOptions& options,
                      std::uint64_t seed) {
  serve::BatchScheduler scheduler(options);

  // Pre-sample the request images so sampling cost stays out of the
  // arrival loop.
  bnn::WeightGenerator gen(seed);
  std::vector<Tensor> images;
  images.reserve(static_cast<std::size_t>(num_requests));
  for (int i = 0; i < num_requests; ++i) {
    const serve::ModelHandle& model = (i % 2 == 0) ? model_a : model_b;
    images.push_back(
        gen.sample_activation(model->engine().model().input_shape()));
  }

  std::vector<Inflight> inflight(static_cast<std::size_t>(num_requests));
  std::vector<double> latencies_ms(static_cast<std::size_t>(num_requests),
                                   -1.0);

  // Waiter pool: resolves futures as they are handed over and stamps
  // the completion time. A handful of waiters keeps an out-of-order
  // completion from hiding behind an in-order get().
  std::atomic<int> next_to_wait{0};
  std::atomic<int> submitted_count{0};
  std::atomic<bool> submit_done{false};
  const int num_waiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(static_cast<std::size_t>(num_waiters));
  for (int w = 0; w < num_waiters; ++w) {
    waiters.emplace_back([&] {
      for (;;) {
        const int i = next_to_wait.fetch_add(1);
        if (i >= num_requests) return;
        // Spin until this slot has been submitted (or the arrival loop
        // finished without filling it because the request was rejected).
        while (i >= submitted_count.load(std::memory_order_acquire)) {
          if (submit_done.load(std::memory_order_acquire) &&
              i >= submitted_count.load(std::memory_order_acquire)) {
            return;
          }
          std::this_thread::yield();
        }
        auto& req = inflight[static_cast<std::size_t>(i)];
        if (!req.future.valid()) continue;  // rejected at admission
        req.future.wait();
        const auto done = Clock::now();
        latencies_ms[static_cast<std::size_t>(i)] =
            std::chrono::duration<double, std::milli>(done - req.submitted)
                .count();
      }
    });
  }

  // Open-loop arrivals: the schedule is fixed by the offered rate; a
  // reject sheds that request instead of delaying the next one.
  std::int64_t rejected = 0;
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / offered_qps));
  const auto start = Clock::now();
  auto next_arrival = start;
  for (int i = 0; i < num_requests; ++i) {
    std::this_thread::sleep_until(next_arrival);
    next_arrival += interval;
    const auto idx = static_cast<std::size_t>(i);
    const serve::ModelHandle& model = (i % 2 == 0) ? model_a : model_b;
    const std::string tenant = (i % 3 == 0) ? "tenant-x" : "tenant-y";
    auto& req = inflight[idx];
    req.submitted = Clock::now();
    try {
      req.future = scheduler.submit(model, tenant, images[idx]);
    } catch (const serve::RejectError&) {
      ++rejected;
    }
    submitted_count.store(i + 1, std::memory_order_release);
  }
  submit_done.store(true, std::memory_order_release);

  for (std::thread& t : waiters) t.join();
  const auto end = Clock::now();
  scheduler.stop();

  LevelResult result;
  result.offered_qps = offered_qps;
  result.rejected = rejected;
  std::vector<double> completed_ms;
  completed_ms.reserve(latencies_ms.size());
  for (double ms : latencies_ms) {
    if (ms >= 0.0) completed_ms.push_back(ms);
  }
  result.completed = static_cast<std::int64_t>(completed_ms.size());
  const double elapsed_s =
      std::chrono::duration<double>(end - start).count();
  result.sustained_qps =
      elapsed_s > 0.0 ? static_cast<double>(result.completed) / elapsed_s
                      : 0.0;
  if (!completed_ms.empty()) {
    result.p50_ms = percentile(completed_ms, 50.0);
    result.p99_ms = percentile(completed_ms, 99.0);
  }
  const serve::StatsSnapshot stats = scheduler.stats();
  result.occupancy = stats.total.batch_occupancy();
  result.mean_queue_ms = stats.total.mean_queue_ms();
  return result;
}

void write_json(const std::string& path, const SweepConfig& config,
                const std::vector<LevelResult>& results, int num_threads) {
  // Strict-JSON writer (util/json.h). The sweep math never produces a
  // non-finite value (percentile and RunningStats check finiteness),
  // so the default CheckError policy guards the division fallbacks.
  json::Writer w;
  w.begin_object();
  w.key("bench").value("serve_load");
  w.key("config").begin_object();
  w.key("models").value(2);
  w.key("threads").value(num_threads);
  w.key("max_batch").value(config.scheduler.max_batch);
  w.key("max_delay_us")
      .value(static_cast<std::int64_t>(config.scheduler.max_delay.count()));
  w.key("max_queue").value(config.scheduler.max_queue);
  w.key("requests_per_level").value(config.requests_per_level);
  w.end_object();
  w.key("levels").begin_array();
  for (const LevelResult& r : results) {
    w.begin_object();
    w.key("offered_qps").value(r.offered_qps);
    w.key("sustained_qps").value(r.sustained_qps);
    w.key("completed").value(static_cast<std::int64_t>(r.completed));
    w.key("rejected").value(static_cast<std::int64_t>(r.rejected));
    w.key("p50_ms").value(r.p50_ms);
    w.key("p99_ms").value(r.p99_ms);
    w.key("occupancy").value(r.occupancy);
    w.key("mean_queue_ms").value(r.mean_queue_ms);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::ofstream file(path);
  check(static_cast<bool>(file), "serve_load: cannot open " + path);
  file << w.str();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const bool tiny = has_flag(argc, argv, "--tiny");
    const std::string json_path = flag_string_value(argc, argv, "--json", "");
    const int num_threads = positive_flag_value(argc, argv, "--threads", 2);
    const auto seed = static_cast<std::uint64_t>(
        positive_flag_value(argc, argv, "--seed", 42));

    SweepConfig config;
    config.scheduler.max_batch = 8;
    config.scheduler.max_delay = std::chrono::milliseconds(4);
    config.scheduler.max_queue = 128;
    config.scheduler.num_threads = num_threads;
    if (tiny) {
      config.offered_qps = {100.0, 400.0};
      config.requests_per_level = 40;
    } else {
      config.offered_qps = {100.0, 200.0, 400.0, 800.0, 1600.0};
      config.requests_per_level = 400;
    }

    // Both models ride the tiny architecture: the serving overhead under
    // test (queueing, batching, admission) is model-size independent,
    // and tiny models keep the sweep's service time well under the
    // deadline so p99 is governed by max_delay, not compute.
    const std::string dir = std::filesystem::temp_directory_path().string();
    auto write_model = [&](const std::string& name, std::uint64_t s) {
      Engine engine(bnn::tiny_reactnet_config(s));
      engine.compress(num_threads);
      const std::string path = dir + "/" + name + ".bkcm";
      engine.save_compressed(path);
      return path;
    };
    const std::string path_a = write_model("serve_load_a", seed);
    const std::string path_b = write_model("serve_load_b", seed + 1);

    serve::ModelRegistry registry(num_threads);
    const serve::ModelHandle model_a = registry.open("model-a", path_a);
    const serve::ModelHandle model_b = registry.open("model-b", path_b);

    std::vector<LevelResult> results;
    for (double qps : config.offered_qps) {
      results.push_back(run_level(model_a, model_b, qps,
                                  config.requests_per_level, config.scheduler,
                                  seed + 7));
    }

    Table table({"offered QPS", "sustained QPS", "completed", "rejected",
                 "p50 ms", "p99 ms", "occupancy", "queue ms"});
    for (const LevelResult& r : results) {
      table.row()
          .add(r.offered_qps, 0)
          .add(r.sustained_qps, 1)
          .add(r.completed)
          .add(r.rejected)
          .add(r.p50_ms, 3)
          .add(r.p99_ms, 3)
          .add(percent_str(r.occupancy))
          .add(r.mean_queue_ms, 3);
    }
    table.print("Serving offered-load sweep (2 models, " +
                std::to_string(num_threads) + " threads)");

    if (!json_path.empty()) {
      write_json(json_path, config, results, num_threads);
      std::cout << "\nwrote " << json_path << "\n";
    }

    std::filesystem::remove(path_a);
    std::filesystem::remove(path_b);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "serve_load: " << e.what() << "\n";
    return 1;
  }
}
