// BKCM container throughput: save/load MB/s and size accounting.
//
// Measures the full container pipeline over an already-compressed
// engine: write_bkcm (serialize to a memory image), read_bkcm (parse +
// validate checksums) and Engine::load_compressed (parse + decode every
// kernel stream + rebuild the model), plus the on-disk size of the
// container against the raw bit-packed 3x3 storage it replaces. Before
// timing, a loaded engine is checked bit-identical to the writer
// (kernels and streams) — throughput of a broken round trip means
// nothing.
//
//   ./bench/serialize_throughput [--tiny] [--threads N] [--repeats N]
//                                [--file serialize_throughput.bkcm]
//
// Defaults: paper-width channels, 2 threads, best of 3 repeats.
// --tiny switches to the reduced test model for the CTest smoke run.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "core/bkc.h"

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

std::string mb_per_sec(std::uint64_t bytes, double seconds) {
  char out[32];
  std::snprintf(out, sizeof(out), "%.1f",
                static_cast<double>(bytes) / (1024.0 * 1024.0) / seconds);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bkc;

  const bool tiny = has_flag(argc, argv, "--tiny");
  const int num_threads = positive_flag_value(argc, argv, "--threads", 2);
  const int repeats = positive_flag_value(argc, argv, "--repeats", 3);
  const std::string path(flag_string_value(argc, argv, "--file",
                                           "serialize_throughput.bkcm"));

  Engine engine(tiny ? bnn::tiny_reactnet_config(/*seed=*/42)
                     : bnn::paper_reactnet_config(/*seed=*/42));
  const auto& report = engine.compress(num_threads);
  engine.save_compressed(path);
  const std::vector<std::uint8_t> image = read_file_bytes(path);

  // Correctness gate: the loaded engine must be bit-identical to the
  // writer before any throughput number means anything. (The comparison
  // is against the WRITER's kernels — an independent reference;
  // verify_streams on the loaded engine would be circular.)
  const Engine loaded = Engine::load_compressed(path, num_threads);
  for (std::size_t b = 0; b < engine.model().num_blocks(); ++b) {
    check(loaded.model().block(b).conv3x3().kernel() ==
              engine.model().block(b).conv3x3().kernel(),
          "serialize_throughput: loaded kernel diverged from the writer");
  }
  check(loaded.report().model_ratio == report.model_ratio,
        "serialize_throughput: loaded report diverged from the writer");
  std::cout << "Loaded engine bit-identical to the writer: yes\n\n";

  const auto best_of = [&](auto&& work) {
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < repeats; ++r) {
      const auto start = clock_type::now();
      work();
      best = std::min(best, seconds_since(start));
    }
    return best;
  };

  const compress::BkcmContents contents{
      .clustering = engine.options().clustering,
      .tree = engine.options().tree,
      .clustering_config = engine.options().clustering_config,
      .model_config = engine.model().config(),
      .report = report,
      .streams = engine.block_streams()};
  std::vector<std::uint8_t> sink;
  const double serialize_s =
      best_of([&] { sink = compress::write_bkcm(contents); });
  check(sink == image,
        "serialize_throughput: serialization is not deterministic");
  const double parse_s = best_of([&] {
    const compress::BkcmContents parsed = compress::read_bkcm(image);
    check(!parsed.streams.empty(), "serialize_throughput: empty parse");
  });
  const double load_serial_s =
      best_of([&] { Engine::load_compressed(path, 1); });
  const double load_parallel_s =
      best_of([&] { Engine::load_compressed(path, num_threads); });

  Table table({"stage", "seconds", "MB/s"});
  table.row().add("write_bkcm (memory)").add(serialize_s, 4).add(
      mb_per_sec(image.size(), serialize_s));
  table.row().add("read_bkcm (parse+crc)").add(parse_s, 4).add(
      mb_per_sec(image.size(), parse_s));
  table.row()
      .add("Engine::load_compressed, 1 thread")
      .add(load_serial_s, 4)
      .add(mb_per_sec(image.size(), load_serial_s));
  table.row()
      .add("Engine::load_compressed, " + std::to_string(num_threads) +
           " threads")
      .add(load_parallel_s, 4)
      .add(mb_per_sec(image.size(), load_parallel_s));
  table.print("BKCM throughput (best of " + std::to_string(repeats) + ")");

  // Size accounting: the container against the raw bit-packed 3x3
  // kernels it replaces (the paper's Table V storage story, now on
  // disk). The container also carries the config, report and decode
  // tables — the overhead column makes that visible.
  const std::uint64_t raw_3x3_bytes = report.conv3x3_bits / 8;
  const std::uint64_t stream_bytes =
      (engine.options().clustering ? report.conv3x3_clustering_bits
                                   : report.conv3x3_encoding_bits) /
      8;
  Table sizes({"artifact", "bytes", "vs raw 3x3"});
  sizes.row().add("raw bit-packed 3x3 kernels").add(
      std::to_string(raw_3x3_bytes)).add("1.00x");
  sizes.row().add("kernel streams (payload)").add(
      std::to_string(stream_bytes)).add(
      ratio_str(static_cast<double>(raw_3x3_bytes) /
                static_cast<double>(stream_bytes)));
  sizes.row().add("BKCM container (total)").add(
      std::to_string(image.size())).add(
      ratio_str(static_cast<double>(raw_3x3_bytes) /
                static_cast<double>(image.size())));
  std::cout << "\n";
  sizes.print("Container size");
  std::cout << "\n(container total includes config, report, frequency "
               "tables, remaps and decode tables on top of the streams)\n";
  return 0;
}
