// Regenerates Table II of the paper: the share of occurrences covered
// by the top-64 and top-256 bit sequences in each basic block's 3x3
// kernels.

#include <iostream>

#include "core/bkc.h"

int main(int argc, char** argv) {
  using namespace bkc;

  // --tiny swaps in the reduced test model so the CTest smoke run of
  // this binary finishes in milliseconds.
  const bnn::ReActNet model(has_flag(argc, argv, "--tiny")
                                ? bnn::tiny_reactnet_config(/*seed=*/42)
                                : bnn::paper_reactnet_config(/*seed=*/42));
  const auto& paper = bnn::paper_table2_targets();

  Table table({"Layer", "Top 64 (ours)", "Top 64 (paper)",
               "Top 256 (ours)", "Top 256 (paper)", "sequences"});
  double max_abs_err64 = 0.0;
  double max_abs_err256 = 0.0;
  for (std::size_t b = 0; b < model.num_blocks(); ++b) {
    const auto freq = compress::FrequencyTable::from_kernel(
        model.block(b).conv3x3().kernel());
    const double top64 = freq.top_k_share(64);
    const double top256 = freq.top_k_share(256);
    max_abs_err64 = std::max(max_abs_err64,
                             std::abs(top64 - paper[b].top64));
    max_abs_err256 = std::max(max_abs_err256,
                              std::abs(top256 - paper[b].top256));
    table.row()
        .add("Block " + std::to_string(b + 1))
        .add(percent_str(top64))
        .add(percent_str(paper[b].top64))
        .add(percent_str(top256))
        .add(percent_str(paper[b].top256))
        .add(freq.total());
  }
  table.print("Table II - distribution of bit sequences per basic block");

  std::cout << "\nLargest deviation from the paper: top-64 "
            << percent_str(max_abs_err64) << ", top-256 "
            << percent_str(max_abs_err256)
            << " (finite-sample noise; the weight generator is fitted to\n"
               "the paper's targets and converges with channel count).\n";
  return 0;
}
