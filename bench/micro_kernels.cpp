// Microbenchmarks (google-benchmark) of the primitive operations:
// xnor/popcount convolution throughput, codec encode/decode rates,
// frequency analysis and the bit stream - the building blocks whose
// costs the timing model abstracts.

#include <benchmark/benchmark.h>

#include "core/bkc.h"

namespace {

using namespace bkc;

bnn::PackedKernel make_kernel(std::int64_t channels, std::uint64_t seed) {
  bnn::WeightGenerator gen(seed);
  const auto dist =
      bnn::SequenceDistribution::fitted({0.645, 0.951});
  return gen.sample_kernel3x3(channels, channels, dist);
}

void BM_BinaryConv3x3(benchmark::State& state) {
  const std::int64_t channels = state.range(0);
  const std::int64_t size = 14;
  bnn::WeightGenerator gen(3);
  const auto input =
      bnn::pack_feature(gen.sample_activation({channels, size, size}));
  const auto kernel = make_kernel(channels, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bnn::binary_conv2d(input, kernel, {.stride = 1, .padding = 1}));
  }
  const auto macs = static_cast<double>(
      channels * channels * 9 * size * size);
  state.counters["GMAC/s"] = benchmark::Counter(
      macs, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(BM_BinaryConv3x3)->Arg(64)->Arg(128)->Arg(256);

void BM_GroupedEncode(benchmark::State& state) {
  const auto kernel = make_kernel(128, 7);
  const auto table = compress::FrequencyTable::from_kernel(kernel);
  const compress::GroupedHuffmanCodec codec(table);
  const auto sequences = bnn::extract_sequences(kernel);
  for (auto _ : state) {
    std::size_t bits = 0;
    benchmark::DoNotOptimize(codec.encode(sequences, bits));
  }
  state.counters["seq/s"] = benchmark::Counter(
      static_cast<double>(sequences.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_GroupedEncode);

void BM_GroupedDecode(benchmark::State& state) {
  const auto kernel = make_kernel(128, 9);
  const auto table = compress::FrequencyTable::from_kernel(kernel);
  const compress::GroupedHuffmanCodec codec(table);
  const auto compressed = compress::compress_kernel(kernel, codec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compress::decompress_kernel(compressed, codec));
  }
  state.counters["seq/s"] = benchmark::Counter(
      static_cast<double>(compressed.num_sequences()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_GroupedDecode);

void BM_FullHuffmanDecode(benchmark::State& state) {
  const auto kernel = make_kernel(128, 11);
  const auto table = compress::FrequencyTable::from_kernel(kernel);
  const auto codec = compress::HuffmanCodec::build(table);
  const auto sequences = bnn::extract_sequences(kernel);
  std::size_t bits = 0;
  const auto stream = codec.encode(sequences, bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode(stream, bits, sequences.size()));
  }
  state.counters["seq/s"] = benchmark::Counter(
      static_cast<double>(sequences.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_FullHuffmanDecode);

void BM_FrequencyAnalysis(benchmark::State& state) {
  const auto kernel = make_kernel(256, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compress::FrequencyTable::from_kernel(kernel));
  }
}
BENCHMARK(BM_FrequencyAnalysis);

void BM_ClusteringPass(benchmark::State& state) {
  const auto kernel = make_kernel(256, 15);
  const auto table = compress::FrequencyTable::from_kernel(kernel);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compress::cluster_sequences(table, {}));
  }
}
BENCHMARK(BM_ClusteringPass);

void BM_BitstreamWrite(benchmark::State& state) {
  for (auto _ : state) {
    BitWriter writer;
    for (int i = 0; i < 10000; ++i) {
      writer.write_bits(static_cast<std::uint64_t>(i) & 0x7F, 7);
    }
    benchmark::DoNotOptimize(writer.take());
  }
  state.counters["bits/s"] = benchmark::Counter(
      70000.0, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(BM_BitstreamWrite);

}  // namespace
