// Microbenchmarks (google-benchmark) of the primitive operations:
// xnor/popcount convolution throughput (one series per registered
// kernel variant), codec encode/decode rates (bit-serial reference vs
// the table-driven multi-symbol path), frequency analysis and the bit
// stream - the building blocks whose costs the timing model abstracts.
//
// Every dispatchable variant is gated by a bit-identity self-check
// against its scalar reference before any timing runs, so a number in
// BENCH_kernels.json always describes a *correct* kernel.
//
// Custom main: `--json out.json` is shorthand for google-benchmark's
// --benchmark_out=out.json --benchmark_out_format=json; the checked-in
// BENCH_kernels.json at the repo root is produced this way.

#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bnn/bconv_kernels.h"
#include "core/bkc.h"

namespace {

using namespace bkc;

bnn::PackedKernel make_kernel(std::int64_t channels, std::uint64_t seed) {
  bnn::WeightGenerator gen(seed);
  const auto dist =
      bnn::SequenceDistribution::fitted({0.645, 0.951});
  return gen.sample_kernel3x3(channels, channels, dist);
}

bool bit_identical(const Tensor& a, const Tensor& b) {
  return a.data().size_bytes() == b.data().size_bytes() &&
         std::memcmp(a.data().data(), b.data().data(),
                     a.data().size_bytes()) == 0;
}

// One series per registered conv kernel, pinned via the override so
// every variant is measured from the same binary. The 96-channel arg is
// the tail-mask case (1.5 words per pixel); the others are full words.
void BM_BinaryConv3x3(benchmark::State& state,
                      const bnn::ConvKernelInfo& info) {
  const std::int64_t channels = state.range(0);
  const std::int64_t size = 14;
  bnn::WeightGenerator gen(3);
  const auto input =
      bnn::pack_feature(gen.sample_activation({channels, size, size}));
  const auto kernel = make_kernel(channels, 5);
  const ConvGeometry geometry{.stride = 1, .padding = 1};

  Tensor reference;
  {
    bnn::ScopedConvKernelOverride pin(bnn::scalar_conv_kernel());
    reference = bnn::binary_conv2d(input, kernel, geometry);
  }
  bnn::ScopedConvKernelOverride pin(info);
  if (!bit_identical(bnn::binary_conv2d(input, kernel, geometry),
                     reference)) {
    state.SkipWithError("kernel variant is not bit-identical to scalar");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bnn::binary_conv2d(input, kernel, geometry));
  }
  const auto macs = static_cast<double>(
      channels * channels * 9 * size * size);
  state.counters["GMAC/s"] = benchmark::Counter(
      macs, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}

void BM_GroupedEncode(benchmark::State& state) {
  const auto kernel = make_kernel(128, 7);
  const auto table = compress::FrequencyTable::from_kernel(kernel);
  const compress::GroupedHuffmanCodec codec(table);
  const auto sequences = bnn::extract_sequences(kernel);
  for (auto _ : state) {
    std::size_t bits = 0;
    benchmark::DoNotOptimize(codec.encode(sequences, bits));
  }
  state.counters["seq/s"] = benchmark::Counter(
      static_cast<double>(sequences.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_GroupedEncode);

// The two decode paths over the same stream: `scalar` walks the node
// prefix bit by bit (decode_one), `multi` resolves a 12-bit window per
// table lookup (compress/multi_decode.h).
void BM_GroupedDecode(benchmark::State& state, bool multi) {
  const auto kernel = make_kernel(128, 9);
  const auto table = compress::FrequencyTable::from_kernel(kernel);
  const compress::GroupedHuffmanCodec codec(table);
  const auto sequences = bnn::extract_sequences(kernel);
  std::size_t bits = 0;
  const auto stream = codec.encode(sequences, bits);
  if (codec.decode_scalar(stream, bits, sequences.size()) != sequences ||
      codec.decode_multi(stream, bits, sequences.size()) != sequences) {
    state.SkipWithError("decode paths disagree with the encoded input");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        multi ? codec.decode_multi(stream, bits, sequences.size())
              : codec.decode_scalar(stream, bits, sequences.size()));
  }
  state.counters["seq/s"] = benchmark::Counter(
      static_cast<double>(sequences.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_FullHuffmanDecode(benchmark::State& state) {
  const auto kernel = make_kernel(128, 11);
  const auto table = compress::FrequencyTable::from_kernel(kernel);
  const auto codec = compress::HuffmanCodec::build(table);
  const auto sequences = bnn::extract_sequences(kernel);
  std::size_t bits = 0;
  const auto stream = codec.encode(sequences, bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode(stream, bits, sequences.size()));
  }
  state.counters["seq/s"] = benchmark::Counter(
      static_cast<double>(sequences.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_FullHuffmanDecode);

void BM_FrequencyAnalysis(benchmark::State& state) {
  const auto kernel = make_kernel(256, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compress::FrequencyTable::from_kernel(kernel));
  }
}
BENCHMARK(BM_FrequencyAnalysis);

void BM_ClusteringPass(benchmark::State& state) {
  const auto kernel = make_kernel(256, 15);
  const auto table = compress::FrequencyTable::from_kernel(kernel);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compress::cluster_sequences(table, {}));
  }
}
BENCHMARK(BM_ClusteringPass);

void BM_BitstreamWrite(benchmark::State& state) {
  for (auto _ : state) {
    BitWriter writer;
    for (int i = 0; i < 10000; ++i) {
      writer.write_bits(static_cast<std::uint64_t>(i) & 0x7F, 7);
    }
    benchmark::DoNotOptimize(writer.take());
  }
  state.counters["bits/s"] = benchmark::Counter(
      70000.0, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(BM_BitstreamWrite);

void register_variant_benchmarks() {
  for (const bnn::ConvKernelInfo& info : bnn::conv_kernels()) {
    const std::string name = std::string("BM_BinaryConv3x3/") + info.name;
    benchmark::RegisterBenchmark(
        name.c_str(),
        [&info](benchmark::State& state) { BM_BinaryConv3x3(state, info); })
        ->Arg(64)
        ->Arg(96)  // tail-mask: channels not a multiple of 64
        ->Arg(128)
        ->Arg(256);
  }
  for (const bool multi : {false, true}) {
    const std::string name =
        std::string("BM_GroupedDecode/") + (multi ? "multi" : "scalar");
    benchmark::RegisterBenchmark(
        name.c_str(),
        [multi](benchmark::State& state) { BM_GroupedDecode(state, multi); });
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Translate `--json FILE` into google-benchmark's spelling; everything
  // else passes through untouched.
  std::vector<char*> args;
  std::vector<std::string> storage;
  storage.reserve(static_cast<std::size_t>(argc) + 2);
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" || arg.rfind("--json=", 0) == 0) {
      // A missing or empty file name used to fall through to
      // google-benchmark (confusing "unrecognized argument" or a
      // --benchmark_out= with no path); reject it by name instead.
      const std::string file =
          arg == "--json" ? (i + 1 < argc ? argv[++i] : "") : arg.substr(7);
      if (file.empty()) {
        std::cerr << "micro_kernels: --json requires a file name\n";
        return 2;
      }
      storage.push_back("--benchmark_out=" + file);
      storage.push_back("--benchmark_out_format=json");
    } else {
      storage.push_back(arg);
    }
  }
  for (std::string& s : storage) args.push_back(s.data());
  int args_count = static_cast<int>(args.size());

  register_variant_benchmarks();
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
