// Regenerates Table V of the paper: the compression ratio of each basic
// block's 3x3 kernel, for encoding-only and for clustering + encoding,
// plus the whole-model compression (the paper's 1.32x kernels / 1.2x
// model headline).

#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/bkc.h"
#include "util/json.h"

int main(int argc, char** argv) {
  using namespace bkc;

  // --tiny swaps in the reduced test model so the CTest smoke run of
  // this binary finishes in milliseconds. --json FILE additionally
  // writes the per-block ratios machine-readably.
  const bool tiny = has_flag(argc, argv, "--tiny");
  const std::string json_path(flag_string_value(argc, argv, "--json", ""));
  const bnn::ReActNet model(tiny ? bnn::tiny_reactnet_config(/*seed=*/42)
                                 : bnn::paper_reactnet_config(/*seed=*/42));
  const compress::ModelCompressor compressor;
  const compress::ModelReport report = compressor.analyze(model);

  // Paper Table V.
  const double paper_encoding[] = {1.18, 1.22, 1.21, 1.21, 1.19, 1.20, 1.18,
                                   1.20, 1.20, 1.18, 1.19, 1.25, 1.22};
  const double paper_clustering[] = {1.30, 1.30, 1.31, 1.32, 1.30, 1.33, 1.33,
                                     1.32, 1.31, 1.32, 1.33, 1.36, 1.35};

  Table table({"Layer", "Encoding (ours)", "Encoding (paper)",
               "Clustering (ours)", "Clustering (paper)", "Huffman bound"});
  for (std::size_t b = 0; b < report.blocks.size(); ++b) {
    const auto& block = report.blocks[b];
    table.row()
        .add("Block " + std::to_string(b + 1))
        .add(block.encoding_ratio)
        .add(paper_encoding[b])
        .add(block.clustering_ratio)
        .add(paper_clustering[b])
        .add(block.huffman_ratio);
  }
  table.print("Table V - compression ratio per basic block");

  std::cout << "\nMean encoding ratio:    "
            << ratio_str(report.mean_encoding_ratio)
            << "   (paper: 1.18-1.25)\n";
  std::cout << "Mean clustering ratio:  "
            << ratio_str(report.mean_clustering_ratio)
            << "   (paper: 1.32x average)\n";
  std::cout << "Whole-model compression: " << ratio_str(report.model_ratio)
            << "  (paper: 1.2x)\n";
  std::cout << "  with decode tables charged: "
            << ratio_str(report.model_ratio_with_tables) << " ("
            << bits_str(report.decode_table_bits) << " of tables)\n";

  // Node shares: the paper quotes 46/24/23/5 before and 65/25/8/0.6
  // after clustering.
  const auto& mid = report.blocks[6];
  std::cout << "\nNode frequency shares, block 7 (code lengths 6/8/9/12):\n"
            << "  encoding:   ";
  for (double share : mid.node_shares_encoding) {
    std::cout << percent_str(share) << " ";
  }
  std::cout << " (paper: 46% 24% 23% 5%)\n  clustering: ";
  for (double share : mid.node_shares_clustering) {
    std::cout << percent_str(share) << " ";
  }
  std::cout << " (paper: 65% 25% 8% 0.6%)\n";
  std::cout << "\nSee EXPERIMENTS.md for why the encoding-only column is\n"
               "bounded by Table II consistency.\n";

  if (!json_path.empty()) {
    // Strict-JSON emitter (util/json.h): locale-independent round-trip
    // doubles; a non-finite ratio would be a CheckError, not bad JSON.
    json::Writer w;
    w.begin_object();
    w.key("bench").value("table5_compression");
    w.key("model").value(tiny ? "tiny" : "paper");
    w.key("blocks").begin_array();
    for (std::size_t b = 0; b < report.blocks.size(); ++b) {
      const auto& block = report.blocks[b];
      w.begin_object();
      w.key("block").value(static_cast<std::uint64_t>(b + 1));
      w.key("encoding_ratio").value(block.encoding_ratio);
      w.key("clustering_ratio").value(block.clustering_ratio);
      w.key("huffman_ratio").value(block.huffman_ratio);
      w.key("flipped_bit_fraction").value(block.flipped_bit_fraction);
      w.end_object();
    }
    w.end_array();
    w.key("mean_encoding_ratio").value(report.mean_encoding_ratio);
    w.key("mean_clustering_ratio").value(report.mean_clustering_ratio);
    w.key("model_ratio").value(report.model_ratio);
    w.key("model_ratio_with_tables").value(report.model_ratio_with_tables);
    w.end_object();
    std::ofstream out(json_path);
    check(static_cast<bool>(out),
          "table5_compression: cannot open " + json_path);
    out << w.str();
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
