// Batched-inference throughput: images/sec vs thread count.
//
// Measures Engine::classify_batch on a batch of synthetic images for a
// range of thread counts (1, 2, 4, ... up to --threads) and reports
// images/sec plus the speedup over the single-threaded run. Before
// timing, the batch outputs are checked bit-identical against serial
// classify() - the determinism guarantee the throughput layer rides on.
//
//   ./bench/throughput [--tiny] [--threads N] [--images N]
//
// Defaults: paper-width channels at 64x64 input, 8 images, threads up
// to 4. --tiny switches to the reduced test model for the CTest smoke
// run.

#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <vector>

#include "core/bkc.h"

int main(int argc, char** argv) {
  using namespace bkc;
  using clock = std::chrono::steady_clock;

  const bool tiny = has_flag(argc, argv, "--tiny");
  const int max_threads = positive_flag_value(argc, argv, "--threads", 4);
  const int num_images = positive_flag_value(argc, argv, "--images", 8);

  bnn::ReActNetConfig config = tiny ? bnn::tiny_reactnet_config(/*seed=*/42)
                                    : bnn::paper_reactnet_config(/*seed=*/42);
  config.input_size = tiny ? 32 : 64;

  Engine engine(config);
  engine.compress(max_threads);
  std::cout << "Model: " << engine.model().num_blocks() << " blocks, input "
            << engine.model().input_shape().to_string() << ", batch of "
            << num_images << " images\n\n";

  bnn::WeightGenerator gen(7);
  std::vector<Tensor> images;
  images.reserve(static_cast<std::size_t>(num_images));
  for (int i = 0; i < num_images; ++i) {
    images.push_back(gen.sample_activation(engine.model().input_shape()));
  }

  // Correctness gate: the parallel batch must be bit-identical to the
  // serial path before its timing means anything.
  std::vector<Tensor> serial;
  serial.reserve(images.size());
  const auto serial_start = clock::now();
  for (const Tensor& image : images) serial.push_back(engine.classify(image));
  const double serial_seconds =
      std::chrono::duration<double>(clock::now() - serial_start).count();
  const auto parallel_check = engine.classify_batch(images, max_threads);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const auto a = serial[i].data();
    const auto b = parallel_check[i].data();
    check(a.size() == b.size() &&
              std::memcmp(a.data(), b.data(), a.size_bytes()) == 0,
          "throughput: classify_batch diverged from serial classify");
  }
  std::cout << "Batch outputs bit-identical to serial classify: yes\n\n";

  std::vector<int> thread_counts;
  for (int t = 1; t < max_threads; t *= 2) thread_counts.push_back(t);
  thread_counts.push_back(max_threads);

  Table table({"threads", "seconds", "images/sec", "speedup"});
  double base_seconds = 0.0;
  for (int threads : thread_counts) {
    const auto start = clock::now();
    const auto scores = engine.classify_batch(images, threads);
    const double seconds =
        std::chrono::duration<double>(clock::now() - start).count();
    if (threads == 1) base_seconds = seconds;
    const double ips = static_cast<double>(num_images) / seconds;
    table.row()
        .add(threads)
        .add(seconds, 4)
        .add(ips, 1)
        .add(base_seconds > 0.0 ? ratio_str(base_seconds / seconds)
                                : std::string("-"));
  }
  table.print("classify_batch throughput (serial loop: " +
              std::to_string(serial_seconds) + " s)");
  std::cout << "\nNote: speedup saturates at the machine's core count; the\n"
               "partitioning (and therefore every score) is identical at\n"
               "every thread count.\n";
  return 0;
}
