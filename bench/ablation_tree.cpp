// Ablation: the simplified-tree design point (Sec III-B / Sec VI).
//
// The paper claims the 4-node tree is "a good trade-off between
// simplicity and compression rate". This bench quantifies that claim:
// mean compression ratio over all 13 blocks for trees of different
// shapes, against the full canonical Huffman code (the optimum) and the
// fixed 9-bit baseline, together with the decode-table storage each
// tree needs (the hardware cost axis).

#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "core/bkc.h"
#include "util/json.h"

int main(int argc, char** argv) {
  using namespace bkc;

  // --tiny swaps in the reduced test model so the CTest smoke run of
  // this binary finishes in milliseconds. --json FILE additionally
  // writes the sweep machine-readably (the codec shoot-out snapshot
  // BENCH_codecs.json follows the same idiom).
  const bool tiny = has_flag(argc, argv, "--tiny");
  const std::string json_path(flag_string_value(argc, argv, "--json", ""));
  const bnn::ReActNet model(tiny ? bnn::tiny_reactnet_config(/*seed=*/42)
                                 : bnn::paper_reactnet_config(/*seed=*/42));

  struct TreePoint {
    std::string name;
    compress::GroupedTreeConfig config;
  };
  const std::vector<TreePoint> trees = {
      {"fixed 9-bit (no compression)", compress::GroupedTreeConfig::fixed9()},
      {"2 nodes {6,9}", {.index_bits = {6, 9}}},
      {"3 nodes {5,6,9}", {.index_bits = {5, 6, 9}}},
      {"4 nodes {5,6,6,9} (paper)", compress::GroupedTreeConfig::paper()},
      {"5 nodes {4,5,6,6,9}", {.index_bits = {4, 5, 6, 6, 9}}},
      {"6 nodes {3,4,5,6,6,9}", {.index_bits = {3, 4, 5, 6, 6, 9}}},
  };

  Table table({"tree", "mean ratio (clustered)", "mean ratio (encoding)",
               "table bits/block", "vs full Huffman"});
  // Full-Huffman reference on the clustered alphabets.
  std::vector<double> huffman_ratios;
  {
    const compress::ModelCompressor compressor;
    const auto report = compressor.analyze(model);
    for (const auto& block : report.blocks) {
      huffman_ratios.push_back(block.huffman_ratio);
    }
  }
  const double huffman_mean = mean(huffman_ratios);

  // Strict-JSON emitter (util/json.h): tree names contain quotes-free
  // text today, but escaping and round-trip doubles are no longer this
  // bench's problem. Built alongside the table; written only on --json.
  json::Writer json_out;
  json_out.begin_object();
  json_out.key("bench").value("ablation_tree");
  json_out.key("model").value(tiny ? "tiny" : "paper");
  json_out.key("full_huffman_mean").value(huffman_mean);
  json_out.key("trees").begin_array();
  for (std::size_t t = 0; t < trees.size(); ++t) {
    const auto& tree = trees[t];
    const compress::ModelCompressor compressor(tree.config, {});
    const auto report = compressor.analyze(model);
    table.row()
        .add(tree.name)
        .add(report.mean_clustering_ratio)
        .add(report.mean_encoding_ratio)
        .add(report.decode_table_bits / report.blocks.size())
        .add(percent_str(report.mean_clustering_ratio / huffman_mean));
    json_out.begin_object();
    json_out.key("tree").value(tree.name);
    json_out.key("mean_clustering_ratio").value(report.mean_clustering_ratio);
    json_out.key("mean_encoding_ratio").value(report.mean_encoding_ratio);
    json_out.key("table_bits_per_block")
        .value(report.decode_table_bits / report.blocks.size());
    json_out.key("fraction_of_huffman")
        .value(report.mean_clustering_ratio / huffman_mean);
    json_out.end_object();
  }
  json_out.end_array();
  json_out.end_object();
  table.print("Simplified-tree ablation over the 13 ReActNet blocks");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    check(static_cast<bool>(out), "ablation_tree: cannot open " + json_path);
    out << json_out.str();
    std::cout << "wrote " << json_path << "\n";
  }

  std::cout << "\nFull canonical Huffman (optimal prefix code, clustered "
               "alphabet): mean "
            << ratio_str(huffman_mean) << "\n";
  std::cout << "The paper's 4-node point recovers most of the optimal\n"
               "ratio while the decoder needs only a leading-ones prefix\n"
               "detector, a 4-entry length table and a small banked\n"
               "uncompressed table (Fig. 6) - deeper trees buy little.\n";
  return 0;
}
