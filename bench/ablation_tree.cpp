// Ablation: the simplified-tree design point (Sec III-B / Sec VI).
//
// The paper claims the 4-node tree is "a good trade-off between
// simplicity and compression rate". This bench quantifies that claim:
// mean compression ratio over all 13 blocks for trees of different
// shapes, against the full canonical Huffman code (the optimum) and the
// fixed 9-bit baseline, together with the decode-table storage each
// tree needs (the hardware cost axis).

#include <iostream>
#include <vector>

#include "core/bkc.h"

int main(int argc, char** argv) {
  using namespace bkc;

  // --tiny swaps in the reduced test model so the CTest smoke run of
  // this binary finishes in milliseconds.
  const bnn::ReActNet model(has_flag(argc, argv, "--tiny")
                                ? bnn::tiny_reactnet_config(/*seed=*/42)
                                : bnn::paper_reactnet_config(/*seed=*/42));

  struct TreePoint {
    std::string name;
    compress::GroupedTreeConfig config;
  };
  const std::vector<TreePoint> trees = {
      {"fixed 9-bit (no compression)", compress::GroupedTreeConfig::fixed9()},
      {"2 nodes {6,9}", {.index_bits = {6, 9}}},
      {"3 nodes {5,6,9}", {.index_bits = {5, 6, 9}}},
      {"4 nodes {5,6,6,9} (paper)", compress::GroupedTreeConfig::paper()},
      {"5 nodes {4,5,6,6,9}", {.index_bits = {4, 5, 6, 6, 9}}},
      {"6 nodes {3,4,5,6,6,9}", {.index_bits = {3, 4, 5, 6, 6, 9}}},
  };

  Table table({"tree", "mean ratio (clustered)", "mean ratio (encoding)",
               "table bits/block", "vs full Huffman"});
  // Full-Huffman reference on the clustered alphabets.
  std::vector<double> huffman_ratios;
  {
    const compress::ModelCompressor compressor;
    const auto report = compressor.analyze(model);
    for (const auto& block : report.blocks) {
      huffman_ratios.push_back(block.huffman_ratio);
    }
  }
  const double huffman_mean = mean(huffman_ratios);

  for (const auto& tree : trees) {
    const compress::ModelCompressor compressor(tree.config, {});
    const auto report = compressor.analyze(model);
    table.row()
        .add(tree.name)
        .add(report.mean_clustering_ratio)
        .add(report.mean_encoding_ratio)
        .add(report.decode_table_bits / report.blocks.size())
        .add(percent_str(report.mean_clustering_ratio / huffman_mean));
  }
  table.print("Simplified-tree ablation over the 13 ReActNet blocks");

  std::cout << "\nFull canonical Huffman (optimal prefix code, clustered "
               "alphabet): mean "
            << ratio_str(huffman_mean) << "\n";
  std::cout << "The paper's 4-node point recovers most of the optimal\n"
               "ratio while the decoder needs only a leading-ones prefix\n"
               "detector, a 4-entry length table and a small banked\n"
               "uncompressed table (Fig. 6) - deeper trees buy little.\n";
  return 0;
}
