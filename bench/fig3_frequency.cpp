// Regenerates Figure 3 of the paper: frequency of use of the top-16 bit
// sequences in the 3x3 kernels of one ReActNet basic block.
//
// The paper's block shows the all-zeros/all-ones pair leading at
// 12.8%/12.7% and the top 16 adding up to ~46%.

#include <iostream>

#include "core/bkc.h"

int main(int argc, char** argv) {
  using namespace bkc;

  // --tiny swaps in the reduced test model so the CTest smoke run of
  // this binary finishes in milliseconds.
  const bnn::ReActNet model(has_flag(argc, argv, "--tiny")
                                ? bnn::tiny_reactnet_config(/*seed=*/42)
                                : bnn::paper_reactnet_config(/*seed=*/42));
  // Fig. 3 is "one of the basic blocks"; block 4 (256 channels) has the
  // closest top-16 share to the figure's 46%.
  const std::size_t block_index = 3;
  const auto& kernel = model.block(block_index).conv3x3().kernel();
  const auto table = compress::FrequencyTable::from_kernel(kernel);

  // The paper's Fig. 3 series (sequence id -> % of use), eyeballed from
  // the plot for the leading pair and implied by the 46% total.
  const auto& paper_order = bnn::figure3_top16();

  const auto ranked = table.ranked();
  Table out({"rank", "sequence (ours)", "share (ours)", "sequence (paper)"});
  double top16 = 0.0;
  for (int r = 0; r < 16; ++r) {
    const auto seq = ranked[static_cast<std::size_t>(r)];
    top16 += table.share(seq);
    out.row()
        .add(r)
        .add(static_cast<std::int64_t>(seq))
        .add(percent_str(table.share(seq)))
        .add(static_cast<std::int64_t>(
            paper_order[static_cast<std::size_t>(r)]));
  }
  out.print("Figure 3 - top-16 bit sequences in one basic block (" +
            model.block(block_index).name() + ")");

  std::cout << "\nTop-16 cumulative share: " << percent_str(top16)
            << "  (paper: ~46%)\n";
  std::cout << "All-zeros share: " << percent_str(table.share(0))
            << ", all-ones share: " << percent_str(table.share(511))
            << "  (paper: 12.8% / 12.7%)\n";
  std::cout << "Top-64 share: " << percent_str(table.top_k_share(64))
            << ", top-256: " << percent_str(table.top_k_share(256))
            << "\n";
  std::cout << "\nNote: within the head, ranking among near-tied sequences\n"
               "is sampling noise; the leading complement pair and the\n"
               "cumulative shares are the calibrated quantities.\n";
  return 0;
}
