// Ablation: the clustering parameters M / N / Hamming distance
// (Sec III-C: "we empirically searched for some combinations of M and
// N"). Reruns that search over the whole model: mean compression ratio
// vs the fraction of weight bits flipped (the accuracy proxy).

#include <iostream>

#include "core/bkc.h"

int main(int argc, char** argv) {
  using namespace bkc;

  // --tiny swaps in the reduced test model so the CTest smoke run of
  // this binary finishes in milliseconds.
  const bnn::ReActNet model(has_flag(argc, argv, "--tiny")
                                ? bnn::tiny_reactnet_config(/*seed=*/42)
                                : bnn::paper_reactnet_config(/*seed=*/42));

  Table table({"M (common)", "N (removed)", "max dist", "mean ratio",
               "flipped bits", "model ratio"});

  auto run = [&](std::size_t m, std::size_t n, int d) {
    const compress::ClusteringConfig config{
        .most_common = m, .least_common = n, .max_distance = d};
    const compress::ModelCompressor compressor(
        compress::GroupedTreeConfig::paper(), config);
    const auto report = compressor.analyze(model);
    double flipped = 0.0;
    for (const auto& block : report.blocks) {
      flipped += block.flipped_bit_fraction;
    }
    flipped /= static_cast<double>(report.blocks.size());
    table.row()
        .add(static_cast<std::uint64_t>(m))
        .add(static_cast<std::uint64_t>(n))
        .add(d)
        .add(report.mean_clustering_ratio)
        .add(percent_str(flipped, 2))
        .add(report.model_ratio);
  };

  for (const std::size_t m : {32u, 64u, 128u, 256u}) {
    for (const std::size_t n : {128u, 256u, 352u, 448u}) {
      run(m, n, 1);
    }
  }
  // The Hamming-distance axis at the paper's (M, N).
  run(64, 352, 2);
  run(64, 352, 3);

  table.print(
      "Clustering ablation over the 13 ReActNet blocks "
      "(paper default M=64, N=352, d=1)");

  std::cout << "\nReading guide: ratio grows with N (more rare sequences\n"
               "removed) and with d (more substitutions succeed), but the\n"
               "flipped-bit fraction - the error injected into the kernels\n"
               "- grows with both. The paper constrains d=1 and removes\n"
               "the rare sequences, keeping the perturbation ~1-3% of\n"
               "weight bits for a ~1.3x kernel compression.\n";
  return 0;
}
