// Offline compression throughput: blocks/sec vs thread count.
//
// Measures ModelCompressor::compress_model — the single pass that
// produces the report and both stream artifacts per block — for a range
// of thread counts (1, 2, 4, ... up to --threads). Before timing, the
// parallel pass is checked bit-identical against the serial one (the
// determinism guarantee). A final comparison re-times the PRE-REFACTOR
// two-pass layout, reconstructed from the public primitives (a
// report-only pass that emits no streams, then a stream pass that
// re-runs frequency counting and clustering per block — exactly what
// Engine::compress ran via analyze() + compress_blocks() before the
// refactor), against the unified pass, pinning the wall-clock win of
// deriving the report from the stream artifacts.
//
//   ./bench/compress_throughput [--tiny] [--threads N] [--repeats N]
//
// Defaults: paper-width channels, threads up to 4, best of 3 repeats.
// --tiny switches to the reduced test model for the CTest smoke run.

#include <algorithm>
#include <chrono>
#include <iostream>
#include <limits>
#include <vector>

#include "core/bkc.h"

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

/// The pre-refactor per-block REPORT pass (the old
/// ModelCompressor::analyze_block): every report statistic, but no
/// stream emission and no kernel remap. Returns a checksum so the
/// optimizer cannot elide the work.
std::uint64_t legacy_report_pass(const bkc::bnn::ReActNet& model,
                                 const bkc::compress::GroupedTreeConfig& tree,
                                 const bkc::compress::ClusteringConfig& cfg) {
  namespace compress = bkc::compress;
  std::uint64_t checksum = 0;
  double share_sink = 0.0;
  for (std::size_t b = 0; b < model.num_blocks(); ++b) {
    const auto& kernel = model.block(b).conv3x3().kernel();
    const auto table = compress::FrequencyTable::from_kernel(kernel);
    share_sink += table.top_k_share(16) + table.top_k_share(64) +
                  table.top_k_share(256) + table.entropy_bits();
    const compress::GroupedHuffmanCodec plain(table, tree);
    checksum += plain.encoded_bits(table);
    for (int n = 0; n < tree.num_nodes(); ++n) {
      share_sink += plain.node_share(n, table);
    }
    const auto clustering = compress::cluster_sequences(table, cfg);
    const auto clustered = clustering.apply(table);
    const compress::GroupedHuffmanCodec codec(clustered, tree);
    checksum += codec.encoded_bits(clustered) + codec.table_bits();
    for (int n = 0; n < tree.num_nodes(); ++n) {
      share_sink += codec.node_share(n, clustered);
    }
    share_sink += compress::HuffmanCodec::build(clustered)
                      .compression_ratio(clustered);
  }
  return checksum + static_cast<std::uint64_t>(share_sink);
}

/// The pre-refactor per-block STREAM pass (the old compress_blocks):
/// one compress_kernel_pipeline per block, which re-runs frequency
/// counting and the clustering search on the same inputs.
std::uint64_t legacy_stream_pass(const bkc::bnn::ReActNet& model,
                                 const bkc::compress::GroupedTreeConfig& tree,
                                 const bkc::compress::ClusteringConfig& cfg) {
  std::uint64_t checksum = 0;
  for (std::size_t b = 0; b < model.num_blocks(); ++b) {
    const auto artifact = bkc::compress::compress_kernel_pipeline(
        model.block(b).conv3x3().kernel(), /*apply_clustering=*/true, tree,
        cfg);
    checksum += artifact.compressed.stream_bits;
  }
  return checksum;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bkc;

  const bool tiny = has_flag(argc, argv, "--tiny");
  const int max_threads = positive_flag_value(argc, argv, "--threads", 4);
  const int repeats = positive_flag_value(argc, argv, "--repeats", 3);

  const bnn::ReActNetConfig config =
      tiny ? bnn::tiny_reactnet_config(/*seed=*/42)
           : bnn::paper_reactnet_config(/*seed=*/42);
  const bnn::ReActNet model(config);
  const compress::ModelCompressor compressor;
  const auto num_blocks = static_cast<double>(model.num_blocks());
  std::cout << "Model: " << model.num_blocks()
            << " blocks, kernels up to "
            << model.block(model.num_blocks() - 1).config().in_channels
            << " channels\n\n";

  // Correctness gate: the parallel pass must be bit-identical to the
  // serial one before its timing means anything.
  const compress::CompressedModel serial = compressor.compress_model(model, 1);
  const compress::CompressedModel parallel =
      compressor.compress_model(model, max_threads);
  check(serial.blocks.size() == parallel.blocks.size(),
        "compress_throughput: block count diverged");
  for (std::size_t b = 0; b < serial.blocks.size(); ++b) {
    const auto& s = serial.blocks[b];
    const auto& p = parallel.blocks[b];
    check(s.encoding.compressed.stream == p.encoding.compressed.stream &&
              s.clustered.compressed.stream == p.clustered.compressed.stream &&
              s.clustered.coded_kernel == p.clustered.coded_kernel,
          "compress_throughput: parallel streams diverged from serial");
    check(s.report.encoding_ratio == p.report.encoding_ratio &&
              s.report.clustering_ratio == p.report.clustering_ratio &&
              s.report.entropy_bits == p.report.entropy_bits,
          "compress_throughput: parallel report diverged from serial");
  }
  check(serial.report.model_ratio == parallel.report.model_ratio,
        "compress_throughput: model ratio diverged from serial");
  std::cout << "Parallel pass bit-identical to serial: yes\n\n";

  std::vector<int> thread_counts;
  for (int t = 1; t < max_threads; t *= 2) thread_counts.push_back(t);
  thread_counts.push_back(max_threads);

  const auto best_of = [&](auto&& work) {
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < repeats; ++r) {
      const auto start = clock_type::now();
      work();
      best = std::min(best, seconds_since(start));
    }
    return best;
  };

  Table table({"threads", "seconds", "blocks/sec", "speedup"});
  double base_seconds = 0.0;
  for (int threads : thread_counts) {
    const double seconds =
        best_of([&] { compressor.compress_model(model, threads); });
    if (threads == 1) base_seconds = seconds;
    table.row()
        .add(threads)
        .add(seconds, 4)
        .add(num_blocks / seconds, 1)
        .add(base_seconds > 0.0 ? ratio_str(base_seconds / seconds)
                                : std::string("-"));
  }
  table.print("compress_model throughput (best of " +
              std::to_string(repeats) + ")");

  // The headline of the refactor: one unified pass vs the true
  // pre-refactor layout (report-only pass, then a stream pass that
  // repeats frequency counting and clustering per block). Both run
  // serially so the comparison is pass structure, not fan-out.
  std::uint64_t sink = 0;
  const double two_pass = best_of([&] {
    sink += legacy_report_pass(model, compressor.tree(),
                               compressor.clustering());
    sink += legacy_stream_pass(model, compressor.tree(),
                               compressor.clustering());
  });
  check(sink > 0, "compress_throughput: legacy passes produced no bits");
  std::cout << "\nEngine::compress cost, serial: single-pass "
            << base_seconds << " s, pre-refactor two-pass " << two_pass
            << " s (" << ratio_str(two_pass / base_seconds)
            << " — the duplicated per-block work the unified pass "
               "removes)\n";
  return 0;
}
