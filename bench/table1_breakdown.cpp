// Regenerates Table I of the paper: ReActNet storage and execution time
// breakdown by operation class.
//
// Storage comes from the model's parameter accounting; execution time
// from the A53-class timing model (binary convs simulated on sampled
// rows, non-binary layers through the calibrated analytic cost model).

#include <iostream>

#include "core/bkc.h"

int main(int argc, char** argv) {
  using namespace bkc;

  // --tiny swaps in the reduced test model so the CTest smoke run of
  // this binary finishes in milliseconds.
  const bnn::ReActNet model(has_flag(argc, argv, "--tiny")
                                ? bnn::tiny_reactnet_config(/*seed=*/42)
                                : bnn::paper_reactnet_config(/*seed=*/42));
  const auto storage = model.storage();
  const auto timing = hwsim::time_model_baseline(model.op_records());

  // The paper's Table I values for side-by-side comparison.
  struct PaperRow {
    bnn::OpClass cls;
    double storage_pct;
    int precision;
    double time_pct;
  };
  const PaperRow paper_rows[] = {
      {bnn::OpClass::kInputLayer, 0.02, 8, 4.0},
      {bnn::OpClass::kOutputLayer, 22.17, 8, 18.7},
      {bnn::OpClass::kConv1x1, 8.5, 1, 6.9},
      {bnn::OpClass::kConv3x3, 68.0, 1, 66.8},
      {bnn::OpClass::kOther, 1.31, 32, 3.6},
  };

  Table table({"Operation", "Storage (ours)", "Storage (paper)",
               "Precision", "Exec time (ours)", "Exec time (paper)"});
  for (const auto& row : paper_rows) {
    table.row()
        .add(bnn::op_class_name(row.cls))
        .add(percent_str(storage.bits_fraction(row.cls)))
        .add(percent_str(row.storage_pct / 100.0))
        .add(row.precision)
        .add(percent_str(timing.fraction(row.cls)))
        .add(percent_str(row.time_pct / 100.0));
  }
  table.print(
      "Table I - ReActNet storage and execution time breakdown");

  std::cout << "\nTotal parameter storage: " << bits_str(storage.total_bits)
            << " (paper: ~29 Mbit of weights for ReActNet)\n";
  std::cout << "Simulated single-image latency: "
            << static_cast<double>(timing.total_cycles) / 1e6
            << " Mcycles (" << static_cast<double>(timing.total_cycles) / 1e6
            << " ms at 1 GHz)\n";
  std::cout << "\nNotes: 'Others' carries our folded BN + RPReLU parameter\n"
               "counts (the paper's 1.31% implies a tighter folding);\n"
               "the output-layer execution share tracks the paper's\n"
               "observation that the classifier stays a scalar fp32 GEMV\n"
               "in daBNN-style deployments.\n";
  return 0;
}
