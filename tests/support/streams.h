#pragma once
// Bit-stream round-trip helpers shared by the bitstream and codec
// suites.

#include <cstdint>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace bkc::test {

/// One (value, width) field of a variable-length stream.
using BitField = std::pair<std::uint64_t, unsigned>;

/// `count` random fields with widths in [1, 64] and values masked to
/// their width - the adversarial input of the round-trip property.
std::vector<BitField> random_bit_fields(Rng& rng, int count);

/// Writes every field MSB-first, reads them all back and EXPECTs
/// bit-exact equality plus a fully consumed stream. Returns the byte
/// buffer for any further assertions.
std::vector<std::uint8_t> expect_bits_roundtrip(
    const std::vector<BitField>& fields);

}  // namespace bkc::test
