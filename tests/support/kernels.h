#pragma once
// Seeded kernel / tensor / stream factories shared by the codec and
// hwsim test suites.

#include <cstdint>
#include <vector>

#include "bnn/bconv.h"
#include "bnn/weights.h"
#include "compress/kernel_codec.h"
#include "hwsim/decoder_unit.h"
#include "hwsim/perf_model.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace bkc::test {

/// A 3x3 binary kernel whose bit-sequence frequencies follow the
/// paper's Table II shape (defaults to the block-5 row: top-64 share
/// 64.5%, top-256 share 95.1%). This is the standard compressible
/// input of the codec suites.
bnn::PackedKernel calibrated_kernel(std::int64_t out_channels,
                                    std::int64_t in_channels,
                                    std::uint64_t seed,
                                    bnn::BlockFrequencyTarget target = {
                                        0.645, 0.951});

/// A feature tensor with i.i.d. +/-1 entries.
Tensor random_pm1_tensor(const FeatureShape& shape, Rng& rng);

/// A weight tensor with i.i.d. +/-1 entries.
WeightTensor random_pm1_weights(const KernelShape& shape, Rng& rng);

/// A binary conv OpRecord (3x3 or 1x1) with geometry, macs and storage
/// resolved the way bnn::Sequential resolves real layers.
bnn::OpRecord conv_op(std::int64_t channels, std::int64_t size,
                      std::int64_t kernel = 3, std::int64_t stride = 1);

/// A compressed-stream summary where every sequence costs `bits` bits.
/// Owning (StreamInfo itself is a borrowing view): keep the result
/// alive and pass `.view()` where a StreamInfo is consumed.
hwsim::OwnedStreamInfo uniform_stream(std::size_t sequences,
                                      std::uint8_t bits);

/// The stream summary of a freshly compressed (clustered) calibrated
/// channels x channels kernel - a realistic decoder-unit input. Owning,
/// like uniform_stream.
hwsim::OwnedStreamInfo compressed_stream(std::int64_t channels,
                                         std::uint64_t seed);

/// Compresses the kernel through the full pipeline and decodes it back;
/// returns the decoded kernel. With `clustering` false the result must
/// equal the input bit-exactly (the suites assert this).
bnn::PackedKernel pipeline_round_trip(const bnn::PackedKernel& kernel,
                                      bool clustering);

}  // namespace bkc::test
