#pragma once
// Umbrella header for the bkc test-support library. Test suites include
// this instead of re-declaring their own fixtures; see the individual
// headers for what lives where:
//
//   support/configs.h - tiny/mid ReActNet config + EngineOptions
//                       factories shared by the model-level suites
//   support/kernels.h - seeded kernel/tensor/stream factories shared by
//                       the codec and hwsim suites
//   support/streams.h - bit-stream round-trip helpers
//   support/golden.h  - golden-file comparison utilities

#include "support/configs.h"
#include "support/golden.h"
#include "support/kernels.h"
#include "support/streams.h"
