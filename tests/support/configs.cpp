#include "support/configs.h"

namespace bkc::test {

bnn::ReActNetConfig tiny_config(std::uint64_t seed) {
  return bnn::tiny_reactnet_config(seed);
}

bnn::ReActNetConfig mid_config(std::uint64_t seed) {
  bnn::ReActNetConfig config;
  config.input_size = 32;
  config.num_classes = 10;
  config.blocks = bnn::mobilenet_v1_schedule(4);
  config.stem_channels = config.blocks.front().in_channels;
  config.seed = seed;
  return config;
}

EngineOptions no_clustering() {
  EngineOptions options;
  options.clustering = false;
  return options;
}

std::vector<compress::GroupedTreeConfig> codec_tree_configs() {
  return {
      compress::GroupedTreeConfig::paper(),   // capacity 672
      compress::GroupedTreeConfig::fixed9(),  // capacity 512, fixed width
      compress::GroupedTreeConfig{{3, 5, 8}}, // capacity 8+32+256 = 296
      compress::GroupedTreeConfig{{1, 2, 8}}, // capacity 2+4+256 = 262
      compress::GroupedTreeConfig{{4, 4}},    // capacity 32
      compress::GroupedTreeConfig{{0, 0, 4}}, // capacity 18, 1-entry nodes
  };
}

}  // namespace bkc::test
