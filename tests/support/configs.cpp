#include "support/configs.h"

namespace bkc::test {

bnn::ReActNetConfig tiny_config(std::uint64_t seed) {
  return bnn::tiny_reactnet_config(seed);
}

bnn::ReActNetConfig mid_config(std::uint64_t seed) {
  bnn::ReActNetConfig config;
  config.input_size = 32;
  config.num_classes = 10;
  config.blocks = bnn::mobilenet_v1_schedule(4);
  config.stem_channels = config.blocks.front().in_channels;
  config.seed = seed;
  return config;
}

EngineOptions no_clustering() {
  EngineOptions options;
  options.clustering = false;
  return options;
}

}  // namespace bkc::test
