#include "support/kernels.h"

#include <utility>

namespace bkc::test {

bnn::PackedKernel calibrated_kernel(std::int64_t out_channels,
                                    std::int64_t in_channels,
                                    std::uint64_t seed,
                                    bnn::BlockFrequencyTarget target) {
  bnn::WeightGenerator gen(seed);
  const auto dist = bnn::SequenceDistribution::fitted(target);
  return gen.sample_kernel3x3(out_channels, in_channels, dist);
}

Tensor random_pm1_tensor(const FeatureShape& shape, Rng& rng) {
  Tensor t(shape);
  for (auto& v : t.data()) v = rng.chance(0.5) ? 1.0f : -1.0f;
  return t;
}

WeightTensor random_pm1_weights(const KernelShape& shape, Rng& rng) {
  WeightTensor w(shape);
  for (auto& v : w.data()) v = rng.chance(0.5) ? 1.0f : -1.0f;
  return w;
}

bnn::OpRecord conv_op(std::int64_t channels, std::int64_t size,
                      std::int64_t kernel, std::int64_t stride) {
  bnn::OpRecord op;
  op.name = "conv";
  op.op_class =
      kernel == 3 ? bnn::OpClass::kConv3x3 : bnn::OpClass::kConv1x1;
  op.precision_bits = 1;
  op.kernel_shape = {channels, channels, kernel, kernel};
  op.input_shape = {channels, size, size};
  op.geometry = {stride, kernel == 3 ? 1 : 0};
  op.output_shape =
      op.geometry.output_shape(op.input_shape, op.kernel_shape);
  op.macs = static_cast<std::uint64_t>(op.output_shape.size() *
                                       op.kernel_shape.receptive_size());
  op.storage_bits = static_cast<std::uint64_t>(op.kernel_shape.size());
  return op;
}

hwsim::OwnedStreamInfo uniform_stream(std::size_t sequences,
                                      std::uint8_t bits) {
  return hwsim::OwnedStreamInfo::from_lengths(
      std::vector<std::uint8_t>(sequences, bits));
}

hwsim::OwnedStreamInfo compressed_stream(std::int64_t channels,
                                         std::uint64_t seed) {
  auto result = compress::compress_kernel_pipeline(
      calibrated_kernel(channels, channels, seed), true);
  // Take the pipeline's length vector; the rest of the artifact is not
  // needed for a timing-model input.
  return hwsim::OwnedStreamInfo::from_lengths(std::move(result.code_lengths));
}

bnn::PackedKernel pipeline_round_trip(const bnn::PackedKernel& kernel,
                                      bool clustering) {
  const auto result = compress::compress_kernel_pipeline(kernel, clustering);
  return compress::decompress_kernel(result.compressed, result.codec);
}

}  // namespace bkc::test
