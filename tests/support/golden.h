#pragma once
// Golden-file utilities. Goldens live under tests/golden/ (the path is
// baked in via BKC_TEST_GOLDEN_DIR). A suite renders its value to text
// and calls expect_matches_golden(); set BKC_UPDATE_GOLDEN=1 in the
// environment to (re)write the files instead of comparing.

#include <string>

namespace bkc::test {

/// Absolute path of a golden file, e.g. golden_path("reactnet_ops.txt").
std::string golden_path(const std::string& name);

/// Reads the named golden file. Throws bkc::CheckError when missing
/// (run with BKC_UPDATE_GOLDEN=1 to create it).
std::string read_golden(const std::string& name);

/// True when BKC_UPDATE_GOLDEN is set to a non-empty, non-"0" value.
bool update_goldens();

/// Compares `actual` against the named golden with EXPECT_EQ semantics;
/// in update mode rewrites the golden and passes.
void expect_matches_golden(const std::string& name,
                           const std::string& actual);

}  // namespace bkc::test
