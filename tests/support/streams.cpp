#include "support/streams.h"

#include <gtest/gtest.h>

#include "util/bitstream.h"

namespace bkc::test {

std::vector<BitField> random_bit_fields(Rng& rng, int count) {
  std::vector<BitField> fields;
  fields.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const auto width = static_cast<unsigned>(rng.range(1, 64));
    std::uint64_t value = rng();
    if (width < 64) value &= (1ULL << width) - 1;
    fields.emplace_back(value, width);
  }
  return fields;
}

std::vector<std::uint8_t> expect_bits_roundtrip(
    const std::vector<BitField>& fields) {
  BitWriter writer;
  for (const auto& [value, width] : fields) {
    writer.write_bits(value, width);
  }
  const std::size_t total_bits = writer.bit_size();
  const auto bytes = writer.take();
  BitReader reader(bytes, total_bits);
  for (const auto& [value, width] : fields) {
    EXPECT_EQ(reader.read_bits(width), value);
  }
  EXPECT_EQ(reader.remaining(), 0u);
  return bytes;
}

}  // namespace bkc::test
