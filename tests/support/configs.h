#pragma once
// Shared model/engine configuration factories for the bkc test suites.
//
// All model-level suites run on reduced ReActNets; the factories here
// fix the sizes in one place so every suite agrees on what "tiny" and
// "mid" mean (and on how many blocks / channels the assertions can
// rely on).

#include <cstdint>
#include <vector>

#include "bnn/reactnet.h"
#include "compress/grouped_huffman.h"
#include "core/engine.h"

namespace bkc::test {

/// 32x32 input, width/8 channels, 10 classes - the fastest full model
/// (alias of bnn::tiny_reactnet_config, re-exported so suites only
/// depend on the support library for their fixtures).
bnn::ReActNetConfig tiny_config(std::uint64_t seed);

/// 32x32 input, width/4 channels (128-256 per block), 10 classes.
/// Large enough for per-block frequency statistics to be meaningful.
bnn::ReActNetConfig mid_config(std::uint64_t seed);

/// Engine options with the Sec III-C clustering pass disabled
/// (encoding-only mode; inference stays bit-exact).
EngineOptions no_clustering();

/// Grouped-Huffman tree shapes under test: the paper's config, the
/// fixed-width baseline, and assorted capacities (tight, tiny,
/// two-node, 1-entry nodes) that stress prefix handling and partially
/// filled nodes. Shared by the codec property and multi-symbol decode
/// suites so both agree on what "all tree shapes" means.
std::vector<compress::GroupedTreeConfig> codec_tree_configs();

}  // namespace bkc::test
