#include "support/golden.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace bkc::test {

std::string golden_path(const std::string& name) {
  return std::string(BKC_TEST_GOLDEN_DIR) + "/" + name;
}

std::string read_golden(const std::string& name) {
  std::ifstream in(golden_path(name));
  check(in.good(), "missing golden file " + golden_path(name) +
                       " (set BKC_UPDATE_GOLDEN=1 to create it)");
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

bool update_goldens() {
  const char* flag = std::getenv("BKC_UPDATE_GOLDEN");
  return flag != nullptr && *flag != '\0' && std::string(flag) != "0";
}

void expect_matches_golden(const std::string& name,
                           const std::string& actual) {
  if (update_goldens()) {
    std::ofstream out(golden_path(name));
    check(out.good(), "cannot write golden file " + golden_path(name));
    out << actual;
    return;
  }
  EXPECT_EQ(read_golden(name), actual) << "golden mismatch: " << name;
}

}  // namespace bkc::test
