// Tests for the calibrated synthetic weight generator - the module that
// substitutes for ImageNet-trained ReActNet weights.

#include "bnn/weights.h"

#include <gtest/gtest.h>

#include <set>

#include "compress/frequency.h"
#include "util/check.h"

namespace bkc::bnn {
namespace {

TEST(PopularityOrder, IsAPermutationStartingWithFigure3) {
  const auto& order = SequenceDistribution::popularity_order();
  std::set<SeqId> seen(order.begin(), order.end());
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kNumSequences));
  const auto& top16 = figure3_top16();
  for (std::size_t i = 0; i < top16.size(); ++i) {
    EXPECT_EQ(order[i], top16[i]) << "rank " << i;
  }
}

TEST(PopularityOrder, HeadIsANearCoveringSet) {
  // The top-64 must 1-cover nearly the whole 9-cube (this is what makes
  // the paper's ~95% clustering substitution rate possible).
  const auto& order = SequenceDistribution::popularity_order();
  std::array<bool, kNumSequences> covered{};
  for (int r = 0; r < 64; ++r) {
    covered[order[r]] = true;
    for (SeqId n : seq_neighbors1(order[r])) covered[n] = true;
  }
  int count = 0;
  for (bool c : covered) count += c;
  // The greedy pair-preserving covering reaches ~91% (466/512); a
  // perfect covering of Q9 needs 62 free picks, and 8 of our 64 are
  // pinned to Fig. 3's clustered extremes.
  EXPECT_GT(count, 440);
}

TEST(Distribution, UniformShares) {
  const auto d = SequenceDistribution::uniform();
  EXPECT_NEAR(d.top_k_share(64), 64.0 / 512.0, 1e-12);
  EXPECT_NEAR(d.entropy_bits(), 9.0, 1e-12);
}

TEST(Distribution, FittedHitsTableIITargetsExactly) {
  for (const auto& target : paper_table2_targets()) {
    const auto d = SequenceDistribution::fitted(target);
    EXPECT_NEAR(d.top_k_share(64), target.top64, 5e-3);
    EXPECT_NEAR(d.top_k_share(256), target.top256, 5e-3);
  }
}

TEST(Distribution, FittedMatchesFigure3Interior) {
  // Fig. 3: the all-zeros / all-ones pair lead at ~12.8%/12.7% and the
  // top-16 carry ~46% when top-64 is ~64%.
  const auto d = SequenceDistribution::fitted({0.645, 0.951});
  EXPECT_NEAR(d.probability(0), 0.125, 0.025);
  EXPECT_NEAR(d.probability(511), 0.125, 0.025);
  EXPECT_NEAR(d.top_k_share(16), 0.46, 0.04);
}

TEST(Distribution, FittedIsComplementSymmetric) {
  const auto d = SequenceDistribution::fitted({0.62, 0.90});
  for (int s = 0; s < kNumSequences; ++s) {
    EXPECT_DOUBLE_EQ(d.probability(static_cast<SeqId>(s)),
                     d.probability(seq_complement(static_cast<SeqId>(s))));
  }
}

TEST(Distribution, FittedRejectsBadTargets) {
  EXPECT_THROW(SequenceDistribution::fitted({0.9, 0.8}), CheckError);
  EXPECT_THROW(SequenceDistribution::fitted({0.0, 0.9}), CheckError);
  EXPECT_THROW(SequenceDistribution::fitted({0.5, 1.0}), CheckError);
}

TEST(Distribution, ZipfMixtureMonotoneInRank) {
  const auto d = SequenceDistribution::zipf_mixture(1.0, 0.1);
  const auto& order = SequenceDistribution::popularity_order();
  // Complement-symmetrisation makes adjacent pairs equal; check
  // monotonicity across pair boundaries.
  for (int r = 16; r + 2 < kNumSequences; r += 2) {
    EXPECT_GE(d.probability(order[r]) + 1e-15,
              d.probability(order[r + 2]));
  }
}

TEST(Distribution, EntropyBelowNineBits) {
  const auto d = SequenceDistribution::fitted({0.645, 0.951});
  EXPECT_LT(d.entropy_bits(), 7.0);  // compressible
  EXPECT_GT(d.entropy_bits(), 3.0);  // but not degenerate
}

TEST(Generator, SampledKernelMatchesDistribution) {
  WeightGenerator gen(1234);
  const auto target = paper_table2_targets()[6];  // block 7: 512 channels
  const auto dist = SequenceDistribution::fitted(target);
  const PackedKernel kernel = gen.sample_kernel3x3(256, 256, dist);
  const auto table = compress::FrequencyTable::from_kernel(kernel);
  EXPECT_NEAR(table.top_k_share(64), target.top64, 0.02);
  EXPECT_NEAR(table.top_k_share(256), target.top256, 0.02);
}

TEST(Generator, Deterministic) {
  WeightGenerator a(9);
  WeightGenerator b(9);
  const auto dist = SequenceDistribution::uniform();
  EXPECT_TRUE(a.sample_kernel3x3(4, 16, dist) ==
              b.sample_kernel3x3(4, 16, dist));
}

TEST(Generator, UniformKernelDensity) {
  WeightGenerator gen(77);
  const PackedKernel k = gen.sample_kernel({8, 64, 3, 3}, 0.5);
  std::int64_t ones = 0;
  for (std::int64_t o = 0; o < 8; ++o) {
    for (std::int64_t i = 0; i < 64; ++i) {
      for (int ky = 0; ky < 3; ++ky) {
        for (int kx = 0; kx < 3; ++kx) ones += k.bit(o, i, ky, kx);
      }
    }
  }
  const double density = static_cast<double>(ones) / (8 * 64 * 9);
  EXPECT_NEAR(density, 0.5, 0.03);
}

TEST(Generator, ActivationIsBalancedAndSmooth) {
  WeightGenerator gen(31);
  const Tensor act = gen.sample_activation({4, 16, 16});
  int positive = 0;
  for (float v : act.data()) positive += v >= 0.0f;
  const double frac = static_cast<double>(positive) / act.data().size();
  EXPECT_GT(frac, 0.25);
  EXPECT_LT(frac, 0.75);
}

TEST(Generator, PaperTargetsHaveThirteenRows) {
  const auto& targets = paper_table2_targets();
  ASSERT_EQ(targets.size(), 13u);
  for (const auto& t : targets) {
    EXPECT_GT(t.top64, 0.5);
    EXPECT_LT(t.top64, 0.8);
    EXPECT_GT(t.top256, t.top64);
    EXPECT_LT(t.top256, 1.0);
  }
}

}  // namespace
}  // namespace bkc::bnn
