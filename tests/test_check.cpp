// Tests for the runtime invariant-checking utilities (util/check.h):
// the failure paths every precondition in the library reports through.

#include "util/check.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace bkc {
namespace {

TEST(Check, TrueConditionDoesNotThrow) {
  EXPECT_NO_THROW(check(true, "never reported"));
}

TEST(Check, FalseConditionThrowsCheckError) {
  EXPECT_THROW(check(false, "boom"), CheckError);
}

TEST(Check, CheckErrorIsALogicError) {
  // Callers that only know std::logic_error must still catch it.
  EXPECT_THROW(check(false, "boom"), std::logic_error);
}

TEST(Check, MessageCarriesTextAndSourceLocation) {
  try {
    check(false, "tensor shape mismatch");
    FAIL() << "check(false, ...) must throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("tensor shape mismatch"), std::string::npos) << what;
    // The location prefix names this translation unit and a line.
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find(':'), std::string::npos) << what;
  }
}

TEST(Check, UnreachableAlwaysThrows) {
  EXPECT_THROW(unreachable("impossible decoder state"), std::logic_error);
}

TEST(Check, UnreachableMessageIsLabelled) {
  try {
    unreachable("impossible decoder state");
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unreachable"), std::string::npos) << what;
    EXPECT_NE(what.find("impossible decoder state"), std::string::npos)
        << what;
  }
}

TEST(Check, UnreachableIsNotACheckError) {
  // unreachable() reports library bugs, not caller mistakes; it must
  // not be confused with precondition violations.
  try {
    unreachable("internal");
    FAIL() << "unreachable() must throw";
  } catch (const CheckError&) {
    FAIL() << "unreachable() must not throw CheckError";
  } catch (const std::logic_error&) {
    SUCCEED();
  }
}

}  // namespace
}  // namespace bkc
