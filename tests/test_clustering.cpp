// Tests for the Hamming-distance-1 clustering pass (Sec III-C).

#include "compress/clustering.h"

#include <gtest/gtest.h>

#include "support/support.h"

#include "bnn/kernel_sequences.h"
#include "bnn/weights.h"
#include "compress/grouped_huffman.h"
#include "util/check.h"

namespace bkc::compress {
namespace {

TEST(Clustering, ReplacesRareWithHammingOneCommon) {
  FrequencyTable t;
  t.add(0b000000000, 100);  // common
  t.add(0b000000001, 1);    // rare, distance 1 from common
  const auto result =
      cluster_sequences(t, {.most_common = 1, .least_common = 1});
  EXPECT_EQ(result.remap(0b000000001), 0b000000000);
  EXPECT_EQ(result.remap(0b000000000), 0b000000000);
  ASSERT_EQ(result.replacements().size(), 1u);
  EXPECT_EQ(result.replacements()[0].occurrences, 1u);
  EXPECT_EQ(result.replacements()[0].distance, 1);
}

TEST(Clustering, KeepsRareWithoutCloseNeighbor) {
  FrequencyTable t;
  t.add(0b000000000, 100);
  t.add(0b111111111, 1);  // distance 9 from the only common sequence
  const auto result =
      cluster_sequences(t, {.most_common = 1, .least_common = 1});
  EXPECT_EQ(result.remap(0b111111111), 0b111111111);
  EXPECT_TRUE(result.replacements().empty());
}

TEST(Clustering, PrefersHighestFrequencyCandidate) {
  // Both 0 and 3 are distance-1 from 1; 3 is more frequent... make 1
  // rare and candidates 0 (freq 50) and 5(101b, d=2). Use 0 vs 3:
  // hamming(1, 0) = 1, hamming(1, 3) = 1.
  FrequencyTable t;
  t.add(0, 50);
  t.add(3, 80);
  t.add(1, 1);
  const auto result =
      cluster_sequences(t, {.most_common = 2, .least_common = 1});
  EXPECT_EQ(result.remap(1), 3);  // the more frequent of the two
}

TEST(Clustering, MaxDistanceGeneralization) {
  FrequencyTable t;
  t.add(0b000000000, 100);
  t.add(0b000000011, 2);  // distance 2
  const ClusteringConfig d1{.most_common = 1, .least_common = 1,
                            .max_distance = 1};
  EXPECT_TRUE(cluster_sequences(t, d1).replacements().empty());
  const ClusteringConfig d2{.most_common = 1, .least_common = 1,
                            .max_distance = 2};
  const auto result = cluster_sequences(t, d2);
  ASSERT_EQ(result.replacements().size(), 1u);
  EXPECT_EQ(result.replacements()[0].distance, 2);
  EXPECT_EQ(result.flipped_weight_bits(), 4u);  // 2 occurrences * d2
}

TEST(Clustering, SetsNeverOverlap) {
  // 5 occurring sequences, M=4, N=4: su must only take the 1 leftover.
  FrequencyTable t;
  for (int s = 0; s < 5; ++s) {
    t.add(static_cast<SeqId>(s), static_cast<std::uint64_t>(100 - s));
  }
  const auto result =
      cluster_sequences(t, {.most_common = 4, .least_common = 4});
  // Only sequence 4 (the rarest) may be remapped.
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(result.remap(static_cast<SeqId>(s)), static_cast<SeqId>(s));
  }
}

TEST(Clustering, EmptyTableIsIdentity) {
  FrequencyTable t;
  const auto result = cluster_sequences(t, {});
  EXPECT_EQ(result.replaced_occurrences(), 0u);
  EXPECT_DOUBLE_EQ(result.flipped_bit_fraction(), 0.0);
}

TEST(Clustering, BadDistanceThrows) {
  FrequencyTable t;
  t.add(0, 1);
  EXPECT_THROW(cluster_sequences(t, {.max_distance = 0}), bkc::CheckError);
  EXPECT_THROW(cluster_sequences(t, {.max_distance = 10}), bkc::CheckError);
}

TEST(Clustering, ApplyToTableMovesCounts) {
  FrequencyTable t;
  t.add(0, 10);
  t.add(1, 2);
  const auto result =
      cluster_sequences(t, {.most_common = 1, .least_common = 1});
  const auto after = result.apply(t);
  EXPECT_EQ(after.count(0), 12u);
  EXPECT_EQ(after.count(1), 0u);
  EXPECT_EQ(after.total(), t.total());
  EXPECT_EQ(after.distinct(), 1u);
}

TEST(Clustering, ApplyToKernelRewritesChannels) {
  const std::vector<SeqId> seqs{0, 0, 0, 1};
  const auto kernel = bnn::kernel_from_sequences(2, 2, seqs);
  const auto t = FrequencyTable::from_kernel(kernel);
  const auto result =
      cluster_sequences(t, {.most_common = 1, .least_common = 1});
  const auto rewritten = result.apply(kernel);
  const auto after = bnn::extract_sequences(rewritten);
  EXPECT_EQ(after, (std::vector<SeqId>{0, 0, 0, 0}));
}

TEST(Clustering, FlippedBitFractionAccounting) {
  const std::vector<SeqId> seqs{0, 0, 0, 1};  // 4 sequences, 36 bits
  const auto kernel = bnn::kernel_from_sequences(2, 2, seqs);
  const auto t = FrequencyTable::from_kernel(kernel);
  const auto result =
      cluster_sequences(t, {.most_common = 1, .least_common = 1});
  EXPECT_EQ(result.replaced_occurrences(), 1u);
  EXPECT_EQ(result.flipped_weight_bits(), 1u);
  EXPECT_DOUBLE_EQ(result.flipped_bit_fraction(), 1.0 / 36.0);
}

TEST(Clustering, ImprovesCompressionOnCalibratedKernels) {
  // The headline mechanism of Table V: clustering must improve the
  // grouped-tree ratio on calibrated kernels.
  const auto kernel = test::calibrated_kernel(256, 256, 7, {0.632, 0.883});
  const auto t = FrequencyTable::from_kernel(kernel);
  const GroupedHuffmanCodec before(t);
  const auto clustering = cluster_sequences(t, {});
  const auto clustered = clustering.apply(t);
  const GroupedHuffmanCodec after(clustered);
  EXPECT_GT(after.compression_ratio(clustered),
            before.compression_ratio(t) + 0.03);
  // The perturbation is small: ~1-3% of weight bits.
  EXPECT_LT(clustering.flipped_bit_fraction(), 0.05);
  EXPECT_GT(clustering.flipped_bit_fraction(), 0.001);
}

TEST(Clustering, DefaultsReduceAlphabetBelowNodeCapacity) {
  // With the default M=64 / N=352 and the near-covering popularity head,
  // nearly every removed sequence finds a substitution, leaving an
  // alphabet that mostly fits the first three tree nodes.
  const auto kernel = test::calibrated_kernel(512, 512, 9, {0.632, 0.883});
  const auto t = FrequencyTable::from_kernel(kernel);
  const auto result = cluster_sequences(t, {});
  const auto after = result.apply(t);
  EXPECT_LT(after.distinct(), 250u);
  const GroupedHuffmanCodec codec(after);
  EXPECT_LT(codec.node_share(3, after), 0.08);
}

TEST(Clustering, RemapIdOutOfRangeThrows) {
  ClusteringResult identity;
  EXPECT_THROW(identity.remap(600), bkc::CheckError);
}

// ---- Edge cases: degenerate set sizes, single elements, ties ----

TEST(Clustering, ZeroSizedCommonSetKeepsEverything) {
  // M = 0: there is no common set to substitute into, so every rare
  // sequence stays, whatever N says.
  FrequencyTable t;
  t.add(0b000000000, 100);
  t.add(0b000000001, 1);
  const auto result =
      cluster_sequences(t, {.most_common = 0, .least_common = 2});
  EXPECT_TRUE(result.replacements().empty());
  EXPECT_EQ(result.remap(0b000000001), 0b000000001);
}

TEST(Clustering, ZeroSizedRareSetIsIdentity) {
  // N = 0: nothing is eligible for removal.
  FrequencyTable t;
  t.add(0b000000000, 100);
  t.add(0b000000001, 1);
  const auto result =
      cluster_sequences(t, {.most_common = 2, .least_common = 0});
  EXPECT_TRUE(result.replacements().empty());
}

TEST(Clustering, SingleDistinctSequenceIsIdentity) {
  // One occurring sequence lands in st; su is empty by the
  // no-overlap rule even with huge N.
  FrequencyTable t;
  t.add(42, 1000);
  const auto result =
      cluster_sequences(t, {.most_common = 64, .least_common = 352});
  EXPECT_TRUE(result.replacements().empty());
  EXPECT_EQ(result.remap(42), 42);
  EXPECT_EQ(result.total_occurrences(), 1000u);
}

TEST(Clustering, TiedCandidateFrequenciesPickLowestId) {
  // Sequences 0 (000000000) and 3 (000000011) are both distance 1 from
  // rare sequence 1 (000000001) and tie in frequency. The ranking is
  // deterministic (ties by ascending id), and "strictly greater count"
  // keeps the first-ranked candidate: sequence 0 wins, every run.
  FrequencyTable t;
  t.add(0, 50);
  t.add(3, 50);
  t.add(1, 1);
  const auto result =
      cluster_sequences(t, {.most_common = 2, .least_common = 1});
  ASSERT_EQ(result.replacements().size(), 1u);
  EXPECT_EQ(result.remap(1), 0);
}

TEST(Clustering, TiedRareSequencesAreAllEligible) {
  // Three rare sequences with identical counts: the rare set takes the
  // deterministic tail of the ranking, and each finds its distance-1
  // common target independently.
  FrequencyTable t;
  t.add(0b000000000, 100);
  t.add(0b000000001, 1);
  t.add(0b000000010, 1);
  t.add(0b000000100, 1);
  const auto result =
      cluster_sequences(t, {.most_common = 1, .least_common = 3});
  EXPECT_EQ(result.replacements().size(), 3u);
  EXPECT_EQ(result.remap(0b000000001), 0b000000000);
  EXPECT_EQ(result.remap(0b000000010), 0b000000000);
  EXPECT_EQ(result.remap(0b000000100), 0b000000000);
  EXPECT_EQ(result.replaced_occurrences(), 3u);
}

TEST(Clustering, ApplyOnEmptyTableYieldsEmptyTable) {
  const ClusteringResult identity;
  FrequencyTable empty;
  const auto applied = identity.apply(empty);
  EXPECT_EQ(applied.total(), 0u);
  EXPECT_EQ(applied.distinct(), 0u);
}

TEST(Clustering, ApplyToEmptySequenceListIsEmpty) {
  const ClusteringResult identity;
  const std::vector<SeqId> empty;
  EXPECT_TRUE(identity.apply(std::span<const SeqId>(empty)).empty());
}

}  // namespace
}  // namespace bkc::compress
