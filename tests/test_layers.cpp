// Tests for the non-conv layers of the ReActNet block.

#include "bnn/layers.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "bnn/memory_plan.h"
#include "bnn/weights.h"
#include "util/check.h"

namespace bkc::bnn {
namespace {

TEST(Sign, BinarizesEverything) {
  SignActivation sign;
  Tensor t(FeatureShape{1, 1, 4}, {-2.0f, -0.0f, 0.0f, 3.0f});
  const Tensor out = sign.forward(t);
  EXPECT_FLOAT_EQ(out.data()[0], -1.0f);
  // IEEE -0.0f >= 0 holds, so -0.0 binarizes to +1 like the paper's
  // x >= 0 rule.
  EXPECT_FLOAT_EQ(out.data()[1], 1.0f);
  EXPECT_FLOAT_EQ(out.data()[2], 1.0f);
  EXPECT_FLOAT_EQ(out.data()[3], 1.0f);
}

TEST(BatchNorm, AffinePerChannel) {
  BatchNorm bn("bn", {2.0f, -1.0f}, {0.5f, 1.0f});
  Tensor t(FeatureShape{2, 1, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  const Tensor out = bn.forward(t);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 2.5f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1), 4.5f);
  EXPECT_FLOAT_EQ(out.at(1, 0, 0), -2.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0, 1), -3.0f);
}

TEST(BatchNorm, ChannelMismatchThrows) {
  BatchNorm bn("bn", {1.0f}, {0.0f});
  Tensor t(FeatureShape{2, 1, 1});
  EXPECT_THROW(bn.forward(t), CheckError);
}

TEST(RPReLU, ShiftSlopeShift) {
  // y = PReLU(x - shift_in) + shift_out with slope on the negative side.
  RPReLU act("act", /*shift_in=*/{1.0f}, /*slope=*/{0.5f},
             /*shift_out=*/{10.0f});
  Tensor t(FeatureShape{1, 1, 3}, {3.0f, 1.0f, -1.0f});
  const Tensor out = act.forward(t);
  EXPECT_FLOAT_EQ(out.data()[0], 2.0f + 10.0f);   // positive branch
  EXPECT_FLOAT_EQ(out.data()[1], 0.0f + 10.0f);   // at the knee
  EXPECT_FLOAT_EQ(out.data()[2], -1.0f + 10.0f);  // 0.5 * (-2) + 10
}

TEST(AvgPool2x2, Averages) {
  AvgPool2x2 pool;
  Tensor t(FeatureShape{1, 2, 2}, {1.0f, 2.0f, 3.0f, 6.0f});
  const Tensor out = pool.forward(t);
  EXPECT_EQ(out.shape(), (FeatureShape{1, 1, 1}));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 3.0f);
}

TEST(AvgPool2x2, OddSizeThrows) {
  AvgPool2x2 pool;
  Tensor t(FeatureShape{1, 3, 2});
  EXPECT_THROW(pool.forward(t), CheckError);
}

TEST(GlobalAvgPool, ReducesToOnePixel) {
  GlobalAvgPool pool;
  Tensor t(FeatureShape{2, 2, 2}, {1, 1, 1, 1, 2, 2, 2, 10});
  const Tensor out = pool.forward(t);
  EXPECT_EQ(out.shape(), (FeatureShape{2, 1, 1}));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0, 0), 4.0f);
}

TEST(Int8Conv, ApproximatesFloatConv) {
  WeightGenerator gen(3);
  const KernelShape ks{4, 3, 3, 3};
  const WeightTensor w = gen.sample_float_weights(ks, 0.5f);
  Int8Conv2d conv("stem", w, std::vector<float>(4, 0.0f),
                  {.stride = 2, .padding = 1});
  const Tensor input = gen.sample_activation({3, 8, 8});
  const Tensor q_out = conv.forward(input);
  const Tensor f_out =
      reference_conv2d(input, w, {.stride = 2, .padding = 1}, 0.0f);
  ASSERT_EQ(q_out.shape(), f_out.shape());
  // int8 quantization error stays small relative to the output scale.
  float max_abs = 0.0f;
  for (float v : f_out.data()) max_abs = std::max(max_abs, std::abs(v));
  for (std::size_t i = 0; i < q_out.data().size(); ++i) {
    EXPECT_NEAR(q_out.data()[i], f_out.data()[i], 0.05f * max_abs + 0.05f);
  }
}

TEST(Int8Linear, ApproximatesFloatGemv) {
  WeightGenerator gen(5);
  const std::int64_t in = 32;
  const std::int64_t out = 7;
  const auto w = gen.sample_floats(static_cast<std::size_t>(in * out), 0.3f);
  const auto bias = gen.sample_floats(static_cast<std::size_t>(out), 0.1f);
  Int8Linear fc("fc", in, out, w, bias);
  Tensor input(FeatureShape{in, 1, 1});
  for (auto& v : input.data()) v = static_cast<float>(gen.rng().normal());
  const Tensor got = fc.forward(input);
  for (std::int64_t o = 0; o < out; ++o) {
    float expect = bias[static_cast<std::size_t>(o)];
    for (std::int64_t i = 0; i < in; ++i) {
      expect += w[static_cast<std::size_t>(o * in + i)] *
                input.at(i, 0, 0);
    }
    EXPECT_NEAR(got.at(o, 0, 0), expect, 0.15f);
  }
}

TEST(Int8Linear, RequiresFlatInput) {
  Int8Linear fc("fc", 4, 2, std::vector<float>(8, 0.1f),
                std::vector<float>(2, 0.0f));
  Tensor t(FeatureShape{4, 2, 1});
  EXPECT_THROW(fc.forward(t), CheckError);
}

TEST(Topology, ResidualAddAndConcat) {
  Tensor a(FeatureShape{1, 1, 2}, {1.0f, 2.0f});
  Tensor b(FeatureShape{1, 1, 2}, {10.0f, 20.0f});
  const Tensor sum = residual_add(a, b);
  EXPECT_FLOAT_EQ(sum.data()[0], 11.0f);
  EXPECT_FLOAT_EQ(sum.data()[1], 22.0f);
  const Tensor cat = concat_channels(a, b);
  EXPECT_EQ(cat.shape(), (FeatureShape{2, 1, 2}));
  EXPECT_FLOAT_EQ(cat.at(0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(cat.at(1, 0, 1), 20.0f);
}

TEST(Topology, ResidualShapeMismatchThrows) {
  Tensor a(FeatureShape{1, 1, 2});
  Tensor b(FeatureShape{1, 2, 1});
  EXPECT_THROW(residual_add(a, b), CheckError);
}

TEST(LayerInfo, BinaryConvClassification) {
  PackedKernel k3(KernelShape{4, 8, 3, 3});
  BinaryConv2d c3("c3", std::move(k3), {.stride = 1, .padding = 1});
  EXPECT_EQ(c3.info({8, 4, 4}).op_class, OpClass::kConv3x3);
  EXPECT_EQ(c3.info({8, 4, 4}).precision_bits, 1);
  EXPECT_EQ(c3.info({8, 4, 4}).storage_bits, 4u * 8u * 9u);

  PackedKernel k1(KernelShape{4, 8, 1, 1});
  BinaryConv2d c1("c1", std::move(k1), {.stride = 1, .padding = 0});
  EXPECT_EQ(c1.info({8, 4, 4}).op_class, OpClass::kConv1x1);
}

TEST(LayerInfo, SetKernelShapeGuard) {
  PackedKernel k(KernelShape{4, 8, 3, 3});
  BinaryConv2d conv("c", std::move(k), {.stride = 1, .padding = 1});
  EXPECT_THROW(conv.set_kernel(PackedKernel(KernelShape{4, 8, 1, 1})),
               CheckError);
  conv.set_kernel(PackedKernel(KernelShape{4, 8, 3, 3}));  // ok
}

TEST(OpClassNames, MatchTableI) {
  EXPECT_EQ(op_class_name(OpClass::kInputLayer), "Input Layer");
  EXPECT_EQ(op_class_name(OpClass::kOutputLayer), "Output Layer");
  EXPECT_EQ(op_class_name(OpClass::kConv1x1), "Conv 1x1");
  EXPECT_EQ(op_class_name(OpClass::kConv3x3), "Conv 3x3");
  EXPECT_EQ(op_class_name(OpClass::kOther), "Others");
}

// ---- forward_into: the zero-allocation entry point of every layer ----

/// Workspace big enough for any layer in these tests.
Workspace test_workspace() {
  return Workspace(MemoryPlan{.activation_floats = 4096,
                              .scratch_bytes = 16384,
                              .pack_words = 1024});
}

/// forward() and forward_into() must agree bit-for-bit.
void expect_into_matches_forward(const Layer& layer, const Tensor& input) {
  const Tensor expected = layer.forward(input);
  Workspace workspace = test_workspace();
  Tensor out(layer.output_shape(input.shape()));
  layer.forward_into(input, out, workspace);
  ASSERT_EQ(out.shape(), expected.shape());
  EXPECT_EQ(std::memcmp(out.data().data(), expected.data().data(),
                        expected.data().size_bytes()),
            0);
}

Tensor random_activation(const FeatureShape& shape, std::uint64_t seed) {
  WeightGenerator gen(seed);
  return gen.sample_activation(shape);
}

TEST(ForwardInto, MatchesForwardForEveryLayerKind) {
  WeightGenerator gen(31);
  const Tensor input = random_activation({8, 6, 6}, 61);

  expect_into_matches_forward(SignActivation(), input);
  expect_into_matches_forward(
      BinaryConv2d("c3", gen.sample_kernel({4, 8, 3, 3}), {1, 1}), input);
  expect_into_matches_forward(
      BinaryConv2d("c1", gen.sample_kernel({8, 8, 1, 1}), {1, 0}), input);
  expect_into_matches_forward(
      BinaryConv2d("c3s2", gen.sample_kernel({8, 8, 3, 3}), {2, 1}), input);
  expect_into_matches_forward(
      Int8Conv2d("stem", gen.sample_float_weights({4, 8, 3, 3}, 0.5f),
                 gen.sample_floats(4, 0.05f), {1, 1}),
      input);
  expect_into_matches_forward(
      BatchNorm("bn", gen.sample_floats(8, 0.1f, 1.0f),
                gen.sample_floats(8, 0.05f)),
      input);
  expect_into_matches_forward(
      RPReLU("act", gen.sample_floats(8, 0.1f),
             gen.sample_floats(8, 0.05f, 0.25f), gen.sample_floats(8, 0.1f)),
      input);
  expect_into_matches_forward(AvgPool2x2(), input);
  expect_into_matches_forward(GlobalAvgPool(), input);
  expect_into_matches_forward(
      Int8Linear("fc", 8, 5, gen.sample_floats(40, 0.05f),
                 gen.sample_floats(5, 0.01f)),
      random_activation({8, 1, 1}, 63));
}

TEST(ForwardInto, AliasSafeLayersRunInPlace) {
  // BatchNorm, RPReLU and SignActivation document in-place support —
  // the block orchestration overwrites its own buffers through them.
  WeightGenerator gen(33);
  const Tensor input = random_activation({4, 5, 5}, 67);
  Workspace workspace = test_workspace();
  std::vector<std::unique_ptr<Layer>> layers;
  layers.push_back(std::make_unique<BatchNorm>(
      "bn", gen.sample_floats(4, 0.1f, 1.0f), gen.sample_floats(4, 0.05f)));
  layers.push_back(std::make_unique<RPReLU>(
      "act", gen.sample_floats(4, 0.1f), gen.sample_floats(4, 0.05f, 0.25f),
      gen.sample_floats(4, 0.1f)));
  layers.push_back(std::make_unique<SignActivation>());
  for (const auto& layer : layers) {
    const Tensor expected = layer->forward(input);
    Tensor in_place = input;
    TensorView view(in_place);
    layer->forward_into(view, view, workspace);
    EXPECT_EQ(std::memcmp(in_place.data().data(), expected.data().data(),
                          expected.data().size_bytes()),
              0);
  }
}

TEST(ForwardInto, DefaultWrapperBridgesOutOfTreeLayers) {
  // A layer that overrides neither forward_into nor output_shape must
  // keep working through the compatibility wrappers (at legacy
  // allocation cost).
  class Doubler final : public Layer {
   public:
    Tensor forward(const Tensor& input) const override {
      Tensor out = input;
      out.transform([](float v) { return 2.0f * v; });
      return out;
    }
    LayerInfo info(const FeatureShape& input_shape) const override {
      return {.name = "doubler", .output_shape = input_shape};
    }
    std::string name() const override { return "doubler"; }
  };
  const Doubler layer;
  const Tensor input = random_activation({3, 4, 4}, 71);
  EXPECT_EQ(layer.output_shape(input.shape()), input.shape());
  expect_into_matches_forward(layer, input);
}

TEST(ForwardInto, ShapeMismatchThrows) {
  SignActivation sign;
  Workspace workspace = test_workspace();
  Tensor input(FeatureShape{2, 3, 3});
  Tensor wrong(FeatureShape{2, 3, 4});
  EXPECT_THROW(sign.forward_into(input, wrong, workspace), CheckError);
}

TEST(ResidualAddInto, MatchesAndAliases) {
  const Tensor a = random_activation({3, 4, 4}, 73);
  const Tensor b = random_activation({3, 4, 4}, 74);
  const Tensor expected = residual_add(a, b);
  Tensor out(a.shape());
  residual_add_into(a, b, out);
  EXPECT_EQ(std::memcmp(out.data().data(), expected.data().data(),
                        expected.data().size_bytes()),
            0);
  // Aliased form: out == a, the in-place residual the block uses.
  Tensor aliased = a;
  TensorView view(aliased);
  residual_add_into(view, b, view);
  EXPECT_EQ(std::memcmp(aliased.data().data(), expected.data().data(),
                        expected.data().size_bytes()),
            0);
}

TEST(ConcatChannelsInto, MatchesConcatChannels) {
  const Tensor a = random_activation({3, 4, 4}, 75);
  const Tensor b = random_activation({5, 4, 4}, 76);
  const Tensor expected = concat_channels(a, b);
  Tensor out(FeatureShape{8, 4, 4});
  concat_channels_into(a, b, out);
  EXPECT_EQ(std::memcmp(out.data().data(), expected.data().data(),
                        expected.data().size_bytes()),
            0);
}

}  // namespace
}  // namespace bkc::bnn
