// Unit tests for util/binary_io.h — the bounds-checked little-endian
// reader/writer underneath the BKCM container. Every reader failure
// must be a CheckError carrying the reader's context string (that is
// what turns a truncated model file into a diagnosable message instead
// of UB).

#include "util/binary_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

namespace bkc {
namespace {

TEST(BinaryIo, FixedWidthRoundTrip) {
  ByteWriter writer;
  writer.write_u8(0xab);
  writer.write_u16(0x1234);
  writer.write_u32(0xdeadbeef);
  writer.write_u64(0x0123456789abcdefULL);
  writer.write_i64(-42);
  writer.write_f64(3.14159);
  const auto bytes = writer.take();

  ByteReader reader(bytes, "test");
  EXPECT_EQ(reader.read_u8(), 0xab);
  EXPECT_EQ(reader.read_u16(), 0x1234);
  EXPECT_EQ(reader.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(reader.read_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(reader.read_i64(), -42);
  EXPECT_EQ(reader.read_f64(), 3.14159);
  reader.expect_exhausted();
}

TEST(BinaryIo, LittleEndianLayout) {
  ByteWriter writer;
  writer.write_u32(0x04030201);
  const auto bytes = writer.take();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(bytes[0], 0x01);
  EXPECT_EQ(bytes[1], 0x02);
  EXPECT_EQ(bytes[2], 0x03);
  EXPECT_EQ(bytes[3], 0x04);
}

TEST(BinaryIo, DoublesRoundTripBitExactly) {
  // Including values that naive text round trips mangle.
  for (double value :
       {0.0, -0.0, 1.0 / 3.0, 1e-300, 1e300,
        std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::denorm_min()}) {
    ByteWriter writer;
    writer.write_f64(value);
    const auto bytes = writer.take();
    ByteReader reader(bytes, "test");
    const double read = reader.read_f64();
    EXPECT_EQ(std::memcmp(&read, &value, sizeof(double)), 0) << value;
  }
}

TEST(BinaryIo, VarintRoundTripAndWidth) {
  const std::uint64_t values[] = {
      0, 1, 127, 128, 16383, 16384, 0xffffffffULL,
      std::numeric_limits<std::uint64_t>::max()};
  for (std::uint64_t value : values) {
    ByteWriter writer;
    writer.write_varint(value);
    const auto bytes = writer.take();
    if (value < 128) {
      EXPECT_EQ(bytes.size(), 1u) << value;
    }
    ByteReader reader(bytes, "test");
    EXPECT_EQ(reader.read_varint(), value);
    reader.expect_exhausted();
  }
}

TEST(BinaryIo, VarintRejectsOverlongAndOverflowingEncodings) {
  // 11 continuation bytes: longer than any valid 64-bit varint.
  const std::vector<std::uint8_t> overlong(11, 0x80);
  ByteReader long_reader(overlong, "test");
  EXPECT_THROW(long_reader.read_varint(), CheckError);
  // 10 bytes whose last payload overflows bit 63.
  std::vector<std::uint8_t> overflow(10, 0x80);
  overflow[9] = 0x7f;
  ByteReader overflow_reader(overflow, "test");
  EXPECT_THROW(overflow_reader.read_varint(), CheckError);
}

TEST(BinaryIo, VarintRejectsNonMinimalEncodings) {
  // 0x85 0x00 decodes to 5 but the canonical form is 0x05; only one
  // byte form per value is accepted (the BKCM canonical-encoding
  // guarantee rests on this).
  const std::vector<std::uint8_t> padded = {0x85, 0x00};
  ByteReader padded_reader(padded, "test");
  EXPECT_THROW(padded_reader.read_varint(), CheckError);
  // A single 0x00 byte IS the canonical encoding of zero.
  const std::vector<std::uint8_t> zero = {0x00};
  ByteReader zero_reader(zero, "test");
  EXPECT_EQ(zero_reader.read_varint(), 0u);
}

TEST(BinaryIo, StringRoundTripAndLengthGuard) {
  ByteWriter writer;
  writer.write_string("block_03");
  writer.write_string("");
  const auto bytes = writer.take();
  ByteReader reader(bytes, "test");
  EXPECT_EQ(reader.read_string(), "block_03");
  EXPECT_EQ(reader.read_string(), "");
  reader.expect_exhausted();

  ByteWriter long_writer;
  long_writer.write_string("abcdef");
  const auto long_bytes = long_writer.take();
  ByteReader limited(long_bytes, "test");
  EXPECT_THROW(limited.read_string(/*max_length=*/3), CheckError);
}

TEST(BinaryIo, TruncationErrorsNameContextAndOffset) {
  ByteWriter writer;
  writer.write_u16(7);
  const auto bytes = writer.take();
  ByteReader reader(bytes, "BKCM section 'CONF'");
  reader.read_u8();
  try {
    reader.read_u32();
    FAIL() << "reading past the end must throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("BKCM section 'CONF'"), std::string::npos) << what;
    EXPECT_NE(what.find("truncated"), std::string::npos) << what;
  }
}

TEST(BinaryIo, ExpectExhaustedRejectsTrailingBytes) {
  ByteWriter writer;
  writer.write_u16(7);
  const auto bytes = writer.take();
  ByteReader reader(bytes, "test");
  reader.read_u8();
  EXPECT_THROW(reader.expect_exhausted(), CheckError);
}

TEST(BinaryIo, SubReaderIsBoundsCheckedAndCarriesItsOwnContext) {
  ByteWriter writer;
  writer.write_u32(0xaabbccdd);
  const auto bytes = writer.take();
  const ByteReader whole(bytes, "file");
  ByteReader sub = whole.sub(1, 2, "section");
  EXPECT_EQ(sub.read_u8(), 0xcc);
  EXPECT_EQ(sub.remaining(), 1u);
  EXPECT_THROW(whole.sub(2, 3, "section"), CheckError);
  EXPECT_THROW(whole.sub(5, 0, "section"), CheckError);
  // Offset + length overflow must not wrap around.
  EXPECT_THROW(
      whole.sub(1, std::numeric_limits<std::size_t>::max(), "section"),
      CheckError);
}

TEST(BinaryIo, Crc32MatchesTheIeeeReferenceVector) {
  // The canonical check value of the IEEE 802.3 / zlib polynomial.
  const std::string data = "123456789";
  const std::uint32_t crc = crc32(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
  EXPECT_EQ(crc, 0xcbf43926u);
  EXPECT_EQ(crc32({}), 0u);
}

TEST(BinaryIo, FileRoundTripAndMissingFileError) {
  const std::string path =
      ::testing::TempDir() + "/bkc_binary_io_roundtrip.bin";
  const std::vector<std::uint8_t> payload = {0x00, 0xff, 0x42, 0x10};
  write_file_bytes(path, payload);
  EXPECT_EQ(read_file_bytes(path), payload);
  std::remove(path.c_str());
  try {
    read_file_bytes(path);
    FAIL() << "missing file must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace bkc
