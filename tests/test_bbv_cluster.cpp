// Tests for the sampled-simulation building blocks: the code-length
// histogram signatures + seeded random projection (hwsim/bbv.h) and
// the deterministic k-means (hwsim/cluster.h).

#include "hwsim/bbv.h"
#include "hwsim/cluster.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "support/support.h"
#include "util/check.h"

namespace bkc::hwsim {
namespace {

/// BlockStreamView borrows its code lengths, so the fixture owns them.
/// (Moving the wrapper keeps the span valid: a vector move preserves
/// the heap buffer the span points into.)
struct OwnedBlock {
  std::vector<std::uint8_t> lengths;
  compress::BlockStreamView view;
};

OwnedBlock block_with_lengths(std::vector<std::uint8_t> lengths) {
  OwnedBlock block;
  block.lengths = std::move(lengths);
  // Signature code only touches code_lengths; a 1xN layout keeps
  // num_sequences consistent for anything else that looks.
  block.view.out_channels = 1;
  block.view.in_channels = static_cast<std::int64_t>(block.lengths.size());
  block.view.code_lengths = block.lengths;
  std::uint64_t bits = 0;
  for (const auto length : block.lengths) bits += length;
  block.view.stream_bits = bits;
  return block;
}

TEST(Bbv, SignatureIsNormalizedHistogram) {
  const auto block = block_with_lengths({1, 1, 3, 3, 3, 9, 40, 200});
  const std::vector<double> signature = block_signature(block.view);
  ASSERT_EQ(signature.size(), static_cast<std::size_t>(kSignatureBins));
  EXPECT_DOUBLE_EQ(signature[0], 2.0 / 8.0);  // length 1
  EXPECT_DOUBLE_EQ(signature[2], 3.0 / 8.0);  // length 3
  EXPECT_DOUBLE_EQ(signature[8], 1.0 / 8.0);  // length 9
  // Lengths beyond the bin range fold into the last bin.
  EXPECT_DOUBLE_EQ(signature[kSignatureBins - 1], 2.0 / 8.0);
  double total = 0.0;
  for (const double s : signature) total += s;
  EXPECT_DOUBLE_EQ(total, 1.0);
}

TEST(Bbv, SignatureIsSizeInvariant) {
  // Same length *distribution* at 3x the block size => same signature:
  // the fingerprint captures the stream's shape, not its size.
  const auto small = block_with_lengths({1, 2, 2, 5});
  const auto large =
      block_with_lengths({1, 1, 1, 2, 2, 2, 2, 2, 2, 5, 5, 5});
  EXPECT_EQ(block_signature(small.view), block_signature(large.view));
}

TEST(Bbv, SignatureRejectsDegenerateBlocks) {
  EXPECT_THROW(block_signature(block_with_lengths({}).view), CheckError);
  EXPECT_THROW(block_signature(block_with_lengths({3, 0, 2}).view), CheckError);
}

TEST(Bbv, ProjectionIsDeterministicAndSeedSensitive) {
  const std::vector<std::vector<double>> signatures = {
      block_signature(block_with_lengths({1, 2, 3, 4, 5}).view),
      block_signature(block_with_lengths({7, 7, 7, 9}).view),
  };
  const auto a = project_signatures(signatures, 4, 123);
  const auto b = project_signatures(signatures, 4, 123);
  EXPECT_EQ(a, b);  // bit-identical, not just close
  const auto c = project_signatures(signatures, 4, 124);
  EXPECT_NE(a, c);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0].size(), 4u);
}

TEST(Bbv, ProjectionOfOneSignatureIndependentOfBatch) {
  // The matrix is shared and fixed by (dims, seed): a signature's
  // projection must not change when other signatures ride along.
  const auto sig = block_signature(block_with_lengths({2, 3, 3, 8}).view);
  const auto other = block_signature(block_with_lengths({1, 1, 9, 9}).view);
  const auto alone = project_signatures({sig}, 6, 7);
  const auto batched = project_signatures({other, sig}, 6, 7);
  EXPECT_EQ(alone[0], batched[1]);
}

TEST(Bbv, ProjectionRejectsBadArguments) {
  const std::vector<std::vector<double>> good = {
      block_signature(block_with_lengths({1, 2}).view)};
  EXPECT_THROW(project_signatures(good, 0, 1), CheckError);
  const std::vector<std::vector<double>> short_sig = {{0.5, 0.5}};
  EXPECT_THROW(project_signatures(short_sig, 2, 1), CheckError);
}

TEST(Bbv, GeometryKeyDistinguishesLayoutNotName) {
  const auto ops = bnn::op_records_for(test::tiny_config(1));
  std::vector<const bnn::OpRecord*> conv3x3;
  for (const auto& op : ops) {
    if (op.op_class == bnn::OpClass::kConv3x3 && op.precision_bits == 1) {
      conv3x3.push_back(&op);
    }
  }
  // The 13-block MobileNet schedule: blocks 6..10 are the five
  // {512,512,1} (width-divided) repeats and share a geometry; the first
  // and last blocks do not.
  ASSERT_EQ(conv3x3.size(), 13u);
  EXPECT_NE(GeometryKey::from_op(*conv3x3.front()),
            GeometryKey::from_op(*conv3x3.back()));
  for (std::size_t b = 7; b <= 10; ++b) {
    EXPECT_EQ(GeometryKey::from_op(*conv3x3[6]),
              GeometryKey::from_op(*conv3x3[b]));
  }
}

TEST(Cluster, KMeansSeparatesObviousClusters) {
  const std::vector<std::vector<double>> points = {
      {0.0, 0.0}, {0.1, 0.0}, {0.0, 0.1},
      {10.0, 10.0}, {10.1, 10.0}, {10.0, 10.1}};
  const KMeansResult result = kmeans(points, {.k = 2, .seed = 5});
  ASSERT_EQ(result.assignment.size(), points.size());
  EXPECT_EQ(result.assignment[0], result.assignment[1]);
  EXPECT_EQ(result.assignment[0], result.assignment[2]);
  EXPECT_EQ(result.assignment[3], result.assignment[4]);
  EXPECT_EQ(result.assignment[3], result.assignment[5]);
  EXPECT_NE(result.assignment[0], result.assignment[3]);
}

TEST(Cluster, KMeansIsDeterministic) {
  std::vector<std::vector<double>> points;
  std::uint64_t state = 99;
  for (int i = 0; i < 40; ++i) {
    const double x =
        static_cast<double>(splitmix64(state) % 1000) / 1000.0;
    const double y =
        static_cast<double>(splitmix64(state) % 1000) / 1000.0;
    points.push_back({x, y, x + y});
  }
  const KMeansConfig config{.k = 5, .seed = 17, .max_iters = 16};
  const KMeansResult a = kmeans(points, config);
  const KMeansResult b = kmeans(points, config);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.centroids, b.centroids);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(Cluster, KMeansHandlesDuplicatePoints) {
  // Fewer distinct points than k: the k-means++ fallback and the
  // empty-cluster rule must not throw, and every point of one
  // duplicate set must land in one cluster.
  const std::vector<std::vector<double>> points = {
      {1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}};
  const KMeansResult result = kmeans(points, {.k = 3, .seed = 1});
  EXPECT_EQ(result.assignment[0], result.assignment[1]);
  EXPECT_EQ(result.assignment[0], result.assignment[2]);
  EXPECT_EQ(result.assignment[0], result.assignment[3]);
}

TEST(Cluster, KMeansSingleClusterIsMean) {
  const std::vector<std::vector<double>> points = {
      {0.0, 4.0}, {2.0, 0.0}, {4.0, 2.0}};
  const KMeansResult result = kmeans(points, {.k = 1, .seed = 3});
  ASSERT_EQ(result.centroids.size(), 1u);
  EXPECT_DOUBLE_EQ(result.centroids[0][0], 2.0);
  EXPECT_DOUBLE_EQ(result.centroids[0][1], 2.0);
}

TEST(Cluster, KMeansRejectsBadConfigs) {
  const std::vector<std::vector<double>> points = {{1.0}, {2.0}};
  EXPECT_THROW(kmeans({}, {.k = 1}), CheckError);
  EXPECT_THROW(kmeans(points, {.k = 0}), CheckError);
  EXPECT_THROW(kmeans(points, {.k = 3}), CheckError);
  EXPECT_THROW(kmeans(points, {.k = 1, .seed = 0, .max_iters = 0}),
               CheckError);
  const std::vector<std::vector<double>> mixed = {{1.0}, {2.0, 3.0}};
  EXPECT_THROW(kmeans(mixed, {.k = 1}), CheckError);
}

TEST(Cluster, ClosestMemberBreaksTiesToLowestIndex) {
  const std::vector<std::vector<double>> points = {
      {5.0}, {1.0}, {3.0}, {1.0}};
  // Members 1 and 3 are equidistant (identical) — lowest index wins.
  const std::vector<std::size_t> members = {1, 2, 3};
  EXPECT_EQ(closest_member(points, members, {1.0}), 1u);
  EXPECT_EQ(closest_member(points, members, {2.9}), 2u);
  EXPECT_THROW(closest_member(points, {}, {1.0}), CheckError);
}

}  // namespace
}  // namespace bkc::hwsim
