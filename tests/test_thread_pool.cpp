// Tests for the deterministic thread-pool subsystem.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/check.h"

namespace bkc {
namespace {

TEST(ThreadPool, RunExecutesEveryTaskExactlyOnce) {
  ThreadPool pool(3);
  for (int num_tasks : {0, 1, 2, 3, 7, 64}) {
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(num_tasks));
    pool.run(num_tasks, [&](int t) {
      hits[static_cast<std::size_t>(t)].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ReusableAcrossManyRuns) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.run(4, [&](int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200);
}

TEST(ThreadPool, RethrowsLowestNumberedFailingTask) {
  ThreadPool pool(4);
  // Tasks 5 and 2 both fail; the propagation rule picks task 2 every
  // time, independent of which worker hit its error first.
  for (int attempt = 0; attempt < 10; ++attempt) {
    try {
      pool.run(8, [&](int t) {
        if (t == 5) throw std::runtime_error("task 5");
        if (t == 2) throw std::runtime_error("task 2");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 2");
    }
  }
}

TEST(ThreadPool, ConcurrentCallersSerializeSafely) {
  // Two user threads driving the same pool at once (e.g. two servers
  // sharing the process-wide pool): calls must serialize, every task
  // of both callers running exactly once.
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits_a(64);
  std::vector<std::atomic<int>> hits_b(64);
  std::thread other([&] {
    for (int round = 0; round < 16; ++round) {
      pool.run(4, [&, round](int t) {
        hits_b[static_cast<std::size_t>(round * 4 + t)].fetch_add(1);
      });
    }
  });
  for (int round = 0; round < 16; ++round) {
    pool.run(4, [&, round](int t) {
      hits_a[static_cast<std::size_t>(round * 4 + t)].fetch_add(1);
    });
  }
  other.join();
  for (const auto& h : hits_a) EXPECT_EQ(h.load(), 1);
  for (const auto& h : hits_b) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, BadArgumentsThrow) {
  EXPECT_THROW(ThreadPool(0), CheckError);
  ThreadPool pool(1);
  EXPECT_THROW(pool.run(-1, [](int) {}), CheckError);
}

TEST(ThreadPool, SharedPoolIsASingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
  EXPECT_GE(ThreadPool::shared().num_workers(), 2);
}

TEST(ThreadPool, OnWorkerThreadOnlyInsideTasks) {
  EXPECT_FALSE(ThreadPool::on_worker_thread());
  ThreadPool pool(2);
  std::atomic<int> inside{0};
  pool.run(4, [&](int) { inside.fetch_add(ThreadPool::on_worker_thread()); });
  EXPECT_EQ(inside.load(), 4);
  EXPECT_FALSE(ThreadPool::on_worker_thread());
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  for (std::int64_t total : {0, 1, 5, 64, 1000}) {
    for (int threads : {1, 2, 3, 7, 16}) {
      std::vector<std::atomic<int>> hits(static_cast<std::size_t>(total));
      parallel_for(total, threads, [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          hits[static_cast<std::size_t>(i)].fetch_add(1);
        }
      });
      for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    }
  }
}

TEST(ParallelFor, PartitionIsAFixedFunctionOfTotalAndThreads) {
  // The chunk boundaries must be reproducible run over run (no dynamic
  // scheduling): collect them twice and compare.
  const std::int64_t total = 103;
  const int threads = 7;
  auto collect = [&] {
    std::mutex mutex;
    std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
    parallel_for(total, threads, [&](std::int64_t begin, std::int64_t end) {
      std::lock_guard<std::mutex> lock(mutex);
      chunks.emplace_back(begin, end);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  const auto first = collect();
  ASSERT_EQ(first.size(), 7u);
  for (int round = 0; round < 5; ++round) EXPECT_EQ(collect(), first);
  // Contiguous cover of [0, total) with near-equal sizes.
  std::int64_t expected_begin = 0;
  for (const auto& [begin, end] : first) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_GE(end - begin, total / threads);
    EXPECT_LE(end - begin, total / threads + 1);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, total);
}

TEST(ChunkBounds, CoversAnyRangeContiguouslyWithNearEqualChunks) {
  for (std::int64_t total : {0, 1, 5, 103, 1000}) {
    for (int chunks : {1, 2, 3, 7, 16}) {
      std::int64_t expected_begin = 0;
      for (int c = 0; c < chunks; ++c) {
        const ChunkBounds bounds = chunk_bounds(total, chunks, c);
        EXPECT_EQ(bounds.begin, expected_begin)
            << "total " << total << " chunks " << chunks << " c " << c;
        EXPECT_GE(bounds.end - bounds.begin, total / chunks);
        EXPECT_LE(bounds.end - bounds.begin, total / chunks + 1);
        expected_begin = bounds.end;
      }
      EXPECT_EQ(expected_begin, total);
    }
  }
}

TEST(ChunkBounds, NearInt64MaxTotalDoesNotOverflow) {
  // Regression: the old partition computed total * c / chunks, whose
  // intermediate product overflows (UB) for any total above
  // INT64_MAX / chunks. The overflow-free split must keep producing a
  // contiguous, near-equal cover right up to INT64_MAX.
  const std::int64_t huge = std::numeric_limits<std::int64_t>::max() - 9;
  for (int chunks : {2, 3, 7, 16}) {
    std::int64_t expected_begin = 0;
    for (int c = 0; c < chunks; ++c) {
      const ChunkBounds bounds = chunk_bounds(huge, chunks, c);
      ASSERT_EQ(bounds.begin, expected_begin) << "chunks " << chunks
                                              << " c " << c;
      ASSERT_GE(bounds.end, bounds.begin);
      ASSERT_GE(bounds.end - bounds.begin, huge / chunks);
      ASSERT_LE(bounds.end - bounds.begin, huge / chunks + 1);
      expected_begin = bounds.end;
    }
    ASSERT_EQ(expected_begin, huge);
  }
  // INT64_MAX itself, the absolute worst case.
  const std::int64_t max = std::numeric_limits<std::int64_t>::max();
  const ChunkBounds last = chunk_bounds(max, 7, 6);
  EXPECT_EQ(last.end, max);
}

TEST(ChunkBounds, ParallelForHandsOutTheSameBoundsForHugeTotals) {
  // parallel_for must survive (and partition correctly for) totals the
  // old arithmetic overflowed on. The chunks only record their
  // boundaries - nobody iterates 10^18 elements.
  const std::int64_t huge = std::numeric_limits<std::int64_t>::max() / 2 + 3;
  const int threads = 4;
  std::mutex mutex;
  std::vector<std::pair<std::int64_t, std::int64_t>> seen;
  parallel_for(huge, threads, [&](std::int64_t begin, std::int64_t end) {
    std::lock_guard<std::mutex> lock(mutex);
    seen.emplace_back(begin, end);
  });
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), 4u);
  std::int64_t expected_begin = 0;
  for (int c = 0; c < threads; ++c) {
    const ChunkBounds bounds = chunk_bounds(huge, threads, c);
    EXPECT_EQ(seen[static_cast<std::size_t>(c)].first, bounds.begin);
    EXPECT_EQ(seen[static_cast<std::size_t>(c)].second, bounds.end);
    EXPECT_EQ(bounds.begin, expected_begin);
    expected_begin = bounds.end;
  }
  EXPECT_EQ(expected_begin, huge);
}

TEST(ChunkBounds, BadArgumentsThrow) {
  EXPECT_THROW(chunk_bounds(-1, 2, 0), CheckError);
  EXPECT_THROW(chunk_bounds(10, 0, 0), CheckError);
  EXPECT_THROW(chunk_bounds(10, 2, -1), CheckError);
  EXPECT_THROW(chunk_bounds(10, 2, 2), CheckError);
}

TEST(ParallelFor, MoreThreadsThanWorkIsSafe) {
  std::vector<int> hits(3, 0);
  std::mutex mutex;
  parallel_for(3, 64, [&](std::int64_t begin, std::int64_t end) {
    std::lock_guard<std::mutex> lock(mutex);
    for (std::int64_t i = begin; i < end; ++i) {
      ++hits[static_cast<std::size_t>(i)];
    }
  });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

TEST(ParallelFor, NestedCallsRunInline) {
  // A parallel_for issued from inside a chunk must not re-enter the
  // pool (deadlock) - it runs inline and still covers its range.
  std::vector<std::atomic<int>> hits(32);
  parallel_for(4, 4, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t outer = begin; outer < end; ++outer) {
      parallel_for(8, 4, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t inner = b; inner < e; ++inner) {
          hits[static_cast<std::size_t>(outer * 8 + inner)].fetch_add(1);
        }
      });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, PropagatesChunkException) {
  EXPECT_THROW(
      parallel_for(16, 4,
                   [&](std::int64_t begin, std::int64_t) {
                     if (begin == 0) throw std::runtime_error("chunk 0");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, BadThreadCountThrows) {
  EXPECT_THROW(parallel_for(4, 0, [](std::int64_t, std::int64_t) {}),
               CheckError);
}

TEST(ScopedNumThreadsTest, InstallsAndRestores) {
  EXPECT_EQ(current_num_threads(), 1);
  {
    ScopedNumThreads outer(4);
    EXPECT_EQ(current_num_threads(), 4);
    {
      ScopedNumThreads inner(2);
      EXPECT_EQ(current_num_threads(), 2);
    }
    EXPECT_EQ(current_num_threads(), 4);
  }
  EXPECT_EQ(current_num_threads(), 1);
  EXPECT_THROW(ScopedNumThreads bad(0), CheckError);
}

TEST(ScopedNumThreadsTest, WorkerThreadsStartAtDefault) {
  // The override is thread-local: pool workers never inherit it, which
  // is what keeps nested conv parallelism serial inside batch workers.
  ScopedNumThreads outer(8);
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  pool.run(2, [&](int) { sum.fetch_add(current_num_threads()); });
  EXPECT_EQ(sum.load(), 2);
}

}  // namespace
}  // namespace bkc
