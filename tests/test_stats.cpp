// Tests for the statistics helpers.

#include "util/stats.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "util/check.h"

namespace bkc {
namespace {

TEST(Stats, MeanAndStddev) {
  const std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_NEAR(stddev(v), std::sqrt(1.25), 1e-12);
}

TEST(Stats, EmptyThrows) {
  const std::vector<double> empty;
  EXPECT_THROW(mean(empty), CheckError);
  EXPECT_THROW(geomean(empty), CheckError);
  EXPECT_THROW(percentile(empty, 50), CheckError);
}

TEST(Stats, GeomeanOfSpeedups) {
  const std::vector<double> v{1.0, 4.0};
  EXPECT_DOUBLE_EQ(geomean(v), 2.0);
  const std::vector<double> with_zero{1.0, 0.0};
  EXPECT_THROW(geomean(with_zero), CheckError);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25);
}

TEST(Stats, EntropyUniformIsLogN) {
  const std::vector<double> v(512, 1.0);
  EXPECT_NEAR(entropy_bits(v), 9.0, 1e-12);
}

TEST(Stats, EntropyOfPointMassIsZero) {
  std::vector<double> v(16, 0.0);
  v[3] = 7.0;
  EXPECT_DOUBLE_EQ(entropy_bits(v), 0.0);
}

TEST(Stats, EntropyIgnoresZeros) {
  const std::vector<double> v{0.5, 0.5, 0.0, 0.0};
  EXPECT_NEAR(entropy_bits(v), 1.0, 1e-12);
}

TEST(Stats, NormalizedSumsToOne) {
  const std::vector<double> v{2, 3, 5};
  const auto n = normalized(v);
  EXPECT_DOUBLE_EQ(n[0] + n[1] + n[2], 1.0);
  EXPECT_DOUBLE_EQ(n[2], 0.5);
}

TEST(Stats, RankDescendingIsStable) {
  const std::vector<double> v{1.0, 3.0, 3.0, 2.0};
  const auto order = rank_descending(v);
  EXPECT_EQ(order[0], 1u);  // first of the tied 3.0s
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 3u);
  EXPECT_EQ(order[3], 0u);
}

TEST(Stats, TopKShare) {
  const std::vector<double> v{6, 1, 2, 1};
  EXPECT_DOUBLE_EQ(top_k_share(v, 1), 0.6);
  EXPECT_DOUBLE_EQ(top_k_share(v, 2), 0.8);
  EXPECT_DOUBLE_EQ(top_k_share(v, 100), 1.0);  // clamped
}

TEST(RunningStats, MatchesBatchComputation) {
  RunningStats rs;
  const std::vector<double> v{4, 8, 15, 16, 23, 42};
  for (double x : v) rs.add(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_NEAR(rs.mean(), mean(v), 1e-12);
  EXPECT_NEAR(std::sqrt(rs.variance()), stddev(v), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 4);
  EXPECT_DOUBLE_EQ(rs.max(), 42);
}

TEST(RunningStats, EmptyThrows) {
  RunningStats rs;
  EXPECT_THROW(rs.mean(), CheckError);
}

}  // namespace
}  // namespace bkc
