// Tests for the statistics helpers.

#include "util/stats.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>
#include <vector>

#include "util/check.h"

namespace bkc {
namespace {

TEST(Stats, MeanAndStddev) {
  const std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_NEAR(stddev(v), std::sqrt(1.25), 1e-12);
}

TEST(Stats, EmptyThrows) {
  const std::vector<double> empty;
  EXPECT_THROW(mean(empty), CheckError);
  EXPECT_THROW(geomean(empty), CheckError);
  EXPECT_THROW(percentile(empty, 50), CheckError);
}

TEST(Stats, GeomeanOfSpeedups) {
  const std::vector<double> v{1.0, 4.0};
  EXPECT_DOUBLE_EQ(geomean(v), 2.0);
  const std::vector<double> with_zero{1.0, 0.0};
  EXPECT_THROW(geomean(with_zero), CheckError);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25);
}

TEST(Stats, EntropyUniformIsLogN) {
  const std::vector<double> v(512, 1.0);
  EXPECT_NEAR(entropy_bits(v), 9.0, 1e-12);
}

TEST(Stats, EntropyOfPointMassIsZero) {
  std::vector<double> v(16, 0.0);
  v[3] = 7.0;
  EXPECT_DOUBLE_EQ(entropy_bits(v), 0.0);
}

TEST(Stats, EntropyIgnoresZeros) {
  const std::vector<double> v{0.5, 0.5, 0.0, 0.0};
  EXPECT_NEAR(entropy_bits(v), 1.0, 1e-12);
}

TEST(Stats, NormalizedSumsToOne) {
  const std::vector<double> v{2, 3, 5};
  const auto n = normalized(v);
  EXPECT_DOUBLE_EQ(n[0] + n[1] + n[2], 1.0);
  EXPECT_DOUBLE_EQ(n[2], 0.5);
}

TEST(Stats, RankDescendingIsStable) {
  const std::vector<double> v{1.0, 3.0, 3.0, 2.0};
  const auto order = rank_descending(v);
  EXPECT_EQ(order[0], 1u);  // first of the tied 3.0s
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 3u);
  EXPECT_EQ(order[3], 0u);
}

TEST(Stats, TopKShare) {
  const std::vector<double> v{6, 1, 2, 1};
  EXPECT_DOUBLE_EQ(top_k_share(v, 1), 0.6);
  EXPECT_DOUBLE_EQ(top_k_share(v, 2), 0.8);
  EXPECT_DOUBLE_EQ(top_k_share(v, 100), 1.0);  // clamped
}

TEST(RunningStats, MatchesBatchComputation) {
  RunningStats rs;
  const std::vector<double> v{4, 8, 15, 16, 23, 42};
  for (double x : v) rs.add(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_NEAR(rs.mean(), mean(v), 1e-12);
  EXPECT_NEAR(std::sqrt(rs.variance()), stddev(v), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 4);
  EXPECT_DOUBLE_EQ(rs.max(), 42);
}

TEST(RunningStats, SurvivesCatastrophicCancellation) {
  // Regression guard for the classic naive-accumulator failure: with
  // mean >> stddev, Σx² − n·mean² subtracts two nearly equal ~1e17
  // numbers and the double rounding can leave a NEGATIVE "variance"
  // (sqrt → NaN). Welford's update never forms those large partial
  // sums, so the result must stay non-negative and accurate. These are
  // exactly the bench-harness numbers: cycle counts near 3e8 with
  // single-digit jitter.
  const double base = 3.0e8;
  const std::vector<double> jitter{0.0, 1.0, 2.0, 3.0, 4.0,
                                   5.0, 6.0, 7.0, 8.0, 9.0};
  RunningStats rs;
  double sum = 0.0, sum_sq = 0.0;
  for (double j : jitter) {
    const double x = base + j;
    rs.add(x);
    sum += x;
    sum_sq += x * x;
  }
  const double n = static_cast<double>(jitter.size());
  const double naive = sum_sq / n - (sum / n) * (sum / n);
  // The naive form has lost every significant digit of the true
  // variance (8.25) at this magnitude; if this ever starts passing,
  // the fixture stopped being a cancellation stress.
  EXPECT_GT(std::abs(naive - 8.25), 1.0) << naive;
  EXPECT_GE(rs.variance(), 0.0);
  EXPECT_NEAR(rs.variance(), 8.25, 1e-6);
  EXPECT_NEAR(rs.mean(), base + 4.5, 1e-6);
}

TEST(RunningStats, EmptyThrows) {
  RunningStats rs;
  EXPECT_THROW(rs.mean(), CheckError);
  EXPECT_THROW(rs.variance(), CheckError);
  EXPECT_THROW(rs.min(), CheckError);
  EXPECT_THROW(rs.max(), CheckError);
}

// ---- Edge cases: single element, ties, degenerate histograms ----

TEST(Stats, SingleElementIsItsOwnStatistic) {
  const std::vector<double> v{3.5};
  EXPECT_DOUBLE_EQ(mean(v), 3.5);
  EXPECT_DOUBLE_EQ(stddev(v), 0.0);
  EXPECT_DOUBLE_EQ(geomean(v), 3.5);
  EXPECT_DOUBLE_EQ(percentile(v, 0), 3.5);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.5);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 3.5);
  EXPECT_DOUBLE_EQ(top_k_share(v, 1), 1.0);
}

TEST(Stats, PercentileRejectsOutOfRangeP) {
  const std::vector<double> v{1, 2};
  EXPECT_THROW(percentile(v, -0.5), CheckError);
  EXPECT_THROW(percentile(v, 100.5), CheckError);
}

TEST(Stats, PercentileRejectsNonFiniteValues) {
  // Regression: a NaN breaks std::sort's strict weak ordering, so the
  // old code silently missorted the sample and returned garbage
  // percentiles. Non-finite input must be a CheckError instead.
  const std::vector<double> with_nan{1.0, std::nan(""), 3.0};
  EXPECT_THROW(percentile(with_nan, 50), CheckError);
  const std::vector<double> with_inf{
      1.0, std::numeric_limits<double>::infinity()};
  EXPECT_THROW(percentile(with_inf, 99), CheckError);
  const std::vector<double> with_neg_inf{
      -std::numeric_limits<double>::infinity(), 2.0};
  EXPECT_THROW(percentile(with_neg_inf, 1), CheckError);
}

TEST(RunningStats, RejectsNonFiniteSamples) {
  // Regression: add(NaN) used to poison min/max/mean for every later
  // sample. The accumulator now refuses the sample up front and keeps
  // its state intact.
  RunningStats rs;
  rs.add(2.0);
  EXPECT_THROW(rs.add(std::nan("")), CheckError);
  EXPECT_THROW(rs.add(std::numeric_limits<double>::infinity()), CheckError);
  EXPECT_THROW(rs.add(-std::numeric_limits<double>::infinity()), CheckError);
  // The rejected samples left no trace.
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), 2.0);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 2.0);
}

TEST(Stats, PercentileOfAllEqualValues) {
  const std::vector<double> v{7, 7, 7, 7, 7};
  for (double p : {0.0, 12.5, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(percentile(v, p), 7.0);
  }
}

TEST(Stats, EntropyRejectsDegenerateHistograms) {
  const std::vector<double> all_zero(8, 0.0);
  EXPECT_THROW(entropy_bits(all_zero), CheckError);
  const std::vector<double> negative{1.0, -0.5};
  EXPECT_THROW(entropy_bits(negative), CheckError);
  const std::vector<double> empty;
  EXPECT_THROW(entropy_bits(empty), CheckError);
}

TEST(Stats, NormalizedRejectsDegenerateHistograms) {
  const std::vector<double> all_zero(4, 0.0);
  EXPECT_THROW(normalized(all_zero), CheckError);
  const std::vector<double> negative{2.0, -1.0};
  EXPECT_THROW(normalized(negative), CheckError);
}

TEST(Stats, TopKShareZeroKIsZero) {
  const std::vector<double> v{1, 2, 3};
  EXPECT_DOUBLE_EQ(top_k_share(v, 0), 0.0);
}

TEST(Stats, TopKShareRejectsZeroSum) {
  const std::vector<double> zeros(3, 0.0);
  EXPECT_THROW(top_k_share(zeros, 1), CheckError);
}

TEST(Stats, TopKShareWithTiesUsesStableRanking) {
  // Two values tie for second place; top-2 must take the earlier one,
  // and either choice gives the same share (the metric is well defined
  // under ties because tied values are interchangeable).
  const std::vector<double> v{5, 2, 2, 1};
  EXPECT_DOUBLE_EQ(top_k_share(v, 2), 0.7);
}

TEST(Stats, RankDescendingEmptyAndAllEqual) {
  const std::vector<double> empty;
  EXPECT_TRUE(rank_descending(empty).empty());
  const std::vector<double> equal(4, 1.0);
  const auto order = rank_descending(equal);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(RunningStats, SingleSample) {
  RunningStats rs;
  rs.add(-2.0);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), -2.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), -2.0);
  EXPECT_DOUBLE_EQ(rs.max(), -2.0);
}

}  // namespace
}  // namespace bkc
