// Integration tests for serve/scheduler.h — dynamic batching over the
// shared registry.
//
// The load-bearing guarantee: batching NEVER changes a result. Every
// response must be bit-identical to calling classify_batch directly on
// the same engine, at every scheduler thread count (1/2/4/7) and
// however the requests happened to coalesce into batches. On top of
// that: the deadline flushes partial batches, a full batch dispatches
// without waiting for the deadline, admission control rejects
// deterministically at max_queue with a typed error, stop() drains
// every accepted request, and the counters add up.

#include "serve/scheduler.h"

#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "bnn/weights.h"
#include "core/engine.h"
#include "serve/registry.h"
#include "support/support.h"
#include "util/check.h"

namespace bkc::serve {
namespace {

using namespace std::chrono_literals;

void expect_scores_bit_identical(const Tensor& actual,
                                 const Tensor& expected,
                                 const std::string& context) {
  ASSERT_EQ(actual.data().size(), expected.data().size()) << context;
  for (std::size_t v = 0; v < actual.data().size(); ++v) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(actual.data()[v]),
              std::bit_cast<std::uint32_t>(expected.data()[v]))
        << context << " value " << v;
  }
}

class ServeSchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/scheduler_model.bkcm";
    Engine engine(test::tiny_config(27));
    engine.compress(2);
    engine.save_compressed(path_);
    registry_ = std::make_unique<ModelRegistry>(2);
    model_ = registry_->open("tiny", path_);
  }

  void TearDown() override {
    model_.reset();
    registry_.reset();
    std::remove(path_.c_str());
  }

  std::vector<Tensor> sample_images(int count, std::uint64_t seed) const {
    bnn::WeightGenerator gen(seed);
    std::vector<Tensor> images;
    images.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      images.push_back(
          gen.sample_activation(model_->engine().model().input_shape()));
    }
    return images;
  }

  std::string path_;
  std::unique_ptr<ModelRegistry> registry_;
  ModelHandle model_;
};

// The acceptance criterion of the serving PR: the served path is
// bit-identical to the direct classify_batch path at every thread
// count, regardless of how the scheduler batched the requests.
TEST_F(ServeSchedulerTest, ServedResultsBitIdenticalToDirectAcrossThreads) {
  const std::vector<Tensor> images = sample_images(10, 99);
  const std::vector<Tensor> expected =
      model_->engine().classify_batch(images, 1);

  for (int threads : {1, 2, 4, 7}) {
    SchedulerOptions options;
    options.max_batch = 3;  // forces multiple, unevenly filled batches
    options.max_delay = 1ms;
    options.num_threads = threads;
    BatchScheduler scheduler(options);

    std::vector<std::future<Tensor>> futures;
    for (const Tensor& image : images) {
      futures.push_back(scheduler.submit(model_, "tenant", image));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const Tensor scores = futures[i].get();
      expect_scores_bit_identical(
          scores, expected[i],
          "threads " + std::to_string(threads) + " image " +
              std::to_string(i));
    }
    scheduler.stop();
  }
}

TEST_F(ServeSchedulerTest, DeadlineFlushesAPartialBatch) {
  SchedulerOptions options;
  options.max_batch = 100;  // the queue can never fill; only the
                            // deadline can dispatch these requests
  options.max_delay = 2ms;
  BatchScheduler scheduler(options);

  const std::vector<Tensor> images = sample_images(2, 7);
  std::vector<std::future<Tensor>> futures;
  for (const Tensor& image : images) {
    futures.push_back(scheduler.submit(model_, "tenant", image));
  }
  // Generous bound (sanitizer builds are slow); the point is that the
  // futures complete at all without the batch ever filling.
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(60s), std::future_status::ready);
  }
  const StatsSnapshot stats = scheduler.stats();
  EXPECT_EQ(stats.total.requests, 2u);
  EXPECT_EQ(stats.total.dispatched, 2u);
  EXPECT_GE(stats.total.batches, 1u);
}

TEST_F(ServeSchedulerTest, FullBatchDispatchesWithoutWaitingForDeadline) {
  SchedulerOptions options;
  options.max_batch = 4;
  options.max_delay = std::chrono::minutes(10);  // never reached in-test
  BatchScheduler scheduler(options);

  const std::vector<Tensor> images = sample_images(4, 11);
  std::vector<std::future<Tensor>> futures;
  for (const Tensor& image : images) {
    futures.push_back(scheduler.submit(model_, "tenant", image));
  }
  // Completion long before the 10-minute deadline proves the size
  // trigger fired.
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(60s), std::future_status::ready);
  }
  const StatsSnapshot stats = scheduler.stats();
  EXPECT_EQ(stats.total.dispatched, 4u);
  EXPECT_EQ(stats.total.batches, 1u);
  EXPECT_DOUBLE_EQ(stats.total.batch_occupancy(), 1.0);
}

TEST_F(ServeSchedulerTest, QueueFullRejectsDeterministically) {
  SchedulerOptions options;
  options.max_batch = 64;  // > max_queue: the size trigger can't fire
  options.max_delay = std::chrono::minutes(10);
  options.max_queue = 6;
  BatchScheduler scheduler(options);

  const std::vector<Tensor> images = sample_images(7, 13);
  std::vector<std::future<Tensor>> futures;
  // Exactly max_queue submissions are admitted...
  for (int i = 0; i < 6; ++i) {
    futures.push_back(scheduler.submit(model_, "tenant", images[
        static_cast<std::size_t>(i)]));
  }
  // ...and the next is refused with the typed reason, every time.
  try {
    scheduler.submit(model_, "tenant", images[6]);
    FAIL() << "expected RejectError";
  } catch (const RejectError& e) {
    EXPECT_EQ(e.reason(), RejectReason::kQueueFull);
    EXPECT_NE(std::string(e.what()).find("tiny"), std::string::npos);
  }
  EXPECT_THROW(scheduler.submit(model_, "tenant", images[6]), RejectError);

  // stop() drains everything that was admitted.
  scheduler.stop();
  for (auto& future : futures) {
    EXPECT_NO_THROW(future.get());
  }
  const StatsSnapshot stats = scheduler.stats();
  EXPECT_EQ(stats.total.requests, 6u);
  EXPECT_EQ(stats.total.rejects, 2u);
  EXPECT_EQ(stats.total.dispatched, 6u);
}

TEST_F(ServeSchedulerTest, SubmitAfterStopRejectsAsStopped) {
  BatchScheduler scheduler;
  scheduler.stop();
  const std::vector<Tensor> images = sample_images(1, 17);
  try {
    scheduler.submit(model_, "tenant", images[0]);
    FAIL() << "expected RejectError";
  } catch (const RejectError& e) {
    EXPECT_EQ(e.reason(), RejectReason::kStopped);
  }
  EXPECT_EQ(scheduler.stats().total.rejects, 1u);
}

TEST_F(ServeSchedulerTest, NullHandleIsACheckError) {
  BatchScheduler scheduler;
  const std::vector<Tensor> images = sample_images(1, 19);
  EXPECT_THROW(scheduler.submit(nullptr, "tenant", images[0]), CheckError);
}

TEST_F(ServeSchedulerTest, DestructorDrainsQueuedRequests) {
  const std::vector<Tensor> images = sample_images(3, 23);
  std::vector<std::future<Tensor>> futures;
  {
    SchedulerOptions options;
    options.max_batch = 100;
    options.max_delay = std::chrono::minutes(10);
    BatchScheduler scheduler(options);
    for (const Tensor& image : images) {
      futures.push_back(scheduler.submit(model_, "tenant", image));
    }
    // No stop(): the destructor must dispatch what is queued.
  }
  for (auto& future : futures) {
    EXPECT_NO_THROW(future.get());
  }
}

TEST_F(ServeSchedulerTest, QueuedRequestsPinTheModelAgainstEviction) {
  SchedulerOptions options;
  options.max_batch = 100;
  options.max_delay = std::chrono::minutes(10);
  BatchScheduler scheduler(options);
  const std::vector<Tensor> images = sample_images(1, 29);
  std::future<Tensor> future =
      scheduler.submit(model_, "tenant", images[0]);

  // The caller drops its handle; the queued request still pins it.
  model_.reset();
  EXPECT_EQ(registry_->evict_unused(), 0u);
  EXPECT_TRUE(registry_->contains("tiny"));

  scheduler.stop();
  EXPECT_NO_THROW(future.get());
  // Drained: nothing pins the model any more.
  EXPECT_EQ(registry_->evict_unused(), 1u);
  EXPECT_FALSE(registry_->contains("tiny"));
}

TEST_F(ServeSchedulerTest, PerTenantAndPerModelCountersAddUp) {
  SchedulerOptions options;
  options.max_batch = 2;
  options.max_delay = 1ms;
  BatchScheduler scheduler(options);

  const std::vector<Tensor> images = sample_images(6, 31);
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < 6; ++i) {
    const std::string tenant = (i % 3 == 0) ? "tenant-x" : "tenant-y";
    futures.push_back(
        scheduler.submit(model_, tenant, images[static_cast<std::size_t>(i)]));
  }
  for (auto& future : futures) future.get();
  scheduler.stop();

  const StatsSnapshot stats = scheduler.stats();
  EXPECT_EQ(stats.total.requests, 6u);
  EXPECT_EQ(stats.total.dispatched, 6u);
  ASSERT_EQ(stats.per_model.size(), 1u);
  EXPECT_EQ(stats.per_model.at("tiny").requests, 6u);
  EXPECT_EQ(stats.per_model.at("tiny").dispatched, 6u);
  ASSERT_EQ(stats.per_tenant.size(), 2u);
  EXPECT_EQ(stats.per_tenant.at("tenant-x").requests, 2u);
  EXPECT_EQ(stats.per_tenant.at("tenant-y").requests, 4u);
  EXPECT_EQ(stats.per_tenant.at("tenant-x").dispatched +
                stats.per_tenant.at("tenant-y").dispatched,
            6u);
  // Queue time is measured for every dispatched request.
  EXPECT_EQ(stats.total.queue.count(), 6u);
  EXPECT_GE(stats.total.mean_queue_ms(), 0.0);
}

TEST_F(ServeSchedulerTest, OptionValidation) {
  SchedulerOptions options;
  options.max_batch = 0;
  EXPECT_THROW(BatchScheduler{options}, CheckError);
  options = {};
  options.max_queue = 0;
  EXPECT_THROW(BatchScheduler{options}, CheckError);
  options = {};
  options.num_threads = 0;
  EXPECT_THROW(BatchScheduler{options}, CheckError);
  options = {};
  options.max_delay = std::chrono::microseconds(-1);
  EXPECT_THROW(BatchScheduler{options}, CheckError);
}

}  // namespace
}  // namespace bkc::serve
