// The dispatch contract of bnn/bconv_kernels.h: every registered
// convolution kernel (AVX2 on hosts that have it) is bit-identical to
// the scalar reference for every shape, geometry and thread count - not
// approximately equal, memcmp-equal. The sweep is deliberately hostile:
// odd widths, channel counts straddling the 64-lane tail mask, strides
// and paddings that leave empty interiors, 1x1 next to 3x3.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "bnn/bconv.h"
#include "bnn/bconv_kernels.h"
#include "bnn/bitpack.h"
#include "support/support.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace bkc::bnn {
namespace {

const int kThreadCounts[] = {1, 2, 4, 7};

struct ConvCase {
  std::int64_t channels, height, width, out_channels;
  std::int64_t kernel, stride, padding;

  std::string label() const {
    std::string s = "c";
    s += std::to_string(channels);
    s += '_';
    s += std::to_string(height);
    s += 'x';
    s += std::to_string(width);
    s += "_o";
    s += std::to_string(out_channels);
    s += "_k";
    s += std::to_string(kernel);
    s += 's';
    s += std::to_string(stride);
    s += 'p';
    s += std::to_string(padding);
    return s;
  }
};

// ~50 shapes. Channel counts bracket every word boundary the tail mask
// can straddle (63/64/65, 96 = word + half, 127/128/129, multi-word);
// spatial extents mix odd/even and include inputs so small the
// mask-free interior of the fast kernels is empty or a single pixel.
std::vector<ConvCase> conv_cases() {
  std::vector<ConvCase> cases;
  const std::int64_t tail_channels[] = {1,  17,  63,  64,  65, 96,
                                        127, 128, 129, 192, 320};
  // 3x3 "same" convs over every tail-mask regime, odd spatial sizes.
  for (std::int64_t c : tail_channels) {
    cases.push_back({c, 7, 5, 4, 3, 1, 1});
  }
  // The same channels with stride 2 (uneven output grids).
  for (std::int64_t c : tail_channels) {
    cases.push_back({c, 9, 7, 3, 3, 2, 1});
  }
  // 1x1 convs (no spatial window, pure channel reduction).
  for (std::int64_t c : {1, 63, 64, 65, 96, 129, 256}) {
    cases.push_back({c, 5, 7, 6, 1, 1, 0});
    cases.push_back({c, 4, 4, 2, 1, 2, 0});
  }
  // Valid (padding 0) and wide (padding 2) 3x3 windows.
  for (std::int64_t c : {33, 64, 96, 128}) {
    cases.push_back({c, 8, 6, 5, 3, 1, 0});
    cases.push_back({c, 6, 8, 5, 3, 1, 2});
  }
  // Degenerate spatial extents: empty or one-pixel interiors, a
  // single-pixel plane, stride larger than the kernel.
  cases.push_back({70, 2, 2, 3, 3, 1, 1});  // interior empty both axes
  cases.push_back({70, 3, 3, 3, 3, 1, 1});  // interior exactly one pixel
  cases.push_back({64, 1, 1, 4, 1, 1, 0});  // single pixel, 1x1
  cases.push_back({64, 3, 9, 4, 3, 4, 1});  // stride > kernel
  cases.push_back({100, 11, 3, 2, 3, 1, 1});  // tall and narrow
  cases.push_back({320, 3, 3, 8, 3, 1, 1});  // 5 words per pixel
  return cases;
}

void seeded_inputs(const ConvCase& c, std::uint64_t seed,
                   PackedFeature& feature, PackedKernel& kernel) {
  Rng rng(seed);
  const Tensor input = test::random_pm1_tensor(
      {c.channels, c.height, c.width}, rng);
  const WeightTensor weights = test::random_pm1_weights(
      {c.out_channels, c.channels, c.kernel, c.kernel}, rng);
  feature = pack_feature(input);
  kernel = pack_kernel(weights);
}

void expect_bit_identical(const Tensor& a, const Tensor& b,
                          const std::string& label) {
  ASSERT_EQ(a.shape(), b.shape()) << label;
  ASSERT_EQ(std::memcmp(a.data().data(), b.data().data(),
                        a.data().size_bytes()),
            0)
      << label;
}

TEST(BconvSimd, RegistryHasScalarFirstAndUniqueNames) {
  const auto kernels = conv_kernels();
  ASSERT_GE(kernels.size(), 1u);
  EXPECT_STREQ(kernels.front().name, "scalar");
  EXPECT_EQ(kernels.front().fn, scalar_conv_kernel().fn);
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    for (std::size_t j = i + 1; j < kernels.size(); ++j) {
      EXPECT_STRNE(kernels[i].name, kernels[j].name);
    }
  }
}

TEST(BconvSimd, ForcedScalarPinsTheReference) {
  simd::ScopedForceScalar force;
  EXPECT_TRUE(simd::scalar_forced());
  EXPECT_STREQ(active_conv_kernel().name, "scalar");
}

TEST(BconvSimd, OverrideWinsAndRestores) {
  const auto kernels = conv_kernels();
  const ConvKernelInfo& widest = kernels.back();
  const char* before = active_conv_kernel().name;
  {
    ScopedConvKernelOverride pin(widest);
    EXPECT_STREQ(active_conv_kernel().name, widest.name);
    // An override outranks even a scalar force: the suites below rely
    // on pinning the AVX2 kernel while everything else stays scalar.
    simd::ScopedForceScalar force;
    EXPECT_STREQ(active_conv_kernel().name, widest.name);
  }
  EXPECT_STREQ(active_conv_kernel().name, before);
}

TEST(BconvSimd, EveryKernelBitIdenticalToScalarAcrossShapesAndThreads) {
  std::uint64_t seed = 0x51D00000;
  for (const ConvCase& c : conv_cases()) {
    PackedFeature feature;
    PackedKernel kernel;
    seeded_inputs(c, seed++, feature, kernel);
    const ConvGeometry geometry{.stride = c.stride, .padding = c.padding};

    Tensor reference;
    {
      ScopedConvKernelOverride pin(scalar_conv_kernel());
      ScopedNumThreads threads(1);
      reference = binary_conv2d(feature, kernel, geometry);
    }
    for (const ConvKernelInfo& info : conv_kernels()) {
      ScopedConvKernelOverride pin(info);
      for (int threads : kThreadCounts) {
        ScopedNumThreads scoped(threads);
        const Tensor out = binary_conv2d(feature, kernel, geometry);
        expect_bit_identical(out, reference,
                             c.label() + " kernel=" + info.name +
                                 " threads=" + std::to_string(threads));
      }
    }
  }
}

TEST(BconvSimd, ActiveDispatchMatchesForcedScalarOnAnchorShapes) {
  // Whatever active_conv_kernel() picks on this host (AVX2 where
  // available, scalar elsewhere), the engine-visible results must equal
  // the forced-scalar run - the user-facing form of the contract.
  for (const ConvCase& c : {ConvCase{96, 8, 8, 6, 3, 1, 1},
                            ConvCase{130, 6, 10, 4, 1, 1, 0}}) {
    PackedFeature feature;
    PackedKernel kernel;
    seeded_inputs(c, 0xA11C40 + c.channels, feature, kernel);
    const ConvGeometry geometry{.stride = c.stride, .padding = c.padding};
    Tensor forced;
    {
      simd::ScopedForceScalar force;
      forced = binary_conv2d(feature, kernel, geometry);
    }
    const Tensor dispatched = binary_conv2d(feature, kernel, geometry);
    expect_bit_identical(dispatched, forced, c.label());
  }
}

}  // namespace
}  // namespace bkc::bnn
