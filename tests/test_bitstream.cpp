// Unit and property tests for the MSB-first variable-length bit stream.

#include "util/bitstream.h"

#include <gtest/gtest.h>

#include <vector>

#include "support/support.h"
#include "util/check.h"
#include "util/rng.h"

namespace bkc {
namespace {

TEST(BitWriter, EmptyStream) {
  BitWriter writer;
  EXPECT_EQ(writer.bit_size(), 0u);
  EXPECT_EQ(writer.byte_size(), 0u);
  EXPECT_TRUE(writer.take().empty());
}

TEST(BitWriter, SingleBitsPackMsbFirst) {
  BitWriter writer;
  writer.write_bit(true);
  writer.write_bit(false);
  writer.write_bit(true);
  EXPECT_EQ(writer.bit_size(), 3u);
  EXPECT_EQ(writer.byte_size(), 1u);
  const auto bytes = writer.take();
  // 101 in the top bits: 1010'0000.
  EXPECT_EQ(bytes[0], 0xA0);
}

TEST(BitWriter, MultiBitValueSpansBytes) {
  BitWriter writer;
  writer.write_bits(0x1FF, 9);  // nine ones
  writer.write_bits(0, 7);
  const auto bytes = writer.take();
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 0xFF);
  EXPECT_EQ(bytes[1], 0x80);
}

TEST(BitWriter, RejectsValueWiderThanCount) {
  BitWriter writer;
  EXPECT_THROW(writer.write_bits(0x4, 2), CheckError);
}

TEST(BitWriter, RejectsCountOver64) {
  BitWriter writer;
  EXPECT_THROW(writer.write_bits(0, 65), CheckError);
}

TEST(BitWriter, Write64BitValue) {
  BitWriter writer;
  writer.write_bits(0xDEADBEEFCAFEBABEULL, 64);
  BitReader reader(writer.bytes());
  EXPECT_EQ(reader.read_bits(64), 0xDEADBEEFCAFEBABEULL);
}

TEST(BitReader, ReadPastEndThrows) {
  const std::vector<std::uint8_t> bytes{0xFF};
  BitReader reader(bytes, 3);
  reader.read_bits(3);
  EXPECT_THROW(reader.read_bit(), CheckError);
}

TEST(BitReader, BitCountBeyondBufferThrows) {
  const std::vector<std::uint8_t> bytes{0xFF};
  EXPECT_THROW(BitReader(bytes, 9), CheckError);
}

TEST(BitReader, PeekDoesNotConsume) {
  const std::vector<std::uint8_t> bytes{0xB4};  // 1011'0100
  BitReader reader(bytes);
  EXPECT_EQ(reader.peek_bits(4), 0xBu);
  EXPECT_EQ(reader.position(), 0u);
  EXPECT_EQ(reader.read_bits(4), 0xBu);
  EXPECT_EQ(reader.peek_bits(4), 0x4u);
}

TEST(BitReader, PeekPastEndZeroFills) {
  const std::vector<std::uint8_t> bytes{0xC0};
  BitReader reader(bytes, 2);  // just "11"
  EXPECT_EQ(reader.peek_bits(4), 0xCu);  // 11 then 00 fill
}

TEST(BitReader, SkipAdvances) {
  const std::vector<std::uint8_t> bytes{0x0F, 0xF0};
  BitReader reader(bytes);
  reader.skip_bits(4);
  EXPECT_EQ(reader.read_bits(8), 0xFFu);
  EXPECT_EQ(reader.remaining(), 4u);
}

// Property: any sequence of (value, width) writes reads back identically.
class BitstreamRoundtrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitstreamRoundtrip, RandomFieldsRoundtrip) {
  Rng rng(GetParam());
  const int count = 200 + static_cast<int>(rng.below(200));
  const auto fields = test::random_bit_fields(rng, count);
  test::expect_bits_roundtrip(fields);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitstreamRoundtrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace bkc
