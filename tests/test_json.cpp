// Tests for the strict-JSON writer (util/json.h) the bench report
// emitters share: escaping, locale-independent round-trip number
// formatting, the non-finite policy, comma/nesting bookkeeping and the
// misuse checks.

#include "util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include "util/check.h"

namespace bkc::json {
namespace {

TEST(Json, QuotedEscapesSpecialCharacters) {
  EXPECT_EQ(quoted("plain"), "\"plain\"");
  EXPECT_EQ(quoted("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(quoted("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(quoted("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(quoted("line\nbreak"), "\"line\\nbreak\"");
  EXPECT_EQ(quoted(std::string_view("nul\0byte", 8)), "\"nul\\u0000byte\"");
  EXPECT_EQ(quoted("\x01"), "\"\\u0001\"");
  // UTF-8 passes through untouched.
  EXPECT_EQ(quoted("caf\xc3\xa9"), "\"caf\xc3\xa9\"");
}

TEST(Json, NumberRoundTripsExactly) {
  // The shortest round-trip form must parse back to the same bits —
  // the default 6-significant-digit ostream formatting does not.
  for (const double v : {1.0 / 3.0, 0.1, 1e-20, 1.2345678901234567,
                         123456789.123456789, -0.0, 1.7e308}) {
    const std::string text = number(v);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
  }
  EXPECT_EQ(number(1.0), "1");
  EXPECT_EQ(number(-2.5), "-2.5");
  // No locale can sneak a ',' decimal separator in via to_chars.
  EXPECT_EQ(number(0.5).find(','), std::string::npos);
}

TEST(Json, NumberNonFinitePolicy) {
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(number(nan), CheckError);
  EXPECT_THROW(number(inf, NonFinitePolicy::kCheck), CheckError);
  EXPECT_EQ(number(nan, NonFinitePolicy::kNull), "null");
  EXPECT_EQ(number(-inf, NonFinitePolicy::kNull), "null");
}

TEST(Json, WriterBuildsNestedDocument) {
  Writer w;
  w.begin_object();
  w.key("bench").value("demo");
  w.key("count").value(3);
  w.key("ratio").value(1.25);
  w.key("ok").value(true);
  w.key("missing").null();
  w.key("rows").begin_array();
  w.begin_object();
  w.key("name").value("a\"b");
  w.end_object();
  w.value(7);
  w.end_array();
  w.key("empty").begin_array();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\n"
            "  \"bench\": \"demo\",\n"
            "  \"count\": 3,\n"
            "  \"ratio\": 1.25,\n"
            "  \"ok\": true,\n"
            "  \"missing\": null,\n"
            "  \"rows\": [\n"
            "    {\n"
            "      \"name\": \"a\\\"b\"\n"
            "    },\n"
            "    7\n"
            "  ],\n"
            "  \"empty\": []\n"
            "}\n");
}

TEST(Json, WriterTopLevelScalarAndEmptyObject) {
  Writer scalar;
  scalar.value(42);
  EXPECT_EQ(scalar.str(), "42\n");

  Writer empty;
  empty.begin_object();
  empty.end_object();
  EXPECT_EQ(empty.str(), "{}\n");
}

TEST(Json, WriterAppliesNonFinitePolicy) {
  Writer strict;
  strict.begin_array();
  EXPECT_THROW(strict.value(std::nan("")), CheckError);

  Writer lenient(NonFinitePolicy::kNull);
  lenient.begin_array();
  lenient.value(std::nan(""));
  lenient.end_array();
  EXPECT_EQ(lenient.str(), "[\n  null\n]\n");
}

TEST(Json, WriterRejectsMisuse) {
  {
    Writer w;  // value in object without key
    w.begin_object();
    EXPECT_THROW(w.value(1), CheckError);
  }
  {
    Writer w;  // key twice
    w.begin_object();
    w.key("a");
    EXPECT_THROW(w.key("b"), CheckError);
  }
  {
    Writer w;  // key inside array
    w.begin_array();
    EXPECT_THROW(w.key("a"), CheckError);
  }
  {
    Writer w;  // mismatched close
    w.begin_object();
    EXPECT_THROW(w.end_array(), CheckError);
  }
  {
    Writer w;  // close with dangling key
    w.begin_object();
    w.key("a");
    EXPECT_THROW(w.end_object(), CheckError);
  }
  {
    Writer w;  // str() on incomplete document
    w.begin_object();
    EXPECT_THROW(w.str(), CheckError);
    Writer nothing;
    EXPECT_THROW(nothing.str(), CheckError);
  }
  {
    Writer w;  // second top-level value
    w.value(1);
    EXPECT_THROW(w.value(2), CheckError);
    EXPECT_THROW(w.begin_object(), CheckError);
  }
}

}  // namespace
}  // namespace bkc::json
