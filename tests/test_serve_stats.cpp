// Unit tests for serve/stats.h — the serving-side counters.
//
// The arithmetic is pinned directly: accepts/rejects land in the right
// aggregates, a dispatched batch charges occupancy as batch-size /
// max_batch (own-request share for tenants), queue time accumulates in
// both the totals and the RunningStats distribution, and snapshot() is
// a consistent copy (later events don't mutate an earlier snapshot).

#include "serve/stats.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace bkc::serve {
namespace {

TEST(ServeStatsTest, AcceptAndRejectLandInEveryAggregate) {
  ServeStats stats;
  stats.record_accept("m1", "alice");
  stats.record_accept("m1", "bob");
  stats.record_accept("m2", "alice");
  stats.record_reject("m1", "bob");

  const StatsSnapshot snap = stats.snapshot();
  EXPECT_EQ(snap.total.requests, 3u);
  EXPECT_EQ(snap.total.rejects, 1u);
  EXPECT_EQ(snap.per_model.at("m1").requests, 2u);
  EXPECT_EQ(snap.per_model.at("m1").rejects, 1u);
  EXPECT_EQ(snap.per_model.at("m2").requests, 1u);
  EXPECT_EQ(snap.per_model.at("m2").rejects, 0u);
  EXPECT_EQ(snap.per_tenant.at("alice").requests, 2u);
  EXPECT_EQ(snap.per_tenant.at("bob").requests, 1u);
  EXPECT_EQ(snap.per_tenant.at("bob").rejects, 1u);
}

TEST(ServeStatsTest, BatchChargesOccupancyAndQueueTime) {
  ServeStats stats;
  // One batch of 2 out of capacity 4: alice queued 4ms, bob 2ms.
  const std::vector<DispatchedRequest> batch = {
      {"alice", 4'000'000}, {"bob", 2'000'000}};
  stats.record_batch("m1", batch, 4);

  const StatsSnapshot snap = stats.snapshot();
  EXPECT_EQ(snap.total.batches, 1u);
  EXPECT_EQ(snap.total.dispatched, 2u);
  EXPECT_EQ(snap.total.queue_ns, 6'000'000u);
  EXPECT_DOUBLE_EQ(snap.total.batch_occupancy(), 0.5);
  EXPECT_DOUBLE_EQ(snap.total.mean_queue_ms(), 3.0);
  // The queued-time distribution saw both samples.
  EXPECT_EQ(snap.total.queue.count(), 2u);
  EXPECT_DOUBLE_EQ(snap.total.queue.min(), 2'000'000.0);
  EXPECT_DOUBLE_EQ(snap.total.queue.max(), 4'000'000.0);

  EXPECT_EQ(snap.per_model.at("m1").batches, 1u);
  EXPECT_DOUBLE_EQ(snap.per_model.at("m1").batch_occupancy(), 0.5);

  // A tenant's occupancy is its own share of the batch capacity: one
  // request each out of max_batch 4.
  EXPECT_EQ(snap.per_tenant.at("alice").batches, 1u);
  EXPECT_EQ(snap.per_tenant.at("alice").dispatched, 1u);
  EXPECT_DOUBLE_EQ(snap.per_tenant.at("alice").batch_occupancy(), 0.25);
  EXPECT_DOUBLE_EQ(snap.per_tenant.at("alice").mean_queue_ms(), 4.0);
  EXPECT_DOUBLE_EQ(snap.per_tenant.at("bob").mean_queue_ms(), 2.0);
}

TEST(ServeStatsTest, MultipleBatchesAverageTheFillFactor) {
  ServeStats stats;
  const std::vector<DispatchedRequest> full = {
      {"t", 0}, {"t", 0}, {"t", 0}, {"t", 0}};
  const std::vector<DispatchedRequest> half = {{"t", 0}, {"t", 0}};
  stats.record_batch("m", full, 4);
  stats.record_batch("m", half, 4);

  const StatsSnapshot snap = stats.snapshot();
  EXPECT_EQ(snap.total.batches, 2u);
  EXPECT_EQ(snap.total.dispatched, 6u);
  EXPECT_DOUBLE_EQ(snap.total.batch_occupancy(), 0.75);  // (1.0 + 0.5) / 2
}

TEST(ServeStatsTest, EmptyAggregatesReadAsZero) {
  const Counters counters;
  EXPECT_DOUBLE_EQ(counters.batch_occupancy(), 0.0);
  EXPECT_DOUBLE_EQ(counters.mean_queue_ms(), 0.0);

  ServeStats stats;
  const StatsSnapshot snap = stats.snapshot();
  EXPECT_EQ(snap.total.requests, 0u);
  EXPECT_TRUE(snap.per_model.empty());
  EXPECT_TRUE(snap.per_tenant.empty());
}

TEST(ServeStatsTest, SnapshotIsAConsistentCopy) {
  ServeStats stats;
  stats.record_accept("m", "t");
  const StatsSnapshot before = stats.snapshot();
  stats.record_accept("m", "t");
  stats.record_reject("m", "t");

  EXPECT_EQ(before.total.requests, 1u);
  EXPECT_EQ(before.total.rejects, 0u);
  const StatsSnapshot after = stats.snapshot();
  EXPECT_EQ(after.total.requests, 2u);
  EXPECT_EQ(after.total.rejects, 1u);
}

}  // namespace
}  // namespace bkc::serve
