// Tests for the frequency table (Sec III-A).

#include "compress/frequency.h"

#include <gtest/gtest.h>

#include "support/support.h"

#include "bnn/kernel_sequences.h"
#include "bnn/weights.h"
#include "util/check.h"

namespace bkc::compress {
namespace {

TEST(FrequencyTable, CountsAndTotal) {
  FrequencyTable t;
  t.add(5);
  t.add(5, 3);
  t.add(0);
  EXPECT_EQ(t.count(5), 4u);
  EXPECT_EQ(t.count(0), 1u);
  EXPECT_EQ(t.count(1), 0u);
  EXPECT_EQ(t.total(), 5u);
  EXPECT_EQ(t.distinct(), 2u);
}

TEST(FrequencyTable, FromSequences) {
  const std::vector<SeqId> seqs{1, 1, 2, 511};
  const auto t = FrequencyTable::from_sequences(seqs);
  EXPECT_EQ(t.count(1), 2u);
  EXPECT_EQ(t.count(511), 1u);
  EXPECT_EQ(t.total(), 4u);
}

TEST(FrequencyTable, FromKernelCountsEveryChannel) {
  const std::vector<SeqId> seqs{7, 7, 7, 9};
  const auto kernel = bnn::kernel_from_sequences(2, 2, seqs);
  const auto t = FrequencyTable::from_kernel(kernel);
  EXPECT_EQ(t.count(7), 3u);
  EXPECT_EQ(t.count(9), 1u);
}

TEST(FrequencyTable, RankedDescendingDeterministic) {
  FrequencyTable t;
  t.add(3, 10);
  t.add(100, 10);
  t.add(5, 20);
  const auto ranked = t.ranked();
  EXPECT_EQ(ranked[0], 5);
  EXPECT_EQ(ranked[1], 3);    // ties broken by id
  EXPECT_EQ(ranked[2], 100);
}

TEST(FrequencyTable, SharesAndTopK) {
  FrequencyTable t;
  t.add(0, 60);
  t.add(1, 30);
  t.add(2, 10);
  EXPECT_DOUBLE_EQ(t.share(0), 0.6);
  EXPECT_DOUBLE_EQ(t.top_k_share(1), 0.6);
  EXPECT_DOUBLE_EQ(t.top_k_share(2), 0.9);
  EXPECT_DOUBLE_EQ(t.top_k_share(512), 1.0);
}

TEST(FrequencyTable, EmptyGuards) {
  FrequencyTable t;
  EXPECT_THROW(t.share(0), CheckError);
  EXPECT_THROW(t.top_k_share(4), CheckError);
  EXPECT_THROW(t.entropy_bits(), CheckError);
  EXPECT_THROW(t.add(512), CheckError);
}

TEST(FrequencyTable, MergeAdds) {
  FrequencyTable a;
  a.add(1, 2);
  FrequencyTable b;
  b.add(1, 3);
  b.add(2, 1);
  a.merge(b);
  EXPECT_EQ(a.count(1), 5u);
  EXPECT_EQ(a.count(2), 1u);
  EXPECT_EQ(a.total(), 6u);
}

TEST(FrequencyTable, EntropyBounds) {
  FrequencyTable t;
  for (int s = 0; s < 512; ++s) t.add(static_cast<SeqId>(s));
  EXPECT_NEAR(t.entropy_bits(), 9.0, 1e-12);
  FrequencyTable point;
  point.add(42, 100);
  EXPECT_DOUBLE_EQ(point.entropy_bits(), 0.0);
}

TEST(FrequencyTable, ObservedLowUniqueCount) {
  // Sec I: "the number of unique sequences representing a set of
  // weights or inputs is typically low". Small kernels can't even reach
  // 512 distinct sequences.
  const auto kernel = test::calibrated_kernel(16, 16, 3);
  const auto t = FrequencyTable::from_kernel(kernel);
  EXPECT_LE(t.distinct(), 256u);
  EXPECT_EQ(t.total(), 256u);
}

}  // namespace
}  // namespace bkc::compress
