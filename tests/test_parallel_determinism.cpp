// The determinism guarantee of the parallel execution layer: every
// parallel entry point (Engine::classify / classify_batch /
// verify_streams / compress, ModelCompressor::compress_model and its
// analyze / compress_blocks views) must produce results bit-identical
// to the serial path at every thread count, with and without the
// clustering pass.

#include <gtest/gtest.h>

#include <cstring>
#include <iterator>
#include <thread>
#include <vector>

#include "bnn/weights.h"
#include "compress/pipeline.h"
#include "core/engine.h"
#include "support/support.h"
#include "util/simd.h"

namespace bkc {
namespace {

// The tested fan-outs: serial, even splits, more threads than blocks on
// the tiny model, and an odd count that exercises uneven partitions.
const int kThreadCounts[] = {1, 2, 4, 7};

std::vector<Tensor> test_images(const bnn::ReActNet& model, int count,
                                std::uint64_t seed) {
  bnn::WeightGenerator gen(seed);
  std::vector<Tensor> images;
  images.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    images.push_back(gen.sample_activation(model.input_shape()));
  }
  return images;
}

// Bit-identical, not approximately-equal: the whole point of the fixed
// partitioning is that no float may differ by even one ulp.
void expect_bit_identical(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.data().size(), b.data().size());
  ASSERT_EQ(a.data().size_bytes(), b.data().size_bytes());
  EXPECT_EQ(
      std::memcmp(a.data().data(), b.data().data(), a.data().size_bytes()),
      0);
}

void expect_block_reports_equal(const compress::BlockReport& a,
                                const compress::BlockReport& b) {
  EXPECT_EQ(a.block_name, b.block_name);
  EXPECT_EQ(a.num_sequences, b.num_sequences);
  EXPECT_EQ(a.distinct_sequences, b.distinct_sequences);
  EXPECT_EQ(a.top16_share, b.top16_share);
  EXPECT_EQ(a.top64_share, b.top64_share);
  EXPECT_EQ(a.top256_share, b.top256_share);
  EXPECT_EQ(a.entropy_bits, b.entropy_bits);
  EXPECT_EQ(a.uncompressed_bits, b.uncompressed_bits);
  EXPECT_EQ(a.encoding_bits, b.encoding_bits);
  EXPECT_EQ(a.clustering_bits, b.clustering_bits);
  EXPECT_EQ(a.encoding_ratio, b.encoding_ratio);
  EXPECT_EQ(a.clustering_ratio, b.clustering_ratio);
  EXPECT_EQ(a.huffman_ratio, b.huffman_ratio);
  EXPECT_EQ(a.node_shares_encoding, b.node_shares_encoding);
  EXPECT_EQ(a.node_shares_clustering, b.node_shares_clustering);
  EXPECT_EQ(a.flipped_bit_fraction, b.flipped_bit_fraction);
  EXPECT_EQ(a.replaced_sequences, b.replaced_sequences);
  EXPECT_EQ(a.decode_table_bits, b.decode_table_bits);
}

void expect_model_reports_equal(const compress::ModelReport& a,
                                const compress::ModelReport& b) {
  ASSERT_EQ(a.blocks.size(), b.blocks.size());
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    expect_block_reports_equal(a.blocks[i], b.blocks[i]);
  }
  EXPECT_EQ(a.model_bits, b.model_bits);
  EXPECT_EQ(a.conv3x3_bits, b.conv3x3_bits);
  EXPECT_EQ(a.conv3x3_encoding_bits, b.conv3x3_encoding_bits);
  EXPECT_EQ(a.conv3x3_clustering_bits, b.conv3x3_clustering_bits);
  EXPECT_EQ(a.decode_table_bits, b.decode_table_bits);
  EXPECT_EQ(a.mean_encoding_ratio, b.mean_encoding_ratio);
  EXPECT_EQ(a.mean_clustering_ratio, b.mean_clustering_ratio);
  EXPECT_EQ(a.model_ratio, b.model_ratio);
  EXPECT_EQ(a.model_ratio_with_tables, b.model_ratio_with_tables);
}

EngineOptions options_for(bool clustering) {
  return clustering ? EngineOptions{} : test::no_clustering();
}

class ParallelDeterminism : public ::testing::TestWithParam<bool> {};

TEST_P(ParallelDeterminism, ClassifyBatchMatchesSerialClassify) {
  Engine engine(test::tiny_config(21), options_for(GetParam()));
  engine.compress();
  const auto images = test_images(engine.model(), 6, 77);

  std::vector<Tensor> serial;
  for (const Tensor& image : images) serial.push_back(engine.classify(image));

  for (int threads : kThreadCounts) {
    const auto batch = engine.classify_batch(images, threads);
    ASSERT_EQ(batch.size(), serial.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      expect_bit_identical(batch[i], serial[i]);
    }
  }
}

TEST_P(ParallelDeterminism, ParallelConvClassifyMatchesSerial) {
  Engine engine(test::tiny_config(23), options_for(GetParam()));
  engine.compress();
  const auto images = test_images(engine.model(), 2, 78);
  for (const Tensor& image : images) {
    const Tensor serial = engine.classify(image, 1);
    for (int threads : kThreadCounts) {
      expect_bit_identical(engine.classify(image, threads), serial);
    }
  }
}

TEST_P(ParallelDeterminism, WorkspacePathMatchesLegacyForwardAtEveryCount) {
  // The arena-backed forward path (classify / classify_into over a
  // Workspace) against the legacy allocating path (model().forward),
  // across the full thread matrix and with clustering on and off: the
  // memory plan must never change a single bit of any score.
  Engine engine(test::tiny_config(39), options_for(GetParam()));
  engine.compress();
  const auto images = test_images(engine.model(), 3, 83);
  bnn::Workspace workspace = engine.make_workspace();
  for (const Tensor& image : images) {
    const Tensor legacy = engine.model().forward(image);
    for (int threads : kThreadCounts) {
      expect_bit_identical(engine.classify(image, threads), legacy);
      Tensor scores;
      engine.classify_into(image, scores, workspace, threads);
      expect_bit_identical(scores, legacy);
    }
  }
  // The reused workspace's peak is exactly the plan — at every thread
  // count, with and without clustering.
  EXPECT_EQ(workspace.arena().high_water(),
            engine.memory_plan().arena_bytes());
}

TEST_P(ParallelDeterminism, AnalyzeMatchesSerial) {
  // analyze() is a thin view over compress_model(), whose determinism
  // the CompressModel test sweeps at every thread count; here one
  // uneven-partition fan-out guards the view itself.
  const EngineOptions options = options_for(GetParam());
  const bnn::ReActNet model(test::tiny_config(25));
  const compress::ModelCompressor compressor(options.tree,
                                             options.clustering_config);
  const auto serial = compressor.analyze(model, 1);
  expect_model_reports_equal(compressor.analyze(model, 7), serial);
}

void expect_kernel_compressions_equal(
    const compress::KernelCompression& a,
    const compress::KernelCompression& b) {
  EXPECT_EQ(a.frequencies.counts(), b.frequencies.counts());
  EXPECT_EQ(a.clustering.replacements().size(),
            b.clustering.replacements().size());
  EXPECT_EQ(a.clustering.replaced_occurrences(),
            b.clustering.replaced_occurrences());
  EXPECT_EQ(a.coded_frequencies.counts(), b.coded_frequencies.counts());
  EXPECT_EQ(a.compressed.stream, b.compressed.stream);
  EXPECT_EQ(a.compressed.stream_bits, b.compressed.stream_bits);
  EXPECT_TRUE(a.coded_kernel == b.coded_kernel);
}

TEST(ParallelDeterminismCompressModel, MatchesSerialAtEveryThreadCount) {
  // The unified pass: reports, both stream artifacts and the aggregate
  // must all be bit-identical to the serial pass at every thread count.
  const bnn::ReActNet model(test::tiny_config(33));
  const compress::ModelCompressor compressor;
  const auto serial = compressor.compress_model(model, 1);
  for (int threads : kThreadCounts) {
    const auto parallel = compressor.compress_model(model, threads);
    expect_model_reports_equal(parallel.report, serial.report);
    ASSERT_EQ(parallel.blocks.size(), serial.blocks.size());
    for (std::size_t b = 0; b < parallel.blocks.size(); ++b) {
      expect_block_reports_equal(parallel.blocks[b].report,
                                 serial.blocks[b].report);
      expect_kernel_compressions_equal(parallel.blocks[b].encoding,
                                       serial.blocks[b].encoding);
      expect_kernel_compressions_equal(parallel.blocks[b].clustered,
                                       serial.blocks[b].clustered);
    }
  }
}

TEST_P(ParallelDeterminism, CompressBlocksMatchesSerial) {
  // Like analyze(), a thin view: the full thread sweep lives in the
  // CompressModel test, so one uneven fan-out suffices here.
  const bool clustering = GetParam();
  const EngineOptions options = options_for(clustering);
  const bnn::ReActNet model(test::tiny_config(27));
  const compress::ModelCompressor compressor(options.tree,
                                             options.clustering_config);
  const auto serial = compressor.compress_blocks(model, clustering, 1);
  const auto parallel = compressor.compress_blocks(model, clustering, 7);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t b = 0; b < parallel.size(); ++b) {
    EXPECT_EQ(parallel[b].compressed.stream, serial[b].compressed.stream);
    EXPECT_EQ(parallel[b].compressed.stream_bits,
              serial[b].compressed.stream_bits);
    EXPECT_TRUE(parallel[b].coded_kernel == serial[b].coded_kernel);
  }
}

TEST_P(ParallelDeterminism, EngineCompressMatchesSerial) {
  const bool clustering = GetParam();
  Engine serial(test::tiny_config(29), options_for(clustering));
  const auto& serial_report = serial.compress(1);
  for (int threads : kThreadCounts) {
    Engine parallel(test::tiny_config(29), options_for(clustering));
    expect_model_reports_equal(parallel.compress(threads), serial_report);
    // The installed (possibly clustered) kernels and the emitted streams
    // must match too, not just the report.
    ASSERT_EQ(parallel.block_streams().size(), serial.block_streams().size());
    for (std::size_t b = 0; b < serial.block_streams().size(); ++b) {
      EXPECT_TRUE(parallel.model().block(b).conv3x3().kernel() ==
                  serial.model().block(b).conv3x3().kernel());
      EXPECT_EQ(parallel.block_streams()[b].compressed.stream,
                serial.block_streams()[b].compressed.stream);
    }
  }
}

TEST_P(ParallelDeterminism, DispatchedKernelsMatchForcedScalarAtEveryCount) {
  // The SIMD dispatch layer must not weaken the determinism guarantee:
  // whatever conv/decode kernels active dispatch picks on this host,
  // engine results stay bit-identical to the forced-scalar reference
  // run at every thread count.
  Engine engine(test::tiny_config(35), options_for(GetParam()));
  engine.compress();
  const auto images = test_images(engine.model(), 2, 79);
  for (const Tensor& image : images) {
    Tensor reference;
    {
      simd::ScopedForceScalar force;
      reference = engine.classify(image, 1);
    }
    for (int threads : kThreadCounts) {
      expect_bit_identical(engine.classify(image, threads), reference);
      simd::ScopedForceScalar force;
      expect_bit_identical(engine.classify(image, threads), reference);
    }
  }
}

TEST_P(ParallelDeterminism, ConcurrentClassifyBatchCallersMatchSerial) {
  // The serving scenario: several user threads drive classify_batch on
  // the SAME engine concurrently (the shared pool's run mutex
  // serializes the fan-outs). Every caller — each at a different
  // thread count — must still get results bit-identical to the serial
  // path; under the TSan CI job this also proves the concurrent-caller
  // path is race-free.
  Engine engine(test::tiny_config(37), options_for(GetParam()));
  engine.compress();
  const auto images = test_images(engine.model(), 4, 81);

  std::vector<Tensor> serial;
  for (const Tensor& image : images) serial.push_back(engine.classify(image));

  constexpr int kRounds = 3;
  std::vector<std::vector<std::vector<Tensor>>> results(
      std::size(kThreadCounts));
  std::vector<std::thread> callers;
  for (std::size_t t = 0; t < std::size(kThreadCounts); ++t) {
    callers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        results[t].push_back(
            engine.classify_batch(images, kThreadCounts[t]));
      }
    });
  }
  for (std::thread& caller : callers) caller.join();

  for (std::size_t t = 0; t < std::size(kThreadCounts); ++t) {
    ASSERT_EQ(results[t].size(), static_cast<std::size_t>(kRounds));
    for (const std::vector<Tensor>& batch : results[t]) {
      ASSERT_EQ(batch.size(), serial.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        expect_bit_identical(batch[i], serial[i]);
      }
    }
  }
}

TEST_P(ParallelDeterminism, VerifyStreamsPassesAtEveryThreadCount) {
  Engine engine(test::tiny_config(31), options_for(GetParam()));
  engine.compress();
  for (int threads : kThreadCounts) {
    EXPECT_TRUE(engine.verify_streams(threads));
  }
}

INSTANTIATE_TEST_SUITE_P(ClusteringOnOff, ParallelDeterminism,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "clustering" : "encoding_only";
                         });

}  // namespace
}  // namespace bkc
