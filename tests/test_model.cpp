// Tests for Sequential, OpRecord resolution and the storage breakdown.

#include "bnn/model.h"

#include <gtest/gtest.h>

#include <cstring>

#include "bnn/memory_plan.h"
#include "bnn/weights.h"
#include "util/check.h"

namespace bkc::bnn {
namespace {

Sequential tiny_pipeline() {
  WeightGenerator gen(11);
  Sequential seq;
  seq.emplace<SignActivation>();
  seq.emplace<BinaryConv2d>("conv", gen.sample_kernel({4, 8, 3, 3}),
                            ConvGeometry{1, 1});
  seq.emplace<BatchNorm>("bn", std::vector<float>(4, 0.1f),
                         std::vector<float>(4, 0.0f));
  seq.emplace<GlobalAvgPool>();
  return seq;
}

TEST(Sequential, ForwardProducesFinalShape) {
  const Sequential seq = tiny_pipeline();
  WeightGenerator gen(13);
  const Tensor out = seq.forward(gen.sample_activation({8, 6, 6}));
  EXPECT_EQ(out.shape(), (FeatureShape{4, 1, 1}));
}

TEST(Sequential, OpRecordsResolveShapesThrough) {
  const Sequential seq = tiny_pipeline();
  const auto records = seq.op_records({8, 6, 6});
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].output_shape, (FeatureShape{8, 6, 6}));
  EXPECT_EQ(records[1].output_shape, (FeatureShape{4, 6, 6}));
  EXPECT_EQ(records[1].op_class, OpClass::kConv3x3);
  EXPECT_EQ(records[1].kernel_shape, (KernelShape{4, 8, 3, 3}));
  EXPECT_EQ(records[3].output_shape, (FeatureShape{4, 1, 1}));
  EXPECT_EQ(seq.output_shape({8, 6, 6}), (FeatureShape{4, 1, 1}));
}

TEST(Sequential, LayerAccessBounds) {
  const Sequential seq = tiny_pipeline();
  EXPECT_EQ(seq.size(), 4u);
  EXPECT_EQ(seq.layer(0).name(), "sign");
  EXPECT_THROW(seq.layer(4), CheckError);
}

TEST(Sequential, ForwardIntoMatchesForwardWithSignFusion) {
  // The pipeline starts with SignActivation -> BinaryConv2d, so
  // forward_into elides the sign materialization entirely; the outputs
  // must still match the two-step legacy path bit-for-bit (packing
  // binarizes with the same v >= 0 rule the sign applies).
  const Sequential seq = tiny_pipeline();
  const FeatureShape input_shape{8, 6, 6};
  Workspace workspace(
      plan_sequential_forward(seq.op_records(input_shape)));
  WeightGenerator gen(13);
  for (int i = 0; i < 3; ++i) {
    const Tensor input = gen.sample_activation(input_shape);
    const Tensor expected = seq.forward(input);
    Tensor out(seq.output_shape(input_shape));
    seq.forward_into(input, out, workspace);
    ASSERT_EQ(out.shape(), expected.shape());
    EXPECT_EQ(std::memcmp(out.data().data(), expected.data().data(),
                          expected.data().size_bytes()),
              0);
  }
}

TEST(Sequential, ForwardIntoEmptyPipelineCopies) {
  const Sequential seq;
  Workspace workspace(MemoryPlan{.activation_floats = 64});
  WeightGenerator gen(15);
  const Tensor input = gen.sample_activation({2, 3, 3});
  Tensor out(input.shape());
  seq.forward_into(input, out, workspace);
  EXPECT_EQ(std::memcmp(out.data().data(), input.data().data(),
                        input.data().size_bytes()),
            0);
  Tensor wrong(FeatureShape{2, 3, 4});
  EXPECT_THROW(seq.forward_into(input, wrong, workspace), CheckError);
}

TEST(Sequential, ForwardIntoUndersizedPlanThrows) {
  const Sequential seq = tiny_pipeline();
  Workspace workspace(MemoryPlan{.activation_floats = 1});
  WeightGenerator gen(17);
  const Tensor input = gen.sample_activation({8, 6, 6});
  Tensor out(seq.output_shape(input.shape()));
  EXPECT_THROW(seq.forward_into(input, out, workspace), CheckError);
}

TEST(StorageBreakdown, AggregatesByClass) {
  StorageBreakdown b;
  b.add({.name = "a",
         .op_class = OpClass::kConv3x3,
         .storage_bits = 900,
         .macs = 100});
  b.add({.name = "b",
         .op_class = OpClass::kConv3x3,
         .storage_bits = 100,
         .macs = 100});
  b.add({.name = "c",
         .op_class = OpClass::kOutputLayer,
         .storage_bits = 1000,
         .macs = 200});
  EXPECT_EQ(b.total_bits, 2000u);
  EXPECT_DOUBLE_EQ(b.bits_fraction(OpClass::kConv3x3), 0.5);
  EXPECT_DOUBLE_EQ(b.macs_fraction(OpClass::kOutputLayer), 0.5);
  EXPECT_DOUBLE_EQ(b.bits_fraction(OpClass::kConv1x1), 0.0);
}

TEST(StorageBreakdown, EmptyThrows) {
  StorageBreakdown b;
  EXPECT_THROW(b.bits_fraction(OpClass::kConv3x3), CheckError);
}

}  // namespace
}  // namespace bkc::bnn
