// Unit tests for compress/serialize.h — the BKCM container format.
//
// Three layers of lock-down:
//   1. field-for-field round trips of every serialized struct (doubles
//      compared by bit pattern, so a report can never drift in transit),
//   2. whole-model save -> load -> verify: Engine::load_compressed must
//      reconstruct installed kernels, report and classification outputs
//      bit-identical to the engine that wrote the file, at thread
//      counts 1/2/4/7,
//   3. a checked-in golden container (tests/golden/reactnet_tiny.bkcm)
//      that today's writer must reproduce byte-for-byte and today's
//      reader must load — pinning format v1 against accidental drift.
//      Regenerate deliberately with BKC_UPDATE_GOLDEN=1 (a format
//      change must also bump kBkcmVersion).

#include "compress/serialize.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdio>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "bnn/weights.h"
#include "compress/instrumentation.h"
#include "core/engine.h"
#include "support/support.h"
#include "util/check.h"

namespace bkc::compress {
namespace {

// Doubles must survive serialization bit-exactly, not approximately.
#define EXPECT_BITS_EQ(a, b)                                   \
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a),                   \
            std::bit_cast<std::uint64_t>(b))

void expect_tables_equal(const FrequencyTable& a, const FrequencyTable& b) {
  EXPECT_EQ(a.counts(), b.counts());
  EXPECT_EQ(a.total(), b.total());
}

void expect_clustering_equal(const ClusteringResult& a,
                             const ClusteringResult& b) {
  for (int s = 0; s < bnn::kNumSequences; ++s) {
    EXPECT_EQ(a.remap(static_cast<SeqId>(s)),
              b.remap(static_cast<SeqId>(s)));
  }
  ASSERT_EQ(a.replacements().size(), b.replacements().size());
  for (std::size_t i = 0; i < a.replacements().size(); ++i) {
    EXPECT_EQ(a.replacements()[i].from, b.replacements()[i].from);
    EXPECT_EQ(a.replacements()[i].to, b.replacements()[i].to);
    EXPECT_EQ(a.replacements()[i].occurrences,
              b.replacements()[i].occurrences);
    EXPECT_EQ(a.replacements()[i].distance, b.replacements()[i].distance);
  }
  EXPECT_EQ(a.replaced_occurrences(), b.replaced_occurrences());
  EXPECT_EQ(a.flipped_weight_bits(), b.flipped_weight_bits());
  EXPECT_EQ(a.total_occurrences(), b.total_occurrences());
}

void expect_codecs_equal(const GroupedHuffmanCodec& a,
                         const GroupedHuffmanCodec& b) {
  ASSERT_EQ(a.config().index_bits, b.config().index_bits);
  for (int n = 0; n < a.config().num_nodes(); ++n) {
    ASSERT_EQ(a.node_occupancy(n), b.node_occupancy(n));
    const auto ta = a.uncompressed_table(n);
    const auto tb = b.uncompressed_table(n);
    EXPECT_TRUE(std::equal(ta.begin(), ta.end(), tb.begin()));
  }
  for (int s = 0; s < bnn::kNumSequences; ++s) {
    const auto id = static_cast<SeqId>(s);
    ASSERT_EQ(a.has_code(id), b.has_code(id));
    if (!a.has_code(id)) continue;
    EXPECT_EQ(a.node_of(id), b.node_of(id));
    EXPECT_EQ(a.index_of(id), b.index_of(id));
  }
}

void expect_block_reports_equal(const BlockReport& a, const BlockReport& b) {
  EXPECT_EQ(a.block_name, b.block_name);
  EXPECT_EQ(a.num_sequences, b.num_sequences);
  EXPECT_EQ(a.distinct_sequences, b.distinct_sequences);
  EXPECT_BITS_EQ(a.top16_share, b.top16_share);
  EXPECT_BITS_EQ(a.top64_share, b.top64_share);
  EXPECT_BITS_EQ(a.top256_share, b.top256_share);
  EXPECT_BITS_EQ(a.entropy_bits, b.entropy_bits);
  EXPECT_EQ(a.uncompressed_bits, b.uncompressed_bits);
  EXPECT_EQ(a.encoding_bits, b.encoding_bits);
  EXPECT_EQ(a.clustering_bits, b.clustering_bits);
  EXPECT_BITS_EQ(a.encoding_ratio, b.encoding_ratio);
  EXPECT_BITS_EQ(a.clustering_ratio, b.clustering_ratio);
  EXPECT_BITS_EQ(a.huffman_ratio, b.huffman_ratio);
  ASSERT_EQ(a.node_shares_encoding.size(), b.node_shares_encoding.size());
  for (std::size_t n = 0; n < a.node_shares_encoding.size(); ++n) {
    EXPECT_BITS_EQ(a.node_shares_encoding[n], b.node_shares_encoding[n]);
  }
  ASSERT_EQ(a.node_shares_clustering.size(),
            b.node_shares_clustering.size());
  for (std::size_t n = 0; n < a.node_shares_clustering.size(); ++n) {
    EXPECT_BITS_EQ(a.node_shares_clustering[n],
                   b.node_shares_clustering[n]);
  }
  EXPECT_BITS_EQ(a.flipped_bit_fraction, b.flipped_bit_fraction);
  EXPECT_EQ(a.replaced_sequences, b.replaced_sequences);
  EXPECT_EQ(a.decode_table_bits, b.decode_table_bits);
}

void expect_model_reports_equal(const ModelReport& a, const ModelReport& b) {
  ASSERT_EQ(a.blocks.size(), b.blocks.size());
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    expect_block_reports_equal(a.blocks[i], b.blocks[i]);
  }
  EXPECT_EQ(a.model_bits, b.model_bits);
  EXPECT_EQ(a.conv3x3_bits, b.conv3x3_bits);
  EXPECT_EQ(a.conv3x3_encoding_bits, b.conv3x3_encoding_bits);
  EXPECT_EQ(a.conv3x3_clustering_bits, b.conv3x3_clustering_bits);
  EXPECT_EQ(a.decode_table_bits, b.decode_table_bits);
  EXPECT_BITS_EQ(a.mean_encoding_ratio, b.mean_encoding_ratio);
  EXPECT_BITS_EQ(a.mean_clustering_ratio, b.mean_clustering_ratio);
  EXPECT_BITS_EQ(a.model_ratio, b.model_ratio);
  EXPECT_BITS_EQ(a.model_ratio_with_tables, b.model_ratio_with_tables);
}

/// Write with write_x, read back with read_x, expect exhaustion.
template <typename T, typename WriteFn, typename ReadFn>
T round_trip(const T& value, WriteFn write, ReadFn read) {
  ByteWriter writer;
  write(writer, value);
  const auto bytes = writer.take();
  ByteReader reader(bytes, "round-trip");
  T out = read(reader);
  reader.expect_exhausted();
  return out;
}

TEST(Serialize, TreeConfigRoundTrip) {
  for (const GroupedTreeConfig& config :
       {GroupedTreeConfig::paper(), GroupedTreeConfig::fixed9(),
        GroupedTreeConfig{.index_bits = {0, 3, 16}}}) {
    const GroupedTreeConfig read =
        round_trip(config, write_tree_config, read_tree_config);
    EXPECT_EQ(read.index_bits, config.index_bits);
  }
}

TEST(Serialize, ClusteringConfigRoundTrip) {
  const ClusteringConfig config{
      .most_common = 48, .least_common = 300, .max_distance = 2};
  const ClusteringConfig read =
      round_trip(config, write_clustering_config, read_clustering_config);
  EXPECT_EQ(read.most_common, config.most_common);
  EXPECT_EQ(read.least_common, config.least_common);
  EXPECT_EQ(read.max_distance, config.max_distance);
}

TEST(Serialize, ReActNetConfigRoundTrip) {
  bnn::ReActNetConfig config = bnn::tiny_reactnet_config(/*seed=*/777);
  config.calibrated_weights = false;
  config.num_classes = 17;
  const bnn::ReActNetConfig read =
      round_trip(config, write_reactnet_config, read_reactnet_config);
  EXPECT_EQ(read.input_channels, config.input_channels);
  EXPECT_EQ(read.input_size, config.input_size);
  EXPECT_EQ(read.stem_channels, config.stem_channels);
  EXPECT_EQ(read.stem_stride, config.stem_stride);
  EXPECT_EQ(read.num_classes, config.num_classes);
  EXPECT_EQ(read.seed, config.seed);
  EXPECT_EQ(read.calibrated_weights, config.calibrated_weights);
  ASSERT_EQ(read.blocks.size(), config.blocks.size());
  for (std::size_t b = 0; b < config.blocks.size(); ++b) {
    EXPECT_EQ(read.blocks[b].in_channels, config.blocks[b].in_channels);
    EXPECT_EQ(read.blocks[b].out_channels, config.blocks[b].out_channels);
    EXPECT_EQ(read.blocks[b].stride, config.blocks[b].stride);
  }
}

TEST(Serialize, ReActNetConfigRejectsImplausibleSizes) {
  // A CRC-valid but hostile config must not be able to drive huge
  // allocations when the loader rebuilds the model: total size across
  // blocks, stem and classifier products are all bounded on read.
  bnn::ReActNetConfig config = bnn::tiny_reactnet_config(/*seed=*/1);
  config.blocks.assign(
      64, {.in_channels = 8192, .out_channels = 8192, .stride = 1});
  ByteWriter writer;
  write_reactnet_config(writer, config);
  const auto bytes = writer.take();
  ByteReader reader(bytes, "test");
  try {
    read_reactnet_config(reader);
    FAIL() << "oversized block schedule must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("implausible"), std::string::npos)
        << e.what();
  }
}

TEST(Serialize, ClusteringResultRejectsWrappingOccurrenceCounts) {
  // Occurrence counts that would wrap the uint64 accumulators must be
  // rejected replacement-by-replacement, not slip through a single
  // end-of-loop comparison after wrapping.
  ByteWriter writer;
  writer.write_varint(2);
  for (std::uint64_t from : {0ull, 2ull}) {
    writer.write_varint(from);
    writer.write_varint(from + 1);      // to
    writer.write_varint(1ULL << 63);    // occurrences
    writer.write_varint(1);             // distance
  }
  writer.write_varint(0);  // total_occurrences
  const auto bytes = writer.take();
  ByteReader reader(bytes, "test");
  EXPECT_THROW(read_clustering_result(reader), CheckError);
}

TEST(Serialize, FrequencyTableRoundTrip) {
  const auto kernel = test::calibrated_kernel(32, 32, /*seed=*/5);
  const FrequencyTable table = FrequencyTable::from_kernel(kernel);
  expect_tables_equal(
      round_trip(table, write_frequency_table, read_frequency_table), table);
  // Empty and single-entry tables round-trip too.
  expect_tables_equal(round_trip(FrequencyTable{}, write_frequency_table,
                                 read_frequency_table),
                      FrequencyTable{});
  FrequencyTable single;
  single.add(511, 3);
  expect_tables_equal(
      round_trip(single, write_frequency_table, read_frequency_table),
      single);
}

TEST(Serialize, ClusteringResultRoundTrip) {
  const auto kernel = test::calibrated_kernel(64, 64, /*seed=*/9);
  const FrequencyTable table = FrequencyTable::from_kernel(kernel);
  const ClusteringResult result = cluster_sequences(table);
  ASSERT_FALSE(result.replacements().empty());
  expect_clustering_equal(
      round_trip(result, write_clustering_result, read_clustering_result),
      result);
  // The identity result (clustering disabled) round-trips too.
  expect_clustering_equal(round_trip(ClusteringResult{},
                                     write_clustering_result,
                                     read_clustering_result),
                          ClusteringResult{});
}

TEST(Serialize, CodecRoundTripEncodesIdentically) {
  const auto kernel = test::calibrated_kernel(32, 32, /*seed=*/11);
  const FrequencyTable table = FrequencyTable::from_kernel(kernel);
  const GroupedHuffmanCodec codec(table);
  const GroupedHuffmanCodec read =
      round_trip(codec, write_codec, read_codec);
  expect_codecs_equal(read, codec);
  // The restored codec must reproduce the original stream bit-for-bit
  // and decode it back (the hardware-decoder contract).
  const CompressedKernel original = compress_kernel(kernel, codec);
  const CompressedKernel again = compress_kernel(kernel, read);
  EXPECT_EQ(original.stream, again.stream);
  EXPECT_EQ(original.stream_bits, again.stream_bits);
  EXPECT_TRUE(decompress_kernel(again, read) == kernel);
}

TEST(Serialize, CompressedKernelRoundTrip) {
  const auto kernel = test::calibrated_kernel(16, 32, /*seed=*/13);
  const FrequencyTable table = FrequencyTable::from_kernel(kernel);
  const GroupedHuffmanCodec codec(table);
  const CompressedKernel compressed = compress_kernel(kernel, codec);
  const CompressedKernel read = round_trip(
      compressed, write_compressed_kernel, read_compressed_kernel);
  EXPECT_EQ(read.out_channels, compressed.out_channels);
  EXPECT_EQ(read.in_channels, compressed.in_channels);
  EXPECT_EQ(read.stream_bits, compressed.stream_bits);
  EXPECT_EQ(read.stream, compressed.stream);
}

TEST(Serialize, KernelCompressionRoundTripAndDecodeReconstruction) {
  const auto kernel = test::calibrated_kernel(32, 32, /*seed=*/17);
  for (bool clustering : {true, false}) {
    const KernelCompression stream =
        compress_kernel_pipeline(kernel, clustering);
    const KernelCompression read = round_trip(
        stream, write_kernel_compression, read_kernel_compression);
    expect_tables_equal(read.frequencies, stream.frequencies);
    expect_clustering_equal(read.clustering, stream.clustering);
    expect_tables_equal(read.coded_frequencies, stream.coded_frequencies);
    expect_codecs_equal(read.codec, stream.codec);
    EXPECT_EQ(read.compressed.stream, stream.compressed.stream);
    EXPECT_EQ(read.compressed.stream_bits, stream.compressed.stream_bits);
    // coded_kernel is intentionally NOT stored: decoding the stream
    // must reconstruct it exactly.
    EXPECT_EQ(read.coded_kernel.payload_bits(), 0);
    EXPECT_TRUE(decompress_kernel(read.compressed, read.codec) ==
                stream.coded_kernel);
  }
}

TEST(Serialize, ModelReportRoundTripIsBitExact) {
  Engine engine(test::tiny_config(21));
  const ModelReport& report = engine.compress();
  expect_model_reports_equal(
      round_trip(report, write_model_report, read_model_report), report);
}

TEST(Serialize, ContainerRoundTripInMemory) {
  Engine engine(test::tiny_config(23));
  const ModelReport& report = engine.compress();
  const BkcmContents contents{
      .clustering = engine.options().clustering,
      .tree = engine.options().tree,
      .clustering_config = engine.options().clustering_config,
      .model_config = engine.model().config(),
      .report = report,
      .streams = engine.block_streams()};
  const std::vector<std::uint8_t> file = write_bkcm(contents);
  // Deterministic: the same contents always serialize to the same bytes.
  EXPECT_EQ(write_bkcm(contents), file);

  const BkcmInfo info = inspect_bkcm(file);
  EXPECT_EQ(info.version, kBkcmVersion);
  EXPECT_EQ(info.flags & kBkcmFlagClustering, kBkcmFlagClustering);
  ASSERT_EQ(info.sections.size(), 4u);
  EXPECT_EQ(info.sections[0].name, "CONF");
  EXPECT_EQ(info.sections[1].name, "REPT");
  EXPECT_EQ(info.sections[2].name, "BLKS");
  EXPECT_EQ(info.sections[3].name, "CDCS");

  // The field-wise overload (the Engine::save_compressed path) must
  // produce the identical image, and reusing a pre-computed BkcmInfo
  // must parse identically while a malformed one fails cleanly.
  EXPECT_EQ(write_bkcm(contents.clustering, contents.tree,
                       contents.clustering_config, contents.model_config,
                       contents.report, contents.streams),
            file);
  EXPECT_EQ(read_bkcm(file, info).streams.size(), contents.streams.size());
  EXPECT_THROW(read_bkcm(file, BkcmInfo{}), CheckError);

  const BkcmContents read = read_bkcm(file);
  EXPECT_EQ(read.clustering, contents.clustering);
  EXPECT_EQ(read.tree.index_bits, contents.tree.index_bits);
  EXPECT_EQ(read.model_config.seed, contents.model_config.seed);
  expect_model_reports_equal(read.report, contents.report);
  ASSERT_EQ(read.streams.size(), contents.streams.size());
  for (std::size_t b = 0; b < read.streams.size(); ++b) {
    EXPECT_EQ(read.streams[b].compressed.stream,
              contents.streams[b].compressed.stream);
  }
}

class SerializeEngineTest : public ::testing::Test {
 protected:
  static std::string temp_path(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }
};

TEST_F(SerializeEngineTest, SaveLoadVerifyAndBitIdenticalState) {
  const std::string path = temp_path("roundtrip_clustered.bkcm");
  Engine source(test::tiny_config(27));
  source.compress(2);
  source.save_compressed(path);

  const Engine loaded = Engine::load_compressed(path, 2);
  EXPECT_TRUE(loaded.is_compressed());
  EXPECT_TRUE(loaded.verify_streams(2));
  // Installed kernels bit-identical to the saved engine's.
  ASSERT_EQ(loaded.model().num_blocks(), source.model().num_blocks());
  for (std::size_t b = 0; b < source.model().num_blocks(); ++b) {
    EXPECT_TRUE(loaded.model().block(b).conv3x3().kernel() ==
                source.model().block(b).conv3x3().kernel())
        << "block " << b;
  }
  expect_model_reports_equal(loaded.report(), source.report());
  // The engine options travelled too.
  EXPECT_EQ(loaded.options().clustering, source.options().clustering);
  EXPECT_EQ(loaded.options().tree.index_bits,
            source.options().tree.index_bits);
  std::remove(path.c_str());
}

TEST_F(SerializeEngineTest, NoClusteringContainerRestoresExactModel) {
  const std::string path = temp_path("roundtrip_plain.bkcm");
  Engine source(test::tiny_config(29), test::no_clustering());
  source.compress();
  source.save_compressed(path);

  const Engine loaded = Engine::load_compressed(path);
  EXPECT_FALSE(loaded.options().clustering);
  EXPECT_TRUE(loaded.verify_streams());
  for (std::size_t b = 0; b < source.model().num_blocks(); ++b) {
    EXPECT_TRUE(loaded.model().block(b).conv3x3().kernel() ==
                source.model().block(b).conv3x3().kernel());
  }
  std::remove(path.c_str());
}

TEST_F(SerializeEngineTest, LoadedEngineClassifiesBitIdenticallyAcrossThreads) {
  const std::string path = temp_path("roundtrip_classify.bkcm");
  Engine source(test::tiny_config(31));
  source.compress(2);
  source.save_compressed(path);

  bnn::WeightGenerator gen(99);
  std::vector<Tensor> images;
  for (int i = 0; i < 3; ++i) {
    images.push_back(gen.sample_activation(source.model().input_shape()));
  }
  const std::vector<Tensor> expected = source.classify_batch(images, 1);

  for (int threads : {1, 2, 4, 7}) {
    const Engine loaded = Engine::load_compressed(path, threads);
    const std::vector<Tensor> scores =
        loaded.classify_batch(images, threads);
    ASSERT_EQ(scores.size(), expected.size()) << "threads " << threads;
    for (std::size_t i = 0; i < scores.size(); ++i) {
      ASSERT_EQ(scores[i].data().size(), expected[i].data().size());
      for (std::size_t v = 0; v < scores[i].data().size(); ++v) {
        ASSERT_EQ(std::bit_cast<std::uint32_t>(scores[i].data()[v]),
                  std::bit_cast<std::uint32_t>(expected[i].data()[v]))
            << "threads " << threads << " image " << i;
      }
    }
  }
  std::remove(path.c_str());
}

TEST_F(SerializeEngineTest, SaveRequiresCompress) {
  Engine engine(test::tiny_config(33));
  try {
    engine.save_compressed(temp_path("never_written.bkcm"));
    FAIL() << "save_compressed before compress() must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("compress()"), std::string::npos);
  }
}

// ---- Golden container: pins format v2 byte-for-byte ----
// (tests/test_backcompat.cpp pins that the PERMANENT v1 fixture,
// tests/golden/reactnet_tiny_v1.bkcm, still loads bit-identically.)

std::vector<std::uint8_t> golden_container_bytes() {
  // Fixed seed + tiny config + default options: the exact recipe is
  // part of the format contract (regenerate with BKC_UPDATE_GOLDEN=1).
  // Note: the REPT doubles come through libm (log2 in entropy, log/sqrt
  // in weight calibration), so the byte-for-byte pin assumes the
  // reference toolchain (glibc/x86-64, the CI image); a 1-ulp libm
  // difference on another platform is golden drift, not format drift —
  // regenerate there instead of bumping the version.
  Engine engine(test::tiny_config(/*seed=*/42));
  engine.compress();
  const BkcmContents contents{
      .clustering = engine.options().clustering,
      .tree = engine.options().tree,
      .clustering_config = engine.options().clustering_config,
      .model_config = engine.model().config(),
      .report = engine.report(),
      .streams = engine.block_streams()};
  return write_bkcm(contents);
}

TEST(SerializeGolden, WriterReproducesTheCheckedInContainer) {
  const std::string path = test::golden_path("reactnet_tiny.bkcm");
  const std::vector<std::uint8_t> current = golden_container_bytes();
  if (test::update_goldens()) {
    write_file_bytes(path, current);
    return;
  }
  const std::vector<std::uint8_t> golden = read_file_bytes(path);
  ASSERT_EQ(current.size(), golden.size())
      << "BKCM v2 output size drifted — if intentional, bump "
         "kBkcmVersion and regenerate with BKC_UPDATE_GOLDEN=1";
  for (std::size_t i = 0; i < golden.size(); ++i) {
    ASSERT_EQ(current[i], golden[i])
        << "BKCM v2 byte drift at offset " << i
        << " — if intentional, bump kBkcmVersion and regenerate with "
           "BKC_UPDATE_GOLDEN=1";
  }
}

TEST(SerializeGolden, ReaderLoadsTheCheckedInContainer) {
  if (test::update_goldens()) GTEST_SKIP() << "golden being regenerated";
  const std::string path = test::golden_path("reactnet_tiny.bkcm");
  const Engine loaded = Engine::load_compressed(path, 2);
  EXPECT_TRUE(loaded.verify_streams(2));
  // The loaded engine must equal a from-scratch compression of the same
  // seed — the container is a faithful snapshot, not just self-consistent.
  Engine fresh(test::tiny_config(/*seed=*/42));
  fresh.compress();
  for (std::size_t b = 0; b < fresh.model().num_blocks(); ++b) {
    EXPECT_TRUE(loaded.model().block(b).conv3x3().kernel() ==
                fresh.model().block(b).conv3x3().kernel())
        << "block " << b;
  }
  expect_model_reports_equal(loaded.report(), fresh.report());
}

// ---- Zero-copy (mapped) load path ----

// Cycle-level equality lives in hwsim::cycles_identical (also used by
// the bench/speedup self-check); nothing serialize-specific to add.

TEST(SerializeMapped, BufferedAndMappedLoadsAreBitIdentical) {
  const std::string path =
      ::testing::TempDir() + "/bkc_mapped_vs_buffered.bkcm";
  Engine source(test::tiny_config(51));
  source.compress(2);
  source.save_compressed(path);

  // Buffered: parse an in-memory copy. Mapped: Engine::load_compressed
  // maps the file and parses in place.
  const std::vector<std::uint8_t> bytes = read_file_bytes(path);
  const Engine buffered = Engine::load_compressed(
      std::span<const std::uint8_t>(bytes), 2);
  const Engine mapped = Engine::load_compressed(path, 2);

  expect_model_reports_equal(mapped.report(), buffered.report());
  ASSERT_EQ(mapped.model().num_blocks(), buffered.model().num_blocks());
  for (std::size_t b = 0; b < mapped.model().num_blocks(); ++b) {
    EXPECT_TRUE(mapped.model().block(b).conv3x3().kernel() ==
                buffered.model().block(b).conv3x3().kernel())
        << "block " << b;
  }
  bnn::WeightGenerator gen(7);
  const Tensor image = gen.sample_activation(mapped.model().input_shape());
  const Tensor score_mapped = mapped.classify(image);
  const Tensor score_buffered = buffered.classify(image);
  ASSERT_EQ(score_mapped.data().size(), score_buffered.data().size());
  for (std::size_t v = 0; v < score_mapped.data().size(); ++v) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(score_mapped.data()[v]),
              std::bit_cast<std::uint32_t>(score_buffered.data()[v]));
  }
  std::remove(path.c_str());
}

TEST(SerializeMapped, MappedViewBorrowsTheMappingAndDecodesNothing) {
  if (test::update_goldens()) GTEST_SKIP() << "golden being regenerated";
  const std::string path = test::golden_path("reactnet_tiny.bkcm");

  const PipelineCounters before = pipeline_counters();
  const MappedBkcm mapped = MappedBkcm::open(path);
  const PipelineCounters delta = pipeline_counters().delta_since(before);
  // Opening restores decode tables and scans prefixes — none of which
  // is pipeline work (and no kernel decode happens at all).
  EXPECT_EQ(delta.frequency_counts, 0u);
  EXPECT_EQ(delta.cluster_sequences_calls, 0u);
  EXPECT_EQ(delta.grouped_codec_builds, 0u);

  // Parsed sections agree with the buffered reader.
  const std::vector<std::uint8_t> bytes = read_file_bytes(path);
  const BkcmContents contents = read_bkcm(bytes);
  EXPECT_EQ(mapped.clustering(), contents.clustering);
  EXPECT_EQ(mapped.tree().index_bits, contents.tree.index_bits);
  EXPECT_EQ(mapped.model_config().seed, contents.model_config.seed);
  expect_model_reports_equal(mapped.report(), contents.report);

  // Every block's stream span points INSIDE the mapping (zero-copy)
  // and matches the buffered bytes; the scanned code lengths match the
  // buffered reader's scan.
  const std::span<const std::uint8_t> image = mapped.file_bytes();
  ASSERT_EQ(mapped.blocks().size(), contents.streams.size());
  for (std::size_t b = 0; b < mapped.blocks().size(); ++b) {
    const MappedBkcm::Block& block = mapped.blocks()[b];
    const KernelCompression& stream = contents.streams[b];
    EXPECT_GE(block.stream.data(), image.data());
    EXPECT_LE(block.stream.data() + block.stream.size(),
              image.data() + image.size());
    EXPECT_EQ(block.artifact.codec_id, stream.codec_id);
    EXPECT_EQ(block.artifact.compressed.stream_bits,
              stream.compressed.stream_bits);
    // The mapped artifact owns no stream copy — zero-copy means the
    // bytes live only in the mapping.
    EXPECT_TRUE(block.artifact.compressed.stream.empty());
    ASSERT_EQ(block.stream.size(), stream.compressed.stream.size());
    EXPECT_TRUE(std::equal(block.stream.begin(), block.stream.end(),
                           stream.compressed.stream.begin()));
    EXPECT_EQ(block.artifact.code_lengths, stream.code_lengths);
    expect_codecs_equal(block.artifact.codec, stream.codec);
    expect_clustering_equal(block.artifact.clustering, stream.clustering);
  }
}

TEST(SerializeMapped, ContainerBackedSpeedupMatchesEngineBacked) {
  if (test::update_goldens()) GTEST_SKIP() << "golden being regenerated";
  const std::string path = test::golden_path("reactnet_tiny.bkcm");

  // Engine-backed: load the container, simulate from the engine's
  // artifact view.
  const Engine engine = Engine::load_compressed(path, 2);
  const hwsim::SpeedupReport engine_report = engine.simulate_speedup();

  // Container-backed: map the file, feed hwsim the mapped view — no
  // engine, no kernel decode, no weight sampling, no pipeline work.
  const MappedBkcm mapped = MappedBkcm::open(path);
  const PipelineCounters before = pipeline_counters();
  const hwsim::SpeedupReport mapped_report = hwsim::compare_model(
      mapped.view(bnn::op_records_for(mapped.model_config())));
  const PipelineCounters delta = pipeline_counters().delta_since(before);
  EXPECT_EQ(delta.frequency_counts, 0u);
  EXPECT_EQ(delta.cluster_sequences_calls, 0u);
  EXPECT_EQ(delta.grouped_codec_builds, 0u);

  EXPECT_TRUE(hwsim::cycles_identical(mapped_report, engine_report));
}

TEST(SerializeMapped, MappedViewFeedsAssembledBlockViews) {
  const std::string path = ::testing::TempDir() + "/bkc_mapped_spans.bkcm";
  Engine source(test::tiny_config(53));
  source.compress();
  source.save_compressed(path);

  const MappedBkcm mapped = MappedBkcm::open(path);
  const CompressedModelView view =
      mapped.view(bnn::op_records_for(mapped.model_config()));
  ASSERT_EQ(view.blocks.size(), mapped.blocks().size());
  const std::span<const std::uint8_t> image = mapped.file_bytes();
  for (std::size_t b = 0; b < view.blocks.size(); ++b) {
    const BlockStreamView& block = view.blocks[b];
    // Assembled views alias the mapped blocks, which alias the mapping.
    EXPECT_EQ(block.stream.data(), mapped.blocks()[b].stream.data());
    EXPECT_GE(block.stream.data(), image.data());
    EXPECT_LE(block.stream.data() + block.stream.size(),
              image.data() + image.size());
    EXPECT_EQ(block.codec, &mapped.blocks()[b].artifact.codec);
    EXPECT_EQ(block.codec_id, mapped.blocks()[b].artifact.codec_id);
    EXPECT_EQ(block.code_lengths.size(), block.num_sequences());
  }
  // An op layout from a different configuration must be rejected.
  EXPECT_THROW(mapped.view(bnn::op_records_for(test::mid_config(53))),
               CheckError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bkc::compress
