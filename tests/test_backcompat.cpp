// Container back-compat: the PERMANENT v1 fixture
// (tests/golden/reactnet_tiny_v1.bkcm, written by the last v1 build
// with the same tiny/seed-42 recipe as the current golden) must keep
// loading through the refactored codec-dispatch paths — buffered AND
// mapped — bit-identically to a from-scratch compression. Plus the
// forward contract: every codec in the block-codec registry must
// round-trip an engine through a v2 container.
//
// The v1 fixture is never regenerated; if this suite fails the READER
// broke, not the fixture (the CTest 'backcompat' label runs it in CI).

#include <gtest/gtest.h>

#include <bit>
#include <cstdio>
#include <string>
#include <vector>

#include "compress/block_codec.h"
#include "compress/serialize.h"
#include "core/engine.h"
#include "support/support.h"
#include "util/binary_io.h"

namespace bkc {
namespace {

using compress::BkcmInfo;
using compress::MappedBkcm;

const std::string& v1_path() {
  static const std::string path =
      test::golden_path("reactnet_tiny_v1.bkcm");
  return path;
}

/// The engine every load must reproduce: the golden recipe (tiny
/// config, seed 42, default options), compressed fresh.
const Engine& reference_engine() {
  static const Engine engine = [] {
    Engine fresh(test::tiny_config(/*seed=*/42));
    fresh.compress();
    return fresh;
  }();
  return engine;
}

void expect_engine_matches_reference(const Engine& loaded,
                                     const std::string& what) {
  const Engine& reference = reference_engine();
  ASSERT_EQ(loaded.model().num_blocks(), reference.model().num_blocks())
      << what;
  for (std::size_t b = 0; b < reference.model().num_blocks(); ++b) {
    EXPECT_TRUE(loaded.model().block(b).conv3x3().kernel() ==
                reference.model().block(b).conv3x3().kernel())
        << what << ": kernel of block " << b;
  }
  const auto& loaded_report = loaded.report();
  const auto& reference_report = reference.report();
  ASSERT_EQ(loaded_report.blocks.size(), reference_report.blocks.size());
  EXPECT_EQ(loaded_report.conv3x3_clustering_bits,
            reference_report.conv3x3_clustering_bits)
      << what;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded_report.model_ratio),
            std::bit_cast<std::uint64_t>(reference_report.model_ratio))
      << what;
  EXPECT_EQ(
      std::bit_cast<std::uint64_t>(loaded_report.mean_clustering_ratio),
      std::bit_cast<std::uint64_t>(reference_report.mean_clustering_ratio))
      << what;

  // Classification from the loaded kernels is bit-identical too.
  bnn::WeightGenerator gen(5);
  const Tensor image =
      gen.sample_activation(reference.model().input_shape());
  const Tensor expected = reference.classify(image);
  const Tensor scores = loaded.classify(image);
  ASSERT_EQ(scores.data().size(), expected.data().size());
  for (std::size_t v = 0; v < scores.data().size(); ++v) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(scores.data()[v]),
              std::bit_cast<std::uint32_t>(expected.data()[v]))
        << what << ": score " << v;
  }
}

TEST(BackCompatV1, FixtureIsAVersion1Container) {
  const std::vector<std::uint8_t> file = read_file_bytes(v1_path());
  const BkcmInfo info = compress::inspect_bkcm(file);
  EXPECT_EQ(info.version, 1u);
  ASSERT_EQ(info.sections.size(), 3u);
  EXPECT_EQ(info.sections[0].name, "CONF");
  EXPECT_EQ(info.sections[1].name, "REPT");
  EXPECT_EQ(info.sections[2].name, "BLKS");
  // v1 blocks are implicitly grouped-huffman; the reader stamps the id.
  const compress::BkcmContents contents = compress::read_bkcm(file, info);
  for (const compress::KernelCompression& stream : contents.streams) {
    EXPECT_EQ(stream.codec_id, compress::kCodecGroupedHuffman);
  }
}

TEST(BackCompatV1, BufferedLoadIsBitIdenticalAtEveryThreadCount) {
  const std::vector<std::uint8_t> file = read_file_bytes(v1_path());
  for (const int threads : {1, 2, 4, 7}) {
    const Engine loaded = Engine::load_compressed(
        std::span<const std::uint8_t>(file), threads);
    EXPECT_TRUE(loaded.verify_streams(threads));
    EXPECT_EQ(loaded.options().codec_id, compress::kCodecGroupedHuffman);
    expect_engine_matches_reference(
        loaded, "buffered, threads " + std::to_string(threads));
  }
}

TEST(BackCompatV1, MappedLoadIsBitIdenticalAtEveryThreadCount) {
  for (const int threads : {1, 2, 4, 7}) {
    // Engine::load_compressed(path) maps the file; the MappedBkcm
    // overload is the serving path — exercise both.
    const Engine loaded = Engine::load_compressed(v1_path(), threads);
    EXPECT_TRUE(loaded.verify_streams(threads));
    expect_engine_matches_reference(
        loaded, "mapped, threads " + std::to_string(threads));

    const MappedBkcm mapped = MappedBkcm::open(v1_path());
    EXPECT_EQ(mapped.info().version, 1u);
    const Engine served = Engine::load_compressed(mapped, threads);
    expect_engine_matches_reference(
        served, "mapped (serving), threads " + std::to_string(threads));
  }
}

TEST(BackCompatV1, RewritingTheFixtureUpgradesItToV2Unchanged) {
  // Load the v1 fixture and write it back out: the result is a v2
  // container whose artifacts survive another round trip bit-exactly.
  const Engine loaded = Engine::load_compressed(v1_path());
  const std::string path = ::testing::TempDir() + "/bkc_v1_upgraded.bkcm";
  loaded.save_compressed(path);
  const BkcmInfo info =
      compress::inspect_bkcm(read_file_bytes(path));
  EXPECT_EQ(info.version, compress::kBkcmVersion);
  const Engine upgraded = Engine::load_compressed(path);
  expect_engine_matches_reference(upgraded, "v1 fixture upgraded to v2");
  std::remove(path.c_str());
}

// ---- Forward contract: every registered codec round-trips ----

class BackCompatCodecs : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BackCompatCodecs, EngineRoundTripsThroughAV2Container) {
  const std::uint32_t codec_id = GetParam();
  const std::string path = ::testing::TempDir() + "/bkc_codec_" +
                           std::to_string(codec_id) + ".bkcm";
  Engine source(test::tiny_config(61), EngineOptions{.codec_id = codec_id});
  source.compress(2);
  EXPECT_TRUE(source.verify_streams(2));
  source.save_compressed(path);

  const std::vector<std::uint8_t> bytes = read_file_bytes(path);
  const Engine buffered =
      Engine::load_compressed(std::span<const std::uint8_t>(bytes), 2);
  const Engine mapped = Engine::load_compressed(path, 2);
  for (const Engine* loaded : {&buffered, &mapped}) {
    EXPECT_EQ(loaded->options().codec_id, codec_id);
    EXPECT_TRUE(loaded->verify_streams(2));
    ASSERT_EQ(loaded->model().num_blocks(), source.model().num_blocks());
    for (std::size_t b = 0; b < source.model().num_blocks(); ++b) {
      EXPECT_TRUE(loaded->model().block(b).conv3x3().kernel() ==
                  source.model().block(b).conv3x3().kernel())
          << "codec " << codec_id << ", block " << b;
    }
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredCodecs, BackCompatCodecs,
    ::testing::ValuesIn(std::vector<std::uint32_t>(
        compress::registered_block_codecs().begin(),
        compress::registered_block_codecs().end())),
    [](const ::testing::TestParamInfo<std::uint32_t>& info) {
      std::string name(compress::codec_for(info.param).name());
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace bkc
