// Tests for the deterministic PRNG and the alias sampler.

#include "util/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "util/check.h"

namespace bkc {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowZeroBoundThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.below(0), CheckError);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  std::array<int, 8> histogram{};
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++histogram[rng.below(8)];
  for (int count : histogram) {
    EXPECT_NEAR(count, n / 8, n / 8 * 0.1);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(9);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(13);
  const auto perm = rng.permutation(257);
  std::array<bool, 257> seen{};
  for (auto v : perm) {
    ASSERT_LT(v, 257u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Rng, WeightedPickRespectsWeights) {
  Rng rng(17);
  const std::array<double, 3> weights{0.0, 3.0, 1.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_pick(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[2], 3.0, 0.3);
}

TEST(AliasSampler, MatchesTargetDistribution) {
  const std::array<double, 4> weights{1.0, 2.0, 3.0, 4.0};
  AliasSampler sampler{weights};
  Rng rng(23);
  std::array<int, 4> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample(rng)];
  for (int k = 0; k < 4; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, weights[k] / 10.0, 0.01);
  }
}

TEST(AliasSampler, ZeroWeightNeverSampled) {
  const std::array<double, 3> weights{1.0, 0.0, 1.0};
  AliasSampler sampler{weights};
  Rng rng(29);
  for (int i = 0; i < 20000; ++i) EXPECT_NE(sampler.sample(rng), 1u);
}

TEST(AliasSampler, RejectsInvalidWeights) {
  const std::array<double, 2> negative{1.0, -1.0};
  EXPECT_THROW(AliasSampler{negative}, CheckError);
  const std::array<double, 2> zero{0.0, 0.0};
  EXPECT_THROW(AliasSampler{zero}, CheckError);
}

}  // namespace
}  // namespace bkc
