// The decode-path contract of compress/multi_decode.h: the table-driven
// multi-symbol decoder behaves *identically* to the bit-serial
// decode_one reference on every stream - valid, truncated or corrupted.
// Identically means: same sequence of decoded ids, or a CheckError with
// the same message, for all tree shapes in the shared config list plus
// the degenerate tables (single distinct symbol, all 512 distinct).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "compress/frequency.h"
#include "compress/grouped_huffman.h"
#include "compress/multi_decode.h"
#include "support/configs.h"
#include "util/bitstream.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/simd.h"

namespace bkc::compress {
namespace {

// What one decode attempt did: its output, or the CheckError message
// with the source-location prefix stripped (the reference and the
// multi-symbol path raise from different files, but the message text
// itself must match).
struct DecodeOutcome {
  bool threw = false;
  std::string error;
  std::vector<SeqId> out;

  bool operator==(const DecodeOutcome& other) const = default;
};

std::string strip_location(const std::string& what) {
  // check() formats "<file>:<line>: <message>".
  const auto line_colon = what.find(':');
  if (line_colon == std::string::npos) return what;
  const auto msg_start = what.find(": ", line_colon + 1);
  if (msg_start == std::string::npos) return what;
  return what.substr(msg_start + 2);
}

template <typename Decode>
DecodeOutcome run_decode(const Decode& decode) {
  DecodeOutcome outcome;
  try {
    outcome.out = decode();
  } catch (const CheckError& e) {
    outcome.threw = true;
    outcome.error = strip_location(e.what());
  }
  return outcome;
}

void expect_paths_identical(const GroupedHuffmanCodec& codec,
                            std::span<const std::uint8_t> stream,
                            std::size_t bit_count, std::size_t count,
                            const std::string& label) {
  const auto scalar = run_decode(
      [&] { return codec.decode_scalar(stream, bit_count, count); });
  const auto multi = run_decode(
      [&] { return codec.decode_multi(stream, bit_count, count); });
  EXPECT_EQ(scalar.threw, multi.threw) << label;
  EXPECT_EQ(scalar.error, multi.error) << label;
  EXPECT_EQ(scalar.out, multi.out) << label;
}

std::vector<SeqId> random_sequences(Rng& rng, std::uint64_t capacity,
                                    std::size_t length) {
  const auto alphabet_cap =
      std::min<std::uint64_t>(capacity, bnn::kNumSequences);
  const auto ids = rng.permutation(bnn::kNumSequences);
  const std::size_t alphabet =
      static_cast<std::size_t>(1 + rng.below(alphabet_cap));
  std::vector<SeqId> sequences;
  sequences.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    sequences.push_back(static_cast<SeqId>(ids[rng.below(alphabet)]));
  }
  return sequences;
}

TEST(MultiDecode, MatchesScalarOnValidStreams) {
  for (const GroupedTreeConfig& config : test::codec_tree_configs()) {
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
      Rng rng(0xDEC0DE00 + seed);
      const auto sequences =
          random_sequences(rng, config.total_capacity(),
                           static_cast<std::size_t>(rng.range(1, 300)));
      const GroupedHuffmanCodec codec(
          FrequencyTable::from_sequences(sequences), config);
      std::size_t bit_count = 0;
      const auto stream = codec.encode(sequences, bit_count);
      const auto decoded =
          codec.decode_multi(stream, bit_count, sequences.size());
      EXPECT_EQ(decoded, sequences)
          << "nodes " << config.num_nodes() << " seed " << seed;
      expect_paths_identical(codec, stream, bit_count, sequences.size(),
                             "valid, nodes " +
                                 std::to_string(config.num_nodes()) +
                                 ", seed " + std::to_string(seed));
    }
  }
}

TEST(MultiDecode, DegenerateTables) {
  // One distinct symbol repeated (maximum multi-symbol packing: the
  // shortest configs emit 1-bit codewords) and the full 512-distinct
  // alphabet (every node of the paper config occupied).
  for (const GroupedTreeConfig& config : test::codec_tree_configs()) {
    const std::vector<SeqId> repeated(300, SeqId{257});
    const GroupedHuffmanCodec codec(FrequencyTable::from_sequences(repeated),
                                    config);
    std::size_t bit_count = 0;
    const auto stream = codec.encode(repeated, bit_count);
    EXPECT_EQ(codec.decode_multi(stream, bit_count, repeated.size()),
              repeated);
    expect_paths_identical(codec, stream, bit_count, repeated.size(),
                           "repeated, nodes " +
                               std::to_string(config.num_nodes()));
  }
  std::vector<SeqId> distinct(bnn::kNumSequences);
  for (int s = 0; s < bnn::kNumSequences; ++s) {
    distinct[static_cast<std::size_t>(s)] = static_cast<SeqId>(s);
  }
  for (const GroupedTreeConfig& config :
       {GroupedTreeConfig::paper(), GroupedTreeConfig::fixed9()}) {
    const GroupedHuffmanCodec codec(FrequencyTable::from_sequences(distinct),
                                    config);
    std::size_t bit_count = 0;
    const auto stream = codec.encode(distinct, bit_count);
    EXPECT_EQ(codec.decode_multi(stream, bit_count, distinct.size()),
              distinct);
    expect_paths_identical(codec, stream, bit_count, distinct.size(),
                           "distinct, nodes " +
                               std::to_string(config.num_nodes()));
  }
}

TEST(MultiDecode, TruncatedStreamsRaiseCheckErrorOnBothPaths) {
  for (const GroupedTreeConfig& config : test::codec_tree_configs()) {
    Rng rng(0x7274C000 + static_cast<std::uint64_t>(config.num_nodes()));
    const auto sequences = random_sequences(rng, config.total_capacity(), 60);
    const GroupedHuffmanCodec codec(FrequencyTable::from_sequences(sequences),
                                    config);
    std::size_t bit_count = 0;
    const auto stream = codec.encode(sequences, bit_count);
    // Every nonzero truncation leaves the last codeword incomplete
    // somewhere before `count` symbols, so both paths must throw - and
    // agree on everything, including how far they got.
    for (std::size_t cut = 1; cut <= std::min<std::size_t>(bit_count, 40);
         ++cut) {
      const std::size_t bits = bit_count - cut;
      const std::span<const std::uint8_t> view(stream.data(),
                                               (bits + 7) / 8);
      const auto scalar = run_decode(
          [&] { return codec.decode_scalar(view, bits, sequences.size()); });
      EXPECT_TRUE(scalar.threw) << "cut " << cut;
      expect_paths_identical(codec, view, bits, sequences.size(),
                             "truncated by " + std::to_string(cut) +
                                 ", nodes " +
                                 std::to_string(config.num_nodes()));
    }
  }
}

TEST(MultiDecode, BitFlippedStreamsBehaveIdentically) {
  // A flipped bit may re-decode to other valid symbols or hit an
  // unoccupied table slot; either way the reference and the
  // multi-symbol path must do exactly the same thing.
  for (const GroupedTreeConfig& config : test::codec_tree_configs()) {
    Rng rng(0xF11B000 + static_cast<std::uint64_t>(config.num_nodes()));
    // A small alphabet leaves most table slots unoccupied, making
    // corrupt-index outcomes likely alongside silent re-decodes.
    const auto alphabet_cap =
        std::min<std::uint64_t>(config.total_capacity(), 5);
    std::vector<SeqId> sequences;
    const auto ids = rng.permutation(bnn::kNumSequences);
    for (int i = 0; i < 80; ++i) {
      sequences.push_back(static_cast<SeqId>(ids[rng.below(alphabet_cap)]));
    }
    const GroupedHuffmanCodec codec(FrequencyTable::from_sequences(sequences),
                                    config);
    std::size_t bit_count = 0;
    auto stream = codec.encode(sequences, bit_count);
    for (std::size_t bit = 0; bit < bit_count; ++bit) {
      stream[bit / 8] ^= static_cast<std::uint8_t>(0x80u >> (bit % 8));
      expect_paths_identical(codec, stream, bit_count, sequences.size(),
                             "flip bit " + std::to_string(bit) + ", nodes " +
                                 std::to_string(config.num_nodes()));
      stream[bit / 8] ^= static_cast<std::uint8_t>(0x80u >> (bit % 8));
    }
  }
}

TEST(MultiDecode, CraftedCorruptIndexRaisesOnBothPaths) {
  // A partially filled node: the codec below assigns only 3 of node 0's
  // 32 slots (paper config), so an explicit index 30 is corrupt. Both
  // paths must raise the exact corrupt-stream message.
  const GroupedHuffmanCodec sparse(GroupedTreeConfig::paper(),
                                   {{SeqId{1}, SeqId{2}, SeqId{3}}, {}, {},
                                    {}});
  BitWriter writer;
  writer.write_bits(0, 1);   // node 0 prefix
  writer.write_bits(30, 5);  // index beyond the 3 occupied slots
  const auto stream = writer.take();
  for (auto decode : {&GroupedHuffmanCodec::decode_scalar,
                       &GroupedHuffmanCodec::decode_multi}) {
    const auto outcome = run_decode(
        [&] { return (sparse.*decode)(stream, 6, 1); });
    EXPECT_TRUE(outcome.threw);
    EXPECT_EQ(outcome.error,
              "GroupedHuffmanCodec: corrupt stream (index beyond table)");
  }
}

TEST(MultiDecode, SingleNodeCorruptIndexRaisesOnBothPaths) {
  // The fixed-width specialization (num_nodes == 1) keeps the same
  // corrupt-index check: occupancy 2, index 5 is beyond the table.
  const GroupedHuffmanCodec sparse(GroupedTreeConfig{{3}},
                                   {{SeqId{7}, SeqId{8}}});
  BitWriter writer;
  writer.write_bits(5, 3);
  const auto stream = writer.take();
  for (auto decode : {&GroupedHuffmanCodec::decode_scalar,
                       &GroupedHuffmanCodec::decode_multi}) {
    const auto outcome = run_decode(
        [&] { return (sparse.*decode)(stream, 3, 1); });
    EXPECT_TRUE(outcome.threw);
    EXPECT_EQ(outcome.error,
              "GroupedHuffmanCodec: corrupt stream (index beyond table)");
  }
}

TEST(MultiDecode, DecodeDispatchHonorsScalarForce) {
  Rng rng(0xD15BA7C4);
  const auto sequences =
      random_sequences(rng, GroupedTreeConfig::paper().total_capacity(), 120);
  const GroupedHuffmanCodec codec(FrequencyTable::from_sequences(sequences));
  std::size_t bit_count = 0;
  const auto stream = codec.encode(sequences, bit_count);
  const auto dispatched = codec.decode(stream, bit_count, sequences.size());
  EXPECT_EQ(dispatched, sequences);
  {
    simd::ScopedForceScalar force;
    EXPECT_EQ(codec.decode(stream, bit_count, sequences.size()), sequences);
  }
}

TEST(MultiDecode, StandaloneDecoderMatchesCodecTables) {
  // MultiDecoder owns copies of the tables: decoding must keep working
  // after the codec it was built from is gone (the copyable/movable
  // guarantee KernelCompression relies on).
  std::size_t bit_count = 0;
  std::vector<std::uint8_t> stream;
  std::vector<SeqId> sequences;
  MultiDecoder decoder;
  {
    Rng rng(0x0C0B1E5);
    sequences = random_sequences(
        rng, GroupedTreeConfig::paper().total_capacity(), 90);
    const GroupedHuffmanCodec codec(
        FrequencyTable::from_sequences(sequences));
    stream = codec.encode(sequences, bit_count);
    std::vector<std::vector<SeqId>> tables;
    for (int n = 0; n < codec.config().num_nodes(); ++n) {
      const auto table = codec.uncompressed_table(n);
      tables.emplace_back(table.begin(), table.end());
    }
    decoder = MultiDecoder(codec.config().index_bits, tables);
  }  // codec destroyed
  EXPECT_EQ(decoder.decode(stream, bit_count, sequences.size()), sequences);
}

}  // namespace
}  // namespace bkc::compress
