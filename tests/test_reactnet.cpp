// Tests for the ReActNet model: topology, shapes, Table I storage shape.

#include "bnn/reactnet.h"

#include <gtest/gtest.h>

#include <sstream>

#include "support/support.h"
#include "util/check.h"

namespace bkc::bnn {
namespace {

TEST(Schedule, ThirteenBlocksMobileNetV1) {
  const auto blocks = mobilenet_v1_schedule();
  ASSERT_EQ(blocks.size(), 13u);
  EXPECT_EQ(blocks.front().in_channels, 32);
  EXPECT_EQ(blocks.front().out_channels, 64);
  EXPECT_EQ(blocks.back().in_channels, 1024);
  // Every block expands to in or 2*in with stride 1 or 2.
  for (const auto& b : blocks) {
    EXPECT_TRUE(b.out_channels == b.in_channels ||
                b.out_channels == 2 * b.in_channels);
    EXPECT_TRUE(b.stride == 1 || b.stride == 2);
  }
}

TEST(Schedule, WidthDivisorScalesAndClamps) {
  const auto blocks = mobilenet_v1_schedule(8);
  EXPECT_EQ(blocks.front().in_channels, 4);  // 32/8
  EXPECT_EQ(blocks.back().out_channels, 128);
  const auto tiny = mobilenet_v1_schedule(64);
  EXPECT_EQ(tiny.front().in_channels, 4);  // clamped at 4
}

TEST(BasicBlock, NonExpandingForwardShape) {
  WeightGenerator gen(3);
  const SequenceDistribution dist = SequenceDistribution::uniform();
  BasicBlock block("b", {16, 16, 1}, gen, dist);
  const Tensor out = block.forward(gen.sample_activation({16, 8, 8}));
  EXPECT_EQ(out.shape(), (FeatureShape{16, 8, 8}));
  EXPECT_EQ(block.conv1x1s().size(), 1u);
}

TEST(BasicBlock, ExpandingStride2ForwardShape) {
  WeightGenerator gen(5);
  const SequenceDistribution dist = SequenceDistribution::uniform();
  BasicBlock block("b", {16, 32, 2}, gen, dist);
  const Tensor out = block.forward(gen.sample_activation({16, 8, 8}));
  EXPECT_EQ(out.shape(), (FeatureShape{32, 4, 4}));
  EXPECT_EQ(block.conv1x1s().size(), 2u);  // channel duplication
  EXPECT_EQ(block.output_shape({16, 8, 8}), (FeatureShape{32, 4, 4}));
}

TEST(BasicBlock, RejectsBadExpansion) {
  WeightGenerator gen(7);
  const SequenceDistribution dist = SequenceDistribution::uniform();
  EXPECT_THROW(BasicBlock("b", {16, 48, 1}, gen, dist), CheckError);
  EXPECT_THROW(BasicBlock("b", {16, 16, 3}, gen, dist), CheckError);
}

TEST(BasicBlock, Conv3x3IsInToIn) {
  WeightGenerator gen(9);
  const SequenceDistribution dist = SequenceDistribution::uniform();
  BasicBlock block("b", {16, 32, 2}, gen, dist);
  EXPECT_EQ(block.conv3x3().kernel().shape(),
            (KernelShape{16, 16, 3, 3}));
}

TEST(ReActNet, TinyForwardRuns) {
  const ReActNet model(test::tiny_config(21));
  Tensor image(model.input_shape());
  WeightGenerator gen(22);
  image = gen.sample_activation(model.input_shape());
  const Tensor scores = model.forward(image);
  EXPECT_EQ(scores.shape(), (FeatureShape{10, 1, 1}));
  // Scores should not be all equal (the network is doing something).
  float lo = scores.data()[0];
  float hi = scores.data()[0];
  for (float v : scores.data()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi - lo, 1e-6f);
}

TEST(ReActNet, ForwardIsDeterministic) {
  const ReActNet model(test::tiny_config(33));
  WeightGenerator gen(34);
  const Tensor image = gen.sample_activation(model.input_shape());
  const Tensor a = model.forward(image);
  const Tensor b = model.forward(image);
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(ReActNet, SameSeedSameModel) {
  const ReActNet a(test::tiny_config(55));
  const ReActNet b(test::tiny_config(55));
  for (std::size_t i = 0; i < a.num_blocks(); ++i) {
    EXPECT_TRUE(a.block(i).conv3x3().kernel() ==
                b.block(i).conv3x3().kernel());
  }
}

TEST(ReActNet, WrongInputShapeThrows) {
  const ReActNet model(test::tiny_config(42));
  Tensor bad(FeatureShape{3, 16, 16});
  EXPECT_THROW(model.forward(bad), CheckError);
}

TEST(ReActNet, PaperStorageBreakdownMatchesTableI) {
  // The full-size model reproduces Table I's storage column: 3x3 convs
  // ~68%, 1x1 ~8.5%, int8 output ~22%, input ~0.02%.
  const ReActNet model(paper_reactnet_config(1));
  const StorageBreakdown storage = model.storage();
  EXPECT_NEAR(storage.bits_fraction(OpClass::kConv3x3), 0.68, 0.04);
  EXPECT_NEAR(storage.bits_fraction(OpClass::kConv1x1), 0.085, 0.015);
  EXPECT_NEAR(storage.bits_fraction(OpClass::kOutputLayer), 0.22, 0.03);
  EXPECT_LT(storage.bits_fraction(OpClass::kInputLayer), 0.001);
  // Paper: ~29-37 Mbit of weights; ours lands in the same range.
  EXPECT_GT(storage.total_bits, 30'000'000u);
  EXPECT_LT(storage.total_bits, 45'000'000u);
}

TEST(ReActNet, OpRecordsCoverEveryConv) {
  const ReActNet model(test::tiny_config(42));
  const auto records = model.op_records();
  int conv3 = 0;
  int conv1 = 0;
  int input = 0;
  int output = 0;
  for (const auto& r : records) {
    conv3 += r.op_class == OpClass::kConv3x3 && r.precision_bits == 1;
    conv1 += r.op_class == OpClass::kConv1x1;
    input += r.op_class == OpClass::kInputLayer;
    output += r.op_class == OpClass::kOutputLayer;
  }
  EXPECT_EQ(conv3, 13);
  EXPECT_EQ(input, 1);
  EXPECT_EQ(output, 1);
  // 13 blocks, expanding blocks have two 1x1 convs.
  int expected_1x1 = 0;
  for (const auto& b : model.config().blocks) {
    expected_1x1 += b.out_channels == 2 * b.in_channels ? 2 : 1;
  }
  EXPECT_EQ(conv1, expected_1x1);
}

TEST(ReActNet, BlockIndexGuard) {
  const ReActNet model(test::tiny_config(42));
  EXPECT_THROW(model.block(13), CheckError);
}

TEST(ReActNet, OpRecordLayoutMatchesGolden) {
  // The resolved op list (names, shapes, precisions, storage) is the
  // contract both the compressor and the timing model consume; pin it.
  const ReActNet model(test::tiny_config(42));
  std::ostringstream out;
  for (const auto& r : model.op_records()) {
    out << r.name << " " << op_class_name(r.op_class) << " int"
        << r.precision_bits << " in=" << r.input_shape.to_string()
        << " out=" << r.output_shape.to_string()
        << " kernel=" << r.kernel_shape.to_string()
        << " storage_bits=" << r.storage_bits << " macs=" << r.macs
        << "\n";
  }
  test::expect_matches_golden("reactnet_tiny_ops.txt", out.str());
}

TEST(ReActNet, OpRecordsForMatchesARealModelFieldForField) {
  // op_records_for stands the model up with layout-only (zero-filled)
  // weights; because op records depend on shapes alone, every field
  // must equal the records of a fully sampled model with the same
  // configuration. This is what lets container tooling feed hwsim
  // without paying weight generation — the pin here guarantees the
  // cheap layout can never drift from the real one.
  for (const auto& config : {test::tiny_config(42), test::mid_config(7)}) {
    const std::vector<OpRecord> cheap = op_records_for(config);
    const std::vector<OpRecord> real = ReActNet(config).op_records();
    ASSERT_EQ(cheap.size(), real.size());
    for (std::size_t i = 0; i < cheap.size(); ++i) {
      EXPECT_EQ(cheap[i].name, real[i].name) << i;
      EXPECT_EQ(cheap[i].op_class, real[i].op_class) << i;
      EXPECT_EQ(cheap[i].storage_bits, real[i].storage_bits) << i;
      EXPECT_EQ(cheap[i].macs, real[i].macs) << i;
      EXPECT_EQ(cheap[i].precision_bits, real[i].precision_bits) << i;
      EXPECT_TRUE(cheap[i].input_shape == real[i].input_shape) << i;
      EXPECT_TRUE(cheap[i].output_shape == real[i].output_shape) << i;
      EXPECT_TRUE(cheap[i].kernel_shape == real[i].kernel_shape) << i;
      EXPECT_EQ(cheap[i].geometry.stride, real[i].geometry.stride) << i;
      EXPECT_EQ(cheap[i].geometry.padding, real[i].geometry.padding) << i;
    }
  }
}

}  // namespace
}  // namespace bkc::bnn
