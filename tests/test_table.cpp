// Tests for the ASCII table printer used by the bench harnesses.

#include "util/table.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace bkc {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"Layer", "Ratio"});
  t.row().add("block1").add(1.3);
  t.row().add("b2").add(1.25);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| Layer  | Ratio |"), std::string::npos);
  EXPECT_NE(s.find("| block1 | 1.30  |"), std::string::npos);
  EXPECT_NE(s.find("| b2     | 1.25  |"), std::string::npos);
}

TEST(Table, MissingTrailingCellsRenderEmpty) {
  Table t({"A", "B"});
  t.row().add("x");
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| x |   |"), std::string::npos);
}

TEST(Table, TooManyCellsThrows) {
  Table t({"A"});
  t.row().add("x");
  EXPECT_THROW(t.add("y"), CheckError);
}

TEST(Table, AddBeforeRowThrows) {
  Table t({"A"});
  EXPECT_THROW(t.add("x"), CheckError);
}

TEST(Table, NumericFormatting) {
  Table t({"v"});
  t.row().add(3.14159, 3);
  EXPECT_NE(t.to_string().find("3.142"), std::string::npos);
}

TEST(Formatters, RatioPercentBits) {
  EXPECT_EQ(ratio_str(1.327), "1.33x");
  EXPECT_EQ(percent_str(0.463), "46.3%");
  EXPECT_EQ(bits_str(25110000), "25.11 Mbit");
  EXPECT_EQ(bits_str(4600), "4.60 Kbit");
  EXPECT_EQ(bits_str(17), "17 bit");
}

}  // namespace
}  // namespace bkc
