// Corruption and truncation robustness of the BKCM reader.
//
// The contract under test: ANY structurally broken container — cut off
// at a section boundary or mid-field, flipped magic/version/flag/crc
// bytes, oversized section lengths, payload corruption — fails with
// CheckError whose message names the header or section at fault. Never
// a crash, never UB (the ASan/UBSan and TSan CI jobs run this suite).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "compress/serialize.h"
#include "core/engine.h"
#include "support/support.h"
#include "util/binary_io.h"
#include "util/check.h"

namespace bkc::compress {
namespace {

/// One valid tiny container, built once for the whole suite.
const std::vector<std::uint8_t>& valid_file() {
  static const std::vector<std::uint8_t> file = [] {
    Engine engine(test::tiny_config(/*seed=*/37));
    engine.compress();
    return write_bkcm({.clustering = engine.options().clustering,
                       .tree = engine.options().tree,
                       .clustering_config = engine.options().clustering_config,
                       .model_config = engine.model().config(),
                       .report = engine.report(),
                       .streams = engine.block_streams()});
  }();
  return file;
}

const BkcmInfo& valid_info() {
  static const BkcmInfo info = inspect_bkcm(valid_file());
  return info;
}

/// read_bkcm(file) must throw CheckError whose message contains
/// `needle` (case-sensitive).
void expect_read_fails(const std::vector<std::uint8_t>& file,
                       const std::string& needle,
                       const std::string& what_case) {
  try {
    read_bkcm(file);
    FAIL() << what_case << ": expected CheckError containing '" << needle
           << "', but the read succeeded";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << what_case << ": error was: " << e.what();
  }
}

std::vector<std::uint8_t> truncated(std::size_t size) {
  const auto& file = valid_file();
  return {file.begin(), file.begin() + static_cast<std::ptrdiff_t>(size)};
}

/// Recompute and patch the stored CRC of section `index` (for tests
/// that corrupt a payload and need the corruption to get PAST the
/// checksum, proving the parser itself is also hardened).
void fix_crc(std::vector<std::uint8_t>& file, std::size_t index) {
  const BkcmSection& section = valid_info().sections[index];
  const std::uint32_t crc =
      crc32(std::span<const std::uint8_t>(file).subspan(
          static_cast<std::size_t>(section.offset),
          static_cast<std::size_t>(section.length)));
  const std::size_t crc_offset = 16 + index * 24 + 20;
  for (int i = 0; i < 4; ++i) {
    file[crc_offset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((crc >> (8 * i)) & 0xff);
  }
}

TEST(BkcmRobustness, ValidFileLoads) {
  const BkcmContents contents = read_bkcm(valid_file());
  EXPECT_EQ(contents.streams.size(), 13u);
}

TEST(BkcmRobustness, TruncationAtEverySectionBoundary) {
  // Boundaries: empty file, mid-fixed-header, end of fixed header,
  // end of section table / start of CONF, then each section start.
  std::vector<std::size_t> boundaries = {0, 10, 16};
  for (const BkcmSection& section : valid_info().sections) {
    boundaries.push_back(static_cast<std::size_t>(section.offset));
  }
  for (std::size_t boundary : boundaries) {
    expect_read_fails(truncated(boundary), "BKCM",
                      "truncated at " + std::to_string(boundary));
  }
}

TEST(BkcmRobustness, TruncationAtByteOffsetsNamesTheLostSection) {
  const auto& sections = valid_info().sections;
  // A byte into the section table.
  expect_read_fails(truncated(16 + 5), "BKCM header", "mid section table");
  // Mid-CONF: the CONF range no longer fits the file.
  expect_read_fails(
      truncated(static_cast<std::size_t>(sections[0].offset) + 7),
      "BKCM section 'CONF'", "mid CONF");
  // Mid-REPT and one byte short of the full file: the damaged section
  // is the one named.
  expect_read_fails(
      truncated(static_cast<std::size_t>(sections[1].offset +
                                         sections[1].length / 2)),
      "BKCM section 'REPT'", "mid REPT");
  // One byte short of the full file: the damaged section is the LAST
  // one — in v2 that is the 'CDCS' codec directory.
  expect_read_fails(truncated(valid_file().size() - 1),
                    "BKCM section 'CDCS'", "one byte short");
}

TEST(BkcmRobustness, BadMagicIsRejected) {
  auto file = valid_file();
  file[0] ^= 0xff;
  expect_read_fails(file, "bad magic", "flipped magic byte");
  expect_read_fails({}, "BKCM header", "empty file");
}

TEST(BkcmRobustness, UnsupportedVersionIsRejected) {
  auto file = valid_file();
  file[4] = 99;  // version field (this build reads 1..2)
  expect_read_fails(file, "unsupported version", "future version");
  file[4] = 0;  // below the supported range
  expect_read_fails(file, "unsupported version", "version zero");
}

TEST(BkcmRobustness, UnknownFlagBitsAreRejected) {
  auto file = valid_file();
  file[8] |= 0x80;  // flags field
  expect_read_fails(file, "unknown flag", "unknown flag bit");
}

TEST(BkcmRobustness, FlippedKnownFlagBitIsRejected) {
  // The clustering bit is a KNOWN flag, so it passes the unknown-bits
  // check — but it is mirrored inside the CRC-covered CONF section and
  // the cross-check catches the flip (the header itself has no
  // checksum; this closes the one semantic field that check leaves).
  auto file = valid_file();
  file[8] ^= 0x01;  // kBkcmFlagClustering
  expect_read_fails(file, "clustering flag does not match the header",
                    "flipped clustering flag bit");
}

TEST(BkcmRobustness, WrongSectionCountIsRejected) {
  // v2 allows optional sections, so the plausibility window is 3..16 —
  // below and above must both fail before any row is parsed.
  auto file = valid_file();
  file[12] = 2;  // section_count field
  expect_read_fails(file, "sections", "section count 2");
  file[12] = 200;
  expect_read_fails(file, "sections", "section count 200");
}

TEST(BkcmRobustness, V1ContainerRequiresExactlyThreeSections) {
  // A v1 header claiming a fourth section is structurally invalid even
  // though the same count is fine for v2.
  auto file = valid_file();
  file[4] = 1;  // version field
  file[12] = 4;
  expect_read_fails(file, "sections", "v1 with four sections");
}

TEST(BkcmRobustness, WrongSectionIdIsRejected) {
  auto file = valid_file();
  file[16] ^= 0x20;  // first byte of the CONF fourcc
  expect_read_fails(file, "section 0 must be 'CONF'", "renamed section");
}

TEST(BkcmRobustness, FlippedPayloadByteFailsTheNamedChecksum) {
  for (std::size_t s = 0; s < 3; ++s) {
    const BkcmSection& section = valid_info().sections[s];
    auto file = valid_file();
    file[static_cast<std::size_t>(section.offset + section.length - 1)] ^=
        0x01;
    expect_read_fails(file,
                      "BKCM section '" + section.name +
                          "': checksum mismatch",
                      "payload flip in " + section.name);
  }
}

TEST(BkcmRobustness, FlippedStoredCrcFailsTheNamedChecksum) {
  for (std::size_t s = 0; s < 3; ++s) {
    auto file = valid_file();
    file[16 + s * 24 + 20] ^= 0xff;  // crc field of section row s
    expect_read_fails(
        file,
        "BKCM section '" + valid_info().sections[s].name +
            "': checksum mismatch",
        "crc flip for section " + std::to_string(s));
  }
}

TEST(BkcmRobustness, OversizedSectionLengthIsRejectedByName) {
  for (std::size_t s = 0; s < 3; ++s) {
    auto file = valid_file();
    const std::size_t length_offset = 16 + s * 24 + 12;
    file[length_offset + 3] = 0x7f;  // blow up the u64 length field
    expect_read_fails(file,
                      "BKCM section '" + valid_info().sections[s].name + "'",
                      "oversized length for section " + std::to_string(s));
  }
}

TEST(BkcmRobustness, TrailingBytesAreRejected) {
  auto file = valid_file();
  file.push_back(0x00);
  expect_read_fails(file, "does not match the section table",
                    "one trailing byte");
}

TEST(BkcmRobustness, CorruptPayloadBehindAValidChecksumStillFailsCleanly) {
  // Even when an attacker (or a bug) recomputes the CRC, the parser
  // itself must reject nonsense with the section named.
  {
    auto file = valid_file();  // CONF: tree node count (after the
                               // clustering-mirror byte) -> 0
    file[static_cast<std::size_t>(valid_info().sections[0].offset) + 1] = 0;
    fix_crc(file, 0);
    expect_read_fails(file, "BKCM section 'CONF'", "zero tree nodes");
  }
  {
    auto file = valid_file();  // REPT: block count -> 0
    file[static_cast<std::size_t>(valid_info().sections[1].offset)] = 0;
    fix_crc(file, 1);
    expect_read_fails(file, "BKCM section 'REPT'", "zero report blocks");
  }
  {
    auto file = valid_file();  // BLKS: stream count -> 1 (model has 13)
    file[static_cast<std::size_t>(valid_info().sections[2].offset)] = 1;
    fix_crc(file, 2);
    expect_read_fails(file, "BKCM section 'BLKS'", "wrong stream count");
  }
}

// ---- v2 codec-id robustness ----
// A v2 'BLKS' block starts with a u32 codec id; a CRC-valid hostile
// container must not be able to select a codec outside the registry,
// and the 'CDCS' directory must agree with both the registry and the
// streams.

/// Overwrite the first stream's codec-id word (it sits right after the
/// 1-byte varint stream count) and recompute the BLKS CRC so the
/// corruption gets past every structural gate.
std::vector<std::uint8_t> file_with_codec_id(std::uint32_t codec_id) {
  auto file = valid_file();
  const auto blks_offset =
      static_cast<std::size_t>(valid_info().sections[2].offset);
  for (int i = 0; i < 4; ++i) {
    file[blks_offset + 1 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((codec_id >> (8 * i)) & 0xff);
  }
  fix_crc(file, 2);
  return file;
}

TEST(BkcmRobustness, UnregisteredCodecIdBehindValidCrcIsRejected) {
  for (const std::uint32_t hostile : {0u, 99u, 0xffffffffu}) {
    expect_read_fails(file_with_codec_id(hostile), "unregistered codec",
                      "codec id " + std::to_string(hostile));
  }
}

TEST(BkcmRobustness, SwappedCodecIdFailsTheCodecDirectoryCrossCheck) {
  // mst-delta IS registered, so the per-stream gate passes — but the
  // payload (and the 'CDCS' directory) still describe grouped-huffman,
  // so the read must fail before any kernel is accepted.
  expect_read_fails(file_with_codec_id(kCodecMstDelta), "BKCM section",
                    "registered-but-wrong codec id");
}

TEST(BkcmRobustness, CorruptCodecDirectoryBehindValidCrcIsRejected) {
  // Flip the last byte of 'CDCS' (the tail of the codec name) and
  // recompute its CRC: the directory no longer matches the registry.
  const BkcmSection& cdcs = valid_info().sections[3];
  ASSERT_EQ(cdcs.name, "CDCS");
  auto file = valid_file();
  file[static_cast<std::size_t>(cdcs.offset + cdcs.length - 1)] ^= 0x01;
  fix_crc(file, 3);
  expect_read_fails(file, "BKCM section 'CDCS'", "corrupt codec name");
}

/// MappedBkcm::open on a temp file holding `file` must throw CheckError
/// containing `needle` — the mapped view path enforces the same gates
/// as the buffered reader.
void expect_mapped_open_fails(const std::vector<std::uint8_t>& file,
                              const std::string& needle,
                              const std::string& what_case) {
  const std::string path =
      ::testing::TempDir() + "/bkc_mapped_robustness.bkcm";
  write_file_bytes(path, file);
  try {
    MappedBkcm::open(path);
    std::remove(path.c_str());
    FAIL() << what_case << " (mapped): expected CheckError containing '"
           << needle << "', but the open succeeded";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << what_case << " (mapped): error was: " << e.what();
  }
  std::remove(path.c_str());
}

TEST(BkcmRobustness, MappedOpenRejectsTruncationAtEveryBoundary) {
  std::vector<std::size_t> boundaries = {0, 10, 16};
  for (const BkcmSection& section : valid_info().sections) {
    boundaries.push_back(static_cast<std::size_t>(section.offset));
  }
  boundaries.push_back(valid_file().size() - 1);
  for (std::size_t boundary : boundaries) {
    expect_mapped_open_fails(truncated(boundary), "BKCM",
                             "truncated at " + std::to_string(boundary));
  }
}

TEST(BkcmRobustness, MappedOpenRejectsHeaderAndPayloadFlips) {
  {
    auto file = valid_file();
    file[0] ^= 0xff;
    expect_mapped_open_fails(file, "bad magic", "flipped magic byte");
  }
  {
    auto file = valid_file();
    file[4] = 99;
    expect_mapped_open_fails(file, "unsupported version", "future version");
  }
  for (std::size_t s = 0; s < 3; ++s) {
    const BkcmSection& section = valid_info().sections[s];
    auto file = valid_file();
    file[static_cast<std::size_t>(section.offset + section.length / 2)] ^=
        0x10;
    expect_mapped_open_fails(file,
                             "BKCM section '" + section.name +
                                 "': checksum mismatch",
                             "payload flip in " + section.name);
  }
}

TEST(BkcmRobustness, MappedOpenRejectsUnregisteredCodecId) {
  // Same registry gate as the buffered reader — the zero-copy path must
  // not hand out views over a stream no codec can decode.
  expect_mapped_open_fails(file_with_codec_id(99u), "unregistered codec",
                           "hostile codec id (mapped)");
}

TEST(BkcmRobustness, MappedOpenRejectsCorruptStreamBehindValidCrc) {
  // Flip a bit INSIDE the last stream's payload and recompute the BLKS
  // CRC: the structural gates all pass, so the failure must come from
  // the mapped parser itself — the prefix scan notices the stream no
  // longer consumes its declared bit count. (A flip can also leave the
  // bit budget intact — e.g. inside an index field — which is exactly
  // why classify-grade integrity needs the frequency cross-check of
  // `bkcm_tool verify`; the flip position below is chosen inside a
  // prefix-dense region so the scan does catch it.)
  const auto& blks = valid_info().sections[2];
  bool caught_any = false;
  // Try positions near the section end (stream bytes): a flip confined
  // to one codeword's index field keeps the budget intact, but across
  // 16 byte positions at least one flip lands on prefix bits and
  // derails the accounting.
  for (std::size_t back = 1; back <= 16 && !caught_any; ++back) {
    auto file = valid_file();
    file[static_cast<std::size_t>(blks.offset + blks.length - back)] ^= 0xff;
    fix_crc(file, 2);
    const std::string path =
        ::testing::TempDir() + "/bkc_mapped_scanfail.bkcm";
    write_file_bytes(path, file);
    try {
      MappedBkcm::open(path);
    } catch (const CheckError& e) {
      caught_any = true;
      EXPECT_NE(std::string(e.what()).find("BKCM section 'BLKS'"),
                std::string::npos)
          << e.what();
    }
    std::remove(path.c_str());
  }
  EXPECT_TRUE(caught_any)
      << "no stream-byte flip near the section end derailed the scan";
}

TEST(BkcmRobustness, MappedOpenMatchesBufferedReaderOnValidFile) {
  const std::string path = ::testing::TempDir() + "/bkc_mapped_valid.bkcm";
  write_file_bytes(path, valid_file());
  const MappedBkcm mapped = MappedBkcm::open(path);
  const BkcmContents contents = read_bkcm(valid_file());
  ASSERT_EQ(mapped.blocks().size(), contents.streams.size());
  for (std::size_t b = 0; b < mapped.blocks().size(); ++b) {
    EXPECT_EQ(mapped.blocks()[b].artifact.code_lengths,
              contents.streams[b].code_lengths);
  }
  std::remove(path.c_str());
}

TEST(BkcmRobustness, LoadCompressedPropagatesContainerErrors) {
  // The Engine-level entry point surfaces the same precise errors.
  const std::string path =
      ::testing::TempDir() + "/bkc_corrupt_container.bkcm";
  auto file = valid_file();
  file[static_cast<std::size_t>(valid_info().sections[2].offset) + 10] ^=
      0x55;
  write_file_bytes(path, file);
  try {
    Engine::load_compressed(path);
    FAIL() << "corrupt container must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("BKCM section 'BLKS'"),
              std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());

  try {
    Engine::load_compressed(::testing::TempDir() +
                            "/bkc_no_such_file.bkcm");
    FAIL() << "missing file must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace bkc::compress
