// Integration tests for the sampled simulation path (hwsim/sampled.h):
// sampled-vs-exact accuracy on the tiny ReActNet fixture, bit-stable
// determinism across repeated runs and thread counts, zero
// compression-pipeline work, and the Engine facade wiring.

#include "hwsim/sampled.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "compress/instrumentation.h"
#include "core/engine.h"
#include "support/support.h"
#include "util/check.h"

namespace bkc::hwsim {
namespace {

double relative_error(std::uint64_t approx, std::uint64_t exact) {
  return std::abs(static_cast<double>(approx) -
                  static_cast<double>(exact)) /
         static_cast<double>(exact);
}

/// One compressed tiny engine shared by every case: compression is the
/// slow part, the simulations under test are cheap.
const Engine& tiny_engine() {
  static const Engine* engine = [] {
    auto* e = new Engine(test::tiny_config(/*seed=*/42));
    e->compress(2);
    return e;
  }();
  return *engine;
}

TEST(SampledSim, MatchesExactWithinTwoPercent) {
  const Engine& engine = tiny_engine();
  const SpeedupReport exact = engine.simulate_speedup();
  const SampledSpeedupReport sampled = engine.simulate_speedup_sampled();

  // Baseline cycles are geometry-memoized, never extrapolated: exact
  // equality, per layer and in total.
  ASSERT_EQ(sampled.report.conv3x3.size(), exact.conv3x3.size());
  for (std::size_t i = 0; i < exact.conv3x3.size(); ++i) {
    EXPECT_EQ(sampled.report.conv3x3[i].name, exact.conv3x3[i].name);
    EXPECT_EQ(sampled.report.conv3x3[i].baseline_cycles,
              exact.conv3x3[i].baseline_cycles);
  }
  EXPECT_EQ(sampled.report.total_baseline, exact.total_baseline);
  // The 1x1 binary convs also go through the baseline memo; the
  // analytic ops are computed directly. Either way: exact.
  EXPECT_EQ(sampled.report.other_cycles, exact.other_cycles);

  // The acceptance bound for the extrapolated columns.
  EXPECT_LE(relative_error(sampled.report.total_sw, exact.total_sw), 0.02);
  EXPECT_LE(relative_error(sampled.report.total_hw, exact.total_hw), 0.02);
}

TEST(SampledSim, SimulatesFewerBlocksThanExact) {
  const SampledSpeedupReport sampled =
      tiny_engine().simulate_speedup_sampled();
  const SamplingSummary& summary = sampled.summary;
  EXPECT_EQ(summary.num_blocks, 13u);
  // The tiny schedule has 9 distinct geometries (the {512,512,1}/8
  // block repeats 5x); with the default 2-cluster budget at most
  // 9 + min(2,5)-1 + ... blocks simulate — strictly fewer than 13.
  EXPECT_EQ(summary.num_geometry_groups, 9u);
  EXPECT_LT(summary.simulated_blocks, summary.num_blocks);
  EXPECT_EQ(summary.simulated_blocks, summary.num_clusters);
  EXPECT_LT(summary.simulated_fraction, 1.0);
  EXPECT_GT(summary.simulated_fraction, 0.0);

  // The cluster partition covers every block exactly once, and each
  // representative is a member of its own cluster.
  std::set<std::size_t> seen;
  for (const SampledClusterInfo& cluster : summary.clusters) {
    bool rep_is_member = false;
    for (const std::size_t member : cluster.members) {
      EXPECT_TRUE(seen.insert(member).second) << "block in two clusters";
      rep_is_member |= member == cluster.representative;
    }
    EXPECT_TRUE(rep_is_member);
    EXPECT_GE(cluster.max_signature_distance,
              cluster.mean_signature_distance);
  }
  EXPECT_EQ(seen.size(), summary.num_blocks);
}

TEST(SampledSim, DeterministicAcrossRunsAndThreadCounts) {
  const Engine& engine = tiny_engine();
  const SampledSpeedupReport first = engine.simulate_speedup_sampled();
  const SampledSpeedupReport again = engine.simulate_speedup_sampled();
  EXPECT_TRUE(cycles_identical(first.report, again.report));
  EXPECT_EQ(first.summary.max_signature_distance,
            again.summary.max_signature_distance);

  for (const int threads : {2, 4, 7}) {
    SamplingConfig config;
    config.num_threads = threads;
    const SampledSpeedupReport parallel =
        engine.simulate_speedup_sampled(config);
    EXPECT_TRUE(cycles_identical(first.report, parallel.report))
        << "num_threads=" << threads;
    EXPECT_EQ(first.summary.simulated_blocks,
              parallel.summary.simulated_blocks);
  }
}

TEST(SampledSim, SeedChangesAreContainedAndClusterBudgetWorks) {
  const Engine& engine = tiny_engine();
  SamplingConfig reseeded;
  reseeded.seed = 1234567;
  const SampledSpeedupReport a = engine.simulate_speedup_sampled();
  const SampledSpeedupReport b = engine.simulate_speedup_sampled(reseeded);
  // A different seed may pick different representatives, but the exact
  // invariants hold for every seed.
  EXPECT_EQ(a.report.total_baseline, b.report.total_baseline);
  EXPECT_EQ(a.report.other_cycles, b.report.other_cycles);

  // k=1 per geometry group: exactly one cluster per group.
  SamplingConfig one;
  one.max_clusters_per_group = 1;
  const SampledSpeedupReport collapsed =
      engine.simulate_speedup_sampled(one);
  EXPECT_EQ(collapsed.summary.num_clusters,
            collapsed.summary.num_geometry_groups);

  // A budget covering every block reproduces the exact sw/hw totals:
  // every cluster is a singleton, so its representative IS the member.
  SamplingConfig full;
  full.max_clusters_per_group = 13;
  const SampledSpeedupReport exhaustive =
      engine.simulate_speedup_sampled(full);
  EXPECT_EQ(exhaustive.summary.simulated_blocks, 13u);
  EXPECT_TRUE(
      cycles_identical(exhaustive.report, engine.simulate_speedup()));
}

TEST(SampledSim, RunsZeroCompressionPipelineWork) {
  const Engine& engine = tiny_engine();
  const compress::PipelineCounters before = compress::pipeline_counters();
  (void)engine.simulate_speedup_sampled();
  const compress::PipelineCounters delta =
      compress::pipeline_counters().delta_since(before);
  EXPECT_EQ(delta.frequency_counts, 0u);
  EXPECT_EQ(delta.cluster_sequences_calls, 0u);
  EXPECT_EQ(delta.grouped_codec_builds, 0u);
}

TEST(SampledSim, RejectsBadConfigsAndUncompressedEngines) {
  const Engine& engine = tiny_engine();
  SamplingConfig config;
  config.projection_dims = 0;
  EXPECT_THROW(engine.simulate_speedup_sampled(config), CheckError);
  config = {};
  config.max_clusters_per_group = 0;
  EXPECT_THROW(engine.simulate_speedup_sampled(config), CheckError);
  config = {};
  config.max_kmeans_iters = 0;
  EXPECT_THROW(engine.simulate_speedup_sampled(config), CheckError);
  config = {};
  config.num_threads = 0;
  EXPECT_THROW(engine.simulate_speedup_sampled(config), CheckError);

  const Engine uncompressed(test::tiny_config(/*seed=*/42));
  EXPECT_THROW(uncompressed.simulate_speedup_sampled(), CheckError);
}

}  // namespace
}  // namespace bkc::hwsim
