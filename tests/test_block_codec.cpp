// The pluggable block-codec layer (compress/block_codec.h): registry
// dispatch, the mst-delta backend's dictionary/stream machinery
// (compress/mst_codec.h), its per-block artifacts, and the pipeline
// instrumentation contract of both backends.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bnn/kernel_sequences.h"
#include "compress/block_codec.h"
#include "compress/instrumentation.h"
#include "compress/mst_codec.h"
#include "support/support.h"
#include "util/binary_io.h"
#include "util/check.h"

namespace bkc::compress {
namespace {

FrequencyTable table_of(const bnn::PackedKernel& kernel) {
  return FrequencyTable::from_sequences(bnn::extract_sequences(kernel));
}

// ---- MST dictionary ----

TEST(MstDictionary, BuildCoversEveryDistinctSequenceOnce) {
  const bnn::PackedKernel kernel = test::calibrated_kernel(16, 16, 7);
  const FrequencyTable table = table_of(kernel);
  const MstDictionary dict = MstDictionary::build(table);

  ASSERT_EQ(dict.size(), table.distinct());
  EXPECT_EQ(dict.root(), table.ranked().front());
  for (std::size_t s = 0; s < bnn::kNumSequences; ++s) {
    const auto id = static_cast<SeqId>(s);
    EXPECT_EQ(dict.contains(id), table.counts()[s] > 0) << "sequence " << s;
  }
  // index_of is the inverse of the sequence layout.
  for (std::size_t i = 0; i < dict.size(); ++i) {
    EXPECT_EQ(dict.index_of(dict.sequences()[i]), i);
  }
  EXPECT_THROW(
      (void)dict.index_of(static_cast<SeqId>(
          std::find(table.counts().begin(), table.counts().end(), 0u) -
          table.counts().begin())),
      CheckError);
}

TEST(MstDictionary, BuildIsDeterministic) {
  const FrequencyTable table =
      table_of(test::calibrated_kernel(32, 32, 11));
  const MstDictionary a = MstDictionary::build(table);
  const MstDictionary b = MstDictionary::build(table);
  ASSERT_EQ(a.sequences(), b.sequences());
  ASSERT_EQ(a.edges().size(), b.edges().size());
  for (std::size_t i = 0; i < a.edges().size(); ++i) {
    EXPECT_EQ(a.edges()[i].parent, b.edges()[i].parent);
    EXPECT_EQ(a.edges()[i].delta, b.edges()[i].delta);
  }
}

TEST(MstDictionary, EdgesReconstructTheSequences) {
  const MstDictionary built =
      MstDictionary::build(table_of(test::calibrated_kernel(16, 32, 13)));
  const MstDictionary restored =
      MstDictionary::from_edges(built.root(), built.edges());
  EXPECT_EQ(restored.sequences(), built.sequences());
  EXPECT_EQ(restored.index_width(), built.index_width());
  EXPECT_EQ(restored.table_bits(), built.table_bits());
}

TEST(MstDictionary, FromEdgesRejectsHostileInput) {
  // Root out of the 9-bit alphabet.
  EXPECT_THROW(MstDictionary::from_edges(static_cast<SeqId>(512), {}),
               CheckError);
  // Edge parent referring to a not-yet-built entry.
  EXPECT_THROW(MstDictionary::from_edges(
                   0, {{.parent = 1, .delta = 1}, {.parent = 0, .delta = 2}}),
               CheckError);
  // Zero delta would duplicate its parent.
  EXPECT_THROW(MstDictionary::from_edges(0, {{.parent = 0, .delta = 0}}),
               CheckError);
  // Delta beyond 9 bits.
  EXPECT_THROW(MstDictionary::from_edges(0, {{.parent = 0, .delta = 512}}),
               CheckError);
  // Two entries collapsing to the same sequence (0 ^ 1 twice).
  EXPECT_THROW(MstDictionary::from_edges(
                   0, {{.parent = 0, .delta = 1}, {.parent = 0, .delta = 1}}),
               CheckError);
}

TEST(MstDictionary, IndexWidthIsPositiveEvenForOneEntry) {
  const MstDictionary dict = MstDictionary::from_edges(5, {});
  ASSERT_EQ(dict.size(), 1u);
  EXPECT_EQ(dict.index_width(), 1u);
  // Root costs 9 raw bits; no edges.
  EXPECT_EQ(dict.table_bits(), 9u);
}

TEST(MstStream, EncodeDecodeIsLossless) {
  const bnn::PackedKernel kernel = test::calibrated_kernel(32, 16, 17);
  const std::vector<SeqId> sequences = bnn::extract_sequences(kernel);
  const MstDictionary dict = MstDictionary::build(table_of(kernel));

  std::size_t bit_count = 0;
  const std::vector<std::uint8_t> stream =
      mst_encode(sequences, dict, bit_count);
  EXPECT_EQ(bit_count, sequences.size() * dict.index_width());
  const std::vector<SeqId> decoded =
      mst_decode(stream, bit_count, sequences.size(), dict);
  EXPECT_EQ(decoded, sequences);
}

TEST(MstStream, DecodeRejectsBadBudgetAndIndices) {
  const MstDictionary dict = MstDictionary::from_edges(
      0, {{.parent = 0, .delta = 1}, {.parent = 0, .delta = 2}});
  ASSERT_EQ(dict.size(), 3u);
  ASSERT_EQ(dict.index_width(), 2u);

  std::size_t bit_count = 0;
  const std::vector<SeqId> sequences = {0, 1, 2, 1};
  const std::vector<std::uint8_t> stream =
      mst_encode(sequences, dict, bit_count);
  // Budget not a multiple of the width / not matching the count.
  EXPECT_THROW(mst_decode(stream, bit_count - 1, sequences.size(), dict),
               CheckError);
  // Budget larger than the physical stream.
  EXPECT_THROW(
      mst_decode(stream, stream.size() * 8 + 8, sequences.size() + 3, dict),
      CheckError);
  // Index 3 is beyond the 3-entry dictionary: all-ones byte.
  const std::vector<std::uint8_t> hostile = {0xff};
  EXPECT_THROW(mst_decode(hostile, 2, 1, dict), CheckError);
}

// ---- Registry ----

TEST(BlockCodecRegistry, RegisteredIdsAndNames) {
  EXPECT_TRUE(block_codec_registered(kCodecGroupedHuffman));
  EXPECT_TRUE(block_codec_registered(kCodecMstDelta));
  EXPECT_FALSE(block_codec_registered(0));
  EXPECT_FALSE(block_codec_registered(99));

  const auto ids = registered_block_codecs();
  EXPECT_NE(std::find(ids.begin(), ids.end(), kCodecGroupedHuffman),
            ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), kCodecMstDelta), ids.end());

  EXPECT_EQ(codec_for(kCodecGroupedHuffman).name(), "grouped-huffman");
  EXPECT_EQ(codec_for(kCodecMstDelta).name(), "mst-delta");
  EXPECT_EQ(codec_for(kCodecGroupedHuffman).id(), kCodecGroupedHuffman);
  EXPECT_EQ(codec_for(kCodecMstDelta).id(), kCodecMstDelta);

  EXPECT_EQ(block_codec_id("grouped-huffman"), kCodecGroupedHuffman);
  EXPECT_EQ(block_codec_id("mst-delta"), kCodecMstDelta);
}

TEST(BlockCodecRegistry, UnregisteredLookupsFailWithTheRegisteredList) {
  try {
    (void)codec_for(99);
    FAIL() << "unregistered id must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("unregistered codec"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("grouped-huffman"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW((void)block_codec_id("no-such-codec"), CheckError);
  EXPECT_THROW((void)make_block_codec(99, GroupedTreeConfig::paper(), {}),
               CheckError);
}

// ---- mst-delta block codec ----

TEST(MstBlockCodec, CompressBlockIsLosslessWithNeutralReport) {
  const bnn::PackedKernel kernel = test::calibrated_kernel(32, 32, 19);
  const BlockCodec& codec = codec_for(kCodecMstDelta);
  const CompressedBlock block = codec.compress_block("b1", kernel);

  // No clustering pass: the deployed stream IS the encoding stream and
  // the accuracy proxy is exactly zero.
  EXPECT_EQ(block.report.flipped_bit_fraction, 0.0);
  EXPECT_EQ(block.report.replaced_sequences, 0u);
  EXPECT_EQ(block.report.encoding_bits, block.report.clustering_bits);
  EXPECT_EQ(block.report.encoding_ratio, block.report.clustering_ratio);
  EXPECT_TRUE(block.clustered.clustering.replacements().empty());
  EXPECT_EQ(block.clustered.codec_id, kCodecMstDelta);
  EXPECT_GT(block.report.decode_table_bits, 0u);

  // Decode returns the original kernel bit-exactly (lossless).
  EXPECT_TRUE(codec.decode(block.clustered) == kernel);
  EXPECT_TRUE(block.clustered.coded_kernel == kernel);
  EXPECT_TRUE(decode_block(block.clustered) == kernel);

  // Fixed-width stream: every code length is the dictionary width and
  // the bit budget is exact.
  ASSERT_FALSE(block.clustered.code_lengths.empty());
  const std::uint8_t width = block.clustered.code_lengths.front();
  for (const std::uint8_t length : block.clustered.code_lengths) {
    EXPECT_EQ(length, width);
  }
  EXPECT_EQ(block.clustered.compressed.stream_bits,
            block.clustered.code_lengths.size() * width);
}

TEST(MstBlockCodec, CompressBlockRunsOneFrequencyCountAndNothingElse) {
  const bnn::PackedKernel kernel = test::calibrated_kernel(16, 16, 23);
  const PipelineCounters before = pipeline_counters();
  (void)codec_for(kCodecMstDelta).compress_block("b", kernel);
  const PipelineCounters delta = pipeline_counters().delta_since(before);
  EXPECT_EQ(delta.frequency_counts, 1u);
  EXPECT_EQ(delta.cluster_sequences_calls, 0u);
  EXPECT_EQ(delta.grouped_codec_builds, 0u);
}

TEST(MstBlockCodec, BlockPayloadRoundTripsThroughWriteAndRead) {
  const bnn::PackedKernel kernel = test::calibrated_kernel(16, 32, 29);
  const BlockCodec& codec = codec_for(kCodecMstDelta);
  CompressedBlock block = codec.compress_block("b", kernel);

  ByteWriter writer;
  codec.write_block(writer, block.clustered);
  const std::vector<std::uint8_t> bytes = writer.take();

  ByteReader reader(bytes, "payload");
  ParsedBlock parsed = codec.read_block(reader);
  reader.expect_exhausted();

  EXPECT_EQ(parsed.artifact.codec_id, kCodecMstDelta);
  EXPECT_EQ(parsed.artifact.frequencies.counts(),
            block.clustered.frequencies.counts());
  EXPECT_EQ(parsed.artifact.mst.sequences(), block.clustered.mst.sequences());
  EXPECT_EQ(parsed.artifact.code_lengths, block.clustered.code_lengths);
  // The parsed artifact borrows its stream; copying it in reproduces
  // the original compressed kernel, and decoding reproduces the input.
  EXPECT_TRUE(parsed.artifact.compressed.stream.empty());
  parsed.artifact.compressed.stream.assign(parsed.stream.begin(),
                                           parsed.stream.end());
  EXPECT_EQ(parsed.artifact.compressed.stream,
            block.clustered.compressed.stream);
  EXPECT_TRUE(decode_block(parsed.artifact) == kernel);

  // verify_artifact accepts the honest artifact and rejects a tampered
  // frequency table.
  codec.verify_artifact(parsed.artifact, 0);
  KernelCompression tampered = parsed.artifact;
  tampered.frequencies = FrequencyTable::from_sequences(
      std::vector<SeqId>(tampered.compressed.num_sequences(),
                         static_cast<SeqId>(3)));
  EXPECT_THROW(codec.verify_artifact(tampered, 0), CheckError);
}

TEST(MstBlockCodec, WriteBlockRejectsForeignArtifacts) {
  const bnn::PackedKernel kernel = test::calibrated_kernel(16, 16, 31);
  CompressedBlock grouped =
      codec_for(kCodecGroupedHuffman).compress_block("b", kernel);
  ByteWriter writer;
  EXPECT_THROW(
      codec_for(kCodecMstDelta).write_block(writer, grouped.clustered),
      CheckError);
  EXPECT_THROW(
      codec_for(kCodecGroupedHuffman)
          .write_block(writer,
                       codec_for(kCodecMstDelta)
                           .compress_block("b", kernel)
                           .clustered),
      CheckError);
}

// ---- grouped-huffman through the interface ----

TEST(GroupedBlockCodec, MatchesThePreInterfacePipelineContract) {
  const bnn::PackedKernel kernel = test::calibrated_kernel(32, 32, 37);
  const PipelineCounters before = pipeline_counters();
  const CompressedBlock block =
      codec_for(kCodecGroupedHuffman).compress_block("b", kernel);
  const PipelineCounters delta = pipeline_counters().delta_since(before);
  // The original single-pass contract, unchanged by the refactor: one
  // frequency count, one clustering search, two codec builds.
  EXPECT_EQ(delta.frequency_counts, 1u);
  EXPECT_EQ(delta.cluster_sequences_calls, 1u);
  EXPECT_EQ(delta.grouped_codec_builds, 2u);

  EXPECT_EQ(block.encoding.codec_id, kCodecGroupedHuffman);
  EXPECT_EQ(block.clustered.codec_id, kCodecGroupedHuffman);
  // Encoding-only stream decodes back to the input bit-exactly.
  EXPECT_TRUE(decode_block(block.encoding) == kernel);
  // The clustered stream decodes to the installed (clustered) kernel.
  EXPECT_TRUE(decode_block(block.clustered) == block.clustered.coded_kernel);
}

TEST(GroupedBlockCodec, DefaultGroupedHuffmanCodecIsInert) {
  // KernelCompression (and ParsedBlock) default-construct their codec
  // member; that must not count as a codec build.
  const PipelineCounters before = pipeline_counters();
  const GroupedHuffmanCodec inert;
  const PipelineCounters delta = pipeline_counters().delta_since(before);
  EXPECT_EQ(delta.grouped_codec_builds, 0u);
  EXPECT_EQ(inert.config().index_bits, GroupedTreeConfig::paper().index_bits);
}

TEST(ModelCompressor, CodecIdSelectsTheBackend) {
  EXPECT_EQ(ModelCompressor().codec_id(), kCodecGroupedHuffman);
  const ModelCompressor mst(GroupedTreeConfig::paper(), {}, kCodecMstDelta);
  EXPECT_EQ(mst.codec_id(), kCodecMstDelta);
  EXPECT_THROW(
      ModelCompressor(GroupedTreeConfig::paper(), {}, /*codec_id=*/99),
      CheckError);

  const bnn::ReActNet model(test::tiny_config(41));
  const CompressedModel compressed = mst.compress_model(model, 2);
  for (const CompressedBlock& block : compressed.blocks) {
    EXPECT_EQ(block.clustered.codec_id, kCodecMstDelta);
    EXPECT_EQ(block.report.flipped_bit_fraction, 0.0);
  }
}

}  // namespace
}  // namespace bkc::compress
