// Tests for the bit-sequence abstraction (natural mapping, Fig. 2).

#include "bnn/bitseq.h"

#include <gtest/gtest.h>

#include <set>

namespace bkc::bnn {
namespace {

TEST(BitSeq, Constants) {
  EXPECT_EQ(kSeqBits, 9);
  EXPECT_EQ(kNumSequences, 512);
}

TEST(BitSeq, NaturalMappingCorners) {
  // Position (0,0) is the MSB, (2,2) the LSB - Fig. 2's convention.
  EXPECT_EQ(seq_bit(256, 0, 0), 1);
  EXPECT_EQ(seq_bit(256, 2, 2), 0);
  EXPECT_EQ(seq_bit(1, 2, 2), 1);
  EXPECT_EQ(seq_bit(1, 0, 0), 0);
}

TEST(BitSeq, Figure2Example) {
  // The paper's Fig. 2 channel-1 example: rows 101 110 001 -> 369.
  const SeqId s = seq_from_bits({1, 0, 1, 1, 1, 0, 0, 0, 1});
  EXPECT_EQ(s, 369);
  EXPECT_EQ(seq_to_string(369), "101/110/001");
}

TEST(BitSeq, AllOnesIs511AllZerosIs0) {
  EXPECT_EQ(seq_from_bits({1, 1, 1, 1, 1, 1, 1, 1, 1}), 511);
  EXPECT_EQ(seq_from_bits({0, 0, 0, 0, 0, 0, 0, 0, 0}), 0);
}

TEST(BitSeq, PopcountAndComplement) {
  EXPECT_EQ(seq_popcount(0), 0);
  EXPECT_EQ(seq_popcount(511), 9);
  EXPECT_EQ(seq_complement(0), 511);
  EXPECT_EQ(seq_complement(369), static_cast<SeqId>(~369 & 511));
  for (int s = 0; s < kNumSequences; ++s) {
    const auto seq = static_cast<SeqId>(s);
    EXPECT_EQ(seq_complement(seq_complement(seq)), seq);
    EXPECT_EQ(seq_popcount(seq) + seq_popcount(seq_complement(seq)), 9);
  }
}

TEST(BitSeq, HammingDistanceProperties) {
  EXPECT_EQ(hamming_distance(0, 511), 9);
  EXPECT_EQ(hamming_distance(5, 5), 0);
  EXPECT_EQ(hamming_distance(0b100000000, 0b100000001), 1);
  // Symmetry and triangle inequality on a sample.
  for (SeqId a : {SeqId{0}, SeqId{37}, SeqId{255}}) {
    for (SeqId b : {SeqId{1}, SeqId{37}, SeqId{400}}) {
      EXPECT_EQ(hamming_distance(a, b), hamming_distance(b, a));
      for (SeqId c : {SeqId{128}, SeqId{511}}) {
        EXPECT_LE(hamming_distance(a, c),
                  hamming_distance(a, b) + hamming_distance(b, c));
      }
    }
  }
}

TEST(BitSeq, Neighbors1AreExactlyDistanceOne) {
  for (SeqId s : {SeqId{0}, SeqId{369}, SeqId{511}}) {
    const auto neighbors = seq_neighbors1(s);
    std::set<SeqId> unique(neighbors.begin(), neighbors.end());
    EXPECT_EQ(unique.size(), 9u);
    for (SeqId n : neighbors) {
      EXPECT_EQ(hamming_distance(s, n), 1);
    }
  }
}

TEST(BitSeq, SeqBitMatchesRoundtrip) {
  for (int s = 0; s < kNumSequences; s += 7) {
    std::array<int, kSeqBits> bits{};
    for (int ky = 0; ky < 3; ++ky) {
      for (int kx = 0; kx < 3; ++kx) {
        bits[static_cast<std::size_t>(ky * 3 + kx)] =
            seq_bit(static_cast<SeqId>(s), ky, kx);
      }
    }
    EXPECT_EQ(seq_from_bits(bits), static_cast<SeqId>(s));
  }
}

}  // namespace
}  // namespace bkc::bnn
