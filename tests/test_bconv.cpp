// The central functional property of the BNN engine: the xnor/popcount
// convolution agrees EXACTLY with the reference float convolution on
// +/-1 operands, for every geometry the models use.

#include "bnn/bconv.h"

#include <gtest/gtest.h>

#include "support/support.h"

#include "bnn/binarize.h"
#include "tensor/tensor.h"
#include "util/check.h"
#include "util/rng.h"

namespace bkc::bnn {
namespace {

using test::random_pm1_tensor;
using test::random_pm1_weights;

void expect_matches_reference(const FeatureShape& in_shape,
                              const KernelShape& k_shape,
                              ConvGeometry geometry, std::uint64_t seed) {
  Rng rng(seed);
  const Tensor input = random_pm1_tensor(in_shape, rng);
  const WeightTensor weights = random_pm1_weights(k_shape, rng);
  const Tensor expected =
      reference_conv2d(input, weights, geometry, /*pad_value=*/-1.0f);
  const Tensor actual =
      binary_conv2d(pack_feature(input), pack_kernel(weights), geometry);
  ASSERT_EQ(actual.shape(), expected.shape());
  for (std::size_t i = 0; i < actual.data().size(); ++i) {
    ASSERT_FLOAT_EQ(actual.data()[i], expected.data()[i]) << "at " << i;
  }
}

TEST(BinaryConv, Matches3x3SameConv) {
  expect_matches_reference({16, 6, 6}, {8, 16, 3, 3},
                           {.stride = 1, .padding = 1}, 11);
}

TEST(BinaryConv, Matches3x3Stride2) {
  expect_matches_reference({32, 8, 8}, {4, 32, 3, 3},
                           {.stride = 2, .padding = 1}, 13);
}

TEST(BinaryConv, Matches1x1) {
  expect_matches_reference({64, 5, 5}, {10, 64, 1, 1},
                           {.stride = 1, .padding = 0}, 17);
}

TEST(BinaryConv, MatchesNonWordMultipleChannels) {
  // 70 channels: exercises the tail-mask path.
  expect_matches_reference({70, 4, 4}, {3, 70, 3, 3},
                           {.stride = 1, .padding = 1}, 19);
}

TEST(BinaryConv, MatchesManyWordChannels) {
  // 192 channels = 3 full words.
  expect_matches_reference({192, 3, 3}, {2, 192, 3, 3},
                           {.stride = 1, .padding = 1}, 23);
}

TEST(BinaryConv, MatchesValidConvNoPadding) {
  expect_matches_reference({8, 7, 7}, {5, 8, 3, 3},
                           {.stride = 1, .padding = 0}, 29);
}

// Property sweep over geometries and channel counts.
struct ConvCase {
  std::int64_t channels;
  std::int64_t size;
  std::int64_t out_channels;
  std::int64_t kernel;
  std::int64_t stride;
  std::int64_t padding;
};

class BinaryConvProperty : public ::testing::TestWithParam<ConvCase> {};

TEST_P(BinaryConvProperty, AgreesWithReference) {
  const auto& c = GetParam();
  expect_matches_reference(
      {c.channels, c.size, c.size},
      {c.out_channels, c.channels, c.kernel, c.kernel},
      {.stride = c.stride, .padding = c.padding}, 1000 + c.channels);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BinaryConvProperty,
    ::testing::Values(ConvCase{1, 5, 1, 3, 1, 1}, ConvCase{2, 5, 3, 3, 1, 1},
                      ConvCase{63, 6, 2, 3, 1, 1}, ConvCase{64, 6, 2, 3, 1, 1},
                      ConvCase{65, 6, 2, 3, 1, 1}, ConvCase{127, 4, 2, 3, 2, 1},
                      ConvCase{128, 4, 2, 1, 1, 0},
                      ConvCase{33, 9, 4, 3, 3, 1}));

TEST(BinaryConv, DotProductRangeBound) {
  // |dot| <= K and dot has the same parity as K.
  Rng rng(31);
  const Tensor input = random_pm1_tensor({24, 5, 5}, rng);
  const WeightTensor weights = random_pm1_weights({6, 24, 3, 3}, rng);
  const Tensor out = binary_conv2d(pack_feature(input),
                                   pack_kernel(weights),
                                   {.stride = 1, .padding = 1});
  const std::int64_t receptive = 24 * 9;
  for (float v : out.data()) {
    EXPECT_LE(std::abs(v), static_cast<float>(receptive));
    EXPECT_EQ((static_cast<std::int64_t>(v) - receptive) % 2, 0);
  }
}

TEST(BinaryConv, AllAgreeGivesK) {
  Tensor input(FeatureShape{8, 3, 3});
  for (auto& v : input.data()) v = 1.0f;
  WeightTensor w(KernelShape{1, 8, 3, 3});
  for (auto& v : w.data()) v = 1.0f;
  const Tensor out = binary_conv2d(pack_feature(input), pack_kernel(w),
                                   {.stride = 1, .padding = 0});
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 72.0f);  // 8 * 9
}

TEST(BinaryConv, ChannelMismatchThrows) {
  PackedFeature f(FeatureShape{8, 4, 4});
  PackedKernel k(KernelShape{2, 16, 3, 3});
  EXPECT_THROW(binary_conv2d(f, k, {.stride = 1, .padding = 1}), CheckError);
}

TEST(BinaryConv, WordOpAccounting) {
  const FeatureShape in{128, 8, 8};
  const KernelShape k{4, 128, 3, 3};
  // 4 out-ch * 8*8 pixels * 9 positions * 2 words.
  EXPECT_EQ(binary_conv2d_word_ops(in, k, {.stride = 1, .padding = 1}),
            4 * 64 * 9 * 2);
}

}  // namespace
}  // namespace bkc::bnn
