// Property-style randomized round-trip tests for the grouped-Huffman
// codec and the whole-kernel stream format: for any kernel whose
// alphabet fits the tree capacity, decode(encode(kernel)) must
// reproduce every bit, across tree shapes and degenerate inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "bnn/kernel_sequences.h"
#include "compress/grouped_huffman.h"
#include "compress/kernel_codec.h"
#include "support/configs.h"
#include "util/rng.h"

namespace bkc::compress {
namespace {

// Tree shapes under test, shared with the multi-symbol decode suite
// (tests/support/configs.h).
std::vector<GroupedTreeConfig> test_configs() {
  return test::codec_tree_configs();
}

// A random kernel whose distinct sequences are drawn from an alphabet
// that fits `capacity` (the codec's documented precondition).
bnn::PackedKernel random_kernel(Rng& rng, std::uint64_t capacity) {
  const auto max_alphabet =
      std::min<std::uint64_t>(capacity, bnn::kNumSequences);
  const std::size_t alphabet_size =
      static_cast<std::size_t>(1 + rng.below(max_alphabet));
  const auto ids = rng.permutation(bnn::kNumSequences);
  const std::int64_t out_channels = rng.range(1, 8);
  const std::int64_t in_channels = rng.range(1, 12);
  std::vector<SeqId> sequences;
  sequences.reserve(static_cast<std::size_t>(out_channels * in_channels));
  for (std::int64_t c = 0; c < out_channels * in_channels; ++c) {
    sequences.push_back(
        static_cast<SeqId>(ids[rng.below(alphabet_size)]));
  }
  return bnn::kernel_from_sequences(out_channels, in_channels, sequences);
}

void expect_round_trip(const bnn::PackedKernel& kernel,
                       const GroupedTreeConfig& config) {
  const auto table = FrequencyTable::from_kernel(kernel);
  const GroupedHuffmanCodec codec(table, config);
  const CompressedKernel compressed = compress_kernel(kernel, codec);
  EXPECT_EQ(compressed.stream_bits, codec.encoded_bits(table));
  const bnn::PackedKernel decoded = decompress_kernel(compressed, codec);
  EXPECT_TRUE(decoded == kernel);
}

TEST(CodecProperties, RandomKernelsRoundTripAcrossConfigs) {
  for (const GroupedTreeConfig& config : test_configs()) {
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
      Rng rng(0xC0DEC000 + seed);
      const auto kernel = random_kernel(rng, config.total_capacity());
      SCOPED_TRACE("seed " + std::to_string(seed) + ", nodes " +
                   std::to_string(config.num_nodes()));
      expect_round_trip(kernel, config);
    }
  }
}

TEST(CodecProperties, RandomSequenceListsRoundTripThroughRawCodec) {
  // The stream layer below kernels: encode()/decode() on raw id lists.
  for (const GroupedTreeConfig& config : test_configs()) {
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
      Rng rng(0x5EC5EC00 + seed);
      const auto alphabet_cap =
          std::min<std::uint64_t>(config.total_capacity(),
                                  bnn::kNumSequences);
      const auto ids = rng.permutation(bnn::kNumSequences);
      const std::size_t alphabet =
          static_cast<std::size_t>(1 + rng.below(alphabet_cap));
      const std::int64_t length = rng.range(1, 200);
      std::vector<SeqId> sequences;
      for (std::int64_t i = 0; i < length; ++i) {
        sequences.push_back(static_cast<SeqId>(ids[rng.below(alphabet)]));
      }
      const auto table = FrequencyTable::from_sequences(sequences);
      const GroupedHuffmanCodec codec(table, config);
      std::size_t bit_count = 0;
      const auto stream = codec.encode(sequences, bit_count);
      const auto decoded = codec.decode(stream, bit_count, sequences.size());
      EXPECT_EQ(decoded, sequences);
    }
  }
}

TEST(CodecProperties, SingleDistinctSequenceKernel) {
  // Degenerate alphabet of one: every channel carries the same
  // sequence, so the stream is num_sequences copies of one codeword.
  for (const GroupedTreeConfig& config : test_configs()) {
    for (SeqId seq : {SeqId{0}, SeqId{257}, SeqId{511}}) {
      const std::vector<SeqId> sequences(24, seq);
      expect_round_trip(bnn::kernel_from_sequences(4, 6, sequences), config);
    }
  }
}

TEST(CodecProperties, AllDistinctSequencesKernel) {
  // The opposite degenerate case: all 512 sequences occur exactly once,
  // filling every node of any config with capacity >= 512.
  std::vector<SeqId> sequences(bnn::kNumSequences);
  for (int s = 0; s < bnn::kNumSequences; ++s) {
    sequences[static_cast<std::size_t>(s)] = static_cast<SeqId>(s);
  }
  // Shuffle so channel order does not correlate with frequency rank.
  Rng rng(99);
  const auto perm = rng.permutation(sequences.size());
  std::vector<SeqId> shuffled;
  shuffled.reserve(sequences.size());
  for (std::uint32_t p : perm) shuffled.push_back(sequences[p]);

  for (const GroupedTreeConfig& config :
       {GroupedTreeConfig::paper(), GroupedTreeConfig::fixed9()}) {
    expect_round_trip(bnn::kernel_from_sequences(32, 16, shuffled), config);
  }
}

TEST(CodecProperties, OneChannelBlock) {
  // A 1x1-channel block holds a single 9-bit sequence; the compressed
  // stream is exactly one codeword.
  for (const GroupedTreeConfig& config : test_configs()) {
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      Rng rng(0x0B10C000 + seed);
      const std::vector<SeqId> sequences{
          static_cast<SeqId>(rng.below(bnn::kNumSequences))};
      const auto kernel = bnn::kernel_from_sequences(1, 1, sequences);
      const auto table = FrequencyTable::from_kernel(kernel);
      const GroupedHuffmanCodec codec(table, config);
      const CompressedKernel compressed = compress_kernel(kernel, codec);
      EXPECT_EQ(compressed.stream_bits, codec.code_length(sequences[0]));
      EXPECT_TRUE(decompress_kernel(compressed, codec) == kernel);
    }
  }
}

TEST(CodecProperties, FullPipelineRoundTripsRandomKernels) {
  // End-to-end property on the paper config: the pipeline without
  // clustering is lossless for arbitrary kernels; with clustering the
  // stream reproduces the coded (clustered) kernel bit-exactly.
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(0xF1FE1100 + seed);
    const auto kernel =
        random_kernel(rng, GroupedTreeConfig::paper().total_capacity());
    const auto plain = compress_kernel_pipeline(kernel, false);
    EXPECT_TRUE(decompress_kernel(plain.compressed, plain.codec) == kernel);
    const auto clustered = compress_kernel_pipeline(kernel, true);
    EXPECT_TRUE(decompress_kernel(clustered.compressed, clustered.codec) ==
                clustered.coded_kernel);
  }
}

}  // namespace
}  // namespace bkc::compress
