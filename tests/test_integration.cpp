// Cross-module integration properties, parameterized over seeds: the
// full chain model -> frequency -> clustering -> codec -> stream ->
// decode -> installed kernels -> inference must be consistent for any
// seed, and the timing model must rank the variants consistently.

#include <gtest/gtest.h>

#include "core/bkc.h"
#include "support/support.h"

namespace bkc {
namespace {

class EndToEnd : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EndToEnd, LosslessChainForAnySeed) {
  Engine engine(test::tiny_config(GetParam()), test::no_clustering());
  engine.compress();
  EXPECT_TRUE(engine.verify_streams());
  // Every stream decodes to the installed kernel AND re-encodes to the
  // identical byte stream (canonical determinism).
  for (std::size_t b = 0; b < engine.block_streams().size(); ++b) {
    const auto& stream = engine.block_streams()[b];
    const auto decoded =
        compress::decompress_kernel(stream.compressed, stream.codec);
    const auto reencoded = compress::compress_kernel(decoded, stream.codec);
    EXPECT_EQ(reencoded.stream, stream.compressed.stream);
    EXPECT_EQ(reencoded.stream_bits, stream.compressed.stream_bits);
  }
}

TEST_P(EndToEnd, ClusteredChainStaysConsistent) {
  Engine engine(test::tiny_config(GetParam()));
  const auto& report = engine.compress();
  EXPECT_TRUE(engine.verify_streams());
  // Accounting consistency: the clustered stream bits reported by the
  // analysis equal the actual stream bits of the installed kernels.
  std::uint64_t stream_bits = 0;
  for (const auto& s : engine.block_streams()) {
    stream_bits += s.compressed.stream_bits;
  }
  EXPECT_EQ(stream_bits, report.conv3x3_clustering_bits);
  // Ratios are internally consistent.
  for (const auto& block : report.blocks) {
    EXPECT_NEAR(block.encoding_ratio,
                static_cast<double>(block.uncompressed_bits) /
                    static_cast<double>(block.encoding_bits),
                1e-9);
    EXPECT_NEAR(block.clustering_ratio,
                static_cast<double>(block.uncompressed_bits) /
                    static_cast<double>(block.clustering_bits),
                1e-9);
  }
}

TEST_P(EndToEnd, CompressedInferenceMatchesManualDecodePath) {
  // Decoding each stream and installing the result must give the same
  // network the engine already runs: classify() outputs are identical.
  Engine engine(test::tiny_config(GetParam()));
  engine.compress();
  bnn::WeightGenerator gen(GetParam() + 1000);
  const Tensor image =
      gen.sample_activation(engine.model().input_shape());
  const Tensor direct = engine.classify(image);

  bnn::ReActNet rebuilt(test::tiny_config(GetParam()));
  for (std::size_t b = 0; b < engine.block_streams().size(); ++b) {
    const auto& stream = engine.block_streams()[b];
    rebuilt.block(b).conv3x3().set_kernel(
        compress::decompress_kernel(stream.compressed, stream.codec));
  }
  const Tensor via_streams = rebuilt.forward(image);
  for (std::size_t i = 0; i < direct.data().size(); ++i) {
    EXPECT_FLOAT_EQ(via_streams.data()[i], direct.data()[i]);
  }
}

TEST_P(EndToEnd, TimingVariantsRankConsistently) {
  Engine engine(test::tiny_config(GetParam()));
  engine.compress();
  hwsim::SamplingParams fast{.sample_rows = 2, .warmup_rows = 1};
  const auto report = engine.simulate_speedup({}, {}, fast);
  // Software decoding always costs extra work on top of the baseline.
  EXPECT_GT(report.total_sw, report.total_baseline);
  // Determinism of the simulator.
  const auto again = engine.simulate_speedup({}, {}, fast);
  EXPECT_EQ(report.total_baseline, again.total_baseline);
  EXPECT_EQ(report.total_hw, again.total_hw);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEnd,
                         ::testing::Values(1, 7, 42, 1234, 99999));

}  // namespace
}  // namespace bkc
