// Unit tests for the bench/example CLI helpers, in particular the
// positive_flag_value hardening: thread/image counts flow straight into
// parallel_for (precondition num_threads >= 1), so `--threads 0` and
// negative values must fail with a clear CheckError at the flag parser
// instead of deep inside the pool.

#include "util/cli.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace bkc {
namespace {

/// Builds a mutable argv from string literals ("prog" is prepended).
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    storage_.insert(storage_.begin(), "prog");
    for (std::string& arg : storage_) pointers_.push_back(arg.data());
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

TEST(Cli, HasFlagDetectsPresence) {
  Argv args({"--tiny", "--threads", "4"});
  EXPECT_TRUE(has_flag(args.argc(), args.argv(), "--tiny"));
  EXPECT_TRUE(has_flag(args.argc(), args.argv(), "--threads"));
  EXPECT_FALSE(has_flag(args.argc(), args.argv(), "--images"));
}

TEST(Cli, FlagValueParsesAndFallsBack) {
  Argv args({"--threads", "4"});
  EXPECT_EQ(flag_value(args.argc(), args.argv(), "--threads", 2), 4);
  EXPECT_EQ(flag_value(args.argc(), args.argv(), "--images", 8), 8);
}

TEST(Cli, FlagValueParsesEqualsForm) {
  // "--threads=4" used to be silently skipped (the scan only compared
  // whole arguments), so the fallback was returned without a word.
  Argv args({"--threads=4", "--repeat=12"});
  EXPECT_EQ(flag_value(args.argc(), args.argv(), "--threads", 2), 4);
  EXPECT_EQ(flag_value(args.argc(), args.argv(), "--repeat", 1), 12);
  EXPECT_EQ(positive_flag_value(args.argc(), args.argv(), "--threads", 2), 4);
}

TEST(Cli, FlagValueEqualsFormDoesNotMatchPrefixFlags) {
  // "--threads-per-core=4" is a different flag, not "--threads".
  Argv args({"--threads-per-core=4"});
  EXPECT_EQ(flag_value(args.argc(), args.argv(), "--threads", 2), 2);
}

TEST(Cli, FlagValueRejectsMissingAndMalformedValues) {
  Argv missing({"--threads"});
  EXPECT_THROW(flag_value(missing.argc(), missing.argv(), "--threads", 1),
               CheckError);
  Argv malformed({"--threads", "four"});
  EXPECT_THROW(flag_value(malformed.argc(), malformed.argv(), "--threads", 1),
               CheckError);
  for (const char* garbage : {"4x", "4abc"}) {
    Argv trailing({"--threads", garbage});
    try {
      flag_value(trailing.argc(), trailing.argv(), "--threads", 1);
      FAIL() << "trailing garbage '" << garbage << "' must throw";
    } catch (const CheckError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("--threads"), std::string::npos) << what;
      EXPECT_NE(what.find(garbage), std::string::npos) << what;
    }
    Argv equals_trailing({std::string("--threads=") + garbage});
    EXPECT_THROW(flag_value(equals_trailing.argc(), equals_trailing.argv(),
                            "--threads", 1),
                 CheckError);
  }
}

TEST(Cli, FlagValueRejectsEmptyEqualsValue) {
  Argv args({"--threads="});
  try {
    flag_value(args.argc(), args.argv(), "--threads", 1);
    FAIL() << "--threads= must throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--threads"), std::string::npos) << what;
    EXPECT_NE(what.find("requires a value"), std::string::npos) << what;
  }
}

TEST(Cli, FlagValueRejectsOutOfRangeValues) {
  // 99999999999 does not fit in int; from_chars reports
  // result_out_of_range, which must surface as a CheckError naming the
  // flag, not wrap around or fall back.
  for (const char* huge : {"99999999999", "-99999999999"}) {
    Argv space({"--threads", huge});
    try {
      flag_value(space.argc(), space.argv(), "--threads", 1);
      FAIL() << huge << " must throw";
    } catch (const CheckError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("--threads"), std::string::npos) << what;
      EXPECT_NE(what.find("out of range"), std::string::npos) << what;
    }
    Argv equals({std::string("--threads=") + huge});
    EXPECT_THROW(flag_value(equals.argc(), equals.argv(), "--threads", 1),
                 CheckError);
  }
}

TEST(Cli, PositiveFlagValueAcceptsPositiveCounts) {
  Argv args({"--threads", "7"});
  EXPECT_EQ(positive_flag_value(args.argc(), args.argv(), "--threads", 2), 7);
  EXPECT_EQ(positive_flag_value(args.argc(), args.argv(), "--images", 8), 8);
}

TEST(Cli, PositiveFlagValueRejectsZeroAndNegative) {
  Argv zero({"--threads", "0"});
  try {
    positive_flag_value(zero.argc(), zero.argv(), "--threads", 4);
    FAIL() << "--threads 0 must throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--threads"), std::string::npos) << what;
    EXPECT_NE(what.find("must be >= 1"), std::string::npos) << what;
  }
  Argv negative({"--threads", "-3"});
  EXPECT_THROW(
      positive_flag_value(negative.argc(), negative.argv(), "--threads", 4),
      CheckError);
}

TEST(Cli, FlagStringValueParsesAndFallsBack) {
  Argv args({"--out", "model.bkcm", "--tiny"});
  EXPECT_EQ(flag_string_value(args.argc(), args.argv(), "--out", "fallback"),
            "model.bkcm");
  EXPECT_EQ(flag_string_value(args.argc(), args.argv(), "--file", "fallback"),
            "fallback");
}

TEST(Cli, FlagStringValueTakesTheFirstOccurrence) {
  Argv args({"--out", "first.bkcm", "--out", "second.bkcm"});
  EXPECT_EQ(flag_string_value(args.argc(), args.argv(), "--out", "fallback"),
            "first.bkcm");
}

TEST(Cli, FlagStringValueParsesEqualsForm) {
  Argv args({"--out=model.bkcm"});
  EXPECT_EQ(flag_string_value(args.argc(), args.argv(), "--out", "fallback"),
            "model.bkcm");
  Argv empty({"--out="});
  EXPECT_THROW(flag_string_value(empty.argc(), empty.argv(), "--out", "x"),
               CheckError);
  // An "=" value may contain "=" itself (only the first one splits).
  Argv nested({"--out=a=b.bkcm"});
  EXPECT_EQ(flag_string_value(nested.argc(), nested.argv(), "--out", "x"),
            "a=b.bkcm");
}

TEST(Cli, FlagStringValueRejectsMissingValue) {
  Argv missing({"--tiny", "--out"});
  try {
    flag_string_value(missing.argc(), missing.argv(), "--out", "fallback");
    FAIL() << "--out as the last argument must throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--out"), std::string::npos) << what;
    EXPECT_NE(what.find("requires a value"), std::string::npos) << what;
  }
}

TEST(Cli, FlagStringValueRejectsFlagLikeValue) {
  // "--out --tiny" is a forgotten path, not a file named "--tiny".
  Argv args({"--out", "--tiny"});
  try {
    flag_string_value(args.argc(), args.argv(), "--out", "fallback");
    FAIL() << "a flag-like value must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("--tiny"), std::string::npos)
        << e.what();
  }
  // A single leading dash is still a legal value (e.g. "-" for stdin).
  Argv dash({"--out", "-"});
  EXPECT_EQ(flag_string_value(dash.argc(), dash.argv(), "--out", "x"), "-");
}

TEST(Cli, PositiveFlagValueValidatesTheFallbackToo) {
  // A bad default is a caller bug, not something to silently pass into
  // parallel_for when the user omits the flag.
  Argv args({"--tiny"});
  EXPECT_THROW(positive_flag_value(args.argc(), args.argv(), "--threads", 0),
               CheckError);
}

}  // namespace
}  // namespace bkc
