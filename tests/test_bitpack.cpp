// Tests for channel packing (Fig. 5) and the packed containers.

#include "bnn/bitpack.h"

#include <gtest/gtest.h>

#include <cstring>

#include "bnn/kernel_sequences.h"
#include "util/check.h"
#include "util/rng.h"

namespace bkc::bnn {
namespace {

TEST(Packing, WordsPerGroup) {
  EXPECT_EQ(words_per_group(1), 1);
  EXPECT_EQ(words_per_group(64), 1);
  EXPECT_EQ(words_per_group(65), 2);
  EXPECT_EQ(words_per_group(512), 8);
}

TEST(Packing, TailMask) {
  EXPECT_EQ(channel_tail_mask(64), ~0ULL);
  EXPECT_EQ(channel_tail_mask(1), 1ULL);
  EXPECT_EQ(channel_tail_mask(9), 0x1FFULL);
  EXPECT_EQ(channel_tail_mask(65), 1ULL);
}

TEST(PackedFeature, BitsLandInTheRightLane) {
  PackedFeature f(FeatureShape{130, 2, 2});
  f.set_bit(0, 0, 0, 1);
  f.set_bit(64, 0, 0, 1);
  f.set_bit(129, 1, 1, 1);
  const auto w00 = f.at(0, 0);
  ASSERT_EQ(w00.size(), 3u);  // ceil(130/64)
  EXPECT_EQ(w00[0] & 1, 1u);
  EXPECT_EQ(w00[1] & 1, 1u);
  EXPECT_EQ(w00[2], 0u);
  EXPECT_EQ(f.bit(129, 1, 1), 1);
  EXPECT_EQ(f.bit(129, 0, 0), 0);
}

TEST(PackedFeature, RoundtripThroughFloatTensor) {
  Rng rng(3);
  Tensor t(FeatureShape{70, 3, 3});
  for (auto& v : t.data()) {
    v = rng.chance(0.5) ? 1.0f : -1.0f;
  }
  const PackedFeature packed = pack_feature(t);
  const Tensor back = unpack_feature(packed);
  ASSERT_EQ(back.shape(), t.shape());
  for (std::size_t i = 0; i < t.data().size(); ++i) {
    EXPECT_FLOAT_EQ(back.data()[i], t.data()[i]);
  }
}

TEST(PackedFeature, BinarizesBySign) {
  Tensor t(FeatureShape{1, 1, 2});
  t.at(0, 0, 0) = 0.0f;   // >= 0 -> +1
  t.at(0, 0, 1) = -0.1f;  // < 0  -> -1
  const PackedFeature packed = pack_feature(t);
  EXPECT_EQ(packed.bit(0, 0, 0), 1);
  EXPECT_EQ(packed.bit(0, 0, 1), 0);
}

TEST(PackedKernel, RoundtripThroughFloatWeights) {
  Rng rng(5);
  WeightTensor w(KernelShape{4, 100, 3, 3});
  for (auto& v : w.data()) {
    v = rng.chance(0.5) ? 0.5f : -0.5f;
  }
  const PackedKernel packed = pack_kernel(w);
  const WeightTensor back = unpack_kernel(packed);
  for (std::size_t i = 0; i < w.data().size(); ++i) {
    EXPECT_FLOAT_EQ(back.data()[i], w.data()[i] > 0 ? 1.0f : -1.0f);
  }
}

TEST(PackedKernel, EqualityDetectsSingleBitFlip) {
  PackedKernel a(KernelShape{2, 8, 3, 3});
  PackedKernel b = a;
  EXPECT_TRUE(a == b);
  b.set_bit(1, 3, 2, 2, 1);
  EXPECT_FALSE(a == b);
}

TEST(PackedKernel, OutOfRangeThrows) {
  PackedKernel k(KernelShape{2, 8, 3, 3});
  EXPECT_THROW(k.bit(2, 0, 0, 0), CheckError);
  EXPECT_THROW(k.bit(0, 8, 0, 0), CheckError);
  EXPECT_THROW(k.set_bit(0, 0, 0, 0, 2), CheckError);
}

TEST(KernelSequences, SequenceExtractionMatchesNaturalMapping) {
  PackedKernel k(KernelShape{1, 1, 3, 3});
  // Write Fig. 2's 369 = 101/110/001.
  set_sequence_at(k, 0, 0, 369);
  EXPECT_EQ(k.bit(0, 0, 0, 0), 1);
  EXPECT_EQ(k.bit(0, 0, 0, 1), 0);
  EXPECT_EQ(k.bit(0, 0, 1, 1), 1);
  EXPECT_EQ(k.bit(0, 0, 2, 2), 1);
  EXPECT_EQ(sequence_at(k, 0, 0), 369);
}

TEST(KernelSequences, ExtractRebuildRoundtrip) {
  Rng rng(7);
  std::vector<SeqId> seqs(6 * 70);
  for (auto& s : seqs) s = static_cast<SeqId>(rng.below(kNumSequences));
  const PackedKernel k = kernel_from_sequences(6, 70, seqs);
  EXPECT_EQ(extract_sequences(k), seqs);
}

TEST(KernelSequences, CanonicalOrderIsOutputMajor) {
  std::vector<SeqId> seqs{10, 20, 30, 40};  // 2 out x 2 in
  const PackedKernel k = kernel_from_sequences(2, 2, seqs);
  EXPECT_EQ(sequence_at(k, 0, 0), 10);
  EXPECT_EQ(sequence_at(k, 0, 1), 20);
  EXPECT_EQ(sequence_at(k, 1, 0), 30);
  EXPECT_EQ(sequence_at(k, 1, 1), 40);
}

TEST(KernelSequences, RejectsNon3x3) {
  PackedKernel k(KernelShape{1, 4, 1, 1});
  EXPECT_THROW(extract_sequences(k), CheckError);
}

TEST(KernelSequences, SizeMismatchThrows) {
  std::vector<SeqId> seqs(3);
  EXPECT_THROW(kernel_from_sequences(2, 2, seqs), CheckError);
}

TEST(PackFeatureInto, MatchesPackFeatureOnRandomShapes) {
  // The fast channel-plane packer must agree word-for-word with the
  // slow per-bit reference on every layout class: single word, exact
  // word multiple, and tail-word channels.
  Rng rng(17);
  const FeatureShape shapes[] = {
      {1, 3, 5}, {7, 4, 4}, {64, 2, 3}, {65, 2, 2}, {130, 3, 2}};
  PackedFeature scratch;
  for (const FeatureShape& shape : shapes) {
    Tensor t(shape);
    for (auto& v : t.data()) v = static_cast<float>(rng.uniform() - 0.5);
    const PackedFeature expected = pack_feature(t);
    pack_feature_into(t, scratch);
    ASSERT_EQ(scratch.shape(), shape);
    ASSERT_EQ(scratch.words().size(), expected.words().size());
    EXPECT_EQ(std::memcmp(scratch.words().data(), expected.words().data(),
                          expected.words().size_bytes()),
              0);
  }
}

TEST(PackFeatureInto, ReshapeReusesReservedCapacity) {
  PackedFeature scratch;
  scratch.reserve_words(words_per_group(130) * 3 * 2);
  const std::uint64_t* storage = nullptr;
  Rng rng(19);
  for (const FeatureShape& shape :
       {FeatureShape{130, 3, 2}, FeatureShape{7, 4, 4},
        FeatureShape{64, 2, 3}}) {
    Tensor t(shape);
    for (auto& v : t.data()) v = rng.chance(0.5) ? 1.0f : -1.0f;
    pack_feature_into(t, scratch);
    if (storage == nullptr) storage = scratch.words().data();
    // Smaller reshapes never reallocate: the word storage is stable.
    EXPECT_EQ(scratch.words().data(), storage);
    const PackedFeature expected = pack_feature(t);
    EXPECT_EQ(std::memcmp(scratch.words().data(), expected.words().data(),
                          expected.words().size_bytes()),
              0);
  }
}

TEST(PackFeatureInto, TailWordBitsStayZero) {
  // The layout invariant the mask-free AVX2 interior relies on: bits
  // above the channel count in the tail word are always zero, even
  // when the scratch previously held a wider feature.
  Rng rng(23);
  PackedFeature scratch;
  Tensor wide(FeatureShape{128, 2, 2});
  for (auto& v : wide.data()) v = 1.0f;  // all bits set
  pack_feature_into(wide, scratch);
  Tensor narrow(FeatureShape{70, 2, 2});
  for (auto& v : narrow.data()) v = rng.chance(0.5) ? 1.0f : -1.0f;
  pack_feature_into(narrow, scratch);
  for (std::int64_t y = 0; y < 2; ++y) {
    for (std::int64_t x = 0; x < 2; ++x) {
      const auto words = scratch.at(y, x);
      ASSERT_EQ(words.size(), 2u);
      EXPECT_EQ(words[1] & ~channel_tail_mask(70), 0u);
    }
  }
}

}  // namespace
}  // namespace bkc::bnn
