// Tests for whole-kernel compression (the stream format of Sec IV-B).

#include "compress/kernel_codec.h"

#include <gtest/gtest.h>

#include "bnn/kernel_sequences.h"
#include "support/support.h"
#include "util/check.h"

namespace bkc::compress {
namespace {

using test::calibrated_kernel;

TEST(KernelCodec, LosslessRoundtrip) {
  const auto kernel = calibrated_kernel(32, 64, 3);
  const auto table = FrequencyTable::from_kernel(kernel);
  const GroupedHuffmanCodec codec(table);
  const CompressedKernel compressed = compress_kernel(kernel, codec);
  const bnn::PackedKernel decoded = decompress_kernel(compressed, codec);
  EXPECT_TRUE(decoded == kernel);
}

TEST(KernelCodec, StreamIsSmallerThanPlain) {
  const auto kernel = calibrated_kernel(64, 64, 5);
  const auto table = FrequencyTable::from_kernel(kernel);
  const GroupedHuffmanCodec codec(table);
  const CompressedKernel compressed = compress_kernel(kernel, codec);
  EXPECT_LT(compressed.stream_bits, compressed.uncompressed_bits());
  EXPECT_GT(compressed.ratio(), 1.05);
  EXPECT_EQ(compressed.num_sequences(), 64u * 64u);
  // Byte buffer holds exactly the stream bits.
  EXPECT_EQ(compressed.stream.size(), (compressed.stream_bits + 7) / 8);
}

TEST(KernelCodec, StreamBitsMatchCodecAccounting) {
  const auto kernel = calibrated_kernel(16, 32, 7);
  const auto table = FrequencyTable::from_kernel(kernel);
  const GroupedHuffmanCodec codec(table);
  const CompressedKernel compressed = compress_kernel(kernel, codec);
  EXPECT_EQ(compressed.stream_bits, codec.encoded_bits(table));
}

TEST(KernelCodec, PipelineWithoutClusteringIsExact) {
  const auto kernel = calibrated_kernel(24, 48, 9);
  const auto result = compress_kernel_pipeline(kernel, false);
  EXPECT_TRUE(result.coded_kernel == kernel);
  EXPECT_EQ(result.clustering.replaced_occurrences(), 0u);
  const auto decoded =
      decompress_kernel(result.compressed, result.codec);
  EXPECT_TRUE(decoded == kernel);
}

TEST(KernelCodec, PipelineWithClusteringDecodesToClusteredKernel) {
  const auto kernel = calibrated_kernel(64, 128, 11);
  const auto result = compress_kernel_pipeline(kernel, true);
  // The stream encodes the clustered kernel bit-exactly...
  const auto decoded =
      decompress_kernel(result.compressed, result.codec);
  EXPECT_TRUE(decoded == result.coded_kernel);
  // ...which differs from the original by the replaced channels only.
  const auto before = bnn::extract_sequences(kernel);
  const auto after = bnn::extract_sequences(result.coded_kernel);
  std::size_t changed = 0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (before[i] != after[i]) {
      ++changed;
      EXPECT_EQ(result.clustering.remap(before[i]), after[i]);
    }
  }
  EXPECT_EQ(changed > 0, result.clustering.replaced_occurrences() > 0);
}

TEST(KernelCodec, ClusteringImprovesRatio) {
  const auto kernel = calibrated_kernel(128, 256, 13);
  const auto plain = compress_kernel_pipeline(kernel, false);
  const auto clustered = compress_kernel_pipeline(kernel, true);
  EXPECT_GT(clustered.compressed.ratio(), plain.compressed.ratio());
}

TEST(KernelCodec, EmptyStreamRatioThrows) {
  CompressedKernel empty;
  EXPECT_THROW(empty.ratio(), bkc::CheckError);
}

TEST(KernelCodec, TinyKernelRoundtrip) {
  const std::vector<SeqId> seqs{0, 511, 369, 7};
  const auto kernel = bnn::kernel_from_sequences(2, 2, seqs);
  EXPECT_TRUE(test::pipeline_round_trip(kernel, false) == kernel);
}

}  // namespace
}  // namespace bkc::compress
