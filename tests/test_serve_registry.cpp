// Unit tests for serve/registry.h — the shared BKCM model registry.
//
// What is locked down:
//   * open-once semantics: the same name resolves to the same refcounted
//     entry, a conflicting path is refused, and a failed open leaves the
//     registry unchanged,
//   * the serving load path: an engine reconstructed from the already-
//     mapped container (Engine::load_compressed(MappedBkcm)) is
//     bit-identical to Engine::load_compressed(path) — kernels, report
//     and classification outputs at thread counts 1/2/4/7,
//   * eviction: only models with no outstanding handles are dropped, and
//     a model can be reopened after eviction.

#include "serve/registry.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bnn/weights.h"
#include "core/engine.h"
#include "support/support.h"
#include "util/check.h"

namespace bkc::serve {
namespace {

class ServeRegistryTest : public ::testing::Test {
 protected:
  static std::string temp_path(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }

  // Compress a tiny model and write its container; returns the path.
  static std::string write_container(const std::string& name,
                                     std::uint64_t seed) {
    Engine engine(test::tiny_config(seed));
    engine.compress(2);
    const std::string path = temp_path(name);
    engine.save_compressed(path);
    return path;
  }
};

TEST_F(ServeRegistryTest, OpenOnceReturnsTheSameEntry) {
  const std::string path = write_container("registry_once.bkcm", 27);
  ModelRegistry registry(2);
  const ModelHandle first = registry.open("tiny", path);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->name(), "tiny");
  EXPECT_EQ(first->path(), path);

  // Same name, same path: the identical shared entry, not a reload.
  const ModelHandle second = registry.open("tiny", path);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_TRUE(registry.contains("tiny"));
  EXPECT_EQ(registry.get("tiny").get(), first.get());
  EXPECT_EQ(registry.find("tiny").get(), first.get());
  std::remove(path.c_str());
}

TEST_F(ServeRegistryTest, ConflictingPathForResidentNameIsRefused) {
  const std::string path_a = write_container("registry_conflict_a.bkcm", 27);
  const std::string path_b = write_container("registry_conflict_b.bkcm", 28);
  ModelRegistry registry(2);
  const ModelHandle handle = registry.open("tiny", path_a);
  EXPECT_THROW(registry.open("tiny", path_b), CheckError);
  // The original entry is untouched.
  EXPECT_EQ(registry.get("tiny").get(), handle.get());
  EXPECT_EQ(registry.size(), 1u);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST_F(ServeRegistryTest, CorruptContainerIsRejectedAndRegistryUnchanged) {
  const std::string path = temp_path("registry_corrupt.bkcm");
  {
    std::ofstream file(path, std::ios::binary);
    file << "this is not a BKCM container";
  }
  ModelRegistry registry(2);
  EXPECT_THROW(registry.open("bad", path), CheckError);
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_FALSE(registry.contains("bad"));
  EXPECT_EQ(registry.find("bad"), nullptr);
  EXPECT_THROW(registry.get("bad"), CheckError);
  std::remove(path.c_str());
}

TEST_F(ServeRegistryTest, MissingFileIsRejected) {
  ModelRegistry registry(2);
  EXPECT_THROW(registry.open("ghost", temp_path("registry_ghost.bkcm")),
               CheckError);
  EXPECT_EQ(registry.size(), 0u);
}

TEST_F(ServeRegistryTest, EvictionDropsOnlyUnreferencedModels) {
  const std::string path_a = write_container("registry_evict_a.bkcm", 41);
  const std::string path_b = write_container("registry_evict_b.bkcm", 42);
  ModelRegistry registry(2);
  ModelHandle held = registry.open("held", path_a);
  ModelHandle dropped = registry.open("dropped", path_b);
  EXPECT_EQ(registry.size(), 2u);

  // Both entries have outstanding handles: nothing may be evicted.
  EXPECT_EQ(registry.evict_unused(), 0u);
  EXPECT_EQ(registry.size(), 2u);

  dropped.reset();
  EXPECT_EQ(registry.evict_unused(), 1u);
  EXPECT_TRUE(registry.contains("held"));
  EXPECT_FALSE(registry.contains("dropped"));

  // The held entry kept its identity across the eviction pass, and the
  // evicted one can be reopened.
  EXPECT_EQ(registry.get("held").get(), held.get());
  const ModelHandle reopened = registry.open("dropped", path_b);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(registry.size(), 2u);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST_F(ServeRegistryTest, NamesListsResidentModels) {
  const std::string path = write_container("registry_names.bkcm", 43);
  ModelRegistry registry(2);
  registry.open("alpha", path);
  registry.open("beta", path);  // same container under a second name is fine
  const std::vector<std::string> names = registry.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "beta");
  std::remove(path.c_str());
}

// The mapped-state load behind the registry must be bit-identical to the
// plain path load: installed kernels, report and classification.
TEST_F(ServeRegistryTest, MappedLoadIsBitIdenticalToPathLoad) {
  const std::string path = write_container("registry_bitident.bkcm", 31);
  const Engine from_path = Engine::load_compressed(path, 2);

  ModelRegistry registry(2);
  const ModelHandle model = registry.open("tiny", path);
  const Engine& served = model->engine();

  ASSERT_EQ(served.model().num_blocks(), from_path.model().num_blocks());
  for (std::size_t b = 0; b < served.model().num_blocks(); ++b) {
    EXPECT_TRUE(served.model().block(b).conv3x3().kernel() ==
                from_path.model().block(b).conv3x3().kernel())
        << "block " << b;
  }
  EXPECT_TRUE(served.verify_streams(2));

  // Report: totals and ratios bit-exact (doubles compared by pattern).
  EXPECT_EQ(served.report().model_bits, from_path.report().model_bits);
  EXPECT_EQ(served.report().conv3x3_bits, from_path.report().conv3x3_bits);
  EXPECT_EQ(served.report().conv3x3_clustering_bits,
            from_path.report().conv3x3_clustering_bits);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(served.report().model_ratio),
            std::bit_cast<std::uint64_t>(from_path.report().model_ratio));
  EXPECT_EQ(served.report().blocks.size(), from_path.report().blocks.size());

  // Classification bit-identical at every supported thread count.
  bnn::WeightGenerator gen(99);
  std::vector<Tensor> images;
  for (int i = 0; i < 3; ++i) {
    images.push_back(gen.sample_activation(from_path.model().input_shape()));
  }
  const std::vector<Tensor> expected = from_path.classify_batch(images, 1);
  for (int threads : {1, 2, 4, 7}) {
    const std::vector<Tensor> scores = served.classify_batch(images, threads);
    ASSERT_EQ(scores.size(), expected.size());
    for (std::size_t i = 0; i < scores.size(); ++i) {
      ASSERT_EQ(scores[i].data().size(), expected[i].data().size());
      for (std::size_t v = 0; v < scores[i].data().size(); ++v) {
        ASSERT_EQ(std::bit_cast<std::uint32_t>(scores[i].data()[v]),
                  std::bit_cast<std::uint32_t>(expected[i].data()[v]))
            << "threads " << threads << " image " << i;
      }
    }
  }
  std::remove(path.c_str());
}

TEST_F(ServeRegistryTest, ServedModelExposesTheSharedMapping) {
  const std::string path = write_container("registry_mapping.bkcm", 37);
  ModelRegistry registry(2);
  const ModelHandle model = registry.open("tiny", path);
  // The mapping carries the container's decode-side state for consumers
  // that never decode (simulation/tooling): block count matches the
  // engine the registry reconstructed from it.
  EXPECT_EQ(model->mapped().blocks().size(),
            model->engine().model().num_blocks());
  std::remove(path.c_str());
}

TEST_F(ServeRegistryTest, LoadThreadsMustBePositive) {
  EXPECT_THROW(ModelRegistry(0), CheckError);
  EXPECT_THROW(ModelRegistry(-3), CheckError);
}

}  // namespace
}  // namespace bkc::serve
