// Integration tests: the model-level compression pipeline (Sec IV-A)
// over a (reduced) ReActNet, checking the Table II / Table V bands.

#include "compress/pipeline.h"

#include <gtest/gtest.h>

#include "support/support.h"

#include "bnn/reactnet.h"
#include "util/check.h"

namespace bkc::compress {
namespace {

using test::mid_config;

TEST(Pipeline, AnalyzeProducesOneReportPerBlock) {
  const bnn::ReActNet model(mid_config(3));
  const ModelCompressor compressor;
  const ModelReport report = compressor.analyze(model);
  ASSERT_EQ(report.blocks.size(), 13u);
  for (const auto& block : report.blocks) {
    EXPECT_GT(block.num_sequences, 0u);
    EXPECT_GT(block.encoding_ratio, 1.0);
    EXPECT_GE(block.clustering_ratio, block.encoding_ratio * 0.98);
    EXPECT_GE(block.huffman_ratio, block.clustering_ratio - 1e-9);
    EXPECT_EQ(block.node_shares_encoding.size(), 4u);
    EXPECT_EQ(block.uncompressed_bits, block.num_sequences * 9);
  }
}

TEST(Pipeline, MeansSitInThePaperBands) {
  const bnn::ReActNet model(mid_config(5));
  const ModelCompressor compressor;
  const ModelReport report = compressor.analyze(model);
  // Paper: encoding 1.18-1.25 (mean ~1.2), clustering 1.30-1.36
  // (mean 1.32), whole model 1.2x. Our synthetic distributions land in
  // adjacent bands (see EXPERIMENTS.md for the full comparison).
  EXPECT_GT(report.mean_encoding_ratio, 1.08);
  EXPECT_LT(report.mean_encoding_ratio, 1.35);
  EXPECT_GT(report.mean_clustering_ratio, 1.2);
  EXPECT_LT(report.mean_clustering_ratio, 1.45);
  EXPECT_GT(report.mean_clustering_ratio, report.mean_encoding_ratio);
  EXPECT_GT(report.model_ratio, 1.1);
  EXPECT_LT(report.model_ratio, 1.3);
  // Charging the decode tables can only reduce the ratio; on this
  // reduced-width model the tables are a visible (but bounded) cost,
  // on the full-size model they are negligible (see bench/table5).
  EXPECT_LE(report.model_ratio_with_tables, report.model_ratio);
  EXPECT_GT(report.model_ratio_with_tables, 1.05);
}

TEST(Pipeline, BlockStatisticsTrackTableII) {
  const bnn::ReActNet model(mid_config(7));
  const ModelCompressor compressor;
  const ModelReport report = compressor.analyze(model);
  const auto& targets = bnn::paper_table2_targets();
  for (std::size_t b = 0; b < report.blocks.size(); ++b) {
    // Sampled shares track the fitted targets once the block has enough
    // sequences for the empirical distribution to converge; blocks with
    // few channels saturate (e.g. 64 sequences -> top-64 is trivially
    // 100%), so only statistically meaningful blocks are checked.
    if (report.blocks[b].num_sequences < 4096) continue;
    EXPECT_NEAR(report.blocks[b].top64_share, targets[b].top64, 0.08)
        << "block " << b;
    EXPECT_NEAR(report.blocks[b].top256_share, targets[b].top256, 0.06)
        << "block " << b;
  }
}

TEST(Pipeline, CompressBlocksRoundtrip) {
  const bnn::ReActNet model(mid_config(9));
  const ModelCompressor compressor;
  const auto artifacts = compressor.compress_blocks(model, false);
  ASSERT_EQ(artifacts.size(), model.num_blocks());
  for (std::size_t b = 0; b < artifacts.size(); ++b) {
    const auto decoded =
        decompress_kernel(artifacts[b].compressed, artifacts[b].codec);
    EXPECT_TRUE(decoded == model.block(b).conv3x3().kernel());
  }
}

TEST(Pipeline, CompressAndInstallMutatesKernels) {
  bnn::ReActNet model(mid_config(11));
  // Remember a kernel before installing.
  const auto before = model.block(5).conv3x3().kernel();
  const ModelCompressor compressor;
  const ModelReport report = compressor.compress_and_install(model);
  const auto& after = model.block(5).conv3x3().kernel();
  EXPECT_FALSE(before == after);  // clustering flipped some weights
  EXPECT_GT(report.mean_clustering_ratio, 1.0);
}

TEST(Pipeline, InstalledModelStillRunsInference) {
  bnn::ReActNet model(bnn::tiny_reactnet_config(13));
  bnn::WeightGenerator gen(14);
  const Tensor image = gen.sample_activation(model.input_shape());
  const Tensor before = model.forward(image);
  const ModelCompressor compressor;
  compressor.compress_and_install(model);
  const Tensor after = model.forward(image);
  ASSERT_EQ(after.shape(), before.shape());
  // Outputs shift slightly (clustering flips ~1-3% of weights) but stay
  // in a comparable range - the paper's "without negatively impacting
  // accuracy" regime.
  double diff = 0.0;
  double magnitude = 0.0;
  for (std::size_t i = 0; i < after.data().size(); ++i) {
    diff += std::abs(after.data()[i] - before.data()[i]);
    magnitude += std::abs(before.data()[i]);
  }
  EXPECT_LT(diff, 0.75 * magnitude + 1e-6);
}

TEST(Pipeline, CustomTreeConfigPropagates) {
  const bnn::ReActNet model(mid_config(15));
  const ModelCompressor fixed(GroupedTreeConfig::fixed9(), {});
  const ModelReport report = fixed.analyze(model);
  for (const auto& block : report.blocks) {
    EXPECT_NEAR(block.encoding_ratio, 1.0, 1e-9);
    EXPECT_EQ(block.node_shares_encoding.size(), 1u);
  }
}

}  // namespace
}  // namespace bkc::compress
