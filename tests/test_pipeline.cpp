// Integration tests: the model-level compression pipeline (Sec IV-A)
// over a (reduced) ReActNet, checking the Table II / Table V bands, the
// single-pass compress_model contract (report derived from the stream
// artifacts, each primitive invoked once per block) and the aggregation
// hardening.

#include "compress/pipeline.h"

#include <gtest/gtest.h>

#include "support/support.h"

#include "bnn/reactnet.h"
#include "compress/huffman.h"
#include "compress/instrumentation.h"
#include "util/check.h"
#include "util/stats.h"

namespace bkc::compress {
namespace {

using test::mid_config;

// ---------------------------------------------------------------------
// Reference implementation of the pre-refactor TWO-PASS pipeline: the
// report pass (the old ModelCompressor::analyze) rebuilt from the
// public primitives, exactly as it was written before compress_model
// folded report derivation onto the stream artifacts. The equivalence
// test below asserts the single-pass report is field-for-field
// bit-identical to this.

BlockReport legacy_analyze_block(const std::string& name,
                                 const bnn::PackedKernel& kernel,
                                 const GroupedTreeConfig& tree,
                                 const ClusteringConfig& clustering_config) {
  BlockReport report;
  report.block_name = name;

  const FrequencyTable table = FrequencyTable::from_kernel(kernel);
  report.num_sequences = table.total();
  report.distinct_sequences = table.distinct();
  report.top16_share = table.top_k_share(16);
  report.top64_share = table.top_k_share(64);
  report.top256_share = table.top_k_share(256);
  report.entropy_bits = table.entropy_bits();
  report.uncompressed_bits = table.total() * bnn::kSeqBits;

  const GroupedHuffmanCodec plain_codec(table, tree);
  report.encoding_bits = plain_codec.encoded_bits(table);
  report.encoding_ratio = plain_codec.compression_ratio(table);
  for (int n = 0; n < tree.num_nodes(); ++n) {
    report.node_shares_encoding.push_back(plain_codec.node_share(n, table));
  }

  const ClusteringResult clustering =
      cluster_sequences(table, clustering_config);
  const FrequencyTable clustered = clustering.apply(table);
  const GroupedHuffmanCodec clustered_codec(clustered, tree);
  report.clustering_bits = clustered_codec.encoded_bits(clustered);
  report.clustering_ratio = clustered_codec.compression_ratio(clustered);
  for (int n = 0; n < tree.num_nodes(); ++n) {
    report.node_shares_clustering.push_back(
        clustered_codec.node_share(n, clustered));
  }
  report.flipped_bit_fraction = clustering.flipped_bit_fraction();
  report.replaced_sequences = clustering.replacements().size();
  report.decode_table_bits = clustered_codec.table_bits();

  const HuffmanCodec huffman = HuffmanCodec::build(clustered);
  report.huffman_ratio = huffman.compression_ratio(clustered);
  return report;
}

ModelReport legacy_analyze(const bnn::ReActNet& model,
                           const GroupedTreeConfig& tree,
                           const ClusteringConfig& clustering_config) {
  ModelReport report;
  std::vector<double> encoding_ratios;
  std::vector<double> clustering_ratios;
  for (std::size_t b = 0; b < model.num_blocks(); ++b) {
    const auto& block = model.block(b);
    BlockReport block_report = legacy_analyze_block(
        block.name(), block.conv3x3().kernel(), tree, clustering_config);
    report.conv3x3_bits += block_report.uncompressed_bits;
    report.conv3x3_encoding_bits += block_report.encoding_bits;
    report.conv3x3_clustering_bits += block_report.clustering_bits;
    report.decode_table_bits += block_report.decode_table_bits;
    encoding_ratios.push_back(block_report.encoding_ratio);
    clustering_ratios.push_back(block_report.clustering_ratio);
    report.blocks.push_back(std::move(block_report));
  }
  report.mean_encoding_ratio = mean(encoding_ratios);
  report.mean_clustering_ratio = mean(clustering_ratios);
  report.model_bits = model.storage().total_bits;
  const std::uint64_t other_bits = report.model_bits - report.conv3x3_bits;
  report.model_ratio =
      static_cast<double>(report.model_bits) /
      static_cast<double>(other_bits + report.conv3x3_clustering_bits);
  report.model_ratio_with_tables =
      static_cast<double>(report.model_bits) /
      static_cast<double>(other_bits + report.conv3x3_clustering_bits +
                          report.decode_table_bits);
  return report;
}

// Field-for-field bit-identity (EXPECT_EQ on doubles is exact).
void expect_reports_bit_identical(const ModelReport& a,
                                  const ModelReport& b) {
  ASSERT_EQ(a.blocks.size(), b.blocks.size());
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    const BlockReport& x = a.blocks[i];
    const BlockReport& y = b.blocks[i];
    EXPECT_EQ(x.block_name, y.block_name);
    EXPECT_EQ(x.num_sequences, y.num_sequences);
    EXPECT_EQ(x.distinct_sequences, y.distinct_sequences);
    EXPECT_EQ(x.top16_share, y.top16_share);
    EXPECT_EQ(x.top64_share, y.top64_share);
    EXPECT_EQ(x.top256_share, y.top256_share);
    EXPECT_EQ(x.entropy_bits, y.entropy_bits);
    EXPECT_EQ(x.uncompressed_bits, y.uncompressed_bits);
    EXPECT_EQ(x.encoding_bits, y.encoding_bits);
    EXPECT_EQ(x.clustering_bits, y.clustering_bits);
    EXPECT_EQ(x.encoding_ratio, y.encoding_ratio);
    EXPECT_EQ(x.clustering_ratio, y.clustering_ratio);
    EXPECT_EQ(x.huffman_ratio, y.huffman_ratio);
    EXPECT_EQ(x.node_shares_encoding, y.node_shares_encoding);
    EXPECT_EQ(x.node_shares_clustering, y.node_shares_clustering);
    EXPECT_EQ(x.flipped_bit_fraction, y.flipped_bit_fraction);
    EXPECT_EQ(x.replaced_sequences, y.replaced_sequences);
    EXPECT_EQ(x.decode_table_bits, y.decode_table_bits);
  }
  EXPECT_EQ(a.model_bits, b.model_bits);
  EXPECT_EQ(a.conv3x3_bits, b.conv3x3_bits);
  EXPECT_EQ(a.conv3x3_encoding_bits, b.conv3x3_encoding_bits);
  EXPECT_EQ(a.conv3x3_clustering_bits, b.conv3x3_clustering_bits);
  EXPECT_EQ(a.decode_table_bits, b.decode_table_bits);
  EXPECT_EQ(a.mean_encoding_ratio, b.mean_encoding_ratio);
  EXPECT_EQ(a.mean_clustering_ratio, b.mean_clustering_ratio);
  EXPECT_EQ(a.model_ratio, b.model_ratio);
  EXPECT_EQ(a.model_ratio_with_tables, b.model_ratio_with_tables);
}

TEST(Pipeline, AnalyzeProducesOneReportPerBlock) {
  const bnn::ReActNet model(mid_config(3));
  const ModelCompressor compressor;
  const ModelReport report = compressor.analyze(model);
  ASSERT_EQ(report.blocks.size(), 13u);
  for (const auto& block : report.blocks) {
    EXPECT_GT(block.num_sequences, 0u);
    EXPECT_GT(block.encoding_ratio, 1.0);
    EXPECT_GE(block.clustering_ratio, block.encoding_ratio * 0.98);
    EXPECT_GE(block.huffman_ratio, block.clustering_ratio - 1e-9);
    EXPECT_EQ(block.node_shares_encoding.size(), 4u);
    EXPECT_EQ(block.uncompressed_bits, block.num_sequences * 9);
  }
}

TEST(Pipeline, MeansSitInThePaperBands) {
  const bnn::ReActNet model(mid_config(5));
  const ModelCompressor compressor;
  const ModelReport report = compressor.analyze(model);
  // Paper: encoding 1.18-1.25 (mean ~1.2), clustering 1.30-1.36
  // (mean 1.32), whole model 1.2x. Our synthetic distributions land in
  // adjacent bands (see EXPERIMENTS.md for the full comparison).
  EXPECT_GT(report.mean_encoding_ratio, 1.08);
  EXPECT_LT(report.mean_encoding_ratio, 1.35);
  EXPECT_GT(report.mean_clustering_ratio, 1.2);
  EXPECT_LT(report.mean_clustering_ratio, 1.45);
  EXPECT_GT(report.mean_clustering_ratio, report.mean_encoding_ratio);
  EXPECT_GT(report.model_ratio, 1.1);
  EXPECT_LT(report.model_ratio, 1.3);
  // Charging the decode tables can only reduce the ratio; on this
  // reduced-width model the tables are a visible (but bounded) cost,
  // on the full-size model they are negligible (see bench/table5).
  EXPECT_LE(report.model_ratio_with_tables, report.model_ratio);
  EXPECT_GT(report.model_ratio_with_tables, 1.05);
}

TEST(Pipeline, BlockStatisticsTrackTableII) {
  const bnn::ReActNet model(mid_config(7));
  const ModelCompressor compressor;
  const ModelReport report = compressor.analyze(model);
  const auto& targets = bnn::paper_table2_targets();
  for (std::size_t b = 0; b < report.blocks.size(); ++b) {
    // Sampled shares track the fitted targets once the block has enough
    // sequences for the empirical distribution to converge; blocks with
    // few channels saturate (e.g. 64 sequences -> top-64 is trivially
    // 100%), so only statistically meaningful blocks are checked.
    if (report.blocks[b].num_sequences < 4096) continue;
    EXPECT_NEAR(report.blocks[b].top64_share, targets[b].top64, 0.08)
        << "block " << b;
    EXPECT_NEAR(report.blocks[b].top256_share, targets[b].top256, 0.06)
        << "block " << b;
  }
}

TEST(Pipeline, CompressBlocksRoundtrip) {
  const bnn::ReActNet model(mid_config(9));
  const ModelCompressor compressor;
  const auto artifacts = compressor.compress_blocks(model, false);
  ASSERT_EQ(artifacts.size(), model.num_blocks());
  for (std::size_t b = 0; b < artifacts.size(); ++b) {
    const auto decoded =
        decompress_kernel(artifacts[b].compressed, artifacts[b].codec);
    EXPECT_TRUE(decoded == model.block(b).conv3x3().kernel());
  }
}

TEST(Pipeline, CompressAndInstallMutatesKernels) {
  bnn::ReActNet model(mid_config(11));
  // Remember a kernel before installing.
  const auto before = model.block(5).conv3x3().kernel();
  const ModelCompressor compressor;
  const ModelReport report = compressor.compress_and_install(model);
  const auto& after = model.block(5).conv3x3().kernel();
  EXPECT_FALSE(before == after);  // clustering flipped some weights
  EXPECT_GT(report.mean_clustering_ratio, 1.0);
}

TEST(Pipeline, InstalledModelStillRunsInference) {
  bnn::ReActNet model(bnn::tiny_reactnet_config(13));
  bnn::WeightGenerator gen(14);
  const Tensor image = gen.sample_activation(model.input_shape());
  const Tensor before = model.forward(image);
  const ModelCompressor compressor;
  compressor.compress_and_install(model);
  const Tensor after = model.forward(image);
  ASSERT_EQ(after.shape(), before.shape());
  // Outputs shift slightly (clustering flips ~1-3% of weights) but stay
  // in a comparable range - the paper's "without negatively impacting
  // accuracy" regime.
  double diff = 0.0;
  double magnitude = 0.0;
  for (std::size_t i = 0; i < after.data().size(); ++i) {
    diff += std::abs(after.data()[i] - before.data()[i]);
    magnitude += std::abs(before.data()[i]);
  }
  EXPECT_LT(diff, 0.75 * magnitude + 1e-6);
}

TEST(Pipeline, SinglePassReportMatchesTwoPassReference) {
  // The acceptance bar of the refactor: the report derived from the
  // stream artifacts must be field-for-field bit-identical to the
  // pre-refactor two-pass output, at every tested thread count. The
  // full 1/2/4/7 sweep runs on the tiny model; the mid-width model
  // (richer, Table II-calibrated distributions) covers the serial and
  // the uneven-partition parallel case, which keeps the suite inside
  // the sanitizer-CI time budget.
  {
    const bnn::ReActNet tiny(test::tiny_config(17));
    const ModelCompressor compressor;
    const ModelReport reference = legacy_analyze(tiny, compressor.tree(),
                                                 compressor.clustering());
    for (int threads : {1, 2, 4, 7}) {
      expect_reports_bit_identical(
          compressor.compress_model(tiny, threads).report, reference);
      expect_reports_bit_identical(compressor.analyze(tiny, threads),
                                   reference);
    }
  }
  {
    const bnn::ReActNet mid(mid_config(17));
    const ModelCompressor compressor;
    const ModelReport reference = legacy_analyze(mid, compressor.tree(),
                                                 compressor.clustering());
    for (int threads : {1, 4}) {
      expect_reports_bit_identical(
          compressor.compress_model(mid, threads).report, reference);
    }
  }
}

TEST(Pipeline, CompressModelReportMatchesItsOwnArtifacts) {
  // The report is a pure function of the artifacts riding next to it.
  const bnn::ReActNet model(mid_config(19));
  const ModelCompressor compressor;
  const CompressedModel compressed = compressor.compress_model(model);
  for (std::size_t b = 0; b < compressed.blocks.size(); ++b) {
    const CompressedBlock& block = compressed.blocks[b];
    EXPECT_EQ(block.report.num_sequences, block.encoding.frequencies.total());
    EXPECT_EQ(block.report.encoding_bits,
              block.encoding.compressed.stream_bits);
    EXPECT_EQ(block.report.clustering_bits,
              block.clustered.compressed.stream_bits);
    EXPECT_EQ(block.report.decode_table_bits,
              block.clustered.codec.table_bits());
    EXPECT_EQ(block.report.replaced_sequences,
              block.clustered.clustering.replacements().size());
    // Both streams decode back to the kernel they encode.
    EXPECT_TRUE(decompress_kernel(block.encoding.compressed,
                                  block.encoding.codec) ==
                model.block(b).conv3x3().kernel());
    EXPECT_TRUE(decompress_kernel(block.clustered.compressed,
                                  block.clustered.codec) ==
                block.clustered.coded_kernel);
  }
}

TEST(Pipeline, CompressModelRunsEachPrimitiveOncePerBlock) {
  // The single-pass contract, enforced by the invocation counters: one
  // frequency count and one clustering search per block, and exactly
  // two grouped-codec builds (encoding + clustering columns).
  const bnn::ReActNet model(test::tiny_config(21));
  const ModelCompressor compressor;
  const auto blocks = static_cast<std::uint64_t>(model.num_blocks());
  const PipelineCounters before = pipeline_counters();
  compressor.compress_model(model, 2);
  const PipelineCounters delta = pipeline_counters().delta_since(before);
  EXPECT_EQ(delta.frequency_counts, blocks);
  EXPECT_EQ(delta.cluster_sequences_calls, blocks);
  EXPECT_EQ(delta.grouped_codec_builds, 2 * blocks);
}

TEST(Pipeline, CompressBlocksViewMatchesPerKernelPipeline) {
  // The compress_blocks view must hand out exactly what the
  // single-kernel pipeline produces for the selected column.
  const bnn::ReActNet model(test::tiny_config(23));
  const ModelCompressor compressor;
  for (bool apply_clustering : {false, true}) {
    const auto artifacts =
        compressor.compress_blocks(model, apply_clustering);
    ASSERT_EQ(artifacts.size(), model.num_blocks());
    for (std::size_t b = 0; b < artifacts.size(); ++b) {
      const KernelCompression reference = compress_kernel_pipeline(
          model.block(b).conv3x3().kernel(), apply_clustering,
          compressor.tree(), compressor.clustering());
      EXPECT_EQ(artifacts[b].compressed.stream,
                reference.compressed.stream);
      EXPECT_EQ(artifacts[b].compressed.stream_bits,
                reference.compressed.stream_bits);
      EXPECT_TRUE(artifacts[b].coded_kernel == reference.coded_kernel);
      EXPECT_EQ(artifacts[b].coded_frequencies.counts(),
                reference.coded_frequencies.counts());
    }
  }
}

TEST(Pipeline, AggregateRejectsEmptyBlockList) {
  // The empty-model failure mode: compress_model fails fast before the
  // fan-out (an empty ReActNet is not even constructible), and the
  // reduction rejects an empty report list with the same message.
  bnn::ReActNetConfig empty = test::tiny_config(1);
  empty.blocks.clear();
  EXPECT_THROW((void)bnn::ReActNet(empty), CheckError);
  try {
    aggregate_block_reports({}, 1'000);
    FAIL() << "aggregate_block_reports({}) must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("no blocks"), std::string::npos)
        << e.what();
  }
}

TEST(Pipeline, AggregateRejectsInconsistentStorageBreakdown) {
  // model_bits below the summed 3x3 bits used to underflow the unsigned
  // subtraction and report a nonsense ratio; now it names the problem.
  BlockReport block;
  block.uncompressed_bits = 1'000;
  block.encoding_bits = 800;
  block.clustering_bits = 700;
  block.encoding_ratio = 1.25;
  block.clustering_ratio = 1.43;
  try {
    aggregate_block_reports({block}, /*model_bits=*/999);
    FAIL() << "inconsistent storage breakdown must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("inconsistent storage breakdown"),
              std::string::npos)
        << e.what();
  }
}

TEST(Pipeline, AggregateRejectsZeroCompressedStorage) {
  // A degenerate breakdown where the whole model is 3x3 storage and the
  // clustered streams are zero bits would divide by zero (inf ratio).
  BlockReport block;
  block.uncompressed_bits = 1'000;
  block.encoding_bits = 0;
  block.clustering_bits = 0;
  try {
    aggregate_block_reports({block}, /*model_bits=*/1'000);
    FAIL() << "zero compressed storage must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("zero bits"), std::string::npos)
        << e.what();
  }
}

TEST(Pipeline, AggregateAcceptsConsistentBreakdown) {
  // Sanity: the hardened reduction still produces the plain ratios.
  BlockReport block;
  block.uncompressed_bits = 1'000;
  block.encoding_bits = 800;
  block.clustering_bits = 500;
  block.decode_table_bits = 100;
  block.encoding_ratio = 1.25;
  block.clustering_ratio = 2.0;
  const ModelReport report = aggregate_block_reports({block}, 2'000);
  EXPECT_EQ(report.conv3x3_bits, 1'000u);
  EXPECT_EQ(report.conv3x3_clustering_bits, 500u);
  EXPECT_DOUBLE_EQ(report.model_ratio, 2'000.0 / 1'500.0);
  EXPECT_DOUBLE_EQ(report.model_ratio_with_tables, 2'000.0 / 1'600.0);
}

TEST(Pipeline, CustomTreeConfigPropagates) {
  const bnn::ReActNet model(mid_config(15));
  const ModelCompressor fixed(GroupedTreeConfig::fixed9(), {});
  const ModelReport report = fixed.analyze(model);
  for (const auto& block : report.blocks) {
    EXPECT_NEAR(block.encoding_ratio, 1.0, 1e-9);
    EXPECT_EQ(block.node_shares_encoding.size(), 1u);
  }
}

}  // namespace
}  // namespace bkc::compress
