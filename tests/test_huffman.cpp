// Tests for the full canonical Huffman codec (the optimality bound the
// simplified tree is compared against).

#include "compress/huffman.h"

#include <gtest/gtest.h>

#include "support/support.h"

#include <cmath>

#include "bnn/weights.h"
#include "util/check.h"
#include "util/rng.h"

namespace bkc::compress {
namespace {

FrequencyTable table_from_counts(
    std::initializer_list<std::pair<SeqId, std::uint64_t>> counts) {
  FrequencyTable t;
  for (const auto& [s, c] : counts) t.add(s, c);
  return t;
}

TEST(Huffman, TwoSymbolAlphabet) {
  const auto t = table_from_counts({{0, 3}, {511, 1}});
  const auto codec = HuffmanCodec::build(t);
  EXPECT_EQ(codec.code_length(0), 1u);
  EXPECT_EQ(codec.code_length(511), 1u);
  EXPECT_FALSE(codec.has_code(5));
  EXPECT_THROW(codec.code_length(5), CheckError);
}

TEST(Huffman, SingleSymbolGetsOneBit) {
  const auto t = table_from_counts({{7, 100}});
  const auto codec = HuffmanCodec::build(t);
  EXPECT_EQ(codec.code_length(7), 1u);
  std::size_t bits = 0;
  const std::vector<SeqId> message(10, 7);
  const auto stream = codec.encode(message, bits);
  EXPECT_EQ(bits, 10u);
  EXPECT_EQ(codec.decode(stream, bits, 10), message);
}

TEST(Huffman, SkewedFrequenciesGetShorterCodes) {
  const auto t = table_from_counts({{1, 100}, {2, 10}, {3, 10}, {4, 1}});
  const auto codec = HuffmanCodec::build(t);
  EXPECT_LE(codec.code_length(1), codec.code_length(2));
  EXPECT_LE(codec.code_length(2), codec.code_length(4));
}

TEST(Huffman, KraftEqualityHolds) {
  // An optimal prefix code over n>=2 symbols satisfies Kraft with
  // equality: sum 2^-len == 1.
  Rng rng(5);
  FrequencyTable t;
  for (int s = 0; s < 300; ++s) {
    t.add(static_cast<SeqId>(s), 1 + rng.below(1000));
  }
  const auto codec = HuffmanCodec::build(t);
  double kraft = 0.0;
  for (int s = 0; s < 300; ++s) {
    kraft += std::pow(2.0, -static_cast<double>(
                               codec.code_length(static_cast<SeqId>(s))));
  }
  EXPECT_NEAR(kraft, 1.0, 1e-9);
}

TEST(Huffman, WithinOneBitOfEntropy) {
  const auto kernel = test::calibrated_kernel(128, 128, 17);
  const auto t = FrequencyTable::from_kernel(kernel);
  const auto codec = HuffmanCodec::build(t);
  const double avg_bits =
      static_cast<double>(codec.encoded_bits(t)) /
      static_cast<double>(t.total());
  EXPECT_GE(avg_bits, t.entropy_bits() - 1e-9);
  EXPECT_LE(avg_bits, t.entropy_bits() + 1.0);
}

TEST(Huffman, RoundtripRandomMessages) {
  Rng rng(23);
  FrequencyTable t;
  for (int s = 0; s < 512; s += 3) {
    t.add(static_cast<SeqId>(s), 1 + rng.below(500));
  }
  const auto codec = HuffmanCodec::build(t);
  std::vector<SeqId> message;
  for (int i = 0; i < 4000; ++i) {
    message.push_back(static_cast<SeqId>(3 * rng.below(171)));
  }
  std::size_t bits = 0;
  const auto stream = codec.encode(message, bits);
  EXPECT_EQ(codec.decode(stream, bits, message.size()), message);
}

TEST(Huffman, CompressionRatioDefinition) {
  const auto t = table_from_counts({{0, 1}, {1, 1}});
  const auto codec = HuffmanCodec::build(t);
  // 2 sequences * 9 bits plain, 2 * 1 bit coded.
  EXPECT_DOUBLE_EQ(codec.compression_ratio(t), 9.0);
}

TEST(Huffman, EmptyTableThrows) {
  FrequencyTable t;
  EXPECT_THROW(HuffmanCodec::build(t), CheckError);
}

TEST(Huffman, DeterministicBuild) {
  const auto t = table_from_counts({{9, 4}, {10, 4}, {11, 4}, {12, 4}});
  const auto a = HuffmanCodec::build(t);
  const auto b = HuffmanCodec::build(t);
  std::vector<SeqId> msg{9, 10, 11, 12, 9};
  std::size_t bits_a = 0;
  std::size_t bits_b = 0;
  EXPECT_EQ(a.encode(msg, bits_a), b.encode(msg, bits_b));
}

}  // namespace
}  // namespace bkc::compress
