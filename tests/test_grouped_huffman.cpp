// Tests for the paper's simplified 4-node Huffman tree (Sec III-B).

#include "compress/grouped_huffman.h"

#include <gtest/gtest.h>

#include "support/support.h"

#include "bnn/weights.h"
#include "compress/huffman.h"
#include "util/check.h"
#include "util/rng.h"

namespace bkc::compress {
namespace {

TEST(GroupedTreeConfig, PaperCodeLengthsAre6_8_9_12) {
  const auto cfg = GroupedTreeConfig::paper();
  ASSERT_EQ(cfg.num_nodes(), 4);
  EXPECT_EQ(cfg.code_length(0), 6);
  EXPECT_EQ(cfg.code_length(1), 8);
  EXPECT_EQ(cfg.code_length(2), 9);
  EXPECT_EQ(cfg.code_length(3), 12);
  EXPECT_EQ(cfg.capacity(0), 32u);
  EXPECT_EQ(cfg.capacity(1), 64u);
  EXPECT_EQ(cfg.capacity(2), 64u);
  EXPECT_EQ(cfg.capacity(3), 512u);
  EXPECT_GE(cfg.total_capacity(), 512u);  // every sequence encodable
}

TEST(GroupedTreeConfig, Fixed9IsUncompressed) {
  const auto cfg = GroupedTreeConfig::fixed9();
  ASSERT_EQ(cfg.num_nodes(), 1);
  EXPECT_EQ(cfg.prefix_length(0), 0);
  EXPECT_EQ(cfg.code_length(0), 9);
  EXPECT_EQ(cfg.capacity(0), 512u);
}

TEST(GroupedTreeConfig, ValidationGuards) {
  GroupedTreeConfig empty{.index_bits = {}};
  EXPECT_THROW(empty.validate(), bkc::CheckError);
  GroupedTreeConfig wide{.index_bits = {20}};
  EXPECT_THROW(wide.validate(), bkc::CheckError);
}

FrequencyTable skewed_table() {
  // Ranked by construction: sequence s has count 2000 - 3s.
  FrequencyTable t;
  for (int s = 0; s < 512; ++s) {
    t.add(static_cast<SeqId>(s), static_cast<std::uint64_t>(2000 - 3 * s));
  }
  return t;
}

TEST(GroupedHuffman, FillsNodesInRankOrder) {
  const auto t = skewed_table();
  const GroupedHuffmanCodec codec(t);
  // Sequence 0 is the most frequent -> node 0, index 0; sequence 32 is
  // rank 32 -> node 1.
  EXPECT_EQ(codec.node_of(0), 0);
  EXPECT_EQ(codec.index_of(0), 0u);
  EXPECT_EQ(codec.node_of(31), 0);
  EXPECT_EQ(codec.node_of(32), 1);
  EXPECT_EQ(codec.node_of(96), 2);
  EXPECT_EQ(codec.node_of(160), 3);
  EXPECT_EQ(codec.code_length(0), 6u);
  EXPECT_EQ(codec.code_length(200), 12u);
  EXPECT_EQ(codec.node_occupancy(0), 32u);
  EXPECT_EQ(codec.node_occupancy(3), 512u - 160u);
}

TEST(GroupedHuffman, PrefixCodeIsSelfDelimiting) {
  const auto t = skewed_table();
  const GroupedHuffmanCodec codec(t);
  Rng rng(7);
  std::vector<SeqId> message;
  for (int i = 0; i < 5000; ++i) {
    message.push_back(static_cast<SeqId>(rng.below(512)));
  }
  std::size_t bits = 0;
  const auto stream = codec.encode(message, bits);
  EXPECT_EQ(codec.decode(stream, bits, message.size()), message);
}

TEST(GroupedHuffman, EncodedBitsMatchesPerSymbolLengths) {
  const auto t = skewed_table();
  const GroupedHuffmanCodec codec(t);
  std::uint64_t expected = 0;
  for (int s = 0; s < 512; ++s) {
    expected += t.count(static_cast<SeqId>(s)) *
                codec.code_length(static_cast<SeqId>(s));
  }
  EXPECT_EQ(codec.encoded_bits(t), expected);
}

TEST(GroupedHuffman, NodeSharesSumToOne) {
  const auto t = skewed_table();
  const GroupedHuffmanCodec codec(t);
  double total = 0.0;
  for (int n = 0; n < 4; ++n) total += codec.node_share(n, t);
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Rank-ordered fill: node 0 has the highest per-sequence intensity.
  EXPECT_GT(codec.node_share(0, t) / 32.0,
            codec.node_share(3, t) /
                static_cast<double>(codec.node_occupancy(3)));
}

TEST(GroupedHuffman, CompressionBeatsFixed9OnSkewedData) {
  const auto kernel = test::calibrated_kernel(128, 128, 3);
  const auto t = FrequencyTable::from_kernel(kernel);
  const GroupedHuffmanCodec paper(t, GroupedTreeConfig::paper());
  const GroupedHuffmanCodec fixed(t, GroupedTreeConfig::fixed9());
  EXPECT_GT(paper.compression_ratio(t), 1.1);
  EXPECT_DOUBLE_EQ(fixed.compression_ratio(t), 1.0);
}

TEST(GroupedHuffman, WorseThanFullHuffmanButClose) {
  // The simplified tree trades compression for hardware simplicity
  // (Sec III-B): it must be within ~15% of the optimal prefix code.
  const auto kernel = test::calibrated_kernel(128, 128, 5, {0.62, 0.9});
  const auto t = FrequencyTable::from_kernel(kernel);
  const GroupedHuffmanCodec grouped(t);
  const auto full = HuffmanCodec::build(t);
  EXPECT_LE(grouped.compression_ratio(t), full.compression_ratio(t) + 1e-9);
  EXPECT_GT(grouped.compression_ratio(t),
            full.compression_ratio(t) * 0.85);
}

TEST(GroupedHuffman, UniformDataBarelyCompresses) {
  FrequencyTable t;
  for (int s = 0; s < 512; ++s) t.add(static_cast<SeqId>(s), 10);
  const GroupedHuffmanCodec codec(t);
  // Avg bits = (32*6 + 64*8 + 64*9 + 352*12) / 512 = 10.53: uniform
  // data *expands* under the paper's tree, as expected.
  EXPECT_LT(codec.compression_ratio(t), 1.0);
}

TEST(GroupedHuffman, CapacityTooSmallForAlphabetThrows) {
  FrequencyTable t;
  for (int s = 0; s < 512; ++s) t.add(static_cast<SeqId>(s), 10);
  GroupedTreeConfig small{.index_bits = {5, 6}};  // capacity 96 < 512
  EXPECT_THROW(GroupedHuffmanCodec(t, small), bkc::CheckError);
}

TEST(GroupedHuffman, SmallAlphabetFitsSmallTree) {
  FrequencyTable t;
  for (int s = 0; s < 90; ++s) t.add(static_cast<SeqId>(s), 5);
  GroupedTreeConfig small{.index_bits = {5, 6}};
  const GroupedHuffmanCodec codec(t, small);
  std::vector<SeqId> msg{0, 40, 89};
  std::size_t bits = 0;
  const auto stream = codec.encode(msg, bits);
  EXPECT_EQ(codec.decode(stream, bits, msg.size()), msg);
  // Sequences that never occurred and did not fit got no code.
  EXPECT_FALSE(codec.has_code(500));
}

TEST(GroupedHuffman, TableBitsAccounting) {
  const auto t = skewed_table();
  const GroupedHuffmanCodec codec(t);
  // 512 occupied entries * 9 bits + 4 length-table entries * 4 bits.
  EXPECT_EQ(codec.table_bits(), 512u * 9u + 4u * 4u);
}

TEST(GroupedHuffman, DecodeCorruptIndexThrows) {
  FrequencyTable t;
  t.add(3, 10);
  const GroupedHuffmanCodec codec(t);
  // Zero-count sequences backfill the tree, so nodes 0-2 are full and
  // node 3 holds 512 - 160 = 352 entries; index 400 is unoccupied.
  EXPECT_EQ(codec.node_occupancy(3), 352u);
  bkc::BitWriter writer;
  writer.write_bits(0b111, 3);  // prefix '111' -> node 3
  writer.write_bits(400, 9);    // beyond occupancy
  const auto bytes = writer.bytes();
  bkc::BitReader reader(bytes, 12);
  EXPECT_THROW(codec.decode_one(reader), bkc::CheckError);
}

}  // namespace
}  // namespace bkc::compress
