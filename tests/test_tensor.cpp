// Tests for the dense tensor substrate and the reference convolution.

#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace bkc {
namespace {

TEST(Shapes, FeatureShapeSize) {
  const FeatureShape s{3, 4, 5};
  EXPECT_EQ(s.size(), 60);
  EXPECT_EQ(s.to_string(), "3x4x5");
}

TEST(Shapes, KernelShapeSize) {
  const KernelShape k{8, 16, 3, 3};
  EXPECT_EQ(k.size(), 8 * 16 * 9);
  EXPECT_EQ(k.receptive_size(), 16 * 9);
}

TEST(Shapes, ConvGeometryOutputExtent) {
  ConvGeometry g{.stride = 2, .padding = 1};
  EXPECT_EQ(g.out_extent(224, 3), 112);
  ConvGeometry same{.stride = 1, .padding = 1};
  EXPECT_EQ(same.out_extent(14, 3), 14);
  ConvGeometry valid{.stride = 1, .padding = 0};
  EXPECT_EQ(valid.out_extent(5, 3), 3);
}

TEST(Shapes, ConvGeometryRejectsBadInputs) {
  ConvGeometry g{.stride = 1, .padding = 0};
  EXPECT_THROW(g.out_extent(2, 3), CheckError);
  ConvGeometry bad{.stride = 0, .padding = 0};
  EXPECT_THROW(bad.out_extent(4, 3), CheckError);
}

TEST(Tensor, AtReadsWhatWasWritten) {
  Tensor t(FeatureShape{2, 3, 4});
  t.at(1, 2, 3) = 7.5f;
  EXPECT_FLOAT_EQ(t.at(1, 2, 3), 7.5f);
  EXPECT_FLOAT_EQ(t.at(0, 0, 0), 0.0f);
}

TEST(Tensor, OutOfRangeThrows) {
  Tensor t(FeatureShape{2, 3, 4});
  EXPECT_THROW(t.at(2, 0, 0), CheckError);
  EXPECT_THROW(t.at(0, 3, 0), CheckError);
  EXPECT_THROW(t.at(0, 0, 4), CheckError);
}

TEST(Tensor, PaddedAccess) {
  Tensor t(FeatureShape{1, 2, 2});
  t.at(0, 0, 0) = 5.0f;
  EXPECT_FLOAT_EQ(t.at_padded(0, -1, 0, -1.0f), -1.0f);
  EXPECT_FLOAT_EQ(t.at_padded(0, 0, 0, -1.0f), 5.0f);
  EXPECT_FLOAT_EQ(t.at_padded(0, 2, 2, 0.5f), 0.5f);
}

TEST(Tensor, DataSizeMismatchThrows) {
  EXPECT_THROW(Tensor(FeatureShape{1, 2, 2}, {1.0f, 2.0f}), CheckError);
}

TEST(ReferenceConv, IdentityKernel) {
  // 1x1 kernel with weight 1 reproduces the input.
  Tensor input(FeatureShape{1, 3, 3});
  for (int i = 0; i < 9; ++i) input.data()[i] = static_cast<float>(i);
  WeightTensor w(KernelShape{1, 1, 1, 1}, {1.0f});
  const Tensor out = reference_conv2d(input, w, {.stride = 1, .padding = 0});
  for (int i = 0; i < 9; ++i) {
    EXPECT_FLOAT_EQ(out.data()[i], static_cast<float>(i));
  }
}

TEST(ReferenceConv, SumKernelWithPadding) {
  // All-ones input, all-ones 3x3 kernel, pad with -1: corner outputs see
  // 4 real ones and 5 padded -1s = -1; the centre sees 9.
  Tensor input(FeatureShape{1, 3, 3});
  for (auto& v : input.data()) v = 1.0f;
  WeightTensor w(KernelShape{1, 1, 3, 3});
  for (auto& v : w.data()) v = 1.0f;
  const Tensor out = reference_conv2d(input, w, {.stride = 1, .padding = 1},
                                      /*pad_value=*/-1.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1, 1), 9.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 4.0f - 5.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1), 6.0f - 3.0f);
}

TEST(ReferenceConv, StrideTwoShape) {
  Tensor input(FeatureShape{2, 8, 8});
  WeightTensor w(KernelShape{3, 2, 3, 3});
  const Tensor out = reference_conv2d(input, w, {.stride = 2, .padding = 1});
  EXPECT_EQ(out.shape(), (FeatureShape{3, 4, 4}));
}

TEST(ReferenceConv, ChannelMismatchThrows) {
  Tensor input(FeatureShape{2, 4, 4});
  WeightTensor w(KernelShape{1, 3, 3, 3});
  EXPECT_THROW(reference_conv2d(input, w, {.stride = 1, .padding = 1}),
               CheckError);
}

}  // namespace
}  // namespace bkc
