// Tests for the decoding-unit timing model (Fig. 6).

#include "hwsim/decoder_unit.h"

#include <gtest/gtest.h>

#include "support/support.h"
#include "util/check.h"

namespace bkc::hwsim {
namespace {

using test::uniform_stream;

TEST(StreamInfo, Accounting) {
  const auto owned = uniform_stream(100, 7);
  const StreamInfo s = owned.view();
  EXPECT_EQ(s.total_bits, 700u);
  EXPECT_DOUBLE_EQ(s.mean_bits(), 7.0);
}

TEST(DecoderUnit, FirstPopPaysConfigureFetchAndDecode) {
  CpuParams cpu;
  MemoryHierarchy mem(cpu);
  DecoderParams params;
  const auto owned = uniform_stream(128, 7);
  const StreamInfo stream = owned.view();
  DecoderUnitRuntime unit(params, mem, stream, {128}, 9, /*start=*/0);
  const auto t = unit.pop(0);
  // configure + first fetch latency + 128 cycles of decode, roughly.
  EXPECT_GT(t, 128u);
  EXPECT_LT(t, 600u);
  EXPECT_EQ(unit.remaining_pops(), 8u);
}

TEST(DecoderUnit, PopsWithinAGroupAreCheapAfterTheFirst) {
  CpuParams cpu;
  MemoryHierarchy mem(cpu);
  DecoderParams params;
  const auto owned = uniform_stream(128, 7);
  const StreamInfo stream = owned.view();
  DecoderUnitRuntime unit(params, mem, stream, {128}, 9, 0);
  const auto first = unit.pop(0);
  const auto second = unit.pop(first);
  EXPECT_EQ(second, first + static_cast<std::uint64_t>(params.ldps_cycles));
}

TEST(DecoderUnit, DecodeOverlapsConsumption) {
  // If the consumer is slow, later groups are ready the moment they are
  // asked for (the unit decoded them in the background).
  CpuParams cpu;
  MemoryHierarchy mem(cpu);
  DecoderParams params;
  const auto owned = uniform_stream(4 * 128, 7);
  const StreamInfo stream = owned.view();
  DecoderUnitRuntime unit(params, mem, stream,
                          {128, 128, 128, 128}, 9, 0);
  std::uint64_t t = 0;
  for (int i = 0; i < 9; ++i) t = unit.pop(t);
  // Consume group 1 much later: all pops complete in ldps time.
  std::uint64_t late = t + 100000;
  for (int i = 0; i < 9; ++i) {
    const auto done = unit.pop(late);
    EXPECT_EQ(done, late + 1);
    late = done;
  }
}

TEST(DecoderUnit, RegisterFileBackpressureThrottlesDecode) {
  // With room for two groups, group g is not decoded until group g-2 is
  // fully popped: a consumer that never pops groups 0/1 late gets group
  // 2 only after freeing group 0.
  CpuParams cpu;
  MemoryHierarchy mem(cpu);
  DecoderParams params;
  const auto owned = uniform_stream(3 * 128, 7);
  const StreamInfo stream = owned.view();
  DecoderUnitRuntime unit(params, mem, stream, {128, 128, 128}, 9, 0);
  std::uint64_t t = 50000;  // consumer shows up very late
  std::uint64_t group0_last = 0;
  for (int i = 0; i < 9; ++i) group0_last = t = unit.pop(t);
  for (int i = 0; i < 9; ++i) t = unit.pop(t);  // group 1
  const auto group2_first = unit.pop(t);
  // Group 2 decode could only start after group 0 was freed.
  EXPECT_GE(group2_first, group0_last + 128);
}

TEST(DecoderUnit, ThroughputIsOneSequencePerCycle) {
  CpuParams cpu;
  MemoryHierarchy mem(cpu);
  DecoderParams params;
  const std::size_t groups = 16;
  const auto owned = uniform_stream(groups * 128, 7);
  const StreamInfo stream = owned.view();
  std::vector<std::uint32_t> sizes(groups, 128);
  DecoderUnitRuntime unit(params, mem, stream, sizes, 9, 0);
  // Pop everything immediately: the long-run rate is bounded by decode
  // (1 seq/cycle), not by stream fetches.
  std::uint64_t t = 0;
  for (std::size_t i = 0; i < groups * 9; ++i) t = unit.pop(t);
  const double cycles_per_seq =
      static_cast<double>(t) / static_cast<double>(groups * 128);
  EXPECT_LT(cycles_per_seq, 1.6);
  EXPECT_GE(cycles_per_seq, 1.0);
  EXPECT_EQ(unit.remaining_pops(), 0u);
}

TEST(DecoderUnit, StreamTrafficIsAccounted) {
  CpuParams cpu;
  MemoryHierarchy mem(cpu);
  DecoderParams params;
  const auto owned = uniform_stream(512, 8);
  const StreamInfo stream = owned.view();  // 512 bytes total
  DecoderUnitRuntime unit(params, mem, stream, {512}, 9, 0);
  unit.pop(0);
  EXPECT_GE(mem.stream_bytes(), 512u);
}

TEST(DecoderUnit, GroupSizesMustCoverStream) {
  CpuParams cpu;
  MemoryHierarchy mem(cpu);
  DecoderParams params;
  const auto owned = uniform_stream(100, 7);
  const StreamInfo stream = owned.view();
  EXPECT_THROW(DecoderUnitRuntime(params, mem, stream, {64}, 9, 0),
               bkc::CheckError);
}

TEST(DecoderUnit, PartialLastGroup) {
  CpuParams cpu;
  MemoryHierarchy mem(cpu);
  DecoderParams params;
  const auto owned = uniform_stream(128 + 32, 6);
  const StreamInfo stream = owned.view();
  DecoderUnitRuntime unit(params, mem, stream, {128, 32}, 9, 0);
  std::uint64_t t = 0;
  for (int i = 0; i < 18; ++i) t = unit.pop(t);
  EXPECT_EQ(unit.remaining_pops(), 0u);
}

}  // namespace
}  // namespace bkc::hwsim
