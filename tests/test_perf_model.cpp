// Tests for the whole-model timing (Table I execution column and the
// Sec VI speedup comparison) on a reduced-width ReActNet.

#include "hwsim/perf_model.h"

#include <gtest/gtest.h>

#include <vector>

#include "bnn/kernel_sequences.h"
#include "support/support.h"

#include "util/check.h"

namespace bkc::hwsim {
namespace {

// width/4 ReActNet: big enough for meaningful per-block statistics.
using test::mid_config;

/// Engine-style artifact view over a freshly compressed model: the
/// caller keeps `streams` alive for the view's lifetime.
compress::CompressedModelView view_for(
    const bnn::ReActNet& model,
    const std::vector<compress::KernelCompression>& streams) {
  return compress::view_of(model.op_records(), streams);
}

TEST(PerfModel, AnalyticCostsArePositiveAndScale) {
  CpuParams cpu;
  bnn::OpRecord fc;
  fc.op_class = bnn::OpClass::kOutputLayer;
  fc.macs = 1000;
  fc.storage_bits = 8000;
  const auto small = analytic_op_cycles(fc, cpu);
  fc.macs = 2000;
  const auto big = analytic_op_cycles(fc, cpu);
  EXPECT_GT(small, 0u);
  EXPECT_GT(big, small);
}

TEST(PerfModel, BandwidthBoundOps) {
  CpuParams cpu;
  bnn::OpRecord op;
  op.op_class = bnn::OpClass::kOther;
  op.macs = 1;                     // nearly free compute
  op.storage_bits = 8 * 1280000;   // 1.28 MB of parameters
  // 1.28e6 bytes / 12.8 B/cycle = 100000 cycles.
  EXPECT_EQ(analytic_op_cycles(op, cpu), 100000u);
}

TEST(PerfModel, ModelTimingFractionsSumToOne) {
  const bnn::ReActNet model(mid_config(3));
  const ModelTiming timing = time_model_baseline(model.op_records());
  EXPECT_GT(timing.total_cycles, 0u);
  double total = 0.0;
  for (const auto cls :
       {bnn::OpClass::kInputLayer, bnn::OpClass::kOutputLayer,
        bnn::OpClass::kConv1x1, bnn::OpClass::kConv3x3,
        bnn::OpClass::kOther}) {
    total += timing.fraction(cls);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Binary 3x3 convolutions dominate execution, as in Table I.
  EXPECT_GT(timing.fraction(bnn::OpClass::kConv3x3), 0.35);
}

TEST(PerfModel, CompareModelShapes) {
  const bnn::ReActNet model(mid_config(5));
  const compress::ModelCompressor compressor;
  const auto streams =
      compressor.compress_blocks(model, /*apply_clustering=*/true);
  const SpeedupReport report = compare_model(view_for(model, streams));
  ASSERT_EQ(report.conv3x3.size(), 13u);
  EXPECT_GT(report.other_cycles, 0u);
  EXPECT_EQ(report.total_baseline,
            report.other_cycles +
                [&] {
                  std::uint64_t sum = 0;
                  for (const auto& l : report.conv3x3) {
                    sum += l.baseline_cycles;
                  }
                  return sum;
                }());
}

TEST(PerfModel, SwSlowerHwNotSlower) {
  // The paper's two headline directions: software decoding loses,
  // hardware decoding wins (Secs IV-B and VI).
  const bnn::ReActNet model(mid_config(7));
  const compress::ModelCompressor compressor;
  const auto streams =
      compressor.compress_blocks(model, /*apply_clustering=*/true);
  const SpeedupReport report = compare_model(view_for(model, streams));
  EXPECT_GT(report.model_sw_slowdown(), 1.02);
  EXPECT_GT(report.conv3x3_sw_slowdown(), 1.05);
  for (const auto& layer : report.conv3x3) {
    EXPECT_GT(layer.sw_slowdown(), 0.99) << layer.name;
    // Layers with a reasonable spatial extent must not lose from
    // hardware decoding. Tiny late layers of this *reduced* model (2x2
    // or 1x1 outputs) are genuinely decode-bound - each sequence is
    // decoded once but used for only a couple of pixels - which is a
    // real crossover of the paper's design, surfaced by the ablation
    // bench. The full-size model (>= 7x7) is on the winning side
    // everywhere.
    if (layer.baseline_detail.sampled_uops > 0 &&
        layer.hw_detail.ldps_stall_cycles == 0) {
      EXPECT_GT(layer.hw_speedup(), 0.95) << layer.name;
    }
  }
}

TEST(PerfModel, StreamInfoForMatchesKernel) {
  const auto kernel = test::calibrated_kernel(32, 32, 11);
  const auto compression = compress::compress_kernel_pipeline(kernel, true);
  const StreamInfo stream = stream_info_for(compression);
  EXPECT_EQ(stream.code_lengths.size(), 32u * 32u);
  EXPECT_EQ(stream.total_bits, compression.compressed.stream_bits);
  // Borrowed, not recomputed: the span aliases the artifact's vector.
  EXPECT_EQ(stream.code_lengths.data(), compression.code_lengths.data());
  for (const auto len : stream.code_lengths) {
    EXPECT_GE(len, 6);
    EXPECT_LE(len, 12);
  }
  // And the carried lengths are exactly the per-sequence codec lengths
  // in stream order (the quantity stream_info_for used to re-derive).
  const auto sequences = bnn::extract_sequences(compression.coded_kernel);
  ASSERT_EQ(sequences.size(), stream.code_lengths.size());
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    EXPECT_EQ(stream.code_lengths[i],
              compression.codec.code_length(sequences[i]));
  }
}

TEST(PerfModel, StreamInfoForRejectsArtifactWithoutLengths) {
  const auto kernel = test::calibrated_kernel(16, 16, 13);
  auto compression = compress::compress_kernel_pipeline(kernel, true);
  compression.code_lengths.clear();
  EXPECT_THROW(stream_info_for(compression), bkc::CheckError);
}

TEST(PerfModel, CompareModelRejectsMismatchedView) {
  const bnn::ReActNet model(mid_config(9));
  const compress::ModelCompressor compressor;
  auto streams =
      compressor.compress_blocks(model, /*apply_clustering=*/true);
  streams.pop_back();  // one stream short of the op layout
  EXPECT_THROW(view_for(model, streams), bkc::CheckError);
}

TEST(PerfModel, SpeedupReportGuards) {
  SpeedupReport empty;
  EXPECT_THROW(empty.model_sw_slowdown(), bkc::CheckError);
  EXPECT_THROW(empty.conv3x3_hw_speedup(), bkc::CheckError);
}

}  // namespace
}  // namespace bkc::hwsim
