// Tests for util/mmap_file.h — the read-only mapping behind the
// zero-copy BKCM load path.

#include "util/mmap_file.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "util/binary_io.h"
#include "util/check.h"

namespace bkc {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(MmapFile, MapsExactlyTheFileBytes) {
  const std::string path = temp_path("bkc_mmap_basic.bin");
  std::vector<std::uint8_t> payload;
  for (int i = 0; i < 3000; ++i) {
    payload.push_back(static_cast<std::uint8_t>((i * 37 + 11) & 0xff));
  }
  write_file_bytes(path, payload);

  const MmapFile mapped = MmapFile::open(path);
  const std::vector<std::uint8_t> buffered = read_file_bytes(path);
  ASSERT_EQ(mapped.size(), buffered.size());
  const auto bytes = mapped.bytes();
  EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), buffered.begin()));
  std::remove(path.c_str());
}

TEST(MmapFile, MissingFileThrowsWithPath) {
  const std::string path = temp_path("bkc_mmap_no_such_file.bin");
  try {
    MmapFile::open(path);
    FAIL() << "missing file must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << e.what();
  }
}

TEST(MmapFile, EmptyFileIsAnEmptySpan) {
  const std::string path = temp_path("bkc_mmap_empty.bin");
  write_file_bytes(path, std::vector<std::uint8_t>{});
  const MmapFile mapped = MmapFile::open(path);
  EXPECT_EQ(mapped.size(), 0u);
  EXPECT_TRUE(mapped.bytes().empty());
  std::remove(path.c_str());
}

TEST(MmapFile, MovePreservesTheMapping) {
  const std::string path = temp_path("bkc_mmap_move.bin");
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5, 6, 7, 8};
  write_file_bytes(path, payload);

  MmapFile first = MmapFile::open(path);
  const std::uint8_t* data = first.bytes().data();
  MmapFile second = std::move(first);
  // The mapping itself never moves: spans taken before the move stay
  // valid, and the moved-from object is empty.
  EXPECT_EQ(second.bytes().data(), data);
  EXPECT_EQ(second.size(), payload.size());
  EXPECT_EQ(first.size(), 0u);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(second.bytes()[3], 4u);

  MmapFile third;
  third = std::move(second);
  EXPECT_EQ(third.size(), payload.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                         third.bytes().begin()));
  std::remove(path.c_str());
}

TEST(MmapFile, DefaultConstructedIsEmpty) {
  const MmapFile file;
  EXPECT_EQ(file.size(), 0u);
  EXPECT_TRUE(file.bytes().empty());
}

}  // namespace
}  // namespace bkc
