// Tests for compress/model_view.h — the non-owning artifact boundary
// between the compression pipeline and its consumers (hwsim, tooling).
//
// The contract under test: a CompressedModelView borrows, never copies
// and never recomputes — block spans alias the artifacts they were
// built over, assembly validates the op pairing, and building a view
// (or scanning a stream's code lengths) triggers zero pipeline
// primitives.

#include "compress/model_view.h"

#include <gtest/gtest.h>

#include <vector>

#include "bnn/kernel_sequences.h"
#include "compress/instrumentation.h"
#include "core/engine.h"
#include "support/support.h"
#include "util/check.h"

namespace bkc::compress {
namespace {

TEST(ModelView, BlocksBorrowTheEngineArtifacts) {
  Engine engine(test::tiny_config(3));
  engine.compress();
  const CompressedModelView view = engine.artifact_view();
  const auto& streams = engine.block_streams();
  ASSERT_EQ(view.blocks.size(), streams.size());
  ASSERT_EQ(view.blocks.size(), engine.model().num_blocks());
  for (std::size_t b = 0; b < view.blocks.size(); ++b) {
    const BlockStreamView& block = view.blocks[b];
    const KernelCompression& stream = streams[b];
    // Spans and pointers alias the engine's artifacts — no copies.
    EXPECT_EQ(block.stream.data(), stream.compressed.stream.data());
    EXPECT_EQ(block.stream.size(), stream.compressed.stream.size());
    EXPECT_EQ(block.code_lengths.data(), stream.code_lengths.data());
    EXPECT_EQ(block.codec, &stream.codec);
    EXPECT_EQ(block.clustering, &stream.clustering);
    EXPECT_EQ(block.stream_bits, stream.compressed.stream_bits);
    EXPECT_EQ(block.num_sequences(), stream.compressed.num_sequences());
  }
}

TEST(ModelView, OpLayoutPairsBlocksWith3x3ConvsInOrder) {
  Engine engine(test::tiny_config(5));
  engine.compress();
  const CompressedModelView view = engine.artifact_view();
  std::size_t block_index = 0;
  for (const bnn::OpRecord& op : view.ops) {
    if (op.precision_bits != 1 || op.op_class != bnn::OpClass::kConv3x3) {
      continue;
    }
    ASSERT_LT(block_index, view.blocks.size());
    EXPECT_EQ(view.blocks[block_index].out_channels,
              op.kernel_shape.out_channels);
    EXPECT_EQ(view.blocks[block_index].in_channels,
              op.kernel_shape.in_channels);
    ++block_index;
  }
  EXPECT_EQ(block_index, view.blocks.size());
}

TEST(ModelView, ViewConstructionRunsNoPipelineWork) {
  Engine engine(test::tiny_config(7));
  engine.compress();
  const PipelineCounters before = pipeline_counters();
  const CompressedModelView view = engine.artifact_view();
  const PipelineCounters delta = pipeline_counters().delta_since(before);
  EXPECT_EQ(delta.frequency_counts, 0u);
  EXPECT_EQ(delta.cluster_sequences_calls, 0u);
  EXPECT_EQ(delta.grouped_codec_builds, 0u);
  EXPECT_FALSE(view.blocks.empty());
}

TEST(ModelView, RejectsStreamCountMismatch) {
  const bnn::ReActNet model(test::tiny_config(9));
  const ModelCompressor compressor;
  auto streams = compressor.compress_blocks(model, /*apply_clustering=*/true);
  auto extra = streams;
  extra.push_back(streams.back());
  EXPECT_THROW(view_of(model.op_records(), extra), CheckError);
  streams.pop_back();
  EXPECT_THROW(view_of(model.op_records(), streams), CheckError);
}

TEST(ModelView, RejectsShapeMismatchAndMissingLengths) {
  const bnn::ReActNet model(test::tiny_config(11));
  const ModelCompressor compressor;
  auto streams = compressor.compress_blocks(model, /*apply_clustering=*/true);
  {
    auto broken = streams;
    broken[0].compressed.out_channels += 1;
    EXPECT_THROW(view_of(model.op_records(), broken), CheckError);
  }
  {
    auto broken = streams;
    broken[1].code_lengths.clear();
    EXPECT_THROW(view_of(model.op_records(), broken), CheckError);
  }
  // Untouched artifacts still assemble.
  EXPECT_EQ(view_of(model.op_records(), streams).blocks.size(),
            streams.size());
}

TEST(ModelView, CodeLengthSumMatchesStreamBits) {
  Engine engine(test::tiny_config(13));
  engine.compress();
  for (const BlockStreamView& block : engine.artifact_view().blocks) {
    std::uint64_t sum = 0;
    for (const std::uint8_t len : block.code_lengths) sum += len;
    EXPECT_EQ(sum, block.stream_bits);
  }
}

TEST(ModelView, ScanCodeLengthsMatchesCompressionArtifact) {
  // The prefix-only scan (the mapped-container path) must recover
  // exactly the lengths the encoder recorded — for both columns.
  const auto kernel = test::calibrated_kernel(32, 16, 17);
  for (const bool clustering : {true, false}) {
    const KernelCompression artifact =
        compress_kernel_pipeline(kernel, clustering);
    const PipelineCounters before = pipeline_counters();
    const std::vector<std::uint8_t> scanned = scan_code_lengths(
        artifact.compressed.stream, artifact.compressed.stream_bits,
        artifact.compressed.num_sequences(), artifact.codec.config());
    const PipelineCounters delta = pipeline_counters().delta_since(before);
    EXPECT_EQ(scanned, artifact.code_lengths);
    EXPECT_EQ(delta.frequency_counts, 0u);
    EXPECT_EQ(delta.cluster_sequences_calls, 0u);
    EXPECT_EQ(delta.grouped_codec_builds, 0u);
  }
}

TEST(ModelView, ScanCodeLengthsRejectsTruncatedAndPaddedStreams) {
  const auto kernel = test::calibrated_kernel(16, 16, 19);
  const KernelCompression artifact = compress_kernel_pipeline(kernel, true);
  const auto count = artifact.compressed.num_sequences();
  const auto& config = artifact.codec.config();
  // Mid-codeword cut.
  EXPECT_THROW(scan_code_lengths(artifact.compressed.stream,
                                 artifact.compressed.stream_bits - 3, count,
                                 config),
               CheckError);
  // Declared bits exceed the consumed bits (trailing garbage).
  EXPECT_THROW(scan_code_lengths(artifact.compressed.stream,
                                 artifact.compressed.stream_bits, count - 1,
                                 config),
               CheckError);
  // Bit count beyond the byte buffer.
  EXPECT_THROW(scan_code_lengths(artifact.compressed.stream,
                                 artifact.compressed.stream.size() * 8 + 1,
                                 count, config),
               CheckError);
}

}  // namespace
}  // namespace bkc::compress
