// Tests for the zero-allocation substrate: the bump Arena, the
// MemoryPlan arithmetic, Workspace / WorkspacePool, and the planned
// forward path's two load-bearing contracts — bit-identity with the
// legacy allocating path, and EXACT high-water equality with the plan
// (an undersized plan overflows as CheckError, an oversized one fails
// the equality).

#include "bnn/memory_plan.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <utility>

#include "bnn/reactnet.h"
#include "bnn/weights.h"
#include "support/support.h"
#include "util/arena.h"
#include "util/check.h"

namespace bkc::bnn {
namespace {

TEST(Arena, AlignedSizeRoundsToGranules) {
  EXPECT_EQ(Arena::aligned_size(0), 0u);
  EXPECT_EQ(Arena::aligned_size(1), Arena::kAlignment);
  EXPECT_EQ(Arena::aligned_size(Arena::kAlignment), Arena::kAlignment);
  EXPECT_EQ(Arena::aligned_size(Arena::kAlignment + 1), 2 * Arena::kAlignment);
}

TEST(Arena, AllocationsAreAlignedAndCounted) {
  Arena arena(1024);
  void* a = arena.allocate(1);
  void* b = arena.allocate(65);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % Arena::kAlignment, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % Arena::kAlignment, 0u);
  // 1 byte occupies one granule, 65 bytes two.
  EXPECT_EQ(arena.used(), 3 * Arena::kAlignment);
  EXPECT_EQ(arena.allocation_count(), 2u);
  EXPECT_EQ(arena.capacity(), 1024u);
}

TEST(Arena, HighWaterSurvivesReset) {
  Arena arena(512);
  arena.allocate(512);
  EXPECT_EQ(arena.high_water(), 512u);
  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.reset_count(), 1u);
  arena.allocate(64);
  EXPECT_EQ(arena.high_water(), 512u);  // the peak, not the current use
}

TEST(Arena, MarkRewindIsLifo) {
  Arena arena(512);
  arena.allocate(64);
  const std::size_t mark = arena.mark();
  arena.allocate(128);
  EXPECT_EQ(arena.used(), 192u);
  arena.rewind(mark);
  EXPECT_EQ(arena.used(), 64u);
  EXPECT_THROW(arena.rewind(128), CheckError);  // past the current top
}

TEST(Arena, OverflowThrows) {
  Arena arena(128);
  arena.allocate(128);
  EXPECT_THROW(arena.allocate(1), CheckError);
}

TEST(Arena, AllocateSpanTypesAndCounts) {
  Arena arena(1024);
  const std::span<float> floats = arena.allocate_span<float>(10);
  EXPECT_EQ(floats.size(), 10u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(floats.data()) %
                Arena::kAlignment,
            0u);
  EXPECT_THROW(arena.allocate_span<float>(-1), CheckError);
}

TEST(MemoryPlan, ArenaBytesIsTwoBuffersPlusScratch) {
  MemoryPlan plan;
  plan.activation_floats = 100;  // 400 bytes -> 448 aligned
  plan.scratch_bytes = 128;
  EXPECT_EQ(plan.arena_bytes(),
            2 * Arena::aligned_size(100 * sizeof(float)) + 128);
}

TEST(MemoryPlan, CoversIsFieldwise) {
  const MemoryPlan big{.activation_floats = 10, .scratch_bytes = 64,
                       .pack_words = 4};
  MemoryPlan small = big;
  EXPECT_TRUE(big.covers(small));
  small.pack_words = 5;
  EXPECT_FALSE(big.covers(small));
  EXPECT_TRUE(small.covers(small));
}

TEST(Workspace, ConstructionSizesArenaToThePlan) {
  const MemoryPlan plan{.activation_floats = 64, .scratch_bytes = 192,
                        .pack_words = 8};
  Workspace workspace(plan);
  EXPECT_EQ(workspace.arena().capacity(), plan.arena_bytes());
  EXPECT_TRUE(workspace.covers(plan));
  EXPECT_FALSE(workspace.covers(
      MemoryPlan{.activation_floats = 65, .scratch_bytes = 0,
                 .pack_words = 0}));
}

TEST(WorkspacePool, ReusesReleasedWorkspaces) {
  WorkspacePool pool(MemoryPlan{.activation_floats = 16});
  EXPECT_EQ(pool.idle_count(), 0u);
  Workspace* first = nullptr;
  {
    WorkspacePool::Lease lease = pool.acquire();
    first = &lease.workspace();
    EXPECT_EQ(pool.idle_count(), 0u);
  }
  EXPECT_EQ(pool.idle_count(), 1u);
  {
    WorkspacePool::Lease lease = pool.acquire();
    // The same workspace object comes back — steady state allocates
    // nothing new.
    EXPECT_EQ(&lease.workspace(), first);
    // A second concurrent lease grows the pool by one.
    WorkspacePool::Lease second = pool.acquire();
    EXPECT_NE(&second.workspace(), first);
  }
  EXPECT_EQ(pool.idle_count(), 2u);
}

TEST(ReActNetPlan, ForwardIntoMatchesForwardBitExactly) {
  const ReActNet model(test::tiny_config(41));
  Workspace workspace(model.memory_plan());
  WeightGenerator gen(9);
  for (int i = 0; i < 3; ++i) {
    const Tensor image = gen.sample_activation(model.input_shape());
    const Tensor expected = model.forward(image);
    Tensor scores(FeatureShape{model.config().num_classes, 1, 1});
    model.forward_into(image, scores, workspace);
    ASSERT_EQ(scores.shape(), expected.shape());
    EXPECT_EQ(std::memcmp(scores.data().data(), expected.data().data(),
                          expected.data().size_bytes()),
              0);
  }
}

TEST(ReActNetPlan, HighWaterEqualsPlannedBytesExactly) {
  // The equality (not <=) is the point: it proves the plan arithmetic
  // mirrors the forward path's allocation order with zero slack, so
  // any drift in either direction is caught.
  const ReActNet model(test::tiny_config(43));
  Workspace workspace(model.memory_plan());
  WeightGenerator gen(10);
  Tensor scores(FeatureShape{model.config().num_classes, 1, 1});
  model.forward_into(gen.sample_activation(model.input_shape()), scores,
                     workspace);
  EXPECT_EQ(workspace.arena().high_water(),
            model.memory_plan().arena_bytes());
}

TEST(ReActNetPlan, ArenaStaysFlatAcrossRepeatCalls) {
  // Steady state: repeated passes reset and refill to the identical
  // high-water mark with the identical allocation count per pass.
  const ReActNet model(test::tiny_config(43));
  Workspace workspace(model.memory_plan());
  WeightGenerator gen(12);
  const Tensor image = gen.sample_activation(model.input_shape());
  Tensor scores(FeatureShape{model.config().num_classes, 1, 1});
  model.forward_into(image, scores, workspace);
  const std::uint64_t allocs_per_pass =
      workspace.arena().allocation_count();
  const std::size_t high_water = workspace.arena().high_water();
  for (int i = 0; i < 3; ++i) {
    model.forward_into(image, scores, workspace);
  }
  EXPECT_EQ(workspace.arena().allocation_count(), 4 * allocs_per_pass);
  EXPECT_EQ(workspace.arena().high_water(), high_water);
}

TEST(ReActNetPlan, UndersizedWorkspaceThrows) {
  const ReActNet model(test::tiny_config(45));
  Workspace workspace(MemoryPlan{});  // covers nothing
  WeightGenerator gen(11);
  Tensor scores(FeatureShape{model.config().num_classes, 1, 1});
  EXPECT_THROW(model.forward_into(gen.sample_activation(model.input_shape()),
                                  scores, workspace),
               CheckError);
}

TEST(ReActNetPlan, OversizedWorkspaceRunsFine) {
  const ReActNet model(test::tiny_config(45));
  MemoryPlan plan = model.memory_plan();
  plan.activation_floats += 100;
  plan.scratch_bytes += 4 * Arena::kAlignment;
  plan.pack_words += 16;
  Workspace workspace(plan);
  WeightGenerator gen(11);
  const Tensor image = gen.sample_activation(model.input_shape());
  Tensor scores(FeatureShape{model.config().num_classes, 1, 1});
  model.forward_into(image, scores, workspace);
  const Tensor expected = model.forward(image);
  EXPECT_EQ(std::memcmp(scores.data().data(), expected.data().data(),
                        expected.data().size_bytes()),
            0);
}

TEST(ReActNetPlan, WrongScoreShapeThrows) {
  const ReActNet model(test::tiny_config(45));
  Workspace workspace(model.memory_plan());
  WeightGenerator gen(11);
  Tensor scores(FeatureShape{model.config().num_classes + 1, 1, 1});
  EXPECT_THROW(model.forward_into(gen.sample_activation(model.input_shape()),
                                  scores, workspace),
               CheckError);
}

TEST(ReActNetPlan, PlanFieldsMatchTheOpRecordWalk) {
  const ReActNet model(test::tiny_config(47));
  const MemoryPlan& plan = model.memory_plan();
  std::int64_t max_activation = 0;
  std::int64_t max_pack_words = 0;
  for (const OpRecord& op : model.op_records()) {
    max_activation = std::max({max_activation, op.input_shape.size(),
                               op.output_shape.size()});
    if (op.precision_bits == 1) {
      max_pack_words =
          std::max(max_pack_words, words_per_group(op.input_shape.channels) *
                                       op.input_shape.height *
                                       op.input_shape.width);
    }
  }
  EXPECT_EQ(plan.activation_floats, max_activation);
  EXPECT_EQ(plan.pack_words, max_pack_words);
  EXPECT_GT(plan.scratch_bytes, 0);
}

}  // namespace
}  // namespace bkc::bnn
