// The zero-allocation contract of the planned forward path, pinned at
// the strongest possible level: a global operator-new/delete override
// counts EVERY heap allocation in the process, and a warm
// Engine::classify_into (pooled workspace, correctly-shaped scores,
// threads == 1) must perform exactly none.
//
// This suite gets its own binary because the override is global to the
// translation unit's final link — no other suite should run with
// counting allocators underneath it.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>

#include "bnn/memory_plan.h"
#include "core/engine.h"
#include "support/support.h"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t alignment) {
  ++g_allocations;
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size ? size : alignment) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace

// Replace every form the standard library may route through. The sized
// and aligned variants must be covered too: a miss there would leak
// allocations past the counter and silently weaken the test.
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocations;
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocations;
  return std::malloc(size ? size : 1);
}
void* operator new(std::size_t size, std::align_val_t alignment) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(alignment));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace bkc {
namespace {

TEST(ZeroAlloc, CounterSeesOrdinaryAllocations) {
  // Sanity-check the instrument itself before trusting its zeros.
  const std::uint64_t before = allocation_count();
  volatile int* p = new int(7);
  delete p;
  EXPECT_GT(allocation_count(), before);
}

TEST(ZeroAlloc, WarmClassifyIntoAllocatesNothing) {
  Engine engine(test::tiny_config(51));
  engine.compress();
  bnn::Workspace workspace = engine.make_workspace();
  bnn::WeightGenerator gen(5);
  const Tensor image = gen.sample_activation(engine.model().input_shape());
  Tensor scores;
  // Warm-up: shapes the scores tensor; the workspace was fully
  // allocated at construction.
  engine.classify_into(image, scores, workspace);
  const Tensor expected = engine.model().forward(image);

  const std::uint64_t arena_allocs_per_pass =
      workspace.arena().allocation_count();
  const std::uint64_t heap_before = allocation_count();
  constexpr int kPasses = 10;
  for (int i = 0; i < kPasses; ++i) {
    engine.classify_into(image, scores, workspace);
  }
  const std::uint64_t heap_after = allocation_count();

  // The contract: zero heap allocations per steady-state classify...
  EXPECT_EQ(heap_after - heap_before, 0u);
  // ...while the arena shows the same fixed bump count every pass
  // (it is doing all the work the heap no longer does)...
  EXPECT_EQ(workspace.arena().allocation_count(),
            (kPasses + 1) * arena_allocs_per_pass);
  EXPECT_EQ(workspace.arena().reset_count(),
            static_cast<std::uint64_t>(kPasses + 1));
  // ...to exactly the planned high-water mark.
  EXPECT_EQ(workspace.arena().high_water(),
            engine.memory_plan().arena_bytes());
  // And the result is still bit-identical to the legacy path.
  ASSERT_EQ(scores.shape(), expected.shape());
  EXPECT_EQ(std::memcmp(scores.data().data(), expected.data().data(),
                        expected.data().size_bytes()),
            0);
}

TEST(ZeroAlloc, PooledClassifyStopsAllocatingAfterWarmup) {
  Engine engine(test::tiny_config(53));
  engine.compress();
  bnn::WeightGenerator gen(6);
  const Tensor image = gen.sample_activation(engine.model().input_shape());

  // Warm the engine's internal pool (and the score-shape path).
  const Tensor expected = engine.classify(image);
  engine.classify(image);

  // Steady state: the only allocation left per classify() is the
  // returned score tensor itself (one vector), plus nothing from the
  // pool, the arena or the layers.
  const std::uint64_t before = allocation_count();
  constexpr int kPasses = 8;
  for (int i = 0; i < kPasses; ++i) {
    const Tensor scores = engine.classify(image);
  }
  const std::uint64_t after = allocation_count();
  EXPECT_LE(after - before, static_cast<std::uint64_t>(kPasses));
  EXPECT_EQ(std::memcmp(engine.classify(image).data().data(),
                        expected.data().data(),
                        expected.data().size_bytes()),
            0);
}

}  // namespace
}  // namespace bkc
