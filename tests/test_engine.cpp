// End-to-end tests of the public Engine facade.

#include "core/engine.h"

#include <gtest/gtest.h>

#include "compress/instrumentation.h"
#include "support/support.h"
#include "util/check.h"

namespace bkc {
namespace {

using test::no_clustering;

TEST(Engine, CompressReportsAndVerifies) {
  Engine engine(test::tiny_config(3));
  EXPECT_FALSE(engine.is_compressed());
  const auto& report = engine.compress();
  EXPECT_TRUE(engine.is_compressed());
  EXPECT_EQ(report.blocks.size(), 13u);
  EXPECT_TRUE(engine.verify_streams());
  EXPECT_EQ(engine.block_streams().size(), 13u);
}

TEST(Engine, CompressIsIdempotent) {
  Engine engine(test::tiny_config(5));
  engine.compress();
  const auto kernel = engine.model().block(0).conv3x3().kernel();
  engine.compress();  // second call must not re-cluster
  EXPECT_TRUE(engine.model().block(0).conv3x3().kernel() == kernel);
}

TEST(Engine, CompressRunsOnePipelinePassPerBlock) {
  // Engine::compress is a single compress_model pass: one frequency
  // count and one clustering search per block, two grouped-codec builds
  // (encoding + clustering columns) — and nothing else. Before the
  // refactor the same call ran 3 / 2 / 3 per block across analyze()
  // and compress_blocks().
  Engine engine(test::tiny_config(19));
  const auto blocks =
      static_cast<std::uint64_t>(engine.model().num_blocks());
  const compress::PipelineCounters before = compress::pipeline_counters();
  engine.compress(2);
  const compress::PipelineCounters delta =
      compress::pipeline_counters().delta_since(before);
  EXPECT_EQ(delta.frequency_counts, blocks);
  EXPECT_EQ(delta.cluster_sequences_calls, blocks);
  EXPECT_EQ(delta.grouped_codec_builds, 2 * blocks);

  // Idempotent: a second compress() does no pipeline work at all.
  const compress::PipelineCounters before_again =
      compress::pipeline_counters();
  engine.compress();
  const compress::PipelineCounters delta_again =
      compress::pipeline_counters().delta_since(before_again);
  EXPECT_EQ(delta_again.frequency_counts, 0u);
  EXPECT_EQ(delta_again.cluster_sequences_calls, 0u);
  EXPECT_EQ(delta_again.grouped_codec_builds, 0u);
}

TEST(Engine, AccessorsGuardUncompressedState) {
  Engine engine(test::tiny_config(7));
  EXPECT_THROW(engine.report(), CheckError);
  EXPECT_THROW(engine.block_streams(), CheckError);
  EXPECT_THROW(engine.verify_streams(), CheckError);
  EXPECT_THROW(engine.simulate_speedup(), CheckError);
  EXPECT_THROW(engine.artifact_view(), CheckError);
}

TEST(Engine, SimulateSpeedupRunsZeroPipelineWork) {
  // The whole point of the artifact-view refactor: the simulator
  // consumes the streams compress() already produced. NO frequency
  // count, NO clustering search, NO codec build may run during
  // simulate_speedup (before the refactor it cost a full compress_model
  // pass per call).
  Engine engine(test::tiny_config(23));
  engine.compress();
  const compress::PipelineCounters before = compress::pipeline_counters();
  const auto report = engine.simulate_speedup();
  const compress::PipelineCounters delta =
      compress::pipeline_counters().delta_since(before);
  EXPECT_EQ(delta.frequency_counts, 0u);
  EXPECT_EQ(delta.cluster_sequences_calls, 0u);
  EXPECT_EQ(delta.grouped_codec_builds, 0u);
  EXPECT_EQ(report.conv3x3.size(), engine.model().num_blocks());
}

TEST(Engine, SimulateSpeedupUsesTheDeployedStreams) {
  // The simulated streams are the engine's own artifacts — feeding the
  // view to hwsim directly must reproduce simulate_speedup exactly.
  Engine engine(test::tiny_config(25));
  engine.compress();
  const auto via_engine = engine.simulate_speedup();
  const auto via_view = hwsim::compare_model(engine.artifact_view());
  EXPECT_TRUE(hwsim::cycles_identical(via_engine, via_view));
}

TEST(Engine, VerifyStreamsPreconditionNamesTheFix) {
  // The error must tell the caller what to do, and tripping it must
  // leave the engine usable: compress() afterwards still verifies.
  Engine engine(test::tiny_config(17));
  try {
    engine.verify_streams();
    FAIL() << "verify_streams() before compress() must throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("verify_streams"), std::string::npos) << what;
    EXPECT_NE(what.find("compress()"), std::string::npos) << what;
  }
  EXPECT_FALSE(engine.is_compressed());
  engine.compress();
  EXPECT_TRUE(engine.verify_streams());
}

TEST(Engine, EncodingOnlyPreservesInferenceBitExactly) {
  // Without clustering the compression is lossless, so classify() must
  // produce IDENTICAL outputs before and after compress().
  Engine engine(test::tiny_config(9), no_clustering());
  bnn::WeightGenerator gen(10);
  const Tensor image =
      gen.sample_activation(engine.model().input_shape());
  const Tensor before = engine.classify(image);
  engine.compress();
  EXPECT_TRUE(engine.verify_streams());
  const Tensor after = engine.classify(image);
  for (std::size_t i = 0; i < after.data().size(); ++i) {
    EXPECT_FLOAT_EQ(after.data()[i], before.data()[i]);
  }
}

TEST(Engine, ClusteringChangesOutputsOnlySlightly) {
  Engine engine(test::tiny_config(11));
  bnn::WeightGenerator gen(12);
  const Tensor image =
      gen.sample_activation(engine.model().input_shape());
  const Tensor before = engine.classify(image);
  engine.compress();
  const Tensor after = engine.classify(image);
  double l1 = 0.0;
  double magnitude = 0.0;
  for (std::size_t i = 0; i < after.data().size(); ++i) {
    l1 += std::abs(after.data()[i] - before.data()[i]);
    magnitude += std::abs(before.data()[i]);
  }
  EXPECT_LT(l1, magnitude);  // perturbation, not a different network
}

TEST(Engine, ClusteringImprovesModelRatio) {
  Engine plain(test::tiny_config(13), no_clustering());
  Engine clustered(test::tiny_config(13));
  const auto& plain_report = plain.compress();
  const auto& clustered_report = clustered.compress();
  EXPECT_GT(clustered_report.mean_clustering_ratio,
            plain_report.mean_encoding_ratio);
}

TEST(Engine, SimulateSpeedupRuns) {
  Engine engine(test::tiny_config(15));
  engine.compress();
  const auto report = engine.simulate_speedup();
  EXPECT_EQ(report.conv3x3.size(), 13u);
  EXPECT_GT(report.total_baseline, 0u);
  EXPECT_GT(report.model_sw_slowdown(), 1.0);
}

}  // namespace
}  // namespace bkc
