// Tests for the cache and memory-hierarchy timing substrate.

#include "hwsim/cache.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace bkc::hwsim {
namespace {

TEST(Cache, HitAfterFill) {
  Cache c(1024, 2, 64);
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(63));   // same line
  EXPECT_FALSE(c.access(64));  // next line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEvictionOrder) {
  // 2 ways, 64B lines, 2 sets -> addresses 0, 256, 512 map to set 0.
  Cache c(256, 2, 64);
  c.access(0);
  c.access(256);
  c.access(0);      // touch 0: now 256 is LRU
  c.access(512);    // evicts 256
  EXPECT_TRUE(c.access(0));
  EXPECT_FALSE(c.access(256));  // was evicted
}

TEST(Cache, ProbeDoesNotFill) {
  Cache c(1024, 2, 64);
  EXPECT_FALSE(c.probe(0));
  EXPECT_FALSE(c.access(0));  // still a miss: probe must not have filled
  EXPECT_TRUE(c.probe(0));
}

TEST(Cache, CyclicWorkingSetLargerThanCapacityThrashes) {
  // The weight-stream behaviour behind the paper: a kernel slightly
  // larger than the cache re-walked in order misses every time with LRU.
  Cache c(8 * 64, 8, 64);  // one set, 8 ways
  for (int pass = 0; pass < 3; ++pass) {
    for (int line = 0; line < 9; ++line) {
      c.access(static_cast<std::uint64_t>(line) * 64);
    }
  }
  EXPECT_EQ(c.hits(), 0u);
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(Cache(100, 2, 64), bkc::CheckError);   // non-pow2 sets
  EXPECT_THROW(Cache(1024, 2, 60), bkc::CheckError);  // non-pow2 line
}

TEST(Hierarchy, LatenciesEscalateThroughLevels) {
  CpuParams params;
  MemoryHierarchy mem(params);
  const auto first = mem.access(0x1000, 16, 0);
  EXPECT_TRUE(first.dram);
  EXPECT_GE(first.latency, params.dram_latency);
  const auto second = mem.access(0x1000, 16, 1000);
  EXPECT_TRUE(second.l1_hit);
  EXPECT_EQ(second.latency, params.l1_latency);
}

TEST(Hierarchy, L2HitAfterL1Eviction) {
  CpuParams params;
  MemoryHierarchy mem(params);
  mem.access(0x0, 16, 0);
  // Walk enough lines mapping to the same L1 set to evict 0x0 from L1
  // while it stays in the (larger) L2.
  const std::int64_t l1_sets = params.l1_bytes / (params.l1_ways * 64);
  for (int i = 1; i <= params.l1_ways + 1; ++i) {
    mem.access(static_cast<std::uint64_t>(i) * l1_sets * 64, 16, 100 * i);
  }
  const auto result = mem.access(0x0, 16, 100000);
  EXPECT_TRUE(result.l2_hit);
  EXPECT_EQ(result.latency, params.l1_latency + params.l2_latency);
}

TEST(Hierarchy, StraddlingAccessTouchesBothLines) {
  CpuParams params;
  MemoryHierarchy mem(params);
  mem.access(60, 8, 0);  // crosses the 64B boundary
  EXPECT_TRUE(mem.access(0, 1, 10).l1_hit);
  EXPECT_TRUE(mem.access(64, 1, 11).l1_hit);
}

TEST(Hierarchy, MissSlotsLimitParallelism) {
  CpuParams params;
  params.max_outstanding_misses = 1;
  MemoryHierarchy serial(params);
  const auto a = serial.access(0x0000, 16, 0);
  const auto b = serial.access(0x1000, 16, 0);
  // With a single slot, the second miss waits for the whole first fill.
  EXPECT_GE(b.latency, a.latency + params.dram_latency);

  params.max_outstanding_misses = 4;
  MemoryHierarchy parallel(params);
  parallel.access(0x0000, 16, 0);
  const auto b2 = parallel.access(0x1000, 16, 0);
  EXPECT_LT(b2.latency, a.latency + params.dram_latency);
}

TEST(Hierarchy, StreamFetchPipelines) {
  CpuParams params;
  MemoryHierarchy mem(params);
  const auto first = mem.stream_fetch(64, 0);
  const auto second = mem.stream_fetch(64, 0);
  // Second transfer queues behind the first by the transfer time only.
  EXPECT_GT(second, first);
  EXPECT_LE(second - first, 10u);
  EXPECT_EQ(mem.dram_accesses(), 2u);
}

TEST(Hierarchy, NoteStreamTrafficCounts) {
  CpuParams params;
  MemoryHierarchy mem(params);
  mem.note_stream_traffic(64);
  mem.note_stream_traffic(64);
  EXPECT_EQ(mem.stream_bytes(), 128u);
  EXPECT_EQ(mem.dram_accesses(), 2u);
}

TEST(Hierarchy, ResetClearsEverything) {
  CpuParams params;
  MemoryHierarchy mem(params);
  mem.access(0x0, 16, 0);
  mem.reset();
  EXPECT_EQ(mem.dram_accesses(), 0u);
  EXPECT_FALSE(mem.access(0x0, 16, 0).l1_hit);
}

}  // namespace
}  // namespace bkc::hwsim
