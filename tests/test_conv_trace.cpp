// Tests for the conv-layer trace simulation (baseline / sw / hw).

#include "hwsim/conv_trace.h"

#include <gtest/gtest.h>

#include "bnn/kernel_sequences.h"
#include "hwsim/perf_model.h"
#include "support/support.h"
#include "util/check.h"

namespace bkc::hwsim {
namespace {

using test::conv_op;

OwnedStreamInfo stream_for(std::int64_t channels, std::uint64_t seed) {
  return test::compressed_stream(channels, seed);
}

TEST(LayerGeometry, FromOpDerivesGroups) {
  const auto op = conv_op(192, 8);
  const auto g = LayerGeometry::from_op(op, 128);
  EXPECT_EQ(g.groups, 2);
  EXPECT_EQ(g.out_h, 8);
  EXPECT_EQ(g.positions(), 9);
  const auto g1 = LayerGeometry::from_op(conv_op(64, 8, 1), 128);
  EXPECT_EQ(g1.positions(), 1);
  EXPECT_EQ(g1.groups, 1);
}

TEST(ConvTrace, BaselineProducesPositiveScaledCycles) {
  const auto op = conv_op(64, 8);
  const auto result =
      simulate_binary_conv_layer(op, ConvVariant::kBaseline);
  EXPECT_GT(result.cycles, 0u);
  EXPECT_EQ(result.decode_cycles, 0u);
  EXPECT_GT(result.sampled_uops, 0u);
}

TEST(ConvTrace, DeterministicAcrossRuns) {
  const auto op = conv_op(64, 8);
  const auto a = simulate_binary_conv_layer(op, ConvVariant::kBaseline);
  const auto b = simulate_binary_conv_layer(op, ConvVariant::kBaseline);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.dram_accesses, b.dram_accesses);
}

TEST(ConvTrace, CompressedVariantsRequireStream) {
  const auto op = conv_op(64, 8);
  EXPECT_THROW(simulate_binary_conv_layer(op, ConvVariant::kSwDecode),
               bkc::CheckError);
  EXPECT_THROW(simulate_binary_conv_layer(op, ConvVariant::kHwDecode),
               bkc::CheckError);
}

TEST(ConvTrace, StreamLengthMismatchThrows) {
  const auto op = conv_op(64, 8);
  const auto owned = stream_for(32, 3);  // wrong kernel size
  const StreamInfo stream = owned.view();
  EXPECT_THROW(
      simulate_binary_conv_layer(op, ConvVariant::kHwDecode, &stream),
      bkc::CheckError);
}

TEST(ConvTrace, SwDecodeIsSlowerThanBaseline) {
  const auto op = conv_op(128, 8);
  const auto owned = stream_for(128, 5);
  const StreamInfo stream = owned.view();
  const auto base = simulate_binary_conv_layer(op, ConvVariant::kBaseline);
  const auto sw =
      simulate_binary_conv_layer(op, ConvVariant::kSwDecode, &stream);
  EXPECT_GT(sw.cycles, base.cycles);
  EXPECT_GT(sw.decode_cycles, 0u);
}

TEST(ConvTrace, HwDecodeNeverSlowerThanBaselineOnBigLayers) {
  // A 512-channel 14x14 layer: the kernel exceeds the L2, so the
  // decoder unit's latency hiding must pay off (the paper's Sec VI
  // speedup mechanism).
  const auto op = conv_op(512, 14);
  const auto owned = stream_for(512, 7);
  const StreamInfo stream = owned.view();
  const auto base = simulate_binary_conv_layer(op, ConvVariant::kBaseline);
  const auto hw =
      simulate_binary_conv_layer(op, ConvVariant::kHwDecode, &stream);
  EXPECT_LT(hw.cycles, base.cycles);
  // And the weight-load stalls are gone.
  EXPECT_LT(hw.ldps_stall_cycles, base.load_stall_cycles / 4);
}

TEST(ConvTrace, HwReducesDramTraffic) {
  const auto op = conv_op(512, 14);
  const auto owned = stream_for(512, 9);
  const StreamInfo stream = owned.view();
  const auto base = simulate_binary_conv_layer(op, ConvVariant::kBaseline);
  const auto hw =
      simulate_binary_conv_layer(op, ConvVariant::kHwDecode, &stream);
  EXPECT_LT(hw.dram_accesses, base.dram_accesses);
}

TEST(ConvTrace, SmallLayerFullySimulatedWithoutScaling) {
  const auto op = conv_op(16, 3);  // 3 output rows = fewer than sample
  const auto result =
      simulate_binary_conv_layer(op, ConvVariant::kBaseline);
  EXPECT_GT(result.cycles, 0u);
}

TEST(ConvTrace, VariantNames) {
  EXPECT_EQ(variant_name(ConvVariant::kBaseline), "baseline");
  EXPECT_EQ(variant_name(ConvVariant::kSwDecode), "sw-decode");
  EXPECT_EQ(variant_name(ConvVariant::kHwDecode), "hw-decode");
}

}  // namespace
}  // namespace bkc::hwsim
