// Tests for the in-order dual-issue core timing model.

#include "hwsim/core.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace bkc::hwsim {
namespace {

TEST(Core, DualIssueFloor) {
  CpuParams params;
  InOrderCore core(params);
  std::vector<MicroOp> trace(1000, MicroOp{.kind = UopKind::kScalar});
  const CoreStats stats = core.run(trace);
  // 1000 independent scalars on a 2-wide core: ~500 cycles.
  EXPECT_NEAR(static_cast<double>(stats.cycles), 500.0, 5.0);
  EXPECT_EQ(stats.uops, 1000u);
}

TEST(Core, DependencyChainSerializes) {
  CpuParams params;
  InOrderCore core(params);
  std::vector<MicroOp> trace;
  trace.push_back({.kind = UopKind::kScalar});
  for (int i = 0; i < 999; ++i) {
    trace.push_back({.kind = UopKind::kScalar, .dep = 1});
  }
  const CoreStats stats = core.run(trace);
  // A chain of 1-cycle ops runs at 1 per cycle regardless of width.
  EXPECT_GE(stats.cycles, 999u);
}

TEST(Core, LoadLatencyExposedToConsumer) {
  CpuParams params;
  InOrderCore core(params);
  // Warm the line first so the timed run sees an L1 hit.
  std::vector<MicroOp> warm{{.kind = UopKind::kLoad, .addr = 0, .bytes = 8}};
  core.run(warm);
  InOrderCore timed(params);
  timed.run(warm);
  std::vector<MicroOp> trace{
      {.kind = UopKind::kLoad, .addr = 0, .bytes = 8},
      {.kind = UopKind::kVector, .dep = 1},
  };
  const CoreStats stats = timed.run(trace);
  EXPECT_GE(stats.cycles, static_cast<std::uint64_t>(params.l1_latency));
  EXPECT_GT(stats.load_stall_cycles, 0u);
}

TEST(Core, IndependentWorkHidesLoadLatency) {
  CpuParams params;
  InOrderCore core(params);
  // A load followed by 400 independent scalars, consumer at the end:
  // the miss latency is fully hidden behind the scalars.
  std::vector<MicroOp> trace{{.kind = UopKind::kLoad, .addr = 0, .bytes = 8}};
  for (int i = 0; i < 600; ++i) {
    trace.push_back({.kind = UopKind::kScalar});
  }
  trace.push_back({.kind = UopKind::kVector, .dep = 1});  // dep on scalar
  const CoreStats stats = core.run(trace);
  EXPECT_LT(stats.cycles, 320u);
}

TEST(Core, StoresDoNotStall) {
  CpuParams params;
  InOrderCore core(params);
  std::vector<MicroOp> trace(200, MicroOp{.kind = UopKind::kStore,
                                          .addr = 0x400,
                                          .bytes = 4});
  const CoreStats stats = core.run(trace);
  EXPECT_NEAR(static_cast<double>(stats.cycles), 100.0, 10.0);
}

TEST(Core, MissCountersPropagate) {
  CpuParams params;
  InOrderCore core(params);
  std::vector<MicroOp> trace{
      {.kind = UopKind::kLoad, .addr = 0x0, .bytes = 8},
      {.kind = UopKind::kLoad, .addr = 0x10000, .bytes = 8},
      {.kind = UopKind::kLoad, .addr = 0x0, .bytes = 8},
  };
  const CoreStats stats = core.run(trace);
  EXPECT_EQ(stats.l1_misses, 2u);
  EXPECT_EQ(stats.dram_accesses, 2u);
}

TEST(Core, CyclePersistsAcrossRuns) {
  CpuParams params;
  InOrderCore core(params);
  std::vector<MicroOp> trace(100, MicroOp{.kind = UopKind::kScalar});
  core.run(trace);
  const auto after_first = core.cycle();
  core.run(trace);
  EXPECT_GT(core.cycle(), after_first);
  core.reset();
  EXPECT_EQ(core.cycle(), 0u);
}

TEST(Core, LoadPackedWithoutDecoderThrows) {
  CpuParams params;
  InOrderCore core(params);
  std::vector<MicroOp> trace{{.kind = UopKind::kLoadPacked}};
  EXPECT_THROW(core.run(trace), bkc::CheckError);
}

TEST(Core, DependencyOutsideWindowThrows) {
  CpuParams params;
  InOrderCore core(params);
  std::vector<MicroOp> trace{{.kind = UopKind::kScalar, .dep = 5}};
  EXPECT_THROW(core.run(trace), bkc::CheckError);
}

}  // namespace
}  // namespace bkc::hwsim
