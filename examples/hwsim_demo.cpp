// Tour of the timing model: one large binary conv, three ways.
//
// Simulates a 512-channel 14x14 3x3 binary convolution (the dominant
// layer shape of ReActNet) on the A53-class core model as:
//   baseline   - uncompressed kernel, weights streamed from memory
//   sw-decode  - compressed kernel decoded by software into a scratch
//                buffer (the paper's 1.47x-slower configuration)
//   hw-decode  - compressed kernel streamed + decoded by the decoding
//                unit of Fig. 6, weights arriving via ldps
// and prints the cycle/stall/traffic breakdown that explains the
// paper's speedup: the unit hides the weight-fetch latency that the
// in-order core cannot.
//
//   ./examples/hwsim_demo [channels=512] [size=14]

#include <cstdlib>
#include <iostream>

#include "core/bkc.h"

int main(int argc, char** argv) {
  using namespace bkc;
  using hwsim::ConvVariant;
  const std::int64_t channels = argc > 1 ? std::atoll(argv[1]) : 512;
  const std::int64_t size = argc > 2 ? std::atoll(argv[2]) : 14;

  // Build the layer's OpRecord and its compressed stream.
  bnn::OpRecord op;
  op.name = "conv3x3";
  op.op_class = bnn::OpClass::kConv3x3;
  op.precision_bits = 1;
  op.kernel_shape = {channels, channels, 3, 3};
  op.input_shape = {channels, size, size};
  op.geometry = {1, 1};
  op.output_shape = op.geometry.output_shape(op.input_shape, op.kernel_shape);

  bnn::WeightGenerator gen(7);
  const auto dist =
      bnn::SequenceDistribution::fitted(bnn::paper_table2_targets()[6]);
  const auto kernel = gen.sample_kernel3x3(channels, channels, dist);
  const auto compression = compress::compress_kernel_pipeline(kernel, true);
  // Borrows the pipeline's code-length artifact; `compression` stays
  // alive for the whole run.
  const hwsim::StreamInfo stream = hwsim::stream_info_for(compression);

  std::cout << "Layer: " << op.kernel_shape.to_string() << " at " << size
            << "x" << size << "; kernel "
            << bits_str(static_cast<std::uint64_t>(kernel.payload_bits()))
            << " uncompressed, "
            << bits_str(compression.compressed.stream_bits)
            << " compressed (" << ratio_str(compression.compressed.ratio())
            << ")\n";
  std::cout << "Mean codeword: " << stream.mean_bits() << " bits\n\n";

  Table table({"variant", "cycles", "vs base", "load stalls", "ldps stalls",
               "DRAM accesses"});
  std::uint64_t base_cycles = 0;
  for (const auto variant : {ConvVariant::kBaseline, ConvVariant::kSwDecode,
                             ConvVariant::kHwDecode}) {
    const auto result = hwsim::simulate_binary_conv_layer(
        op, variant, variant == ConvVariant::kBaseline ? nullptr : &stream);
    if (variant == ConvVariant::kBaseline) base_cycles = result.cycles;
    table.row()
        .add(hwsim::variant_name(variant))
        .add(result.cycles)
        .add(ratio_str(static_cast<double>(base_cycles) /
                       static_cast<double>(result.cycles)))
        .add(result.load_stall_cycles)
        .add(result.ldps_stall_cycles)
        .add(result.dram_accesses);
  }
  table.print("One-layer timing (sampled rows, scaled to the full layer)");

  std::cout
      << "\nWhat to look for: the baseline's load stalls are the weight\n"
         "fetches an in-order core cannot hide; sw-decode adds a decode\n"
         "pass on top; hw-decode removes the weight loads entirely (the\n"
         "decoding unit streams and decodes in the background) and cuts\n"
         "DRAM traffic by the compression ratio.\n";
  return 0;
}
