// Full-size ReActNet walk-through: the paper's evaluation model.
//
// Builds the ImageNet-sized ReActNet-A (13 MobileNet-V1 blocks, 224x224
// input, 1000 classes) with weights calibrated to the paper's Table II
// statistics, reproduces the Table I storage breakdown, compresses the
// kernels, and measures how much the clustering pass perturbs the
// network's outputs (the paper's accuracy-neutrality claim) on a small
// batch of synthetic images.
//
//   ./examples/reactnet_inference [num_images=3] [--tiny] [--threads N]
//
// --threads N fans the image batch out across N workers (the scores
// are bit-identical to the serial run at any N). Note: full 224x224
// inference in the portable engine takes a few seconds per image.

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/bkc.h"

int main(int argc, char** argv) {
  using namespace bkc;
  // The count is positional and optional: skip it when argv[1] is a
  // flag (so `reactnet_inference --tiny` still measures 3 images).
  const int num_images =
      argc > 1 && argv[1][0] != '-' ? std::atoi(argv[1]) : 3;
  check(num_images >= 1, "reactnet_inference: num_images must be >= 1");
  const int num_threads = positive_flag_value(argc, argv, "--threads", 2);

  // Reduced spatial size keeps the example responsive while preserving
  // every channel count (the statistics that matter are per-channel).
  // --tiny shrinks the channels too, for the CTest smoke run.
  bnn::ReActNetConfig config = has_flag(argc, argv, "--tiny")
                                   ? bnn::tiny_reactnet_config(/*seed=*/42)
                                   : bnn::paper_reactnet_config(/*seed=*/42);
  config.input_size = has_flag(argc, argv, "--tiny") ? 32 : 64;

  Engine baseline(config, [] {
    EngineOptions o;
    o.clustering = false;
    return o;
  }());
  Engine clustered(config);

  // ---- Table I storage column ----
  const auto storage = baseline.model().storage();
  Table t1({"operation", "storage", "share"});
  for (const auto cls :
       {bnn::OpClass::kInputLayer, bnn::OpClass::kOutputLayer,
        bnn::OpClass::kConv1x1, bnn::OpClass::kConv3x3,
        bnn::OpClass::kOther}) {
    t1.row()
        .add(bnn::op_class_name(cls))
        .add(bits_str(storage.bits_by_class.at(cls)))
        .add(percent_str(storage.bits_fraction(cls)));
  }
  t1.print("Storage breakdown (paper Table I: 0.02 / 22.2 / 8.5 / 68 %)");

  // ---- Compression ----
  const auto& report = clustered.compress(num_threads);
  baseline.compress(num_threads);
  std::cout << "\nKernel compression: encoding "
            << ratio_str(report.mean_encoding_ratio) << ", clustering "
            << ratio_str(report.mean_clustering_ratio)
            << ", whole model " << ratio_str(report.model_ratio)
            << " (paper: ~1.2x / 1.32x / 1.2x)\n";

  // ---- Clustering accuracy proxy ----
  // Compare class scores of the exact network vs the clustered one on
  // synthetic images: top-1 agreement and relative score perturbation.
  // Both batches fan out across --threads workers; the determinism
  // guarantee makes the comparison independent of the thread count.
  bnn::WeightGenerator gen(123);
  std::vector<Tensor> images;
  for (int i = 0; i < num_images; ++i) {
    images.push_back(gen.sample_activation(baseline.model().input_shape()));
  }
  const std::vector<Tensor> exact_scores =
      baseline.classify_batch(images, num_threads);
  const std::vector<Tensor> approx_scores =
      clustered.classify_batch(images, num_threads);
  int agree = 0;
  double rel_error_sum = 0.0;
  for (int i = 0; i < num_images; ++i) {
    const Tensor& exact = exact_scores[static_cast<std::size_t>(i)];
    const Tensor& approx = approx_scores[static_cast<std::size_t>(i)];
    std::int64_t best_exact = 0;
    std::int64_t best_approx = 0;
    double diff = 0.0;
    double mag = 0.0;
    for (std::int64_t c = 0; c < exact.shape().channels; ++c) {
      if (exact.at(c, 0, 0) > exact.at(best_exact, 0, 0)) best_exact = c;
      if (approx.at(c, 0, 0) > approx.at(best_approx, 0, 0)) {
        best_approx = c;
      }
      diff += std::abs(exact.at(c, 0, 0) - approx.at(c, 0, 0));
      mag += std::abs(exact.at(c, 0, 0));
    }
    agree += best_exact == best_approx;
    rel_error_sum += diff / (mag + 1e-9);
    std::cout << "image " << i << ": top-1 exact=" << best_exact
              << " clustered=" << best_approx << " (relative score delta "
              << percent_str(diff / (mag + 1e-9)) << ")\n";
  }
  std::cout << "\nTop-1 agreement: " << agree << "/" << num_images
            << ", mean relative score delta "
            << percent_str(rel_error_sum / num_images)
            << " - the clustering perturbation the paper reports as "
               "accuracy-neutral.\n";
  return 0;
}
