// The serving layer end to end: compress two models to BKCM containers,
// stand them up in a shared ModelRegistry (each container mapped
// read-only exactly once), and drive a BatchScheduler with interleaved
// requests from two tenants. Every response is checked bit-identical to
// calling classify_batch on the registry engine directly — batching
// never changes a result — and the run ends with the per-model /
// per-tenant stats snapshot and a demonstration of admission control
// and eviction.
//
//   ./examples/serve_demo [--tiny] [--dir PATH] [--requests N]
//                         [--threads N] [--seed S]
//
// The CTest smoke target runs `serve_demo --tiny --dir <builddir>`.

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "core/bkc.h"
#include "serve/registry.h"
#include "serve/scheduler.h"

namespace {

using namespace bkc;

bool bit_identical(const Tensor& a, const Tensor& b) {
  return a.data().size_bytes() == b.data().size_bytes() &&
         std::memcmp(a.data().data(), b.data().data(),
                     a.data().size_bytes()) == 0;
}

std::string write_model(const std::string& dir, const std::string& name,
                        const bnn::ReActNetConfig& config, int threads) {
  Engine engine(config);
  engine.compress(threads);
  const std::string path = dir + "/" + name + ".bkcm";
  engine.save_compressed(path);
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const bool tiny = has_flag(argc, argv, "--tiny");
    const std::string dir =
        flag_string_value(argc, argv, "--dir", ".");
    const int num_requests =
        positive_flag_value(argc, argv, "--requests", 24);
    const int num_threads = positive_flag_value(argc, argv, "--threads", 2);
    const auto seed = static_cast<std::uint64_t>(
        positive_flag_value(argc, argv, "--seed", 42));
    std::filesystem::create_directories(dir);

    // Two models resident side by side — the registry's reason to
    // exist. Both use the tiny architecture (at different seeds) so the
    // demo stays interactive; --tiny additionally shrinks the request
    // count for the CTest smoke run.
    const int requests = tiny ? std::min(num_requests, 12) : num_requests;
    const std::string path_a = write_model(
        dir, "serve_demo_a", bnn::tiny_reactnet_config(seed), num_threads);
    const std::string path_b = write_model(
        dir, "serve_demo_b", bnn::tiny_reactnet_config(seed + 1), num_threads);

    serve::ModelRegistry registry(num_threads);
    serve::ModelHandle model_a = registry.open("model-a", path_a);
    serve::ModelHandle model_b = registry.open("model-b", path_b);
    check(registry.open("model-a", path_a) == model_a,
          "serve_demo: open-once violated — second open returned a "
          "different entry");
    std::cout << "registry: " << registry.size()
              << " models resident (shared read-only mappings)\n";

    serve::SchedulerOptions options;
    options.max_batch = 4;
    options.max_delay = std::chrono::milliseconds(5);
    options.max_queue = 256;
    options.num_threads = num_threads;
    serve::BatchScheduler scheduler(options);

    // Interleaved traffic: two tenants, two models, one future per
    // request.
    bnn::WeightGenerator gen(seed + 99);
    std::vector<Tensor> images;
    std::vector<std::future<Tensor>> futures;
    std::vector<const serve::ServedModel*> targets;
    for (int i = 0; i < requests; ++i) {
      const serve::ModelHandle& model = (i % 2 == 0) ? model_a : model_b;
      const std::string tenant = (i % 3 == 0) ? "tenant-x" : "tenant-y";
      images.push_back(
          gen.sample_activation(model->engine().model().input_shape()));
      targets.push_back(model.get());
      futures.push_back(scheduler.submit(model, tenant, images.back()));
    }

    // Collect and verify: the served result must be bit-identical to
    // the direct classify_batch path on the same engine.
    int verified = 0;
    for (int i = 0; i < requests; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const Tensor scores = futures[idx].get();
      const std::vector<Tensor> direct = targets[idx]->engine().classify_batch(
          {images[idx]}, num_threads);
      check(bit_identical(scores, direct.front()),
            "serve_demo: served scores differ from direct classify_batch");
      ++verified;
    }
    std::cout << verified << " responses verified bit-identical to the "
              << "direct classify_batch path\n";

    scheduler.stop();
    const serve::StatsSnapshot stats = scheduler.stats();
    Table table({"aggregate", "requests", "rejects", "batches", "occupancy",
                 "mean queue ms"});
    auto add_row = [&](const std::string& name, const serve::Counters& c) {
      table.row()
          .add(name)
          .add(c.requests)
          .add(c.rejects)
          .add(c.batches)
          .add(percent_str(c.batch_occupancy()))
          .add(c.mean_queue_ms(), 3);
    };
    add_row("total", stats.total);
    for (const auto& [name, counters] : stats.per_model) {
      add_row("model " + name, counters);
    }
    for (const auto& [name, counters] : stats.per_tenant) {
      add_row("tenant " + name, counters);
    }
    table.print("Serving counters");

    // Eviction: queues are drained and the demo's handles are the last
    // references; dropping them lets evict_unused() reclaim both models.
    check(registry.evict_unused() == 0,
          "serve_demo: eviction removed a model with live handles");
    model_a.reset();
    model_b.reset();
    // targets[] only borrows raw pointers, so the registry now holds
    // the sole references.
    const std::size_t evicted = registry.evict_unused();
    check(evicted == 2, "serve_demo: expected both unused models evicted");
    std::cout << "\nevicted " << evicted
              << " unused models; registry now holds " << registry.size()
              << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "serve_demo: " << e.what() << "\n";
    return 1;
  }
}
