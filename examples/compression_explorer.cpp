// Explore the clustering design space on a single block's kernel.
//
// The paper (Sec III-C) "empirically searched for some combinations of
// M and N". This example reruns that search on one calibrated 3x3
// kernel: for each (M, N, max Hamming distance), report the compression
// ratio, the number of sequences removed and the fraction of weight
// bits flipped (the accuracy proxy), so the trade-off the authors
// navigated is visible end to end.
//
//   ./examples/compression_explorer [channels=256]

#include <cstdlib>
#include <iostream>

#include "core/bkc.h"

int main(int argc, char** argv) {
  using namespace bkc;
  const std::int64_t channels = argc > 1 ? std::atoll(argv[1]) : 256;

  bnn::WeightGenerator gen(2024);
  const auto dist =
      bnn::SequenceDistribution::fitted(bnn::paper_table2_targets()[4]);
  const bnn::PackedKernel kernel =
      gen.sample_kernel3x3(channels, channels, dist);
  const auto table = compress::FrequencyTable::from_kernel(kernel);

  std::cout << "Kernel: " << channels << "x" << channels
            << "x3x3, " << table.total() << " bit sequences, "
            << table.distinct() << " distinct, entropy "
            << table.entropy_bits() << " bits/sequence\n";

  const compress::GroupedHuffmanCodec plain(table);
  std::cout << "Encoding-only ratio: "
            << ratio_str(plain.compression_ratio(table)) << "\n";

  Table sweep({"M", "N", "dist", "removed", "ratio", "flipped bits"});
  for (const std::size_t m : {32u, 64u, 128u, 256u}) {
    for (const std::size_t n : {128u, 256u, 352u, 448u}) {
      for (const int d : {1, 2}) {
        const compress::ClusteringConfig config{
            .most_common = m, .least_common = n, .max_distance = d};
        const auto result = compress::cluster_sequences(table, config);
        const auto clustered = result.apply(table);
        const compress::GroupedHuffmanCodec codec(clustered);
        sweep.row()
            .add(static_cast<std::uint64_t>(m))
            .add(static_cast<std::uint64_t>(n))
            .add(d)
            .add(result.replacements().size())
            .add(ratio_str(codec.compression_ratio(clustered)))
            .add(percent_str(result.flipped_bit_fraction(), 2));
      }
    }
  }
  sweep.print("Clustering design space (paper default: M=64, N=352, d=1)");

  std::cout << "\nReading guide: larger N removes more rare sequences and "
               "compresses harder;\nlarger d finds more substitutions but "
               "flips more weights per substitution;\nthe paper constrains "
               "d=1 to keep the introduced error low.\n";
  return 0;
}
