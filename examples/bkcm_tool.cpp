// Command-line round trip for the BKCM container format: compress a
// ReActNet to disk, inspect / verify a container, classify straight
// from compressed bits (no original weights anywhere in the load path),
// and run the paper's CPU/decoder timing comparison directly from a
// container's artifacts (no kernel is ever decoded for `speedup`).
//
//   ./examples/bkcm_tool compress [--out model.bkcm] [--tiny] [--seed S]
//                                 [--threads N] [--no-clustering]
//                                 [--codec <name>]
//   ./examples/bkcm_tool info     [--file model.bkcm]
//   ./examples/bkcm_tool verify   [--file model.bkcm] [--threads N]
//   ./examples/bkcm_tool classify [--file model.bkcm] [--images N]
//                                 [--threads N]
//   ./examples/bkcm_tool speedup  [--file model.bkcm] [--sampled]
//                                 [--sample-seed S] [--clusters K]
//                                 [--threads N]
//
// The CTest smoke targets chain `compress --tiny` with `classify` and
// `speedup` on the same file, proving the save -> load -> inference and
// the save -> simulate paths end to end.

#include <charconv>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "compress/block_codec.h"
#include "core/bkc.h"

namespace {

using namespace bkc;

/// A seed is a full uint64 (0 is valid), unlike the thread/image counts
/// positive_flag_value covers.
std::uint64_t seed_flag(int argc, char** argv, const char* flag = "--seed",
                        std::uint64_t fallback = 42) {
  const std::string text =
      flag_string_value(argc, argv, flag, std::to_string(fallback));
  std::uint64_t seed = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), seed);
  check(ec == std::errc() && ptr == text.data() + text.size(),
        std::string(flag) + ": malformed unsigned integer '" + text + "'");
  return seed;
}

int run_compress(int argc, char** argv) {
  const std::string path(
      flag_string_value(argc, argv, "--out", "model.bkcm"));
  const int num_threads = positive_flag_value(argc, argv, "--threads", 2);
  const std::uint64_t seed = seed_flag(argc, argv);
  bnn::ReActNetConfig config = has_flag(argc, argv, "--tiny")
                                   ? bnn::tiny_reactnet_config(seed)
                                   : bnn::paper_reactnet_config(seed);
  EngineOptions options;
  options.clustering = !has_flag(argc, argv, "--no-clustering");
  // Any name the block-codec registry knows; block_codec_id rejects
  // unknown names with the registered list in the message.
  options.codec_id = compress::block_codec_id(
      flag_string_value(argc, argv, "--codec", "grouped-huffman"));

  Engine engine(config, options);
  const auto& report = engine.compress(num_threads);
  engine.save_compressed(path);

  std::error_code ec;
  const std::uintmax_t file_size = std::filesystem::file_size(path, ec);
  check(!ec, "bkcm_tool: cannot stat " + path);
  std::cout << "wrote " << path << ": " << file_size << " bytes, "
            << report.blocks.size() << " blocks, kernel ratio "
            << ratio_str(options.clustering ? report.mean_clustering_ratio
                                            : report.mean_encoding_ratio)
            << ", whole model " << ratio_str(report.model_ratio) << "\n";
  return 0;
}

int run_info(int argc, char** argv) {
  const std::string path(
      flag_string_value(argc, argv, "--file", "model.bkcm"));
  const auto file = read_file_bytes(path);
  const compress::BkcmInfo info = compress::inspect_bkcm(file);
  std::cout << path << ": BKCM version " << info.version << ", "
            << info.file_size << " bytes, clustering "
            << ((info.flags & compress::kBkcmFlagClustering) ? "on" : "off")
            << "\n";
  Table sections({"section", "offset", "bytes", "crc32"});
  for (const auto& section : info.sections) {
    char crc[16];
    std::snprintf(crc, sizeof(crc), "%08x", section.crc);
    sections.row()
        .add(section.name)
        .add(std::to_string(section.offset))
        .add(std::to_string(section.length))
        .add(crc);
  }
  sections.print("Section table");

  const compress::BkcmContents contents = compress::read_bkcm(file, info);
  const auto& config = contents.model_config;
  std::cout << "\nmodel: " << config.blocks.size() << " blocks, input "
            << config.input_channels << "x" << config.input_size << "x"
            << config.input_size << ", " << config.num_classes
            << " classes, seed " << config.seed << "\n";

  // Per-block codec dispatch summary (v1 blocks are implicitly
  // grouped-huffman; the reader already gated every id against the
  // registry, so codec_for cannot fail here).
  Table codecs({"block", "codec id", "codec", "sequences", "stream bits"});
  for (std::size_t b = 0; b < contents.streams.size(); ++b) {
    const compress::KernelCompression& stream = contents.streams[b];
    codecs.row()
        .add(std::to_string(b))
        .add(std::to_string(stream.codec_id))
        .add(std::string(compress::codec_for(stream.codec_id).name()))
        .add(std::to_string(stream.compressed.num_sequences()))
        .add(std::to_string(stream.compressed.stream_bits));
  }
  codecs.print("Per-block codecs");
  std::cout << "report: encoding " << ratio_str(contents.report.mean_encoding_ratio)
            << ", clustering " << ratio_str(contents.report.mean_clustering_ratio)
            << ", whole model " << ratio_str(contents.report.model_ratio)
            << " (" << bits_str(contents.report.model_bits) << " total)\n";
  return 0;
}

int run_verify(int argc, char** argv) {
  // The original weights are not stored, so verification means
  // cross-checking the container's INDEPENDENT artifacts against each
  // other (not decode-vs-what-decode-installed, which is circular).
  // What "consistent" means is codec-specific — the grouped-huffman
  // backend checks the decoded stream and the stored remap against the
  // frequency tables, mst-delta checks its dictionary instead — so each
  // block dispatches to its codec's verify_artifact. The reader already
  // rejected any codec id outside the registry (the plausibility gate:
  // a CRC-valid hostile v2 file cannot select an unregistered codec).
  // Afterwards a full Engine::load_compressed exercises the
  // header/CRC/shape gates and the public decode path end to end.
  const std::string path(
      flag_string_value(argc, argv, "--file", "model.bkcm"));
  const int num_threads = positive_flag_value(argc, argv, "--threads", 2);

  const auto file = read_file_bytes(path);
  const compress::BkcmContents contents = compress::read_bkcm(file);
  for (std::size_t b = 0; b < contents.streams.size(); ++b) {
    const compress::KernelCompression& stream = contents.streams[b];
    compress::codec_for(stream.codec_id).verify_artifact(stream, b);
  }

  // End-to-end load gate (CRC, shape checks, decode-and-install through
  // the public API). Re-reading the file is deliberate: this is a
  // verification tool, not a hot path. verify_streams() would be
  // tautological here — load_compressed installed the kernels from
  // these very streams — so it is not called.
  const Engine engine = Engine::load_compressed(path, num_threads);
  std::cout << path << ": verified (" << engine.report().blocks.size()
            << " blocks; every stream passed its codec's artifact "
               "cross-checks, container loads cleanly)\n";
  return 0;
}

int run_classify(int argc, char** argv) {
  const std::string path(
      flag_string_value(argc, argv, "--file", "model.bkcm"));
  const int num_threads = positive_flag_value(argc, argv, "--threads", 2);
  const int num_images = positive_flag_value(argc, argv, "--images", 2);

  const Engine engine = Engine::load_compressed(path, num_threads);
  bnn::WeightGenerator gen(123);
  std::vector<Tensor> images;
  for (int i = 0; i < num_images; ++i) {
    images.push_back(gen.sample_activation(engine.model().input_shape()));
  }
  const std::vector<Tensor> scores =
      engine.classify_batch(images, num_threads);
  for (int i = 0; i < num_images; ++i) {
    const Tensor& score = scores[static_cast<std::size_t>(i)];
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < score.shape().channels; ++c) {
      if (score.at(c, 0, 0) > score.at(best, 0, 0)) best = c;
    }
    std::cout << "image " << i << ": top-1 class " << best << " (score "
              << score.at(best, 0, 0) << ")\n";
  }
  std::cout << num_images << " image(s) classified from compressed bits ("
            << path << ")\n";
  return 0;
}

int run_speedup(int argc, char** argv) {
  // The artifact-view path end to end: the container is memory-mapped,
  // its 'BLKS' section becomes a CompressedModelView (stream spans
  // point into the mapping, code lengths come from a prefix scan), and
  // the timing model consumes that view. No compression pass runs, no
  // kernel is decoded and no weight is sampled — the op-record layout
  // comes from the configuration alone (bnn::op_records_for).
  const std::string path(
      flag_string_value(argc, argv, "--file", "model.bkcm"));
  const bool sampled = has_flag(argc, argv, "--sampled");

  const compress::MappedBkcm mapped = compress::MappedBkcm::open(path);
  const std::vector<bnn::OpRecord> ops =
      bnn::op_records_for(mapped.model_config());

  hwsim::SpeedupReport report;
  if (sampled) {
    // BarrierPoint-style sampling (hwsim/sampled.h): only each phase
    // cluster's representative block is simulated; the rest
    // extrapolate. Baseline cycles stay exact either way.
    hwsim::SamplingConfig config;
    config.seed = seed_flag(argc, argv, "--sample-seed",
                            hwsim::SamplingConfig{}.seed);
    config.max_clusters_per_group =
        positive_flag_value(argc, argv, "--clusters",
                            config.max_clusters_per_group);
    config.num_threads = positive_flag_value(argc, argv, "--threads", 2);
    hwsim::SampledSpeedupReport sampled_report =
        hwsim::compare_model_sampled(mapped.view(ops), config);
    const hwsim::SamplingSummary& summary = sampled_report.summary;
    std::cout << path << ": sampled simulation — " << summary.simulated_blocks
              << " of " << summary.num_blocks << " blocks simulated ("
              << summary.num_clusters << " clusters over "
              << summary.num_geometry_groups
              << " geometry groups; max stream-bits skew "
              << summary.max_stream_bits_skew << ")\n";
    report = std::move(sampled_report.report);
  } else {
    report = hwsim::compare_model(mapped.view(ops));
  }

  std::cout << path << ": " << mapped.blocks().size()
            << " blocks, " << (sampled ? "sampled" : "exact")
            << " timing from mapped streams (clustering "
            << (mapped.clustering() ? "on" : "off") << ")\n";
  Table table({"layer", "baseline kcycles", "sw-decode kcycles",
               "hw-decode kcycles", "sw slowdown", "hw speedup"});
  for (const auto& layer : report.conv3x3) {
    table.row()
        .add(layer.name)
        .add(layer.baseline_cycles / 1000)
        .add(layer.sw_cycles / 1000)
        .add(layer.hw_cycles / 1000)
        .add(ratio_str(layer.sw_slowdown()))
        .add(ratio_str(layer.hw_speedup()));
  }
  table.print("Per-layer timing of the 3x3 binary convolutions");
  std::cout << "\nwhole model: sw-decode slowdown "
            << ratio_str(report.model_sw_slowdown())
            << ", hw-decode speedup "
            << ratio_str(report.model_hw_speedup())
            << " (paper Sec VI: 1.47x slower / 1.35x faster)\n";
  return 0;
}

int usage() {
  std::cerr << "usage: bkcm_tool <compress|info|verify|classify|speedup> "
               "[--out|--file <path>] [--tiny] [--seed S] [--threads N] "
               "[--images N] [--no-clustering] [--codec <name>] "
               "[--sampled] [--sample-seed S] [--clusters K]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string_view command = argv[1];
  try {
    if (command == "compress") return run_compress(argc, argv);
    if (command == "info") return run_info(argc, argv);
    if (command == "verify") return run_verify(argc, argv);
    if (command == "classify") return run_classify(argc, argv);
    if (command == "speedup") return run_speedup(argc, argv);
  } catch (const std::exception& e) {
    // CheckError (bad flags, corrupt/truncated container) and anything
    // unexpected: report, don't terminate.
    std::cerr << "bkcm_tool: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
