// Quickstart: compress a BNN's 3x3 kernels and run inference from them.
//
// Walks the whole public API in ~60 lines: build a (reduced) ReActNet
// with calibrated synthetic weights, compress its binary kernels with
// the paper's simplified Huffman tree + clustering, verify the streams
// decode bit-exactly, and classify a synthetic image.
//
//   ./examples/quickstart

#include <iostream>
#include <vector>

#include "core/bkc.h"

int main() {
  using namespace bkc;

  // A reduced ReActNet (32x32 input, width/8 channels, 10 classes) so
  // the example runs in well under a second. Use
  // bnn::paper_reactnet_config() for the full ImageNet-sized model.
  Engine engine(bnn::tiny_reactnet_config(/*seed=*/42));

  std::cout << "Model: " << engine.model().num_blocks()
            << " ReActNet basic blocks, input "
            << engine.model().input_shape().to_string() << "\n";
  std::cout << "Total parameter storage: "
            << bits_str(engine.model().storage().total_bits) << "\n\n";

  // Compress every 3x3 binary kernel (Sec IV-A pipeline: frequency
  // analysis -> clustering -> simplified Huffman tree -> stream).
  const compress::ModelReport& report = engine.compress();

  Table table({"block", "sequences", "encoding", "clustering", "flipped"});
  for (const auto& block : report.blocks) {
    table.row()
        .add(block.block_name)
        .add(block.num_sequences)
        .add(ratio_str(block.encoding_ratio))
        .add(ratio_str(block.clustering_ratio))
        .add(percent_str(block.flipped_bit_fraction, 2));
  }
  table.print("Per-block compression (quickstart model)");

  std::cout << "\nMean encoding ratio:   "
            << ratio_str(report.mean_encoding_ratio) << "\n";
  std::cout << "Mean clustering ratio: "
            << ratio_str(report.mean_clustering_ratio) << "\n";
  std::cout << "Whole-model ratio:     " << ratio_str(report.model_ratio)
            << "\n\n";

  // The compressed streams must reproduce the deployed kernels exactly.
  std::cout << "Stream verification: "
            << (engine.verify_streams() ? "bit-exact" : "MISMATCH")
            << "\n";

  // Classify a small batch of synthetic images with the compressed
  // (clustered) network. classify_batch fans independent images out
  // across worker threads; scores are bit-identical to classifying each
  // image serially, whatever the thread count.
  bnn::WeightGenerator input_gen(7);
  std::vector<Tensor> images;
  for (int i = 0; i < 4; ++i) {
    images.push_back(
        input_gen.sample_activation(engine.model().input_shape()));
  }
  const std::vector<Tensor> batch_scores =
      engine.classify_batch(images, /*num_threads=*/4);
  for (std::size_t i = 0; i < batch_scores.size(); ++i) {
    const Tensor& scores = batch_scores[i];
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < scores.shape().channels; ++c) {
      if (scores.at(c, 0, 0) > scores.at(best, 0, 0)) best = c;
    }
    std::cout << "Predicted class for synthetic image " << i << ": " << best
              << " (score " << scores.at(best, 0, 0) << ")\n";
  }
  return 0;
}
