#pragma once
// Bounds-checked byte-level I/O for on-disk artifacts (the BKCM model
// container, compress/serialize.h).
//
// Everything is explicit little-endian regardless of host byte order, so
// a container written on one machine loads on any other. ByteWriter is
// an append-only in-memory sink (sections are staged in memory and
// assembled into the final file image, which is how the section table
// learns its offsets before anything touches the filesystem). ByteReader
// walks a borrowed buffer with every read bounds-checked: a truncated or
// corrupt file fails with CheckError carrying the reader's context
// string (e.g. the section name) and the offending offset — never
// undefined behaviour.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.h"

namespace bkc {

/// Append-only little-endian byte sink.
class ByteWriter {
 public:
  ByteWriter() = default;

  void write_u8(std::uint8_t value);
  void write_u16(std::uint16_t value);
  void write_u32(std::uint32_t value);
  void write_u64(std::uint64_t value);
  /// Two's-complement via the u64 bit pattern.
  void write_i64(std::int64_t value);
  /// IEEE-754 bit pattern via u64 — doubles round-trip bit-exactly.
  void write_f64(double value);
  /// LEB128 (7 bits per byte, high bit = continue). 1 byte for values
  /// < 128; frequency counts and sizes are almost always small.
  void write_varint(std::uint64_t value);
  void write_bytes(std::span<const std::uint8_t> bytes);
  /// varint length + raw bytes.
  void write_string(std::string_view text);

  std::size_t size() const { return buffer_.size(); }
  std::span<const std::uint8_t> bytes() const { return buffer_; }
  /// Finish and take the buffer; the writer is left empty.
  std::vector<std::uint8_t> take();

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Sequential bounds-checked little-endian reader over a borrowed
/// buffer (which must outlive the reader). Every read validates against
/// the buffer end first and fails with CheckError("<context>: ...");
/// `context` names what is being parsed so corruption reports point at
/// the right part of the file.
class ByteReader {
 public:
  ByteReader(std::span<const std::uint8_t> bytes, std::string context);

  std::uint8_t read_u8();
  std::uint16_t read_u16();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int64_t read_i64();
  double read_f64();
  /// LEB128; rejects encodings longer than 10 bytes or overflowing 64
  /// bits.
  std::uint64_t read_varint();
  /// Copy out `count` raw bytes.
  std::vector<std::uint8_t> read_bytes(std::size_t count);
  /// Borrow `count` raw bytes without copying: a subspan of the SAME
  /// underlying buffer, which must outlive every use of the result.
  /// This is the zero-copy path for bulk payloads (kernel bitstreams)
  /// when the buffer is a memory-mapped file (util/mmap_file.h).
  std::span<const std::uint8_t> read_span(std::size_t count);
  /// varint length + raw bytes. `max_length` guards against a corrupt
  /// length field requesting an absurd allocation.
  std::string read_string(std::size_t max_length = 4096);

  /// A reader over bytes [offset, offset + length) of the SAME buffer,
  /// with its own context; used to parse one section of a container.
  /// Bounds-checked against this reader's full buffer.
  ByteReader sub(std::size_t offset, std::size_t length,
                 std::string context) const;

  std::size_t position() const { return position_; }
  std::size_t remaining() const { return bytes_.size() - position_; }
  const std::string& context() const { return context_; }

  /// Fail unless every byte was consumed — trailing garbage in a
  /// section is corruption, not padding.
  void expect_exhausted() const;

 private:
  /// Fail unless `count` more bytes are available.
  void require(std::size_t count) const;

  std::span<const std::uint8_t> bytes_;
  std::string context_;
  std::size_t position_ = 0;
};

/// CRC-32 (IEEE 802.3, the zlib polynomial) — the per-section checksum
/// of the BKCM container.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// Read a whole file into memory. CheckError (naming the path) when the
/// file cannot be opened or read.
std::vector<std::uint8_t> read_file_bytes(const std::string& path);

/// Write a buffer to a file, replacing any existing content atomically
/// with respect to process failures: the bytes are staged into a
/// uniquely named sibling temp file and renamed over the target, so a
/// crash or disk-full mid-write never destroys an existing good file
/// and concurrent saves never interleave. (Power-loss durability —
/// fsync before rename — is deliberately out of scope.) CheckError
/// (naming the path) when the file cannot be created, written or moved
/// into place.
void write_file_bytes(const std::string& path,
                      std::span<const std::uint8_t> bytes);

}  // namespace bkc
