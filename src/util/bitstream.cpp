#include "util/bitstream.h"

#include "util/check.h"

namespace bkc {

void BitWriter::write_bits(std::uint64_t value, unsigned count) {
  check(count <= 64, "write_bits: count must be <= 64");
  if (count < 64) {
    check((value >> count) == 0,
          "write_bits: value has bits set above `count`");
  }
  // Emit MSB-first, filling partial bytes from the high end.
  for (unsigned emitted = 0; emitted < count;) {
    const unsigned bit_in_byte = bit_size_ % 8;
    if (bit_in_byte == 0) buffer_.push_back(0);
    const unsigned room = 8 - bit_in_byte;
    const unsigned todo = count - emitted;
    const unsigned chunk = room < todo ? room : todo;
    // The next `chunk` bits of `value`, counting from its MSB side.
    const std::uint64_t shifted = value >> (todo - chunk);
    const auto bits =
        static_cast<std::uint8_t>(shifted & ((1ULL << chunk) - 1));
    buffer_.back() |= static_cast<std::uint8_t>(bits << (room - chunk));
    bit_size_ += chunk;
    emitted += chunk;
  }
}

void BitWriter::write_bit(bool bit) { write_bits(bit ? 1 : 0, 1); }

std::vector<std::uint8_t> BitWriter::take() {
  bit_size_ = 0;
  return std::move(buffer_);
}

BitReader::BitReader(std::span<const std::uint8_t> bytes,
                     std::size_t bit_count)
    : bytes_(bytes), bit_count_(bit_count) {
  check(bit_count <= bytes.size() * 8,
        "BitReader: bit_count exceeds the buffer");
}

BitReader::BitReader(std::span<const std::uint8_t> bytes)
    : BitReader(bytes, bytes.size() * 8) {}

std::uint64_t BitReader::read_bits(unsigned count) {
  check(count <= 64, "read_bits: count must be <= 64");
  check(count <= remaining(), "read_bits: past end of stream");
  std::uint64_t result = 0;
  unsigned taken = 0;
  while (taken < count) {
    const std::size_t byte_index = position_ / 8;
    const unsigned bit_in_byte = position_ % 8;
    const unsigned avail = 8 - bit_in_byte;
    const unsigned todo = count - taken;
    const unsigned chunk = avail < todo ? avail : todo;
    const std::uint8_t byte = bytes_[byte_index];
    const std::uint8_t bits = static_cast<std::uint8_t>(
        (byte >> (avail - chunk)) & ((1u << chunk) - 1));
    result = (result << chunk) | bits;
    position_ += chunk;
    taken += chunk;
  }
  return result;
}

bool BitReader::read_bit() { return read_bits(1) != 0; }

std::uint64_t BitReader::peek_bits(unsigned count) const {
  check(count <= 64, "peek_bits: count must be <= 64");
  BitReader probe = *this;
  const std::size_t avail = probe.remaining();
  if (avail >= count) return probe.read_bits(count);
  // Zero-fill past the end, mirroring a hardware shifter draining its
  // input buffer.
  const auto head = probe.read_bits(static_cast<unsigned>(avail));
  return head << (count - avail);
}

void BitReader::skip_bits(std::size_t count) {
  check(count <= remaining(), "skip_bits: past end of stream");
  position_ += count;
}

}  // namespace bkc
