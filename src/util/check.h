#pragma once
// Runtime invariant checking for the bkc library.
//
// Following the C++ Core Guidelines (I.6/E.12), preconditions are checked
// at API boundaries and violations are reported with exceptions carrying a
// useful message. `check()` is for conditions that depend on caller input;
// unreachable internal states use `unreachable()`.

#include <source_location>
#include <stdexcept>
#include <string>

namespace bkc {

/// Thrown when a precondition or invariant documented in a public API is
/// violated by the caller (bad shape, out-of-range index, malformed stream).
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Verify a caller-facing precondition. Throws CheckError with the message
/// and source location on failure. Intentionally not compiled out in
/// release builds: all bkc hot loops hoist their checks outside the loop,
/// so the cost is negligible while the diagnostics stay available.
inline void check(bool condition, const std::string& message,
                  std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw CheckError(std::string(loc.file_name()) + ":" +
                     std::to_string(loc.line()) + ": " + message);
  }
}

/// Literal-message overload: the std::string overload materializes its
/// message eagerly (a heap allocation per call even when the condition
/// holds), which both costs time in per-element accessors and breaks the
/// zero-allocation contract of the arena-backed inference path. Call
/// sites passing a string literal bind here instead and allocate only on
/// failure.
inline void check(bool condition, const char* message,
                  std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw CheckError(std::string(loc.file_name()) + ":" +
                     std::to_string(loc.line()) + ": " + message);
  }
}

/// Report an internal state that should be impossible. Used instead of
/// assert(false) so the failure is diagnosable in release builds too.
[[noreturn]] inline void unreachable(
    const std::string& message,
    std::source_location loc = std::source_location::current()) {
  throw std::logic_error(std::string(loc.file_name()) + ":" +
                         std::to_string(loc.line()) +
                         ": unreachable: " + message);
}

}  // namespace bkc
