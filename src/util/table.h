#pragma once
// ASCII table rendering for the benchmark harnesses.
//
// Every bench binary regenerates one of the paper's tables/figures; this
// printer produces aligned, monospace tables so the bench output can be
// compared side by side with the paper (EXPERIMENTS.md records both).

#include <string>
#include <vector>

namespace bkc {

/// Column-aligned ASCII table. Cells are strings; numeric helpers format
/// with fixed precision so table rows line up.
class Table {
 public:
  /// Create a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Start a new row. Cells are appended with add(); missing trailing
  /// cells render empty.
  Table& row();

  /// Append a cell to the current row. Precondition: row() was called.
  Table& add(std::string cell);
  Table& add(const char* cell);
  /// Fixed-precision numeric cell (default 2 decimal places).
  Table& add(double value, int precision = 2);
  Table& add(std::int64_t value);
  Table& add(std::uint64_t value);
  Table& add(int value);

  /// Render with a header rule and column padding.
  std::string to_string() const;

  /// Render and write to stdout with a title line above.
  void print(const std::string& title) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helper: "1.32x"-style ratio string.
std::string ratio_str(double value, int precision = 2);

/// Format helper: percentage with one decimal, e.g. "46.0%".
std::string percent_str(double fraction, int precision = 1);

/// Format helper: human-readable bit count, e.g. "25.11 Mbit".
std::string bits_str(std::uint64_t bits);

}  // namespace bkc
