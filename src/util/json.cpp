#include "util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace bkc::json {

std::string quoted(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
        break;
    }
  }
  out.push_back('"');
  return out;
}

std::string number(double v, NonFinitePolicy policy) {
  if (!std::isfinite(v)) {
    check(policy == NonFinitePolicy::kNull,
          "json: non-finite number (" + std::to_string(v) +
              ") under the kCheck policy");
    return "null";
  }
  // Shortest round-trip form: locale-independent, and never fewer
  // correct digits than max_digits10 needs.
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  check(ec == std::errc(), "json: number formatting failed");
  return std::string(buf, ptr);
}

Writer::Writer(NonFinitePolicy policy) : policy_(policy) {}

void Writer::indent() {
  out_.push_back('\n');
  out_.append(stack_.size() * 2, ' ');
}

void Writer::begin_value() {
  check(!done_, "json::Writer: document already complete");
  if (stack_.empty()) {
    check(!have_key_, "json::Writer: dangling key");  // unreachable
  } else if (stack_.back() == Frame::kObject) {
    check(have_key_, "json::Writer: object member needs key() first");
    have_key_ = false;
    return;  // key() already wrote the separator and indent
  } else {
    check(!have_key_, "json::Writer: key() inside an array");
    if (!first_in_frame_) out_.push_back(',');
    indent();
  }
  first_in_frame_ = false;
}

Writer& Writer::key(std::string_view name) {
  check(!done_, "json::Writer: document already complete");
  check(!stack_.empty() && stack_.back() == Frame::kObject,
        "json::Writer: key() outside an object");
  check(!have_key_, "json::Writer: key() twice without a value");
  if (!first_in_frame_) out_.push_back(',');
  indent();
  out_ += quoted(name);
  out_ += ": ";
  have_key_ = true;
  first_in_frame_ = false;
  return *this;
}

void Writer::open(Frame frame, char bracket) {
  begin_value();
  out_.push_back(bracket);
  stack_.push_back(frame);
  first_in_frame_ = true;
}

void Writer::close(Frame frame, char bracket) {
  check(!stack_.empty() && stack_.back() == frame,
        "json::Writer: mismatched container close");
  check(!have_key_, "json::Writer: key without value at container close");
  const bool empty = first_in_frame_;
  stack_.pop_back();
  if (!empty) indent();
  out_.push_back(bracket);
  first_in_frame_ = false;
  if (stack_.empty()) done_ = true;
}

Writer& Writer::begin_object() {
  open(Frame::kObject, '{');
  return *this;
}

Writer& Writer::end_object() {
  close(Frame::kObject, '}');
  return *this;
}

Writer& Writer::begin_array() {
  open(Frame::kArray, '[');
  return *this;
}

Writer& Writer::end_array() {
  close(Frame::kArray, ']');
  return *this;
}

Writer& Writer::value(std::string_view text) {
  begin_value();
  out_ += quoted(text);
  if (stack_.empty()) done_ = true;
  return *this;
}

Writer& Writer::value(const char* text) {
  return value(std::string_view(text));
}

Writer& Writer::value(double v) {
  begin_value();
  out_ += number(v, policy_);
  if (stack_.empty()) done_ = true;
  return *this;
}

Writer& Writer::value(std::int64_t v) {
  begin_value();
  out_ += std::to_string(v);
  if (stack_.empty()) done_ = true;
  return *this;
}

Writer& Writer::value(std::uint64_t v) {
  begin_value();
  out_ += std::to_string(v);
  if (stack_.empty()) done_ = true;
  return *this;
}

Writer& Writer::value(int v) { return value(static_cast<std::int64_t>(v)); }

Writer& Writer::value(bool v) {
  begin_value();
  out_ += v ? "true" : "false";
  if (stack_.empty()) done_ = true;
  return *this;
}

Writer& Writer::null() {
  begin_value();
  out_ += "null";
  if (stack_.empty()) done_ = true;
  return *this;
}

std::string Writer::str() const {
  check(done_ && stack_.empty(),
        "json::Writer: document incomplete (open containers or no value)");
  return out_ + "\n";
}

}  // namespace bkc::json
