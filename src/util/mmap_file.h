#pragma once
// Read-only memory-mapped files for the zero-copy container load path.
//
// MmapFile::open maps a whole file and exposes it as a byte span; the
// mapping (and therefore every span or ByteReader derived from it)
// stays valid until the object is destroyed. On POSIX this is a real
// mmap — opening a multi-gigabyte BKCM container costs no read() and
// no heap copy, and the kernel streams are decoded (or, for the hwsim
// view, merely borrowed) straight out of the page cache. On platforms
// without mmap the class falls back to a buffered read with the same
// interface and lifetime rules.
//
// Failure (missing file, unreadable file) is a CheckError naming the
// path, matching read_file_bytes(). An empty file maps to an empty
// span, not an error.
//
// Known limitation shared by every mmap consumer: if another process
// TRUNCATES the file while it is mapped, touching pages past the new
// EOF raises SIGBUS — no parser check can turn that into a CheckError.
// This project's own writers are immune (write_file_bytes stages into a
// temp file and renames over the target, so an existing mapping keeps
// its old inode), but a reader mapping a file that other tooling
// rewrites in place should copy it first (read_file_bytes) instead.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace bkc {

/// Move-only owner of one read-only file mapping.
class MmapFile {
 public:
  /// An empty, unmapped instance (bytes() is an empty span).
  MmapFile() = default;

  /// Map `path` read-only. CheckError (naming the path) when the file
  /// cannot be opened, stat'ed or mapped.
  static MmapFile open(const std::string& path);

  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// The mapped file content. Valid for the lifetime of this object;
  /// moving the object keeps the span's addresses valid (the mapping
  /// itself never moves).
  std::span<const std::uint8_t> bytes() const {
    return {data_, size_};
  }
  std::size_t size() const { return size_; }

 private:
  void release() noexcept;

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  /// True when `data_` points at an mmap'ed region that must be
  /// munmap'ed (false for the empty case and the buffered fallback).
  bool mapped_ = false;
  /// Buffered fallback storage for platforms without mmap.
  std::vector<std::uint8_t> fallback_;
};

}  // namespace bkc
