#pragma once
// Compile-time dispatch macros - the Marlin `static_switch.h` idiom.
//
// Each macro turns one runtime value into a `constexpr` constant inside
// an immediately-invoked lambda, so the hot loop it wraps is
// monomorphized: the compiler sees a compile-time node count / word
// count / flag and can fully unroll, hoist and vectorize instead of
// branching per symbol or per word. Usage:
//
//   return BKC_NUM_NODES_SWITCH(config.num_nodes(), kNodes, [&] {
//     return decode_stream<kNodes>(reader, count);   // kNodes constexpr
//   });
//
// Values outside the dedicated set fall through to a 0 ("stay runtime
// generic") instantiation rather than failing: every switch must keep
// the full domain of its runtime argument working, just without the
// monomorphization win.

#define BKC_BOOL_SWITCH(cond, CONST_NAME, ...)  \
  [&] {                                         \
    if (cond) {                                 \
      constexpr bool CONST_NAME = true;         \
      return __VA_ARGS__();                     \
    } else {                                    \
      constexpr bool CONST_NAME = false;        \
      return __VA_ARGS__();                     \
    }                                           \
  }()

// Grouped-Huffman tree node counts. 1..4 get dedicated instantiations
// (1 is the fixed-width degenerate tree, 4 is the paper's config; the
// test matrix lives in between); anything else decodes through the
// generic 0 instantiation (GroupedTreeConfig allows up to 14 nodes).
#define BKC_NUM_NODES_SWITCH(num_nodes, CONST_NAME, ...) \
  [&] {                                                  \
    switch (num_nodes) {                                 \
      case 1: {                                          \
        constexpr int CONST_NAME = 1;                    \
        return __VA_ARGS__();                            \
      }                                                  \
      case 2: {                                          \
        constexpr int CONST_NAME = 2;                    \
        return __VA_ARGS__();                            \
      }                                                  \
      case 3: {                                          \
        constexpr int CONST_NAME = 3;                    \
        return __VA_ARGS__();                            \
      }                                                  \
      case 4: {                                          \
        constexpr int CONST_NAME = 4;                    \
        return __VA_ARGS__();                            \
      }                                                  \
      default: {                                         \
        constexpr int CONST_NAME = 0;                    \
        return __VA_ARGS__();                            \
      }                                                  \
    }                                                    \
  }()

// Packed words per channel group (bnn::words_per_group). 1..4 covers
// every channel count up to 256 - all of ReActNet-A; wider models take
// the generic instantiation.
#define BKC_WORDS_SWITCH(words, CONST_NAME, ...) \
  [&] {                                          \
    switch (words) {                             \
      case 1: {                                  \
        constexpr int CONST_NAME = 1;            \
        return __VA_ARGS__();                    \
      }                                          \
      case 2: {                                  \
        constexpr int CONST_NAME = 2;            \
        return __VA_ARGS__();                    \
      }                                          \
      case 3: {                                  \
        constexpr int CONST_NAME = 3;            \
        return __VA_ARGS__();                    \
      }                                          \
      case 4: {                                  \
        constexpr int CONST_NAME = 4;            \
        return __VA_ARGS__();                    \
      }                                          \
      default: {                                 \
        constexpr int CONST_NAME = 0;            \
        return __VA_ARGS__();                    \
      }                                          \
    }                                            \
  }()
