#include "util/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace bkc::simd {

namespace {

// Depth of nested ScopedForceScalar regions. Acquire/release so a force
// established before a parallel_for fan-out is visible to the workers
// (which additionally synchronize through the pool's run barrier).
std::atomic<int> g_force_scalar_depth{0};

// Unused (but kept compiled) under BKC_DISABLE_SIMD: scalar_forced()
// short-circuits to true there.
[[maybe_unused]] bool env_force_scalar() {
  // Read once: the override is a process-level knob, not something that
  // toggles mid-run (tests use ScopedForceScalar for that).
  static const bool forced = [] {
    const char* value = std::getenv("BKC_FORCE_SCALAR");
    return value != nullptr && *value != '\0' && std::strcmp(value, "0") != 0;
  }();
  return forced;
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool cpu_supports_avx2() {
#if defined(BKC_DISABLE_SIMD)
  return false;
#elif (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported;
#else
  return false;
#endif
}

bool scalar_forced() {
#if defined(BKC_DISABLE_SIMD)
  // No fast path exists in this build; the env and scoped overrides are
  // vacuously honored.
  return true;
#else
  return env_force_scalar() ||
         g_force_scalar_depth.load(std::memory_order_acquire) > 0;
#endif
}

ScopedForceScalar::ScopedForceScalar() {
  g_force_scalar_depth.fetch_add(1, std::memory_order_acq_rel);
}

ScopedForceScalar::~ScopedForceScalar() {
  g_force_scalar_depth.fetch_sub(1, std::memory_order_acq_rel);
}

}  // namespace bkc::simd
