#pragma once
// Deterministic pseudo-random number generation.
//
// Everything in this repository that involves randomness (synthetic
// weights, synthetic activations, property-test inputs) flows through
// these generators so that every experiment is bit-reproducible from a
// seed. We use xoshiro256** (Blackman & Vigna) seeded via splitmix64,
// which is the recommended seeding procedure for the xoshiro family.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace bkc {

/// splitmix64 step: used to expand a single 64-bit seed into a full
/// xoshiro state, and handy on its own as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator so
/// it can also drive <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Construct from a 64-bit seed; equal seeds yield equal streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64 random bits.
  std::uint64_t operator()();

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform();

  /// Standard normal variate (Box-Muller; caches the second value).
  double normal();

  /// Bernoulli draw with probability p of returning true.
  bool chance(double p);

  /// Pick an index in [0, weights.size()) proportionally to weights.
  /// Precondition: weights non-empty, all >= 0, sum > 0.
  std::size_t weighted_pick(std::span<const double> weights);

  /// Fisher-Yates shuffle of an index permutation [0, n).
  std::vector<std::uint32_t> permutation(std::size_t n);

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Sampler for a fixed discrete distribution using the alias method
/// (Walker / Vose). Construction is O(n); each draw is O(1). Used to
/// sample millions of 9-bit kernel patterns from a fitted distribution.
class AliasSampler {
 public:
  /// Build from (not necessarily normalised) non-negative weights.
  /// Precondition: weights non-empty, sum > 0.
  explicit AliasSampler(std::span<const double> weights);

  /// Draw an index distributed according to the construction weights.
  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace bkc
