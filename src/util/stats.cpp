#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace bkc {

double mean(std::span<const double> values) {
  check(!values.empty(), "mean of empty span");
  const double sum = std::accumulate(values.begin(), values.end(), 0.0);
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  check(!values.empty(), "stddev of empty span");
  const double m = mean(values);
  double accum = 0.0;
  for (double v : values) accum += (v - m) * (v - m);
  return std::sqrt(accum / static_cast<double>(values.size()));
}

double geomean(std::span<const double> values) {
  check(!values.empty(), "geomean of empty span");
  double log_sum = 0.0;
  for (double v : values) {
    check(v > 0.0, "geomean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double percentile(std::span<const double> values, double p) {
  check(!values.empty(), "percentile of empty span");
  check(p >= 0.0 && p <= 100.0, "percentile p must be in [0, 100]");
  // NaN breaks the strict weak ordering std::sort requires, silently
  // missorting the whole sample (and an infinity poisons the
  // interpolation); latency pipelines feed measured values here, so a
  // non-finite input is always an upstream bug worth naming.
  for (double v : values) {
    check(std::isfinite(v), "percentile requires finite values");
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double entropy_bits(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    check(w >= 0.0, "entropy_bits requires non-negative weights");
    total += w;
  }
  check(total > 0.0, "entropy_bits requires a positive weight sum");
  double h = 0.0;
  for (double w : weights) {
    if (w <= 0.0) continue;
    const double p = w / total;
    h -= p * std::log2(p);
  }
  return h;
}

std::vector<double> normalized(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    check(w >= 0.0, "normalized requires non-negative weights");
    total += w;
  }
  check(total > 0.0, "normalized requires a positive weight sum");
  std::vector<double> out(weights.begin(), weights.end());
  for (double& w : out) w /= total;
  return out;
}

std::vector<std::uint32_t> rank_descending(std::span<const double> values) {
  std::vector<std::uint32_t> order(values.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return values[a] > values[b];
                   });
  return order;
}

double top_k_share(std::span<const double> values, std::size_t k) {
  const double total = std::accumulate(values.begin(), values.end(), 0.0);
  check(total > 0.0, "top_k_share requires a positive sum");
  const auto order = rank_descending(values);
  k = std::min(k, values.size());
  double top = 0.0;
  for (std::size_t i = 0; i < k; ++i) top += values[order[i]];
  return top / total;
}

void RunningStats::add(double x) {
  // A single NaN would propagate into min/max/mean irrecoverably (and
  // min/max comparisons silently drop NaN depending on argument order);
  // reject it at the boundary instead.
  check(std::isfinite(x), "RunningStats::add requires a finite sample");
  // Welford's online algorithm.
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  check(count_ > 0, "RunningStats::mean with no samples");
  return mean_;
}

double RunningStats::variance() const {
  check(count_ > 0, "RunningStats::variance with no samples");
  return m2_ / static_cast<double>(count_);
}

double RunningStats::min() const {
  check(count_ > 0, "RunningStats::min with no samples");
  return min_;
}

double RunningStats::max() const {
  check(count_ > 0, "RunningStats::max with no samples");
  return max_;
}

}  // namespace bkc
