#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/check.h"

namespace bkc {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Expand the seed through splitmix64 as recommended by the xoshiro
  // authors; guarantees the state is never all-zero.
  for (auto& word : state_) word = splitmix64(seed);
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  check(bound > 0, "Rng::below requires bound > 0");
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  check(lo <= hi, "Rng::range requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  if (span == 0) return static_cast<std::int64_t>((*this)());
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller. uniform() can return exactly 0, so flip to (0, 1].
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

bool Rng::chance(double p) { return uniform() < p; }

std::size_t Rng::weighted_pick(std::span<const double> weights) {
  check(!weights.empty(), "weighted_pick requires non-empty weights");
  double total = 0.0;
  for (double w : weights) {
    check(w >= 0.0, "weighted_pick requires non-negative weights");
    total += w;
  }
  check(total > 0.0, "weighted_pick requires a positive weight sum");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numeric round-off fallthrough
}

std::vector<std::uint32_t> Rng::permutation(std::size_t n) {
  std::vector<std::uint32_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<std::uint32_t>(i);
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = below(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

AliasSampler::AliasSampler(std::span<const double> weights) {
  check(!weights.empty(), "AliasSampler requires non-empty weights");
  const std::size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    check(w >= 0.0, "AliasSampler requires non-negative weights");
    total += w;
  }
  check(total > 0.0, "AliasSampler requires a positive weight sum");

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  // Vose's algorithm: split scaled probabilities into "small" and "large"
  // worklists and pair each small cell with a large donor.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::uint32_t l : large) prob_[l] = 1.0;
  for (std::uint32_t s : small) prob_[s] = 1.0;  // round-off leftovers
}

std::size_t AliasSampler::sample(Rng& rng) const {
  const std::size_t cell = rng.below(prob_.size());
  return rng.uniform() < prob_[cell] ? cell : alias_[cell];
}

}  // namespace bkc
