#pragma once
// Runtime control of the fast-path kernel dispatch.
//
// Every vectorized / table-driven hot path in bkc (the AVX2
// xnor+popcount convolution kernels in bnn/bconv_kernels.h, the
// multi-symbol grouped-Huffman stream decode in compress/multi_decode.h)
// is contractually bit-identical to its scalar reference, so *which*
// implementation runs is purely a performance choice. This header owns
// that choice:
//
//   * `cpu_supports_avx2()` - runtime ISA detection (cached cpuid).
//   * `scalar_forced()` - true when every fast path must yield to its
//     scalar reference. Forced when the build disabled SIMD
//     (-DBKC_DISABLE_SIMD=ON), when the environment variable
//     BKC_FORCE_SCALAR is set to anything but "0" (read once, at first
//     query), or inside a ScopedForceScalar region.
//
// The dispatch decision itself lives next to each kernel family (e.g.
// bnn::active_conv_kernel()); this layer only answers "may a fast path
// run at all" and "what does the hardware offer".

namespace bkc::simd {

/// Instruction-set tiers a kernel implementation can target. kScalar is
/// the portable reference; wider entries are only ever *additions* on
/// top of it, never replacements.
enum class Isa { kScalar, kAvx2 };

/// Human-readable tier name ("scalar", "avx2") for benchmarks, logs and
/// the BENCH_kernels.json variant labels.
const char* isa_name(Isa isa);

/// True when the CPU executing this process supports AVX2 (cached after
/// the first call). Always false on non-x86 builds and when the build
/// was configured with -DBKC_DISABLE_SIMD=ON.
bool cpu_supports_avx2();

/// True when every dispatchable hot path must use its scalar reference:
/// the build disabled SIMD, BKC_FORCE_SCALAR is set in the environment,
/// or a ScopedForceScalar is live. Fast paths consult this on every
/// dispatch, so a scoped force takes effect immediately.
bool scalar_forced();

/// RAII force of the scalar reference paths, used by the bit-identity
/// suites and benchmarks to pin a dispatch variant regardless of the
/// host CPU. Process-global (a counter, so scopes nest); establish it
/// before fanning work out to the thread pool - the pool's run barrier
/// makes the setting visible to every worker.
class ScopedForceScalar {
 public:
  ScopedForceScalar();
  ~ScopedForceScalar();
  ScopedForceScalar(const ScopedForceScalar&) = delete;
  ScopedForceScalar& operator=(const ScopedForceScalar&) = delete;
};

}  // namespace bkc::simd
