#include "util/arena.h"

#include <string>

namespace bkc {
namespace {

// operator new[] only guarantees alignof(std::max_align_t); the arena
// over-allocates by one granule and aligns its base pointer up so every
// bump result is genuinely kAlignment-aligned.
std::size_t align_up(std::uintptr_t value, std::size_t alignment) {
  return (value + alignment - 1) / alignment * alignment - value;
}

}  // namespace

Arena::Arena(std::size_t capacity_bytes)
    : capacity_(aligned_size(capacity_bytes)) {
  storage_ = std::make_unique<std::byte[]>(capacity_ + kAlignment);
  base_offset_ = align_up(reinterpret_cast<std::uintptr_t>(storage_.get()),
                          kAlignment);
}

void* Arena::allocate(std::size_t bytes) {
  const std::size_t size = aligned_size(bytes);
  if (size > capacity_ - used_) {
    throw CheckError("Arena::allocate: request of " + std::to_string(bytes) +
                     " bytes (rounded to " + std::to_string(size) +
                     ") exceeds remaining capacity (" + std::to_string(used_) +
                     " of " + std::to_string(capacity_) +
                     " bytes in use); the MemoryPlan under-sized this arena");
  }
  std::byte* p = storage_.get() + base_offset_ + used_;
  used_ += size;
  if (used_ > high_water_) high_water_ = used_;
  ++allocation_count_;
  return p;
}

void Arena::rewind(std::size_t mark) {
  check(mark <= used_, "Arena::rewind: mark is ahead of the current offset");
  used_ = mark;
}

void Arena::reset() {
  used_ = 0;
  ++reset_count_;
}

}  // namespace bkc
