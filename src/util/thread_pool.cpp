#include "util/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace bkc {

namespace {

// Flag marking threads that are executing a pool task; parallel_for
// consults it to run nested parallel regions inline.
thread_local bool t_on_worker = false;

// Thread count for parameterless parallel regions (see
// current_num_threads() in the header).
thread_local int t_num_threads = 1;

}  // namespace

ThreadPool::ThreadPool(int num_workers) : num_workers_(num_workers) {
  check(num_workers >= 1, "ThreadPool: num_workers must be >= 1");
  workers_.reserve(static_cast<std::size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop(int worker) {
  t_on_worker = true;
  std::uint64_t seen_generation = 0;
  const int stride = num_workers();
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return stopping_ || generation_ != seen_generation;
      });
      if (stopping_) return;
      seen_generation = generation_;
    }
    // Static cyclic slice: worker w owns tasks w, w+W, w+2W, ...
    // Independent of timing, so the task -> worker mapping is fixed.
    for (int t = worker; t < num_tasks_; t += stride) {
      try {
        (*task_)(t);
      } catch (...) {
        errors_[static_cast<std::size_t>(t)] = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--active_workers_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::run(int num_tasks, const std::function<void(int)>& task) {
  check(num_tasks >= 0, "ThreadPool::run: num_tasks must be >= 0");
  check(!t_on_worker,
        "ThreadPool::run: re-entrant call from a worker thread");
  if (num_tasks == 0) return;
  // Concurrent callers (e.g. two user threads both inside
  // classify_batch) take turns on the pool; workers never call run(),
  // so this cannot deadlock.
  std::lock_guard<std::mutex> run_lock(run_mutex_);
  std::unique_lock<std::mutex> lock(mutex_);
  num_tasks_ = num_tasks;
  task_ = &task;
  errors_.assign(static_cast<std::size_t>(num_tasks), nullptr);
  active_workers_ = num_workers();
  ++generation_;
  start_cv_.notify_all();
  done_cv_.wait(lock, [&] { return active_workers_ == 0; });
  task_ = nullptr;
  // Deterministic propagation: the lowest-numbered failing task wins,
  // independent of execution timing.
  for (std::exception_ptr& error : errors_) {
    if (error) std::rethrow_exception(error);
  }
}

bool ThreadPool::on_worker_thread() { return t_on_worker; }

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(std::max(
      2, static_cast<int>(std::thread::hardware_concurrency())));
  return pool;
}

void parallel_for(
    std::int64_t total, int num_threads,
    const std::function<void(std::int64_t begin, std::int64_t end)>& chunk) {
  check(num_threads >= 1, "parallel_for: num_threads must be >= 1");
  if (total <= 0) return;
  const int chunks =
      static_cast<int>(std::min<std::int64_t>(num_threads, total));
  if (chunks <= 1 || ThreadPool::on_worker_thread()) {
    chunk(0, total);
    return;
  }
  ThreadPool::shared().run(chunks, [&](int c) {
    const ChunkBounds bounds = chunk_bounds(total, chunks, c);
    chunk(bounds.begin, bounds.end);
  });
}

ChunkBounds chunk_bounds(std::int64_t total, int chunks, int c) {
  check(total >= 0, "chunk_bounds: total must be >= 0");
  check(chunks >= 1, "chunk_bounds: chunks must be >= 1");
  check(c >= 0 && c < chunks, "chunk_bounds: chunk index out of range");
  // Near-equal contiguous chunks; boundaries depend only on
  // (total, chunks), which is what makes the partition deterministic.
  // base <= total / chunks and c < chunks keep every product and sum
  // below INT64_MAX, so this holds for totals the naive
  // `total * c / chunks` formula would overflow on.
  const std::int64_t base = total / chunks;
  const std::int64_t extra = total % chunks;
  const std::int64_t begin = c * base + std::min<std::int64_t>(c, extra);
  const std::int64_t end = begin + base + (c < extra ? 1 : 0);
  return {begin, end};
}

int current_num_threads() { return t_num_threads; }

ScopedNumThreads::ScopedNumThreads(int num_threads)
    : previous_(t_num_threads) {
  check(num_threads >= 1, "ScopedNumThreads: num_threads must be >= 1");
  t_num_threads = num_threads;
}

ScopedNumThreads::~ScopedNumThreads() { t_num_threads = previous_; }

}  // namespace bkc
