#include "util/binary_io.h"

#include <unistd.h>

#include <array>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace bkc {

void ByteWriter::write_u8(std::uint8_t value) { buffer_.push_back(value); }

void ByteWriter::write_u16(std::uint16_t value) {
  write_u8(static_cast<std::uint8_t>(value & 0xff));
  write_u8(static_cast<std::uint8_t>(value >> 8));
}

void ByteWriter::write_u32(std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    write_u8(static_cast<std::uint8_t>((value >> shift) & 0xff));
  }
}

void ByteWriter::write_u64(std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    write_u8(static_cast<std::uint8_t>((value >> shift) & 0xff));
  }
}

void ByteWriter::write_i64(std::int64_t value) {
  write_u64(static_cast<std::uint64_t>(value));
}

void ByteWriter::write_f64(double value) {
  std::uint64_t pattern = 0;
  static_assert(sizeof(pattern) == sizeof(value));
  std::memcpy(&pattern, &value, sizeof(pattern));
  write_u64(pattern);
}

void ByteWriter::write_varint(std::uint64_t value) {
  while (value >= 0x80) {
    write_u8(static_cast<std::uint8_t>(value & 0x7f) | 0x80);
    value >>= 7;
  }
  write_u8(static_cast<std::uint8_t>(value));
}

void ByteWriter::write_bytes(std::span<const std::uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::write_string(std::string_view text) {
  write_varint(text.size());
  write_bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

std::vector<std::uint8_t> ByteWriter::take() {
  std::vector<std::uint8_t> out = std::move(buffer_);
  buffer_.clear();
  return out;
}

ByteReader::ByteReader(std::span<const std::uint8_t> bytes,
                       std::string context)
    : bytes_(bytes), context_(std::move(context)) {}

void ByteReader::require(std::size_t count) const {
  check(count <= remaining(),
        context_ + ": truncated: need " + std::to_string(count) +
            " byte(s) at offset " + std::to_string(position_) + ", have " +
            std::to_string(remaining()));
}

std::uint8_t ByteReader::read_u8() {
  require(1);
  return bytes_[position_++];
}

std::uint16_t ByteReader::read_u16() {
  require(2);
  std::uint16_t value = 0;
  for (int i = 0; i < 2; ++i) {
    value = static_cast<std::uint16_t>(
        value | static_cast<std::uint16_t>(bytes_[position_++]) << (8 * i));
  }
  return value;
}

std::uint32_t ByteReader::read_u32() {
  require(4);
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(bytes_[position_++]) << (8 * i);
  }
  return value;
}

std::uint64_t ByteReader::read_u64() {
  require(8);
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(bytes_[position_++]) << (8 * i);
  }
  return value;
}

std::int64_t ByteReader::read_i64() {
  return static_cast<std::int64_t>(read_u64());
}

double ByteReader::read_f64() {
  const std::uint64_t pattern = read_u64();
  double value = 0.0;
  std::memcpy(&value, &pattern, sizeof(value));
  return value;
}

std::uint64_t ByteReader::read_varint() {
  std::uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const std::uint8_t byte = read_u8();
    const auto payload = static_cast<std::uint64_t>(byte & 0x7f);
    // The 10th byte (shift 63) may only contribute the last bit.
    check(shift < 63 || payload <= 1,
          context_ + ": malformed varint (overflows 64 bits) ending at "
                     "offset " +
              std::to_string(position_));
    value |= payload << shift;
    if ((byte & 0x80) == 0) {
      // Reject non-minimal encodings (a terminating zero byte after a
      // continuation, e.g. 0x85 0x00 for 5): every value has exactly
      // one accepted byte form, which the canonical-encoding guarantees
      // of the BKCM readers rely on.
      check(byte != 0 || shift == 0,
            context_ + ": non-minimal varint ending at offset " +
                std::to_string(position_));
      return value;
    }
  }
  throw CheckError(context_ + ": malformed varint (longer than 10 bytes) at "
                              "offset " +
                   std::to_string(position_));
}

std::vector<std::uint8_t> ByteReader::read_bytes(std::size_t count) {
  require(count);
  std::vector<std::uint8_t> out(bytes_.begin() +
                                    static_cast<std::ptrdiff_t>(position_),
                                bytes_.begin() +
                                    static_cast<std::ptrdiff_t>(position_ +
                                                                count));
  position_ += count;
  return out;
}

std::span<const std::uint8_t> ByteReader::read_span(std::size_t count) {
  require(count);
  const std::span<const std::uint8_t> out =
      bytes_.subspan(position_, count);
  position_ += count;
  return out;
}

std::string ByteReader::read_string(std::size_t max_length) {
  const std::uint64_t length = read_varint();
  check(length <= max_length,
        context_ + ": string length " + std::to_string(length) +
            " exceeds the limit of " + std::to_string(max_length));
  const std::vector<std::uint8_t> raw =
      read_bytes(static_cast<std::size_t>(length));
  return std::string(raw.begin(), raw.end());
}

ByteReader ByteReader::sub(std::size_t offset, std::size_t length,
                           std::string context) const {
  check(offset <= bytes_.size() && length <= bytes_.size() - offset,
        context + ": section range [" + std::to_string(offset) + ", " +
            std::to_string(offset) + " + " + std::to_string(length) +
            ") exceeds the file size of " + std::to_string(bytes_.size()));
  return ByteReader(bytes_.subspan(offset, length), std::move(context));
}

void ByteReader::expect_exhausted() const {
  check(remaining() == 0,
        context_ + ": " + std::to_string(remaining()) +
            " trailing byte(s) after the last field");
}

namespace {

std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t value = i;
    for (int bit = 0; bit < 8; ++bit) {
      value = (value >> 1) ^ ((value & 1) ? 0xedb88320u : 0u);
    }
    table[i] = value;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc32_table();
  std::uint32_t crc = 0xffffffffu;
  for (std::uint8_t byte : bytes) {
    crc = (crc >> 8) ^ table[(crc ^ byte) & 0xff];
  }
  return crc ^ 0xffffffffu;
}

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  check(in.good(), "cannot open file for reading: " + path);
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  check(size >= 0, "cannot determine file size: " + path);
  in.seekg(0, std::ios::beg);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (size > 0) {
    in.read(reinterpret_cast<char*>(bytes.data()), size);
  }
  check(in.good(), "cannot read file: " + path);
  return bytes;
}

void write_file_bytes(const std::string& path,
                      std::span<const std::uint8_t> bytes) {
  // Stage into a sibling temp file and rename over the target, so a
  // process crash or failed write (disk full) cannot destroy an
  // existing good artifact at `path`. The temp name is unique per
  // process and call so concurrent saves to the same target never
  // interleave into one staging file. (No fsync: power-loss durability
  // is out of scope — the guarantee covers process-level failures.)
  static std::atomic<std::uint64_t> counter{0};
  const std::string temp_path =
      path + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
    check(out.good(), "cannot open file for writing: " + temp_path);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(temp_path.c_str());
      throw CheckError("cannot write file: " + temp_path);
    }
  }
  if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
    std::remove(temp_path.c_str());
    throw CheckError("cannot move written file into place: " + path);
  }
}

}  // namespace bkc
