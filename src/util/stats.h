#pragma once
// Small statistics helpers shared by the frequency analysis, the weight
// distribution fitter and the benchmark harnesses.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace bkc {

/// Arithmetic mean. Precondition: non-empty.
double mean(std::span<const double> values);

/// Population standard deviation. Precondition: non-empty.
double stddev(std::span<const double> values);

/// Geometric mean. Precondition: non-empty, all values > 0.
/// Used to aggregate per-layer speedups the way architecture papers do.
double geomean(std::span<const double> values);

/// Linear-interpolated percentile, p in [0, 100]. Precondition:
/// non-empty, all values finite (a NaN would break the sort's strict
/// weak ordering and silently missort the sample; CheckError instead).
double percentile(std::span<const double> values, double p);

/// Shannon entropy in bits of a (not necessarily normalised) histogram.
/// Zero-weight bins contribute nothing. Precondition: sum > 0.
/// This is the lower bound on average code length any prefix code
/// (including the paper's grouped Huffman tree) can reach.
double entropy_bits(std::span<const double> weights);

/// Normalise a histogram to probabilities summing to 1.
/// Precondition: all >= 0, sum > 0.
std::vector<double> normalized(std::span<const double> weights);

/// Indices of `values` sorted by descending value (ties by ascending
/// index, so rankings are deterministic).
std::vector<std::uint32_t> rank_descending(std::span<const double> values);

/// Sum of the `k` largest values divided by the total sum (in [0, 1]).
/// This is exactly the paper's "top-64 / top-256 share" metric (Table II).
/// Precondition: sum > 0; k is clamped to values.size().
double top_k_share(std::span<const double> values, std::size_t k);

/// Running accumulator for streams whose size is not known up front.
///
/// Uses Welford's online algorithm: the naive sum-of-squares form
/// (Σx² − n·mean²) subtracts two nearly equal large numbers when
/// mean² ≫ variance — for cycle counts in the 1e8 range with
/// microsecond-scale jitter the cancellation can even drive the
/// computed variance negative. Welford carries the centred second
/// moment instead, so variance() is always >= 0 and accurate at any
/// magnitude. Note the result still depends (in the last few ulps) on
/// the order samples are added; bit-stability across append orders is
/// NOT part of the contract, only across identical orders.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return count_; }
  double mean() const;
  double variance() const;  ///< population variance
  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace bkc
