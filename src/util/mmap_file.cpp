#include "util/mmap_file.h"

#include <utility>

#include "util/binary_io.h"
#include "util/check.h"

#if defined(__unix__) || defined(__APPLE__)
#define BKC_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define BKC_HAVE_MMAP 0
#endif

namespace bkc {

MmapFile MmapFile::open(const std::string& path) {
  MmapFile file;
#if BKC_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  check(fd >= 0, "MmapFile: cannot open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw CheckError("MmapFile: cannot stat " + path);
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    throw CheckError("MmapFile: not a regular file: " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    // mmap of length 0 is EINVAL; an empty file is simply an empty span.
    ::close(fd);
    return file;
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping keeps its own reference to the file; the descriptor is
  // not needed past this point either way.
  ::close(fd);
  check(addr != MAP_FAILED, "MmapFile: mmap failed for " + path);
  file.data_ = static_cast<const std::uint8_t*>(addr);
  file.size_ = size;
  file.mapped_ = true;
#else
  // Buffered fallback: same interface and lifetime rules, one copy.
  file.fallback_ = read_file_bytes(path);
  file.data_ = file.fallback_.data();
  file.size_ = file.fallback_.size();
#endif
  return file;
}

void MmapFile::release() noexcept {
#if BKC_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  fallback_.clear();
}

MmapFile::~MmapFile() { release(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      fallback_(std::move(other.fallback_)) {
  // The fallback vector move preserves its heap buffer, but re-anchor
  // anyway so the invariant data_ == fallback_.data() stays exact.
  if (!mapped_ && data_ != nullptr) data_ = fallback_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    release();
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    fallback_ = std::move(other.fallback_);
    if (!mapped_ && data_ != nullptr) data_ = fallback_.data();
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

}  // namespace bkc
