#pragma once
// Bump allocator backing the zero-allocation inference path.
//
// An Arena owns one fixed block of memory sized up front from a
// MemoryPlan (bnn/memory_plan.h) and hands out aligned sub-spans by
// bumping an offset. There is no per-buffer free: callers either
// `reset()` between images (the ping-pong activation buffers) or use
// the LIFO `mark()`/`rewind()` pair for block-local scratch. Because
// capacity never changes after construction, a forward pass that fits
// the plan performs no heap allocation at all — and one that does not
// fit fails loudly with CheckError instead of silently growing.
//
// In the style of compress/instrumentation.h, the arena keeps counters
// (`high_water()`, `allocation_count()`, `reset_count()`) so tests and
// the throughput bench can pin the contract exactly: the high-water
// mark of a planned forward pass must equal the plan's computed size,
// byte for byte. The counters are plain integers, not atomics — an
// Arena belongs to exactly one Workspace and is never shared between
// threads (workers lease whole workspaces from the pool instead).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

#include "util/check.h"

namespace bkc {

/// Fixed-capacity bump allocator. Move-only; not thread-safe by design
/// (see file comment).
class Arena {
 public:
  /// Every allocation is aligned to (and its size rounded up to) this
  /// many bytes, so plan arithmetic can predict offsets exactly.
  static constexpr std::size_t kAlignment = 64;

  Arena() = default;

  /// Arena over a freshly allocated block of `capacity_bytes` (rounded
  /// up to kAlignment). The one and only heap allocation the arena
  /// ever performs happens here.
  explicit Arena(std::size_t capacity_bytes);

  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// `bytes` rounded up to the allocation granularity — the size a
  /// subsequent allocate(bytes) will actually consume.
  static constexpr std::size_t aligned_size(std::size_t bytes) {
    return (bytes + kAlignment - 1) / kAlignment * kAlignment;
  }

  /// Pointer to `bytes` of kAlignment-aligned storage. CheckError when
  /// the request does not fit in the remaining capacity.
  void* allocate(std::size_t bytes);

  /// allocate() typed as `count` elements of T. T must be trivially
  /// destructible (the arena never runs destructors); the returned
  /// elements are uninitialised.
  template <typename T>
  std::span<T> allocate_span(std::int64_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena storage is released without running destructors");
    check(count >= 0, "Arena::allocate_span: negative count");
    void* p = allocate(static_cast<std::size_t>(count) * sizeof(T));
    return {static_cast<T*>(p), static_cast<std::size_t>(count)};
  }

  /// Current offset, for LIFO scratch release via rewind().
  std::size_t mark() const { return used_; }

  /// Roll the offset back to an earlier mark(). Only LIFO use is
  /// valid; the high-water mark is unaffected.
  void rewind(std::size_t mark);

  /// Release everything (offset back to zero). Called once per image
  /// by the forward path; counted so tests can see reuse happening.
  void reset();

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }

  /// Largest `used()` ever observed, across resets. A planned forward
  /// pass must drive this to exactly the plan's computed size.
  std::size_t high_water() const { return high_water_; }

  /// Total allocate() calls over the arena's lifetime.
  std::uint64_t allocation_count() const { return allocation_count_; }

  /// Total reset() calls over the arena's lifetime.
  std::uint64_t reset_count() const { return reset_count_; }

 private:
  std::unique_ptr<std::byte[]> storage_;
  std::size_t base_offset_ = 0;  ///< aligns storage_ up to kAlignment
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t allocation_count_ = 0;
  std::uint64_t reset_count_ = 0;
};

}  // namespace bkc
