#pragma once
// Minimal strict-JSON writer for the bench report emitters.
//
// Every bench used to hand-roll its JSON with ostringstream, which has
// three classic failure modes this header removes in one place:
//   * strings were pasted between quotes unescaped — a codec or layer
//     name containing `"` or `\` produced an unparseable file,
//   * doubles went through default ostream formatting — locale
//     dependent (a `,` decimal point breaks JSON) and truncated to 6
//     significant digits,
//   * comma/bracket bookkeeping was duplicated per emitter.
//
// The Writer produces strict JSON (RFC 8259): strings are escaped,
// doubles print locale-independently via std::to_chars with shortest
// round-trip precision (every digit of max_digits10 that matters), and
// commas/nesting are managed by the writer. JSON has no NaN/Infinity;
// what a non-finite double becomes is an explicit policy — CheckError
// (default: the bench math should never produce one) or `null` (for
// emitters where a missing measurement is representable). Misuse of
// the writer itself (value without a key inside an object, unclosed
// containers at str()) is a CheckError, not silently bad output.
//
// tests/test_json.cpp pins escaping, number formatting, policy and the
// misuse checks; CI parses every emitted BENCH_*.json with a strict
// parser.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bkc::json {

/// What to emit for a non-finite double. JSON cannot represent
/// NaN/Infinity, so there is no "pass through" option.
enum class NonFinitePolicy {
  kCheck,  ///< CheckError naming the offending value
  kNull,   ///< emit `null`
};

/// `s` escaped and double-quoted as a strict JSON string literal
/// (`"` `\` and control characters escaped; UTF-8 passes through).
std::string quoted(std::string_view s);

/// `v` as a strict JSON number: std::to_chars shortest round-trip form
/// — locale-independent, and parsing it back yields exactly `v`.
/// Non-finite values follow `policy`.
std::string number(double v, NonFinitePolicy policy = NonFinitePolicy::kCheck);

/// Incremental document writer with automatic comma/indent handling.
///
///   json::Writer w;
///   w.begin_object();
///   w.key("bench").value("codec_shootout");
///   w.key("codecs").begin_array();
///   ... w.begin_object(); w.key("id").value(7); w.end_object(); ...
///   w.end_array();
///   w.end_object();
///   file << w.str();
///
/// The output is pretty-printed (2-space indent, one key or element
/// per line) so the checked-in BENCH_*.json files stay diffable.
class Writer {
 public:
  explicit Writer(NonFinitePolicy policy = NonFinitePolicy::kCheck);

  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();

  /// Object member key; must be directly followed by a value or
  /// container. CheckError outside an object or twice in a row.
  Writer& key(std::string_view name);

  Writer& value(std::string_view text);
  Writer& value(const char* text);  ///< disambiguates from `bool`
  Writer& value(double number);
  Writer& value(std::int64_t number);
  Writer& value(std::uint64_t number);
  Writer& value(int number);
  Writer& value(bool boolean);
  Writer& null();

  /// The finished document. CheckError when containers are still open
  /// or no value was written.
  std::string str() const;

 private:
  enum class Frame { kObject, kArray };

  void begin_value();  ///< comma/indent/key bookkeeping before a value
  void open(Frame frame, char bracket);
  void close(Frame frame, char bracket);
  void indent();

  NonFinitePolicy policy_;
  std::string out_;
  std::vector<Frame> stack_;
  bool have_key_ = false;       ///< key() emitted, value pending
  bool first_in_frame_ = true;  ///< no element yet in the open frame
  bool done_ = false;           ///< a complete top-level value exists
};

}  // namespace bkc::json
