#pragma once
// Variable-length bit I/O.
//
// The compressed kernel format of the paper stores Huffman codewords
// back-to-back in memory "as a sequence of encoded words" (Sec IV-B).
// BitWriter/BitReader implement that stream: MSB-first within each byte,
// matching the way a hardware stream parser would shift bits out of its
// input buffer (Fig. 6). MSB-first order is required for prefix codes so
// that the first bits read are the top of the Huffman tree.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace bkc {

/// Append-only bit sink. Bits are packed MSB-first: the first bit written
/// becomes the most significant bit of the first byte.
class BitWriter {
 public:
  BitWriter() = default;

  /// Append the `count` least-significant bits of `value`, most
  /// significant of those bits first. Preconditions: count <= 64, and all
  /// bits of `value` above `count` are zero.
  void write_bits(std::uint64_t value, unsigned count);

  /// Append a single bit (0 or 1).
  void write_bit(bool bit);

  /// Total number of bits written so far.
  std::size_t bit_size() const { return bit_size_; }

  /// Bytes needed to hold the stream (last byte zero-padded).
  std::size_t byte_size() const { return (bit_size_ + 7) / 8; }

  /// Finish and take the underlying buffer. The writer is left empty.
  std::vector<std::uint8_t> take();

  /// Read-only view of the bytes written so far.
  std::span<const std::uint8_t> bytes() const { return buffer_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t bit_size_ = 0;
};

/// Sequential bit source over a borrowed byte buffer (MSB-first).
/// The buffer must outlive the reader.
class BitReader {
 public:
  /// View `bit_count` bits of `bytes`. Precondition:
  /// bit_count <= bytes.size() * 8.
  BitReader(std::span<const std::uint8_t> bytes, std::size_t bit_count);

  /// Convenience: read every bit of `bytes`.
  explicit BitReader(std::span<const std::uint8_t> bytes);

  /// Read `count` bits (MSB-first) into the low bits of the result.
  /// Precondition: count <= 64 and count <= remaining().
  std::uint64_t read_bits(unsigned count);

  /// Read one bit. Precondition: remaining() >= 1.
  bool read_bit();

  /// Look at the next `count` bits without consuming them. If fewer than
  /// `count` bits remain, the missing low bits are zero-filled - this is
  /// exactly what a hardware stream parser sees at the end of a stream,
  /// and lets table-driven decoders always peek a fixed width.
  std::uint64_t peek_bits(unsigned count) const;

  /// Skip `count` bits. Precondition: count <= remaining().
  void skip_bits(std::size_t count);

  /// Bits not yet consumed.
  std::size_t remaining() const { return bit_count_ - position_; }

  /// Absolute bit position from the start of the stream.
  std::size_t position() const { return position_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t bit_count_ = 0;
  std::size_t position_ = 0;
};

}  // namespace bkc
