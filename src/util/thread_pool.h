#pragma once
// Deterministic multi-core execution: a fixed-size worker pool plus the
// parallel_for helper every parallel hot path in bkc goes through.
//
// Design rules (the determinism guarantee the test suite enforces):
//   * No work stealing. parallel_for splits [0, total) into `num_threads`
//     contiguous chunks whose boundaries are a pure function of
//     (total, num_threads) - never of timing, core count or pool size.
//   * No cross-chunk accumulation inside parallel regions. Callers write
//     results into disjoint, preallocated slots and reduce serially in
//     index order afterwards, so outputs are bit-identical to the serial
//     path at every thread count.
//   * Nested parallel regions run inline on the calling worker (no
//     oversubscription, no pool re-entry deadlock).
//
// The pool itself is only an executor: which worker runs which chunk
// never influences results, because chunks touch disjoint state.

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bkc {

/// Fixed-size pool of worker threads with a static cyclic task
/// assignment (task t runs on worker t % num_workers) - work-stealing
/// free by construction.
class ThreadPool {
 public:
  /// Spawns `num_workers` (>= 1) threads that sleep until run() is
  /// called.
  explicit ThreadPool(int num_workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return num_workers_; }

  /// Execute task(0) .. task(num_tasks - 1), each exactly once, and
  /// block until all have finished. Tasks are assigned statically
  /// (task t -> worker t % num_workers). If any task threw, the
  /// exception of the lowest-numbered failing task is rethrown - again
  /// a deterministic choice. Safe to call from multiple threads:
  /// concurrent calls serialize on the pool. Not re-entrant: run()
  /// must not be called from inside a task (parallel_for handles
  /// nesting by running inline instead).
  void run(int num_tasks, const std::function<void(int)>& task);

  /// True on threads currently executing a ThreadPool task.
  static bool on_worker_thread();

  /// The process-wide pool shared by every parallel_for call site,
  /// sized to the hardware concurrency (at least 2 so the parallel
  /// code paths are genuinely exercised even on single-core hosts).
  /// Created on first use; never destroyed before exit.
  static ThreadPool& shared();

 private:
  void worker_loop(int worker);

  // Fixed before any thread spawns: worker threads read it while the
  // constructor is still appending to workers_, so it must not be
  // derived from workers_.size().
  int num_workers_ = 0;
  std::vector<std::thread> workers_;
  std::mutex run_mutex_;  ///< serializes concurrent run() callers
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;  ///< bumped once per run() call
  int num_tasks_ = 0;
  int active_workers_ = 0;
  const std::function<void(int)>* task_ = nullptr;
  std::vector<std::exception_ptr> errors_;  ///< one slot per task
  bool stopping_ = false;
};

/// Boundaries of chunk `c` when [0, total) is split into `chunks`
/// contiguous near-equal pieces: every chunk gets total / chunks
/// elements and the first total % chunks chunks one extra. A pure
/// function of (total, chunks, c) - this is the partition parallel_for
/// hands out - and, unlike the naive `total * c / chunks` formula, free
/// of intermediate overflow for any total up to INT64_MAX (the naive
/// product overflows already for modest chunk counts once total nears
/// INT64_MAX / chunks). Preconditions: total >= 0, 0 <= c < chunks.
struct ChunkBounds {
  std::int64_t begin = 0;
  std::int64_t end = 0;
};
ChunkBounds chunk_bounds(std::int64_t total, int chunks, int c);

/// Split [0, total) into min(num_threads, total) contiguous chunks of
/// near-equal size (boundaries fixed by (total, num_threads) alone -
/// see chunk_bounds) and invoke chunk(begin, end) for each, using the
/// shared pool. With num_threads <= 1, or when already on a pool worker
/// (nested parallelism), the whole range executes inline on the caller
/// as the single chunk (0, total) - callers must therefore not key work
/// off the chunk boundaries themselves, only off the indices inside
/// them. Precondition: num_threads >= 1.
void parallel_for(
    std::int64_t total, int num_threads,
    const std::function<void(std::int64_t begin, std::int64_t end)>& chunk);

/// Thread count consulted by parallel regions buried inside library
/// internals that take no thread-count parameter of their own (today:
/// the per-output-channel loop of bnn::binary_conv2d). Defaults to 1;
/// Engine::classify installs the caller's request for the duration of
/// the call. Thread-local, so concurrent callers never see each other's
/// setting.
int current_num_threads();

/// RAII override of current_num_threads() on this thread.
class ScopedNumThreads {
 public:
  /// Precondition: num_threads >= 1.
  explicit ScopedNumThreads(int num_threads);
  ~ScopedNumThreads();
  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

 private:
  int previous_;
};

}  // namespace bkc
