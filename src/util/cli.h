#pragma once
// Minimal command-line helpers for the bench/example binaries. The
// binaries default to the paper-sized configuration; the CTest smoke
// runs pass --tiny to exercise the same code paths in milliseconds, and
// the throughput/inference binaries take --threads N to size the
// parallel fan-out.

#include <charconv>
#include <string>
#include <string_view>

#include "util/check.h"

namespace bkc {

/// True when `flag` (e.g. "--tiny") appears among the arguments.
inline bool has_flag(int argc, char** argv, std::string_view flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// Resolves both accepted value spellings — "--threads 4" and
/// "--threads=4" — against the argument at index `i` (plus its
/// successor for the space form). Returns true when argv[i] names
/// `flag`, leaving the value text in `text` and recording in
/// `used_next_arg` whether the value came from the following argument.
/// The "=" form used to be silently ignored (the scan only compared
/// whole arguments), so "--threads=4" fell back to the default without
/// a word; now both forms parse, and an empty "=" value ("--threads=")
/// is rejected by name.
inline bool flag_value_at(int argc, char** argv, int i, std::string_view flag,
                          std::string_view& text, bool& used_next_arg) {
  const std::string_view arg = argv[i];
  used_next_arg = false;
  if (arg == flag) {
    check(i + 1 < argc, std::string(flag) + " requires a value");
    text = argv[i + 1];
    used_next_arg = true;
    return true;
  }
  if (arg.size() > flag.size() && arg.substr(0, flag.size()) == flag &&
      arg[flag.size()] == '=') {
    text = arg.substr(flag.size() + 1);
    check(!text.empty(), std::string(flag) + " requires a value (got '" +
                             std::string(arg) + "')");
    return true;
  }
  return false;
}

/// Integer value of `flag` ("--threads 4" or "--threads=4"); `fallback`
/// when the flag is absent. Throws CheckError, naming the flag, when
/// the flag is present with a missing value, trailing garbage
/// ("--threads 4abc"), or a value that does not fit in int
/// ("--threads 99999999999").
inline int flag_value(int argc, char** argv, std::string_view flag,
                      int fallback) {
  for (int i = 1; i < argc; ++i) {
    std::string_view text;
    bool used_next_arg = false;
    if (!flag_value_at(argc, argv, i, flag, text, used_next_arg)) continue;
    int value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    check(ec != std::errc::result_out_of_range,
          std::string(flag) + ": value '" + std::string(text) +
              "' is out of range");
    check(ec == std::errc() && ptr == text.data() + text.size(),
          std::string(flag) + ": malformed integer '" + std::string(text) +
              "'");
    return value;
  }
  return fallback;
}

/// String value of `flag` ("--out model.bkcm" or "--out=model.bkcm");
/// `fallback` when the flag is absent. Throws CheckError when the flag
/// is present as the last argument (no value to take) or with an empty
/// "=" value. Path arguments in the bench/example binaries go through
/// this instead of ad-hoc argv scanning. Returns by value (like the
/// sibling helpers) so a temporary passed as `fallback` can never
/// leave the caller holding a dangling view.
inline std::string flag_string_value(int argc, char** argv,
                                     std::string_view flag,
                                     std::string_view fallback) {
  for (int i = 1; i < argc; ++i) {
    std::string_view value;
    bool used_next_arg = false;
    if (!flag_value_at(argc, argv, i, flag, value, used_next_arg)) continue;
    // In the space-separated form a value that looks like another flag
    // is a forgotten argument ("--out --tiny"), not a path called
    // "--tiny". The "=" form is explicit about attachment, so it may
    // carry any text.
    check(!used_next_arg || value.substr(0, 2) != "--",
          std::string(flag) + " requires a value, got flag-like '" +
              std::string(value) + "'");
    return std::string(value);
  }
  return std::string(fallback);
}

/// flag_value for counts that must be >= 1 (thread counts, image
/// counts, repeat counts): throws CheckError when the resolved value —
/// whether it came from the command line or from `fallback` — is zero
/// or negative. parallel_for and friends have a num_threads >= 1
/// precondition, so validating here turns `--threads 0` into a clear
/// message instead of a deep internal failure.
inline int positive_flag_value(int argc, char** argv, std::string_view flag,
                               int fallback) {
  const int value = flag_value(argc, argv, flag, fallback);
  check(value >= 1, std::string(flag) + ": must be >= 1, got " +
                        std::to_string(value));
  return value;
}

}  // namespace bkc
