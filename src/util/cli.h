#pragma once
// Minimal command-line helpers for the bench/example binaries. The
// binaries default to the paper-sized configuration; the CTest smoke
// runs pass --tiny to exercise the same code paths in milliseconds.

#include <string_view>

namespace bkc {

/// True when `flag` (e.g. "--tiny") appears among the arguments.
inline bool has_flag(int argc, char** argv, std::string_view flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

}  // namespace bkc
