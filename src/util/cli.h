#pragma once
// Minimal command-line helpers for the bench/example binaries. The
// binaries default to the paper-sized configuration; the CTest smoke
// runs pass --tiny to exercise the same code paths in milliseconds, and
// the throughput/inference binaries take --threads N to size the
// parallel fan-out.

#include <charconv>
#include <string>
#include <string_view>

#include "util/check.h"

namespace bkc {

/// True when `flag` (e.g. "--tiny") appears among the arguments.
inline bool has_flag(int argc, char** argv, std::string_view flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// Integer value following `flag` (e.g. "--threads 4"); `fallback` when
/// the flag is absent. Throws CheckError when the flag is present with
/// a missing or malformed value.
inline int flag_value(int argc, char** argv, std::string_view flag,
                      int fallback) {
  for (int i = 1; i < argc; ++i) {
    if (flag != argv[i]) continue;
    check(i + 1 < argc, std::string(flag) + " requires a value");
    const std::string_view text = argv[i + 1];
    int value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    check(ec == std::errc() && ptr == text.data() + text.size(),
          std::string(flag) + ": malformed integer '" + std::string(text) +
              "'");
    return value;
  }
  return fallback;
}

/// String value following `flag` (e.g. "--out model.bkcm"); `fallback`
/// when the flag is absent. Throws CheckError when the flag is present
/// as the last argument (no value to take). Path arguments in the
/// bench/example binaries go through this instead of ad-hoc argv
/// scanning. Returns by value (like the sibling helpers) so a
/// temporary passed as `fallback` can never leave the caller holding a
/// dangling view.
inline std::string flag_string_value(int argc, char** argv,
                                     std::string_view flag,
                                     std::string_view fallback) {
  for (int i = 1; i < argc; ++i) {
    if (flag != argv[i]) continue;
    check(i + 1 < argc, std::string(flag) + " requires a value");
    const std::string_view value = argv[i + 1];
    // A value that looks like another flag is a forgotten argument
    // ("--out --tiny"), not a path called "--tiny".
    check(value.substr(0, 2) != "--",
          std::string(flag) + " requires a value, got flag-like '" +
              std::string(value) + "'");
    return std::string(value);
  }
  return std::string(fallback);
}

/// flag_value for counts that must be >= 1 (thread counts, image
/// counts, repeat counts): throws CheckError when the resolved value —
/// whether it came from the command line or from `fallback` — is zero
/// or negative. parallel_for and friends have a num_threads >= 1
/// precondition, so validating here turns `--threads 0` into a clear
/// message instead of a deep internal failure.
inline int positive_flag_value(int argc, char** argv, std::string_view flag,
                               int fallback) {
  const int value = flag_value(argc, argv, flag, fallback);
  check(value >= 1, std::string(flag) + ": must be >= 1, got " +
                        std::to_string(value));
  return value;
}

}  // namespace bkc
