#include "util/table.h"

#include <cstdio>
#include <iostream>
#include <sstream>

#include "util/check.h"

namespace bkc {

namespace {
std::string fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}
}  // namespace

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  check(!headers_.empty(), "Table requires at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(std::string cell) {
  check(!rows_.empty(), "Table::add before Table::row");
  check(rows_.back().size() < headers_.size(),
        "Table::add: more cells than columns");
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }

Table& Table::add(double value, int precision) {
  return add(fixed(value, precision));
}

Table& Table::add(std::int64_t value) { return add(std::to_string(value)); }
Table& Table::add(std::uint64_t value) { return add(std::to_string(value)); }
Table& Table::add(int value) { return add(std::to_string(value)); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out << "| " << cell << std::string(widths[c] - cell.size() + 1, ' ');
    }
    out << "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << "|" << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print(const std::string& title) const {
  std::cout << "\n== " << title << " ==\n" << to_string() << std::flush;
}

std::string ratio_str(double value, int precision) {
  return fixed(value, precision) + "x";
}

std::string percent_str(double fraction, int precision) {
  return fixed(fraction * 100.0, precision) + "%";
}

std::string bits_str(std::uint64_t bits) {
  const double b = static_cast<double>(bits);
  if (bits >= 1000ULL * 1000ULL) return fixed(b / 1e6, 2) + " Mbit";
  if (bits >= 1000ULL) return fixed(b / 1e3, 2) + " Kbit";
  return std::to_string(bits) + " bit";
}

}  // namespace bkc
