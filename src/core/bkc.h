#pragma once
// Umbrella header for the bkc library: a from-scratch reproduction of
// "Exploiting Kernel Compression on BNNs" (DATE 2023).
//
//   bkc::bnn       - bit-packed BNN inference engine + ReActNet model
//   bkc::compress  - frequency analysis, simplified/full Huffman codecs,
//                    Hamming-1 clustering, kernel/model compression
//   bkc::hwsim     - ARM-A53-class timing model with the decoding unit
//   bkc::Engine    - end-to-end facade (core/engine.h)
//   bkc::serve     - model registry + dynamic-batching scheduler; layered
//                    ABOVE this umbrella (include serve/registry.h and
//                    serve/scheduler.h directly)

#include "bnn/bconv.h"
#include "bnn/binarize.h"
#include "bnn/bitpack.h"
#include "bnn/bitseq.h"
#include "bnn/kernel_sequences.h"
#include "bnn/layers.h"
#include "bnn/model.h"
#include "bnn/reactnet.h"
#include "bnn/weights.h"
#include "compress/clustering.h"
#include "compress/frequency.h"
#include "compress/grouped_huffman.h"
#include "compress/huffman.h"
#include "compress/instrumentation.h"
#include "compress/kernel_codec.h"
#include "compress/model_view.h"
#include "compress/pipeline.h"
#include "compress/serialize.h"
#include "core/engine.h"
#include "hwsim/cache.h"
#include "hwsim/conv_trace.h"
#include "hwsim/core.h"
#include "hwsim/decoder_unit.h"
#include "hwsim/params.h"
#include "hwsim/perf_model.h"
#include "tensor/tensor.h"
#include "util/binary_io.h"
#include "util/bitstream.h"
#include "util/check.h"
#include "util/cli.h"
#include "util/mmap_file.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
