#pragma once
// The top-level public API of the library.
//
// Engine bundles the whole system of the paper behind one object:
// build a ReActNet (calibrated synthetic weights), compress its 3x3
// binary kernels with the simplified Huffman tree + clustering, run
// inference from the (clustered) kernels, verify the compressed streams
// decode bit-exactly, and estimate the hardware-assisted speedup on the
// A53 timing model. See examples/quickstart.cpp for a tour.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bnn/reactnet.h"
#include "compress/model_view.h"
#include "compress/pipeline.h"
#include "hwsim/perf_model.h"
#include "hwsim/sampled.h"

namespace bkc {

namespace compress {
class MappedBkcm;  // compress/serialize.h
}

/// Compression knobs for the engine.
struct EngineOptions {
  /// Run the Sec III-C clustering pass (Table V "Clustering" column)
  /// before encoding; when false only the variable-length encoding is
  /// applied (Table V "Encoding" column) and inference is bit-exact.
  bool clustering = true;
  compress::GroupedTreeConfig tree = compress::GroupedTreeConfig::paper();
  compress::ClusteringConfig clustering_config = {};
  /// Which block codec (compress/block_codec.h registry) compresses the
  /// kernels. The default is the paper's grouped-huffman scheme;
  /// `tree`/`clustering_config` only apply to it (other codecs ignore
  /// them, and `clustering` selects which of their two emitted streams
  /// deploys — for a codec without a clustering pass both are the same).
  std::uint32_t codec_id = compress::kCodecGroupedHuffman;
};

/// End-to-end facade over the model, the codec and the timing model.
///
/// Threading model: every method taking a `num_threads` parameter fans
/// independent work units (images, blocks, streams, output channels)
/// out over the shared util/thread_pool.h pool with a fixed partition
/// and no cross-unit accumulation, so results are guaranteed
/// bit-identical to the serial path at every thread count (enforced by
/// tests/test_parallel_determinism.cpp). num_threads caps the fan-out;
/// it does not have to match the machine's core count.
class Engine {
 public:
  explicit Engine(
      const bnn::ReActNetConfig& model_config = bnn::paper_reactnet_config(),
      const EngineOptions& options = {});

  /// Compress every 3x3 binary kernel: ONE
  /// ModelCompressor::compress_model pass per call produces the report
  /// and the stream artifacts together (the report is derived from the
  /// streams), fanned out over `num_threads` per block. When clustering
  /// is enabled the clustered kernels are installed into the model
  /// (that is what the deployed network evaluates). Idempotent.
  const compress::ModelReport& compress(int num_threads = 1);

  bool is_compressed() const { return compressed_; }

  /// Classify one image (input_channels x input_size x input_size);
  /// returns class scores. Uses the installed kernels. `num_threads`
  /// parallelizes the per-output-channel loop inside each binary
  /// convolution (bnn/bconv.h), cutting single-image latency.
  ///
  /// Runs the arena-backed forward path: a Workspace is leased from the
  /// engine's pool (allocated on first use, reused ever after), so
  /// steady-state calls perform no heap allocation beyond the returned
  /// score tensor. Bit-identical to model().forward(image).
  Tensor classify(const Tensor& image, int num_threads = 1) const;

  /// classify() into caller-provided storage: with a warm `workspace`
  /// (one prior call) and a correctly-shaped `scores`
  /// (num_classes x 1 x 1; reallocated if not), the call performs ZERO
  /// heap allocations — the property tests/test_zero_alloc.cpp pins
  /// with a global operator-new counter. The workspace must cover
  /// memory_plan() (anything from make_workspace() qualifies).
  void classify_into(const Tensor& image, Tensor& scores,
                     bnn::Workspace& workspace, int num_threads = 1) const;

  /// Classify a batch of independent images, fanned out across
  /// `num_threads` workers (one chunk of images per worker; within a
  /// worker each image runs serially). Each worker leases one Workspace
  /// from the engine's pool and reuses it for its whole chunk, so the
  /// pool grows to the peak worker count and then stops allocating.
  /// Returns one score tensor per image, in input order, bit-identical
  /// to calling classify() on each image serially. The serve-side
  /// BatchScheduler (serve/scheduler.h) dispatches through this entry
  /// point and therefore rides the same workspace pool.
  std::vector<Tensor> classify_batch(const std::vector<Tensor>& images,
                                     int num_threads = 1) const;

  /// The model's memory plan (computed once at construction from its
  /// op records); sizes every workspace the engine leases.
  const bnn::MemoryPlan& memory_plan() const { return model_.memory_plan(); }

  /// A fresh workspace covering memory_plan(), for callers that manage
  /// their own reuse (benchmarks, tests) instead of going through the
  /// engine's internal pool.
  bnn::Workspace make_workspace() const {
    return bnn::Workspace(memory_plan());
  }

  /// Decode every compressed stream and check it reproduces the
  /// installed kernels bit-exactly, one stream per work unit across
  /// `num_threads`. Precondition: compress() was called.
  bool verify_streams(int num_threads = 1) const;

  /// Write the compressed model to `path` as a BKCM v2 container
  /// (compress/serialize.h): model configuration, compression report,
  /// and per-block decode tables + kernel bitstreams. The 3x3 kernels
  /// themselves are not stored — load_compressed() reconstructs them by
  /// decoding the streams. Deterministic output (same engine, same
  /// bytes). Precondition: compress() was called.
  void save_compressed(const std::string& path) const;

  /// Stand up an Engine from a BKCM container alone: rebuild the
  /// uncompressed layers from the stored model configuration, then
  /// decode every kernel stream (fanned out over `num_threads` with the
  /// usual serial-equivalence guarantee) and install the decoded
  /// kernels. The result is bit-identical to the engine that wrote the
  /// file: installed kernels, report() and classification outputs all
  /// match exactly (tests/test_serialize.cpp). CheckError on a
  /// truncated, corrupt or inconsistent container — the message names
  /// the failing section. The file is memory-mapped (util/mmap_file.h),
  /// so the streams decode straight out of the page cache with no
  /// intermediate copy of the container.
  static Engine load_compressed(const std::string& path,
                                int num_threads = 1);

  /// Same, from an in-memory container image (the buffered path;
  /// nothing of `file` is retained after return). The mapped and
  /// buffered paths produce bit-identical engines
  /// (tests/test_serialize.cpp pins this).
  static Engine load_compressed(std::span<const std::uint8_t> file,
                                int num_threads = 1);

  /// Same, from a container that is ALREADY open as a MappedBkcm — the
  /// serving hook (serve/registry.h): MappedBkcm::open validated the
  /// header, section table, CRCs and payloads once, so this overload
  /// does no second parse and no second checksum walk. The per-block
  /// artifacts are copied out of the mapped state (the engine owns its
  /// streams and does not borrow `mapped`, which may be destroyed
  /// afterwards) and the kernels decode straight from the mapping. The
  /// result is bit-identical to load_compressed(path) on the same file
  /// (tests/test_serve_registry.cpp pins engine state, report and
  /// classification).
  static Engine load_compressed(const compress::MappedBkcm& mapped,
                                int num_threads = 1);

  /// The non-owning artifact view over this engine's compressed state
  /// (compress/model_view.h): op-record layout plus per-block spans
  /// over the streams the engine deployed (clustered when clustering is
  /// enabled, plain encoding otherwise). This is what the hwsim
  /// simulator consumes; the engine must outlive the view.
  /// Precondition: compress() was called.
  compress::CompressedModelView artifact_view() const;

  /// Simulate the three execution variants on the timing model, fed by
  /// artifact_view() — the stream artifacts the engine already holds.
  /// No compression-pipeline primitive runs (the instrumentation
  /// counters of compress/instrumentation.h stay flat; enforced by
  /// tests/test_engine.cpp). Precondition: compress() was called.
  hwsim::SpeedupReport simulate_speedup(
      const hwsim::CpuParams& cpu = {},
      const hwsim::DecoderParams& decoder = {},
      const hwsim::SamplingParams& sampling = {}) const;

  /// BarrierPoint-style sampled variant of simulate_speedup
  /// (hwsim/sampled.h): clusters equal-geometry blocks by decode-trace
  /// signature, simulates one representative per cluster (fanned out
  /// over config.num_threads) and extrapolates the rest. Baseline
  /// cycles are exact by construction; sw/hw cycles carry the sampling
  /// error bounded by the returned summary. Deterministic from
  /// (engine state, config); also runs zero compression-pipeline work.
  /// Precondition: compress() was called.
  hwsim::SampledSpeedupReport simulate_speedup_sampled(
      const hwsim::SamplingConfig& config = {},
      const hwsim::CpuParams& cpu = {},
      const hwsim::DecoderParams& decoder = {},
      const hwsim::SamplingParams& sampling = {}) const;

  const bnn::ReActNet& model() const { return model_; }
  bnn::ReActNet& model() { return model_; }
  const compress::ModelReport& report() const;
  const std::vector<compress::KernelCompression>& block_streams() const;
  const EngineOptions& options() const { return options_; }

 private:
  EngineOptions options_;
  bnn::ReActNet model_;
  compress::ModelCompressor compressor_;
  bool compressed_ = false;
  compress::ModelReport report_;
  std::vector<compress::KernelCompression> streams_;
  /// Lazy pool of per-thread inference workspaces (bnn/memory_plan.h).
  /// Held by pointer: the pool's mutex makes it immovable, while Engine
  /// itself is moved (load_compressed returns by value).
  std::unique_ptr<bnn::WorkspacePool> workspaces_;
};

}  // namespace bkc
