#include "core/engine.h"

#include "compress/block_codec.h"
#include "compress/serialize.h"
#include "util/binary_io.h"
#include "util/check.h"
#include "util/mmap_file.h"
#include "util/thread_pool.h"

namespace bkc {

Engine::Engine(const bnn::ReActNetConfig& model_config,
               const EngineOptions& options)
    : options_(options),
      model_(model_config),
      compressor_(options.tree, options.clustering_config,
                  options.codec_id),
      workspaces_(
          std::make_unique<bnn::WorkspacePool>(model_.memory_plan())) {}

const compress::ModelReport& Engine::compress(int num_threads) {
  if (compressed_) return report_;
  // One compress_model() pass produces the report, both stream
  // artifacts and, when clustering, the kernel to deploy: coded_kernel
  // is exactly what the clustered stream encodes, so installing it
  // keeps verify_streams() bit-exact without re-running any per-block
  // primitive.
  compress::CompressedModel compressed =
      compressor_.compress_model(model_, num_threads);
  report_ = std::move(compressed.report);
  streams_.clear();
  streams_.reserve(compressed.blocks.size());
  for (compress::CompressedBlock& block : compressed.blocks) {
    streams_.push_back(std::move(options_.clustering ? block.clustered
                                                     : block.encoding));
  }
  if (options_.clustering) {
    for (std::size_t b = 0; b < model_.num_blocks(); ++b) {
      model_.block(b).conv3x3().set_kernel(streams_[b].coded_kernel);
    }
  }
  compressed_ = true;
  return report_;
}

Tensor Engine::classify(const Tensor& image, int num_threads) const {
  Tensor scores(FeatureShape{model_.config().num_classes, 1, 1});
  bnn::WorkspacePool::Lease lease = workspaces_->acquire();
  classify_into(image, scores, lease.workspace(), num_threads);
  return scores;
}

void Engine::classify_into(const Tensor& image, Tensor& scores,
                           bnn::Workspace& workspace, int num_threads) const {
  const FeatureShape out_shape{model_.config().num_classes, 1, 1};
  if (scores.shape() != out_shape) scores = Tensor(out_shape);
  // The binary convolutions pick the count up via current_num_threads();
  // the scoped override keeps the setting local to this call (and to
  // this thread).
  ScopedNumThreads threads(num_threads);
  model_.forward_into(image, scores, workspace);
}

std::vector<Tensor> Engine::classify_batch(const std::vector<Tensor>& images,
                                           int num_threads) const {
  std::vector<Tensor> scores(images.size());
  const FeatureShape out_shape{model_.config().num_classes, 1, 1};
  parallel_for(static_cast<std::int64_t>(images.size()), num_threads,
               [&](std::int64_t begin, std::int64_t end) {
                 // One workspace per worker, reused across the whole
                 // chunk — the pool grows to the peak worker count on
                 // the first batch and stops allocating from then on.
                 bnn::WorkspacePool::Lease lease = workspaces_->acquire();
                 bnn::Workspace& workspace = lease.workspace();
                 for (std::int64_t i = begin; i < end; ++i) {
                   const auto idx = static_cast<std::size_t>(i);
                   scores[idx] = Tensor(out_shape);
                   model_.forward_into(images[idx], scores[idx], workspace);
                 }
               });
  return scores;
}

bool Engine::verify_streams(int num_threads) const {
  check(compressed_, "Engine::verify_streams: call compress() first");
  std::vector<std::uint8_t> ok(streams_.size(), 0);
  parallel_for(static_cast<std::int64_t>(streams_.size()), num_threads,
               [&](std::int64_t begin, std::int64_t end) {
                 for (std::int64_t b = begin; b < end; ++b) {
                   const auto i = static_cast<std::size_t>(b);
                   const auto& stream = streams_[i];
                   const bnn::PackedKernel decoded =
                       compress::decode_block(stream);
                   ok[i] = decoded == model_.block(i).conv3x3().kernel();
                 }
               });
  for (std::uint8_t flag : ok) {
    if (!flag) return false;
  }
  return true;
}

void Engine::save_compressed(const std::string& path) const {
  check(compressed_, "Engine::save_compressed: call compress() first");
  // The field-wise overload serializes straight from the engine state —
  // no copy of the report or the per-block streams.
  const std::vector<std::uint8_t> file = compress::write_bkcm(
      options_.clustering, options_.tree, options_.clustering_config,
      model_.config(), report_, streams_);
  write_file_bytes(path, file);
}

Engine Engine::load_compressed(const std::string& path, int num_threads) {
  // Map rather than read: the container image is parsed in place and
  // the kernel streams decode straight out of the page cache. The
  // mapping only has to live for the duration of the parse — every
  // artifact read_bkcm returns is owned.
  const MmapFile file = MmapFile::open(path);
  return load_compressed(file.bytes(), num_threads);
}

Engine Engine::load_compressed(std::span<const std::uint8_t> file,
                               int num_threads) {
  compress::BkcmContents contents = compress::read_bkcm(file);

  // Rebuild the uncompressed layers (stem, batch norms, 1x1s,
  // classifier) deterministically from the stored configuration, then
  // replace every 3x3 kernel with the decoded stream content — the
  // decode-side reconstruction of the paper's Sec IV deployment story.
  Engine engine(
      contents.model_config,
      EngineOptions{.clustering = contents.clustering,
                    .tree = contents.tree,
                    .clustering_config = contents.clustering_config,
                    .codec_id = contents.streams.empty()
                                    ? compress::kCodecGroupedHuffman
                                    : contents.streams.front().codec_id});

  // Decode one stream per work unit; each unit writes only its own
  // slot, so the fan-out is bit-identical to the serial path. Decode
  // errors (a stream inconsistent with its codec) surface as CheckError
  // out of the pool's lowest-index propagation.
  const auto num_blocks = static_cast<std::int64_t>(contents.streams.size());
  check(static_cast<std::size_t>(num_blocks) == engine.model_.num_blocks(),
        "Engine::load_compressed: container stream count does not match "
        "the model");
  // Validate stream shapes against the model BEFORE decoding, so a
  // hostile-but-checksummed channel count cannot drive a huge decode
  // allocation.
  for (std::size_t b = 0; b < engine.model_.num_blocks(); ++b) {
    const auto& shape = engine.model_.block(b).conv3x3().kernel().shape();
    const compress::CompressedKernel& stream = contents.streams[b].compressed;
    check(stream.out_channels == shape.out_channels &&
              stream.in_channels == shape.in_channels,
          "Engine::load_compressed: stream shape for block " +
              std::to_string(b) + " (" + engine.model_.block(b).name() +
              ") does not match the model");
  }
  parallel_for(num_blocks, num_threads,
               [&](std::int64_t begin, std::int64_t end) {
                 for (std::int64_t b = begin; b < end; ++b) {
                   const auto i = static_cast<std::size_t>(b);
                   compress::KernelCompression& stream = contents.streams[i];
                   stream.coded_kernel = compress::decode_block(stream);
                 }
               });
  for (std::size_t b = 0; b < engine.model_.num_blocks(); ++b) {
    engine.model_.block(b).conv3x3().set_kernel(
        contents.streams[b].coded_kernel);
  }
  engine.report_ = std::move(contents.report);
  engine.streams_ = std::move(contents.streams);
  engine.compressed_ = true;
  return engine;
}

Engine Engine::load_compressed(const compress::MappedBkcm& mapped,
                               int num_threads) {
  const std::vector<compress::MappedBkcm::Block>& blocks = mapped.blocks();
  Engine engine(
      mapped.model_config(),
      EngineOptions{.clustering = mapped.clustering(),
                    .tree = mapped.tree(),
                    .clustering_config = mapped.clustering_config(),
                    .codec_id = blocks.empty()
                                    ? compress::kCodecGroupedHuffman
                                    : blocks.front().artifact.codec_id});
  const auto num_blocks = static_cast<std::int64_t>(blocks.size());
  check(blocks.size() == engine.model_.num_blocks(),
        "Engine::load_compressed: mapped block count does not match the "
        "model");
  // The same decode-allocation guard as the buffered path: shapes are
  // validated against the model before any stream decodes.
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const auto& shape = engine.model_.block(b).conv3x3().kernel().shape();
    const compress::CompressedKernel& stream = blocks[b].artifact.compressed;
    check(stream.out_channels == shape.out_channels &&
              stream.in_channels == shape.in_channels,
          "Engine::load_compressed: mapped stream shape for block " +
              std::to_string(b) + " (" + engine.model_.block(b).name() +
              ") does not match the model");
  }
  // Copy the small per-block artifacts (and the compressed bytes, so
  // the engine owns everything and outlives the mapping) serially, then
  // fan the expensive part — the kernel decode — out one stream per
  // work unit; each unit writes only its own slot, bit-identical to the
  // serial path.
  engine.streams_.reserve(blocks.size());
  for (const compress::MappedBkcm::Block& block : blocks) {
    compress::KernelCompression stream = block.artifact;
    stream.compressed.stream.assign(block.stream.begin(), block.stream.end());
    engine.streams_.push_back(std::move(stream));
  }
  parallel_for(num_blocks, num_threads,
               [&](std::int64_t begin, std::int64_t end) {
                 for (std::int64_t b = begin; b < end; ++b) {
                   const auto i = static_cast<std::size_t>(b);
                   compress::KernelCompression& stream = engine.streams_[i];
                   stream.coded_kernel = compress::decode_block(stream);
                 }
               });
  for (std::size_t b = 0; b < engine.model_.num_blocks(); ++b) {
    engine.model_.block(b).conv3x3().set_kernel(
        engine.streams_[b].coded_kernel);
  }
  engine.report_ = mapped.report();
  engine.compressed_ = true;
  return engine;
}

compress::CompressedModelView Engine::artifact_view() const {
  check(compressed_, "Engine::artifact_view: call compress() first");
  return compress::view_of(model_.op_records(), streams_);
}

hwsim::SpeedupReport Engine::simulate_speedup(
    const hwsim::CpuParams& cpu, const hwsim::DecoderParams& decoder,
    const hwsim::SamplingParams& sampling) const {
  check(compressed_, "Engine::simulate_speedup: call compress() first");
  // The view is built from the streams compress() already produced —
  // simulating costs zero compression-pipeline work.
  return hwsim::compare_model(artifact_view(), cpu, decoder, sampling);
}

hwsim::SampledSpeedupReport Engine::simulate_speedup_sampled(
    const hwsim::SamplingConfig& config, const hwsim::CpuParams& cpu,
    const hwsim::DecoderParams& decoder,
    const hwsim::SamplingParams& sampling) const {
  check(compressed_, "Engine::simulate_speedup_sampled: call compress() first");
  return hwsim::compare_model_sampled(artifact_view(), config, cpu, decoder,
                                      sampling);
}

const compress::ModelReport& Engine::report() const {
  check(compressed_, "Engine::report: call compress() first");
  return report_;
}

const std::vector<compress::KernelCompression>& Engine::block_streams()
    const {
  check(compressed_, "Engine::block_streams: call compress() first");
  return streams_;
}

}  // namespace bkc
