#include "core/engine.h"

#include "util/check.h"

namespace bkc {

Engine::Engine(const bnn::ReActNetConfig& model_config,
               const EngineOptions& options)
    : options_(options),
      model_(model_config),
      compressor_(options.tree, options.clustering_config) {}

const compress::ModelReport& Engine::compress() {
  if (compressed_) return report_;
  report_ = compressor_.analyze(model_);
  if (options_.clustering) {
    // Install the clustered kernels: the deployed network evaluates the
    // same weights the streams encode.
    for (std::size_t b = 0; b < model_.num_blocks(); ++b) {
      auto& conv = model_.block(b).conv3x3();
      const auto table =
          compress::FrequencyTable::from_kernel(conv.kernel());
      const auto clustering =
          compress::cluster_sequences(table, options_.clustering_config);
      conv.set_kernel(clustering.apply(conv.kernel()));
    }
  }
  streams_ = compressor_.compress_blocks(model_, /*apply_clustering=*/false);
  compressed_ = true;
  return report_;
}

Tensor Engine::classify(const Tensor& image) const {
  return model_.forward(image);
}

bool Engine::verify_streams() const {
  check(compressed_, "Engine::verify_streams: call compress() first");
  for (std::size_t b = 0; b < streams_.size(); ++b) {
    const auto& stream = streams_[b];
    const bnn::PackedKernel decoded =
        compress::decompress_kernel(stream.compressed, stream.codec);
    if (!(decoded == model_.block(b).conv3x3().kernel())) return false;
  }
  return true;
}

hwsim::SpeedupReport Engine::simulate_speedup(
    const hwsim::CpuParams& cpu, const hwsim::DecoderParams& decoder,
    const hwsim::SamplingParams& sampling) const {
  check(compressed_, "Engine::simulate_speedup: call compress() first");
  return hwsim::compare_model(model_, compressor_, cpu, decoder, sampling);
}

const compress::ModelReport& Engine::report() const {
  check(compressed_, "Engine::report: call compress() first");
  return report_;
}

const std::vector<compress::KernelCompression>& Engine::block_streams()
    const {
  check(compressed_, "Engine::block_streams: call compress() first");
  return streams_;
}

}  // namespace bkc
