#pragma once
// Minimal dense float tensor in CHW layout.
//
// This is the full-precision substrate: reference convolutions, batch
// norm / PReLU arithmetic and the int8-quantized input/output layers all
// operate on Tensor. The binary fast path uses the packed containers in
// bnn/bitpack.h instead.

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/shape.h"
#include "util/check.h"

namespace bkc {

/// Dense row-major float tensor of rank 3 (CHW). Value semantics.
class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialised tensor of the given shape.
  explicit Tensor(FeatureShape shape);

  /// Tensor with explicit contents; data.size() must equal shape.size().
  Tensor(FeatureShape shape, std::vector<float> data);

  const FeatureShape& shape() const { return shape_; }
  std::int64_t size() const { return shape_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::int64_t c, std::int64_t y, std::int64_t x);
  float at(std::int64_t c, std::int64_t y, std::int64_t x) const;

  /// Value at (c, y, x) treating out-of-bounds spatial coordinates as
  /// `pad`. Channels must be in range. Used by reference convolutions.
  float at_padded(std::int64_t c, std::int64_t y, std::int64_t x,
                  float pad) const;

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }

  /// Apply f to every element in place.
  template <typename F>
  void transform(F&& f) {
    for (float& v : data_) v = f(v);
  }

 private:
  FeatureShape shape_;
  std::vector<float> data_;
};

/// Dense OIHW float weight tensor for reference/full-precision layers.
class WeightTensor {
 public:
  WeightTensor() = default;
  explicit WeightTensor(KernelShape shape);
  WeightTensor(KernelShape shape, std::vector<float> data);

  const KernelShape& shape() const { return shape_; }
  std::int64_t size() const { return shape_.size(); }

  float& at(std::int64_t o, std::int64_t i, std::int64_t ky, std::int64_t kx);
  float at(std::int64_t o, std::int64_t i, std::int64_t ky,
           std::int64_t kx) const;

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }

 private:
  KernelShape shape_;
  std::vector<float> data_;
};

/// Reference (slow, obviously-correct) float convolution. All binary conv
/// implementations are tested for exact agreement against this on +/-1
/// tensors. Padding positions contribute `pad_value` (the paper pads
/// binary convs with -1, see Sec IV-B).
Tensor reference_conv2d(const Tensor& input, const WeightTensor& weights,
                        ConvGeometry geometry, float pad_value = -1.0f);

}  // namespace bkc
