#pragma once
// Minimal dense float tensor in CHW layout.
//
// This is the full-precision substrate: reference convolutions, batch
// norm / PReLU arithmetic and the int8-quantized input/output layers all
// operate on Tensor. The binary fast path uses the packed containers in
// bnn/bitpack.h instead.

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/shape.h"
#include "util/check.h"

namespace bkc {

/// Dense row-major float tensor of rank 3 (CHW). Value semantics.
class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialised tensor of the given shape.
  explicit Tensor(FeatureShape shape);

  /// Tensor with explicit contents; data.size() must equal shape.size().
  Tensor(FeatureShape shape, std::vector<float> data);

  const FeatureShape& shape() const { return shape_; }
  std::int64_t size() const { return shape_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::int64_t c, std::int64_t y, std::int64_t x);
  float at(std::int64_t c, std::int64_t y, std::int64_t x) const;

  /// Value at (c, y, x) treating out-of-bounds spatial coordinates as
  /// `pad`. Channels must be in range. Used by reference convolutions.
  float at_padded(std::int64_t c, std::int64_t y, std::int64_t x,
                  float pad) const;

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }

  /// Apply f to every element in place.
  template <typename F>
  void transform(F&& f) {
    for (float& v : data_) v = f(v);
  }

 private:
  FeatureShape shape_;
  std::vector<float> data_;
};

/// Non-owning mutable view of CHW float storage — a Tensor that lives
/// somewhere else, typically inside a Workspace arena. Shallow-const
/// like std::span: a `const TensorView` still refers to mutable
/// elements. Element access checks bounds with literal messages only,
/// so the view is safe on the zero-allocation forward path.
class TensorView {
 public:
  TensorView() = default;

  /// View of `data` interpreted with `shape`; sizes must match.
  TensorView(FeatureShape shape, std::span<float> data)
      : shape_(shape), data_(data) {
    check(static_cast<std::int64_t>(data.size()) == shape.size(),
          "TensorView: data size does not match shape");
  }

  /// Every Tensor is implicitly viewable, so the forward_into API
  /// accepts plain tensors at call sites that own their storage.
  TensorView(Tensor& tensor)  // NOLINT(google-explicit-constructor)
      : shape_(tensor.shape()), data_(tensor.data()) {}

  const FeatureShape& shape() const { return shape_; }
  std::int64_t size() const { return shape_.size(); }
  std::span<float> data() const { return data_; }

  float& at(std::int64_t c, std::int64_t y, std::int64_t x) const {
    check(c >= 0 && c < shape_.channels && y >= 0 && y < shape_.height &&
              x >= 0 && x < shape_.width,
          "TensorView::at out of range");
    return data_[static_cast<std::size_t>(
        (c * shape_.height + y) * shape_.width + x)];
  }

  /// View of the contiguous channel range [first, first + count): CHW
  /// layout makes channel sub-ranges contiguous, which is what lets
  /// the expand-block 1x1 convs write straight into the two halves of
  /// a concat destination without an intermediate tensor.
  TensorView channels(std::int64_t first, std::int64_t count) const {
    check(first >= 0 && count >= 0 && first + count <= shape_.channels,
          "TensorView::channels out of range");
    const std::int64_t plane = shape_.height * shape_.width;
    return {{count, shape_.height, shape_.width},
            data_.subspan(static_cast<std::size_t>(first * plane),
                          static_cast<std::size_t>(count * plane))};
  }

 private:
  FeatureShape shape_;
  std::span<float> data_;
};

/// Read-only companion of TensorView; both Tensor and TensorView
/// convert implicitly.
class ConstTensorView {
 public:
  ConstTensorView() = default;

  ConstTensorView(FeatureShape shape, std::span<const float> data)
      : shape_(shape), data_(data) {
    check(static_cast<std::int64_t>(data.size()) == shape.size(),
          "ConstTensorView: data size does not match shape");
  }

  ConstTensorView(const Tensor& tensor)  // NOLINT(google-explicit-constructor)
      : shape_(tensor.shape()), data_(tensor.data()) {}

  ConstTensorView(TensorView view)  // NOLINT(google-explicit-constructor)
      : shape_(view.shape()), data_(view.data()) {}

  const FeatureShape& shape() const { return shape_; }
  std::int64_t size() const { return shape_.size(); }
  std::span<const float> data() const { return data_; }

  float at(std::int64_t c, std::int64_t y, std::int64_t x) const {
    check(c >= 0 && c < shape_.channels && y >= 0 && y < shape_.height &&
              x >= 0 && x < shape_.width,
          "ConstTensorView::at out of range");
    return data_[static_cast<std::size_t>(
        (c * shape_.height + y) * shape_.width + x)];
  }

  ConstTensorView channels(std::int64_t first, std::int64_t count) const {
    check(first >= 0 && count >= 0 && first + count <= shape_.channels,
          "ConstTensorView::channels out of range");
    const std::int64_t plane = shape_.height * shape_.width;
    return {{count, shape_.height, shape_.width},
            data_.subspan(static_cast<std::size_t>(first * plane),
                          static_cast<std::size_t>(count * plane))};
  }

 private:
  FeatureShape shape_;
  std::span<const float> data_;
};

/// Deep copy of a view's contents into a fresh owning Tensor. The
/// compatibility wrapper Layer::forward_into uses this to bridge into
/// the allocating forward() path.
Tensor materialize(ConstTensorView view);

/// Element-wise copy between views of identical shape.
void copy_into(ConstTensorView source, TensorView destination);

/// Dense OIHW float weight tensor for reference/full-precision layers.
class WeightTensor {
 public:
  WeightTensor() = default;
  explicit WeightTensor(KernelShape shape);
  WeightTensor(KernelShape shape, std::vector<float> data);

  const KernelShape& shape() const { return shape_; }
  std::int64_t size() const { return shape_.size(); }

  float& at(std::int64_t o, std::int64_t i, std::int64_t ky, std::int64_t kx);
  float at(std::int64_t o, std::int64_t i, std::int64_t ky,
           std::int64_t kx) const;

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }

 private:
  KernelShape shape_;
  std::vector<float> data_;
};

/// Reference (slow, obviously-correct) float convolution. All binary conv
/// implementations are tested for exact agreement against this on +/-1
/// tensors. Padding positions contribute `pad_value` (the paper pads
/// binary convs with -1, see Sec IV-B).
Tensor reference_conv2d(const Tensor& input, const WeightTensor& weights,
                        ConvGeometry geometry, float pad_value = -1.0f);

}  // namespace bkc
