#pragma once
// Shape algebra for CHW feature maps and OIHW weight tensors.

#include <cstdint>
#include <string>

#include "util/check.h"

namespace bkc {

/// Shape of a single feature map: channels x height x width. Batch is
/// always 1 in this repository (edge inference, like the paper).
struct FeatureShape {
  std::int64_t channels = 0;
  std::int64_t height = 0;
  std::int64_t width = 0;

  std::int64_t size() const { return channels * height * width; }
  bool operator==(const FeatureShape&) const = default;

  std::string to_string() const {
    return std::to_string(channels) + "x" + std::to_string(height) + "x" +
           std::to_string(width);
  }
};

/// Shape of a convolution weight tensor: out_channels x in_channels x
/// kernel_h x kernel_w (OIHW).
struct KernelShape {
  std::int64_t out_channels = 0;
  std::int64_t in_channels = 0;
  std::int64_t kernel_h = 0;
  std::int64_t kernel_w = 0;

  std::int64_t size() const {
    return out_channels * in_channels * kernel_h * kernel_w;
  }
  /// Number of weights contributing to one output feature.
  std::int64_t receptive_size() const {
    return in_channels * kernel_h * kernel_w;
  }
  bool operator==(const KernelShape&) const = default;

  std::string to_string() const {
    return std::to_string(out_channels) + "x" + std::to_string(in_channels) +
           "x" + std::to_string(kernel_h) + "x" + std::to_string(kernel_w);
  }
};

/// Spatial hyper-parameters of a convolution.
struct ConvGeometry {
  std::int64_t stride = 1;
  std::int64_t padding = 0;

  /// Output extent for one spatial dimension.
  std::int64_t out_extent(std::int64_t in, std::int64_t kernel) const {
    check(stride >= 1, "ConvGeometry: stride must be >= 1");
    check(padding >= 0, "ConvGeometry: padding must be >= 0");
    const std::int64_t padded = in + 2 * padding - kernel;
    check(padded >= 0, "ConvGeometry: kernel larger than padded input");
    return padded / stride + 1;
  }

  FeatureShape output_shape(const FeatureShape& in,
                            const KernelShape& k) const {
    check(in.channels == k.in_channels,
          "ConvGeometry: channel mismatch between input and kernel");
    return {k.out_channels, out_extent(in.height, k.kernel_h),
            out_extent(in.width, k.kernel_w)};
  }
};

}  // namespace bkc
