#include "tensor/tensor.h"

#include <algorithm>

namespace bkc {

Tensor::Tensor(FeatureShape shape)
    : shape_(shape), data_(static_cast<std::size_t>(shape.size()), 0.0f) {
  check(shape.channels >= 0 && shape.height >= 0 && shape.width >= 0,
        "Tensor: negative dimension");
}

Tensor::Tensor(FeatureShape shape, std::vector<float> data)
    : shape_(shape), data_(std::move(data)) {
  check(static_cast<std::int64_t>(data_.size()) == shape.size(),
        "Tensor: data size does not match shape " + shape.to_string());
}

float& Tensor::at(std::int64_t c, std::int64_t y, std::int64_t x) {
  check(c >= 0 && c < shape_.channels && y >= 0 && y < shape_.height &&
            x >= 0 && x < shape_.width,
        "Tensor::at out of range");
  return data_[static_cast<std::size_t>((c * shape_.height + y) *
                                            shape_.width +
                                        x)];
}

float Tensor::at(std::int64_t c, std::int64_t y, std::int64_t x) const {
  return const_cast<Tensor*>(this)->at(c, y, x);
}

float Tensor::at_padded(std::int64_t c, std::int64_t y, std::int64_t x,
                        float pad) const {
  check(c >= 0 && c < shape_.channels, "Tensor::at_padded channel range");
  if (y < 0 || y >= shape_.height || x < 0 || x >= shape_.width) return pad;
  return at(c, y, x);
}

Tensor materialize(ConstTensorView view) {
  return Tensor(view.shape(),
                std::vector<float>(view.data().begin(), view.data().end()));
}

void copy_into(ConstTensorView source, TensorView destination) {
  check(source.shape() == destination.shape(),
        "copy_into: source and destination shapes differ");
  std::copy(source.data().begin(), source.data().end(),
            destination.data().begin());
}

WeightTensor::WeightTensor(KernelShape shape)
    : shape_(shape), data_(static_cast<std::size_t>(shape.size()), 0.0f) {
  check(shape.out_channels >= 0 && shape.in_channels >= 0 &&
            shape.kernel_h >= 0 && shape.kernel_w >= 0,
        "WeightTensor: negative dimension");
}

WeightTensor::WeightTensor(KernelShape shape, std::vector<float> data)
    : shape_(shape), data_(std::move(data)) {
  check(static_cast<std::int64_t>(data_.size()) == shape.size(),
        "WeightTensor: data size does not match shape " + shape.to_string());
}

float& WeightTensor::at(std::int64_t o, std::int64_t i, std::int64_t ky,
                        std::int64_t kx) {
  check(o >= 0 && o < shape_.out_channels && i >= 0 &&
            i < shape_.in_channels && ky >= 0 && ky < shape_.kernel_h &&
            kx >= 0 && kx < shape_.kernel_w,
        "WeightTensor::at out of range");
  return data_[static_cast<std::size_t>(
      ((o * shape_.in_channels + i) * shape_.kernel_h + ky) *
          shape_.kernel_w +
      kx)];
}

float WeightTensor::at(std::int64_t o, std::int64_t i, std::int64_t ky,
                       std::int64_t kx) const {
  return const_cast<WeightTensor*>(this)->at(o, i, ky, kx);
}

Tensor reference_conv2d(const Tensor& input, const WeightTensor& weights,
                        ConvGeometry geometry, float pad_value) {
  const FeatureShape out_shape =
      geometry.output_shape(input.shape(), weights.shape());
  Tensor out(out_shape);
  const auto& k = weights.shape();
  for (std::int64_t o = 0; o < out_shape.channels; ++o) {
    for (std::int64_t oy = 0; oy < out_shape.height; ++oy) {
      for (std::int64_t ox = 0; ox < out_shape.width; ++ox) {
        double acc = 0.0;
        const std::int64_t base_y = oy * geometry.stride - geometry.padding;
        const std::int64_t base_x = ox * geometry.stride - geometry.padding;
        for (std::int64_t i = 0; i < k.in_channels; ++i) {
          for (std::int64_t ky = 0; ky < k.kernel_h; ++ky) {
            for (std::int64_t kx = 0; kx < k.kernel_w; ++kx) {
              const float v =
                  input.at_padded(i, base_y + ky, base_x + kx, pad_value);
              acc += static_cast<double>(v) * weights.at(o, i, ky, kx);
            }
          }
        }
        out.at(o, oy, ox) = static_cast<float>(acc);
      }
    }
  }
  return out;
}

}  // namespace bkc
