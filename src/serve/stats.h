#pragma once
// Serving-side observability: per-model and per-tenant traffic counters
// for the in-process inference server (serve/scheduler.h).
//
// The scheduler records three events — a submission accepted into a
// queue, a submission rejected by admission control, and a dispatched
// batch (which carries the queue time and tenant of every request it
// drained). ServeStats aggregates them under one lock into plain
// counter structs; snapshot() copies the whole state out so callers
// (demo binaries, the load bench, tests) can read a consistent view
// without holding up the serving path.

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>

#include "util/stats.h"

namespace bkc::serve {

/// Counters for one traffic aggregate (the whole server, one model, or
/// one tenant). All durations are steady-clock nanoseconds.
struct Counters {
  std::uint64_t requests = 0;    ///< submissions accepted into a queue
  std::uint64_t rejects = 0;     ///< submissions refused by admission
  std::uint64_t batches = 0;     ///< dispatched batches (>= 1 request)
  std::uint64_t dispatched = 0;  ///< requests those batches drained
  std::uint64_t queue_ns = 0;    ///< total time dispatched requests queued
  /// Sum over batches of this aggregate's share of the batch capacity
  /// (batch size / max_batch for models; own-request count / max_batch
  /// for tenants). batch_occupancy() turns it into a mean fill factor.
  double occupancy_sum = 0.0;
  /// Queued-time distribution of dispatched requests (min/mean/max).
  RunningStats queue;

  /// Mean fill factor of the batches counted here, in [0, 1]: 1.0 means
  /// every batch left exactly max_batch full. 0 when nothing dispatched.
  double batch_occupancy() const {
    return batches == 0 ? 0.0
                        : occupancy_sum / static_cast<double>(batches);
  }
  /// Mean queued time per dispatched request, in milliseconds.
  double mean_queue_ms() const {
    return dispatched == 0 ? 0.0
                           : static_cast<double>(queue_ns) /
                                 static_cast<double>(dispatched) / 1e6;
  }
};

/// A consistent copy of every counter the server holds.
struct StatsSnapshot {
  Counters total;
  std::map<std::string, Counters> per_model;   ///< keyed by model name
  std::map<std::string, Counters> per_tenant;  ///< keyed by tenant name
};

/// One drained request as the scheduler reports it at dispatch time.
struct DispatchedRequest {
  std::string tenant;
  std::uint64_t queue_ns = 0;  ///< enqueue -> dispatch, steady clock
};

/// Thread-safe accumulator behind the scheduler. Recording an event
/// takes one mutex; the counters themselves are plain structs so a
/// snapshot is a single locked copy.
class ServeStats {
 public:
  /// A submission passed admission control and entered `model`'s queue.
  void record_accept(const std::string& model, const std::string& tenant);

  /// A submission was refused (queue full, or the scheduler stopping).
  void record_reject(const std::string& model, const std::string& tenant);

  /// One batch left `model`'s queue. `max_batch` is the configured
  /// capacity the occupancy is measured against. Precondition:
  /// non-empty `requests`, max_batch >= 1.
  void record_batch(const std::string& model,
                    std::span<const DispatchedRequest> requests,
                    int max_batch);

  StatsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  StatsSnapshot data_;
};

}  // namespace bkc::serve
