#pragma once
// The model registry: N BKCM containers resident at once, each mapped
// read-only exactly once and shared by every session that serves it.
//
// This is the deployment story of the paper scaled out: compressed
// models are small enough that many of them fit in memory together, the
// mappings are read-only (the page cache shares them across processes
// too), and the decode tables live alongside the mapping in one
// registry entry. Opening a model validates the container once
// (MappedBkcm::open — header, section table, CRCs) and reconstructs the
// inference engine once from the already-mapped state
// (Engine::load_compressed(MappedBkcm) — no second parse, no second
// checksum pass); every subsequent open() of the same name returns the
// same refcounted entry.
//
// Lifetime: handles are shared_ptrs. The registry holds one reference
// per resident model; sessions (schedulers, queued requests, demo code)
// hold the rest. evict_unused() drops every entry no session currently
// references — a model with in-flight requests can never be evicted out
// from under them, because each queued request pins its handle.

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "compress/serialize.h"
#include "core/engine.h"

namespace bkc::serve {

/// One resident model: the shared read-only mapping (decode tables +
/// compressed streams, for tooling/simulation consumers) plus the
/// Engine reconstructed from it (for classification). Immutable after
/// construction — every Engine method the serving path calls is const,
/// so one ServedModel is safely shared by any number of sessions.
class ServedModel {
 public:
  ServedModel(std::string name, std::string path,
              compress::MappedBkcm mapped, Engine engine)
      : name_(std::move(name)),
        path_(std::move(path)),
        mapped_(std::move(mapped)),
        engine_(std::move(engine)) {}

  const std::string& name() const { return name_; }
  const std::string& path() const { return path_; }
  /// The shared container mapping (streams, decode tables, report) —
  /// what `bkcm_tool speedup`-style consumers read without decoding.
  const compress::MappedBkcm& mapped() const { return mapped_; }
  /// The reconstructed engine; classify/classify_batch are const and
  /// safe to call from any session.
  const Engine& engine() const { return engine_; }

 private:
  std::string name_;
  std::string path_;
  compress::MappedBkcm mapped_;
  Engine engine_;
};

/// Refcounted access to a resident model. Hold one for as long as the
/// model is in use; the registry can only evict models with no
/// outstanding handles.
using ModelHandle = std::shared_ptr<const ServedModel>;

/// Open-once registry of BKCM containers, keyed by caller-chosen name.
/// Thread-safe: every method takes the registry lock (open() holds it
/// across the load, so two sessions racing to open the same name load
/// it exactly once and both get the same entry).
class ModelRegistry {
 public:
  /// `load_threads` sizes the stream-decode fan-out of each container
  /// load (Engine::load_compressed). Precondition: >= 1.
  explicit ModelRegistry(int load_threads = 2);

  /// Map + validate + reconstruct the container at `path` under `name`,
  /// or return the existing entry when `name` is already resident
  /// (open-once; a second open must name the same path — CheckError
  /// otherwise, so two sessions cannot silently serve different files
  /// under one name). CheckError on a truncated, corrupt or
  /// inconsistent container, naming the failing section; a failed open
  /// leaves the registry unchanged.
  ModelHandle open(const std::string& name, const std::string& path);

  /// The resident model named `name`; CheckError when absent.
  ModelHandle get(const std::string& name) const;

  /// Like get(), but nullptr when absent.
  ModelHandle find(const std::string& name) const;

  bool contains(const std::string& name) const;
  std::size_t size() const;
  std::vector<std::string> names() const;

  /// Drop every model no session holds a handle to (refcount == the
  /// registry's own reference) and return how many were evicted. Models
  /// with outstanding handles stay resident and keep their identity.
  std::size_t evict_unused();

 private:
  mutable std::mutex mutex_;
  int load_threads_;
  std::map<std::string, ModelHandle> models_;
};

}  // namespace bkc::serve
