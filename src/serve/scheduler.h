#pragma once
// Dynamic batching for the in-process inference server: coalesce
// concurrent single-image requests into the batches the parallel
// inference path (Engine::classify_batch) already eats.
//
// Shape of the system:
//
//   submit() ──> per-model FIFO queue ──> dispatcher thread ──┐
//   submit() ──>        ...             (one per scheduler)   │
//                                                             v
//                                       classify_batch on the shared
//                                       deterministic thread pool
//
// A batch leaves a model's queue as soon as EITHER max_batch requests
// are waiting OR the oldest request has waited max_delay (the latency
// deadline) — so light traffic pays at most the deadline in extra
// latency while heavy traffic fills batches and rides the parallel
// path at full occupancy. Admission control bounds every queue:
// submit() against a full queue fails immediately with a typed
// RejectError instead of growing the queue without bound.
//
// Determinism: batching never changes a result. classify_batch
// guarantees per-image outputs bit-identical to serial classify()
// regardless of batch composition or thread count (the fixed-partition
// contract of util/thread_pool.h), so however requests happen to
// coalesce, every response is bit-identical to calling classify_batch
// directly — tests/test_serve_scheduler.cpp enforces this at threads
// 1/2/4/7. Admission is deterministic too: acceptance depends only on
// the queue depth at submit time, never on timing inside the pool.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/registry.h"
#include "serve/stats.h"
#include "tensor/tensor.h"

namespace bkc::serve {

/// Why a submission was refused.
enum class RejectReason {
  kQueueFull,  ///< the model's queue is at SchedulerOptions::max_queue
  kStopped,    ///< the scheduler is stopping / stopped
};

const char* to_string(RejectReason reason);

/// The typed admission-control error: thrown by submit() instead of
/// queueing without bound. Carries the machine-readable reason next to
/// the human-readable message.
class RejectError : public std::runtime_error {
 public:
  RejectError(RejectReason reason, const std::string& message)
      : std::runtime_error(message), reason_(reason) {}
  RejectReason reason() const { return reason_; }

 private:
  RejectReason reason_;
};

struct SchedulerOptions {
  /// Dispatch a model's queue as soon as this many requests are waiting.
  int max_batch = 8;
  /// Latency deadline: dispatch the queue no later than this long after
  /// its oldest request was accepted, full batch or not.
  std::chrono::microseconds max_delay{2000};
  /// Admission bound per model queue; submit() beyond it rejects with
  /// RejectReason::kQueueFull.
  std::size_t max_queue = 64;
  /// classify_batch fan-out per dispatched batch (util/thread_pool.h).
  int num_threads = 1;
};

/// The batching scheduler. One background dispatcher thread serves any
/// number of models and submitting threads; results arrive through
/// std::future (fulfilled with the class-score tensor, or with the
/// exception classify_batch threw). Destruction stops the scheduler,
/// draining every queued request first — a future obtained from
/// submit() is always eventually fulfilled.
class BatchScheduler {
 public:
  explicit BatchScheduler(SchedulerOptions options = {});
  ~BatchScheduler();
  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Queue one image for `model` on behalf of `tenant`. Returns the
  /// future of its class scores. Throws RejectError (kQueueFull) when
  /// the model's queue is at max_queue, RejectError (kStopped) after
  /// stop(), and CheckError on a null handle. The handle is pinned by
  /// the queued request until its batch dispatches, so the registry
  /// cannot evict a model with work in flight.
  std::future<Tensor> submit(ModelHandle model, std::string tenant,
                             Tensor image);

  /// Stop accepting work, dispatch everything still queued, and join
  /// the dispatcher. Idempotent; called by the destructor.
  void stop();

  /// A consistent copy of the per-model / per-tenant counters.
  StatsSnapshot stats() const { return stats_.snapshot(); }

  const SchedulerOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    ModelHandle model;
    std::promise<Tensor> promise;
    Tensor image;
    std::string tenant;
    Clock::time_point enqueued;
  };

  void dispatcher_loop();
  /// Run one drained batch outside the lock: classify, fulfill the
  /// promises, record the dispatch.
  void run_batch(std::vector<Request> batch, Clock::time_point dispatch);

  SchedulerOptions options_;
  ServeStats stats_;

  std::mutex mutex_;
  std::condition_variable cv_;
  /// Per-model FIFO queues, keyed by model name. An entry exists only
  /// while requests are queued (erased when drained), so the scheduler
  /// itself never pins a ModelHandle between batches.
  std::map<std::string, std::deque<Request>> queues_;
  bool stopping_ = false;
  std::mutex join_mutex_;  ///< serializes stop() callers around join()
  std::thread dispatcher_;
};

}  // namespace bkc::serve
