#include "serve/registry.h"

#include <utility>

#include "util/check.h"

namespace bkc::serve {

ModelRegistry::ModelRegistry(int load_threads)
    : load_threads_(load_threads) {
  check(load_threads >= 1, "ModelRegistry: load_threads must be >= 1");
}

ModelHandle ModelRegistry::open(const std::string& name,
                                const std::string& path) {
  check(!name.empty(), "ModelRegistry::open: empty model name");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = models_.find(name);
  if (it != models_.end()) {
    check(it->second->path() == path,
          "ModelRegistry::open: model '" + name +
              "' is already resident from '" + it->second->path() +
              "', refusing to shadow it with '" + path + "'");
    return it->second;
  }
  // Validate once (header, sections, CRCs, payload plausibility), then
  // reconstruct the engine straight from the mapped state — the second
  // parse/CRC walk Engine::load_compressed(path) would do is skipped.
  compress::MappedBkcm mapped = compress::MappedBkcm::open(path);
  Engine engine = Engine::load_compressed(mapped, load_threads_);
  ModelHandle handle = std::make_shared<const ServedModel>(
      name, path, std::move(mapped), std::move(engine));
  models_.emplace(name, handle);
  return handle;
}

ModelHandle ModelRegistry::get(const std::string& name) const {
  ModelHandle handle = find(name);
  check(handle != nullptr,
        "ModelRegistry::get: no resident model named '" + name + "'");
  return handle;
}

ModelHandle ModelRegistry::find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

bool ModelRegistry::contains(const std::string& name) const {
  return find(name) != nullptr;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return models_.size();
}

std::vector<std::string> ModelRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [name, handle] : models_) out.push_back(name);
  return out;
}

std::size_t ModelRegistry::evict_unused() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t evicted = 0;
  for (auto it = models_.begin(); it != models_.end();) {
    // use_count == 1 means the registry holds the only reference; no
    // session can acquire a new handle concurrently because every
    // acquisition path takes mutex_, so the check cannot race.
    if (it->second.use_count() == 1) {
      it = models_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

}  // namespace bkc::serve
