#include "serve/scheduler.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace bkc::serve {

const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kQueueFull:
      return "queue_full";
    case RejectReason::kStopped:
      return "stopped";
  }
  unreachable("RejectReason out of range");
}

BatchScheduler::BatchScheduler(SchedulerOptions options)
    : options_(options) {
  check(options.max_batch >= 1,
        "BatchScheduler: max_batch must be >= 1");
  check(options.max_delay.count() >= 0,
        "BatchScheduler: max_delay must be >= 0");
  check(options.max_queue >= 1,
        "BatchScheduler: max_queue must be >= 1");
  check(options.num_threads >= 1,
        "BatchScheduler: num_threads must be >= 1");
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

BatchScheduler::~BatchScheduler() { stop(); }

std::future<Tensor> BatchScheduler::submit(ModelHandle model,
                                           std::string tenant,
                                           Tensor image) {
  check(model != nullptr, "BatchScheduler::submit: null model handle");
  const std::string& name = model->name();
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_) {
    stats_.record_reject(name, tenant);
    throw RejectError(RejectReason::kStopped,
                      "BatchScheduler::submit: scheduler is stopped "
                      "(model '" + name + "', tenant '" + tenant + "')");
  }
  std::deque<Request>& queue = queues_[name];
  if (queue.size() >= options_.max_queue) {
    // Admission control: refuse now, deterministically, instead of
    // letting the queue grow without bound. The depth check depends
    // only on what is queued at this instant, never on pool timing.
    stats_.record_reject(name, tenant);
    throw RejectError(
        RejectReason::kQueueFull,
        "BatchScheduler::submit: queue for model '" + name + "' is full (" +
            std::to_string(options_.max_queue) + " requests); tenant '" +
            tenant + "' rejected");
  }
  Request request{.model = std::move(model),
                  .promise = {},
                  .image = std::move(image),
                  .tenant = tenant,
                  .enqueued = Clock::now()};
  std::future<Tensor> future = request.promise.get_future();
  queue.push_back(std::move(request));
  stats_.record_accept(name, tenant);
  lock.unlock();
  cv_.notify_one();
  return future;
}

void BatchScheduler::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  // joinable() + join() under their own mutex so concurrent stop()
  // callers (user thread + destructor) cannot double-join.
  std::lock_guard<std::mutex> join_lock(join_mutex_);
  if (dispatcher_.joinable()) dispatcher_.join();
}

void BatchScheduler::dispatcher_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    // A queue is ready when it is full, past its deadline, or the
    // scheduler is draining for stop(). Among ready queues, serve the
    // one whose OLDEST request has waited longest (ties broken by model
    // name via map order) so no model is starved by another's traffic;
    // when none is ready, sleep until the earliest deadline or a
    // submit/stop wakes us to re-evaluate.
    const Clock::time_point now = Clock::now();
    auto ready = queues_.end();
    Clock::time_point earliest_deadline = Clock::time_point::max();
    bool any_pending = false;
    for (auto it = queues_.begin(); it != queues_.end(); ++it) {
      const std::deque<Request>& queue = it->second;
      if (queue.empty()) continue;
      any_pending = true;
      const Clock::time_point deadline =
          queue.front().enqueued + options_.max_delay;
      const bool is_ready =
          stopping_ ||
          queue.size() >= static_cast<std::size_t>(options_.max_batch) ||
          deadline <= now;
      if (is_ready) {
        if (ready == queues_.end() ||
            queue.front().enqueued < ready->second.front().enqueued) {
          ready = it;
        }
      } else {
        earliest_deadline = std::min(earliest_deadline, deadline);
      }
    }
    if (ready == queues_.end()) {
      if (!any_pending && stopping_) return;
      if (any_pending) {
        cv_.wait_until(lock, earliest_deadline);
      } else {
        cv_.wait(lock);
      }
      continue;
    }
    std::deque<Request>& queue = ready->second;
    const std::size_t take = std::min(
        queue.size(), static_cast<std::size_t>(options_.max_batch));
    std::vector<Request> batch;
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue.front()));
      queue.pop_front();
    }
    // Drop the drained entry so the scheduler pins no ModelHandle
    // between batches (registry eviction stays possible).
    if (queue.empty()) queues_.erase(ready);
    lock.unlock();
    run_batch(std::move(batch), Clock::now());
    lock.lock();
  }
}

void BatchScheduler::run_batch(std::vector<Request> batch,
                               Clock::time_point dispatch) {
  check(!batch.empty(), "BatchScheduler::run_batch: empty batch");
  const ModelHandle& model = batch.front().model;

  std::vector<Tensor> images;
  std::vector<DispatchedRequest> dispatched;
  images.reserve(batch.size());
  dispatched.reserve(batch.size());
  for (Request& request : batch) {
    images.push_back(std::move(request.image));
    const auto queued = std::chrono::duration_cast<std::chrono::nanoseconds>(
        dispatch - request.enqueued);
    dispatched.push_back(
        {request.tenant,
         static_cast<std::uint64_t>(std::max<std::int64_t>(
             queued.count(), 0))});
  }
  stats_.record_batch(model->name(), dispatched, options_.max_batch);

  try {
    // One classify_batch call per dispatched batch — exactly what a
    // caller batching by hand would run, so per-image results are
    // bit-identical to the direct path (classify_batch's own
    // serial-equivalence guarantee makes them independent of how
    // requests happened to coalesce). classify_batch leases one
    // Workspace per worker from the engine's pool (bnn/memory_plan.h),
    // so steady-state serving performs no per-image heap allocation
    // beyond the score tensors themselves.
    std::vector<Tensor> scores =
        model->engine().classify_batch(images, options_.num_threads);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.set_value(std::move(scores[i]));
    }
  } catch (...) {
    // A failed batch (e.g. a wrongly shaped image) fails every request
    // in it with the same exception; the futures stay fulfilled. A
    // promise that already received its value keeps it (set_exception
    // on a satisfied promise throws future_error, swallowed here).
    const std::exception_ptr error = std::current_exception();
    for (Request& request : batch) {
      try {
        request.promise.set_exception(error);
      } catch (const std::future_error&) {
      }
    }
  }
}

}  // namespace bkc::serve
