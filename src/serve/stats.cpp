#include "serve/stats.h"

#include <map>

#include "util/check.h"

namespace bkc::serve {

void ServeStats::record_accept(const std::string& model,
                               const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++data_.total.requests;
  ++data_.per_model[model].requests;
  ++data_.per_tenant[tenant].requests;
}

void ServeStats::record_reject(const std::string& model,
                               const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++data_.total.rejects;
  ++data_.per_model[model].rejects;
  ++data_.per_tenant[tenant].rejects;
}

void ServeStats::record_batch(const std::string& model,
                              std::span<const DispatchedRequest> requests,
                              int max_batch) {
  check(!requests.empty(), "ServeStats::record_batch: empty batch");
  check(max_batch >= 1, "ServeStats::record_batch: max_batch must be >= 1");
  const double capacity = static_cast<double>(max_batch);

  // Per-tenant composition of this batch, accumulated outside the lock.
  std::map<std::string, Counters> tenant_delta;
  std::uint64_t total_queue_ns = 0;
  for (const DispatchedRequest& request : requests) {
    Counters& t = tenant_delta[request.tenant];
    ++t.dispatched;
    t.queue_ns += request.queue_ns;
    total_queue_ns += request.queue_ns;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  const double batch_fill = static_cast<double>(requests.size()) / capacity;
  for (Counters* aggregate : {&data_.total, &data_.per_model[model]}) {
    ++aggregate->batches;
    aggregate->dispatched += requests.size();
    aggregate->queue_ns += total_queue_ns;
    aggregate->occupancy_sum += batch_fill;
  }
  for (const auto& [tenant, delta] : tenant_delta) {
    Counters& t = data_.per_tenant[tenant];
    ++t.batches;  // batches carrying >= 1 of this tenant's requests
    t.dispatched += delta.dispatched;
    t.queue_ns += delta.queue_ns;
    // The tenant's share of the batch capacity, so a tenant riding in
    // shared batches sees occupancy proportional to its traffic.
    t.occupancy_sum += static_cast<double>(delta.dispatched) / capacity;
  }
  for (const DispatchedRequest& request : requests) {
    const double queued_ns = static_cast<double>(request.queue_ns);
    data_.total.queue.add(queued_ns);
    data_.per_model[model].queue.add(queued_ns);
    data_.per_tenant[request.tenant].queue.add(queued_ns);
  }
}

StatsSnapshot ServeStats::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return data_;
}

}  // namespace bkc::serve
