#pragma once
// Whole-kernel compression: the compressed stream format (Sec IV-B).
//
// Encoded bit sequences have variable length, so channel packing cannot
// be done offline; the codewords are simply stored "consecutively in
// memory as a sequence of encoded words" in the canonical order
// (output-channel-major, then input channel). Decoding reproduces the
// channel-packed kernel bit-exactly.

#include <cstdint>
#include <vector>

#include "bnn/bitpack.h"
#include "compress/clustering.h"
#include "compress/grouped_huffman.h"
#include "compress/mst_codec.h"

namespace bkc::compress {

/// Block-codec identifiers, stable on disk (BKCM v2 stores one per
/// block). The registry lives in compress/block_codec.h; adding a
/// backend means claiming the next id here and registering it there.
inline constexpr std::uint32_t kCodecGroupedHuffman = 1;
inline constexpr std::uint32_t kCodecMstDelta = 2;

/// A 3x3 binary kernel in compressed form. Mirrors the hardware
/// configuration structure of Table III: number of sequences, pointer
/// (here: owned bytes) and length of the compressed stream; the Huffman
/// tree travels as the codec that produced the stream.
struct CompressedKernel {
  std::int64_t out_channels = 0;
  std::int64_t in_channels = 0;
  std::vector<std::uint8_t> stream;
  std::size_t stream_bits = 0;

  std::size_t num_sequences() const {
    return static_cast<std::size_t>(out_channels * in_channels);
  }
  /// Size of the uncompressed kernel (one bit per weight).
  std::uint64_t uncompressed_bits() const {
    return static_cast<std::uint64_t>(out_channels * in_channels *
                                      bnn::kSeqBits);
  }
  /// Compression ratio achieved on this kernel (stream only, like the
  /// paper's Table V).
  double ratio() const;
};

/// Encode every channel of `kernel` with `codec`.
CompressedKernel compress_kernel(const bnn::PackedKernel& kernel,
                                 const GroupedHuffmanCodec& codec);

/// Encode an already-extracted sequence list (out_channels * in_channels
/// entries in the canonical output-channel-major order). Equivalent to
/// compress_kernel on the kernel the sequences came from, without
/// re-extracting them — the single-pass pipeline extracts each kernel's
/// sequences once and feeds every downstream primitive from that list.
CompressedKernel compress_sequences(std::span<const SeqId> sequences,
                                    std::int64_t out_channels,
                                    std::int64_t in_channels,
                                    const GroupedHuffmanCodec& codec);

/// Decode back to the channel-packed layout. Inverse of compress_kernel
/// for any kernel whose sequences all have codewords.
bnn::PackedKernel decompress_kernel(const CompressedKernel& compressed,
                                    const GroupedHuffmanCodec& codec);

/// End-to-end per-kernel pipeline outcome (analysis -> optional
/// clustering -> codec -> stream), used by examples and tests that work
/// on a single kernel rather than a whole model.
struct KernelCompression {
  /// Which block codec produced (and can decode) `compressed`. Grouped
  /// Huffman artifacts populate `codec`; MST-delta artifacts populate
  /// `mst` (with `codec` left inert). Dispatch on this id via
  /// compress/block_codec.h.
  std::uint32_t codec_id = kCodecGroupedHuffman;
  FrequencyTable frequencies;        ///< before clustering
  ClusteringResult clustering;       ///< identity when disabled
  FrequencyTable coded_frequencies;  ///< after clustering
  GroupedHuffmanCodec codec;
  MstDictionary mst;  ///< populated only when codec_id == kCodecMstDelta
  CompressedKernel compressed;
  /// The kernel the stream actually encodes (clustered when enabled).
  bnn::PackedKernel coded_kernel;
  /// Per-sequence codeword bit lengths of `compressed` in stream order,
  /// computed once when the stream is emitted (or scanned once when a
  /// container is read). hwsim::StreamInfo borrows this vector instead
  /// of re-deriving lengths per call; their sum equals
  /// `compressed.stream_bits` by construction.
  std::vector<std::uint8_t> code_lengths;
};

/// Codeword bit lengths of `sequences` under `codec`, in stream order —
/// the `KernelCompression::code_lengths` artifact.
std::vector<std::uint8_t> code_lengths_for(std::span<const SeqId> sequences,
                                           const GroupedHuffmanCodec& codec);

/// Run the full pipeline on one kernel.
KernelCompression compress_kernel_pipeline(
    const bnn::PackedKernel& kernel, bool apply_clustering,
    const GroupedTreeConfig& tree = GroupedTreeConfig::paper(),
    const ClusteringConfig& clustering = {});

}  // namespace bkc::compress
