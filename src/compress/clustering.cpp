#include "compress/clustering.h"

#include <algorithm>
#include <limits>

#include "bnn/kernel_sequences.h"
#include "compress/instrumentation.h"
#include "util/check.h"

namespace bkc::compress {

ClusteringResult::ClusteringResult() {
  for (int s = 0; s < bnn::kNumSequences; ++s) {
    remap_[s] = static_cast<SeqId>(s);
  }
}

ClusteringResult ClusteringResult::from_replacements(
    std::vector<Replacement> replacements, std::uint64_t total_occurrences) {
  // `total_occurrences` is a sequence count; bounding it keeps every
  // accumulation below (occurrences * 9 fits) even on hostile input.
  check(total_occurrences <= std::numeric_limits<std::uint64_t>::max() /
                                 bnn::kSeqBits,
        "ClusteringResult: implausible total occurrence count");
  ClusteringResult result;
  result.total_occurrences_ = total_occurrences;
  for (const Replacement& r : replacements) {
    check(r.from < bnn::kNumSequences && r.to < bnn::kNumSequences,
          "ClusteringResult: replacement sequence id out of range");
    check(r.from != r.to, "ClusteringResult: self-replacement");
    // The stored distance is redundant with the pair itself; requiring
    // the exact value (not just [1, 9]) keeps flipped-bit accounting
    // honest on hostile input.
    check(r.distance == bnn::hamming_distance(r.from, r.to),
          "ClusteringResult: replacement distance does not match the "
          "sequence pair");
    check(result.remap_[r.from] == r.from,
          "ClusteringResult: sequence replaced twice");
    // Checked before each accumulation (not once at the end) so the sum
    // can never wrap past the total and slip through.
    check(r.occurrences <= total_occurrences - result.replaced_occurrences_,
          "ClusteringResult: replaced occurrences exceed the total");
    result.remap_[r.from] = r.to;
    result.replaced_occurrences_ += r.occurrences;
    result.flipped_weight_bits_ +=
        r.occurrences * static_cast<std::uint64_t>(r.distance);
  }
  // No chains: a replacement target must itself be an unreplaced
  // sequence (st and su are disjoint in cluster_sequences), otherwise
  // remap() would disagree with transitive application.
  for (const Replacement& r : replacements) {
    check(result.remap_[r.to] == r.to,
          "ClusteringResult: replacement target is itself replaced");
  }
  result.replacements_ = std::move(replacements);
  return result;
}

SeqId ClusteringResult::remap(SeqId s) const {
  check(s < bnn::kNumSequences, "ClusteringResult: id out of range");
  return remap_[s];
}

double ClusteringResult::flipped_bit_fraction() const {
  if (total_occurrences_ == 0) return 0.0;
  return static_cast<double>(flipped_weight_bits_) /
         (static_cast<double>(total_occurrences_) * bnn::kSeqBits);
}

FrequencyTable ClusteringResult::apply(const FrequencyTable& table) const {
  FrequencyTable out;
  for (int s = 0; s < bnn::kNumSequences; ++s) {
    const std::uint64_t c = table.count(static_cast<SeqId>(s));
    if (c > 0) out.add(remap_[s], c);
  }
  return out;
}

std::vector<SeqId> ClusteringResult::apply(
    std::span<const SeqId> sequences) const {
  std::vector<SeqId> out;
  out.reserve(sequences.size());
  for (SeqId s : sequences) out.push_back(remap(s));
  return out;
}

bnn::PackedKernel ClusteringResult::apply(
    const bnn::PackedKernel& kernel) const {
  const auto sequences = bnn::extract_sequences(kernel);
  const auto remapped = apply(std::span<const SeqId>(sequences));
  return bnn::kernel_from_sequences(kernel.shape().out_channels,
                                    kernel.shape().in_channels, remapped);
}

ClusteringResult cluster_sequences(const FrequencyTable& table,
                                   const ClusteringConfig& config) {
  internal::count_cluster_sequences();
  check(config.max_distance >= 1 && config.max_distance <= bnn::kSeqBits,
        "ClusteringConfig: max_distance must be in [1, 9]");
  ClusteringResult result;
  result.total_occurrences_ = table.total();
  if (table.total() == 0) return result;

  // st: the M most common sequences that actually occur.
  // su: the N least common sequences that actually occur, rarest first.
  const auto ranked = table.ranked();
  std::vector<SeqId> occurring;
  for (SeqId s : ranked) {
    if (table.count(s) > 0) occurring.push_back(s);
  }
  const std::size_t m = std::min(config.most_common, occurring.size());
  std::vector<SeqId> st(occurring.begin(),
                        occurring.begin() + static_cast<std::ptrdiff_t>(m));
  // su starts after st so the sets never overlap even when M + N exceeds
  // the number of occurring sequences.
  const std::size_t available = occurring.size() - m;
  const std::size_t n = std::min(config.least_common, available);
  std::vector<SeqId> su(occurring.end() - static_cast<std::ptrdiff_t>(n),
                        occurring.end());
  std::reverse(su.begin(), su.end());  // rarest first

  for (SeqId sa : su) {
    // Best candidate: minimal Hamming distance, then highest frequency
    // ("we employ the bit sequence with the highest frequency").
    int best_distance = config.max_distance + 1;
    std::uint64_t best_count = 0;
    SeqId best = sa;
    bool found = false;
    for (SeqId sb : st) {
      const int d = bnn::hamming_distance(sa, sb);
      if (d == 0 || d > config.max_distance) continue;
      const std::uint64_t c = table.count(sb);
      if (d < best_distance || (d == best_distance && c > best_count)) {
        best_distance = d;
        best_count = c;
        best = sb;
        found = true;
      }
    }
    if (!found) continue;  // keep s_a: no similar common sequence
    const std::uint64_t occurrences = table.count(sa);
    result.remap_[sa] = best;
    result.replacements_.push_back({.from = sa,
                                    .to = best,
                                    .occurrences = occurrences,
                                    .distance = best_distance});
    result.replaced_occurrences_ += occurrences;
    result.flipped_weight_bits_ +=
        occurrences * static_cast<std::uint64_t>(best_distance);
  }
  return result;
}

}  // namespace bkc::compress
