#pragma once
// The pluggable block-codec interface. A *block codec* owns the whole
// per-block compression story: the encode pass that turns a 3x3 binary
// kernel into stream + tables + report (ModelCompressor delegates its
// per-block work here), the decode back to the packed kernel, the
// per-block container payload (BKCM v2 stores a codec id per block and
// dispatches the payload bytes to the owning codec, for both the
// buffered and the mapped zero-copy read paths), and the artifact
// cross-checks behind `bkcm_tool verify`.
//
// Two backends are registered:
//   id 1 "grouped-huffman" — the paper's scheme (simplified Huffman
//       tree + Hamming-1 clustering), the default. Byte-identical to
//       the pre-interface pipeline: its per-block payload IS the v1
//       layout, and its compress pass is the original single-pass body
//       (the instrumentation counters still pin one frequency count,
//       one clustering search and two codec builds per block).
//   id 2 "mst-delta" — MST-compression kernel deltas (arXiv
//       2308.13735, adapted): the block's distinct sequences become a
//       dictionary laid out as a minimum spanning tree over Hamming
//       distance, and the stream is fixed-width dictionary indices.
//
// Registering a new backend: claim the next id in
// compress/kernel_codec.h, implement BlockCodec, and add the instance
// to the registry table in block_codec.cpp. Everything downstream —
// serialization, engine load/save, hwsim, serving, tooling, the codec
// shoot-out bench — picks it up through the registry.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "compress/pipeline.h"
#include "util/binary_io.h"

namespace bkc::compress {

/// Channel counts beyond this are a corrupt file, not a model (the
/// paper's largest block is 1024 channels). Shared plausibility bound
/// of every container read path.
inline constexpr std::int64_t kMaxChannels = 1 << 13;

/// Bound on every weight-tensor element count derivable from a
/// container (per 3x3 kernel and summed across blocks, stem,
/// classifier). ~6x above the paper model's total; rebuilding a loaded
/// model allocates at most this many weights per tensor class, so a
/// CRC-valid hostile file cannot drive multi-GB allocations during
/// Engine::load_compressed.
inline constexpr std::int64_t kMaxModelUnits = 1 << 25;

/// Read an int64 channel count and reject implausible values.
std::int64_t read_channel_count(ByteReader& reader, const char* what);

/// Parsed CompressedKernel fields with the stream still borrowed from
/// the reader's buffer — the shared front end of the copying
/// (read_bkcm) and zero-copy (MappedBkcm) read paths.
struct CompressedKernelRef {
  std::int64_t out_channels = 0;
  std::int64_t in_channels = 0;
  std::size_t stream_bits = 0;
  std::span<const std::uint8_t> stream;
};

CompressedKernelRef read_compressed_kernel_ref(ByteReader& reader);

/// One block artifact parsed from a container section. Everything
/// except the stream bytes is owned; `artifact.compressed.stream` is
/// left EMPTY and the bytes stay borrowed in `stream` so the mapped
/// path never copies a bitstream (the buffered path copies them in).
struct ParsedBlock {
  KernelCompression artifact;
  std::span<const std::uint8_t> stream;  ///< borrowed from the reader
};

/// The block-codec interface (see the file comment). Implementations
/// are stateless beyond their compression configuration, so one
/// instance can serve concurrent blocks.
class BlockCodec {
 public:
  virtual ~BlockCodec() = default;

  /// The on-disk codec id (compress/kernel_codec.h).
  virtual std::uint32_t id() const = 0;
  /// Stable human-readable name ("grouped-huffman", "mst-delta") —
  /// shown by `bkcm_tool info`, accepted by `bkcm_tool compress
  /// --codec`, stored in the v2 codec-directory section.
  virtual std::string_view name() const = 0;

  /// The full per-block encode pass: sequences -> stream + tables +
  /// report. Must derive every report field from the emitted artifacts
  /// (the no-drift contract of the single-pass pipeline).
  virtual CompressedBlock compress_block(
      const std::string& name, const bnn::PackedKernel& kernel) const = 0;

  /// Decode the artifact's stream back to the channel-packed kernel it
  /// encodes. Lossless inverse of the stream emitted by compress_block
  /// (for grouped-huffman, of the kernel AFTER clustering).
  virtual bnn::PackedKernel decode(const KernelCompression& stream) const = 0;

  /// Serialize the per-block container payload (everything except
  /// `coded_kernel`, which the loader reconstructs by decoding).
  virtual void write_block(ByteWriter& writer,
                           const KernelCompression& stream) const = 0;

  /// Parse one per-block payload, validating every locally checkable
  /// invariant; CheckError (carrying the reader's context) otherwise.
  /// The returned artifact carries recovered code lengths; the stream
  /// bytes stay borrowed (see ParsedBlock).
  virtual ParsedBlock read_block(ByteReader& reader) const = 0;

  /// Deep artifact cross-checks for `bkcm_tool verify`: decode the
  /// stream and confirm it reproduces the stored statistics. CheckError
  /// (naming block `index`) on any mismatch.
  virtual void verify_artifact(const KernelCompression& stream,
                               std::size_t index) const = 0;
};

// ---- Registry ----

/// True when `id` names a registered codec.
bool block_codec_registered(std::uint32_t id);

/// The process-wide default-configuration instance for `id` — the
/// dispatch target of every decode/read/write/verify path (those are
/// independent of the compression configuration). CheckError on an
/// unregistered id: this is the gate that keeps a CRC-valid hostile v2
/// container from selecting a codec that does not exist.
const BlockCodec& codec_for(std::uint32_t id);

/// Registered codec ids, ascending. codec_for(id).name() gives the
/// display name.
std::span<const std::uint32_t> registered_block_codecs();

/// Codec id for a registry name (`bkcm_tool compress --codec`).
/// CheckError listing the registered names when `name` is unknown.
std::uint32_t block_codec_id(std::string_view name);

/// A codec instance carrying a specific compression configuration, for
/// ModelCompressor. (grouped-huffman uses both configs; mst-delta has
/// no tuning and ignores them.) CheckError on an unregistered id.
std::shared_ptr<const BlockCodec> make_block_codec(
    std::uint32_t id, GroupedTreeConfig tree, ClusteringConfig clustering);

/// Decode `stream` with the codec that produced it (dispatch on
/// `stream.codec_id` through the registry).
bnn::PackedKernel decode_block(const KernelCompression& stream);

}  // namespace bkc::compress
