#include "compress/multi_decode.h"

#include <algorithm>

#include "util/check.h"
#include "util/static_switch.h"

namespace bkc::compress {
namespace {

// Bit `pos` of a kWindowBits-wide window value, MSB-first, matching the
// stream order BitReader::peek_bits returns.
inline int window_bit(std::uint32_t window, unsigned pos) {
  return static_cast<int>(
      (window >> (MultiDecoder::kWindowBits - 1 - pos)) & 1u);
}

}  // namespace

MultiDecoder::MultiDecoder(std::vector<int> index_bits,
                           const std::vector<std::vector<SeqId>>& tables)
    : index_bits_(std::move(index_bits)) {
  check(!index_bits_.empty(), "MultiDecoder: need at least one node");
  check(tables.size() == index_bits_.size(),
        "MultiDecoder: table count does not match the tree shape");
  table_offset_.reserve(tables.size());
  table_size_.reserve(tables.size());
  for (const auto& table : tables) {
    table_offset_.push_back(static_cast<std::uint32_t>(flat_.size()));
    table_size_.push_back(static_cast<std::uint32_t>(table.size()));
    flat_.insert(flat_.end(), table.begin(), table.end());
  }
  // A one-node tree is a fixed-width code; decode() never consults the
  // window table there, so skip the 2^12-entry build.
  if (num_nodes() > 1) {
    BKC_NUM_NODES_SWITCH(num_nodes(), kNumNodes,
                         [&] { build_window<kNumNodes>(); });
  }
}

template <int kNumNodes>
void MultiDecoder::build_window() {
  const int nodes = kNumNodes == 0 ? num_nodes() : kNumNodes;
  window_.assign(std::size_t{1} << kWindowBits, Entry{});
  for (std::uint32_t w = 0; w < (1u << kWindowBits); ++w) {
    Entry& entry = window_[w];
    unsigned pos = 0;
    while (entry.count < kMaxSymbolsPerEntry) {
      // Parse one codeword starting at `pos`, committing only if it
      // fits entirely inside the window and hits an occupied table
      // slot; otherwise the tail is left for the next lookup (or, at
      // the stream head, for the bit-exact per-symbol fallback).
      unsigned p = pos;
      int node = 0;
      while (node < nodes - 1 && p < kWindowBits && window_bit(w, p)) {
        ++p;
        ++node;
      }
      if (node < nodes - 1) {
        if (p >= kWindowBits) break;  // prefix runs off the window
        ++p;                          // the terminating 0 bit
      }
      const auto width =
          static_cast<unsigned>(index_bits_[static_cast<std::size_t>(node)]);
      if (p + width > kWindowBits) break;  // index runs off the window
      std::uint32_t index = 0;
      for (unsigned b = 0; b < width; ++b) {
        index = (index << 1) |
                static_cast<std::uint32_t>(window_bit(w, p + b));
      }
      p += width;
      const auto n = static_cast<std::size_t>(node);
      if (index >= table_size_[n]) break;  // corrupt: fallback raises
      entry.seq[entry.count] = flat_[table_offset_[n] + index];
      entry.bits_after[entry.count] = static_cast<std::uint8_t>(p);
      ++entry.count;
      pos = p;
    }
  }
}

std::vector<SeqId> MultiDecoder::decode(std::span<const std::uint8_t> stream,
                                        std::size_t bit_count,
                                        std::size_t count) const {
  check(!index_bits_.empty(), "MultiDecoder: decoder is empty");
  BitReader reader(stream, bit_count);
  std::vector<SeqId> out;
  out.reserve(count);
  BKC_BOOL_SWITCH(num_nodes() == 1, kSingleNode, [&] {
    if constexpr (kSingleNode) {
      decode_fixed_width(reader, count, out);
    } else {
      BKC_NUM_NODES_SWITCH(num_nodes(), kNumNodes, [&] {
        decode_windowed<kNumNodes>(reader, count, out);
      });
    }
  });
  return out;
}

template <int kNumNodes>
void MultiDecoder::decode_windowed(BitReader& reader, std::size_t count,
                                   std::vector<SeqId>& out) const {
  std::size_t decoded = 0;
  while (decoded < count) {
    if (reader.remaining() >= kWindowBits) {
      const Entry& entry =
          window_[static_cast<std::size_t>(reader.peek_bits(kWindowBits))];
      if (entry.count > 0) {
        const auto take = static_cast<int>(std::min<std::size_t>(
            entry.count, count - decoded));
        for (int i = 0; i < take; ++i) out.push_back(entry.seq[i]);
        reader.skip_bits(entry.bits_after[take - 1]);
        decoded += static_cast<std::size_t>(take);
        continue;
      }
    }
    // Near the stream end, past-the-window codes, or corruption: decode
    // one symbol exactly like the reference so errors match bit for bit.
    out.push_back(decode_one_slow<kNumNodes>(reader));
    ++decoded;
  }
}

template <int kNumNodes>
SeqId MultiDecoder::decode_one_slow(BitReader& reader) const {
  const int nodes = kNumNodes == 0 ? num_nodes() : kNumNodes;
  int node = 0;
  while (node < nodes - 1 && reader.read_bit()) ++node;
  const auto width =
      static_cast<unsigned>(index_bits_[static_cast<std::size_t>(node)]);
  const auto index = static_cast<std::size_t>(reader.read_bits(width));
  const auto n = static_cast<std::size_t>(node);
  check(index < table_size_[n],
        "GroupedHuffmanCodec: corrupt stream (index beyond table)");
  return flat_[table_offset_[n] + index];
}

void MultiDecoder::decode_fixed_width(BitReader& reader, std::size_t count,
                                      std::vector<SeqId>& out) const {
  const auto width = static_cast<unsigned>(index_bits_[0]);
  for (std::size_t i = 0; i < count; ++i) {
    const auto index = static_cast<std::size_t>(reader.read_bits(width));
    check(index < table_size_[0],
          "GroupedHuffmanCodec: corrupt stream (index beyond table)");
    out.push_back(flat_[index]);
  }
}

}  // namespace bkc::compress
