#pragma once
// Frequency analysis of bit sequences (Sec III-A of the paper).
//
// The whole compression scheme is driven by one statistic: how often
// each of the 512 possible bit sequences occurs in the 3x3 kernels of a
// basic block. FrequencyTable accumulates those counts and provides the
// ranked views used by the Huffman construction (Sec III-B), the
// clustering pass (Sec III-C) and the Table II / Fig. 3 benches.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "bnn/bitpack.h"
#include "bnn/bitseq.h"

namespace bkc::compress {

using bnn::SeqId;

/// Occurrence counts for all 512 bit sequences.
class FrequencyTable {
 public:
  FrequencyTable() = default;

  /// Count every sequence in a list.
  static FrequencyTable from_sequences(std::span<const SeqId> sequences);

  /// Count every channel of a 3x3 packed kernel.
  static FrequencyTable from_kernel(const bnn::PackedKernel& kernel);

  /// Add `count` occurrences of sequence `s`.
  void add(SeqId s, std::uint64_t count = 1);

  /// Merge another table into this one.
  void merge(const FrequencyTable& other);

  std::uint64_t count(SeqId s) const;
  std::uint64_t total() const { return total_; }
  const std::array<std::uint64_t, bnn::kNumSequences>& counts() const {
    return counts_;
  }

  /// Number of distinct sequences with a non-zero count ("the number of
  /// unique sequences ... is typically low", Sec I).
  std::size_t distinct() const;

  /// All 512 sequence ids ordered by descending count (ties by id, so
  /// the ranking is deterministic).
  std::vector<SeqId> ranked() const;

  /// Fraction of occurrences belonging to sequence `s`.
  double share(SeqId s) const;

  /// Fraction of occurrences covered by the k most frequent sequences
  /// (the Table II metric).
  double top_k_share(std::size_t k) const;

  /// Shannon entropy in bits per sequence - the bound no prefix code can
  /// beat. Precondition: total() > 0.
  double entropy_bits() const;

 private:
  std::array<std::uint64_t, bnn::kNumSequences> counts_{};
  std::uint64_t total_ = 0;
};

}  // namespace bkc::compress
