#pragma once
// Invocation counters for the offline pipeline primitives.
//
// The single-pass contract of ModelCompressor::compress_model — exactly
// one frequency count, one clustering search and one codec build per
// distinct input per block — is enforceable only if those invocations
// are observable. Each primitive bumps a process-wide atomic counter;
// tests snapshot the counters around a pipeline run and assert on the
// delta. The counters are monotone (never reset), so concurrent runs
// cannot corrupt another snapshot's baseline, and the relaxed atomic
// increments are far too cheap to perturb the measured hot path.

#include <cstdint>

namespace bkc::compress {

/// Monotone snapshot of the pipeline-primitive invocation counts.
struct PipelineCounters {
  /// FrequencyTable counting passes (from_sequences; from_kernel
  /// delegates there, so either entry point counts once).
  std::uint64_t frequency_counts = 0;
  std::uint64_t cluster_sequences_calls = 0;  ///< cluster_sequences()
  std::uint64_t grouped_codec_builds = 0;     ///< GroupedHuffmanCodec(table)

  /// Per-field difference against an earlier snapshot.
  PipelineCounters delta_since(const PipelineCounters& earlier) const;
};

/// Current process-wide counts (thread-safe).
PipelineCounters pipeline_counters();

namespace internal {
void count_frequency_count();
void count_cluster_sequences();
void count_grouped_codec_build();
}  // namespace internal

}  // namespace bkc::compress
