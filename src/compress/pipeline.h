#pragma once
// Model-level compression pipeline (Sec IV-A), organised as ONE pass
// per basic block:
//   1. compute the frequency of use of every bit sequence in the
//      block's 3x3 binary kernel (offline),
//   2. run the clustering pass (Sec III-C),
//   3. build the simplified Huffman trees and assign encodings,
//   4. emit the compressed stream per block (with and without
//      clustering),
//   5. derive every report number from those artifacts.
// Each primitive — frequency count, clustering search, codec build —
// runs exactly once per distinct input per block; the report is a pure
// function of the emitted artifacts, so measured and deployed storage
// can never drift apart. The per-block numbers feed Table II / Table V;
// the model-level ratio (the paper's 1.2x) weighs the compressed 3x3
// convolutions against the unchanged rest of the network using the
// Table I storage breakdown.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bnn/reactnet.h"
#include "compress/kernel_codec.h"

namespace bkc::compress {

class BlockCodec;  // compress/block_codec.h

/// Everything measured about one basic block's 3x3 kernel. Every field
/// is derived from the block's CompressedBlock artifacts.
struct BlockReport {
  std::string block_name;
  std::uint64_t num_sequences = 0;     ///< channel count (O*I)
  std::size_t distinct_sequences = 0;  ///< unique bit sequences observed
  double top16_share = 0.0;            ///< Fig. 3 aggregate
  double top64_share = 0.0;            ///< Table II column 1
  double top256_share = 0.0;           ///< Table II column 2
  double entropy_bits = 0.0;           ///< optimal bits/sequence bound

  std::uint64_t uncompressed_bits = 0;
  std::uint64_t encoding_bits = 0;   ///< grouped tree, no clustering
  std::uint64_t clustering_bits = 0; ///< grouped tree after clustering
  double encoding_ratio = 0.0;       ///< Table V column "Encoding"
  double clustering_ratio = 0.0;     ///< Table V column "Clustering"
  double huffman_ratio = 0.0;        ///< full-Huffman upper bound

  /// Frequency share landing on each tree node (the paper quotes
  /// 46/24/23/5% before and 65/25/8/0.6% after clustering).
  std::vector<double> node_shares_encoding;
  std::vector<double> node_shares_clustering;

  /// Accuracy proxy: fraction of kernel weight bits flipped.
  double flipped_bit_fraction = 0.0;
  std::size_t replaced_sequences = 0;  ///< distinct sequences removed

  /// Decode-table storage of the clustered codec for this block.
  std::uint64_t decode_table_bits = 0;
};

/// Whole-model outcome.
struct ModelReport {
  std::vector<BlockReport> blocks;

  std::uint64_t model_bits = 0;             ///< total parameter storage
  std::uint64_t conv3x3_bits = 0;           ///< uncompressed 3x3 storage
  std::uint64_t conv3x3_encoding_bits = 0;  ///< after encoding only
  std::uint64_t conv3x3_clustering_bits = 0;
  std::uint64_t decode_table_bits = 0;      ///< clustering-mode tables

  double mean_encoding_ratio = 0.0;    ///< paper: 1.18-1.25, avg ~1.2
  double mean_clustering_ratio = 0.0;  ///< paper: 1.32 on average
  /// Whole-model storage ratio with the clustered streams (paper: 1.2x).
  double model_ratio = 0.0;
  /// Same, charging the decode tables to the compressed side.
  double model_ratio_with_tables = 0.0;
};

/// One basic block's complete pipeline outcome: both stream artifacts
/// (Table V's two columns) plus the report derived from them. Carrying
/// both columns costs one extra codec/stream/kernel copy per block at
/// peak versus a single-artifact layout — accepted so that every
/// consumer (report, deploy, verify, hwsim) reads from the same pass.
struct CompressedBlock {
  KernelCompression encoding;   ///< stream over the original kernel
  KernelCompression clustered;  ///< stream over the clustered kernel
  BlockReport report;           ///< derived from the two artifacts
};

/// Whole-model outcome of the single pass: per-block artifacts plus the
/// aggregated report (which embeds copies of the per-block reports).
struct CompressedModel {
  std::vector<CompressedBlock> blocks;
  ModelReport report;
};

/// Serial in-order reduction of per-block reports into a ModelReport.
/// `model_bits` is the whole-model parameter storage (Table I total).
/// Fails with CheckError when `blocks` is empty, when the storage
/// breakdown is inconsistent (model_bits < the summed 3x3 bits — the
/// unsigned subtraction would otherwise underflow), or when the
/// compressed-side storage is zero bits (the ratio would be inf).
/// Exposed so the hardening is testable with fabricated reports.
ModelReport aggregate_block_reports(std::vector<BlockReport> blocks,
                                    std::uint64_t model_bits);

/// Drives the pipeline over a ReActNet. The per-block work is owned by
/// a block codec (compress/block_codec.h) selected by `codec_id`; the
/// default is the paper's grouped-huffman scheme, whose per-block pass
/// is bit-identical to the pre-interface pipeline.
class ModelCompressor {
 public:
  explicit ModelCompressor(GroupedTreeConfig tree = GroupedTreeConfig::paper(),
                           ClusteringConfig clustering = {},
                           std::uint32_t codec_id = kCodecGroupedHuffman);

  /// The single pass: build the frequency table, clustering result and
  /// both codecs exactly once per block, emit both streams, and derive
  /// every report field from those artifacts. Blocks fan out over
  /// `num_threads` (util/thread_pool.h) with a fixed partition and a
  /// serial in-order reduction, so the result is bit-identical to the
  /// serial (num_threads == 1) outcome at every thread count. Does not
  /// mutate the model. Fails fast on a model with no blocks.
  CompressedModel compress_model(const bnn::ReActNet& model,
                                 int num_threads = 1) const;

  /// Measure everything (both Table V columns) without mutating the
  /// model. Thin view over compress_model(): returns just the report.
  /// Costs a full pass (streams included) — callers that also need the
  /// artifacts should call compress_model() once instead; the single
  /// code path is the point of the design (no report/stream drift).
  ModelReport analyze(const bnn::ReActNet& model, int num_threads = 1) const;

  /// Per-block compression artifacts (codec + stream + coded kernel),
  /// with or without the clustering pass. Thin view over
  /// compress_model(): returns the selected artifact per block (and,
  /// like analyze(), costs one full pass).
  std::vector<KernelCompression> compress_blocks(const bnn::ReActNet& model,
                                                 bool apply_clustering,
                                                 int num_threads = 1) const;

  /// Install the clustered kernels into the model (this is what the
  /// deployed network evaluates) and return the analysis report — one
  /// compress_model() pass end to end.
  ModelReport compress_and_install(bnn::ReActNet& model,
                                   int num_threads = 1) const;

  const GroupedTreeConfig& tree() const { return tree_; }
  const ClusteringConfig& clustering() const { return clustering_; }
  std::uint32_t codec_id() const { return codec_id_; }

 private:
  CompressedBlock compress_block(const std::string& name,
                                 const bnn::PackedKernel& kernel) const;

  GroupedTreeConfig tree_;
  ClusteringConfig clustering_;
  std::uint32_t codec_id_ = kCodecGroupedHuffman;
  std::shared_ptr<const BlockCodec> codec_;
};

}  // namespace bkc::compress
