#pragma once
// Model-level compression pipeline (Sec IV-A):
//   1. compute the frequency of use of every bit sequence in each basic
//      block's 3x3 binary kernel (offline),
//   2. optionally run the clustering pass (Sec III-C),
//   3. build the simplified Huffman tree and assign encodings,
//   4. emit the compressed stream per block.
// The per-block numbers feed Table II / Table V; the model-level ratio
// (the paper's 1.2x) weighs the compressed 3x3 convolutions against the
// unchanged rest of the network using the Table I storage breakdown.

#include <cstdint>
#include <string>
#include <vector>

#include "bnn/reactnet.h"
#include "compress/kernel_codec.h"

namespace bkc::compress {

/// Everything measured about one basic block's 3x3 kernel.
struct BlockReport {
  std::string block_name;
  std::uint64_t num_sequences = 0;     ///< channel count (O*I)
  std::size_t distinct_sequences = 0;  ///< unique bit sequences observed
  double top16_share = 0.0;            ///< Fig. 3 aggregate
  double top64_share = 0.0;            ///< Table II column 1
  double top256_share = 0.0;           ///< Table II column 2
  double entropy_bits = 0.0;           ///< optimal bits/sequence bound

  std::uint64_t uncompressed_bits = 0;
  std::uint64_t encoding_bits = 0;   ///< grouped tree, no clustering
  std::uint64_t clustering_bits = 0; ///< grouped tree after clustering
  double encoding_ratio = 0.0;       ///< Table V column "Encoding"
  double clustering_ratio = 0.0;     ///< Table V column "Clustering"
  double huffman_ratio = 0.0;        ///< full-Huffman upper bound

  /// Frequency share landing on each tree node (the paper quotes
  /// 46/24/23/5% before and 65/25/8/0.6% after clustering).
  std::vector<double> node_shares_encoding;
  std::vector<double> node_shares_clustering;

  /// Accuracy proxy: fraction of kernel weight bits flipped.
  double flipped_bit_fraction = 0.0;
  std::size_t replaced_sequences = 0;  ///< distinct sequences removed

  /// Decode-table storage of the clustered codec for this block.
  std::uint64_t decode_table_bits = 0;
};

/// Whole-model outcome.
struct ModelReport {
  std::vector<BlockReport> blocks;

  std::uint64_t model_bits = 0;             ///< total parameter storage
  std::uint64_t conv3x3_bits = 0;           ///< uncompressed 3x3 storage
  std::uint64_t conv3x3_encoding_bits = 0;  ///< after encoding only
  std::uint64_t conv3x3_clustering_bits = 0;
  std::uint64_t decode_table_bits = 0;      ///< clustering-mode tables

  double mean_encoding_ratio = 0.0;    ///< paper: 1.18-1.25, avg ~1.2
  double mean_clustering_ratio = 0.0;  ///< paper: 1.32 on average
  /// Whole-model storage ratio with the clustered streams (paper: 1.2x).
  double model_ratio = 0.0;
  /// Same, charging the decode tables to the compressed side.
  double model_ratio_with_tables = 0.0;
};

/// Drives the pipeline over a ReActNet.
class ModelCompressor {
 public:
  explicit ModelCompressor(GroupedTreeConfig tree = GroupedTreeConfig::paper(),
                           ClusteringConfig clustering = {});

  /// Measure everything (both Table V columns) without mutating the
  /// model. Blocks are analyzed independently, fanned out over
  /// `num_threads` (util/thread_pool.h) with a fixed partition and a
  /// serial in-order reduction, so the report is bit-identical to the
  /// serial (num_threads == 1) result at every thread count.
  ModelReport analyze(const bnn::ReActNet& model, int num_threads = 1) const;

  /// Per-block compression artifacts (codec + stream + coded kernel),
  /// with or without the clustering pass. Per-block work fans out over
  /// `num_threads`; streams are bit-identical at every thread count.
  std::vector<KernelCompression> compress_blocks(const bnn::ReActNet& model,
                                                 bool apply_clustering,
                                                 int num_threads = 1) const;

  /// Install the clustered kernels into the model (this is what the
  /// deployed network evaluates) and return the analysis report.
  ModelReport compress_and_install(bnn::ReActNet& model) const;

  const GroupedTreeConfig& tree() const { return tree_; }
  const ClusteringConfig& clustering() const { return clustering_; }

 private:
  BlockReport analyze_block(const std::string& name,
                            const bnn::PackedKernel& kernel) const;

  GroupedTreeConfig tree_;
  ClusteringConfig clustering_;
};

}  // namespace bkc::compress
