#pragma once
// CompressedModelView — the artifact boundary between the compression
// pipeline and every downstream consumer of its outputs.
//
// The hwsim decoder/timing model (and any future deployment backend)
// needs exactly what the paper's hardware unit is configured with: per
// block, the decode tables, the clustering remap, the compressed
// bitstream and its per-codeword lengths — plus the model's op-record
// layout to know which op each stream belongs to. It does NOT need a
// live ReActNet or a ModelCompressor, and it must never trigger a
// compression pass of its own. CompressedModelView is that contract: a
// non-owning bundle of spans/pointers over artifacts that already
// exist, whether they live
//   * in an Engine (Engine::artifact_view over block_streams()),
//   * in a freshly run pipeline (view_of over its KernelCompressions),
//   * or in a memory-mapped BKCM container (MappedBkcm::view — the
//     bitstream spans point straight into the file mapping).
//
// Ownership rule: `ops` is owned by the view (op records are small
// value-type layout metadata, rebuilt on the fly by every producer);
// everything reachable from `blocks` is borrowed and must outlive the
// view. The view itself is cheap to move; copying it never copies a
// stream.

#include <cstdint>
#include <span>
#include <vector>

#include "bnn/model.h"
#include "compress/kernel_codec.h"

namespace bkc::compress {

/// Non-owning spans over one basic block's compression artifacts (the
/// hardware configuration of the paper's Table III, plus the decode
/// tables and remap the unit is loaded with).
struct BlockStreamView {
  std::int64_t out_channels = 0;
  std::int64_t in_channels = 0;
  /// The compressed kernel bitstream (MSB-first codewords).
  std::span<const std::uint8_t> stream;
  std::size_t stream_bits = 0;
  /// Per-sequence codeword bit lengths in stream order; their sum is
  /// `stream_bits`.
  std::span<const std::uint8_t> code_lengths;
  /// Decode tables (the Fig. 6 scratchpad banks). Inert (default-
  /// constructed) when `codec_id` is not grouped-huffman.
  const GroupedHuffmanCodec* codec = nullptr;
  /// Clustering remap the stream was emitted under (identity when the
  /// pipeline ran without clustering).
  const ClusteringResult* clustering = nullptr;
  /// Which block codec (compress/block_codec.h registry) emitted the
  /// stream. Declared last so existing designated initializers that
  /// stop at `clustering` keep compiling (they get the grouped default).
  std::uint32_t codec_id = kCodecGroupedHuffman;

  std::size_t num_sequences() const {
    return static_cast<std::size_t>(out_channels * in_channels);
  }
};

/// The whole-model artifact view: the op-record layout (owned) and one
/// borrowed BlockStreamView per 3x3 binary convolution, in op order.
struct CompressedModelView {
  std::vector<bnn::OpRecord> ops;
  std::vector<BlockStreamView> blocks;
};

/// Build a view over pipeline/engine artifacts: one BlockStreamView per
/// entry of `streams` (which must outlive the view), paired in order
/// with the 3x3 binary-conv ops of `ops`. CheckError when the stream
/// count does not match the op layout, a stream's channel shape does
/// not match its op, or a stream carries no code-length vector (an
/// artifact produced before the lengths were part of the contract).
CompressedModelView view_of(std::vector<bnn::OpRecord> ops,
                            std::span<const KernelCompression> streams);

/// Shared assembly step for every view producer: pair pre-built block
/// views with the 3x3 binary-conv ops of `ops` in order, validating the
/// block count, each block's channel shape against its op, and that
/// every block carries one code length per sequence. CheckError (naming
/// the op or block index) on any mismatch.
CompressedModelView assemble_view(std::vector<bnn::OpRecord> ops,
                                  std::vector<BlockStreamView> blocks);

}  // namespace bkc::compress
