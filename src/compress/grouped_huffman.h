#pragma once
// The paper's simplified Huffman tree (Sec III-B, Fig. 4, Sec VI).
//
// Instead of a full Huffman tree, the alphabet is partitioned over a
// small number of *nodes*; every sequence assigned to node i shares the
// same codeword length. A codeword is a node prefix followed by a fixed
// width index into that node's table:
//
//     node 0: prefix 0    + 5 index bits  -> 6-bit codes,  32 entries
//     node 1: prefix 10   + 6 index bits  -> 8-bit codes,  64 entries
//     node 2: prefix 110  + 6 index bits  -> 9-bit codes,  64 entries
//     node 3: prefix 111  + 9 index bits  -> 12-bit codes, 512 entries
//
// which reproduces the paper's "6, 8, 9 and 12 bits" exactly. The most
// frequent sequences fill node 0 first, then node 1, and so on. During
// decode the prefix selects the node, the *length table* gives the index
// width, and the *uncompressed table* (a small banked scratchpad in the
// hardware unit, Fig. 6) maps the index back to the 9-bit sequence.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "compress/frequency.h"
#include "compress/multi_decode.h"
#include "util/bitstream.h"

namespace bkc::compress {

/// Shape of the simplified tree: one index width per node. Node i < n-1
/// has prefix `1^i 0` (i+1 bits); the last node has prefix `1^(n-1)`.
/// A single-node config degenerates to a fixed-width code.
struct GroupedTreeConfig {
  std::vector<int> index_bits{5, 6, 6, 9};

  int num_nodes() const { return static_cast<int>(index_bits.size()); }
  int prefix_length(int node) const;
  int code_length(int node) const;
  std::uint64_t capacity(int node) const;
  std::uint64_t total_capacity() const;

  /// Validate: 1..14 nodes, index widths in [0, 16].
  void validate() const;

  /// The paper's evaluated configuration ({5,6,6,9} index bits).
  static GroupedTreeConfig paper();
  /// Fixed 9-bit code (no compression) - the baseline storage format.
  static GroupedTreeConfig fixed9();
};

/// Codec over the simplified tree, built from a frequency table by
/// filling nodes in rank order.
class GroupedHuffmanCodec {
 public:
  /// An inert codec (paper tree shape, every table empty, no sequence
  /// has a codeword). The value a KernelCompression carries when its
  /// block was produced by a non-grouped codec. Does not bump the
  /// instrumentation build counter: nothing was built from data.
  GroupedHuffmanCodec();

  /// Build from counts. All sequences with non-zero count must fit in
  /// the total capacity (the paper's config has capacity 672 >= 512, so
  /// this always holds there); zero-count sequences are assigned
  /// codewords while capacity remains, for robust decode of any stream.
  GroupedHuffmanCodec(const FrequencyTable& table,
                      GroupedTreeConfig config = GroupedTreeConfig::paper());

  /// Rebuild a codec from its decode tables (one sequence list per
  /// node), the serialized form of compress/serialize.h and the exact
  /// payload a hardware decoder ships (Fig. 6 scratchpad banks). The
  /// codeword assignment (node_of/index_of) is derived from the table
  /// positions, so a restored codec encodes and decodes identically to
  /// the one that wrote the tables. CheckError when the table count
  /// does not match the config, a node overflows its capacity, an id is
  /// out of range, or a sequence appears twice. Does not bump the
  /// instrumentation build counter: restoring tables is I/O, not
  /// pipeline work.
  GroupedHuffmanCodec(GroupedTreeConfig config,
                      std::vector<std::vector<SeqId>> tables);

  const GroupedTreeConfig& config() const { return config_; }

  bool has_code(SeqId s) const;
  int node_of(SeqId s) const;
  unsigned index_of(SeqId s) const;
  unsigned code_length(SeqId s) const;

  void encode_one(BitWriter& writer, SeqId s) const;
  SeqId decode_one(BitReader& reader) const;

  std::vector<std::uint8_t> encode(std::span<const SeqId> sequences,
                                   std::size_t& bit_count) const;

  /// Decode `count` sequences. Dispatches to the table-driven
  /// multi-symbol path (compress/multi_decode.h) unless
  /// simd::scalar_forced() pins the bit-serial reference; both paths
  /// are bit-identical, including which CheckError a truncated or
  /// corrupt stream raises.
  std::vector<SeqId> decode(std::span<const std::uint8_t> stream,
                            std::size_t bit_count, std::size_t count) const;

  /// The bit-serial reference: decode_one per symbol. The bit-identity
  /// suites and benchmarks diff the fast path against this.
  std::vector<SeqId> decode_scalar(std::span<const std::uint8_t> stream,
                                   std::size_t bit_count,
                                   std::size_t count) const;

  /// The table-driven multi-symbol path, regardless of scalar_forced().
  std::vector<SeqId> decode_multi(std::span<const std::uint8_t> stream,
                                  std::size_t bit_count,
                                  std::size_t count) const;

  /// The node's uncompressed table (index -> sequence), i.e. the
  /// contents of the hardware scratchpad bank for that node.
  std::span<const SeqId> uncompressed_table(int node) const;

  /// Number of sequences actually assigned to `node`.
  std::size_t node_occupancy(int node) const;

  /// Fraction of occurrences in `table` that fall on `node` (the paper
  /// quotes 46% / 24% / 23% / 5% before clustering).
  double node_share(int node, const FrequencyTable& table) const;

  /// Total encoded size of all occurrences in `table`.
  std::uint64_t encoded_bits(const FrequencyTable& table) const;

  /// 9*total / encoded_bits - the paper's per-block compression ratio
  /// (Table V). Excludes decode-table storage, like the paper; use
  /// table_bits() to account for it separately.
  double compression_ratio(const FrequencyTable& table) const;

  /// Storage for the decode tables: 9 bits per occupied uncompressed-
  /// table entry plus 4 bits per length-table entry.
  std::uint64_t table_bits() const;

 private:
  GroupedTreeConfig config_;
  // Per sequence: node (or -1) and index within the node.
  std::array<std::int8_t, bnn::kNumSequences> node_{};
  std::array<std::uint16_t, bnn::kNumSequences> index_{};
  std::vector<std::vector<SeqId>> tables_;  // node -> index -> sequence
  MultiDecoder multi_;  // built eagerly by both ctors; value-semantic
};

/// Per-codeword bit lengths of an encoded stream in stream order,
/// recovered by reading each codeword's node prefix only (the index
/// bits are skipped): no decode-table lookups, no sequence
/// reconstruction. Identical to the lengths the encoder assigned, so a
/// mapped container can expose a code-length vector without decoding a
/// single kernel. CheckError when the stream ends mid-codeword or the
/// `count` codewords do not consume exactly `bit_count` bits.
std::vector<std::uint8_t> scan_code_lengths(
    std::span<const std::uint8_t> stream, std::size_t bit_count,
    std::size_t count, const GroupedTreeConfig& config);

}  // namespace bkc::compress
