#pragma once
// BKCM ("BNN Kernel-Compressed Model") — the on-disk container for a
// compressed model, v2 (v1 containers still load). This is the
// deployment artifact: the model ships as the per-block codec payloads
// (decode tables / dictionaries plus the compressed kernel streams —
// exactly what the Sec IV hardware decoder consumes), the clustering
// remap and frequency statistics, the model configuration needed to
// rebuild the uncompressed layers, and the compression report. The 3x3
// kernels themselves are NOT stored — the loader reconstructs them by
// decoding the streams (core/engine.h, Engine::load_compressed).
//
// File layout (everything little-endian, util/binary_io.h):
//
//   +--------------------------------------------------------------+
//   | magic "BKCM" | version u32 | flags u32 | section_count u32   |
//   +--------------------------------------------------------------+
//   | section table: id u32 | offset u64 | length u64 | crc32 u32  |
//   |   (one row per section, offsets absolute from file start)    |
//   +--------------------------------------------------------------+
//   | 'CONF' tree + clustering config, ReActNet model config       |
//   | 'REPT' ModelReport (doubles stored as IEEE-754 bit patterns) |
//   | 'BLKS' per-block payloads; v2 prefixes each with its codec id|
//   | 'CDCS' (v2) codec directory: ids + names used by 'BLKS'      |
//   +--------------------------------------------------------------+
//
// Version negotiation: a v1 container is strict — exactly the three
// core sections, in order, 'BLKS' implicitly grouped-huffman. A v2
// container starts with the same three core sections (each 'BLKS'
// block prefixed by a u32 codec id, dispatched through the
// compress/block_codec.h registry) and may append optional sections;
// a reader validates structure + CRC of every section but skips
// optional ids it does not know, so future minor additions stay
// readable. Both versions reject bad magic, an unknown flag bit, an
// unregistered codec id, a section range outside the file, a checksum
// mismatch, and trailing bytes — always with CheckError naming the
// offending section, never undefined behaviour
// (tests/test_bkcm_robustness.cpp). Any breaking layout change bumps
// kBkcmVersion; README.md ("On-disk format") states the compat policy.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bnn/reactnet.h"
#include "compress/kernel_codec.h"
#include "compress/model_view.h"
#include "compress/pipeline.h"
#include "util/binary_io.h"
#include "util/mmap_file.h"

namespace bkc::compress {

/// Four-character section/file tag packed little-endian (the first
/// character is the file's first byte).
constexpr std::uint32_t fourcc(char a, char b, char c, char d) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}

inline constexpr std::uint32_t kBkcmMagic = fourcc('B', 'K', 'C', 'M');
/// The version this build writes. Readers accept [kBkcmMinVersion,
/// kBkcmVersion]; see the version-negotiation policy above.
inline constexpr std::uint32_t kBkcmVersion = 2;
inline constexpr std::uint32_t kBkcmMinVersion = 1;
/// flags bit 0: the engine that wrote the file ran the clustering pass
/// (the streams encode the clustered kernels).
inline constexpr std::uint32_t kBkcmFlagClustering = 1u << 0;

inline constexpr std::uint32_t kBkcmSectionConfig = fourcc('C', 'O', 'N', 'F');
inline constexpr std::uint32_t kBkcmSectionReport = fourcc('R', 'E', 'P', 'T');
inline constexpr std::uint32_t kBkcmSectionBlocks = fourcc('B', 'L', 'K', 'S');
/// v2 optional section: the codec directory — (id, name) of every
/// distinct codec used by 'BLKS', ascending. Redundant with the
/// per-block ids by design: a reader cross-checks it against the
/// registry and the streams, and tooling can list the codecs without
/// parsing a single block payload.
inline constexpr std::uint32_t kBkcmSectionCodecs = fourcc('C', 'D', 'C', 'S');

/// Everything a BKCM container holds. `streams` carries one
/// KernelCompression per basic block in model order; its `coded_kernel`
/// member is NOT part of the container (the loader reconstructs it by
/// decoding `compressed` with `codec`) and is left default-constructed
/// by read_bkcm().
struct BkcmContents {
  bool clustering = true;
  GroupedTreeConfig tree;
  ClusteringConfig clustering_config;
  bnn::ReActNetConfig model_config;
  ModelReport report;
  std::vector<KernelCompression> streams;
};

// ---- Per-struct serializers ----
// Each write_x/read_x pair is an exact inverse (locked down field by
// field in tests/test_serialize.cpp); readers validate every invariant
// they can check locally and fail with CheckError carrying the
// reader's context.

void write_tree_config(ByteWriter& writer, const GroupedTreeConfig& config);
GroupedTreeConfig read_tree_config(ByteReader& reader);

void write_clustering_config(ByteWriter& writer,
                             const ClusteringConfig& config);
ClusteringConfig read_clustering_config(ByteReader& reader);

void write_block_config(ByteWriter& writer, const bnn::BlockConfig& config);
bnn::BlockConfig read_block_config(ByteReader& reader);

void write_reactnet_config(ByteWriter& writer,
                           const bnn::ReActNetConfig& config);
bnn::ReActNetConfig read_reactnet_config(ByteReader& reader);

/// Sparse form: (id, count) pairs for the non-zero entries, ids
/// strictly ascending (the canonical order — a reader rejects anything
/// else, so every table has exactly one valid encoding).
void write_frequency_table(ByteWriter& writer, const FrequencyTable& table);
FrequencyTable read_frequency_table(ByteReader& reader);

/// The replacement list plus the total; the remap and the derived
/// counters are rebuilt via ClusteringResult::from_replacements.
void write_clustering_result(ByteWriter& writer,
                             const ClusteringResult& result);
ClusteringResult read_clustering_result(ByteReader& reader);

/// Tree config plus the per-node decode tables (the hardware scratchpad
/// banks); the codeword assignment is derived from the table positions.
void write_codec(ByteWriter& writer, const GroupedHuffmanCodec& codec);
GroupedHuffmanCodec read_codec(ByteReader& reader);

void write_compressed_kernel(ByteWriter& writer,
                             const CompressedKernel& kernel);
CompressedKernel read_compressed_kernel(ByteReader& reader);

/// Everything except `coded_kernel` (reconstructed by decoding). The
/// GROUPED-HUFFMAN per-block payload — the v1 block layout, and the v2
/// grouped payload behind its codec-id word. Other codecs serialize
/// through their BlockCodec::write_block/read_block instead.
void write_kernel_compression(ByteWriter& writer,
                              const KernelCompression& stream);
KernelCompression read_kernel_compression(ByteReader& reader);

void write_block_report(ByteWriter& writer, const BlockReport& report);
BlockReport read_block_report(ByteReader& reader);

void write_model_report(ByteWriter& writer, const ModelReport& report);
ModelReport read_model_report(ByteReader& reader);

// ---- Container ----

/// Serialize to a complete BKCM file image (header, section table,
/// checksummed sections). Deterministic: the same contents always
/// produce the same bytes (the golden-file test pins this).
std::vector<std::uint8_t> write_bkcm(const BkcmContents& contents);

/// Same bytes from the individual parts — lets callers that already
/// hold them (Engine::save_compressed) serialize without first copying
/// the report and every stream into a BkcmContents.
std::vector<std::uint8_t> write_bkcm(
    bool clustering, const GroupedTreeConfig& tree,
    const ClusteringConfig& clustering_config,
    const bnn::ReActNetConfig& model_config, const ModelReport& report,
    const std::vector<KernelCompression>& streams);

/// Parse and validate a BKCM file image. CheckError (naming the header
/// or section at fault) on any structural or checksum failure.
BkcmContents read_bkcm(std::span<const std::uint8_t> file);

/// One validated row of the section table.
struct BkcmSection {
  std::string name;  ///< fourcc as text, e.g. "CONF"
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint32_t crc = 0;
};

/// Header summary for tooling (`bkcm_tool info`). Validates the header,
/// section table and checksums, but does not parse section payloads.
struct BkcmInfo {
  std::uint32_t version = 0;
  std::uint32_t flags = 0;
  std::uint64_t file_size = 0;
  std::vector<BkcmSection> sections;
};

BkcmInfo inspect_bkcm(std::span<const std::uint8_t> file);

/// read_bkcm reusing an `info` previously returned by inspect_bkcm() on
/// the SAME bytes — skips the header walk and the per-section CRC pass
/// (tooling that prints the section table and then parses would
/// otherwise checksum the whole file twice).
BkcmContents read_bkcm(std::span<const std::uint8_t> file,
                       const BkcmInfo& info);

// ---- Zero-copy container access ----

/// A BKCM container opened without materializing a model: the file
/// stays memory-mapped (util/mmap_file.h) and its 'BLKS' section is
/// exposed as CompressedModelView blocks. Opening validates the header,
/// section table and CRCs, parses the small sections ('CONF', 'REPT')
/// and the small per-block artifacts (decode tables, remaps, frequency
/// statistics), and scans each stream's codeword prefixes for its
/// code-length vector — but never decodes a kernel and never copies a
/// bitstream: every BlockStreamView::stream points straight into the
/// mapping. This is the Sec IV deployment story for the simulator —
/// `bkcm_tool speedup` runs the full CPU/decoder comparison from a
/// container file alone.
///
/// Lifetime: views returned by view() borrow this object (the mapping
/// and the owned per-block artifacts). Moving a MappedBkcm keeps all
/// borrowed addresses valid (the mapping never moves and the per-block
/// storage is heap-allocated); destroying it invalidates every view.
class MappedBkcm {
 public:
  /// One block of the mapped 'BLKS' section: the owned small artifacts
  /// (everything a KernelCompression carries, with
  /// `artifact.compressed.stream` left EMPTY and `artifact.coded_kernel`
  /// never decoded) plus the stream bytes borrowed from the mapping.
  struct Block {
    KernelCompression artifact;
    std::span<const std::uint8_t> stream;  ///< borrowed from the mapping
  };

  /// Map `path` and parse it as described above. CheckError (naming the
  /// path, header or section at fault) on any I/O, structural, checksum
  /// or payload failure — the same gates as read_bkcm.
  static MappedBkcm open(const std::string& path);

  const BkcmInfo& info() const { return info_; }
  /// The raw mapped container image (every Block::stream is a subspan
  /// of this).
  std::span<const std::uint8_t> file_bytes() const { return file_.bytes(); }
  bool clustering() const { return clustering_; }
  const GroupedTreeConfig& tree() const { return tree_; }
  const ClusteringConfig& clustering_config() const {
    return clustering_config_;
  }
  const bnn::ReActNetConfig& model_config() const { return model_config_; }
  const ModelReport& report() const { return report_; }
  const std::vector<Block>& blocks() const { return blocks_; }

  /// The artifact view over the mapped blocks, paired with `ops` — the
  /// op-record layout of a model built from model_config() (op records
  /// depend only on the configuration, never on kernel contents, so any
  /// such model yields the same layout). The view borrows this object.
  CompressedModelView view(std::vector<bnn::OpRecord> ops) const;

 private:
  MmapFile file_;
  BkcmInfo info_;
  bool clustering_ = true;
  GroupedTreeConfig tree_;
  ClusteringConfig clustering_config_;
  bnn::ReActNetConfig model_config_;
  ModelReport report_;
  std::vector<Block> blocks_;
};

}  // namespace bkc::compress
