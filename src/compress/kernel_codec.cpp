#include "compress/kernel_codec.h"

#include "bnn/kernel_sequences.h"
#include "util/check.h"

namespace bkc::compress {

double CompressedKernel::ratio() const {
  check(stream_bits > 0, "CompressedKernel: empty stream");
  return static_cast<double>(uncompressed_bits()) /
         static_cast<double>(stream_bits);
}

CompressedKernel compress_kernel(const bnn::PackedKernel& kernel,
                                 const GroupedHuffmanCodec& codec) {
  const auto sequences = bnn::extract_sequences(kernel);
  return compress_sequences(sequences, kernel.shape().out_channels,
                            kernel.shape().in_channels, codec);
}

CompressedKernel compress_sequences(std::span<const SeqId> sequences,
                                    std::int64_t out_channels,
                                    std::int64_t in_channels,
                                    const GroupedHuffmanCodec& codec) {
  check(sequences.size() ==
            static_cast<std::size_t>(out_channels * in_channels),
        "compress_sequences: sequence count does not match the shape");
  CompressedKernel out;
  out.out_channels = out_channels;
  out.in_channels = in_channels;
  out.stream = codec.encode(sequences, out.stream_bits);
  return out;
}

std::vector<std::uint8_t> code_lengths_for(std::span<const SeqId> sequences,
                                           const GroupedHuffmanCodec& codec) {
  std::vector<std::uint8_t> lengths;
  lengths.reserve(sequences.size());
  for (const SeqId s : sequences) {
    lengths.push_back(static_cast<std::uint8_t>(codec.code_length(s)));
  }
  return lengths;
}

bnn::PackedKernel decompress_kernel(const CompressedKernel& compressed,
                                    const GroupedHuffmanCodec& codec) {
  const auto sequences =
      codec.decode(compressed.stream, compressed.stream_bits,
                   compressed.num_sequences());
  return bnn::kernel_from_sequences(compressed.out_channels,
                                    compressed.in_channels, sequences);
}

KernelCompression compress_kernel_pipeline(const bnn::PackedKernel& kernel,
                                           bool apply_clustering,
                                           const GroupedTreeConfig& tree,
                                           const ClusteringConfig& clustering) {
  FrequencyTable frequencies = FrequencyTable::from_kernel(kernel);
  ClusteringResult cluster_result;
  bnn::PackedKernel coded_kernel = kernel;
  if (apply_clustering) {
    cluster_result = cluster_sequences(frequencies, clustering);
    coded_kernel = cluster_result.apply(kernel);
  } else {
    // cluster_sequences with an empty rare set yields the identity; the
    // default-constructed result is already the identity remap.
    cluster_result = ClusteringResult{};
  }
  FrequencyTable coded_frequencies =
      FrequencyTable::from_kernel(coded_kernel);
  GroupedHuffmanCodec codec(coded_frequencies, tree);
  const std::vector<SeqId> sequences = bnn::extract_sequences(coded_kernel);
  CompressedKernel compressed =
      compress_sequences(sequences, coded_kernel.shape().out_channels,
                         coded_kernel.shape().in_channels, codec);
  std::vector<std::uint8_t> code_lengths = code_lengths_for(sequences, codec);
  return {.frequencies = std::move(frequencies),
          .clustering = std::move(cluster_result),
          .coded_frequencies = std::move(coded_frequencies),
          .codec = std::move(codec),
          .compressed = std::move(compressed),
          .coded_kernel = std::move(coded_kernel),
          .code_lengths = std::move(code_lengths)};
}

}  // namespace bkc::compress
