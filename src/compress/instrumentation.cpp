#include "compress/instrumentation.h"

#include <atomic>

namespace bkc::compress {

namespace {
std::atomic<std::uint64_t> g_frequency_counts{0};
std::atomic<std::uint64_t> g_cluster_sequences{0};
std::atomic<std::uint64_t> g_grouped_codec{0};
}  // namespace

PipelineCounters PipelineCounters::delta_since(
    const PipelineCounters& earlier) const {
  return {.frequency_counts = frequency_counts - earlier.frequency_counts,
          .cluster_sequences_calls =
              cluster_sequences_calls - earlier.cluster_sequences_calls,
          .grouped_codec_builds =
              grouped_codec_builds - earlier.grouped_codec_builds};
}

PipelineCounters pipeline_counters() {
  return {.frequency_counts =
              g_frequency_counts.load(std::memory_order_relaxed),
          .cluster_sequences_calls =
              g_cluster_sequences.load(std::memory_order_relaxed),
          .grouped_codec_builds =
              g_grouped_codec.load(std::memory_order_relaxed)};
}

namespace internal {

void count_frequency_count() {
  g_frequency_counts.fetch_add(1, std::memory_order_relaxed);
}

void count_cluster_sequences() {
  g_cluster_sequences.fetch_add(1, std::memory_order_relaxed);
}

void count_grouped_codec_build() {
  g_grouped_codec.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace internal

}  // namespace bkc::compress
