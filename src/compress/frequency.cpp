#include "compress/frequency.h"

#include <algorithm>
#include <numeric>

#include "bnn/kernel_sequences.h"
#include "compress/instrumentation.h"
#include "util/check.h"
#include "util/stats.h"

namespace bkc::compress {

FrequencyTable FrequencyTable::from_sequences(
    std::span<const SeqId> sequences) {
  internal::count_frequency_count();
  FrequencyTable table;
  for (SeqId s : sequences) table.add(s);
  return table;
}

FrequencyTable FrequencyTable::from_kernel(const bnn::PackedKernel& kernel) {
  const auto sequences = bnn::extract_sequences(kernel);
  return from_sequences(sequences);
}

void FrequencyTable::add(SeqId s, std::uint64_t count) {
  check(s < bnn::kNumSequences, "FrequencyTable::add: id out of range");
  counts_[s] += count;
  total_ += count;
}

void FrequencyTable::merge(const FrequencyTable& other) {
  for (int s = 0; s < bnn::kNumSequences; ++s) {
    counts_[s] += other.counts_[s];
  }
  total_ += other.total_;
}

std::uint64_t FrequencyTable::count(SeqId s) const {
  check(s < bnn::kNumSequences, "FrequencyTable::count: id out of range");
  return counts_[s];
}

std::size_t FrequencyTable::distinct() const {
  std::size_t n = 0;
  for (auto c : counts_) n += (c > 0);
  return n;
}

std::vector<SeqId> FrequencyTable::ranked() const {
  std::vector<SeqId> order(bnn::kNumSequences);
  std::iota(order.begin(), order.end(), static_cast<SeqId>(0));
  std::stable_sort(order.begin(), order.end(), [&](SeqId a, SeqId b) {
    return counts_[a] > counts_[b];
  });
  return order;
}

double FrequencyTable::share(SeqId s) const {
  check(total_ > 0, "FrequencyTable::share: empty table");
  return static_cast<double>(count(s)) / static_cast<double>(total_);
}

double FrequencyTable::top_k_share(std::size_t k) const {
  check(total_ > 0, "FrequencyTable::top_k_share: empty table");
  const auto order = ranked();
  k = std::min(k, order.size());
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < k; ++i) sum += counts_[order[i]];
  return static_cast<double>(sum) / static_cast<double>(total_);
}

double FrequencyTable::entropy_bits() const {
  check(total_ > 0, "FrequencyTable::entropy_bits: empty table");
  std::array<double, bnn::kNumSequences> weights{};
  for (int s = 0; s < bnn::kNumSequences; ++s) {
    weights[s] = static_cast<double>(counts_[s]);
  }
  return bkc::entropy_bits(weights);
}

}  // namespace bkc::compress
