#pragma once
// MST-delta kernel dictionary (after "MST-compression", arXiv
// 2308.13735) — the first alternative block codec behind the
// compress/block_codec.h interface.
//
// The observation: a basic block uses few distinct 9-bit sequences, and
// the distinct sequences are close to each other in Hamming distance.
// So instead of entropy-coding the stream, store a *dictionary* of the
// distinct sequences as a minimum spanning tree over Hamming distance —
// one root stored raw, every other entry as (parent, xor-delta) — and
// emit the kernel stream as fixed-width indices into that dictionary.
// Storage moves from the stream (fixed width, no prefix decode) into
// the dictionary (cheap, because MST edges have small popcount); the
// decode side is a single table lookup per sequence, with no
// variable-length parsing at all.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "bnn/bitpack.h"
#include "compress/frequency.h"

namespace bkc::compress {

/// One non-root dictionary entry: the sequence is
/// `sequences[parent] ^ delta`. `parent` always refers to an earlier
/// dictionary index (the tree is serialized in attach order).
struct MstEdge {
  std::uint16_t parent = 0;  ///< dictionary index, < this entry's index
  std::uint16_t delta = 0;   ///< non-zero 9-bit XOR mask
};

/// Dictionary of a block's distinct sequences, laid out as an MST over
/// Hamming distance. Index 0 is the root (the block's most frequent
/// sequence); entry i+1 is derived from edge i. Deterministic for a
/// given frequency table: Prim's algorithm with ties broken by smallest
/// distance, then smallest parent index, then smallest sequence id.
class MstDictionary {
 public:
  /// An empty dictionary (no entries); decodes nothing. The inert
  /// default for artifacts produced by other codecs.
  MstDictionary() = default;

  /// Build the MST dictionary over the distinct sequences of `table`.
  /// Precondition: table.total() > 0.
  static MstDictionary build(const FrequencyTable& table);

  /// Rebuild from the serialized form. CheckError when an edge's parent
  /// is not an earlier index, a delta is zero or out of range, or two
  /// entries collapse to the same sequence.
  static MstDictionary from_edges(SeqId root, std::vector<MstEdge> edges);

  std::size_t size() const { return sequences_.size(); }
  bool empty() const { return sequences_.empty(); }
  const std::vector<SeqId>& sequences() const { return sequences_; }
  const std::vector<MstEdge>& edges() const { return edges_; }
  SeqId root() const;

  /// Dictionary index of `s`; CheckError when `s` is not in the
  /// dictionary.
  std::uint16_t index_of(SeqId s) const;
  bool contains(SeqId s) const;

  /// Stream symbol width: every kernel sequence is stored as this many
  /// index bits. At least 1 even for a single-entry dictionary, so a
  /// stream always has positive length and the bit accounting stays
  /// well-defined.
  unsigned index_width() const;

  /// Hardware storage cost of the dictionary in the MST-compression
  /// accounting: 9 bits for the raw root plus, per edge,
  /// bit_width(index) parent bits, a 4-bit popcount and 4 bits per
  /// flipped position. (The container serialization below uses varints
  /// — framing, not the hardware cost, same convention as
  /// GroupedHuffmanCodec::table_bits().)
  std::uint64_t table_bits() const;

 private:
  std::vector<SeqId> sequences_;
  std::vector<MstEdge> edges_;
  std::array<std::int32_t, bnn::kNumSequences> index_map_ = index_map_init();

  static std::array<std::int32_t, bnn::kNumSequences> index_map_init() {
    std::array<std::int32_t, bnn::kNumSequences> map;
    map.fill(-1);
    return map;
  }
};

/// Encode `sequences` as fixed-width dictionary indices. CheckError
/// when a sequence is missing from the dictionary.
std::vector<std::uint8_t> mst_encode(std::span<const SeqId> sequences,
                                     const MstDictionary& dictionary,
                                     std::size_t& bit_count);

/// Decode `count` sequences from a fixed-width index stream. CheckError
/// when the stream's bit budget does not match count * index_width or
/// an index is beyond the dictionary.
std::vector<SeqId> mst_decode(std::span<const std::uint8_t> stream,
                              std::size_t bit_count, std::size_t count,
                              const MstDictionary& dictionary);

}  // namespace bkc::compress
