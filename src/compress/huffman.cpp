#include "compress/huffman.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace bkc::compress {

namespace {

/// Build Huffman code lengths from counts with the classic two-queue /
/// heap construction. Returns a length per symbol (0 = no code).
std::array<std::uint8_t, bnn::kNumSequences> build_lengths(
    const FrequencyTable& table) {
  struct Node {
    std::uint64_t weight;
    int index;  // tie-break for determinism
    int left = -1;
    int right = -1;
    SeqId symbol = 0;
    bool leaf = false;
  };
  std::vector<Node> nodes;
  nodes.reserve(2 * bnn::kNumSequences);
  for (int s = 0; s < bnn::kNumSequences; ++s) {
    const std::uint64_t c = table.count(static_cast<SeqId>(s));
    if (c > 0) {
      nodes.push_back({.weight = c,
                       .index = static_cast<int>(nodes.size()),
                       .symbol = static_cast<SeqId>(s),
                       .leaf = true});
    }
  }
  check(!nodes.empty(), "HuffmanCodec: empty frequency table");

  std::array<std::uint8_t, bnn::kNumSequences> lengths{};
  if (nodes.size() == 1) {
    // A degenerate alphabet still needs one bit per symbol so the
    // stream length encodes the occurrence count.
    lengths[nodes[0].symbol] = 1;
    return lengths;
  }

  auto cmp = [&nodes](int a, int b) {
    if (nodes[static_cast<std::size_t>(a)].weight !=
        nodes[static_cast<std::size_t>(b)].weight) {
      return nodes[static_cast<std::size_t>(a)].weight >
             nodes[static_cast<std::size_t>(b)].weight;
    }
    return nodes[static_cast<std::size_t>(a)].index >
           nodes[static_cast<std::size_t>(b)].index;
  };
  std::priority_queue<int, std::vector<int>, decltype(cmp)> heap(cmp);
  const int leaf_count = static_cast<int>(nodes.size());
  for (int i = 0; i < leaf_count; ++i) heap.push(i);
  while (heap.size() > 1) {
    const int a = heap.top();
    heap.pop();
    const int b = heap.top();
    heap.pop();
    nodes.push_back({.weight = nodes[static_cast<std::size_t>(a)].weight +
                               nodes[static_cast<std::size_t>(b)].weight,
                     .index = static_cast<int>(nodes.size()),
                     .left = a,
                     .right = b});
    heap.push(static_cast<int>(nodes.size()) - 1);
  }
  // Depth-first traversal assigning depths as code lengths.
  struct Frame {
    int node;
    std::uint8_t depth;
  };
  std::vector<Frame> stack{{heap.top(), 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& n = nodes[static_cast<std::size_t>(f.node)];
    if (n.leaf) {
      lengths[n.symbol] = f.depth;
    } else {
      stack.push_back({n.left, static_cast<std::uint8_t>(f.depth + 1)});
      stack.push_back({n.right, static_cast<std::uint8_t>(f.depth + 1)});
    }
  }
  return lengths;
}

}  // namespace

HuffmanCodec HuffmanCodec::build(const FrequencyTable& table) {
  HuffmanCodec codec;
  codec.lengths_ = build_lengths(table);

  // Canonicalize: symbols sorted by (length, id) get consecutive codes.
  std::vector<SeqId> symbols;
  for (int s = 0; s < bnn::kNumSequences; ++s) {
    if (codec.lengths_[s] != 0) symbols.push_back(static_cast<SeqId>(s));
  }
  std::sort(symbols.begin(), symbols.end(), [&](SeqId a, SeqId b) {
    if (codec.lengths_[a] != codec.lengths_[b]) {
      return codec.lengths_[a] < codec.lengths_[b];
    }
    return a < b;
  });
  codec.symbols_ = symbols;
  for (SeqId s : symbols) {
    codec.max_length_ = std::max<unsigned>(codec.max_length_,
                                           codec.lengths_[s]);
  }
  check(codec.max_length_ < 64, "HuffmanCodec: code too long");

  for (SeqId s : symbols) ++codec.count_per_length_[codec.lengths_[s]];
  std::uint32_t code = 0;
  std::uint32_t offset = 0;
  for (unsigned l = 1; l <= codec.max_length_; ++l) {
    codec.first_code_[l] = code;
    codec.symbol_offset_[l] = offset;
    code = (code + codec.count_per_length_[l]) << 1;
    offset += codec.count_per_length_[l];
  }
  // Assign each symbol its canonical code.
  std::array<std::uint32_t, 64> next{};
  for (unsigned l = 1; l <= codec.max_length_; ++l) {
    next[l] = codec.first_code_[l];
  }
  for (SeqId s : symbols) {
    codec.codes_[s] = next[codec.lengths_[s]]++;
  }
  return codec;
}

unsigned HuffmanCodec::code_length(SeqId s) const {
  check(s < bnn::kNumSequences, "HuffmanCodec: id out of range");
  check(lengths_[s] != 0, "HuffmanCodec: sequence has no codeword");
  return lengths_[s];
}

void HuffmanCodec::encode_one(BitWriter& writer, SeqId s) const {
  writer.write_bits(codes_[s], code_length(s));
}

SeqId HuffmanCodec::decode_one(BitReader& reader) const {
  // Canonical decode: extend the code one bit at a time; at each length,
  // codes of that length occupy [first_code, first_code + count).
  std::uint32_t code = 0;
  for (unsigned l = 1; l <= max_length_; ++l) {
    code = (code << 1) | static_cast<std::uint32_t>(reader.read_bit());
    const std::uint32_t count = count_per_length_[l];
    if (count != 0 && code < first_code_[l] + count) {
      check(code >= first_code_[l], "HuffmanCodec: corrupt stream");
      return symbols_[symbol_offset_[l] + (code - first_code_[l])];
    }
  }
  unreachable("HuffmanCodec::decode_one: no codeword matched");
}

std::vector<std::uint8_t> HuffmanCodec::encode(
    std::span<const SeqId> sequences, std::size_t& bit_count) const {
  BitWriter writer;
  for (SeqId s : sequences) encode_one(writer, s);
  bit_count = writer.bit_size();
  return writer.take();
}

std::vector<SeqId> HuffmanCodec::decode(std::span<const std::uint8_t> stream,
                                        std::size_t bit_count,
                                        std::size_t count) const {
  BitReader reader(stream, bit_count);
  std::vector<SeqId> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(decode_one(reader));
  return out;
}

std::uint64_t HuffmanCodec::encoded_bits(const FrequencyTable& table) const {
  std::uint64_t bits = 0;
  for (int s = 0; s < bnn::kNumSequences; ++s) {
    const std::uint64_t c = table.count(static_cast<SeqId>(s));
    if (c > 0) bits += c * code_length(static_cast<SeqId>(s));
  }
  return bits;
}

double HuffmanCodec::compression_ratio(const FrequencyTable& table) const {
  const std::uint64_t plain =
      table.total() * static_cast<std::uint64_t>(bnn::kSeqBits);
  const std::uint64_t coded = encoded_bits(table);
  check(coded > 0, "HuffmanCodec: empty stream");
  return static_cast<double>(plain) / static_cast<double>(coded);
}

}  // namespace bkc::compress
