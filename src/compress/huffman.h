#pragma once
// Full canonical Huffman coding over bit sequences.
//
// The paper's simplified tree (grouped_huffman.h) trades compression
// rate for hardware simplicity. This codec is the non-simplified upper
// bound it is traded against: an optimal prefix code built from the same
// frequency table. The ablation bench (Sec VI "good trade-off between
// simplicity and compression rate") compares the two.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "compress/frequency.h"
#include "util/bitstream.h"

namespace bkc::compress {

/// Canonical Huffman codec over the 512 bit-sequence alphabet. Only
/// sequences with a non-zero count receive a codeword; encoding a
/// sequence that had count zero is a caller error.
class HuffmanCodec {
 public:
  /// Build the optimal prefix code for `table`.
  /// Precondition: table.total() > 0.
  static HuffmanCodec build(const FrequencyTable& table);

  /// True if `s` has a codeword.
  bool has_code(SeqId s) const { return lengths_[s] != 0; }

  /// Codeword length in bits. Precondition: has_code(s).
  unsigned code_length(SeqId s) const;

  /// The longest codeword of this code.
  unsigned max_code_length() const { return max_length_; }

  void encode_one(BitWriter& writer, SeqId s) const;
  SeqId decode_one(BitReader& reader) const;

  /// Encode a sequence list into a byte stream; returns the bit count
  /// through `bit_count`.
  std::vector<std::uint8_t> encode(std::span<const SeqId> sequences,
                                   std::size_t& bit_count) const;

  /// Decode exactly `count` sequences.
  std::vector<SeqId> decode(std::span<const std::uint8_t> stream,
                            std::size_t bit_count, std::size_t count) const;

  /// Total encoded size of all occurrences in `table`.
  std::uint64_t encoded_bits(const FrequencyTable& table) const;

  /// 9*total / encoded_bits: the paper's compression-ratio metric.
  double compression_ratio(const FrequencyTable& table) const;

 private:
  HuffmanCodec() = default;

  std::array<std::uint8_t, bnn::kNumSequences> lengths_{};
  std::array<std::uint32_t, bnn::kNumSequences> codes_{};
  unsigned max_length_ = 0;
  // Canonical decoding tables indexed by code length:
  // first_code_[l] is the smallest code of length l, and symbols of
  // length l are contiguous in symbols_ starting at symbol_offset_[l].
  std::array<std::uint32_t, 64> first_code_{};
  std::array<std::uint32_t, 64> symbol_offset_{};
  std::array<std::uint32_t, 64> count_per_length_{};
  std::vector<SeqId> symbols_;
};

}  // namespace bkc::compress
