#pragma once
// Table-driven multi-symbol decode for grouped-Huffman streams.
//
// The bit-serial reference (GroupedHuffmanCodec::decode_one) walks the
// node prefix one bit at a time - fine for a hardware stream parser
// shifting a register (Fig. 6), slow on a CPU. MultiDecoder instead
// peeks a fixed 12-bit window and resolves it through a 4096-entry
// table whose entries carry *every* complete codeword inside the
// window: up to 4 sequences plus the cumulative bit length after each,
// so one lookup emits several symbols and one skip advances the
// stream. 12 bits covers the paper's longest code exactly (node 3:
// prefix 111 + 9 index bits).
//
// Window values whose first codeword is longer than the window, lands
// on a corrupt index, or runs past the end of the stream get count 0
// and fall back to a per-symbol path that replicates decode_one bit
// for bit - including which CheckError fires first - so the decoder is
// contractually bit-identical to the reference on valid, truncated and
// corrupt streams alike. A single-node tree degenerates to a
// fixed-width code and skips the window table entirely.
//
// The decoder owns flattened copies of the node tables (never
// back-references into the codec) so GroupedHuffmanCodec stays freely
// copyable and movable; compress_kernel_pipeline moves codecs into
// KernelCompression by value.

#include <cstdint>
#include <span>
#include <vector>

#include "compress/frequency.h"
#include "util/bitstream.h"

namespace bkc::compress {

/// Multi-symbol decoder for one codec's tree + tables. Value-semantic;
/// build once per codec (cheap: ~4096 short simulations).
class MultiDecoder {
 public:
  /// Window width in bits. Chosen to exactly cover the longest codeword
  /// of the paper's config; longer codes still decode via the fallback.
  static constexpr unsigned kWindowBits = 12;
  /// Cap on symbols resolved per lookup. Bounds the entry size and
  /// terminates the build for degenerate sub-1-bit codes (a one-node
  /// tree with zero index bits has zero-length codewords).
  static constexpr int kMaxSymbolsPerEntry = 4;

  MultiDecoder() = default;

  /// Build from the tree shape (one index width per node; prefix
  /// semantics follow GroupedTreeConfig) and the node decode tables.
  /// The tables are flattened and copied.
  MultiDecoder(std::vector<int> index_bits,
               const std::vector<std::vector<SeqId>>& tables);

  /// Decode `count` sequences. Bit-identical to calling
  /// GroupedHuffmanCodec::decode_one `count` times: same outputs on
  /// valid streams, same CheckError on truncated or corrupt ones.
  std::vector<SeqId> decode(std::span<const std::uint8_t> stream,
                            std::size_t bit_count, std::size_t count) const;

  int num_nodes() const { return static_cast<int>(index_bits_.size()); }

 private:
  struct Entry {
    SeqId seq[kMaxSymbolsPerEntry];
    std::uint8_t bits_after[kMaxSymbolsPerEntry];  // cumulative, per symbol
    std::uint8_t count = 0;
  };

  template <int kNumNodes>
  void build_window();
  template <int kNumNodes>
  void decode_windowed(BitReader& reader, std::size_t count,
                       std::vector<SeqId>& out) const;
  template <int kNumNodes>
  SeqId decode_one_slow(BitReader& reader) const;
  void decode_fixed_width(BitReader& reader, std::size_t count,
                          std::vector<SeqId>& out) const;

  std::vector<int> index_bits_;
  std::vector<std::uint32_t> table_offset_;  // node -> offset into flat_
  std::vector<std::uint32_t> table_size_;    // node -> occupied entries
  std::vector<SeqId> flat_;                  // all node tables, concatenated
  std::vector<Entry> window_;                // 2^kWindowBits entries
};

}  // namespace bkc::compress
