#include "compress/serialize.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <utility>

#include "compress/block_codec.h"
#include "util/check.h"

namespace bkc::compress {

namespace {

/// Render a fourcc for error messages ("CONF", or hex for garbage).
std::string fourcc_name(std::uint32_t id) {
  std::string name;
  for (int shift = 0; shift < 32; shift += 8) {
    const char c = static_cast<char>((id >> shift) & 0xff);
    if (c < 0x20 || c > 0x7e) {
      char hex[16];
      std::snprintf(hex, sizeof(hex), "0x%08x", id);
      return hex;
    }
    name.push_back(c);
  }
  return name;
}

}  // namespace

void write_tree_config(ByteWriter& writer, const GroupedTreeConfig& config) {
  writer.write_varint(static_cast<std::uint64_t>(config.index_bits.size()));
  for (int bits : config.index_bits) {
    writer.write_varint(static_cast<std::uint64_t>(bits));
  }
}

GroupedTreeConfig read_tree_config(ByteReader& reader) {
  const std::uint64_t count = reader.read_varint();
  check(count >= 1 && count <= 14,
        reader.context() + ": tree config needs 1..14 nodes, found " +
            std::to_string(count));
  GroupedTreeConfig config;
  config.index_bits.clear();
  for (std::uint64_t n = 0; n < count; ++n) {
    const std::uint64_t bits = reader.read_varint();
    check(bits <= 16, reader.context() +
                          ": tree index width must be in [0, 16], found " +
                          std::to_string(bits));
    config.index_bits.push_back(static_cast<int>(bits));
  }
  config.validate();
  return config;
}

void write_clustering_config(ByteWriter& writer,
                             const ClusteringConfig& config) {
  writer.write_varint(config.most_common);
  writer.write_varint(config.least_common);
  writer.write_varint(static_cast<std::uint64_t>(config.max_distance));
}

ClusteringConfig read_clustering_config(ByteReader& reader) {
  ClusteringConfig config;
  config.most_common = static_cast<std::size_t>(reader.read_varint());
  config.least_common = static_cast<std::size_t>(reader.read_varint());
  const std::uint64_t distance = reader.read_varint();
  check(distance >= 1 && distance <= bnn::kSeqBits,
        reader.context() + ": clustering max_distance must be in [1, 9], "
                           "found " +
            std::to_string(distance));
  config.max_distance = static_cast<int>(distance);
  return config;
}

void write_block_config(ByteWriter& writer, const bnn::BlockConfig& config) {
  writer.write_i64(config.in_channels);
  writer.write_i64(config.out_channels);
  writer.write_i64(config.stride);
}

bnn::BlockConfig read_block_config(ByteReader& reader) {
  bnn::BlockConfig config;
  config.in_channels = read_channel_count(reader, "block in_channels");
  config.out_channels = read_channel_count(reader, "block out_channels");
  config.stride = reader.read_i64();
  check(config.stride == 1 || config.stride == 2,
        reader.context() + ": block stride must be 1 or 2, found " +
            std::to_string(config.stride));
  return config;
}

void write_reactnet_config(ByteWriter& writer,
                           const bnn::ReActNetConfig& config) {
  writer.write_i64(config.input_channels);
  writer.write_i64(config.input_size);
  writer.write_i64(config.stem_channels);
  writer.write_i64(config.stem_stride);
  writer.write_i64(config.num_classes);
  writer.write_varint(static_cast<std::uint64_t>(config.blocks.size()));
  for (const bnn::BlockConfig& block : config.blocks) {
    write_block_config(writer, block);
  }
  writer.write_u64(config.seed);
  writer.write_u8(config.calibrated_weights ? 1 : 0);
}

bnn::ReActNetConfig read_reactnet_config(ByteReader& reader) {
  bnn::ReActNetConfig config;
  // Every count is bounded, not just checked for sign: a CRC-valid but
  // hostile file must not be able to drive huge allocations (or signed
  // overflow in derived products) while the model is rebuilt.
  config.input_channels = read_channel_count(reader, "input_channels");
  config.input_size = reader.read_i64();
  check(config.input_size >= 1 && config.input_size <= 4096,
        reader.context() + ": implausible input_size (" +
            std::to_string(config.input_size) + ")");
  config.stem_channels = read_channel_count(reader, "stem_channels");
  check(config.stem_channels * config.input_channels * 9 <= kMaxModelUnits,
        reader.context() + ": implausible stem weight size");
  config.stem_stride = reader.read_i64();
  check(config.stem_stride >= 1 && config.stem_stride <= 16,
        reader.context() + ": implausible stem_stride (" +
            std::to_string(config.stem_stride) + ")");
  config.num_classes = reader.read_i64();
  check(config.num_classes >= 1 && config.num_classes <= (1 << 14),
        reader.context() + ": implausible num_classes (" +
            std::to_string(config.num_classes) + ")");
  const std::uint64_t num_blocks = reader.read_varint();
  check(num_blocks >= 1 && num_blocks <= 4096,
        reader.context() + ": implausible block count (" +
            std::to_string(num_blocks) + ")");
  config.blocks.clear();
  std::int64_t total_units = 0;
  for (std::uint64_t b = 0; b < num_blocks; ++b) {
    config.blocks.push_back(read_block_config(reader));
    // Channel counts are individually capped, so these products and the
    // running sum stay far below the int64 overflow line.
    const bnn::BlockConfig& block = config.blocks.back();
    total_units += block.in_channels *
                   std::max(block.in_channels, block.out_channels);
    check(total_units <= kMaxModelUnits,
          reader.context() + ": implausible total model size (blocks)");
  }
  check(config.num_classes * config.blocks.back().out_channels <=
            kMaxModelUnits,
        reader.context() + ": implausible classifier size");
  config.seed = reader.read_u64();
  const std::uint8_t calibrated = reader.read_u8();
  check(calibrated <= 1,
        reader.context() + ": calibrated_weights must be 0 or 1");
  config.calibrated_weights = calibrated == 1;
  return config;
}

void write_frequency_table(ByteWriter& writer, const FrequencyTable& table) {
  writer.write_varint(static_cast<std::uint64_t>(table.distinct()));
  for (int s = 0; s < bnn::kNumSequences; ++s) {
    const std::uint64_t count = table.count(static_cast<SeqId>(s));
    if (count == 0) continue;
    writer.write_varint(static_cast<std::uint64_t>(s));
    writer.write_varint(count);
  }
}

FrequencyTable read_frequency_table(ByteReader& reader) {
  const std::uint64_t distinct = reader.read_varint();
  check(distinct <= bnn::kNumSequences,
        reader.context() + ": frequency table has " +
            std::to_string(distinct) + " entries, the alphabet only " +
            std::to_string(bnn::kNumSequences));
  FrequencyTable table;
  std::int64_t previous = -1;
  // Cap the running total so hostile counts can neither wrap the
  // table's uint64 accumulator nor overflow downstream products
  // (count * code_length; code lengths are < 64 bits).
  constexpr std::uint64_t kMaxTotal =
      std::numeric_limits<std::uint64_t>::max() / 64;
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < distinct; ++i) {
    const std::uint64_t id = reader.read_varint();
    check(id < bnn::kNumSequences,
          reader.context() + ": frequency entry id out of range");
    check(static_cast<std::int64_t>(id) > previous,
          reader.context() + ": frequency entries must be strictly "
                             "ascending (non-canonical encoding)");
    previous = static_cast<std::int64_t>(id);
    const std::uint64_t count = reader.read_varint();
    check(count > 0, reader.context() + ": zero count in frequency table");
    check(count <= kMaxTotal - total,
          reader.context() + ": implausible frequency counts (the total "
                             "would overflow)");
    total += count;
    table.add(static_cast<SeqId>(id), count);
  }
  return table;
}

void write_clustering_result(ByteWriter& writer,
                             const ClusteringResult& result) {
  writer.write_varint(
      static_cast<std::uint64_t>(result.replacements().size()));
  for (const Replacement& r : result.replacements()) {
    writer.write_varint(static_cast<std::uint64_t>(r.from));
    writer.write_varint(static_cast<std::uint64_t>(r.to));
    writer.write_varint(r.occurrences);
    writer.write_varint(static_cast<std::uint64_t>(r.distance));
  }
  writer.write_varint(result.total_occurrences());
}

ClusteringResult read_clustering_result(ByteReader& reader) {
  const std::uint64_t count = reader.read_varint();
  check(count <= bnn::kNumSequences,
        reader.context() + ": more replacements than sequences");
  std::vector<Replacement> replacements;
  replacements.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    Replacement r;
    const std::uint64_t from = reader.read_varint();
    const std::uint64_t to = reader.read_varint();
    check(from < bnn::kNumSequences && to < bnn::kNumSequences,
          reader.context() + ": replacement sequence id out of range");
    r.from = static_cast<SeqId>(from);
    r.to = static_cast<SeqId>(to);
    r.occurrences = reader.read_varint();
    const std::uint64_t distance = reader.read_varint();
    check(distance >= 1 && distance <= bnn::kSeqBits,
          reader.context() + ": replacement distance must be in [1, 9]");
    r.distance = static_cast<int>(distance);
    replacements.push_back(r);
  }
  const std::uint64_t total = reader.read_varint();
  try {
    return ClusteringResult::from_replacements(std::move(replacements),
                                               total);
  } catch (const CheckError& e) {
    throw CheckError(reader.context() + ": " + e.what());
  }
}

void write_codec(ByteWriter& writer, const GroupedHuffmanCodec& codec) {
  write_tree_config(writer, codec.config());
  for (int n = 0; n < codec.config().num_nodes(); ++n) {
    const std::span<const SeqId> table = codec.uncompressed_table(n);
    writer.write_varint(static_cast<std::uint64_t>(table.size()));
    for (SeqId s : table) {
      writer.write_varint(static_cast<std::uint64_t>(s));
    }
  }
}

GroupedHuffmanCodec read_codec(ByteReader& reader) {
  GroupedTreeConfig config = read_tree_config(reader);
  std::vector<std::vector<SeqId>> tables;
  tables.reserve(static_cast<std::size_t>(config.num_nodes()));
  for (int n = 0; n < config.num_nodes(); ++n) {
    const std::uint64_t occupancy = reader.read_varint();
    check(occupancy <= config.capacity(n),
          reader.context() + ": decode table overflows node " +
              std::to_string(n) + " (occupancy " +
              std::to_string(occupancy) + ", capacity " +
              std::to_string(config.capacity(n)) + ")");
    std::vector<SeqId> table;
    table.reserve(static_cast<std::size_t>(occupancy));
    for (std::uint64_t i = 0; i < occupancy; ++i) {
      const std::uint64_t id = reader.read_varint();
      check(id < bnn::kNumSequences,
            reader.context() + ": decode-table sequence id out of range");
      table.push_back(static_cast<SeqId>(id));
    }
    tables.push_back(std::move(table));
  }
  try {
    return GroupedHuffmanCodec(std::move(config), std::move(tables));
  } catch (const CheckError& e) {
    throw CheckError(reader.context() + ": " + e.what());
  }
}

void write_compressed_kernel(ByteWriter& writer,
                             const CompressedKernel& kernel) {
  check(kernel.stream.size() == (kernel.stream_bits + 7) / 8,
        "write_compressed_kernel: stream byte count does not match "
        "stream_bits");
  writer.write_i64(kernel.out_channels);
  writer.write_i64(kernel.in_channels);
  writer.write_varint(kernel.stream_bits);
  writer.write_bytes(kernel.stream);
}

CompressedKernel read_compressed_kernel(ByteReader& reader) {
  const CompressedKernelRef ref = read_compressed_kernel_ref(reader);
  CompressedKernel kernel;
  kernel.out_channels = ref.out_channels;
  kernel.in_channels = ref.in_channels;
  kernel.stream_bits = ref.stream_bits;
  kernel.stream.assign(ref.stream.begin(), ref.stream.end());
  return kernel;
}

void write_kernel_compression(ByteWriter& writer,
                              const KernelCompression& stream) {
  write_frequency_table(writer, stream.frequencies);
  write_clustering_result(writer, stream.clustering);
  write_frequency_table(writer, stream.coded_frequencies);
  write_codec(writer, stream.codec);
  write_compressed_kernel(writer, stream.compressed);
}

KernelCompression read_kernel_compression(ByteReader& reader) {
  // The grouped-huffman BlockCodec owns the parse (coded_kernel stays
  // default-constructed — the loader rebuilds it by decoding; the
  // code-length vector comes from a prefix-only scan of the stream);
  // this copying wrapper just materializes the borrowed stream bytes.
  ParsedBlock parsed = codec_for(kCodecGroupedHuffman).read_block(reader);
  parsed.artifact.compressed.stream.assign(parsed.stream.begin(),
                                           parsed.stream.end());
  return std::move(parsed.artifact);
}

void write_block_report(ByteWriter& writer, const BlockReport& report) {
  writer.write_string(report.block_name);
  writer.write_varint(report.num_sequences);
  writer.write_varint(report.distinct_sequences);
  writer.write_f64(report.top16_share);
  writer.write_f64(report.top64_share);
  writer.write_f64(report.top256_share);
  writer.write_f64(report.entropy_bits);
  writer.write_varint(report.uncompressed_bits);
  writer.write_varint(report.encoding_bits);
  writer.write_varint(report.clustering_bits);
  writer.write_f64(report.encoding_ratio);
  writer.write_f64(report.clustering_ratio);
  writer.write_f64(report.huffman_ratio);
  writer.write_varint(report.node_shares_encoding.size());
  for (double share : report.node_shares_encoding) writer.write_f64(share);
  writer.write_varint(report.node_shares_clustering.size());
  for (double share : report.node_shares_clustering) writer.write_f64(share);
  writer.write_f64(report.flipped_bit_fraction);
  writer.write_varint(report.replaced_sequences);
  writer.write_varint(report.decode_table_bits);
}

namespace {

std::vector<double> read_node_shares(ByteReader& reader) {
  const std::uint64_t count = reader.read_varint();
  check(count <= 14, reader.context() + ": implausible node-share count");
  std::vector<double> shares;
  shares.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    shares.push_back(reader.read_f64());
  }
  return shares;
}

}  // namespace

BlockReport read_block_report(ByteReader& reader) {
  BlockReport report;
  report.block_name = reader.read_string(/*max_length=*/256);
  report.num_sequences = reader.read_varint();
  report.distinct_sequences =
      static_cast<std::size_t>(reader.read_varint());
  report.top16_share = reader.read_f64();
  report.top64_share = reader.read_f64();
  report.top256_share = reader.read_f64();
  report.entropy_bits = reader.read_f64();
  report.uncompressed_bits = reader.read_varint();
  report.encoding_bits = reader.read_varint();
  report.clustering_bits = reader.read_varint();
  report.encoding_ratio = reader.read_f64();
  report.clustering_ratio = reader.read_f64();
  report.huffman_ratio = reader.read_f64();
  report.node_shares_encoding = read_node_shares(reader);
  report.node_shares_clustering = read_node_shares(reader);
  report.flipped_bit_fraction = reader.read_f64();
  report.replaced_sequences =
      static_cast<std::size_t>(reader.read_varint());
  report.decode_table_bits = reader.read_varint();
  return report;
}

void write_model_report(ByteWriter& writer, const ModelReport& report) {
  writer.write_varint(report.blocks.size());
  for (const BlockReport& block : report.blocks) {
    write_block_report(writer, block);
  }
  writer.write_varint(report.model_bits);
  writer.write_varint(report.conv3x3_bits);
  writer.write_varint(report.conv3x3_encoding_bits);
  writer.write_varint(report.conv3x3_clustering_bits);
  writer.write_varint(report.decode_table_bits);
  writer.write_f64(report.mean_encoding_ratio);
  writer.write_f64(report.mean_clustering_ratio);
  writer.write_f64(report.model_ratio);
  writer.write_f64(report.model_ratio_with_tables);
}

ModelReport read_model_report(ByteReader& reader) {
  const std::uint64_t num_blocks = reader.read_varint();
  check(num_blocks >= 1 && num_blocks <= 4096,
        reader.context() + ": implausible report block count (" +
            std::to_string(num_blocks) + ")");
  ModelReport report;
  report.blocks.reserve(static_cast<std::size_t>(num_blocks));
  for (std::uint64_t b = 0; b < num_blocks; ++b) {
    report.blocks.push_back(read_block_report(reader));
  }
  report.model_bits = reader.read_varint();
  report.conv3x3_bits = reader.read_varint();
  report.conv3x3_encoding_bits = reader.read_varint();
  report.conv3x3_clustering_bits = reader.read_varint();
  report.decode_table_bits = reader.read_varint();
  report.mean_encoding_ratio = reader.read_f64();
  report.mean_clustering_ratio = reader.read_f64();
  report.model_ratio = reader.read_f64();
  report.model_ratio_with_tables = reader.read_f64();
  return report;
}

namespace {

constexpr std::size_t kHeaderFixedBytes = 16;   // magic/version/flags/count
constexpr std::size_t kSectionRowBytes = 24;    // id/offset/length/crc
/// The mandatory leading sections of every version.
constexpr int kNumCoreSections = 3;
/// Plausibility cap on a v2 section count: 3 core + up to 13 optional
/// sections is far beyond anything defined today, and it bounds the
/// header walk a hostile count can request.
constexpr std::uint32_t kMaxSections = 16;

const std::uint32_t kSectionOrder[kNumCoreSections] = {
    kBkcmSectionConfig, kBkcmSectionReport, kBkcmSectionBlocks};

}  // namespace

std::vector<std::uint8_t> write_bkcm(const BkcmContents& contents) {
  return write_bkcm(contents.clustering, contents.tree,
                    contents.clustering_config, contents.model_config,
                    contents.report, contents.streams);
}

std::vector<std::uint8_t> write_bkcm(
    bool clustering, const GroupedTreeConfig& tree,
    const ClusteringConfig& clustering_config,
    const bnn::ReActNetConfig& model_config, const ModelReport& report,
    const std::vector<KernelCompression>& streams) {
  check(!streams.empty(), "write_bkcm: no compressed streams");
  check(streams.size() == model_config.blocks.size(),
        "write_bkcm: stream count does not match the model's block count");
  check(report.blocks.size() == streams.size(),
        "write_bkcm: report block count does not match the stream count");

  ByteWriter conf;
  // The clustering flag is the one semantic field of the fixed header,
  // which no checksum covers (magic/version/count/ids are constants and
  // offsets/lengths must tile the file exactly, so any other header
  // flip is caught structurally). Mirroring it here puts it under the
  // CONF CRC; read_bkcm rejects a mismatch.
  conf.write_u8(clustering ? 1 : 0);
  write_tree_config(conf, tree);
  write_clustering_config(conf, clustering_config);
  write_reactnet_config(conf, model_config);

  ByteWriter rept;
  write_model_report(rept, report);

  // BLKS, v2: each block payload behind its codec-id word, serialized
  // by the owning codec backend. codec_for rejects an unregistered id
  // before a single byte is written.
  ByteWriter blks;
  blks.write_varint(streams.size());
  std::vector<std::uint32_t> used_codecs;
  for (const KernelCompression& stream : streams) {
    const BlockCodec& codec = codec_for(stream.codec_id);
    blks.write_u32(stream.codec_id);
    codec.write_block(blks, stream);
    used_codecs.push_back(stream.codec_id);
  }
  std::sort(used_codecs.begin(), used_codecs.end());
  used_codecs.erase(std::unique(used_codecs.begin(), used_codecs.end()),
                    used_codecs.end());

  // CDCS: the codec directory (distinct ids ascending, with their
  // registry names).
  ByteWriter cdcs;
  cdcs.write_varint(used_codecs.size());
  for (const std::uint32_t id : used_codecs) {
    cdcs.write_u32(id);
    cdcs.write_string(codec_for(id).name());
  }

  constexpr int kNumWritten = kNumCoreSections + 1;
  const ByteWriter* payloads[kNumWritten] = {&conf, &rept, &blks, &cdcs};
  const std::uint32_t ids[kNumWritten] = {
      kBkcmSectionConfig, kBkcmSectionReport, kBkcmSectionBlocks,
      kBkcmSectionCodecs};

  ByteWriter file;
  file.write_u32(kBkcmMagic);
  file.write_u32(kBkcmVersion);
  file.write_u32(clustering ? kBkcmFlagClustering : 0);
  file.write_u32(kNumWritten);
  std::uint64_t offset = kHeaderFixedBytes + kNumWritten * kSectionRowBytes;
  for (int s = 0; s < kNumWritten; ++s) {
    file.write_u32(ids[s]);
    file.write_u64(offset);
    file.write_u64(payloads[s]->size());
    file.write_u32(crc32(payloads[s]->bytes()));
    offset += payloads[s]->size();
  }
  for (const ByteWriter* payload : payloads) {
    file.write_bytes(payload->bytes());
  }
  return file.take();
}

BkcmInfo inspect_bkcm(std::span<const std::uint8_t> file) {
  ByteReader header(file, "BKCM header");
  const std::uint32_t magic = header.read_u32();
  check(magic == kBkcmMagic, "BKCM header: bad magic " +
                                 fourcc_name(magic) +
                                 " (not a BKCM file)");
  BkcmInfo info;
  info.file_size = file.size();
  info.version = header.read_u32();
  check(info.version >= kBkcmMinVersion && info.version <= kBkcmVersion,
        "BKCM header: unsupported version " + std::to_string(info.version) +
            " (this build reads versions " + std::to_string(kBkcmMinVersion) +
            ".." + std::to_string(kBkcmVersion) + ")");
  info.flags = header.read_u32();
  check((info.flags & ~kBkcmFlagClustering) == 0,
        "BKCM header: unknown flag bits set");
  const std::uint32_t section_count = header.read_u32();
  if (info.version == 1) {
    // v1 is strict: exactly the three core sections.
    check(section_count == kNumCoreSections,
          "BKCM header: expected " + std::to_string(kNumCoreSections) +
              " sections, found " + std::to_string(section_count));
  } else {
    // v2: the three core sections plus bounded optional sections.
    check(section_count >= kNumCoreSections && section_count <= kMaxSections,
          "BKCM header: implausible section count " +
              std::to_string(section_count) + " (expected " +
              std::to_string(kNumCoreSections) + ".." +
              std::to_string(kMaxSections) + " sections)");
  }

  std::vector<std::uint32_t> seen_ids;
  std::uint64_t expected_offset =
      kHeaderFixedBytes +
      static_cast<std::uint64_t>(section_count) * kSectionRowBytes;
  for (std::uint32_t s = 0; s < section_count; ++s) {
    BkcmSection section;
    const std::uint32_t id = header.read_u32();
    if (s < kNumCoreSections) {
      check(id == kSectionOrder[s],
            "BKCM header: section " + std::to_string(s) + " must be '" +
                fourcc_name(kSectionOrder[s]) + "', found '" +
                fourcc_name(id) + "'");
    } else {
      // Optional sections: any id that is not a core section and does
      // not repeat. Unknown ids are structurally validated (range,
      // checksum, contiguity) and skipped by the parsers.
      for (const std::uint32_t core : kSectionOrder) {
        check(id != core, "BKCM header: optional section duplicates core "
                          "section '" +
                              fourcc_name(core) + "'");
      }
      check(std::find(seen_ids.begin(), seen_ids.end(), id) ==
                seen_ids.end(),
            "BKCM header: duplicate optional section '" + fourcc_name(id) +
                "'");
      seen_ids.push_back(id);
    }
    section.name = fourcc_name(id);
    section.offset = header.read_u64();
    section.length = header.read_u64();
    section.crc = header.read_u32();
    const std::string context = "BKCM section '" + section.name + "'";
    check(section.offset == expected_offset,
          context + ": offset " + std::to_string(section.offset) +
              " does not follow the previous section (expected " +
              std::to_string(expected_offset) + ")");
    check(section.offset <= file.size() &&
              section.length <= file.size() - section.offset,
          context + ": extends past the end of the file (truncated or "
                    "oversized length)");
    const std::uint32_t actual_crc = crc32(file.subspan(
        static_cast<std::size_t>(section.offset),
        static_cast<std::size_t>(section.length)));
    check(actual_crc == section.crc,
          context + ": checksum mismatch (file corrupt)");
    expected_offset += section.length;
    info.sections.push_back(std::move(section));
  }
  check(expected_offset == file.size(),
        "BKCM: file size " + std::to_string(file.size()) +
            " does not match the section table (expected " +
            std::to_string(expected_offset) + ")");
  return info;
}

BkcmContents read_bkcm(std::span<const std::uint8_t> file) {
  return read_bkcm(file, inspect_bkcm(file));
}

namespace {

/// Guard against a stale or hand-rolled info (the section rows are
/// indexed by the parsers, so a malformed table must fail cleanly).
void check_bkcm_info(const BkcmInfo& info) {
  check(info.sections.size() >= kNumCoreSections &&
            info.sections.size() <= kMaxSections,
        "BKCM: BkcmInfo does not describe a BKCM container (expected " +
            std::to_string(kNumCoreSections) + ".." +
            std::to_string(kMaxSections) + " sections, got " +
            std::to_string(info.sections.size()) + ")");
  for (int s = 0; s < kNumCoreSections; ++s) {
    check(info.sections[static_cast<std::size_t>(s)].name ==
              fourcc_name(kSectionOrder[s]),
          "BKCM: BkcmInfo section " + std::to_string(s) + " must be '" +
              fourcc_name(kSectionOrder[s]) + "'");
  }
}

ByteReader bkcm_section_reader(const ByteReader& whole, const BkcmInfo& info,
                               int index) {
  const BkcmSection& section =
      info.sections[static_cast<std::size_t>(index)];
  return whole.sub(static_cast<std::size_t>(section.offset),
                   static_cast<std::size_t>(section.length),
                   "BKCM section '" + section.name + "'");
}

/// Everything the 'CONF' section holds; shared by the copying and the
/// mapped read paths.
struct ConfSection {
  bool clustering = true;
  GroupedTreeConfig tree;
  ClusteringConfig clustering_config;
  bnn::ReActNetConfig model_config;
};

ConfSection parse_conf_section(ByteReader conf, std::uint32_t flags) {
  ConfSection out;
  const std::uint8_t clustering_mirror = conf.read_u8();
  check(clustering_mirror <= 1,
        conf.context() + ": clustering flag must be 0 or 1");
  out.clustering = clustering_mirror == 1;
  check(out.clustering == ((flags & kBkcmFlagClustering) != 0),
        conf.context() + ": clustering flag does not match the header "
                         "flags word (corrupt header)");
  out.tree = read_tree_config(conf);
  out.clustering_config = read_clustering_config(conf);
  out.model_config = read_reactnet_config(conf);
  conf.expect_exhausted();
  return out;
}

std::uint64_t read_blks_stream_count(ByteReader& blks,
                                     const bnn::ReActNetConfig& config) {
  const std::uint64_t num_streams = blks.read_varint();
  check(num_streams == config.blocks.size(),
        blks.context() + ": stream count " + std::to_string(num_streams) +
            " does not match the model's " +
            std::to_string(config.blocks.size()) + " blocks");
  return num_streams;
}

/// Every stream codec must use the container's tree config (the writer
/// always emits them identical); a mismatch means CONF and BLKS
/// describe different formats — same standard as the mirrored
/// clustering flag.
void check_stream_tree(const ByteReader& blks,
                       const GroupedTreeConfig& stream_tree,
                       const GroupedTreeConfig& conf_tree,
                       std::uint64_t index) {
  check(stream_tree.index_bits == conf_tree.index_bits,
        blks.context() + ": stream " + std::to_string(index) +
            " codec tree config does not match the 'CONF' section");
}

void check_report_covers_streams(std::size_t report_blocks,
                                 std::size_t num_streams) {
  check(report_blocks == num_streams,
        "BKCM section 'REPT': report covers " +
            std::to_string(report_blocks) +
            " blocks, the container holds " + std::to_string(num_streams) +
            " streams");
}

/// v2 prefixes every block payload with its codec id; v1 blocks are
/// implicitly grouped-huffman. The registry gate here is what keeps a
/// CRC-valid hostile container from selecting a codec that does not
/// exist.
std::uint32_t read_stream_codec_id(ByteReader& blks, std::uint32_t version,
                                   std::uint64_t index) {
  if (version < 2) return kCodecGroupedHuffman;
  const std::uint32_t id = blks.read_u32();
  check(block_codec_registered(id),
        blks.context() + ": stream " + std::to_string(index) +
            " selects unregistered codec id " + std::to_string(id));
  return id;
}

/// Validate one 'CDCS' codec-directory payload against the registry and
/// the codec ids 'BLKS' actually used (distinct, ascending).
void validate_codecs_section(ByteReader cdcs,
                             const std::vector<std::uint32_t>& used) {
  const std::uint64_t count = cdcs.read_varint();
  check(count == used.size(),
        cdcs.context() + ": directory lists " + std::to_string(count) +
            " codecs, 'BLKS' uses " + std::to_string(used.size()));
  for (const std::uint32_t expected : used) {
    const std::uint32_t id = cdcs.read_u32();
    check(id == expected,
          cdcs.context() +
              ": directory does not match the codecs used by 'BLKS'");
    const std::string name = cdcs.read_string(/*max_length=*/64);
    check(name == codec_for(id).name(),
          cdcs.context() + ": codec " + std::to_string(id) + " name '" +
              name + "' does not match the registered codec");
  }
  cdcs.expect_exhausted();
}

/// Walk the optional sections: 'CDCS' is validated, unknown ids are
/// skipped (their structure and checksum were already checked by
/// inspect_bkcm).
void validate_optional_sections(const ByteReader& whole,
                                const BkcmInfo& info,
                                std::vector<std::uint32_t> used) {
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  for (std::size_t s = kNumCoreSections; s < info.sections.size(); ++s) {
    if (info.sections[s].name == "CDCS") {
      validate_codecs_section(
          bkcm_section_reader(whole, info, static_cast<int>(s)), used);
    }
  }
}

}  // namespace

BkcmContents read_bkcm(std::span<const std::uint8_t> file,
                       const BkcmInfo& info) {
  check_bkcm_info(info);
  const ByteReader whole(file, "BKCM");

  BkcmContents contents;

  ConfSection conf = parse_conf_section(bkcm_section_reader(whole, info, 0),
                                        info.flags);
  contents.clustering = conf.clustering;
  contents.tree = std::move(conf.tree);
  contents.clustering_config = conf.clustering_config;
  contents.model_config = std::move(conf.model_config);

  ByteReader rept = bkcm_section_reader(whole, info, 1);
  contents.report = read_model_report(rept);
  rept.expect_exhausted();

  ByteReader blks = bkcm_section_reader(whole, info, 2);
  const std::uint64_t num_streams =
      read_blks_stream_count(blks, contents.model_config);
  contents.streams.reserve(static_cast<std::size_t>(num_streams));
  std::vector<std::uint32_t> used_codecs;
  for (std::uint64_t b = 0; b < num_streams; ++b) {
    const std::uint32_t codec_id =
        read_stream_codec_id(blks, info.version, b);
    ParsedBlock parsed = codec_for(codec_id).read_block(blks);
    parsed.artifact.compressed.stream.assign(parsed.stream.begin(),
                                             parsed.stream.end());
    if (codec_id == kCodecGroupedHuffman) {
      check_stream_tree(blks, parsed.artifact.codec.config(), contents.tree,
                        b);
    }
    used_codecs.push_back(codec_id);
    contents.streams.push_back(std::move(parsed.artifact));
  }
  blks.expect_exhausted();

  check_report_covers_streams(contents.report.blocks.size(),
                              contents.streams.size());
  validate_optional_sections(whole, info, std::move(used_codecs));
  return contents;
}

MappedBkcm MappedBkcm::open(const std::string& path) {
  MappedBkcm out;
  out.file_ = MmapFile::open(path);
  const std::span<const std::uint8_t> file = out.file_.bytes();
  out.info_ = inspect_bkcm(file);
  const ByteReader whole(file, "BKCM");

  ConfSection conf = parse_conf_section(
      bkcm_section_reader(whole, out.info_, 0), out.info_.flags);
  out.clustering_ = conf.clustering;
  out.tree_ = std::move(conf.tree);
  out.clustering_config_ = conf.clustering_config;
  out.model_config_ = std::move(conf.model_config);

  ByteReader rept = bkcm_section_reader(whole, out.info_, 1);
  out.report_ = read_model_report(rept);
  rept.expect_exhausted();

  // BLKS, zero-copy: the small artifacts are parsed into owned storage,
  // the bitstream stays a span into the mapping, and one prefix-only
  // scan per stream recovers the code-length vector. No kernel decode.
  ByteReader blks = bkcm_section_reader(whole, out.info_, 2);
  const std::uint64_t num_streams =
      read_blks_stream_count(blks, out.model_config_);
  out.blocks_.reserve(static_cast<std::size_t>(num_streams));
  std::vector<std::uint32_t> used_codecs;
  for (std::uint64_t b = 0; b < num_streams; ++b) {
    const std::uint32_t codec_id =
        read_stream_codec_id(blks, out.info_.version, b);
    ParsedBlock parsed = codec_for(codec_id).read_block(blks);
    if (codec_id == kCodecGroupedHuffman) {
      check_stream_tree(blks, parsed.artifact.codec.config(), out.tree_, b);
    }
    used_codecs.push_back(codec_id);
    out.blocks_.push_back(
        Block{.artifact = std::move(parsed.artifact), .stream = parsed.stream});
  }
  blks.expect_exhausted();

  check_report_covers_streams(out.report_.blocks.size(),
                              out.blocks_.size());
  validate_optional_sections(whole, out.info_, std::move(used_codecs));
  return out;
}

CompressedModelView MappedBkcm::view(std::vector<bnn::OpRecord> ops) const {
  std::vector<BlockStreamView> blocks;
  blocks.reserve(blocks_.size());
  for (const Block& block : blocks_) {
    const KernelCompression& artifact = block.artifact;
    blocks.push_back(
        BlockStreamView{.out_channels = artifact.compressed.out_channels,
                        .in_channels = artifact.compressed.in_channels,
                        .stream = block.stream,
                        .stream_bits = artifact.compressed.stream_bits,
                        .code_lengths = artifact.code_lengths,
                        .codec = &artifact.codec,
                        .clustering = &artifact.clustering,
                        .codec_id = artifact.codec_id});
  }
  return assemble_view(std::move(ops), std::move(blocks));
}

}  // namespace bkc::compress
