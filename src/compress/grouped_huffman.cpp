#include "compress/grouped_huffman.h"

#include "compress/instrumentation.h"
#include "util/check.h"
#include "util/simd.h"

namespace bkc::compress {

int GroupedTreeConfig::prefix_length(int node) const {
  check(node >= 0 && node < num_nodes(), "GroupedTreeConfig: bad node");
  // Unary prefixes 0, 10, 110, ...; the last node reuses the all-ones
  // prefix without a terminating zero.
  return node == num_nodes() - 1 ? num_nodes() - 1 : node + 1;
}

int GroupedTreeConfig::code_length(int node) const {
  return prefix_length(node) +
         index_bits[static_cast<std::size_t>(node)];
}

std::uint64_t GroupedTreeConfig::capacity(int node) const {
  check(node >= 0 && node < num_nodes(), "GroupedTreeConfig: bad node");
  return 1ULL << index_bits[static_cast<std::size_t>(node)];
}

std::uint64_t GroupedTreeConfig::total_capacity() const {
  std::uint64_t total = 0;
  for (int n = 0; n < num_nodes(); ++n) total += capacity(n);
  return total;
}

void GroupedTreeConfig::validate() const {
  check(num_nodes() >= 1 && num_nodes() <= 14,
        "GroupedTreeConfig: need 1..14 nodes");
  for (int bits : index_bits) {
    check(bits >= 0 && bits <= 16,
          "GroupedTreeConfig: index width must be in [0, 16]");
  }
}

GroupedTreeConfig GroupedTreeConfig::paper() { return {}; }

GroupedTreeConfig GroupedTreeConfig::fixed9() {
  return {.index_bits = {bnn::kSeqBits}};
}

GroupedHuffmanCodec::GroupedHuffmanCodec() {
  node_.fill(-1);
  tables_.resize(static_cast<std::size_t>(config_.num_nodes()));
  multi_ = MultiDecoder(config_.index_bits, tables_);
}

GroupedHuffmanCodec::GroupedHuffmanCodec(const FrequencyTable& table,
                                         GroupedTreeConfig config)
    : config_(std::move(config)) {
  internal::count_grouped_codec_build();
  config_.validate();
  node_.fill(-1);
  tables_.resize(static_cast<std::size_t>(config_.num_nodes()));
  for (int n = 0; n < config_.num_nodes(); ++n) {
    tables_[static_cast<std::size_t>(n)].reserve(
        static_cast<std::size_t>(config_.capacity(n)));
  }

  // Fill nodes in rank order: most frequent sequences get the shortest
  // codes (node 0), exactly like assigning them to the shallowest
  // Huffman tree node in Fig. 4.
  int node = 0;
  for (SeqId s : table.ranked()) {
    while (node < config_.num_nodes() &&
           tables_[static_cast<std::size_t>(node)].size() ==
               config_.capacity(node)) {
      ++node;
    }
    if (node == config_.num_nodes()) {
      check(table.count(s) == 0,
            "GroupedHuffmanCodec: tree capacity too small for the "
            "observed alphabet");
      break;  // remaining sequences all have zero count
    }
    node_[s] = static_cast<std::int8_t>(node);
    index_[s] = static_cast<std::uint16_t>(
        tables_[static_cast<std::size_t>(node)].size());
    tables_[static_cast<std::size_t>(node)].push_back(s);
  }
  multi_ = MultiDecoder(config_.index_bits, tables_);
}

GroupedHuffmanCodec::GroupedHuffmanCodec(GroupedTreeConfig config,
                                         std::vector<std::vector<SeqId>> tables)
    : config_(std::move(config)), tables_(std::move(tables)) {
  config_.validate();
  check(tables_.size() == static_cast<std::size_t>(config_.num_nodes()),
        "GroupedHuffmanCodec: decode-table count does not match the tree "
        "config");
  node_.fill(-1);
  for (int n = 0; n < config_.num_nodes(); ++n) {
    const auto& table = tables_[static_cast<std::size_t>(n)];
    check(table.size() <= config_.capacity(n),
          "GroupedHuffmanCodec: decode table overflows its node capacity");
    for (std::size_t i = 0; i < table.size(); ++i) {
      const SeqId s = table[i];
      check(s < bnn::kNumSequences,
            "GroupedHuffmanCodec: decode-table sequence id out of range");
      check(node_[s] < 0,
            "GroupedHuffmanCodec: sequence assigned to two codewords");
      node_[s] = static_cast<std::int8_t>(n);
      index_[s] = static_cast<std::uint16_t>(i);
    }
  }
  multi_ = MultiDecoder(config_.index_bits, tables_);
}

bool GroupedHuffmanCodec::has_code(SeqId s) const {
  check(s < bnn::kNumSequences, "GroupedHuffmanCodec: id out of range");
  return node_[s] >= 0;
}

int GroupedHuffmanCodec::node_of(SeqId s) const {
  check(has_code(s), "GroupedHuffmanCodec: sequence has no codeword");
  return node_[s];
}

unsigned GroupedHuffmanCodec::index_of(SeqId s) const {
  check(has_code(s), "GroupedHuffmanCodec: sequence has no codeword");
  return index_[s];
}

unsigned GroupedHuffmanCodec::code_length(SeqId s) const {
  return static_cast<unsigned>(config_.code_length(node_of(s)));
}

void GroupedHuffmanCodec::encode_one(BitWriter& writer, SeqId s) const {
  const int node = node_of(s);
  const int prefix_len = config_.prefix_length(node);
  if (prefix_len > 0) {
    // `node` ones, then a zero unless this is the all-ones prefix.
    const bool last = node == config_.num_nodes() - 1;
    const std::uint64_t ones = (1ULL << prefix_len) - 1;
    const std::uint64_t prefix = last ? ones : (ones - 1);
    writer.write_bits(prefix, static_cast<unsigned>(prefix_len));
  }
  writer.write_bits(index_[s],
                    static_cast<unsigned>(
                        config_.index_bits[static_cast<std::size_t>(node)]));
}

SeqId GroupedHuffmanCodec::decode_one(BitReader& reader) const {
  // Count leading ones to find the node (the stream parser of Fig. 6).
  int node = 0;
  while (node < config_.num_nodes() - 1 && reader.read_bit()) ++node;
  const auto width = static_cast<unsigned>(
      config_.index_bits[static_cast<std::size_t>(node)]);
  const auto index = static_cast<std::size_t>(reader.read_bits(width));
  const auto& table = tables_[static_cast<std::size_t>(node)];
  check(index < table.size(),
        "GroupedHuffmanCodec: corrupt stream (index beyond table)");
  return table[index];
}

std::vector<std::uint8_t> GroupedHuffmanCodec::encode(
    std::span<const SeqId> sequences, std::size_t& bit_count) const {
  BitWriter writer;
  for (SeqId s : sequences) encode_one(writer, s);
  bit_count = writer.bit_size();
  return writer.take();
}

std::vector<SeqId> GroupedHuffmanCodec::decode(
    std::span<const std::uint8_t> stream, std::size_t bit_count,
    std::size_t count) const {
  if (simd::scalar_forced()) return decode_scalar(stream, bit_count, count);
  return multi_.decode(stream, bit_count, count);
}

std::vector<SeqId> GroupedHuffmanCodec::decode_scalar(
    std::span<const std::uint8_t> stream, std::size_t bit_count,
    std::size_t count) const {
  BitReader reader(stream, bit_count);
  std::vector<SeqId> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(decode_one(reader));
  return out;
}

std::vector<SeqId> GroupedHuffmanCodec::decode_multi(
    std::span<const std::uint8_t> stream, std::size_t bit_count,
    std::size_t count) const {
  return multi_.decode(stream, bit_count, count);
}

std::span<const SeqId> GroupedHuffmanCodec::uncompressed_table(
    int node) const {
  check(node >= 0 && node < config_.num_nodes(),
        "GroupedHuffmanCodec: bad node");
  return tables_[static_cast<std::size_t>(node)];
}

std::size_t GroupedHuffmanCodec::node_occupancy(int node) const {
  return uncompressed_table(node).size();
}

double GroupedHuffmanCodec::node_share(int node,
                                       const FrequencyTable& table) const {
  check(table.total() > 0, "GroupedHuffmanCodec: empty table");
  std::uint64_t sum = 0;
  for (SeqId s : uncompressed_table(node)) sum += table.count(s);
  return static_cast<double>(sum) / static_cast<double>(table.total());
}

std::uint64_t GroupedHuffmanCodec::encoded_bits(
    const FrequencyTable& table) const {
  std::uint64_t bits = 0;
  for (int s = 0; s < bnn::kNumSequences; ++s) {
    const std::uint64_t c = table.count(static_cast<SeqId>(s));
    if (c > 0) bits += c * code_length(static_cast<SeqId>(s));
  }
  return bits;
}

double GroupedHuffmanCodec::compression_ratio(
    const FrequencyTable& table) const {
  const std::uint64_t plain =
      table.total() * static_cast<std::uint64_t>(bnn::kSeqBits);
  const std::uint64_t coded = encoded_bits(table);
  check(coded > 0, "GroupedHuffmanCodec: empty stream");
  return static_cast<double>(plain) / static_cast<double>(coded);
}

std::uint64_t GroupedHuffmanCodec::table_bits() const {
  std::uint64_t bits = 0;
  for (const auto& table : tables_) {
    bits += static_cast<std::uint64_t>(table.size()) * bnn::kSeqBits;
  }
  // Length table: one 4-bit width per node.
  bits += static_cast<std::uint64_t>(config_.num_nodes()) * 4;
  return bits;
}

std::vector<std::uint8_t> scan_code_lengths(
    std::span<const std::uint8_t> stream, std::size_t bit_count,
    std::size_t count, const GroupedTreeConfig& config) {
  config.validate();
  check(bit_count <= stream.size() * 8,
        "scan_code_lengths: bit count exceeds the stream buffer");
  BitReader reader(stream, bit_count);
  std::vector<std::uint8_t> lengths;
  lengths.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // The node prefix alone fixes the codeword length; the index bits
    // carry no length information and are skipped unread.
    int node = 0;
    while (node < config.num_nodes() - 1) {
      check(reader.remaining() >= 1,
            "scan_code_lengths: stream ends mid-codeword (sequence " +
                std::to_string(i) + " of " + std::to_string(count) + ")");
      if (!reader.read_bit()) break;
      ++node;
    }
    const auto index_bits = static_cast<std::size_t>(
        config.index_bits[static_cast<std::size_t>(node)]);
    check(reader.remaining() >= index_bits,
          "scan_code_lengths: stream ends mid-codeword (sequence " +
              std::to_string(i) + " of " + std::to_string(count) + ")");
    reader.skip_bits(index_bits);
    lengths.push_back(static_cast<std::uint8_t>(config.code_length(node)));
  }
  check(reader.remaining() == 0,
        "scan_code_lengths: " + std::to_string(count) +
            " codewords consumed " + std::to_string(reader.position()) +
            " bits, the stream declares " + std::to_string(bit_count));
  return lengths;
}

}  // namespace bkc::compress
