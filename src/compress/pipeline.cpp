#include "compress/pipeline.h"

#include <optional>

#include "compress/block_codec.h"
#include "util/check.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace bkc::compress {

ModelCompressor::ModelCompressor(GroupedTreeConfig tree,
                                 ClusteringConfig clustering,
                                 std::uint32_t codec_id)
    : tree_(std::move(tree)),
      clustering_(clustering),
      codec_id_(codec_id),
      codec_(make_block_codec(codec_id, tree_, clustering_)) {
  tree_.validate();
}

CompressedBlock ModelCompressor::compress_block(
    const std::string& name, const bnn::PackedKernel& kernel) const {
  // The whole per-block pass lives in the selected codec backend
  // (compress/block_codec.h); for the default grouped-huffman codec it
  // is the original single-pass body, moved verbatim.
  return codec_->compress_block(name, kernel);
}

ModelReport aggregate_block_reports(std::vector<BlockReport> blocks,
                                    std::uint64_t model_bits) {
  check(!blocks.empty(), "ModelCompressor: model has no blocks");

  // Serial, in block order: keeping the reduction serial makes the
  // aggregate sums and means bit-identical to the single-threaded path.
  ModelReport report;
  std::vector<double> encoding_ratios;
  std::vector<double> clustering_ratios;
  for (BlockReport& block_report : blocks) {
    report.conv3x3_bits += block_report.uncompressed_bits;
    report.conv3x3_encoding_bits += block_report.encoding_bits;
    report.conv3x3_clustering_bits += block_report.clustering_bits;
    report.decode_table_bits += block_report.decode_table_bits;
    encoding_ratios.push_back(block_report.encoding_ratio);
    clustering_ratios.push_back(block_report.clustering_ratio);
    report.blocks.push_back(std::move(block_report));
  }

  report.mean_encoding_ratio = mean(encoding_ratios);
  report.mean_clustering_ratio = mean(clustering_ratios);

  report.model_bits = model_bits;
  check(report.model_bits >= report.conv3x3_bits,
        "ModelCompressor: inconsistent storage breakdown: model_bits (" +
            std::to_string(report.model_bits) + ") < summed 3x3 bits (" +
            std::to_string(report.conv3x3_bits) + ")");
  const std::uint64_t other_bits = report.model_bits - report.conv3x3_bits;
  const std::uint64_t compressed_bits =
      other_bits + report.conv3x3_clustering_bits;
  check(compressed_bits > 0,
        "ModelCompressor: compressed model storage is zero bits");
  report.model_ratio = static_cast<double>(report.model_bits) /
                       static_cast<double>(compressed_bits);
  report.model_ratio_with_tables =
      static_cast<double>(report.model_bits) /
      static_cast<double>(compressed_bits + report.decode_table_bits);
  return report;
}

CompressedModel ModelCompressor::compress_model(const bnn::ReActNet& model,
                                                int num_threads) const {
  // Fail fast, before any fan-out (an empty model would otherwise only
  // surface in the reduction).
  check(model.num_blocks() > 0, "ModelCompressor: model has no blocks");

  // Phase 1 (parallel): one pipeline pass per block into disjoint
  // slots. Blocks are independent by construction, so the fan-out
  // cannot change any per-block artifact or number. CompressedBlock is
  // not default-constructible (the codecs require a frequency table),
  // so the parallel phase fills optional slots.
  std::vector<std::optional<CompressedBlock>> slots(model.num_blocks());
  parallel_for(static_cast<std::int64_t>(model.num_blocks()), num_threads,
               [&](std::int64_t begin, std::int64_t end) {
                 for (std::int64_t b = begin; b < end; ++b) {
                   const auto i = static_cast<std::size_t>(b);
                   const auto& block = model.block(i);
                   slots[i].emplace(compress_block(
                       block.name(), block.conv3x3().kernel()));
                 }
               });

  // Phase 2 (serial, in block order): unwrap and reduce.
  CompressedModel out;
  out.blocks.reserve(model.num_blocks());
  std::vector<BlockReport> reports;
  reports.reserve(model.num_blocks());
  for (std::optional<CompressedBlock>& slot : slots) {
    reports.push_back(slot->report);
    out.blocks.push_back(std::move(*slot));
  }
  out.report = aggregate_block_reports(std::move(reports),
                                       model.storage().total_bits);
  return out;
}

ModelReport ModelCompressor::analyze(const bnn::ReActNet& model,
                                     int num_threads) const {
  return compress_model(model, num_threads).report;
}

std::vector<KernelCompression> ModelCompressor::compress_blocks(
    const bnn::ReActNet& model, bool apply_clustering,
    int num_threads) const {
  CompressedModel compressed = compress_model(model, num_threads);
  std::vector<KernelCompression> out;
  out.reserve(compressed.blocks.size());
  for (CompressedBlock& block : compressed.blocks) {
    out.push_back(std::move(apply_clustering ? block.clustered
                                             : block.encoding));
  }
  return out;
}

ModelReport ModelCompressor::compress_and_install(bnn::ReActNet& model,
                                                  int num_threads) const {
  CompressedModel compressed = compress_model(model, num_threads);
  for (std::size_t b = 0; b < model.num_blocks(); ++b) {
    model.block(b).conv3x3().set_kernel(
        std::move(compressed.blocks[b].clustered.coded_kernel));
  }
  return std::move(compressed.report);
}

}  // namespace bkc::compress
