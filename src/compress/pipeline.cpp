#include "compress/pipeline.h"

#include <optional>

#include "bnn/kernel_sequences.h"
#include "compress/huffman.h"
#include "util/check.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace bkc::compress {

ModelCompressor::ModelCompressor(GroupedTreeConfig tree,
                                 ClusteringConfig clustering)
    : tree_(std::move(tree)), clustering_(clustering) {
  tree_.validate();
}

CompressedBlock ModelCompressor::compress_block(
    const std::string& name, const bnn::PackedKernel& kernel) const {
  BlockReport report;
  report.block_name = name;

  // The one sequence extraction and one frequency count of the pass;
  // everything below — clustering, kernel remap, both stream encodes —
  // feeds off this list instead of re-walking the packed kernel.
  const std::vector<SeqId> sequences = bnn::extract_sequences(kernel);
  FrequencyTable table = FrequencyTable::from_sequences(sequences);
  report.num_sequences = table.total();
  report.distinct_sequences = table.distinct();
  report.top16_share = table.top_k_share(16);
  report.top64_share = table.top_k_share(64);
  report.top256_share = table.top_k_share(256);
  report.entropy_bits = table.entropy_bits();
  report.uncompressed_bits = table.total() * bnn::kSeqBits;

  // Encoding column: grouped tree straight from the observed counts.
  GroupedHuffmanCodec plain_codec(table, tree_);
  report.encoding_bits = plain_codec.encoded_bits(table);
  report.encoding_ratio = plain_codec.compression_ratio(table);
  for (int n = 0; n < tree_.num_nodes(); ++n) {
    report.node_shares_encoding.push_back(plain_codec.node_share(n, table));
  }

  // Clustering column: the one clustering search, applied to the
  // counts (remapping the table is count-identical to re-counting the
  // remapped sequences), the sequence list and the kernel.
  ClusteringResult clustering = cluster_sequences(table, clustering_);
  const std::vector<SeqId> remapped =
      clustering.apply(std::span<const SeqId>(sequences));
  bnn::PackedKernel coded_kernel = bnn::kernel_from_sequences(
      kernel.shape().out_channels, kernel.shape().in_channels, remapped);
  FrequencyTable clustered_table = clustering.apply(table);
  GroupedHuffmanCodec clustered_codec(clustered_table, tree_);
  report.clustering_bits = clustered_codec.encoded_bits(clustered_table);
  report.clustering_ratio = clustered_codec.compression_ratio(clustered_table);
  for (int n = 0; n < tree_.num_nodes(); ++n) {
    report.node_shares_clustering.push_back(
        clustered_codec.node_share(n, clustered_table));
  }
  report.flipped_bit_fraction = clustering.flipped_bit_fraction();
  report.replaced_sequences = clustering.replacements().size();
  report.decode_table_bits = clustered_codec.table_bits();

  // Full-Huffman bound on the clustered alphabet.
  const HuffmanCodec huffman = HuffmanCodec::build(clustered_table);
  report.huffman_ratio = huffman.compression_ratio(clustered_table);

  // Both stream artifacts, from the codecs and sequence lists already
  // built (no re-extraction from the packed kernels). The code-length
  // vectors are part of the artifact: hwsim's StreamInfo borrows them
  // instead of re-walking the kernel per simulation.
  CompressedKernel plain_stream =
      compress_sequences(sequences, kernel.shape().out_channels,
                         kernel.shape().in_channels, plain_codec);
  CompressedKernel clustered_stream =
      compress_sequences(remapped, kernel.shape().out_channels,
                         kernel.shape().in_channels, clustered_codec);
  std::vector<std::uint8_t> plain_lengths =
      code_lengths_for(sequences, plain_codec);
  std::vector<std::uint8_t> clustered_lengths =
      code_lengths_for(remapped, clustered_codec);

  return CompressedBlock{
      .encoding =
          KernelCompression{
              .frequencies = table,
              .clustering = ClusteringResult{},  // identity
              .coded_frequencies = table,
              .codec = std::move(plain_codec),
              .compressed = std::move(plain_stream),
              .coded_kernel = kernel,
              .code_lengths = std::move(plain_lengths)},
      .clustered =
          KernelCompression{
              .frequencies = std::move(table),
              .clustering = std::move(clustering),
              .coded_frequencies = std::move(clustered_table),
              .codec = std::move(clustered_codec),
              .compressed = std::move(clustered_stream),
              .coded_kernel = std::move(coded_kernel),
              .code_lengths = std::move(clustered_lengths)},
      .report = std::move(report)};
}

ModelReport aggregate_block_reports(std::vector<BlockReport> blocks,
                                    std::uint64_t model_bits) {
  check(!blocks.empty(), "ModelCompressor: model has no blocks");

  // Serial, in block order: keeping the reduction serial makes the
  // aggregate sums and means bit-identical to the single-threaded path.
  ModelReport report;
  std::vector<double> encoding_ratios;
  std::vector<double> clustering_ratios;
  for (BlockReport& block_report : blocks) {
    report.conv3x3_bits += block_report.uncompressed_bits;
    report.conv3x3_encoding_bits += block_report.encoding_bits;
    report.conv3x3_clustering_bits += block_report.clustering_bits;
    report.decode_table_bits += block_report.decode_table_bits;
    encoding_ratios.push_back(block_report.encoding_ratio);
    clustering_ratios.push_back(block_report.clustering_ratio);
    report.blocks.push_back(std::move(block_report));
  }

  report.mean_encoding_ratio = mean(encoding_ratios);
  report.mean_clustering_ratio = mean(clustering_ratios);

  report.model_bits = model_bits;
  check(report.model_bits >= report.conv3x3_bits,
        "ModelCompressor: inconsistent storage breakdown: model_bits (" +
            std::to_string(report.model_bits) + ") < summed 3x3 bits (" +
            std::to_string(report.conv3x3_bits) + ")");
  const std::uint64_t other_bits = report.model_bits - report.conv3x3_bits;
  const std::uint64_t compressed_bits =
      other_bits + report.conv3x3_clustering_bits;
  check(compressed_bits > 0,
        "ModelCompressor: compressed model storage is zero bits");
  report.model_ratio = static_cast<double>(report.model_bits) /
                       static_cast<double>(compressed_bits);
  report.model_ratio_with_tables =
      static_cast<double>(report.model_bits) /
      static_cast<double>(compressed_bits + report.decode_table_bits);
  return report;
}

CompressedModel ModelCompressor::compress_model(const bnn::ReActNet& model,
                                                int num_threads) const {
  // Fail fast, before any fan-out (an empty model would otherwise only
  // surface in the reduction).
  check(model.num_blocks() > 0, "ModelCompressor: model has no blocks");

  // Phase 1 (parallel): one pipeline pass per block into disjoint
  // slots. Blocks are independent by construction, so the fan-out
  // cannot change any per-block artifact or number. CompressedBlock is
  // not default-constructible (the codecs require a frequency table),
  // so the parallel phase fills optional slots.
  std::vector<std::optional<CompressedBlock>> slots(model.num_blocks());
  parallel_for(static_cast<std::int64_t>(model.num_blocks()), num_threads,
               [&](std::int64_t begin, std::int64_t end) {
                 for (std::int64_t b = begin; b < end; ++b) {
                   const auto i = static_cast<std::size_t>(b);
                   const auto& block = model.block(i);
                   slots[i].emplace(compress_block(
                       block.name(), block.conv3x3().kernel()));
                 }
               });

  // Phase 2 (serial, in block order): unwrap and reduce.
  CompressedModel out;
  out.blocks.reserve(model.num_blocks());
  std::vector<BlockReport> reports;
  reports.reserve(model.num_blocks());
  for (std::optional<CompressedBlock>& slot : slots) {
    reports.push_back(slot->report);
    out.blocks.push_back(std::move(*slot));
  }
  out.report = aggregate_block_reports(std::move(reports),
                                       model.storage().total_bits);
  return out;
}

ModelReport ModelCompressor::analyze(const bnn::ReActNet& model,
                                     int num_threads) const {
  return compress_model(model, num_threads).report;
}

std::vector<KernelCompression> ModelCompressor::compress_blocks(
    const bnn::ReActNet& model, bool apply_clustering,
    int num_threads) const {
  CompressedModel compressed = compress_model(model, num_threads);
  std::vector<KernelCompression> out;
  out.reserve(compressed.blocks.size());
  for (CompressedBlock& block : compressed.blocks) {
    out.push_back(std::move(apply_clustering ? block.clustered
                                             : block.encoding));
  }
  return out;
}

ModelReport ModelCompressor::compress_and_install(bnn::ReActNet& model,
                                                  int num_threads) const {
  CompressedModel compressed = compress_model(model, num_threads);
  for (std::size_t b = 0; b < model.num_blocks(); ++b) {
    model.block(b).conv3x3().set_kernel(
        std::move(compressed.blocks[b].clustered.coded_kernel));
  }
  return std::move(compressed.report);
}

}  // namespace bkc::compress
