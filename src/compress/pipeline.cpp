#include "compress/pipeline.h"

#include <optional>

#include "compress/huffman.h"
#include "util/check.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace bkc::compress {

ModelCompressor::ModelCompressor(GroupedTreeConfig tree,
                                 ClusteringConfig clustering)
    : tree_(std::move(tree)), clustering_(clustering) {
  tree_.validate();
}

BlockReport ModelCompressor::analyze_block(
    const std::string& name, const bnn::PackedKernel& kernel) const {
  BlockReport report;
  report.block_name = name;

  const FrequencyTable table = FrequencyTable::from_kernel(kernel);
  report.num_sequences = table.total();
  report.distinct_sequences = table.distinct();
  report.top16_share = table.top_k_share(16);
  report.top64_share = table.top_k_share(64);
  report.top256_share = table.top_k_share(256);
  report.entropy_bits = table.entropy_bits();
  report.uncompressed_bits = table.total() * bnn::kSeqBits;

  // Encoding column: grouped tree straight from the observed counts.
  const GroupedHuffmanCodec plain_codec(table, tree_);
  report.encoding_bits = plain_codec.encoded_bits(table);
  report.encoding_ratio = plain_codec.compression_ratio(table);
  for (int n = 0; n < tree_.num_nodes(); ++n) {
    report.node_shares_encoding.push_back(plain_codec.node_share(n, table));
  }

  // Clustering column: remove rare sequences first.
  const ClusteringResult clustering = cluster_sequences(table, clustering_);
  const FrequencyTable clustered = clustering.apply(table);
  const GroupedHuffmanCodec clustered_codec(clustered, tree_);
  report.clustering_bits = clustered_codec.encoded_bits(clustered);
  report.clustering_ratio = clustered_codec.compression_ratio(clustered);
  for (int n = 0; n < tree_.num_nodes(); ++n) {
    report.node_shares_clustering.push_back(
        clustered_codec.node_share(n, clustered));
  }
  report.flipped_bit_fraction = clustering.flipped_bit_fraction();
  report.replaced_sequences = clustering.replacements().size();
  report.decode_table_bits = clustered_codec.table_bits();

  // Full-Huffman bound on the clustered alphabet.
  const HuffmanCodec huffman = HuffmanCodec::build(clustered);
  report.huffman_ratio = huffman.compression_ratio(clustered);
  return report;
}

ModelReport ModelCompressor::analyze(const bnn::ReActNet& model,
                                     int num_threads) const {
  // Phase 1 (parallel): per-block analysis into disjoint slots. Blocks
  // are independent by construction, so the fan-out cannot change any
  // per-block number.
  std::vector<BlockReport> blocks(model.num_blocks());
  parallel_for(static_cast<std::int64_t>(model.num_blocks()), num_threads,
               [&](std::int64_t begin, std::int64_t end) {
                 for (std::int64_t b = begin; b < end; ++b) {
                   const auto& block =
                       model.block(static_cast<std::size_t>(b));
                   blocks[static_cast<std::size_t>(b)] = analyze_block(
                       block.name(), block.conv3x3().kernel());
                 }
               });

  // Phase 2 (serial, in block order): the reduction. Keeping it serial
  // makes the aggregate sums and means bit-identical to the
  // single-threaded path.
  ModelReport report;
  std::vector<double> encoding_ratios;
  std::vector<double> clustering_ratios;
  for (BlockReport& block_report : blocks) {
    report.conv3x3_bits += block_report.uncompressed_bits;
    report.conv3x3_encoding_bits += block_report.encoding_bits;
    report.conv3x3_clustering_bits += block_report.clustering_bits;
    report.decode_table_bits += block_report.decode_table_bits;
    encoding_ratios.push_back(block_report.encoding_ratio);
    clustering_ratios.push_back(block_report.clustering_ratio);
    report.blocks.push_back(std::move(block_report));
  }
  check(!report.blocks.empty(), "ModelCompressor: model has no blocks");

  report.mean_encoding_ratio = mean(encoding_ratios);
  report.mean_clustering_ratio = mean(clustering_ratios);

  report.model_bits = model.storage().total_bits;
  const std::uint64_t other_bits = report.model_bits - report.conv3x3_bits;
  report.model_ratio =
      static_cast<double>(report.model_bits) /
      static_cast<double>(other_bits + report.conv3x3_clustering_bits);
  report.model_ratio_with_tables =
      static_cast<double>(report.model_bits) /
      static_cast<double>(other_bits + report.conv3x3_clustering_bits +
                          report.decode_table_bits);
  return report;
}

std::vector<KernelCompression> ModelCompressor::compress_blocks(
    const bnn::ReActNet& model, bool apply_clustering,
    int num_threads) const {
  // KernelCompression is not default-constructible (the codec requires a
  // frequency table), so the parallel phase fills optional slots and the
  // serial phase unwraps them in block order.
  std::vector<std::optional<KernelCompression>> slots(model.num_blocks());
  parallel_for(static_cast<std::int64_t>(model.num_blocks()), num_threads,
               [&](std::int64_t begin, std::int64_t end) {
                 for (std::int64_t b = begin; b < end; ++b) {
                   const auto i = static_cast<std::size_t>(b);
                   slots[i].emplace(compress_kernel_pipeline(
                       model.block(i).conv3x3().kernel(), apply_clustering,
                       tree_, clustering_));
                 }
               });
  std::vector<KernelCompression> out;
  out.reserve(model.num_blocks());
  for (std::optional<KernelCompression>& slot : slots) {
    out.push_back(std::move(*slot));
  }
  return out;
}

ModelReport ModelCompressor::compress_and_install(
    bnn::ReActNet& model) const {
  ModelReport report = analyze(model);
  for (std::size_t b = 0; b < model.num_blocks(); ++b) {
    auto& conv = model.block(b).conv3x3();
    const FrequencyTable table = FrequencyTable::from_kernel(conv.kernel());
    const ClusteringResult clustering = cluster_sequences(table, clustering_);
    conv.set_kernel(clustering.apply(conv.kernel()));
  }
  return report;
}

}  // namespace bkc::compress
