#include "compress/mst_codec.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <limits>

#include "bnn/bitseq.h"
#include "util/bitstream.h"
#include "util/check.h"

namespace bkc::compress {

namespace {

unsigned width_for_entries(std::size_t entries) {
  if (entries <= 1) return 1;
  return static_cast<unsigned>(std::bit_width(entries - 1));
}

}  // namespace

MstDictionary MstDictionary::build(const FrequencyTable& table) {
  check(table.total() > 0, "MstDictionary: frequency table is empty");

  // Prim's algorithm over the distinct sequences, seeded at the most
  // frequent one. `ranked()` breaks count ties by ascending id, so the
  // whole construction is deterministic.
  const SeqId root = table.ranked().front();

  MstDictionary dict;
  dict.sequences_.push_back(root);
  dict.index_map_[root] = 0;

  // best_dist[s] / best_parent[s]: the cheapest known attachment of the
  // not-yet-attached sequence s to the growing tree. Updated after each
  // attachment; ties keep the smallest parent index (the update below
  // only replaces on strictly smaller distance, and parents are visited
  // in ascending index order).
  std::array<int, bnn::kNumSequences> best_dist;
  std::array<std::int32_t, bnn::kNumSequences> best_parent;
  best_dist.fill(std::numeric_limits<int>::max());
  best_parent.fill(-1);

  std::vector<SeqId> pending;
  for (int s = 0; s < bnn::kNumSequences; ++s) {
    const SeqId seq = static_cast<SeqId>(s);
    if (seq == root || table.count(seq) == 0) continue;
    pending.push_back(seq);
    best_dist[static_cast<std::size_t>(s)] = bnn::hamming_distance(seq, root);
    best_parent[static_cast<std::size_t>(s)] = 0;
  }

  while (!pending.empty()) {
    // Pick the attachment minimizing (distance, parent index, seq id).
    // `pending` stays in ascending id order, so the first strict
    // improvement wins all three tie-breaks at once.
    std::size_t pick = 0;
    for (std::size_t i = 1; i < pending.size(); ++i) {
      const std::size_t a = pending[i];
      const std::size_t b = pending[pick];
      if (best_dist[a] < best_dist[b] ||
          (best_dist[a] == best_dist[b] && best_parent[a] < best_parent[b])) {
        pick = i;
      }
    }
    const SeqId seq = pending[pick];
    const std::int32_t parent = best_parent[seq];
    const SeqId parent_seq =
        dict.sequences_[static_cast<std::size_t>(parent)];
    const std::int32_t index =
        static_cast<std::int32_t>(dict.sequences_.size());
    dict.sequences_.push_back(seq);
    dict.index_map_[seq] = index;
    dict.edges_.push_back(MstEdge{
        .parent = static_cast<std::uint16_t>(parent),
        .delta = static_cast<std::uint16_t>(seq ^ parent_seq),
    });
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pick));

    for (const SeqId other : pending) {
      const int dist = bnn::hamming_distance(other, seq);
      if (dist < best_dist[other]) {
        best_dist[other] = dist;
        best_parent[other] = index;
      }
    }
  }
  return dict;
}

MstDictionary MstDictionary::from_edges(SeqId root,
                                        std::vector<MstEdge> edges) {
  check(root < bnn::kNumSequences, "MstDictionary: root sequence out of range");
  check(edges.size() < bnn::kNumSequences,
        "MstDictionary: more edges than distinct sequences");

  MstDictionary dict;
  dict.sequences_.reserve(edges.size() + 1);
  dict.sequences_.push_back(root);
  dict.index_map_[root] = 0;
  for (const MstEdge& edge : edges) {
    check(edge.parent < dict.sequences_.size(),
          "MstDictionary: edge parent is not an earlier entry");
    check(edge.delta > 0 && edge.delta < bnn::kNumSequences,
          "MstDictionary: edge delta out of range");
    const SeqId seq =
        static_cast<SeqId>(dict.sequences_[edge.parent] ^ edge.delta);
    check(dict.index_map_[seq] < 0,
          "MstDictionary: duplicate sequence in dictionary");
    dict.index_map_[seq] = static_cast<std::int32_t>(dict.sequences_.size());
    dict.sequences_.push_back(seq);
  }
  dict.edges_ = std::move(edges);
  return dict;
}

SeqId MstDictionary::root() const {
  check(!empty(), "MstDictionary: root() on an empty dictionary");
  return sequences_[0];
}

std::uint16_t MstDictionary::index_of(SeqId s) const {
  check(contains(s), "MstDictionary: sequence not in dictionary");
  return static_cast<std::uint16_t>(index_map_[s]);
}

bool MstDictionary::contains(SeqId s) const {
  return s < bnn::kNumSequences && index_map_[s] >= 0;
}

unsigned MstDictionary::index_width() const {
  return width_for_entries(sequences_.size());
}

std::uint64_t MstDictionary::table_bits() const {
  std::uint64_t bits = empty() ? 0 : bnn::kSeqBits;  // the raw root
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    // Entry i + 1: a parent index in [0, i], a 4-bit flip count, and a
    // 4-bit position per flipped weight.
    bits += width_for_entries(i + 1);
    bits += 4u + 4u * static_cast<unsigned>(
                          bnn::seq_popcount(edges_[i].delta));
  }
  return bits;
}

std::vector<std::uint8_t> mst_encode(std::span<const SeqId> sequences,
                                     const MstDictionary& dictionary,
                                     std::size_t& bit_count) {
  const unsigned width = dictionary.index_width();
  BitWriter writer;
  for (const SeqId s : sequences) {
    writer.write_bits(dictionary.index_of(s), width);
  }
  bit_count = writer.bit_size();
  return writer.take();
}

std::vector<SeqId> mst_decode(std::span<const std::uint8_t> stream,
                              std::size_t bit_count, std::size_t count,
                              const MstDictionary& dictionary) {
  check(!dictionary.empty() || count == 0,
        "mst_decode: empty dictionary with a non-empty stream");
  const unsigned width = dictionary.index_width();
  check(bit_count == count * width,
        "mst_decode: stream bit count does not match the sequence count");
  check(bit_count <= stream.size() * 8,
        "mst_decode: stream shorter than its declared bit count");
  BitReader reader(stream, bit_count);
  std::vector<SeqId> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t index = reader.read_bits(width);
    check(index < dictionary.size(), "mst_decode: index beyond dictionary");
    out.push_back(dictionary.sequences()[static_cast<std::size_t>(index)]);
  }
  return out;
}

}  // namespace bkc::compress
