#pragma once
// Removing less frequent bit sequences by clustering (Sec III-C).
//
// The paper observes that a rarely used sequence s_a can be replaced by
// a frequently used one s_b "without negatively affecting the model
// accuracy", provided hamming(s_a, s_b) == 1 (a single flipped weight).
// The algorithm: build the set st of the M most common sequences and the
// set su of the N least common ones; for every s_a in su pick the
// highest-frequency s_b in st at Hamming distance 1 (if any) and replace
// every occurrence of s_a with s_b. Replaced sequences vanish from the
// alphabet, concentrating mass in the short-code nodes and improving the
// compression ratio (Table V's "Clustering" column).

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "bnn/bitpack.h"
#include "compress/frequency.h"

namespace bkc::compress {

/// Parameters of the clustering pass. The defaults reproduce the paper:
/// "the 256 most uncommon are removed" (N = 256) against the common set
/// of all remaining sequences (M = 256); the paper reports empirically
/// searching M/N combinations, and the M=N=256 split is the one whose
/// post-clustering node shares match its Sec VI numbers. `max_distance`
/// generalizes the Hamming constraint for the ablation bench; the paper
/// uses 1.
struct ClusteringConfig {
  std::size_t most_common = 64;    ///< M: size of the common set st
  std::size_t least_common = 352;  ///< N: size of the rare set su
  int max_distance = 1;
};

/// One substitution performed by the pass.
struct Replacement {
  SeqId from = 0;
  SeqId to = 0;
  std::uint64_t occurrences = 0;  ///< how many kernel channels changed
  int distance = 0;               ///< hamming(from, to)
};

/// Outcome of the clustering pass: a remap over the alphabet plus
/// accounting of how much the kernels were perturbed (the accuracy
/// proxy measured by the ablation bench and examples).
class ClusteringResult {
 public:
  ClusteringResult();

  /// Rebuild a result from its replacement list (the serialized form,
  /// compress/serialize.h). The remap and the replaced/flipped counters
  /// are derived from the replacements, so a restored result cannot be
  /// internally inconsistent. CheckError on out-of-range sequence ids,
  /// a stored distance that is not the pair's actual Hamming distance,
  /// self-replacements, a sequence replaced twice, replacement chains
  /// (a target that is itself replaced), or occurrence counts that
  /// exceed the total (checked per replacement, overflow-proof).
  static ClusteringResult from_replacements(
      std::vector<Replacement> replacements,
      std::uint64_t total_occurrences);

  /// Where sequence `s` now maps (itself if kept).
  SeqId remap(SeqId s) const;

  const std::vector<Replacement>& replacements() const {
    return replacements_;
  }

  /// Occurrences rewritten across the analyzed kernels.
  std::uint64_t replaced_occurrences() const { return replaced_occurrences_; }
  /// Individual +/-1 weights flipped (= occurrences, at distance 1).
  std::uint64_t flipped_weight_bits() const { return flipped_weight_bits_; }
  std::uint64_t total_occurrences() const { return total_occurrences_; }

  /// Fraction of all kernel weight bits flipped by the pass.
  double flipped_bit_fraction() const;

  /// Frequency table after applying the remap.
  FrequencyTable apply(const FrequencyTable& table) const;

  /// Rewrite a sequence list through the remap.
  std::vector<SeqId> apply(std::span<const SeqId> sequences) const;

  /// Rewrite every channel of a 3x3 packed kernel through the remap.
  bnn::PackedKernel apply(const bnn::PackedKernel& kernel) const;

 private:
  friend ClusteringResult cluster_sequences(const FrequencyTable&,
                                            const ClusteringConfig&);
  std::array<SeqId, bnn::kNumSequences> remap_{};
  std::vector<Replacement> replacements_;
  std::uint64_t replaced_occurrences_ = 0;
  std::uint64_t flipped_weight_bits_ = 0;
  std::uint64_t total_occurrences_ = 0;
};

/// Run the Sec III-C algorithm over a frequency table.
ClusteringResult cluster_sequences(const FrequencyTable& table,
                                   const ClusteringConfig& config = {});

}  // namespace bkc::compress
