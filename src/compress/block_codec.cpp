#include "compress/block_codec.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "bnn/kernel_sequences.h"
#include "compress/huffman.h"
#include "compress/serialize.h"
#include "util/check.h"

namespace bkc::compress {

std::int64_t read_channel_count(ByteReader& reader, const char* what) {
  const std::int64_t value = reader.read_i64();
  check(value >= 1 && value <= kMaxChannels,
        reader.context() + ": implausible " + what + " (" +
            std::to_string(value) + ")");
  return value;
}

CompressedKernelRef read_compressed_kernel_ref(ByteReader& reader) {
  CompressedKernelRef kernel;
  kernel.out_channels = read_channel_count(reader, "stream out_channels");
  kernel.in_channels = read_channel_count(reader, "stream in_channels");
  check(kernel.out_channels * kernel.in_channels <= kMaxModelUnits,
        reader.context() + ": implausible stream kernel size");
  const std::uint64_t stream_bits = reader.read_varint();
  check(stream_bits <= std::numeric_limits<std::size_t>::max() - 7,
        reader.context() + ": implausible stream bit count");
  kernel.stream_bits = static_cast<std::size_t>(stream_bits);
  kernel.stream = reader.read_span((kernel.stream_bits + 7) / 8);
  return kernel;
}

namespace {

/// Recover the per-codeword lengths of a parsed stream, re-contexted so
/// a corrupt-behind-valid-crc stream still names the section at fault.
std::vector<std::uint8_t> scan_lengths_checked(
    const ByteReader& reader, const CompressedKernelRef& kernel,
    const GroupedTreeConfig& config) {
  try {
    return scan_code_lengths(
        kernel.stream, kernel.stream_bits,
        static_cast<std::size_t>(kernel.out_channels * kernel.in_channels),
        config);
  } catch (const CheckError& e) {
    throw CheckError(reader.context() + ": " + e.what());
  }
}

// ---- grouped-huffman (id 1): the paper's scheme ----

class GroupedBlockCodec final : public BlockCodec {
 public:
  GroupedBlockCodec(GroupedTreeConfig tree, ClusteringConfig clustering)
      : tree_(std::move(tree)), clustering_(clustering) {
    tree_.validate();
  }

  std::uint32_t id() const override { return kCodecGroupedHuffman; }
  std::string_view name() const override { return "grouped-huffman"; }

  CompressedBlock compress_block(
      const std::string& name,
      const bnn::PackedKernel& kernel) const override {
    BlockReport report;
    report.block_name = name;

    // The one sequence extraction and one frequency count of the pass;
    // everything below — clustering, kernel remap, both stream encodes —
    // feeds off this list instead of re-walking the packed kernel.
    const std::vector<SeqId> sequences = bnn::extract_sequences(kernel);
    FrequencyTable table = FrequencyTable::from_sequences(sequences);
    report.num_sequences = table.total();
    report.distinct_sequences = table.distinct();
    report.top16_share = table.top_k_share(16);
    report.top64_share = table.top_k_share(64);
    report.top256_share = table.top_k_share(256);
    report.entropy_bits = table.entropy_bits();
    report.uncompressed_bits = table.total() * bnn::kSeqBits;

    // Encoding column: grouped tree straight from the observed counts.
    GroupedHuffmanCodec plain_codec(table, tree_);
    report.encoding_bits = plain_codec.encoded_bits(table);
    report.encoding_ratio = plain_codec.compression_ratio(table);
    for (int n = 0; n < tree_.num_nodes(); ++n) {
      report.node_shares_encoding.push_back(plain_codec.node_share(n, table));
    }

    // Clustering column: the one clustering search, applied to the
    // counts (remapping the table is count-identical to re-counting the
    // remapped sequences), the sequence list and the kernel.
    ClusteringResult clustering = cluster_sequences(table, clustering_);
    const std::vector<SeqId> remapped =
        clustering.apply(std::span<const SeqId>(sequences));
    bnn::PackedKernel coded_kernel = bnn::kernel_from_sequences(
        kernel.shape().out_channels, kernel.shape().in_channels, remapped);
    FrequencyTable clustered_table = clustering.apply(table);
    GroupedHuffmanCodec clustered_codec(clustered_table, tree_);
    report.clustering_bits = clustered_codec.encoded_bits(clustered_table);
    report.clustering_ratio =
        clustered_codec.compression_ratio(clustered_table);
    for (int n = 0; n < tree_.num_nodes(); ++n) {
      report.node_shares_clustering.push_back(
          clustered_codec.node_share(n, clustered_table));
    }
    report.flipped_bit_fraction = clustering.flipped_bit_fraction();
    report.replaced_sequences = clustering.replacements().size();
    report.decode_table_bits = clustered_codec.table_bits();

    // Full-Huffman bound on the clustered alphabet.
    const HuffmanCodec huffman = HuffmanCodec::build(clustered_table);
    report.huffman_ratio = huffman.compression_ratio(clustered_table);

    // Both stream artifacts, from the codecs and sequence lists already
    // built (no re-extraction from the packed kernels). The code-length
    // vectors are part of the artifact: hwsim's StreamInfo borrows them
    // instead of re-walking the kernel per simulation.
    CompressedKernel plain_stream =
        compress_sequences(sequences, kernel.shape().out_channels,
                           kernel.shape().in_channels, plain_codec);
    CompressedKernel clustered_stream =
        compress_sequences(remapped, kernel.shape().out_channels,
                           kernel.shape().in_channels, clustered_codec);
    std::vector<std::uint8_t> plain_lengths =
        code_lengths_for(sequences, plain_codec);
    std::vector<std::uint8_t> clustered_lengths =
        code_lengths_for(remapped, clustered_codec);

    return CompressedBlock{
        .encoding =
            KernelCompression{
                .frequencies = table,
                .clustering = ClusteringResult{},  // identity
                .coded_frequencies = table,
                .codec = std::move(plain_codec),
                .compressed = std::move(plain_stream),
                .coded_kernel = kernel,
                .code_lengths = std::move(plain_lengths)},
        .clustered =
            KernelCompression{
                .frequencies = std::move(table),
                .clustering = std::move(clustering),
                .coded_frequencies = std::move(clustered_table),
                .codec = std::move(clustered_codec),
                .compressed = std::move(clustered_stream),
                .coded_kernel = std::move(coded_kernel),
                .code_lengths = std::move(clustered_lengths)},
        .report = std::move(report)};
  }

  bnn::PackedKernel decode(const KernelCompression& stream) const override {
    return decompress_kernel(stream.compressed, stream.codec);
  }

  void write_block(ByteWriter& writer,
                   const KernelCompression& stream) const override {
    check(stream.codec_id == kCodecGroupedHuffman,
          "grouped-huffman write_block: artifact belongs to another codec");
    // The v1 per-block layout, verbatim — a v2 grouped block is the v1
    // payload behind its codec-id word.
    write_kernel_compression(writer, stream);
  }

  ParsedBlock read_block(ByteReader& reader) const override {
    ParsedBlock parsed;
    KernelCompression& artifact = parsed.artifact;
    artifact.codec_id = kCodecGroupedHuffman;
    artifact.frequencies = read_frequency_table(reader);
    artifact.clustering = read_clustering_result(reader);
    artifact.coded_frequencies = read_frequency_table(reader);
    artifact.codec = read_codec(reader);
    const CompressedKernelRef ref = read_compressed_kernel_ref(reader);
    artifact.compressed.out_channels = ref.out_channels;
    artifact.compressed.in_channels = ref.in_channels;
    artifact.compressed.stream_bits = ref.stream_bits;
    artifact.code_lengths =
        scan_lengths_checked(reader, ref, artifact.codec.config());
    parsed.stream = ref.stream;
    return parsed;
  }

  void verify_artifact(const KernelCompression& stream,
                       std::size_t index) const override {
    // The original weights are not stored, so verification means
    // cross-checking the artifact's INDEPENDENT pieces against each
    // other (not decode-vs-what-decode-installed, which is circular):
    //   1. the decoded stream's sequence counts must reproduce the
    //      stored coded_frequencies table,
    //   2. the stored remap applied to the stored pre-clustering
    //      frequencies must also yield coded_frequencies.
    const std::vector<SeqId> decoded = stream.codec.decode(
        stream.compressed.stream, stream.compressed.stream_bits,
        stream.compressed.num_sequences());
    const auto observed = FrequencyTable::from_sequences(decoded);
    check(observed.counts() == stream.coded_frequencies.counts(),
          "verify: block " + std::to_string(index) +
              ": decoded stream does not reproduce the stored frequency "
              "table (tampered stream?)");
    const auto remapped = stream.clustering.apply(stream.frequencies);
    check(remapped.counts() == stream.coded_frequencies.counts(),
          "verify: block " + std::to_string(index) +
              ": stored remap and frequency tables are inconsistent");
  }

 private:
  GroupedTreeConfig tree_;
  ClusteringConfig clustering_;
};

// ---- mst-delta (id 2): MST-compression kernel deltas ----

void write_mst_dictionary(ByteWriter& writer, const MstDictionary& dict) {
  writer.write_varint(dict.size());
  writer.write_varint(dict.root());
  for (const MstEdge& edge : dict.edges()) {
    writer.write_varint(edge.parent);
    writer.write_varint(edge.delta);
  }
}

MstDictionary read_mst_dictionary(ByteReader& reader) {
  const std::uint64_t size = reader.read_varint();
  check(size >= 1 && size <= bnn::kNumSequences,
        reader.context() + ": implausible MST dictionary size (" +
            std::to_string(size) + ")");
  const std::uint64_t root = reader.read_varint();
  check(root < bnn::kNumSequences,
        reader.context() + ": MST dictionary root out of range");
  std::vector<MstEdge> edges;
  edges.reserve(static_cast<std::size_t>(size) - 1);
  for (std::uint64_t i = 1; i < size; ++i) {
    const std::uint64_t parent = reader.read_varint();
    check(parent < i,
          reader.context() + ": MST edge parent is not an earlier entry");
    const std::uint64_t delta = reader.read_varint();
    check(delta >= 1 && delta < bnn::kNumSequences,
          reader.context() + ": MST edge delta out of range");
    edges.push_back(MstEdge{.parent = static_cast<std::uint16_t>(parent),
                            .delta = static_cast<std::uint16_t>(delta)});
  }
  try {
    return MstDictionary::from_edges(static_cast<SeqId>(root),
                                     std::move(edges));
  } catch (const CheckError& e) {
    throw CheckError(reader.context() + ": " + e.what());
  }
}

class MstBlockCodec final : public BlockCodec {
 public:
  std::uint32_t id() const override { return kCodecMstDelta; }
  std::string_view name() const override { return "mst-delta"; }

  CompressedBlock compress_block(
      const std::string& name,
      const bnn::PackedKernel& kernel) const override {
    BlockReport report;
    report.block_name = name;

    const std::vector<SeqId> sequences = bnn::extract_sequences(kernel);
    const FrequencyTable table = FrequencyTable::from_sequences(sequences);
    report.num_sequences = table.total();
    report.distinct_sequences = table.distinct();
    report.top16_share = table.top_k_share(16);
    report.top64_share = table.top_k_share(64);
    report.top256_share = table.top_k_share(256);
    report.entropy_bits = table.entropy_bits();
    report.uncompressed_bits = table.total() * bnn::kSeqBits;

    const MstDictionary dictionary = MstDictionary::build(table);
    const unsigned width = dictionary.index_width();
    std::size_t bit_count = 0;
    std::vector<std::uint8_t> stream_bytes =
        mst_encode(sequences, dictionary, bit_count);

    // The codec is lossless and has no clustering pass, so both Table V
    // columns describe the same stream and the accuracy proxy is zero.
    report.encoding_bits = bit_count;
    report.clustering_bits = bit_count;
    const double ratio = static_cast<double>(report.uncompressed_bits) /
                         static_cast<double>(bit_count);
    report.encoding_ratio = ratio;
    report.clustering_ratio = ratio;
    report.flipped_bit_fraction = 0.0;
    report.replaced_sequences = 0;
    report.decode_table_bits = dictionary.table_bits();

    // Full-Huffman bound on the (unmodified) alphabet.
    const HuffmanCodec huffman = HuffmanCodec::build(table);
    report.huffman_ratio = huffman.compression_ratio(table);

    CompressedKernel compressed;
    compressed.out_channels = kernel.shape().out_channels;
    compressed.in_channels = kernel.shape().in_channels;
    compressed.stream = std::move(stream_bytes);
    compressed.stream_bits = bit_count;

    KernelCompression artifact{
        .codec_id = kCodecMstDelta,
        .frequencies = table,
        .coded_frequencies = table,  // no remap: identical tables
        .mst = dictionary,
        .compressed = std::move(compressed),
        .coded_kernel = kernel,  // lossless: the stream encodes it as-is
        .code_lengths = std::vector<std::uint8_t>(
            sequences.size(), static_cast<std::uint8_t>(width))};

    CompressedBlock block;
    block.encoding = artifact;
    block.clustered = std::move(artifact);
    block.report = std::move(report);
    return block;
  }

  bnn::PackedKernel decode(const KernelCompression& stream) const override {
    const std::vector<SeqId> sequences = mst_decode(
        stream.compressed.stream, stream.compressed.stream_bits,
        stream.compressed.num_sequences(), stream.mst);
    return bnn::kernel_from_sequences(stream.compressed.out_channels,
                                      stream.compressed.in_channels,
                                      sequences);
  }

  void write_block(ByteWriter& writer,
                   const KernelCompression& stream) const override {
    check(stream.codec_id == kCodecMstDelta,
          "mst-delta write_block: artifact belongs to another codec");
    write_frequency_table(writer, stream.coded_frequencies);
    write_mst_dictionary(writer, stream.mst);
    write_compressed_kernel(writer, stream.compressed);
  }

  ParsedBlock read_block(ByteReader& reader) const override {
    ParsedBlock parsed;
    KernelCompression& artifact = parsed.artifact;
    artifact.codec_id = kCodecMstDelta;
    artifact.coded_frequencies = read_frequency_table(reader);
    check(artifact.coded_frequencies.total() > 0,
          reader.context() + ": MST block has an empty frequency table");
    artifact.frequencies = artifact.coded_frequencies;
    artifact.mst = read_mst_dictionary(reader);

    // The dictionary must describe exactly the observed alphabet — a
    // missing sequence could not have been encoded, an extra one pads
    // the index width for nothing (non-canonical).
    check(artifact.mst.size() == artifact.coded_frequencies.distinct(),
          reader.context() + ": MST dictionary size does not match the "
                             "distinct sequence count");
    for (int s = 0; s < bnn::kNumSequences; ++s) {
      if (artifact.coded_frequencies.count(static_cast<SeqId>(s)) == 0) {
        continue;
      }
      check(artifact.mst.contains(static_cast<SeqId>(s)),
            reader.context() +
                ": frequency-table sequence missing from the MST "
                "dictionary");
    }

    const CompressedKernelRef ref = read_compressed_kernel_ref(reader);
    const auto count =
        static_cast<std::size_t>(ref.out_channels * ref.in_channels);
    check(artifact.coded_frequencies.total() == count,
          reader.context() + ": frequency total does not match the "
                             "stream's sequence count");
    const unsigned width = artifact.mst.index_width();
    check(ref.stream_bits == count * width,
          reader.context() + ": stream bit count does not match the "
                             "dictionary index width");
    artifact.compressed.out_channels = ref.out_channels;
    artifact.compressed.in_channels = ref.in_channels;
    artifact.compressed.stream_bits = ref.stream_bits;
    artifact.code_lengths.assign(count, static_cast<std::uint8_t>(width));
    parsed.stream = ref.stream;
    return parsed;
  }

  void verify_artifact(const KernelCompression& stream,
                       std::size_t index) const override {
    const std::vector<SeqId> decoded = mst_decode(
        stream.compressed.stream, stream.compressed.stream_bits,
        stream.compressed.num_sequences(), stream.mst);
    const auto observed = FrequencyTable::from_sequences(decoded);
    check(observed.counts() == stream.coded_frequencies.counts(),
          "verify: block " + std::to_string(index) +
              ": decoded stream does not reproduce the stored frequency "
              "table (tampered stream?)");
    check(stream.frequencies.counts() == stream.coded_frequencies.counts(),
          "verify: block " + std::to_string(index) +
              ": MST artifact tables differ (the codec never remaps)");
    check(stream.clustering.replacements().empty(),
          "verify: block " + std::to_string(index) +
              ": MST artifact carries a non-identity remap");
  }
};

// ---- registry ----

const GroupedBlockCodec& grouped_default() {
  static const GroupedBlockCodec codec{GroupedTreeConfig::paper(),
                                       ClusteringConfig{}};
  return codec;
}

const MstBlockCodec& mst_default() {
  static const MstBlockCodec codec;
  return codec;
}

constexpr std::uint32_t kRegisteredIds[] = {kCodecGroupedHuffman,
                                            kCodecMstDelta};

}  // namespace

bool block_codec_registered(std::uint32_t id) {
  return id == kCodecGroupedHuffman || id == kCodecMstDelta;
}

const BlockCodec& codec_for(std::uint32_t id) {
  switch (id) {
    case kCodecGroupedHuffman:
      return grouped_default();
    case kCodecMstDelta:
      return mst_default();
    default:
      break;
  }
  std::string names;
  for (const std::uint32_t known : kRegisteredIds) {
    if (!names.empty()) names += ", ";
    names += std::to_string(known) + " " +
             std::string(codec_for(known).name());
  }
  throw CheckError("unregistered codec id " + std::to_string(id) +
                   " (registered: " + names + ")");
}

std::span<const std::uint32_t> registered_block_codecs() {
  return kRegisteredIds;
}

std::uint32_t block_codec_id(std::string_view name) {
  for (const std::uint32_t id : kRegisteredIds) {
    if (codec_for(id).name() == name) return id;
  }
  std::string names;
  for (const std::uint32_t id : kRegisteredIds) {
    if (!names.empty()) names += ", ";
    names += codec_for(id).name();
  }
  throw CheckError("unknown codec '" + std::string(name) +
                   "' (registered: " + names + ")");
}

std::shared_ptr<const BlockCodec> make_block_codec(
    std::uint32_t id, GroupedTreeConfig tree, ClusteringConfig clustering) {
  switch (id) {
    case kCodecGroupedHuffman:
      return std::make_shared<GroupedBlockCodec>(std::move(tree), clustering);
    case kCodecMstDelta:
      return std::make_shared<MstBlockCodec>();
    default:
      codec_for(id);  // throws the canonical unregistered-codec error
      unreachable("make_block_codec: codec_for accepted an id the factory "
                  "does not");
  }
}

bnn::PackedKernel decode_block(const KernelCompression& stream) {
  return codec_for(stream.codec_id).decode(stream);
}

}  // namespace bkc::compress
