#include "compress/model_view.h"

#include <string>
#include <utility>

#include "util/check.h"

namespace bkc::compress {

CompressedModelView assemble_view(std::vector<bnn::OpRecord> ops,
                                  std::vector<BlockStreamView> blocks) {
  std::size_t next = 0;
  for (const bnn::OpRecord& op : ops) {
    const bool is_3x3_binary =
        op.precision_bits == 1 && op.op_class == bnn::OpClass::kConv3x3;
    if (!is_3x3_binary) continue;
    check(next < blocks.size(),
          "CompressedModelView: op layout has more 3x3 binary convs than "
          "blocks (" +
              std::to_string(blocks.size()) + ")");
    const BlockStreamView& block = blocks[next];
    check(block.out_channels == op.kernel_shape.out_channels &&
              block.in_channels == op.kernel_shape.in_channels,
          "CompressedModelView: block " + std::to_string(next) +
              " channel shape does not match op '" + op.name + "'");
    check(block.code_lengths.size() == block.num_sequences(),
          "CompressedModelView: block " + std::to_string(next) +
              " carries " + std::to_string(block.code_lengths.size()) +
              " code lengths for " + std::to_string(block.num_sequences()) +
              " sequences");
    ++next;
  }
  check(next == blocks.size(),
        "CompressedModelView: " + std::to_string(blocks.size()) +
            " blocks for " + std::to_string(next) +
            " 3x3 binary convs in the op layout");
  return CompressedModelView{.ops = std::move(ops),
                             .blocks = std::move(blocks)};
}

CompressedModelView view_of(std::vector<bnn::OpRecord> ops,
                            std::span<const KernelCompression> streams) {
  std::vector<BlockStreamView> blocks;
  blocks.reserve(streams.size());
  for (const KernelCompression& stream : streams) {
    blocks.push_back(BlockStreamView{
        .out_channels = stream.compressed.out_channels,
        .in_channels = stream.compressed.in_channels,
        .stream = stream.compressed.stream,
        .stream_bits = stream.compressed.stream_bits,
        .code_lengths = stream.code_lengths,
        .codec = &stream.codec,
        .clustering = &stream.clustering,
        .codec_id = stream.codec_id});
  }
  return assemble_view(std::move(ops), std::move(blocks));
}

}  // namespace bkc::compress
