#pragma once
// Bridging between the channel-packed kernel layout and the per-channel
// bit sequences the compression scheme operates on.
//
// A 3x3 kernel with O output channels and I input channels contains
// O * I bit sequences (one per channel slice). The canonical enumeration
// order used throughout the repository - and by the compressed stream
// format - is output-channel-major: sequence index = o * I + i.

#include <cstdint>
#include <span>
#include <vector>

#include "bnn/bitpack.h"
#include "bnn/bitseq.h"

namespace bkc::bnn {

/// Extract the bit sequence of one channel slice (o, i) of a 3x3 kernel
/// under the natural mapping (Fig. 2).
SeqId sequence_at(const PackedKernel& kernel, std::int64_t o, std::int64_t i);

/// Overwrite one channel slice (o, i) with the given bit sequence.
void set_sequence_at(PackedKernel& kernel, std::int64_t o, std::int64_t i,
                     SeqId seq);

/// All bit sequences of a 3x3 kernel in canonical (o-major) order.
/// Precondition: kernel is 3x3.
std::vector<SeqId> extract_sequences(const PackedKernel& kernel);

/// Rebuild a 3x3 packed kernel from sequences in canonical order.
/// Precondition: sequences.size() == out_channels * in_channels.
PackedKernel kernel_from_sequences(std::int64_t out_channels,
                                   std::int64_t in_channels,
                                   std::span<const SeqId> sequences);

}  // namespace bkc::bnn
