#pragma once
// Binary convolution via xnor + popcount (Eq. 2 of the paper).
//
// For +/-1 operands the dot product of two length-K bit vectors is
//   dot = 2 * popcount(xnor(w, x)) - K
// because every matching bit pair contributes +1 and every differing
// pair -1. The engine walks the channel-packed layout directly: one
// 64-bit xnor+popcount covers 64 channels, mirroring daBNN's NEON path.
//
// Spatial padding follows the paper (Sec IV-B): padded positions hold
// the value -1 (stored bit 0) and *do* contribute to the dot product,
// exactly like the reference convolution with pad_value = -1.

#include "bnn/bitpack.h"
#include "tensor/tensor.h"

namespace bkc::bnn {

/// Binary convolution returning the integer dot products as floats
/// (range [-K, K] with K = in_channels * kernel_h * kernel_w).
/// Works for any kernel size; the paper's models use 3x3 and 1x1.
///
/// The per-output-channel loop runs on bkc::current_num_threads()
/// threads (util/thread_pool.h); results are bit-identical at every
/// thread count because each output channel is computed independently.
/// Engine::classify(image, num_threads) is the usual way to set this.
///
/// The inner pixel loop dispatches to the widest kernel the CPU
/// supports (bnn/bconv_kernels.h: AVX2 today, scalar reference
/// otherwise); every kernel is bit-identical to the scalar path, and
/// BKC_FORCE_SCALAR / -DBKC_DISABLE_SIMD pin the reference.
Tensor binary_conv2d(const PackedFeature& input, const PackedKernel& kernel,
                     ConvGeometry geometry);

/// Convenience wrapper: binarize + pack a float input, then convolve.
Tensor binary_conv2d(const Tensor& input, const PackedKernel& kernel,
                     ConvGeometry geometry);

/// Allocation-free core the Tensor-returning overload wraps: convolve
/// into caller-provided storage of exactly the geometry's output shape
/// (CheckError otherwise). The caller owns the pack scratch (typically
/// the Workspace's, filled via pack_feature_into). When
/// current_num_threads() is 1 the kernel is invoked directly — no
/// parallel_for, no std::function — so the single-thread path performs
/// zero heap allocations.
void binary_conv2d_into(const PackedFeature& input, const PackedKernel& kernel,
                        ConvGeometry geometry, TensorView out);

/// Number of xnor+popcount word operations one call performs; the
/// timing model uses the same accounting.
std::int64_t binary_conv2d_word_ops(const FeatureShape& input,
                                    const KernelShape& kernel,
                                    ConvGeometry geometry);

}  // namespace bkc::bnn
