#include "bnn/bconv.h"

#include <bit>

#include "util/check.h"
#include "util/thread_pool.h"

namespace bkc::bnn {

Tensor binary_conv2d(const PackedFeature& input, const PackedKernel& kernel,
                     ConvGeometry geometry) {
  const FeatureShape in_shape = input.shape();
  const KernelShape k_shape = kernel.shape();
  check(in_shape.channels == k_shape.in_channels,
        "binary_conv2d: channel mismatch (" + in_shape.to_string() + " vs " +
            k_shape.to_string() + ")");
  const FeatureShape out_shape = geometry.output_shape(in_shape, k_shape);
  Tensor out(out_shape);

  const std::int64_t wpp = input.words_per_pixel();
  check(wpp == kernel.words_per_position(),
        "binary_conv2d: packing mismatch");
  const std::uint64_t tail = input.tail_mask();
  // Bits contributed per kernel position: all channels, including the
  // masked-off lanes of the tail word which are forced to match below.
  const std::int64_t receptive = k_shape.receptive_size();

  // Output channels are independent (each one reads the shared input and
  // its own kernel slice, and writes its own output plane), so the outer
  // loop fans out across threads; every (o, oy, ox) accumulation stays
  // thread-local, keeping results bit-identical at any thread count.
  parallel_for(out_shape.channels, current_num_threads(), [&](
                   std::int64_t o_begin, std::int64_t o_end) {
  for (std::int64_t o = o_begin; o < o_end; ++o) {
    for (std::int64_t oy = 0; oy < out_shape.height; ++oy) {
      const std::int64_t base_y = oy * geometry.stride - geometry.padding;
      for (std::int64_t ox = 0; ox < out_shape.width; ++ox) {
        const std::int64_t base_x = ox * geometry.stride - geometry.padding;
        std::int64_t matches = 0;
        for (std::int64_t ky = 0; ky < k_shape.kernel_h; ++ky) {
          const std::int64_t iy = base_y + ky;
          const bool row_in =
              iy >= 0 && iy < in_shape.height;
          for (std::int64_t kx = 0; kx < k_shape.kernel_w; ++kx) {
            const std::int64_t ix = base_x + kx;
            const auto w = kernel.at(o, ky, kx);
            if (row_in && ix >= 0 && ix < in_shape.width) {
              const auto x = input.at(iy, ix);
              for (std::int64_t t = 0; t < wpp; ++t) {
                const std::uint64_t mask =
                    (t == wpp - 1) ? tail : ~0ULL;
                const std::uint64_t agree =
                    ~(w[static_cast<std::size_t>(t)] ^
                      x[static_cast<std::size_t>(t)]) &
                    mask;
                matches += std::popcount(agree);
              }
            } else {
              // Padding: input bits are 0 (-1); agreement happens where
              // the weight bit is 0 too.
              for (std::int64_t t = 0; t < wpp; ++t) {
                const std::uint64_t mask =
                    (t == wpp - 1) ? tail : ~0ULL;
                matches +=
                    std::popcount(~w[static_cast<std::size_t>(t)] & mask);
              }
            }
          }
        }
        out.at(o, oy, ox) =
            static_cast<float>(2 * matches - receptive);
      }
    }
  }
  });
  return out;
}

Tensor binary_conv2d(const Tensor& input, const PackedKernel& kernel,
                     ConvGeometry geometry) {
  return binary_conv2d(pack_feature(input), kernel, geometry);
}

std::int64_t binary_conv2d_word_ops(const FeatureShape& input,
                                    const KernelShape& kernel,
                                    ConvGeometry geometry) {
  const FeatureShape out = geometry.output_shape(input, kernel);
  return out.channels * out.height * out.width * kernel.kernel_h *
         kernel.kernel_w * words_per_group(kernel.in_channels);
}

}  // namespace bkc::bnn
