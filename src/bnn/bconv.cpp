#include "bnn/bconv.h"

#include "bnn/bconv_kernels.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace bkc::bnn {

Tensor binary_conv2d(const PackedFeature& input, const PackedKernel& kernel,
                     ConvGeometry geometry) {
  const FeatureShape in_shape = input.shape();
  const KernelShape k_shape = kernel.shape();
  check(in_shape.channels == k_shape.in_channels,
        "binary_conv2d: channel mismatch (" + in_shape.to_string() + " vs " +
            k_shape.to_string() + ")");
  const FeatureShape out_shape = geometry.output_shape(in_shape, k_shape);
  Tensor out(out_shape);
  binary_conv2d_into(input, kernel, geometry, out);
  return out;
}

void binary_conv2d_into(const PackedFeature& input, const PackedKernel& kernel,
                        ConvGeometry geometry, TensorView out) {
  check(input.shape().channels == kernel.shape().in_channels,
        "binary_conv2d_into: channel mismatch between input and kernel");
  check(input.words_per_pixel() == kernel.words_per_position(),
        "binary_conv2d_into: packing mismatch");
  const FeatureShape out_shape =
      geometry.output_shape(input.shape(), kernel.shape());
  check(out.shape() == out_shape,
        "binary_conv2d_into: out view does not have the output shape");

  // Dispatch is resolved once, on the calling thread; every chunk runs
  // the same kernel. Output channels are independent (each one reads
  // the shared input and its own kernel slice, and writes its own
  // output plane), so the outer loop fans out across threads; every
  // kernel accumulates integers per (o, oy, ox) in isolation, keeping
  // results bit-identical at any thread count *and* for any registered
  // kernel (the contract tests/test_bconv_simd.cpp enforces).
  const ConvKernelFn fn = active_conv_kernel().fn;
  const int num_threads = current_num_threads();
  if (num_threads <= 1) {
    // Serial case bypasses parallel_for: constructing its std::function
    // argument can heap-allocate, which the zero-allocation classify
    // contract forbids. Same arithmetic, same full channel range.
    fn(input, kernel, geometry, out, 0, out_shape.channels);
    return;
  }
  parallel_for(out_shape.channels, num_threads,
               [&](std::int64_t o_begin, std::int64_t o_end) {
                 fn(input, kernel, geometry, out, o_begin, o_end);
               });
}

Tensor binary_conv2d(const Tensor& input, const PackedKernel& kernel,
                     ConvGeometry geometry) {
  return binary_conv2d(pack_feature(input), kernel, geometry);
}

std::int64_t binary_conv2d_word_ops(const FeatureShape& input,
                                    const KernelShape& kernel,
                                    ConvGeometry geometry) {
  const FeatureShape out = geometry.output_shape(input, kernel);
  return out.channels * out.height * out.width * kernel.kernel_h *
         kernel.kernel_w * words_per_group(kernel.in_channels);
}

}  // namespace bkc::bnn
