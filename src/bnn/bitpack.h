#pragma once
// Channel packing (Sec IV-B, Fig 5): the daBNN-style memory layout.
//
// To keep CPU vector registers full, bits from *different channels* at
// the *same spatial position* are packed together into machine words:
// word w of pixel (y, x) holds channels [64w, 64w+63]. The same layout
// is used for kernels: word w of kernel position (o, ky, kx) holds input
// channels [64w, 64w+63]. A stored bit of 1 encodes +1 and 0 encodes -1.
//
// When the channel count is not a multiple of 64 the last word is only
// partially populated; `tail_mask` marks the valid lanes. (The paper's
// ReActNet channel counts are powers of two >= 32, so at most the first
// block uses a partial word; the general case is still fully supported
// and tested.)
//
// Layout invariant: storage bits above `channels` in the tail word are
// always zero - the constructors zero-fill and set_bit touches valid
// lanes only. The mask-free interior loops of the fast convolution
// kernels (bnn/bconv_kernels.h) rely on this: with both operands zero
// there, every masked-off lane contributes a constant xnor agreement
// instead of needing a per-word mask.

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace bkc::bnn {

/// Bits per packing word. 64-bit words are the portable equivalent of
/// the 128-bit NEON registers daBNN targets; the timing model accounts
/// for register width separately.
inline constexpr int kWordBits = 64;

/// Number of words needed to hold `channels` one-bit lanes.
inline std::int64_t words_per_group(std::int64_t channels) {
  return (channels + kWordBits - 1) / kWordBits;
}

/// Mask of valid lanes in the last word of a channel group.
std::uint64_t channel_tail_mask(std::int64_t channels);

/// A binarized feature map in channel-packed layout.
class PackedFeature {
 public:
  PackedFeature() = default;

  /// Zero-initialised (all weights -1) packed map of the given shape.
  explicit PackedFeature(FeatureShape shape);

  /// Re-dimension in place to `shape`, zeroing all words. Reuses the
  /// existing word storage when it is large enough (see
  /// reserve_words), so a Workspace can recycle one PackedFeature as
  /// pack scratch across every binary conv of a model without heap
  /// traffic.
  void reshape(FeatureShape shape);

  /// Pre-grow the word storage so later reshape() calls up to `words`
  /// total words never allocate.
  void reserve_words(std::int64_t words);

  const FeatureShape& shape() const { return shape_; }
  std::int64_t words_per_pixel() const { return words_per_pixel_; }
  std::uint64_t tail_mask() const { return tail_mask_; }

  /// Words for pixel (y, x), lowest channels in word 0 bit 0.
  std::span<const std::uint64_t> at(std::int64_t y, std::int64_t x) const;
  std::span<std::uint64_t> at(std::int64_t y, std::int64_t x);

  /// Get/set the bit for channel c at (y, x). 1 encodes +1.
  int bit(std::int64_t c, std::int64_t y, std::int64_t x) const;
  void set_bit(std::int64_t c, std::int64_t y, std::int64_t x, int value);

  /// Total payload bits actually used (channels * height * width).
  std::int64_t payload_bits() const { return shape_.size(); }

  /// Whole word storage, pixel-major: pixel (y, x) owns words
  /// [(y*width + x) * words_per_pixel, ...). Writers must preserve the
  /// layout invariant (tail-word bits above `channels` stay zero);
  /// pack_feature_into is the intended bulk writer.
  std::span<const std::uint64_t> words() const { return words_; }
  std::span<std::uint64_t> words() { return words_; }

 private:
  FeatureShape shape_;
  std::int64_t words_per_pixel_ = 0;
  std::uint64_t tail_mask_ = 0;
  std::vector<std::uint64_t> words_;
};

/// A binarized convolution kernel in channel-packed layout.
class PackedKernel {
 public:
  PackedKernel() = default;
  explicit PackedKernel(KernelShape shape);

  const KernelShape& shape() const { return shape_; }
  std::int64_t words_per_position() const { return words_per_position_; }
  std::uint64_t tail_mask() const { return tail_mask_; }

  /// Words for output channel o at kernel position (ky, kx).
  std::span<const std::uint64_t> at(std::int64_t o, std::int64_t ky,
                                    std::int64_t kx) const;
  std::span<std::uint64_t> at(std::int64_t o, std::int64_t ky,
                              std::int64_t kx);

  /// Get/set the bit for input channel i. 1 encodes +1.
  int bit(std::int64_t o, std::int64_t i, std::int64_t ky,
          std::int64_t kx) const;
  void set_bit(std::int64_t o, std::int64_t i, std::int64_t ky,
               std::int64_t kx, int value);

  /// Uncompressed storage in bits: one bit per weight (the paper's
  /// baseline storage figure for binary convs).
  std::int64_t payload_bits() const { return shape_.size(); }

  bool operator==(const PackedKernel& other) const = default;

 private:
  KernelShape shape_;
  std::int64_t words_per_position_ = 0;
  std::uint64_t tail_mask_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Binarize (Eq. 1: bit = v >= 0) and channel-pack a float feature map.
/// Reference implementation: one checked set_bit per element, obviously
/// correct, used as the bit-identity oracle for pack_feature_into.
PackedFeature pack_feature(const Tensor& input);

/// Fast pack into caller-provided storage: reshapes `out` to the input
/// shape (no allocation once storage is reserved) and ORs whole channel
/// planes into the packed words with one branch-free pass per channel.
/// Bit-for-bit identical to pack_feature; the arena-backed forward path
/// packs through here using the Workspace pack scratch.
void pack_feature_into(ConstTensorView input, PackedFeature& out);

/// Expand a packed feature back to a +/-1-valued float tensor.
Tensor unpack_feature(const PackedFeature& packed);

/// Binarize and channel-pack float weights (OIHW).
PackedKernel pack_kernel(const WeightTensor& weights);

/// Expand a packed kernel back to +/-1-valued float weights.
WeightTensor unpack_kernel(const PackedKernel& packed);

}  // namespace bkc::bnn
