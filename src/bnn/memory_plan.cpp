#include "bnn/memory_plan.h"

#include <algorithm>

#include "util/check.h"

namespace bkc::bnn {

namespace {

std::int64_t aligned(std::int64_t bytes) {
  return static_cast<std::int64_t>(
      Arena::aligned_size(static_cast<std::size_t>(bytes)));
}

std::int64_t float_bytes(std::int64_t count) {
  return aligned(count * static_cast<std::int64_t>(sizeof(float)));
}

/// activation_floats and pack_words are common to every planner: the
/// former is the largest activation any op reads or writes, the latter
/// the largest packed input of any 1-bit conv.
MemoryPlan common_plan(const std::vector<OpRecord>& records) {
  MemoryPlan plan;
  for (const OpRecord& op : records) {
    plan.activation_floats =
        std::max({plan.activation_floats, op.input_shape.size(),
                  op.output_shape.size()});
    if (op.precision_bits == 1) {
      const FeatureShape& in = op.input_shape;
      plan.pack_words =
          std::max(plan.pack_words,
                   words_per_group(in.channels) * in.height * in.width);
    }
  }
  return plan;
}

/// int8 layers (stem conv, classifier) quantize their whole input into
/// arena scratch.
std::int64_t int8_scratch(const OpRecord& op) {
  return aligned(op.input_shape.size() *
                 static_cast<std::int64_t>(sizeof(std::int8_t)));
}

}  // namespace

std::size_t MemoryPlan::arena_bytes() const {
  return 2 * static_cast<std::size_t>(float_bytes(activation_floats)) +
         static_cast<std::size_t>(scratch_bytes);
}

bool MemoryPlan::covers(const MemoryPlan& other) const {
  return activation_floats >= other.activation_floats &&
         scratch_bytes >= other.scratch_bytes &&
         pack_words >= other.pack_words;
}

MemoryPlan plan_reactnet_forward(const std::vector<OpRecord>& records) {
  MemoryPlan plan = common_plan(records);
  for (const OpRecord& op : records) {
    std::int64_t scratch = 0;
    if (op.precision_bits == 8) {
      scratch = int8_scratch(op);
    } else if (op.op_class == OpClass::kConv3x3 && op.precision_bits == 1) {
      // A basic block holds its 3x3 conv output (the mid tensor `y`)
      // in scratch; a stride-2 block additionally holds the pooled
      // shortcut while forming the residual. This mirrors
      // BasicBlock::forward_into's allocation order exactly — the
      // high-water equality check depends on it.
      scratch = float_bytes(op.output_shape.size());
      if (op.geometry.stride == 2) {
        const FeatureShape& in = op.input_shape;
        scratch += float_bytes(in.channels * (in.height / 2) * (in.width / 2));
      }
    }
    plan.scratch_bytes = std::max(plan.scratch_bytes, scratch);
  }
  return plan;
}

MemoryPlan plan_sequential_forward(const std::vector<OpRecord>& records) {
  MemoryPlan plan = common_plan(records);
  for (const OpRecord& op : records) {
    if (op.precision_bits == 8) {
      plan.scratch_bytes = std::max(plan.scratch_bytes, int8_scratch(op));
    }
  }
  return plan;
}

Workspace::Workspace(const MemoryPlan& plan)
    : plan_(plan), arena_(plan.arena_bytes()) {
  packed_.reserve_words(plan.pack_words);
}

WorkspacePool::Lease WorkspacePool::acquire() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!idle_.empty()) {
      std::unique_ptr<Workspace> workspace = std::move(idle_.back());
      idle_.pop_back();
      return {this, std::move(workspace)};
    }
  }
  // First acquisition on a fresh concurrency level: the one warm-up
  // allocation this worker will ever cause.
  return {this, std::make_unique<Workspace>(plan_)};
}

std::size_t WorkspacePool::idle_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return idle_.size();
}

void WorkspacePool::release(std::unique_ptr<Workspace> workspace) {
  const std::lock_guard<std::mutex> lock(mutex_);
  idle_.push_back(std::move(workspace));
}

}  // namespace bkc::bnn
