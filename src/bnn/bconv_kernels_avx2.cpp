// AVX2 xnor+popcount convolution kernel (the daBNN formulation on
// 256-bit registers). Compiled with -mavx2 -mpopcnt in its own TU so
// the rest of the library stays baseline-ISA; only registered for
// dispatch when the running CPU reports AVX2.
//
// Structure: interior output pixels - every kernel tap in bounds - run
// branchless and mask-free; the border rim reuses the masked scalar
// per-pixel reference. Mask-free works because tail-word lanes above
// the channel count are zero in both operands (bitpack.h invariant), so
// each kernel position contributes exactly (64 * words - channels)
// spurious xnor agreements - a constant subtracted once per pixel.
//
// Two interior shapes:
//   * words_per_pixel == 1, stride 1: four consecutive output columns
//     per vector op. Their input words are contiguous, and the per-
//     64-bit-lane _mm256_sad_epu8 sums keep the four pixels' counts in
//     separate lanes.
//   * otherwise: one pixel at a time over rows of kernel_w * words
//     contiguous words (kernel rows and input row segments are both
//     contiguous in the channel-packed layout).
//
// A NEON port would mirror this file one-to-one: vcntq_u8 replaces the
// nibble-LUT popcount and vpadalq the SAD accumulation; the dispatch
// registry in bconv_kernels.cpp is ISA-agnostic.

#include <immintrin.h>

#include <bit>

#include "bnn/bconv_kernels.h"
#include "util/static_switch.h"

namespace bkc::bnn::internal {

namespace {

/// Per-byte popcounts of v (Mula's nibble-LUT shuffle).
inline __m256i popcount_bytes(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi =
      _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

inline std::int64_t hsum_epi64(__m256i v) {
  const __m128i sum = _mm_add_epi64(_mm256_castsi256_si128(v),
                                    _mm256_extracti128_si256(v, 1));
  return _mm_cvtsi128_si64(sum) + _mm_extract_epi64(sum, 1);
}

/// popcount(~(a[i] ^ b[i])) summed over n words, unmasked.
inline std::int64_t xnor_popcount_row(const std::uint64_t* a,
                                      const std::uint64_t* b,
                                      std::int64_t n) {
  std::int64_t total = 0;
  std::int64_t i = 0;
  if (n >= 4) {
    const __m256i ones = _mm256_set1_epi64x(-1);
    const __m256i zero = _mm256_setzero_si256();
    __m256i acc = _mm256_setzero_si256();
    for (; i + 4 <= n; i += 4) {
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
      const __m256i agree =
          _mm256_xor_si256(_mm256_xor_si256(va, vb), ones);
      acc = _mm256_add_epi64(acc,
                             _mm256_sad_epu8(popcount_bytes(agree), zero));
    }
    total = hsum_epi64(acc);
  }
  for (; i < n; ++i) {
    total += std::popcount(~(a[i] ^ b[i]));
  }
  return total;
}

/// First/last interior output index along one dimension: positions
/// whose kernel window lies fully inside the input.
struct InteriorRange {
  std::int64_t lo;
  std::int64_t hi;  // exclusive
};

InteriorRange interior_range(std::int64_t out_extent, std::int64_t in_extent,
                             std::int64_t k, std::int64_t stride,
                             std::int64_t padding) {
  std::int64_t lo = (padding + stride - 1) / stride;
  const std::int64_t max_base = in_extent - k + padding;
  std::int64_t hi = max_base >= 0 ? max_base / stride + 1 : 0;
  if (lo > out_extent) lo = out_extent;
  if (hi < lo) hi = lo;
  if (hi > out_extent) hi = out_extent;
  return {lo, hi};
}

/// kWpp/kIs3x3 are the BKC_WORDS_SWITCH / BKC_BOOL_SWITCH
/// monomorphization constants (0 / false = stay runtime-generic): with
/// both pinned the row loops below have compile-time trip counts and
/// unroll completely.
template <int kWpp, bool kIs3x3>
void conv_avx2_impl(const PackedFeature& input, const PackedKernel& kernel,
                    ConvGeometry geometry, TensorView out,
                    std::int64_t o_begin, std::int64_t o_end) {
  const FeatureShape& in_shape = input.shape();
  const KernelShape& k_shape = kernel.shape();
  const FeatureShape& out_shape = out.shape();
  const std::int64_t wpp =
      kWpp > 0 ? kWpp : input.words_per_pixel();
  const std::int64_t kh = kIs3x3 ? 3 : k_shape.kernel_h;
  const std::int64_t kw = kIs3x3 ? 3 : k_shape.kernel_w;
  const std::int64_t stride = geometry.stride;
  const std::int64_t padding = geometry.padding;
  const std::int64_t in_w = in_shape.width;
  const std::int64_t receptive = k_shape.receptive_size();
  // Constant spurious agreements from the zeroed tail lanes (see file
  // comment); zero when the channel count fills every word.
  const std::int64_t spurious =
      kh * kw * (wpp * kWordBits - in_shape.channels);

  const InteriorRange ry =
      interior_range(out_shape.height, in_shape.height, kh, stride, padding);
  const InteriorRange rx =
      interior_range(out_shape.width, in_w, kw, stride, padding);

  const std::uint64_t* in_base = input.at(0, 0).data();
  float* out_base = out.data().data();

  const auto emit_border = [&](std::int64_t o, std::int64_t oy,
                               std::int64_t ox, float* out_row) {
    const std::int64_t matches = scalar_pixel_matches(
        input, kernel, o, oy * stride - padding, ox * stride - padding);
    out_row[ox] = static_cast<float>(2 * matches - receptive);
  };

  for (std::int64_t o = o_begin; o < o_end; ++o) {
    // All kh*kw*wpp kernel words of output channel o are contiguous.
    const std::uint64_t* kbase = kernel.at(o, 0, 0).data();
    for (std::int64_t oy = 0; oy < out_shape.height; ++oy) {
      float* out_row =
          out_base + (o * out_shape.height + oy) * out_shape.width;
      if (oy < ry.lo || oy >= ry.hi) {
        for (std::int64_t ox = 0; ox < out_shape.width; ++ox) {
          emit_border(o, oy, ox, out_row);
        }
        continue;
      }
      const std::int64_t base_y = oy * stride - padding;
      for (std::int64_t ox = 0; ox < rx.lo; ++ox) {
        emit_border(o, oy, ox, out_row);
      }
      std::int64_t ox = rx.lo;
      if (kWpp == 1 && stride == 1) {
        // Four consecutive output columns per iteration: with one word
        // per pixel their input words are contiguous, and SAD keeps
        // each pixel's count in its own 64-bit lane.
        const __m256i ones = _mm256_set1_epi64x(-1);
        const __m256i zero = _mm256_setzero_si256();
        for (; ox + 4 <= rx.hi; ox += 4) {
          const std::int64_t base_x = ox - padding;
          __m256i acc = _mm256_setzero_si256();
          for (std::int64_t ky = 0; ky < kh; ++ky) {
            const std::uint64_t* row =
                in_base + (base_y + ky) * in_w + base_x;
            for (std::int64_t kx = 0; kx < kw; ++kx) {
              const __m256i w = _mm256_set1_epi64x(
                  static_cast<long long>(kbase[ky * kw + kx]));
              const __m256i x = _mm256_loadu_si256(
                  reinterpret_cast<const __m256i*>(row + kx));
              const __m256i agree =
                  _mm256_xor_si256(_mm256_xor_si256(w, x), ones);
              acc = _mm256_add_epi64(
                  acc, _mm256_sad_epu8(popcount_bytes(agree), zero));
            }
          }
          alignas(32) std::int64_t lanes[4];
          _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
          for (int j = 0; j < 4; ++j) {
            out_row[ox + j] = static_cast<float>(
                2 * (lanes[j] - spurious) - receptive);
          }
        }
      }
      // Generic interior pixel (and the <4-column remainder above):
      // kernel rows and input row segments are contiguous runs of
      // kw * wpp words.
      for (; ox < rx.hi; ++ox) {
        const std::int64_t base_x = ox * stride - padding;
        std::int64_t raw = 0;
        for (std::int64_t ky = 0; ky < kh; ++ky) {
          raw += xnor_popcount_row(
              kbase + ky * kw * wpp,
              in_base + ((base_y + ky) * in_w + base_x) * wpp, kw * wpp);
        }
        out_row[ox] =
            static_cast<float>(2 * (raw - spurious) - receptive);
      }
      for (std::int64_t bx = rx.hi; bx < out_shape.width; ++bx) {
        emit_border(o, oy, bx, out_row);
      }
    }
  }
}

}  // namespace

void conv_kernel_avx2(const PackedFeature& input, const PackedKernel& kernel,
                      ConvGeometry geometry, TensorView out,
                      std::int64_t o_begin, std::int64_t o_end) {
  const KernelShape& k_shape = kernel.shape();
  BKC_WORDS_SWITCH(input.words_per_pixel(), kWpp, [&] {
    BKC_BOOL_SWITCH(k_shape.kernel_h == 3 && k_shape.kernel_w == 3, kIs3x3,
                    [&] {
                      conv_avx2_impl<kWpp, kIs3x3>(input, kernel, geometry,
                                                   out, o_begin, o_end);
                    });
  });
}

}  // namespace bkc::bnn::internal
