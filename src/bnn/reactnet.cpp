#include "bnn/reactnet.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace bkc::bnn {

std::vector<BlockConfig> mobilenet_v1_schedule(std::int64_t width_divisor) {
  check(width_divisor >= 1, "mobilenet_v1_schedule: divisor must be >= 1");
  // (in, out, stride) of the 13 depthwise-separable stages of
  // MobileNet-V1 at width multiplier 1.0.
  static constexpr std::int64_t kSchedule[13][3] = {
      {32, 64, 1},    {64, 128, 2},   {128, 128, 1}, {128, 256, 2},
      {256, 256, 1},  {256, 512, 2},  {512, 512, 1}, {512, 512, 1},
      {512, 512, 1},  {512, 512, 1},  {512, 512, 1}, {512, 1024, 2},
      {1024, 1024, 1}};
  std::vector<BlockConfig> blocks;
  blocks.reserve(13);
  auto scale = [&](std::int64_t c) {
    return std::max<std::int64_t>(4, c / width_divisor);
  };
  for (const auto& row : kSchedule) {
    blocks.push_back({scale(row[0]), scale(row[1]), row[2]});
  }
  return blocks;
}

ReActNetConfig paper_reactnet_config(std::uint64_t seed) {
  ReActNetConfig config;
  config.seed = seed;
  return config;
}

ReActNetConfig tiny_reactnet_config(std::uint64_t seed) {
  ReActNetConfig config;
  config.input_size = 32;
  config.stem_channels = 4;
  config.num_classes = 10;
  config.blocks = mobilenet_v1_schedule(/*width_divisor=*/8);
  config.seed = seed;
  return config;
}

namespace {

/// Batch-norm scale that keeps post-conv magnitudes around +/-1: binary
/// dot products range over [-K, K], so scale ~ 1/sqrt(K) with a little
/// per-channel jitter stands in for trained parameters.
std::vector<float> bn_scales(WeightGenerator& gen, std::int64_t channels,
                             std::int64_t receptive) {
  auto scales = gen.sample_floats(static_cast<std::size_t>(channels), 0.1f,
                                  1.0f);
  const float norm =
      1.0f / std::sqrt(static_cast<float>(std::max<std::int64_t>(receptive, 1)));
  for (float& s : scales) s = std::max(0.25f, s) * norm;
  return scales;
}

std::unique_ptr<RPReLU> make_rprelu(const std::string& name,
                                    WeightGenerator& gen,
                                    std::int64_t channels) {
  const auto n = static_cast<std::size_t>(channels);
  return std::make_unique<RPReLU>(
      name, gen.sample_floats(n, 0.1f), gen.sample_floats(n, 0.05f, 0.25f),
      gen.sample_floats(n, 0.1f));
}

}  // namespace

BasicBlock::BasicBlock(std::string name, const BlockConfig& config,
                       WeightGenerator& generator,
                       const SequenceDistribution& dist)
    : name_(std::move(name)), config_(config) {
  check(config.in_channels > 0 && config.out_channels > 0,
        "BasicBlock: channels must be positive");
  check(config.stride == 1 || config.stride == 2,
        "BasicBlock: stride must be 1 or 2");
  check(config.out_channels == config.in_channels ||
            config.out_channels == 2 * config.in_channels,
        "BasicBlock: out must be in or 2*in (MobileNet schedule)");
  const std::int64_t in = config.in_channels;
  const bool expand = config.out_channels == 2 * in;

  conv3_ = std::make_unique<BinaryConv2d>(
      name_ + ".conv3x3", generator.sample_kernel3x3(in, in, dist),
      ConvGeometry{config.stride, 1});
  bn1_ = std::make_unique<BatchNorm>(
      name_ + ".bn1", bn_scales(generator, in, in * 9),
      generator.sample_floats(static_cast<std::size_t>(in), 0.05f));
  act1_ = make_rprelu(name_ + ".rprelu1", generator, in);

  conv1a_ = std::make_unique<BinaryConv2d>(
      name_ + ".conv1x1a",
      generator.sample_kernel(KernelShape{in, in, 1, 1}), ConvGeometry{1, 0});
  bn2a_ = std::make_unique<BatchNorm>(
      name_ + ".bn2a", bn_scales(generator, in, in),
      generator.sample_floats(static_cast<std::size_t>(in), 0.05f));
  if (expand) {
    conv1b_ = std::make_unique<BinaryConv2d>(
        name_ + ".conv1x1b",
        generator.sample_kernel(KernelShape{in, in, 1, 1}),
        ConvGeometry{1, 0});
    bn2b_ = std::make_unique<BatchNorm>(
        name_ + ".bn2b", bn_scales(generator, in, in),
        generator.sample_floats(static_cast<std::size_t>(in), 0.05f));
  }
  act2_ = make_rprelu(name_ + ".rprelu2", generator, config.out_channels);
}

Tensor BasicBlock::forward(const Tensor& input) const {
  check(input.shape().channels == config_.in_channels,
        "BasicBlock: input channel mismatch");
  // First half: 3x3 binary conv with residual shortcut.
  Tensor y = bn1_->forward(conv3_->forward(input));
  const Tensor shortcut =
      config_.stride == 2 ? pool_.forward(input) : input;
  y = act1_->forward(residual_add(y, shortcut));

  // Second half: 1x1 binary conv(s) with residual shortcut(s);
  // expansion duplicates the channel count via two parallel convs.
  Tensor za = bn2a_->forward(conv1a_->forward(y));
  za = residual_add(za, y);
  if (conv1b_) {
    Tensor zb = bn2b_->forward(conv1b_->forward(y));
    zb = residual_add(zb, y);
    return act2_->forward(concat_channels(za, zb));
  }
  return act2_->forward(za);
}

void BasicBlock::forward_into(ConstTensorView input, TensorView output,
                              Workspace& workspace) const {
  check(input.shape().channels == config_.in_channels,
        "BasicBlock::forward_into: input channel mismatch");
  check(output.shape() == output_shape(input.shape()),
        "BasicBlock::forward_into: output shape mismatch");
  Arena& arena = workspace.arena();
  const std::size_t block_mark = arena.mark();

  // First half: 3x3 binary conv with residual shortcut, in arena
  // scratch. The stride-2 pooled shortcut is released (LIFO) as soon
  // as the residual consumes it.
  const FeatureShape mid_shape = conv3_->output_shape(input.shape());
  TensorView y(mid_shape, arena.allocate_span<float>(mid_shape.size()));
  conv3_->forward_into(input, y, workspace);
  bn1_->forward_into(y, y, workspace);
  if (config_.stride == 2) {
    const std::size_t pool_mark = arena.mark();
    const FeatureShape pooled_shape = pool_.output_shape(input.shape());
    TensorView shortcut(pooled_shape,
                        arena.allocate_span<float>(pooled_shape.size()));
    pool_.forward_into(input, shortcut, workspace);
    residual_add_into(y, shortcut, y);
    arena.rewind(pool_mark);
  } else {
    residual_add_into(y, input, y);
  }
  act1_->forward_into(y, y, workspace);

  // Second half: the 1x1 conv(s) write straight into the channel
  // halves of the concat destination (CHW makes channel subranges
  // contiguous), so the legacy path's za/zb temporaries and the
  // concat copy never exist here.
  const std::int64_t in = config_.in_channels;
  TensorView za = output.channels(0, in);
  conv1a_->forward_into(y, za, workspace);
  bn2a_->forward_into(za, za, workspace);
  residual_add_into(za, y, za);
  if (conv1b_) {
    TensorView zb = output.channels(in, in);
    conv1b_->forward_into(y, zb, workspace);
    bn2b_->forward_into(zb, zb, workspace);
    residual_add_into(zb, y, zb);
  }
  act2_->forward_into(output, output, workspace);
  arena.rewind(block_mark);
}

std::vector<BinaryConv2d*> BasicBlock::conv1x1s() {
  std::vector<BinaryConv2d*> convs{conv1a_.get()};
  if (conv1b_) convs.push_back(conv1b_.get());
  return convs;
}

std::vector<const BinaryConv2d*> BasicBlock::conv1x1s() const {
  std::vector<const BinaryConv2d*> convs{conv1a_.get()};
  if (conv1b_) convs.push_back(conv1b_.get());
  return convs;
}

FeatureShape BasicBlock::output_shape(const FeatureShape& input) const {
  const FeatureShape mid =
      conv3_->geometry().output_shape(input, conv3_->kernel().shape());
  return {config_.out_channels, mid.height, mid.width};
}

std::vector<OpRecord> BasicBlock::op_records(const FeatureShape& input) const {
  std::vector<OpRecord> records;
  auto push = [&](const Layer& layer, const FeatureShape& shape,
                  const KernelShape& kernel, ConvGeometry geometry) {
    records.push_back(
        make_record(layer.info(shape), shape, kernel, geometry));
    return records.back().output_shape;
  };
  FeatureShape shape = input;
  shape = push(*conv3_, shape, conv3_->kernel().shape(), conv3_->geometry());
  shape = push(*bn1_, shape, {}, {});
  shape = push(*act1_, shape, {}, {});
  const FeatureShape mid = shape;
  shape = push(*conv1a_, mid, conv1a_->kernel().shape(), conv1a_->geometry());
  shape = push(*bn2a_, shape, {}, {});
  if (conv1b_) {
    push(*conv1b_, mid, conv1b_->kernel().shape(), conv1b_->geometry());
    push(*bn2b_, {config_.in_channels, mid.height, mid.width}, {}, {});
  }
  const FeatureShape out{config_.out_channels, mid.height, mid.width};
  records.push_back(make_record(act2_->info(out), out));
  return records;
}

ReActNet::ReActNet(const ReActNetConfig& config)
    : ReActNet(config, WeightGenerator(config.seed)) {}

ReActNet::ReActNet(const ReActNetConfig& config, WeightGenerator generator)
    : config_(config) {
  check(!config.blocks.empty(), "ReActNet: at least one block required");
  check(config.blocks.front().in_channels == config.stem_channels,
        "ReActNet: stem channels must match the first block");

  stem_ = std::make_unique<Int8Conv2d>(
      "stem.conv3x3",
      generator.sample_float_weights(
          KernelShape{config.stem_channels, config.input_channels, 3, 3},
          0.5f),
      generator.sample_floats(static_cast<std::size_t>(config.stem_channels),
                              0.05f),
      ConvGeometry{config.stem_stride, 1}, OpClass::kInputLayer);

  const auto& targets = paper_table2_targets();
  blocks_.reserve(config.blocks.size());
  for (std::size_t b = 0; b < config.blocks.size(); ++b) {
    const SequenceDistribution dist =
        config.calibrated_weights
            ? SequenceDistribution::fitted(targets[b % targets.size()])
            : SequenceDistribution::uniform();
    blocks_.emplace_back("block" + std::to_string(b + 1), config.blocks[b],
                         generator, dist);
  }

  const std::int64_t features = config.blocks.back().out_channels;
  classifier_ = std::make_unique<Int8Linear>(
      "classifier.fc", features, config.num_classes,
      generator.sample_floats(
          static_cast<std::size_t>(features * config.num_classes), 0.05f),
      generator.sample_floats(static_cast<std::size_t>(config.num_classes),
                              0.01f));

  plan_ = plan_reactnet_forward(op_records());
}

Tensor ReActNet::forward(const Tensor& image) const {
  check(image.shape() == input_shape(),
        "ReActNet::forward: expected input " + input_shape().to_string() +
            ", got " + image.shape().to_string());
  Tensor x = stem_->forward(image);
  for (const auto& block : blocks_) x = block.forward(x);
  x = pool_.forward(x);
  return classifier_->forward(x);
}

void ReActNet::forward_into(ConstTensorView image, TensorView scores,
                            Workspace& workspace) const {
  check(image.shape() == input_shape(),
        "ReActNet::forward_into: input shape mismatch");
  check(scores.shape() == FeatureShape{config_.num_classes, 1, 1},
        "ReActNet::forward_into: scores must be num_classes x 1 x 1");
  check(workspace.covers(plan_),
        "ReActNet::forward_into: workspace does not cover this model's "
        "memory plan");
  Arena& arena = workspace.arena();
  arena.reset();
  const std::int64_t buffer_floats = plan_.activation_floats;
  const std::span<float> buffers[2] = {
      arena.allocate_span<float>(buffer_floats),
      arena.allocate_span<float>(buffer_floats)};

  FeatureShape shape = stem_->output_shape(image.shape());
  check(shape.size() <= buffer_floats,
        "ReActNet::forward_into: plan does not cover the stem output");
  TensorView current(shape,
                     buffers[0].first(static_cast<std::size_t>(shape.size())));
  stem_->forward_into(image, current, workspace);

  int next = 1;
  for (const auto& block : blocks_) {
    shape = block.output_shape(current.shape());
    check(shape.size() <= buffer_floats,
          "ReActNet::forward_into: plan does not cover a block output");
    TensorView destination(
        shape, buffers[next].first(static_cast<std::size_t>(shape.size())));
    block.forward_into(current, destination, workspace);
    current = destination;
    next = 1 - next;
  }

  shape = pool_.output_shape(current.shape());
  TensorView pooled(shape,
                    buffers[next].first(static_cast<std::size_t>(shape.size())));
  pool_.forward_into(current, pooled, workspace);
  classifier_->forward_into(pooled, scores, workspace);
}

FeatureShape ReActNet::input_shape() const {
  return {config_.input_channels, config_.input_size, config_.input_size};
}

BasicBlock& ReActNet::block(std::size_t i) {
  check(i < blocks_.size(), "ReActNet::block index out of range");
  return blocks_[i];
}

const BasicBlock& ReActNet::block(std::size_t i) const {
  check(i < blocks_.size(), "ReActNet::block index out of range");
  return blocks_[i];
}

std::vector<OpRecord> ReActNet::op_records() const {
  std::vector<OpRecord> records;
  FeatureShape shape = input_shape();
  {
    const LayerInfo info = stem_->info(shape);
    records.push_back(make_record(
        info, shape,
        KernelShape{config_.stem_channels, config_.input_channels, 3, 3},
        ConvGeometry{config_.stem_stride, 1}));
    shape = info.output_shape;
  }
  for (const auto& block : blocks_) {
    auto block_records = block.op_records(shape);
    shape = block.output_shape(shape);
    records.insert(records.end(),
                   std::make_move_iterator(block_records.begin()),
                   std::make_move_iterator(block_records.end()));
  }
  {
    const LayerInfo info = pool_.info(shape);
    records.push_back(make_record(info, shape));
    shape = info.output_shape;
  }
  records.push_back(make_record(classifier_->info(shape), shape));
  return records;
}

StorageBreakdown ReActNet::storage() const { return summarize(op_records()); }

std::vector<OpRecord> op_records_for(const ReActNetConfig& config) {
  return ReActNet(config, WeightGenerator::layout_only()).op_records();
}

}  // namespace bkc::bnn
