#include "bnn/model.h"

#include "bnn/memory_plan.h"
#include "util/check.h"

namespace bkc::bnn {

void StorageBreakdown::add(const OpRecord& op) {
  bits_by_class[op.op_class] += op.storage_bits;
  macs_by_class[op.op_class] += op.macs;
  total_bits += op.storage_bits;
  total_macs += op.macs;
}

double StorageBreakdown::bits_fraction(OpClass op) const {
  check(total_bits > 0, "StorageBreakdown: no storage recorded");
  const auto it = bits_by_class.find(op);
  if (it == bits_by_class.end()) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(total_bits);
}

double StorageBreakdown::macs_fraction(OpClass op) const {
  check(total_macs > 0, "StorageBreakdown: no work recorded");
  const auto it = macs_by_class.find(op);
  if (it == macs_by_class.end()) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(total_macs);
}

StorageBreakdown summarize(const std::vector<OpRecord>& ops) {
  StorageBreakdown breakdown;
  for (const auto& op : ops) breakdown.add(op);
  return breakdown;
}

Tensor Sequential::forward(const Tensor& input) const {
  Tensor current = input;
  for (const auto& layer : layers_) current = layer->forward(current);
  return current;
}

void Sequential::forward_into(ConstTensorView input, TensorView output,
                              Workspace& workspace) const {
  Arena& arena = workspace.arena();
  arena.reset();
  if (layers_.empty()) {
    check(output.shape() == input.shape(),
          "Sequential::forward_into: output shape mismatch");
    copy_into(input, output);
    return;
  }
  const std::int64_t buffer_floats = workspace.plan().activation_floats;
  const std::span<float> buffers[2] = {
      arena.allocate_span<float>(buffer_floats),
      arena.allocate_span<float>(buffer_floats)};
  ConstTensorView current = input;
  int next = 0;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const Layer* layer = layers_[i].get();
    // Redundant sign elision: BinaryConv2d packs with bit = v >= 0,
    // and sign(v) >= 0 exactly when v >= 0, so a SignActivation whose
    // output only feeds a BinaryConv2d contributes nothing — skip it
    // and let the conv pack straight from the pre-sign activations.
    if (i + 1 < layers_.size() &&
        dynamic_cast<const SignActivation*>(layer) != nullptr &&
        dynamic_cast<const BinaryConv2d*>(layers_[i + 1].get()) != nullptr) {
      continue;
    }
    const FeatureShape out_shape = layer->output_shape(current.shape());
    TensorView destination = output;
    if (i + 1 < layers_.size()) {
      check(out_shape.size() <= buffer_floats,
            "Sequential::forward_into: workspace plan does not cover this "
            "model's activations");
      destination = TensorView(
          out_shape,
          buffers[next].first(static_cast<std::size_t>(out_shape.size())));
      next = 1 - next;
    } else {
      check(output.shape() == out_shape,
            "Sequential::forward_into: output shape mismatch");
    }
    layer->forward_into(current, destination, workspace);
    current = destination;
  }
}

const Layer& Sequential::layer(std::size_t i) const {
  check(i < layers_.size(), "Sequential::layer index out of range");
  return *layers_[i];
}

std::vector<OpRecord> Sequential::op_records(
    const FeatureShape& input_shape) const {
  std::vector<OpRecord> records;
  records.reserve(layers_.size());
  FeatureShape shape = input_shape;
  for (const auto& layer : layers_) {
    const LayerInfo info = layer->info(shape);
    KernelShape kernel{};
    ConvGeometry geometry{};
    if (const auto* conv = dynamic_cast<const BinaryConv2d*>(layer.get())) {
      kernel = conv->kernel().shape();
      geometry = conv->geometry();
    }
    records.push_back(make_record(info, shape, kernel, geometry));
    shape = info.output_shape;
  }
  return records;
}

FeatureShape Sequential::output_shape(const FeatureShape& input_shape) const {
  FeatureShape shape = input_shape;
  for (const auto& layer : layers_) shape = layer->info(shape).output_shape;
  return shape;
}

OpRecord make_record(const LayerInfo& info, const FeatureShape& input_shape,
                     const KernelShape& kernel_shape, ConvGeometry geometry) {
  return {.name = info.name,
          .op_class = info.op_class,
          .storage_bits = info.storage_bits,
          .macs = info.macs,
          .precision_bits = info.precision_bits,
          .input_shape = input_shape,
          .output_shape = info.output_shape,
          .kernel_shape = kernel_shape,
          .geometry = geometry};
}

}  // namespace bkc::bnn
