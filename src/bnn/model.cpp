#include "bnn/model.h"

#include "util/check.h"

namespace bkc::bnn {

void StorageBreakdown::add(const OpRecord& op) {
  bits_by_class[op.op_class] += op.storage_bits;
  macs_by_class[op.op_class] += op.macs;
  total_bits += op.storage_bits;
  total_macs += op.macs;
}

double StorageBreakdown::bits_fraction(OpClass op) const {
  check(total_bits > 0, "StorageBreakdown: no storage recorded");
  const auto it = bits_by_class.find(op);
  if (it == bits_by_class.end()) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(total_bits);
}

double StorageBreakdown::macs_fraction(OpClass op) const {
  check(total_macs > 0, "StorageBreakdown: no work recorded");
  const auto it = macs_by_class.find(op);
  if (it == macs_by_class.end()) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(total_macs);
}

StorageBreakdown summarize(const std::vector<OpRecord>& ops) {
  StorageBreakdown breakdown;
  for (const auto& op : ops) breakdown.add(op);
  return breakdown;
}

Tensor Sequential::forward(const Tensor& input) const {
  Tensor current = input;
  for (const auto& layer : layers_) current = layer->forward(current);
  return current;
}

const Layer& Sequential::layer(std::size_t i) const {
  check(i < layers_.size(), "Sequential::layer index out of range");
  return *layers_[i];
}

std::vector<OpRecord> Sequential::op_records(
    const FeatureShape& input_shape) const {
  std::vector<OpRecord> records;
  records.reserve(layers_.size());
  FeatureShape shape = input_shape;
  for (const auto& layer : layers_) {
    const LayerInfo info = layer->info(shape);
    KernelShape kernel{};
    ConvGeometry geometry{};
    if (const auto* conv = dynamic_cast<const BinaryConv2d*>(layer.get())) {
      kernel = conv->kernel().shape();
      geometry = conv->geometry();
    }
    records.push_back(make_record(info, shape, kernel, geometry));
    shape = info.output_shape;
  }
  return records;
}

FeatureShape Sequential::output_shape(const FeatureShape& input_shape) const {
  FeatureShape shape = input_shape;
  for (const auto& layer : layers_) shape = layer->info(shape).output_shape;
  return shape;
}

OpRecord make_record(const LayerInfo& info, const FeatureShape& input_shape,
                     const KernelShape& kernel_shape, ConvGeometry geometry) {
  return {.name = info.name,
          .op_class = info.op_class,
          .storage_bits = info.storage_bits,
          .macs = info.macs,
          .precision_bits = info.precision_bits,
          .input_shape = input_shape,
          .output_shape = info.output_shape,
          .kernel_shape = kernel_shape,
          .geometry = geometry};
}

}  // namespace bkc::bnn
