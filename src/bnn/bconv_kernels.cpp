#include "bnn/bconv_kernels.h"

#include <atomic>
#include <bit>
#include <vector>

#include "util/simd.h"

namespace bkc::bnn {

namespace internal {

std::int64_t scalar_pixel_matches(const PackedFeature& input,
                                  const PackedKernel& kernel, std::int64_t o,
                                  std::int64_t base_y, std::int64_t base_x) {
  const FeatureShape& in_shape = input.shape();
  const KernelShape& k_shape = kernel.shape();
  const std::int64_t wpp = input.words_per_pixel();
  const std::uint64_t tail = input.tail_mask();
  std::int64_t matches = 0;
  for (std::int64_t ky = 0; ky < k_shape.kernel_h; ++ky) {
    const std::int64_t iy = base_y + ky;
    const bool row_in = iy >= 0 && iy < in_shape.height;
    for (std::int64_t kx = 0; kx < k_shape.kernel_w; ++kx) {
      const std::int64_t ix = base_x + kx;
      const auto w = kernel.at(o, ky, kx);
      if (row_in && ix >= 0 && ix < in_shape.width) {
        const auto x = input.at(iy, ix);
        for (std::int64_t t = 0; t < wpp; ++t) {
          const std::uint64_t mask = (t == wpp - 1) ? tail : ~0ULL;
          const std::uint64_t agree =
              ~(w[static_cast<std::size_t>(t)] ^
                x[static_cast<std::size_t>(t)]) &
              mask;
          matches += std::popcount(agree);
        }
      } else {
        // Padding: input bits are 0 (-1); agreement happens where the
        // weight bit is 0 too.
        for (std::int64_t t = 0; t < wpp; ++t) {
          const std::uint64_t mask = (t == wpp - 1) ? tail : ~0ULL;
          matches += std::popcount(~w[static_cast<std::size_t>(t)] & mask);
        }
      }
    }
  }
  return matches;
}

}  // namespace internal

namespace {

// The seed's loop: masked scalar xnor+popcount over every pixel. This
// is the reference every other kernel is diffed against, so it must not
// share fast-path shortcuts - only the per-pixel arithmetic helper.
void conv_kernel_scalar(const PackedFeature& input, const PackedKernel& kernel,
                        ConvGeometry geometry, TensorView out,
                        std::int64_t o_begin, std::int64_t o_end) {
  const FeatureShape& out_shape = out.shape();
  const std::int64_t receptive = kernel.shape().receptive_size();
  for (std::int64_t o = o_begin; o < o_end; ++o) {
    for (std::int64_t oy = 0; oy < out_shape.height; ++oy) {
      const std::int64_t base_y = oy * geometry.stride - geometry.padding;
      for (std::int64_t ox = 0; ox < out_shape.width; ++ox) {
        const std::int64_t base_x = ox * geometry.stride - geometry.padding;
        const std::int64_t matches =
            internal::scalar_pixel_matches(input, kernel, o, base_y, base_x);
        out.at(o, oy, ox) = static_cast<float>(2 * matches - receptive);
      }
    }
  }
}

constexpr ConvKernelInfo kScalarKernel{"scalar", conv_kernel_scalar};

#if defined(BKC_HAVE_AVX2)
constexpr ConvKernelInfo kAvx2Kernel{"avx2", internal::conv_kernel_avx2};
#endif

// Test/bench override; null means "dispatch normally". Acquire/release
// pairs with the pool's run barrier for cross-worker visibility.
std::atomic<const ConvKernelInfo*> g_override{nullptr};

}  // namespace

const ConvKernelInfo& scalar_conv_kernel() { return kScalarKernel; }

std::span<const ConvKernelInfo> conv_kernels() {
  static const std::vector<ConvKernelInfo> kernels = [] {
    std::vector<ConvKernelInfo> list{kScalarKernel};
#if defined(BKC_HAVE_AVX2)
    if (simd::cpu_supports_avx2()) list.push_back(kAvx2Kernel);
#endif
    return list;
  }();
  return kernels;
}

const ConvKernelInfo& active_conv_kernel() {
  if (const ConvKernelInfo* forced =
          g_override.load(std::memory_order_acquire)) {
    return *forced;
  }
  if (simd::scalar_forced()) return kScalarKernel;
  return conv_kernels().back();
}

ScopedConvKernelOverride::ScopedConvKernelOverride(
    const ConvKernelInfo& kernel)
    : previous_(g_override.exchange(&kernel, std::memory_order_acq_rel)) {}

ScopedConvKernelOverride::~ScopedConvKernelOverride() {
  g_override.store(previous_, std::memory_order_release);
}

}  // namespace bkc::bnn
