#include "bnn/binarize.h"

namespace bkc::bnn {

Tensor binarize(const Tensor& input) {
  Tensor out = input;
  out.transform([](float v) { return sign_binarize(v); });
  return out;
}

WeightTensor binarize(const WeightTensor& weights) {
  WeightTensor out = weights;
  for (float& v : out.data()) v = sign_binarize(v);
  return out;
}

}  // namespace bkc::bnn
