#include "bnn/kernel_sequences.h"

#include "util/check.h"

namespace bkc::bnn {

namespace {
void check_3x3(const KernelShape& shape) {
  check(shape.kernel_h == kSeqSide && shape.kernel_w == kSeqSide,
        "bit sequences are defined for 3x3 kernels, got " +
            shape.to_string());
}
}  // namespace

SeqId sequence_at(const PackedKernel& kernel, std::int64_t o,
                  std::int64_t i) {
  check_3x3(kernel.shape());
  SeqId seq = 0;
  for (int ky = 0; ky < kSeqSide; ++ky) {
    for (int kx = 0; kx < kSeqSide; ++kx) {
      seq = static_cast<SeqId>((seq << 1) |
                               static_cast<SeqId>(kernel.bit(o, i, ky, kx)));
    }
  }
  return seq;
}

void set_sequence_at(PackedKernel& kernel, std::int64_t o, std::int64_t i,
                     SeqId seq) {
  check_3x3(kernel.shape());
  check(seq < kNumSequences, "set_sequence_at: sequence id out of range");
  for (int ky = 0; ky < kSeqSide; ++ky) {
    for (int kx = 0; kx < kSeqSide; ++kx) {
      kernel.set_bit(o, i, ky, kx, seq_bit(seq, ky, kx));
    }
  }
}

std::vector<SeqId> extract_sequences(const PackedKernel& kernel) {
  check_3x3(kernel.shape());
  const auto& shape = kernel.shape();
  std::vector<SeqId> out;
  out.reserve(
      static_cast<std::size_t>(shape.out_channels * shape.in_channels));
  for (std::int64_t o = 0; o < shape.out_channels; ++o) {
    for (std::int64_t i = 0; i < shape.in_channels; ++i) {
      out.push_back(sequence_at(kernel, o, i));
    }
  }
  return out;
}

PackedKernel kernel_from_sequences(std::int64_t out_channels,
                                   std::int64_t in_channels,
                                   std::span<const SeqId> sequences) {
  check(static_cast<std::int64_t>(sequences.size()) ==
            out_channels * in_channels,
        "kernel_from_sequences: sequence count mismatch");
  PackedKernel kernel(
      KernelShape{out_channels, in_channels, kSeqSide, kSeqSide});
  std::size_t index = 0;
  for (std::int64_t o = 0; o < out_channels; ++o) {
    for (std::int64_t i = 0; i < in_channels; ++i) {
      set_sequence_at(kernel, o, i, sequences[index++]);
    }
  }
  return kernel;
}

}  // namespace bkc::bnn
