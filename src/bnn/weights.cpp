#include "bnn/weights.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "util/check.h"
#include "util/stats.h"

namespace bkc::bnn {

const std::array<BlockFrequencyTarget, 13>& paper_table2_targets() {
  // Table II of the paper, converted from percent to fractions.
  static const std::array<BlockFrequencyTarget, 13> kTargets = {{
      {0.534, 0.906},   // Block 1
      {0.645, 0.951},   // Block 2
      {0.563, 0.8711},  // Block 3
      {0.648, 0.927},   // Block 4
      {0.632, 0.883},   // Block 5
      {0.631, 0.9086},  // Block 6
      {0.624, 0.9164},  // Block 7
      {0.608, 0.9024},  // Block 8
      {0.552, 0.929},   // Block 9
      {0.622, 0.899},   // Block 10
      {0.6797, 0.92},   // Block 11
      {0.753, 0.934},   // Block 12
      {0.583, 0.869},   // Block 13
  }};
  return kTargets;
}

const std::array<SeqId, 16>& figure3_top16() {
  static const std::array<SeqId, 16> kTop16 = {
      0, 511, 256, 255, 4, 510, 1, 507, 508, 64, 3, 504, 447, 7, 448, 63};
  return kTop16;
}

const std::array<SeqId, kNumSequences>&
SequenceDistribution::popularity_order() {
  static const std::array<SeqId, kNumSequences> kOrder = [] {
    std::array<SeqId, kNumSequences> order{};
    std::array<bool, kNumSequences> used{};
    std::size_t next = 0;
    for (SeqId s : figure3_top16()) {
      order[next++] = s;
      used[s] = true;
    }
    // Ranks 16..63: a greedy near-covering set of the 9-cube, added as
    // complement pairs. Rationale: the paper's clustering pass replaces
    // ~95% of the rare sequences with a Hamming-distance-1 member of
    // the common set (its post-clustering node-3 share is 0.6%), which
    // is only possible when the frequent sequences are *spread out*
    // over the hypercube (the minimum 1-covering of Q9 has 62 elements,
    // so a well-spread top-64 covers essentially everything). Trained
    // kernels do spread: different output channels favour different
    // motifs. Complements are kept adjacent so the complement-
    // symmetrisation below preserves the segment masses.
    std::array<bool, kNumSequences> covered{};
    auto cover_ball = [&covered](SeqId s) {
      covered[s] = true;
      for (SeqId n : seq_neighbors1(s)) covered[n] = true;
    };
    auto fresh_coverage = [&covered](SeqId s) {
      int fresh = covered[s] ? 0 : 1;
      for (SeqId n : seq_neighbors1(s)) fresh += covered[n] ? 0 : 1;
      return fresh;
    };
    for (SeqId s : figure3_top16()) cover_ball(s);
    std::vector<SeqId> reps;
    for (int s = 0; s < kNumSequences; ++s) {
      const auto seq = static_cast<SeqId>(s);
      const SeqId comp = seq_complement(seq);
      if (seq < comp && !used[seq] && !used[comp]) reps.push_back(seq);
    }
    for (int round = 0; round < 24; ++round) {
      SeqId best = reps.front();
      int best_gain = -1;
      for (SeqId rep : reps) {
        if (used[rep]) continue;
        const int gain =
            fresh_coverage(rep) + fresh_coverage(seq_complement(rep));
        if (gain > best_gain) {
          best_gain = gain;
          best = rep;
        }
      }
      used[best] = true;
      cover_ball(best);
      cover_ball(seq_complement(best));
      order[next++] = best;
      order[next++] = seq_complement(best);
    }
    // Remaining pairs: ordered by distance of their popcount from the
    // extremes (all -1 / all +1 kernels and their near neighbours are
    // the most common in real BNNs, which is what Fig. 3 shows) plus a
    // deterministic jitter - in a trained network rarity is only
    // *correlated* with popcount.
    auto key = [](SeqId s) {
      const int band = std::min(seq_popcount(s), kSeqBits - seq_popcount(s));
      std::uint64_t h = 0x5eedULL + s;
      const double u =
          static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;
      return static_cast<double>(band) + 3.2 * (u - 0.5);
    };
    std::vector<SeqId> rest;
    for (SeqId rep : reps) {
      if (!used[rep]) rest.push_back(rep);
    }
    std::sort(rest.begin(), rest.end(), [&](SeqId a, SeqId b) {
      const double ka = key(a);
      const double kb = key(b);
      if (ka != kb) return ka < kb;
      return a < b;
    });
    for (SeqId rep : rest) {
      order[next++] = rep;
      order[next++] = seq_complement(rep);
    }
    check(next == kNumSequences, "popularity_order: bad construction");
    return order;
  }();
  return kOrder;
}

SequenceDistribution SequenceDistribution::uniform() {
  SequenceDistribution d;
  d.p_.fill(1.0 / kNumSequences);
  return d;
}

SequenceDistribution SequenceDistribution::from_probabilities(
    const std::array<double, kNumSequences>& probabilities) {
  double total = 0.0;
  for (double p : probabilities) {
    check(p >= 0.0, "SequenceDistribution: negative probability");
    total += p;
  }
  check(total > 0.0, "SequenceDistribution: zero mass");
  SequenceDistribution d;
  for (int s = 0; s < kNumSequences; ++s) d.p_[s] = probabilities[s] / total;
  return d;
}

namespace {

/// Average each sequence's probability with its complement's.
void symmetrize(std::array<double, kNumSequences>& p) {
  for (int s = 0; s < kNumSequences; ++s) {
    const auto seq = static_cast<SeqId>(s);
    const SeqId comp = seq_complement(seq);
    if (seq < comp) {
      const double avg = 0.5 * (p[seq] + p[comp]);
      p[seq] = avg;
      p[comp] = avg;
    }
  }
}

}  // namespace

SequenceDistribution SequenceDistribution::zipf_mixture(double exponent,
                                                        double uniform_mix) {
  check(exponent > 0.0, "zipf_mixture: exponent must be positive");
  check(uniform_mix >= 0.0 && uniform_mix <= 1.0,
        "zipf_mixture: uniform_mix must be in [0, 1]");
  const auto& order = popularity_order();
  std::array<double, kNumSequences> zipf{};
  double z = 0.0;
  for (int r = 0; r < kNumSequences; ++r) {
    zipf[r] = std::pow(static_cast<double>(r + 1), -exponent);
    z += zipf[r];
  }
  std::array<double, kNumSequences> p{};
  for (int r = 0; r < kNumSequences; ++r) {
    p[order[r]] = (1.0 - uniform_mix) * zipf[r] / z +
                  uniform_mix / kNumSequences;
  }
  symmetrize(p);
  return from_probabilities(p);
}

namespace {

/// Partial sum of a Zipf curve: sum_{r=1..k} r^-s.
double zipf_partial(double s, int k) {
  double sum = 0.0;
  for (int r = 1; r <= k; ++r) {
    sum += std::pow(static_cast<double>(r), -s);
  }
  return sum;
}

}  // namespace

SequenceDistribution SequenceDistribution::fitted(
    const BlockFrequencyTarget& target, double /*reserved*/) {
  check(target.top64 > 0.0 && target.top64 < 1.0,
        "fitted: top64 must be in (0, 1)");
  check(target.top256 > target.top64 && target.top256 < 1.0,
        "fitted: top256 must be in (top64, 1)");
  const auto& order = popularity_order();

  // Two Zipf segments joined with value-continuity at rank 64:
  //   mass(r) = c  * (r+1)^-s   for ranks 0..63   (head)
  //   mass(r) = c2 * (r+1)^-s2  for ranks 64..255 (body)
  // The head exponent s defaults to 1.08, which lands the Fig. 3
  // interior values (all-zeros/all-ones pair ~12.5% each, top-16 ~46% of
  // a ~64% top-64); c is then pinned by the block's exact top-64 target.
  // The body exponent s2 is bisected so ranks 64..255 carry exactly
  // (top256 - top64); c2 follows from continuity, which keeps the curve
  // monotone so the *observed* ranking of a sampled kernel matches the
  // constructed one up to local noise. Blocks whose body mass is too
  // large for a continuous decaying body (very flat distributions)
  // fall back to a flatter head until the fit is feasible.
  double s = 1.08;
  double c = 0.0;
  double boundary = 0.0;  // mass value at rank 64 (continuity anchor)
  const double body_mass = target.top256 - target.top64;
  for (;;) {
    c = target.top64 / zipf_partial(s, 64);
    boundary = c * std::pow(65.0, -s);
    // Flat body (s2 = 0) is the maximum achievable body mass.
    if (boundary * 192.0 >= body_mass || s < 0.2) break;
    s *= 0.92;
  }
  double lo = 0.0;
  double hi = 6.0;
  for (int iter = 0; iter < 60; ++iter) {
    const double s2 = 0.5 * (lo + hi);
    // Body sum with continuity: c2 * sum_{65..256} r^-s2 where
    // c2 = boundary / 65^-s2.
    const double c2 = boundary / std::pow(65.0, -s2);
    const double sum =
        c2 * (zipf_partial(s2, 256) - zipf_partial(s2, 64));
    (sum > body_mass ? lo : hi) = s2;
  }
  const double s2 = 0.5 * (lo + hi);
  const double c2 = boundary / std::pow(65.0, -s2);

  std::array<double, kNumSequences> rank_mass{};
  for (int r = 0; r < 64; ++r) {
    rank_mass[r] = c * std::pow(static_cast<double>(r + 1), -s);
  }
  for (int r = 64; r < 256; ++r) {
    rank_mass[r] = c2 * std::pow(static_cast<double>(r + 1), -s2);
  }
  // Tail: mild linear decay so the ranking stays strictly ordered.
  double tail_z = 0.0;
  for (int r = 256; r < kNumSequences; ++r) {
    rank_mass[r] = 1.5 - (r - 256.0) / 256.0;  // 1.5 down to ~0.5
    tail_z += rank_mass[r];
  }
  for (int r = 256; r < kNumSequences; ++r) {
    rank_mass[r] *= (1.0 - target.top256) / tail_z;
  }

  std::array<double, kNumSequences> p{};
  for (int r = 0; r < kNumSequences; ++r) p[order[r]] = rank_mass[r];
  symmetrize(p);
  return from_probabilities(p);
}

double SequenceDistribution::probability(SeqId s) const {
  check(s < kNumSequences, "SequenceDistribution: sequence id out of range");
  return p_[s];
}

double SequenceDistribution::top_k_share(std::size_t k) const {
  return bkc::top_k_share(std::span<const double>(p_.data(), p_.size()), k);
}

double SequenceDistribution::entropy_bits() const {
  return bkc::entropy_bits(std::span<const double>(p_.data(), p_.size()));
}

WeightGenerator::WeightGenerator(std::uint64_t seed) : rng_(seed) {}

WeightGenerator WeightGenerator::layout_only() {
  WeightGenerator generator(0);
  generator.layout_only_ = true;
  return generator;
}

PackedKernel WeightGenerator::sample_kernel3x3(
    std::int64_t out_channels, std::int64_t in_channels,
    const SequenceDistribution& dist) {
  check(out_channels > 0 && in_channels > 0,
        "sample_kernel3x3: channels must be positive");
  PackedKernel kernel(
      KernelShape{out_channels, in_channels, kSeqSide, kSeqSide});
  if (layout_only_) return kernel;
  const auto& p = dist.probabilities();
  AliasSampler sampler{std::span<const double>(p.data(), p.size())};
  for (std::int64_t o = 0; o < out_channels; ++o) {
    for (std::int64_t i = 0; i < in_channels; ++i) {
      const auto seq = static_cast<SeqId>(sampler.sample(rng_));
      for (int ky = 0; ky < kSeqSide; ++ky) {
        for (int kx = 0; kx < kSeqSide; ++kx) {
          kernel.set_bit(o, i, ky, kx, seq_bit(seq, ky, kx));
        }
      }
    }
  }
  return kernel;
}

PackedKernel WeightGenerator::sample_kernel(const KernelShape& shape,
                                            double plus_one_density) {
  check(plus_one_density >= 0.0 && plus_one_density <= 1.0,
        "sample_kernel: density must be in [0, 1]");
  PackedKernel kernel(shape);
  if (layout_only_) return kernel;
  for (std::int64_t o = 0; o < shape.out_channels; ++o) {
    for (std::int64_t i = 0; i < shape.in_channels; ++i) {
      for (std::int64_t ky = 0; ky < shape.kernel_h; ++ky) {
        for (std::int64_t kx = 0; kx < shape.kernel_w; ++kx) {
          kernel.set_bit(o, i, ky, kx,
                         rng_.chance(plus_one_density) ? 1 : 0);
        }
      }
    }
  }
  return kernel;
}

WeightTensor WeightGenerator::sample_float_weights(const KernelShape& shape,
                                                   float stddev) {
  WeightTensor weights(shape);
  if (layout_only_) return weights;
  for (float& v : weights.data()) {
    v = static_cast<float>(rng_.normal()) * stddev;
  }
  return weights;
}

std::vector<float> WeightGenerator::sample_floats(std::size_t count,
                                                  float stddev, float mean) {
  std::vector<float> out(count);
  if (layout_only_) return out;
  for (float& v : out) {
    v = mean + static_cast<float>(rng_.normal()) * stddev;
  }
  return out;
}

Tensor WeightGenerator::sample_activation(const FeatureShape& shape) {
  Tensor out(shape);
  constexpr int kWaves = 3;
  for (std::int64_t c = 0; c < shape.channels; ++c) {
    const double bias = rng_.normal() * 0.2;
    double amp[kWaves];
    double fx[kWaves];
    double fy[kWaves];
    double phase[kWaves];
    for (int w = 0; w < kWaves; ++w) {
      amp[w] = 0.3 + 0.7 * rng_.uniform();
      fx[w] = rng_.range(1, 4);
      fy[w] = rng_.range(1, 4);
      phase[w] = rng_.uniform() * 2.0 * std::numbers::pi;
    }
    for (std::int64_t y = 0; y < shape.height; ++y) {
      for (std::int64_t x = 0; x < shape.width; ++x) {
        double v = bias + 0.3 * rng_.normal();
        for (int w = 0; w < kWaves; ++w) {
          const double arg =
              2.0 * std::numbers::pi *
                  (fx[w] * static_cast<double>(x) /
                       static_cast<double>(std::max<std::int64_t>(
                           shape.width, 1)) +
                   fy[w] * static_cast<double>(y) /
                       static_cast<double>(std::max<std::int64_t>(
                           shape.height, 1))) +
              phase[w];
          v += amp[w] * std::sin(arg);
        }
        out.at(c, y, x) = static_cast<float>(v);
      }
    }
  }
  return out;
}

}  // namespace bkc::bnn
