#pragma once
// Bit sequences: the paper's central abstraction (Sec III, Fig 2).
//
// A "bit sequence" is the 9-bit pattern formed by one 3x3 channel of a
// binary kernel under the *natural mapping*: the weight at position
// (0,0) is the most significant bit and the weight at (2,2) the least
// significant, so each channel maps to an integer in [0, 512). A stored
// bit of 1 means weight +1 and a bit of 0 means weight -1 (Eq. 1).

#include <array>
#include <bit>
#include <cstdint>
#include <string>

#include "util/check.h"

namespace bkc::bnn {

/// Side length of the kernels the compression scheme targets.
inline constexpr int kSeqSide = 3;
/// Bits per bit sequence (3x3 channel).
inline constexpr int kSeqBits = kSeqSide * kSeqSide;  // 9
/// Number of distinct bit sequences: 2^9 = 512 (Sec III).
inline constexpr int kNumSequences = 1 << kSeqBits;

/// A bit sequence id under the natural mapping, in [0, kNumSequences).
using SeqId = std::uint16_t;

/// Number of +1 weights in the sequence.
inline int seq_popcount(SeqId s) {
  return std::popcount(static_cast<unsigned>(s));
}

/// Hamming distance between two sequences (number of differing weights).
/// The clustering pass (Sec III-C) only substitutes at distance 1.
inline int hamming_distance(SeqId a, SeqId b) {
  return std::popcount(static_cast<unsigned>(a ^ b));
}

/// The complement sequence (every weight sign flipped). The frequency
/// distributions observed in the paper are nearly complement-symmetric:
/// the Fig. 3 top-16 list is exactly eight complement pairs.
inline SeqId seq_complement(SeqId s) {
  return static_cast<SeqId>(~s & (kNumSequences - 1));
}

/// All sequences at Hamming distance exactly 1 (one per bit position).
inline std::array<SeqId, kSeqBits> seq_neighbors1(SeqId s) {
  std::array<SeqId, kSeqBits> out{};
  for (int b = 0; b < kSeqBits; ++b) {
    out[static_cast<std::size_t>(b)] = static_cast<SeqId>(s ^ (1u << b));
  }
  return out;
}

/// Bit of the sequence at kernel position (ky, kx) under the natural
/// mapping. Returns 1 for weight +1, 0 for weight -1.
inline int seq_bit(SeqId s, int ky, int kx) {
  check(ky >= 0 && ky < kSeqSide && kx >= 0 && kx < kSeqSide,
        "seq_bit: position out of the 3x3 kernel");
  const int shift = kSeqBits - 1 - (ky * kSeqSide + kx);
  return (s >> shift) & 1;
}

/// Build a sequence from a row-major array of 9 bits (1 => +1, 0 => -1),
/// element 0 being position (0,0).
inline SeqId seq_from_bits(const std::array<int, kSeqBits>& bits) {
  SeqId s = 0;
  for (int i = 0; i < kSeqBits; ++i) {
    check(bits[static_cast<std::size_t>(i)] == 0 ||
              bits[static_cast<std::size_t>(i)] == 1,
          "seq_from_bits: bits must be 0 or 1");
    s = static_cast<SeqId>((s << 1) |
                           static_cast<SeqId>(bits[static_cast<std::size_t>(i)]));
  }
  return s;
}

/// Human-readable rendering, rows separated by '/', e.g. "101/110/001".
inline std::string seq_to_string(SeqId s) {
  std::string out;
  for (int ky = 0; ky < kSeqSide; ++ky) {
    if (ky > 0) out.push_back('/');
    for (int kx = 0; kx < kSeqSide; ++kx) {
      out.push_back(seq_bit(s, ky, kx) ? '1' : '0');
    }
  }
  return out;
}

}  // namespace bkc::bnn
