#pragma once
// Model containers and the storage/work accounting behind Table I.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bnn/layers.h"
#include "tensor/tensor.h"

namespace bkc::bnn {

/// One operation instance with resolved shapes - the unit of accounting
/// for Table I and the unit of work for the hwsim timing model.
struct OpRecord {
  std::string name;
  OpClass op_class = OpClass::kOther;
  std::uint64_t storage_bits = 0;
  std::uint64_t macs = 0;
  int precision_bits = 32;
  FeatureShape input_shape;
  FeatureShape output_shape;
  /// Kernel shape for convolution/fc ops; zeros otherwise.
  KernelShape kernel_shape;
  ConvGeometry geometry;
};

/// Aggregated per-class storage and arithmetic (the data behind
/// Table I's storage column; the execution-time column comes from
/// hwsim::perf_model running over the same OpRecords).
struct StorageBreakdown {
  std::map<OpClass, std::uint64_t> bits_by_class;
  std::map<OpClass, std::uint64_t> macs_by_class;
  std::uint64_t total_bits = 0;
  std::uint64_t total_macs = 0;

  void add(const OpRecord& op);
  double bits_fraction(OpClass op) const;
  double macs_fraction(OpClass op) const;
};

StorageBreakdown summarize(const std::vector<OpRecord>& ops);

/// A simple layer pipeline with no branches. ReActNet's residual blocks
/// are modelled by the dedicated classes in reactnet.h; Sequential is
/// used for small test/example models and for the stem/classifier.
class Sequential {
 public:
  Sequential() = default;

  /// Append a layer; returns a non-owning typed handle.
  template <typename L, typename... Args>
  L* emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L* raw = layer.get();
    layers_.push_back(std::move(layer));
    return raw;
  }

  Tensor forward(const Tensor& input) const;

  /// Zero-allocation counterpart of forward(): runs every layer
  /// through forward_into over ping-pong buffers carved from the
  /// workspace arena (sized by ws.plan().activation_floats — build the
  /// workspace from plan_sequential_forward over this model's
  /// op_records). Resets the arena on entry. Bit-identical to
  /// forward(), including the one structural difference: a
  /// SignActivation directly feeding a BinaryConv2d is skipped, since
  /// packing binarizes with the same bit = v >= 0 rule — the
  /// redundant sign tensor is never materialized.
  void forward_into(ConstTensorView input, TensorView output,
                    Workspace& workspace) const;

  std::size_t size() const { return layers_.size(); }
  const Layer& layer(std::size_t i) const;

  /// Resolve shapes through the pipeline starting from `input_shape`.
  std::vector<OpRecord> op_records(const FeatureShape& input_shape) const;

  FeatureShape output_shape(const FeatureShape& input_shape) const;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Convert a LayerInfo at a given input shape into an OpRecord.
OpRecord make_record(const LayerInfo& info, const FeatureShape& input_shape,
                     const KernelShape& kernel_shape = {},
                     ConvGeometry geometry = {});

}  // namespace bkc::bnn
