#pragma once
// Per-model activation MemoryPlan + per-thread Workspace arenas: the
// substrate of the zero-allocation forward path.
//
// The legacy Layer::forward interface returns a fresh heap Tensor per
// layer, so one classify performs dozens of allocations. The planned
// path replaces that with exactly one up-front sizing pass: a
// MemoryPlan is computed once from the model's op-record walk (the same
// records that feed Table I and the timing model), and every subsequent
// forward_into call runs inside a Workspace whose bump Arena was sized
// to the plan. Steady state performs zero heap allocations — a contract
// tests pin with a global operator-new counter, and which the plan
// itself makes checkable: a planned forward pass must drive the arena
// high-water mark to *exactly* arena_bytes(), so any drift between the
// plan arithmetic and the forward path's allocation order is caught as
// an equality failure (oversized plan) or a CheckError overflow
// (undersized plan).
//
// Layout of a planned forward pass:
//   * two ping-pong activation buffers of activation_floats each —
//     layer L reads one and writes the other, so no layer output ever
//     needs its own allocation;
//   * block-local scratch (the 3x3 conv output inside a ReActNet basic
//     block, the stride-2 pooled shortcut, the int8 stem/classifier
//     quantization buffer), released LIFO via Arena::mark/rewind, sized
//     by the worst single consumer (scratch_bytes);
//   * one PackedFeature reused as pack scratch by every binary conv,
//     kept outside the arena because its word storage persists across
//     layers (pack_words sizes its reservation).
//
// Workspaces are not thread-safe and are never shared: concurrent
// callers lease one each from a WorkspacePool (Engine holds one pool;
// classify_batch workers and the serve BatchScheduler ride it).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "bnn/bitpack.h"
#include "bnn/model.h"
#include "tensor/tensor.h"
#include "util/arena.h"

namespace bkc::bnn {

/// Sizing summary of one model's forward pass. Computed once from op
/// records; pure data, so it can be copied into every workspace.
struct MemoryPlan {
  /// Floats in EACH of the two ping-pong activation buffers: the
  /// largest input/output activation of any op.
  std::int64_t activation_floats = 0;
  /// Peak block-local scratch beyond the ping-pong buffers, already
  /// rounded to Arena allocation granules.
  std::int64_t scratch_bytes = 0;
  /// Word storage for the largest packed input of any binary conv.
  std::int64_t pack_words = 0;

  /// Exact arena capacity a planned forward pass needs — and exactly
  /// the high-water mark it must produce.
  std::size_t arena_bytes() const;

  /// True when a workspace built from this plan can run a model whose
  /// plan is `other` (every field >=).
  bool covers(const MemoryPlan& other) const;
};

/// Plan for ReActNet::forward_into's allocation order: ping-pong
/// activations across stem/blocks/pool/classifier, per-block scratch
/// for the 3x3 conv output (+ stride-2 pooled shortcut), int8
/// quantization scratch for the stem and classifier.
MemoryPlan plan_reactnet_forward(const std::vector<OpRecord>& records);

/// Plan for Sequential::forward_into: ping-pong activations, int8
/// quantization scratch; binary convs pack into the workspace's shared
/// pack scratch, and the sign→conv fusion never materializes the sign.
MemoryPlan plan_sequential_forward(const std::vector<OpRecord>& records);

/// One thread's working memory for planned forward passes: the arena
/// plus the reusable pack scratch. Construction performs all heap
/// allocation the workspace will ever do; forward passes only bump,
/// rewind and reset. Move-only, single-owner (not thread-safe).
class Workspace {
 public:
  explicit Workspace(const MemoryPlan& plan);

  Workspace(Workspace&&) noexcept = default;
  Workspace& operator=(Workspace&&) noexcept = default;

  const MemoryPlan& plan() const { return plan_; }
  Arena& arena() { return arena_; }

  /// The shared PackedFeature every binary conv packs into (via
  /// pack_feature_into, which reshapes it without allocating as long
  /// as the plan's pack_words reservation covers the conv).
  PackedFeature& pack_scratch() { return packed_; }

  /// True when this workspace can run a model requiring `required`.
  bool covers(const MemoryPlan& required) const {
    return plan_.covers(required);
  }

 private:
  MemoryPlan plan_;
  Arena arena_;
  PackedFeature packed_;
};

/// Thread-safe free-list of workspaces sharing one plan. Workers lease
/// a workspace for the duration of a chunk of images and return it on
/// scope exit; the pool grows to the peak concurrency ever seen and
/// then stops allocating (the steady state reuses pooled workspaces).
class WorkspacePool {
 public:
  explicit WorkspacePool(const MemoryPlan& plan) : plan_(plan) {}

  /// RAII lease: returns the workspace to the pool on destruction.
  class Lease {
   public:
    Lease(WorkspacePool* pool, std::unique_ptr<Workspace> workspace)
        : pool_(pool), workspace_(std::move(workspace)) {}
    ~Lease() {
      if (pool_ != nullptr) pool_->release(std::move(workspace_));
    }
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), workspace_(std::move(other.workspace_)) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    Workspace& workspace() { return *workspace_; }

   private:
    WorkspacePool* pool_;
    std::unique_ptr<Workspace> workspace_;
  };

  /// A pooled workspace, or a freshly built one when all are leased.
  Lease acquire();

  const MemoryPlan& plan() const { return plan_; }

  /// Workspaces currently parked in the pool (tests use this to see
  /// reuse happening).
  std::size_t idle_count() const;

 private:
  void release(std::unique_ptr<Workspace> workspace);

  MemoryPlan plan_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Workspace>> idle_;
};

}  // namespace bkc::bnn
