#pragma once
// Neural network layers used by ReActNet (Fig. 1 of the paper).
//
// The binary fast path (BinaryConv2d) runs on the channel-packed layout;
// everything else (batch norm, RPReLU, int8 stem/classifier) runs in
// full precision exactly as the paper describes: "batch-norm and Prelu
// activation functions ... are computed using full-precision", while the
// input and output layers are quantized to 8 bits (Sec II-B).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bnn/bconv.h"
#include "bnn/bitpack.h"
#include "tensor/tensor.h"

namespace bkc::bnn {

class Workspace;  // bnn/memory_plan.h

/// Operation classes used for the Table I storage / execution-time
/// breakdown.
enum class OpClass {
  kInputLayer,   ///< 8-bit quantized stem convolution
  kOutputLayer,  ///< 8-bit quantized fully-connected classifier
  kConv1x1,      ///< 1-bit 1x1 convolutions
  kConv3x3,      ///< 1-bit 3x3 convolutions (the compression target)
  kOther,        ///< activation / normalization layers etc.
};

/// Printable name matching the paper's Table I rows.
std::string op_class_name(OpClass op);

/// Static description of a layer instance: storage, arithmetic work and
/// output shape for a given input shape. This feeds both the Table I
/// accounting and the hwsim trace generator.
struct LayerInfo {
  std::string name;
  OpClass op_class = OpClass::kOther;
  std::uint64_t storage_bits = 0;  ///< parameter storage
  std::uint64_t macs = 0;          ///< multiply-accumulate (or equivalent) ops
  int precision_bits = 32;         ///< operand precision (1, 8 or 32)
  FeatureShape output_shape;
};

/// Abstract layer: stateless forward over CHW float tensors. Binary
/// layers binarize internally; the float interface keeps the residual
/// topology of ReActNet straightforward.
class Layer {
 public:
  virtual ~Layer() = default;
  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;
  Layer(Layer&&) = default;
  Layer& operator=(Layer&&) = default;

  virtual Tensor forward(const Tensor& input) const = 0;

  /// Write forward(input) into `output` (whose shape must match this
  /// layer's output shape for input's shape), drawing any temporary
  /// storage from `workspace` — the allocation-free counterpart of
  /// forward(), bit-identical to it by contract. `output` must not
  /// alias `input` unless a layer documents in-place support
  /// (BatchNorm, RPReLU and SignActivation are alias-safe; the block
  /// orchestration relies on that). The default implementation bridges
  /// through forward() with a copy so layers outside this file keep
  /// working unchanged (at legacy allocation cost).
  virtual void forward_into(ConstTensorView input, TensorView output,
                            Workspace& workspace) const;

  /// This layer's output shape for an input of `input_shape`, without
  /// materializing a LayerInfo (info() builds a name string, which the
  /// zero-allocation orchestrators cannot afford per call). The default
  /// falls back to info(); every layer in this file overrides it with
  /// pure shape arithmetic.
  virtual FeatureShape output_shape(const FeatureShape& input_shape) const;

  virtual LayerInfo info(const FeatureShape& input_shape) const = 0;
  virtual std::string name() const = 0;
};

/// Sign activation (Eq. 1): maps every element to +/-1.
class SignActivation final : public Layer {
 public:
  Tensor forward(const Tensor& input) const override;
  void forward_into(ConstTensorView input, TensorView output,
                    Workspace& workspace) const override;  // alias-safe
  FeatureShape output_shape(const FeatureShape& input_shape) const override {
    return input_shape;
  }
  LayerInfo info(const FeatureShape& input_shape) const override;
  std::string name() const override { return "sign"; }
};

/// 1-bit convolution (Eq. 2). Holds the channel-packed kernel; forward
/// binarizes + packs its input (the sign that precedes each binary conv
/// in ReActNet) and runs the xnor/popcount engine.
class BinaryConv2d final : public Layer {
 public:
  BinaryConv2d(std::string name, PackedKernel kernel, ConvGeometry geometry);

  Tensor forward(const Tensor& input) const override;
  /// Packs the input into the workspace's shared pack scratch (caller-
  /// provided storage, no per-call pack allocation), then convolves
  /// into `output`.
  void forward_into(ConstTensorView input, TensorView output,
                    Workspace& workspace) const override;
  FeatureShape output_shape(const FeatureShape& input_shape) const override {
    return geometry_.output_shape(input_shape, kernel_.shape());
  }
  LayerInfo info(const FeatureShape& input_shape) const override;
  std::string name() const override { return name_; }

  const PackedKernel& kernel() const { return kernel_; }
  /// Replace the kernel (used by the compression pipeline to install
  /// clustered weights). The shape must not change.
  void set_kernel(PackedKernel kernel);
  const ConvGeometry& geometry() const { return geometry_; }

 private:
  std::string name_;
  PackedKernel kernel_;
  ConvGeometry geometry_;
};

/// 8-bit quantized convolution for the input layer. Weights are stored
/// as int8 with a single symmetric scale; activations are quantized
/// dynamically per call.
class Int8Conv2d final : public Layer {
 public:
  /// Quantizes `weights` symmetrically to int8.
  Int8Conv2d(std::string name, const WeightTensor& weights,
             std::vector<float> bias, ConvGeometry geometry,
             OpClass op_class = OpClass::kInputLayer);

  Tensor forward(const Tensor& input) const override;
  void forward_into(ConstTensorView input, TensorView output,
                    Workspace& workspace) const override;
  FeatureShape output_shape(const FeatureShape& input_shape) const override {
    return geometry_.output_shape(input_shape, shape_);
  }
  LayerInfo info(const FeatureShape& input_shape) const override;
  std::string name() const override { return name_; }

 private:
  /// Shared body of both entry points: quantize into `q_input`
  /// (caller-provided — a heap vector on the legacy path, arena
  /// scratch on the planned path) and convolve into `output`. One
  /// implementation keeps the two paths bit-identical by construction.
  void forward_impl(ConstTensorView input, TensorView output,
                    std::span<std::int8_t> q_input) const;

  std::string name_;
  KernelShape shape_;
  std::vector<std::int8_t> weights_;
  std::vector<float> bias_;
  float weight_scale_ = 1.0f;
  ConvGeometry geometry_;
  OpClass op_class_;
};

/// 8-bit quantized fully-connected classifier (the output layer).
/// Expects a Cx1x1 input.
class Int8Linear final : public Layer {
 public:
  /// weights laid out [out][in]; quantized symmetrically to int8.
  Int8Linear(std::string name, std::int64_t in_features,
             std::int64_t out_features, std::vector<float> weights,
             std::vector<float> bias);

  Tensor forward(const Tensor& input) const override;
  void forward_into(ConstTensorView input, TensorView output,
                    Workspace& workspace) const override;
  FeatureShape output_shape(const FeatureShape& input_shape) const override;
  LayerInfo info(const FeatureShape& input_shape) const override;
  std::string name() const override { return name_; }

  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }

 private:
  void forward_impl(ConstTensorView input, TensorView output,
                    std::span<std::int8_t> q_input) const;

  std::string name_;
  std::int64_t in_features_;
  std::int64_t out_features_;
  std::vector<std::int8_t> weights_;
  std::vector<float> bias_;
  float weight_scale_ = 1.0f;
};

/// Inference-folded batch normalization: y = scale_c * x + bias_c.
class BatchNorm final : public Layer {
 public:
  BatchNorm(std::string name, std::vector<float> scale,
            std::vector<float> bias);

  Tensor forward(const Tensor& input) const override;
  void forward_into(ConstTensorView input, TensorView output,
                    Workspace& workspace) const override;  // alias-safe
  FeatureShape output_shape(const FeatureShape& input_shape) const override {
    return input_shape;
  }
  LayerInfo info(const FeatureShape& input_shape) const override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::vector<float> scale_;
  std::vector<float> bias_;
};

/// ReActNet's RPReLU activation: a PReLU whose input and output are
/// shifted by learnable per-channel biases:
///   y = PReLU(x - shift_in_c) + shift_out_c
/// with PReLU(v) = v > 0 ? v : slope_c * v. (Sec II-B: "the Prelu
/// activation is biased by shifting and reshaping its input".)
class RPReLU final : public Layer {
 public:
  RPReLU(std::string name, std::vector<float> shift_in,
         std::vector<float> slope, std::vector<float> shift_out);

  Tensor forward(const Tensor& input) const override;
  void forward_into(ConstTensorView input, TensorView output,
                    Workspace& workspace) const override;  // alias-safe
  FeatureShape output_shape(const FeatureShape& input_shape) const override {
    return input_shape;
  }
  LayerInfo info(const FeatureShape& input_shape) const override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::vector<float> shift_in_;
  std::vector<float> slope_;
  std::vector<float> shift_out_;
};

/// 2x2 stride-2 average pooling (ReActNet's downsampling shortcut).
class AvgPool2x2 final : public Layer {
 public:
  Tensor forward(const Tensor& input) const override;
  void forward_into(ConstTensorView input, TensorView output,
                    Workspace& workspace) const override;
  FeatureShape output_shape(const FeatureShape& input_shape) const override {
    return {input_shape.channels, input_shape.height / 2,
            input_shape.width / 2};
  }
  LayerInfo info(const FeatureShape& input_shape) const override;
  std::string name() const override { return "avgpool2x2"; }
};

/// Global average pooling to Cx1x1 (before the classifier).
class GlobalAvgPool final : public Layer {
 public:
  Tensor forward(const Tensor& input) const override;
  void forward_into(ConstTensorView input, TensorView output,
                    Workspace& workspace) const override;
  FeatureShape output_shape(const FeatureShape& input_shape) const override {
    return {input_shape.channels, 1, 1};
  }
  LayerInfo info(const FeatureShape& input_shape) const override;
  std::string name() const override { return "global_avgpool"; }
};

/// Element-wise sum of two equally-shaped tensors (residual connection).
Tensor residual_add(const Tensor& a, const Tensor& b);

/// residual_add writing into caller-provided storage; `out` may alias
/// `a` (the in-place residual the block orchestration uses).
void residual_add_into(ConstTensorView a, ConstTensorView b, TensorView out);

/// Channel-wise concatenation of two tensors with equal spatial dims.
Tensor concat_channels(const Tensor& a, const Tensor& b);

/// concat_channels writing into caller-provided storage (no aliasing).
/// The planned ReActNet path avoids even this copy by pointing the two
/// 1x1 convs straight at out.channels(...) halves; this exists for
/// orchestrations that already hold `a` and `b` elsewhere.
void concat_channels_into(ConstTensorView a, ConstTensorView b,
                          TensorView out);

}  // namespace bkc::bnn
