#include "bnn/layers.h"

#include <algorithm>
#include <cmath>

#include "bnn/binarize.h"
#include "bnn/memory_plan.h"
#include "util/check.h"

namespace bkc::bnn {

// ------------------------------------------------------------ Layer base

void Layer::forward_into(ConstTensorView input, TensorView output,
                         Workspace& workspace) const {
  // Compatibility bridge for layers that only implement forward():
  // materialize, run the allocating path, copy out. Every layer in
  // this file overrides with a true zero-allocation implementation.
  (void)workspace;
  const Tensor result = forward(materialize(input));
  check(result.shape() == output.shape(),
        "Layer::forward_into: output view shape does not match the "
        "forward() result");
  copy_into(result, output);
}

FeatureShape Layer::output_shape(const FeatureShape& input_shape) const {
  return info(input_shape).output_shape;
}

std::string op_class_name(OpClass op) {
  switch (op) {
    case OpClass::kInputLayer:
      return "Input Layer";
    case OpClass::kOutputLayer:
      return "Output Layer";
    case OpClass::kConv1x1:
      return "Conv 1x1";
    case OpClass::kConv3x3:
      return "Conv 3x3";
    case OpClass::kOther:
      return "Others";
  }
  unreachable("op_class_name: bad enum");
}

// ---------------------------------------------------------------- Sign

Tensor SignActivation::forward(const Tensor& input) const {
  return binarize(input);
}

void SignActivation::forward_into(ConstTensorView input, TensorView output,
                                  Workspace& workspace) const {
  (void)workspace;
  check(output.shape() == input.shape(),
        "SignActivation::forward_into: shape mismatch");
  const float* in = input.data().data();
  float* out = output.data().data();
  const std::int64_t n = input.size();
  for (std::int64_t i = 0; i < n; ++i) out[i] = sign_binarize(in[i]);
}

LayerInfo SignActivation::info(const FeatureShape& input_shape) const {
  return {.name = name(),
          .op_class = OpClass::kOther,
          .storage_bits = 0,
          .macs = static_cast<std::uint64_t>(input_shape.size()),
          .precision_bits = 32,
          .output_shape = input_shape};
}

// ---------------------------------------------------------- BinaryConv2d

BinaryConv2d::BinaryConv2d(std::string name, PackedKernel kernel,
                           ConvGeometry geometry)
    : name_(std::move(name)), kernel_(std::move(kernel)), geometry_(geometry) {}

Tensor BinaryConv2d::forward(const Tensor& input) const {
  return binary_conv2d(input, kernel_, geometry_);
}

void BinaryConv2d::forward_into(ConstTensorView input, TensorView output,
                                Workspace& workspace) const {
  // The pack scratch is the workspace's shared PackedFeature: reshape
  // reuses its reserved word storage, so packing allocates nothing.
  // pack_feature_into binarizes with the same bit = v >= 0 rule as the
  // legacy binarize + pack two-step, which is also why a preceding
  // SignActivation can be skipped entirely (Sequential::forward_into
  // does): sign(v) >= 0 exactly when v >= 0.
  PackedFeature& packed = workspace.pack_scratch();
  pack_feature_into(input, packed);
  binary_conv2d_into(packed, kernel_, geometry_, output);
}

LayerInfo BinaryConv2d::info(const FeatureShape& input_shape) const {
  const auto& k = kernel_.shape();
  const FeatureShape out = geometry_.output_shape(input_shape, k);
  const bool is_3x3 = k.kernel_h == 3 && k.kernel_w == 3;
  const bool is_1x1 = k.kernel_h == 1 && k.kernel_w == 1;
  return {.name = name_,
          .op_class = is_3x3   ? OpClass::kConv3x3
                      : is_1x1 ? OpClass::kConv1x1
                               : OpClass::kOther,
          .storage_bits = static_cast<std::uint64_t>(k.size()),
          .macs = static_cast<std::uint64_t>(out.size() *
                                             k.receptive_size()),
          .precision_bits = 1,
          .output_shape = out};
}

void BinaryConv2d::set_kernel(PackedKernel kernel) {
  check(kernel.shape() == kernel_.shape(),
        "BinaryConv2d::set_kernel: shape must not change");
  kernel_ = std::move(kernel);
}

// ------------------------------------------------------------ Int8Conv2d

namespace {

/// Symmetric scale so that max |w| maps to 127.
float symmetric_scale(std::span<const float> values) {
  float max_abs = 0.0f;
  for (float v : values) max_abs = std::max(max_abs, std::abs(v));
  return max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
}

std::int8_t quantize_value(float v, float scale) {
  const float q = std::round(v / scale);
  return static_cast<std::int8_t>(std::clamp(q, -127.0f, 127.0f));
}

}  // namespace

Int8Conv2d::Int8Conv2d(std::string name, const WeightTensor& weights,
                       std::vector<float> bias, ConvGeometry geometry,
                       OpClass op_class)
    : name_(std::move(name)),
      shape_(weights.shape()),
      bias_(std::move(bias)),
      geometry_(geometry),
      op_class_(op_class) {
  check(static_cast<std::int64_t>(bias_.size()) == shape_.out_channels,
        "Int8Conv2d: bias size must equal out_channels");
  weight_scale_ = symmetric_scale(weights.data());
  weights_.reserve(static_cast<std::size_t>(weights.size()));
  for (float v : weights.data()) {
    weights_.push_back(quantize_value(v, weight_scale_));
  }
}

Tensor Int8Conv2d::forward(const Tensor& input) const {
  const FeatureShape out_shape =
      geometry_.output_shape(input.shape(), shape_);
  std::vector<std::int8_t> q_input(input.data().size());
  Tensor out(out_shape);
  forward_impl(input, out, q_input);
  return out;
}

void Int8Conv2d::forward_into(ConstTensorView input, TensorView output,
                              Workspace& workspace) const {
  // Quantization scratch comes from the arena and is released LIFO
  // before returning, so consecutive int8 layers reuse the same bytes.
  Arena& arena = workspace.arena();
  const std::size_t mark = arena.mark();
  forward_impl(input, output,
               arena.allocate_span<std::int8_t>(input.size()));
  arena.rewind(mark);
}

void Int8Conv2d::forward_impl(ConstTensorView input, TensorView out,
                              std::span<std::int8_t> q_input) const {
  const FeatureShape in_shape = input.shape();
  check(in_shape.channels == shape_.in_channels,
        "Int8Conv2d: input channel mismatch");
  const FeatureShape out_shape = geometry_.output_shape(in_shape, shape_);
  check(out.shape() == out_shape,
        "Int8Conv2d: output view shape mismatch");
  check(q_input.size() == input.data().size(),
        "Int8Conv2d: quantization scratch size mismatch");

  // Dynamic symmetric activation quantization (padding quantizes to 0).
  const float in_scale = symmetric_scale(input.data());
  for (std::size_t i = 0; i < q_input.size(); ++i) {
    q_input[i] = quantize_value(input.data()[i], in_scale);
  }
  auto q_at = [&](std::int64_t c, std::int64_t y, std::int64_t x) -> int {
    if (y < 0 || y >= in_shape.height || x < 0 || x >= in_shape.width) {
      return 0;
    }
    return q_input[static_cast<std::size_t>(
        (c * in_shape.height + y) * in_shape.width + x)];
  };
  auto w_at = [&](std::int64_t o, std::int64_t i, std::int64_t ky,
                  std::int64_t kx) -> int {
    return weights_[static_cast<std::size_t>(
        ((o * shape_.in_channels + i) * shape_.kernel_h + ky) *
            shape_.kernel_w +
        kx)];
  };

  const float dequant = weight_scale_ * in_scale;
  for (std::int64_t o = 0; o < out_shape.channels; ++o) {
    for (std::int64_t oy = 0; oy < out_shape.height; ++oy) {
      for (std::int64_t ox = 0; ox < out_shape.width; ++ox) {
        std::int64_t acc = 0;
        const std::int64_t base_y = oy * geometry_.stride - geometry_.padding;
        const std::int64_t base_x = ox * geometry_.stride - geometry_.padding;
        for (std::int64_t i = 0; i < shape_.in_channels; ++i) {
          for (std::int64_t ky = 0; ky < shape_.kernel_h; ++ky) {
            for (std::int64_t kx = 0; kx < shape_.kernel_w; ++kx) {
              acc += static_cast<std::int64_t>(
                         q_at(i, base_y + ky, base_x + kx)) *
                     w_at(o, i, ky, kx);
            }
          }
        }
        out.at(o, oy, ox) = static_cast<float>(acc) * dequant +
                            bias_[static_cast<std::size_t>(o)];
      }
    }
  }
}

LayerInfo Int8Conv2d::info(const FeatureShape& input_shape) const {
  const FeatureShape out = geometry_.output_shape(input_shape, shape_);
  return {.name = name_,
          .op_class = op_class_,
          .storage_bits = static_cast<std::uint64_t>(shape_.size()) * 8 +
                          static_cast<std::uint64_t>(bias_.size()) * 32,
          .macs = static_cast<std::uint64_t>(out.size() *
                                             shape_.receptive_size()),
          .precision_bits = 8,
          .output_shape = out};
}

// ------------------------------------------------------------ Int8Linear

Int8Linear::Int8Linear(std::string name, std::int64_t in_features,
                       std::int64_t out_features, std::vector<float> weights,
                       std::vector<float> bias)
    : name_(std::move(name)),
      in_features_(in_features),
      out_features_(out_features),
      bias_(std::move(bias)) {
  check(static_cast<std::int64_t>(weights.size()) ==
            in_features * out_features,
        "Int8Linear: weight size must be in*out");
  check(static_cast<std::int64_t>(bias_.size()) == out_features,
        "Int8Linear: bias size must equal out_features");
  weight_scale_ = symmetric_scale(weights);
  weights_.reserve(weights.size());
  for (float v : weights) weights_.push_back(quantize_value(v, weight_scale_));
}

Tensor Int8Linear::forward(const Tensor& input) const {
  std::vector<std::int8_t> q_input(input.data().size());
  Tensor out(FeatureShape{out_features_, 1, 1});
  forward_impl(input, out, q_input);
  return out;
}

void Int8Linear::forward_into(ConstTensorView input, TensorView output,
                              Workspace& workspace) const {
  Arena& arena = workspace.arena();
  const std::size_t mark = arena.mark();
  forward_impl(input, output,
               arena.allocate_span<std::int8_t>(input.size()));
  arena.rewind(mark);
}

FeatureShape Int8Linear::output_shape(const FeatureShape& input_shape) const {
  check(input_shape.channels == in_features_ && input_shape.height == 1 &&
            input_shape.width == 1,
        "Int8Linear expects a Cx1x1 input");
  return {out_features_, 1, 1};
}

void Int8Linear::forward_impl(ConstTensorView input, TensorView out,
                              std::span<std::int8_t> q_input) const {
  const FeatureShape in_shape = input.shape();
  check(in_shape.channels == in_features_ && in_shape.height == 1 &&
            in_shape.width == 1,
        "Int8Linear expects a Cx1x1 input");
  check(out.shape() == FeatureShape{out_features_, 1, 1},
        "Int8Linear: output view shape mismatch");
  check(q_input.size() == input.data().size(),
        "Int8Linear: quantization scratch size mismatch");
  const float in_scale = symmetric_scale(input.data());
  for (std::size_t i = 0; i < q_input.size(); ++i) {
    q_input[i] = quantize_value(input.data()[i], in_scale);
  }
  const float dequant = weight_scale_ * in_scale;
  for (std::int64_t o = 0; o < out_features_; ++o) {
    std::int64_t acc = 0;
    const std::size_t row = static_cast<std::size_t>(o * in_features_);
    for (std::int64_t i = 0; i < in_features_; ++i) {
      acc += static_cast<std::int64_t>(
                 weights_[row + static_cast<std::size_t>(i)]) *
             q_input[static_cast<std::size_t>(i)];
    }
    out.at(o, 0, 0) = static_cast<float>(acc) * dequant +
                      bias_[static_cast<std::size_t>(o)];
  }
}

LayerInfo Int8Linear::info(const FeatureShape& input_shape) const {
  check(input_shape.channels == in_features_,
        "Int8Linear::info: channel mismatch");
  return {.name = name_,
          .op_class = OpClass::kOutputLayer,
          .storage_bits =
              static_cast<std::uint64_t>(in_features_ * out_features_) * 8 +
              static_cast<std::uint64_t>(out_features_) * 32,
          .macs = static_cast<std::uint64_t>(in_features_ * out_features_),
          .precision_bits = 8,
          .output_shape = {out_features_, 1, 1}};
}

// -------------------------------------------------------------- BatchNorm

BatchNorm::BatchNorm(std::string name, std::vector<float> scale,
                     std::vector<float> bias)
    : name_(std::move(name)), scale_(std::move(scale)), bias_(std::move(bias)) {
  check(scale_.size() == bias_.size(),
        "BatchNorm: scale/bias size mismatch");
  check(!scale_.empty(), "BatchNorm: empty parameters");
}

Tensor BatchNorm::forward(const Tensor& input) const {
  const auto& s = input.shape();
  check(s.channels == static_cast<std::int64_t>(scale_.size()),
        "BatchNorm: channel mismatch");
  Tensor out = input;
  for (std::int64_t c = 0; c < s.channels; ++c) {
    const float scale = scale_[static_cast<std::size_t>(c)];
    const float bias = bias_[static_cast<std::size_t>(c)];
    for (std::int64_t y = 0; y < s.height; ++y) {
      for (std::int64_t x = 0; x < s.width; ++x) {
        out.at(c, y, x) = out.at(c, y, x) * scale + bias;
      }
    }
  }
  return out;
}

void BatchNorm::forward_into(ConstTensorView input, TensorView output,
                             Workspace& workspace) const {
  (void)workspace;
  const FeatureShape& s = input.shape();
  check(s.channels == static_cast<std::int64_t>(scale_.size()),
        "BatchNorm: channel mismatch");
  check(output.shape() == s, "BatchNorm::forward_into: shape mismatch");
  const float* in = input.data().data();
  float* out = output.data().data();
  const std::int64_t plane = s.height * s.width;
  // Same per-element expression as forward() (v * scale + bias, one
  // channel at a time), so results are bit-identical; element order
  // makes exact aliasing (in == out) safe.
  for (std::int64_t c = 0; c < s.channels; ++c) {
    const float scale = scale_[static_cast<std::size_t>(c)];
    const float bias = bias_[static_cast<std::size_t>(c)];
    const float* ip = in + c * plane;
    float* op = out + c * plane;
    for (std::int64_t i = 0; i < plane; ++i) op[i] = ip[i] * scale + bias;
  }
}

LayerInfo BatchNorm::info(const FeatureShape& input_shape) const {
  return {.name = name_,
          .op_class = OpClass::kOther,
          .storage_bits = static_cast<std::uint64_t>(scale_.size()) * 2 * 32,
          .macs = static_cast<std::uint64_t>(input_shape.size()),
          .precision_bits = 32,
          .output_shape = input_shape};
}

// ---------------------------------------------------------------- RPReLU

RPReLU::RPReLU(std::string name, std::vector<float> shift_in,
               std::vector<float> slope, std::vector<float> shift_out)
    : name_(std::move(name)),
      shift_in_(std::move(shift_in)),
      slope_(std::move(slope)),
      shift_out_(std::move(shift_out)) {
  check(shift_in_.size() == slope_.size() &&
            slope_.size() == shift_out_.size(),
        "RPReLU: parameter size mismatch");
  check(!slope_.empty(), "RPReLU: empty parameters");
}

Tensor RPReLU::forward(const Tensor& input) const {
  const auto& s = input.shape();
  check(s.channels == static_cast<std::int64_t>(slope_.size()),
        "RPReLU: channel mismatch");
  Tensor out = input;
  for (std::int64_t c = 0; c < s.channels; ++c) {
    const auto ci = static_cast<std::size_t>(c);
    for (std::int64_t y = 0; y < s.height; ++y) {
      for (std::int64_t x = 0; x < s.width; ++x) {
        const float v = out.at(c, y, x) - shift_in_[ci];
        out.at(c, y, x) =
            (v > 0.0f ? v : slope_[ci] * v) + shift_out_[ci];
      }
    }
  }
  return out;
}

void RPReLU::forward_into(ConstTensorView input, TensorView output,
                          Workspace& workspace) const {
  (void)workspace;
  const FeatureShape& s = input.shape();
  check(s.channels == static_cast<std::int64_t>(slope_.size()),
        "RPReLU: channel mismatch");
  check(output.shape() == s, "RPReLU::forward_into: shape mismatch");
  const float* in = input.data().data();
  float* out = output.data().data();
  const std::int64_t plane = s.height * s.width;
  for (std::int64_t c = 0; c < s.channels; ++c) {
    const auto ci = static_cast<std::size_t>(c);
    const float shift_in = shift_in_[ci];
    const float slope = slope_[ci];
    const float shift_out = shift_out_[ci];
    const float* ip = in + c * plane;
    float* op = out + c * plane;
    for (std::int64_t i = 0; i < plane; ++i) {
      const float v = ip[i] - shift_in;
      op[i] = (v > 0.0f ? v : slope * v) + shift_out;
    }
  }
}

LayerInfo RPReLU::info(const FeatureShape& input_shape) const {
  return {.name = name_,
          .op_class = OpClass::kOther,
          .storage_bits = static_cast<std::uint64_t>(slope_.size()) * 3 * 32,
          .macs = static_cast<std::uint64_t>(input_shape.size()),
          .precision_bits = 32,
          .output_shape = input_shape};
}

// --------------------------------------------------------------- pooling

Tensor AvgPool2x2::forward(const Tensor& input) const {
  const auto& s = input.shape();
  check(s.height % 2 == 0 && s.width % 2 == 0,
        "AvgPool2x2 expects even spatial dims");
  Tensor out(FeatureShape{s.channels, s.height / 2, s.width / 2});
  for (std::int64_t c = 0; c < s.channels; ++c) {
    for (std::int64_t y = 0; y < s.height / 2; ++y) {
      for (std::int64_t x = 0; x < s.width / 2; ++x) {
        out.at(c, y, x) = 0.25f * (input.at(c, 2 * y, 2 * x) +
                                   input.at(c, 2 * y, 2 * x + 1) +
                                   input.at(c, 2 * y + 1, 2 * x) +
                                   input.at(c, 2 * y + 1, 2 * x + 1));
      }
    }
  }
  return out;
}

void AvgPool2x2::forward_into(ConstTensorView input, TensorView output,
                              Workspace& workspace) const {
  (void)workspace;
  const FeatureShape& s = input.shape();
  check(s.height % 2 == 0 && s.width % 2 == 0,
        "AvgPool2x2 expects even spatial dims");
  check(output.shape() ==
            FeatureShape{s.channels, s.height / 2, s.width / 2},
        "AvgPool2x2::forward_into: shape mismatch");
  const float* in = input.data().data();
  float* out = output.data().data();
  const std::int64_t oh = s.height / 2;
  const std::int64_t ow = s.width / 2;
  for (std::int64_t c = 0; c < s.channels; ++c) {
    const float* plane = in + c * s.height * s.width;
    float* oplane = out + c * oh * ow;
    for (std::int64_t y = 0; y < oh; ++y) {
      const float* row0 = plane + 2 * y * s.width;
      const float* row1 = row0 + s.width;
      for (std::int64_t x = 0; x < ow; ++x) {
        // Same summation order as forward(): (r0c0 + r0c1) + r1c0 +
        // r1c1, so the float result is bit-identical.
        oplane[y * ow + x] = 0.25f * (row0[2 * x] + row0[2 * x + 1] +
                                      row1[2 * x] + row1[2 * x + 1]);
      }
    }
  }
}

LayerInfo AvgPool2x2::info(const FeatureShape& input_shape) const {
  return {.name = name(),
          .op_class = OpClass::kOther,
          .storage_bits = 0,
          .macs = static_cast<std::uint64_t>(input_shape.size()),
          .precision_bits = 32,
          .output_shape = {input_shape.channels, input_shape.height / 2,
                           input_shape.width / 2}};
}

Tensor GlobalAvgPool::forward(const Tensor& input) const {
  const auto& s = input.shape();
  Tensor out(FeatureShape{s.channels, 1, 1});
  const auto area = static_cast<float>(s.height * s.width);
  for (std::int64_t c = 0; c < s.channels; ++c) {
    float sum = 0.0f;
    for (std::int64_t y = 0; y < s.height; ++y) {
      for (std::int64_t x = 0; x < s.width; ++x) sum += input.at(c, y, x);
    }
    out.at(c, 0, 0) = sum / area;
  }
  return out;
}

void GlobalAvgPool::forward_into(ConstTensorView input, TensorView output,
                                 Workspace& workspace) const {
  (void)workspace;
  const FeatureShape& s = input.shape();
  check(output.shape() == FeatureShape{s.channels, 1, 1},
        "GlobalAvgPool::forward_into: shape mismatch");
  const float* in = input.data().data();
  float* out = output.data().data();
  const std::int64_t plane = s.height * s.width;
  const auto area = static_cast<float>(plane);
  for (std::int64_t c = 0; c < s.channels; ++c) {
    const float* ip = in + c * plane;
    float sum = 0.0f;
    for (std::int64_t i = 0; i < plane; ++i) sum += ip[i];
    out[c] = sum / area;
  }
}

LayerInfo GlobalAvgPool::info(const FeatureShape& input_shape) const {
  return {.name = name(),
          .op_class = OpClass::kOther,
          .storage_bits = 0,
          .macs = static_cast<std::uint64_t>(input_shape.size()),
          .precision_bits = 32,
          .output_shape = {input_shape.channels, 1, 1}};
}

// -------------------------------------------------------------- topology

Tensor residual_add(const Tensor& a, const Tensor& b) {
  check(a.shape() == b.shape(), "residual_add: shape mismatch (" +
                                    a.shape().to_string() + " vs " +
                                    b.shape().to_string() + ")");
  Tensor out = a;
  auto bd = b.data();
  auto od = out.data();
  for (std::size_t i = 0; i < od.size(); ++i) od[i] += bd[i];
  return out;
}

void residual_add_into(ConstTensorView a, ConstTensorView b, TensorView out) {
  check(a.shape() == b.shape(), "residual_add_into: operand shape mismatch");
  check(out.shape() == a.shape(), "residual_add_into: output shape mismatch");
  const float* ad = a.data().data();
  const float* bd = b.data().data();
  float* od = out.data().data();
  const std::int64_t n = out.size();
  // a[i] + b[i] like residual_add (which copies a then += b); exact
  // aliasing of out with a is safe (the in-place residual).
  for (std::int64_t i = 0; i < n; ++i) od[i] = ad[i] + bd[i];
}

Tensor concat_channels(const Tensor& a, const Tensor& b) {
  check(a.shape().height == b.shape().height &&
            a.shape().width == b.shape().width,
        "concat_channels: spatial mismatch");
  const FeatureShape out_shape{a.shape().channels + b.shape().channels,
                               a.shape().height, a.shape().width};
  Tensor out(out_shape);
  for (std::int64_t c = 0; c < a.shape().channels; ++c) {
    for (std::int64_t y = 0; y < out_shape.height; ++y) {
      for (std::int64_t x = 0; x < out_shape.width; ++x) {
        out.at(c, y, x) = a.at(c, y, x);
      }
    }
  }
  for (std::int64_t c = 0; c < b.shape().channels; ++c) {
    for (std::int64_t y = 0; y < out_shape.height; ++y) {
      for (std::int64_t x = 0; x < out_shape.width; ++x) {
        out.at(a.shape().channels + c, y, x) = b.at(c, y, x);
      }
    }
  }
  return out;
}

void concat_channels_into(ConstTensorView a, ConstTensorView b,
                          TensorView out) {
  check(a.shape().height == b.shape().height &&
            a.shape().width == b.shape().width,
        "concat_channels_into: spatial mismatch");
  check(out.shape() ==
            FeatureShape{a.shape().channels + b.shape().channels,
                         a.shape().height, a.shape().width},
        "concat_channels_into: output shape mismatch");
  copy_into(a, out.channels(0, a.shape().channels));
  copy_into(b, out.channels(a.shape().channels, b.shape().channels));
}

}  // namespace bkc::bnn
