#pragma once
// Binarization (Eq. 1 of the paper): xb = +1 if x >= 0, -1 otherwise.

#include "tensor/tensor.h"

namespace bkc::bnn {

/// Binarize a single value per Eq. 1.
inline float sign_binarize(float x) { return x >= 0.0f ? 1.0f : -1.0f; }

/// The stored bit for a value: 1 encodes +1, 0 encodes -1.
inline int sign_bit(float x) { return x >= 0.0f ? 1 : 0; }

/// Element-wise binarization of a feature map to a +/-1-valued tensor.
Tensor binarize(const Tensor& input);

/// Element-wise binarization of weights to +/-1 values.
WeightTensor binarize(const WeightTensor& weights);

}  // namespace bkc::bnn
