#pragma once
// Dispatchable inner kernels of binary_conv2d.
//
// binary_conv2d keeps its shape checks, output allocation and
// per-output-channel parallel_for fan-out in bconv.cpp; the actual
// xnor+popcount pixel loop is one of the kernels registered here. The
// scalar kernel is the reference implementation (the seed's loop,
// verbatim); wider kernels (AVX2 today, NEON when someone ports the
// same structure to 128-bit registers) are contractually bit-identical
// to it for every geometry, channel count and thread count - the
// accumulation is integer, so "bit-identical" is exact equality, not a
// tolerance. tests/test_bconv_simd.cpp sweeps that contract across
// every registered kernel.
//
// Fast kernels split the output plane into an interior region - every
// kernel tap lands in bounds, so the inner loop is branchless and
// mask-free - and a border rim that reuses the masked scalar per-pixel
// path. The mask-free interior relies on a bitpack.h layout invariant:
// storage bits above `channels` in a tail word are always zero in both
// features and kernels, so the spurious xnor matches they contribute
// are the *constant* (64 * words - channels) per kernel position,
// subtracted once per pixel instead of masked once per word.

#include <cstdint>
#include <span>

#include "bnn/bitpack.h"
#include "tensor/tensor.h"

namespace bkc::bnn {

/// Compute output channels [o_begin, o_end) of one binary convolution
/// into `out` (whose shape is the geometry's output shape). Called from
/// inside binary_conv2d's parallel_for, so implementations must write
/// only the rows of their channel range. Preconditions (checked by
/// binary_conv2d before dispatch): input/kernel channels and packing
/// match, out has the output shape. `out` is a view so the destination
/// can live in a Workspace arena (Tensor converts implicitly); kernels
/// assign every pixel of their range, never read-modify-write, so the
/// destination may be uninitialised.
using ConvKernelFn = void (*)(const PackedFeature& input,
                              const PackedKernel& kernel,
                              ConvGeometry geometry, TensorView out,
                              std::int64_t o_begin, std::int64_t o_end);

/// A registered kernel implementation. `name` is the stable identifier
/// used by the test suites and the BENCH_kernels.json variant labels.
struct ConvKernelInfo {
  const char* name;
  ConvKernelFn fn;
};

/// The scalar reference kernel (always available).
const ConvKernelInfo& scalar_conv_kernel();

/// Every kernel this binary can run on this machine, scalar first,
/// widest last. A kernel appears only when it was compiled in *and* the
/// CPU supports it, so each entry is safe to call.
std::span<const ConvKernelInfo> conv_kernels();

/// The kernel binary_conv2d dispatches to: the widest available, unless
/// simd::scalar_forced() (BKC_DISABLE_SIMD build, BKC_FORCE_SCALAR env,
/// ScopedForceScalar) pins the scalar reference or a
/// ScopedConvKernelOverride pins a specific one.
const ConvKernelInfo& active_conv_kernel();

/// RAII pin of a specific registered kernel, overriding both the ISA
/// pick and simd::scalar_forced(). Process-global; the bit-identity
/// suites and bench/micro_kernels use it to benchmark and diff each
/// variant from one binary. Establish before fanning out to the pool.
class ScopedConvKernelOverride {
 public:
  explicit ScopedConvKernelOverride(const ConvKernelInfo& kernel);
  ~ScopedConvKernelOverride();
  ScopedConvKernelOverride(const ScopedConvKernelOverride&) = delete;
  ScopedConvKernelOverride& operator=(const ScopedConvKernelOverride&) =
      delete;

 private:
  const ConvKernelInfo* previous_;
};

namespace internal {

/// Matches (agreeing weight/input bit pairs) for one output pixel, with
/// full spatial-padding and channel-tail masking - the scalar reference
/// arithmetic. base_y/base_x are the top-left input coordinates of the
/// kernel window (may be negative or out of bounds; padded taps
/// contribute where the weight bit is 0). Fast kernels call this for
/// border pixels so every path shares one definition of the edge math.
std::int64_t scalar_pixel_matches(const PackedFeature& input,
                                  const PackedKernel& kernel, std::int64_t o,
                                  std::int64_t base_y, std::int64_t base_x);

#if defined(BKC_HAVE_AVX2)
/// The AVX2 kernel (defined in bconv_kernels_avx2.cpp, compiled with
/// -mavx2). Only registered - and only callable - when
/// simd::cpu_supports_avx2() is true.
void conv_kernel_avx2(const PackedFeature& input, const PackedKernel& kernel,
                      ConvGeometry geometry, TensorView out,
                      std::int64_t o_begin, std::int64_t o_end);
#endif

}  // namespace internal

}  // namespace bkc::bnn
