#pragma once
// Calibrated synthetic weights.
//
// The paper evaluates on ReActNet weights trained on ImageNet. Trained
// weights are not redistributable, and every result in the paper is a
// function of one statistic: the frequency distribution of the 512
// possible bit sequences in each basic block (Fig. 3, Table II). This
// module therefore *fits* a per-block distribution to the paper's own
// published numbers and samples kernels from it:
//
//  * the popularity ranking starts with the exact top-16 of Fig. 3,
//  * the distribution is complement-symmetric (Fig. 3's top-16 is eight
//    complement pairs, so the real network is too, to first order),
//  * the head (ranks 0..63) carries exactly the block's Table II top-64
//    share, ranks 64..255 carry (top256 - top64), and the tail carries
//    the rest - so the Table II statistics are matched *by construction*
//    and Fig. 3 / Table V emerge from the same mechanism as the paper.

#include <array>
#include <cstdint>

#include "bnn/bitpack.h"
#include "bnn/bitseq.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace bkc::bnn {

/// Per-block frequency targets, as fractions (Table II is in percent).
struct BlockFrequencyTarget {
  double top64 = 0.6;
  double top256 = 0.9;
};

/// The 13 rows of Table II of the paper.
const std::array<BlockFrequencyTarget, 13>& paper_table2_targets();

/// The top-16 bit sequences of Fig. 3, in the paper's order:
/// 0, 511, 256, 255, 4, 510, 1, 507, 508, 64, 3, 504, 447, 7, 448, 63.
const std::array<SeqId, 16>& figure3_top16();

/// A probability distribution over the 512 bit sequences.
class SequenceDistribution {
 public:
  /// Uniform over all 512 sequences (the incompressible worst case).
  static SequenceDistribution uniform();

  /// Explicit probabilities (normalised internally).
  /// Precondition: 512 non-negative values with positive sum.
  static SequenceDistribution from_probabilities(
      const std::array<double, kNumSequences>& probabilities);

  /// Zipf(exponent) over the popularity ranking mixed with a uniform
  /// floor: p(rank r) = (1-mix) * (r+1)^-exponent / Z + mix / 512,
  /// then complement-symmetrised.
  static SequenceDistribution zipf_mixture(double exponent,
                                           double uniform_mix);

  /// Per-block Zipf fit hitting the block targets exactly: top-64 mass
  /// == target.top64 and top-256 mass == target.top256 (the exponent is
  /// bisected so one monotone curve satisfies both). The fitted curves
  /// also land the Fig. 3 interior values (all-zeros/all-ones pair near
  /// 12.5% each, top-16 near 44-47%) without further tuning. The second
  /// parameter is reserved (ignored).
  static SequenceDistribution fitted(const BlockFrequencyTarget& target,
                                     double reserved = 0.0);

  /// The canonical popularity ranking: Fig. 3's sixteen, then all other
  /// sequences in complement-adjacent pairs ordered by how far their
  /// popcount is from uniform (0 or 9 first).
  static const std::array<SeqId, kNumSequences>& popularity_order();

  const std::array<double, kNumSequences>& probabilities() const {
    return p_;
  }
  double probability(SeqId s) const;

  /// Probability mass of the k most probable sequences (Table II metric).
  double top_k_share(std::size_t k) const;

  /// Shannon entropy in bits (lower bound for any prefix code).
  double entropy_bits() const;

 private:
  SequenceDistribution() = default;
  std::array<double, kNumSequences> p_{};
};

/// Deterministic generator for kernels, float weights and activations.
class WeightGenerator {
 public:
  explicit WeightGenerator(std::uint64_t seed = 1);

  /// A generator whose kernel/weight samplers return zero-filled
  /// tensors of the requested shape without consuming randomness.
  /// For standing a model up when only its *structure* matters (op
  /// records and storage accounting depend on shapes, never on weight
  /// values — bnn::op_records_for builds on this); a layout-only model
  /// is not meant to be run. sample_activation is unaffected.
  static WeightGenerator layout_only();

  /// Sample a 3x3 packed kernel whose channel bit sequences are i.i.d.
  /// draws from `dist`.
  PackedKernel sample_kernel3x3(std::int64_t out_channels,
                                std::int64_t in_channels,
                                const SequenceDistribution& dist);

  /// Sample a kernel of any shape with i.i.d. bits
  /// (P(bit=1) = plus_one_density).
  PackedKernel sample_kernel(const KernelShape& shape,
                             double plus_one_density = 0.5);

  /// Gaussian float weights (for the int8 stem / classifier).
  WeightTensor sample_float_weights(const KernelShape& shape,
                                    float stddev = 1.0f);
  std::vector<float> sample_floats(std::size_t count, float stddev = 1.0f,
                                   float mean = 0.0f);

  /// Smooth, natural-image-like activation map: per-channel bias plus a
  /// few random low-frequency waves plus white noise. Roughly centred so
  /// sign() produces balanced bits.
  Tensor sample_activation(const FeatureShape& shape);

  Rng& rng() { return rng_; }

 private:
  Rng rng_;
  bool layout_only_ = false;
};

}  // namespace bkc::bnn
