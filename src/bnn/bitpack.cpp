#include "bnn/bitpack.h"

#include "util/check.h"

namespace bkc::bnn {

std::uint64_t channel_tail_mask(std::int64_t channels) {
  check(channels > 0, "channel_tail_mask: channels must be positive");
  const std::int64_t rem = channels % kWordBits;
  return rem == 0 ? ~0ULL : ((1ULL << rem) - 1);
}

PackedFeature::PackedFeature(FeatureShape shape) { reshape(shape); }

void PackedFeature::reshape(FeatureShape shape) {
  check(shape.channels > 0 && shape.height > 0 && shape.width > 0,
        "PackedFeature::reshape: dimensions must be positive");
  shape_ = shape;
  words_per_pixel_ = words_per_group(shape.channels);
  tail_mask_ = channel_tail_mask(shape.channels);
  // assign() reuses capacity when it suffices (the reserve_words
  // contract); zero-filling restores the tail-word layout invariant.
  words_.assign(
      static_cast<std::size_t>(shape.height * shape.width * words_per_pixel_),
      0);
}

void PackedFeature::reserve_words(std::int64_t words) {
  check(words >= 0, "PackedFeature::reserve_words: negative count");
  words_.reserve(static_cast<std::size_t>(words));
}

std::span<const std::uint64_t> PackedFeature::at(std::int64_t y,
                                                 std::int64_t x) const {
  check(y >= 0 && y < shape_.height && x >= 0 && x < shape_.width,
        "PackedFeature::at out of range");
  const auto offset =
      static_cast<std::size_t>((y * shape_.width + x) * words_per_pixel_);
  return {words_.data() + offset,
          static_cast<std::size_t>(words_per_pixel_)};
}

std::span<std::uint64_t> PackedFeature::at(std::int64_t y, std::int64_t x) {
  auto view = static_cast<const PackedFeature*>(this)->at(y, x);
  return {const_cast<std::uint64_t*>(view.data()), view.size()};
}

int PackedFeature::bit(std::int64_t c, std::int64_t y, std::int64_t x) const {
  check(c >= 0 && c < shape_.channels, "PackedFeature::bit channel range");
  const auto view = at(y, x);
  return static_cast<int>(
      (view[static_cast<std::size_t>(c / kWordBits)] >> (c % kWordBits)) & 1);
}

void PackedFeature::set_bit(std::int64_t c, std::int64_t y, std::int64_t x,
                            int value) {
  check(c >= 0 && c < shape_.channels, "PackedFeature::set_bit channel range");
  check(value == 0 || value == 1, "PackedFeature::set_bit value must be 0/1");
  auto view = at(y, x);
  auto& word = view[static_cast<std::size_t>(c / kWordBits)];
  const std::uint64_t mask = 1ULL << (c % kWordBits);
  word = value ? (word | mask) : (word & ~mask);
}

PackedKernel::PackedKernel(KernelShape shape)
    : shape_(shape),
      words_per_position_(words_per_group(shape.in_channels)),
      tail_mask_(channel_tail_mask(shape.in_channels)),
      words_(static_cast<std::size_t>(shape.out_channels * shape.kernel_h *
                                      shape.kernel_w * words_per_position_),
             0) {
  check(shape.out_channels > 0 && shape.in_channels > 0 &&
            shape.kernel_h > 0 && shape.kernel_w > 0,
        "PackedKernel: dimensions must be positive");
}

std::span<const std::uint64_t> PackedKernel::at(std::int64_t o,
                                                std::int64_t ky,
                                                std::int64_t kx) const {
  check(o >= 0 && o < shape_.out_channels && ky >= 0 &&
            ky < shape_.kernel_h && kx >= 0 && kx < shape_.kernel_w,
        "PackedKernel::at out of range");
  const auto offset = static_cast<std::size_t>(
      ((o * shape_.kernel_h + ky) * shape_.kernel_w + kx) *
      words_per_position_);
  return {words_.data() + offset,
          static_cast<std::size_t>(words_per_position_)};
}

std::span<std::uint64_t> PackedKernel::at(std::int64_t o, std::int64_t ky,
                                          std::int64_t kx) {
  auto view = static_cast<const PackedKernel*>(this)->at(o, ky, kx);
  return {const_cast<std::uint64_t*>(view.data()), view.size()};
}

int PackedKernel::bit(std::int64_t o, std::int64_t i, std::int64_t ky,
                      std::int64_t kx) const {
  check(i >= 0 && i < shape_.in_channels, "PackedKernel::bit channel range");
  const auto view = at(o, ky, kx);
  return static_cast<int>(
      (view[static_cast<std::size_t>(i / kWordBits)] >> (i % kWordBits)) & 1);
}

void PackedKernel::set_bit(std::int64_t o, std::int64_t i, std::int64_t ky,
                           std::int64_t kx, int value) {
  check(i >= 0 && i < shape_.in_channels,
        "PackedKernel::set_bit channel range");
  check(value == 0 || value == 1, "PackedKernel::set_bit value must be 0/1");
  auto view = at(o, ky, kx);
  auto& word = view[static_cast<std::size_t>(i / kWordBits)];
  const std::uint64_t mask = 1ULL << (i % kWordBits);
  word = value ? (word | mask) : (word & ~mask);
}

PackedFeature pack_feature(const Tensor& input) {
  PackedFeature packed(input.shape());
  const auto& s = input.shape();
  for (std::int64_t c = 0; c < s.channels; ++c) {
    for (std::int64_t y = 0; y < s.height; ++y) {
      for (std::int64_t x = 0; x < s.width; ++x) {
        packed.set_bit(c, y, x, input.at(c, y, x) >= 0.0f ? 1 : 0);
      }
    }
  }
  return packed;
}

void pack_feature_into(ConstTensorView input, PackedFeature& out) {
  out.reshape(input.shape());
  const FeatureShape& s = input.shape();
  const std::int64_t pixels = s.height * s.width;
  const std::int64_t wpp = out.words_per_pixel();
  std::uint64_t* words = out.words().data();
  const float* data = input.data().data();
  // Channel-major like the CHW input: each channel contributes one bit
  // lane, OR'd over its whole spatial plane with sequential float
  // reads. Words start zeroed (reshape), so OR alone builds the map
  // and the tail invariant (bits above `channels` stay zero) holds by
  // construction.
  for (std::int64_t c = 0; c < s.channels; ++c) {
    const std::uint64_t mask = 1ULL << (c % kWordBits);
    std::uint64_t* word = words + c / kWordBits;
    const float* plane = data + c * pixels;
    for (std::int64_t p = 0; p < pixels; ++p) {
      word[p * wpp] |= plane[p] >= 0.0f ? mask : 0;
    }
  }
}

Tensor unpack_feature(const PackedFeature& packed) {
  Tensor out(packed.shape());
  const auto& s = packed.shape();
  for (std::int64_t c = 0; c < s.channels; ++c) {
    for (std::int64_t y = 0; y < s.height; ++y) {
      for (std::int64_t x = 0; x < s.width; ++x) {
        out.at(c, y, x) = packed.bit(c, y, x) ? 1.0f : -1.0f;
      }
    }
  }
  return out;
}

PackedKernel pack_kernel(const WeightTensor& weights) {
  PackedKernel packed(weights.shape());
  const auto& k = weights.shape();
  for (std::int64_t o = 0; o < k.out_channels; ++o) {
    for (std::int64_t i = 0; i < k.in_channels; ++i) {
      for (std::int64_t ky = 0; ky < k.kernel_h; ++ky) {
        for (std::int64_t kx = 0; kx < k.kernel_w; ++kx) {
          packed.set_bit(o, i, ky, kx,
                         weights.at(o, i, ky, kx) >= 0.0f ? 1 : 0);
        }
      }
    }
  }
  return packed;
}

WeightTensor unpack_kernel(const PackedKernel& packed) {
  WeightTensor out(packed.shape());
  const auto& k = packed.shape();
  for (std::int64_t o = 0; o < k.out_channels; ++o) {
    for (std::int64_t i = 0; i < k.in_channels; ++i) {
      for (std::int64_t ky = 0; ky < k.kernel_h; ++ky) {
        for (std::int64_t kx = 0; kx < k.kernel_w; ++kx) {
          out.at(o, i, ky, kx) = packed.bit(o, i, ky, kx) ? 1.0f : -1.0f;
        }
      }
    }
  }
  return out;
}

}  // namespace bkc::bnn
