#pragma once
// ReActNet-A (Liu et al., ECCV 2020), the paper's baseline model:
// a MobileNet-V1 backbone whose 13 depthwise-separable blocks are
// replaced by the basic block of Fig. 1 - a 1-bit 3x3 convolution and a
// 1-bit 1x1 convolution, each preceded by sign() and followed by batch
// norm, residual shortcuts and RPReLU activations. The input layer is an
// 8-bit convolution and the output layer an 8-bit fully-connected
// classifier (Sec II-B: "we quantize them using 8 bits").
//
// With the canonical configuration (224x224 input, 1000 classes) the
// storage breakdown reproduces the paper's Table I: the 3x3 binary
// convolutions hold ~68% of all bits, the 1x1s ~8.5%, and the int8
// output layer ~22%.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bnn/layers.h"
#include "bnn/memory_plan.h"
#include "bnn/model.h"
#include "bnn/weights.h"
#include "tensor/tensor.h"

namespace bkc::bnn {

/// Channel configuration of one basic block. The 3x3 convolution runs
/// in_channels -> in_channels with the given stride; the 1x1 stage
/// expands to out_channels (which must be in_channels or 2*in_channels,
/// the only two cases in the MobileNet schedule).
struct BlockConfig {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t stride = 1;
};

/// The 13-block MobileNet-V1 channel schedule used by ReActNet-A.
/// `width_divisor` shrinks every channel count (for fast tests);
/// divided channel counts are clamped to >= 4.
std::vector<BlockConfig> mobilenet_v1_schedule(std::int64_t width_divisor = 1);

/// Full model configuration.
struct ReActNetConfig {
  std::int64_t input_channels = 3;
  std::int64_t input_size = 224;  ///< square input, pixels
  std::int64_t stem_channels = 32;
  std::int64_t stem_stride = 2;
  std::int64_t num_classes = 1000;
  std::vector<BlockConfig> blocks = mobilenet_v1_schedule();
  std::uint64_t seed = 42;
  /// When true, the 3x3 kernels of block b are drawn from the
  /// distribution fitted to the paper's Table II row b (cycled if the
  /// schedule has more blocks than 13). When false, i.i.d. fair bits.
  bool calibrated_weights = true;
};

/// The paper's evaluation configuration (ImageNet-sized).
ReActNetConfig paper_reactnet_config(std::uint64_t seed = 42);

/// A small configuration for unit tests and quick examples:
/// 32x32 input, width/8 channels, 10 classes.
ReActNetConfig tiny_reactnet_config(std::uint64_t seed = 42);

/// One ReActNet basic block (Fig. 1):
///   y  = RPReLU(BN(bconv3x3(x)) + shortcut(x))
///   z  = RPReLU(BN(bconv1x1(y)) + y)            (out == in)
///   z  = RPReLU(concat(BN(c1a(y)) + y, BN(c1b(y)) + y))  (out == 2*in)
/// where shortcut is identity, or 2x2 average pooling when stride 2.
class BasicBlock {
 public:
  BasicBlock(std::string name, const BlockConfig& config,
             WeightGenerator& generator, const SequenceDistribution& dist);

  Tensor forward(const Tensor& input) const;

  /// Zero-allocation counterpart of forward(): block scratch (the 3x3
  /// conv output, the stride-2 pooled shortcut) comes from the
  /// workspace arena and is released LIFO before returning; the 1x1
  /// convs write straight into the channel halves of `output` (the
  /// concat destination), so no intermediate za/zb tensors exist.
  /// `output` must have output_shape(input.shape()) and must not alias
  /// `input`. Bit-identical to forward().
  void forward_into(ConstTensorView input, TensorView output,
                    Workspace& workspace) const;

  const BlockConfig& config() const { return config_; }
  const std::string& name() const { return name_; }

  /// The block's 3x3 binary convolution (the compression target).
  BinaryConv2d& conv3x3() { return *conv3_; }
  const BinaryConv2d& conv3x3() const { return *conv3_; }

  /// The block's 1x1 binary convolution(s): one, or two when expanding.
  std::vector<BinaryConv2d*> conv1x1s();
  std::vector<const BinaryConv2d*> conv1x1s() const;

  FeatureShape output_shape(const FeatureShape& input) const;
  std::vector<OpRecord> op_records(const FeatureShape& input) const;

 private:
  std::string name_;
  BlockConfig config_;
  std::unique_ptr<BinaryConv2d> conv3_;
  std::unique_ptr<BatchNorm> bn1_;
  std::unique_ptr<RPReLU> act1_;
  std::unique_ptr<BinaryConv2d> conv1a_;
  std::unique_ptr<BatchNorm> bn2a_;
  std::unique_ptr<BinaryConv2d> conv1b_;  // only when out == 2*in
  std::unique_ptr<BatchNorm> bn2b_;       // only when out == 2*in
  std::unique_ptr<RPReLU> act2_;
  AvgPool2x2 pool_;  // stride-2 shortcut
};

/// The full model: int8 stem -> 13 basic blocks -> global average pool
/// -> int8 classifier.
class ReActNet {
 public:
  explicit ReActNet(const ReActNetConfig& config = paper_reactnet_config());

  /// Run one image (input_channels x input_size x input_size) through
  /// the network; returns class scores (num_classes x 1 x 1).
  Tensor forward(const Tensor& image) const;

  /// Zero-allocation counterpart of forward(): activations ping-pong
  /// between two arena buffers of memory_plan().activation_floats
  /// each, blocks draw their scratch LIFO on top, and the int8
  /// stem/classifier quantize into arena scratch. Resets the
  /// workspace arena on entry; `workspace` must cover memory_plan()
  /// (any workspace built from this model's plan, or a larger one,
  /// qualifies). `scores` must be num_classes x 1 x 1. Bit-identical
  /// to forward().
  void forward_into(ConstTensorView image, TensorView scores,
                    Workspace& workspace) const;

  /// The memory plan computed once at construction from op_records():
  /// build Workspaces (or a WorkspacePool) from this to run
  /// forward_into.
  const MemoryPlan& memory_plan() const { return plan_; }

  const ReActNetConfig& config() const { return config_; }
  FeatureShape input_shape() const;

  std::size_t num_blocks() const { return blocks_.size(); }
  BasicBlock& block(std::size_t i);
  const BasicBlock& block(std::size_t i) const;

  /// Every operation with resolved shapes (stem, all block ops, pool,
  /// classifier) - the substrate for Table I and the timing model.
  std::vector<OpRecord> op_records() const;

  /// Storage breakdown over op_records() (Table I storage column).
  StorageBreakdown storage() const;

 private:
  /// Shared ctor body: `generator` supplies every weight tensor (the
  /// public ctor seeds it from the config; op_records_for passes the
  /// layout-only generator).
  ReActNet(const ReActNetConfig& config, WeightGenerator generator);

  friend std::vector<OpRecord> op_records_for(const ReActNetConfig& config);

  ReActNetConfig config_;
  std::unique_ptr<Int8Conv2d> stem_;
  std::vector<BasicBlock> blocks_;
  GlobalAvgPool pool_;
  std::unique_ptr<Int8Linear> classifier_;
  MemoryPlan plan_;
};

/// The op-record layout of a ReActNet with this configuration, without
/// sampling a single weight: the model is stood up with zero-filled
/// (layout-only) parameters, so the SAME structural walk and per-layer
/// info() code as ReActNet::op_records produces the records — the
/// layout can never drift from a real model's, and op records depend on
/// shapes alone (tests/test_reactnet.cpp pins the field-for-field
/// equality). This is what container tooling uses to feed
/// hwsim::compare_model from a mapped BKCM file without paying the
/// weight-generation cost of a full model.
std::vector<OpRecord> op_records_for(const ReActNetConfig& config);

}  // namespace bkc::bnn
