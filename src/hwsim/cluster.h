#pragma once
// Small deterministic k-means for the sampled-simulation phase
// clustering (hwsim/sampled.h).
//
// This is the BarrierPoint recipe in miniature: k-means++ seeding and
// Lloyd iterations over the random-projected signature vectors of
// hwsim/bbv.h — with every source of nondeterminism pinned down:
//   * the k-means++ draws come from a caller-seeded util/rng.h
//     generator (no global RNG, no time-derived state),
//   * assignment ties break to the lowest centroid index and the
//     empty-cluster repair picks the worst-fitting point with the
//     lowest index, so reordering-equal inputs cannot flip a result,
//   * iterations are capped (`max_iters`), and the loop also stops as
//     soon as an iteration changes no assignment.
// Equal (points, config) therefore always produce equal clusters; the
// sampled simulator's bit-stability tests ride on this.

#include <cstdint>
#include <vector>

namespace bkc::hwsim {

struct KMeansConfig {
  int k = 1;                  ///< requested clusters; must be in [1, n]
  std::uint64_t seed = 0;     ///< drives k-means++ init only
  int max_iters = 16;         ///< Lloyd iteration cap
};

struct KMeansResult {
  /// Per-point cluster index in [0, k). Clusters may end up EMPTY when
  /// the input has fewer distinct points than k (duplicate centroids
  /// tie-break to the lowest index); callers iterate the non-empty ones.
  std::vector<int> assignment;
  std::vector<std::vector<double>> centroids;
  int iterations = 0;  ///< Lloyd iterations actually run
};

/// Cluster `points` (all of equal dimension >= 1) into `config.k`
/// groups. Deterministic (see file comment). Preconditions: points
/// non-empty, 1 <= k <= points.size(), max_iters >= 1.
KMeansResult kmeans(const std::vector<std::vector<double>>& points,
                    const KMeansConfig& config);

/// Squared Euclidean distance (shared with the sampled simulator's
/// dispersion summary). Precondition: equal sizes.
double squared_distance(const std::vector<double>& a,
                        const std::vector<double>& b);

/// The member of `members` (indices into `points`) closest to
/// `centroid`; ties break to the lowest index so the representative is
/// stable. Precondition: members non-empty.
std::size_t closest_member(const std::vector<std::vector<double>>& points,
                           const std::vector<std::size_t>& members,
                           const std::vector<double>& centroid);

}  // namespace bkc::hwsim
