#pragma once
// Decode-trace fingerprints for sampled simulation (hwsim/sampled.h).
//
// BarrierPoint-style sampling needs a cheap, simulation-free summary of
// what each compressed block would make the decoder/core pipeline do.
// The analog of a basic-block vector here is the *code-length
// histogram* of the block's stream: the per-sequence codeword lengths
// are exactly what drives the software decode pass (window refills per
// 64 stream bits), the decoding unit's fetch/decode schedule, and the
// stream's DRAM footprint — two blocks with the same geometry and the
// same length histogram put near-identical work through
// simulate_binary_conv_layer. The histogram is normalized to a
// distribution so it fingerprints the stream's *shape* independent of
// block size; geometry is deliberately kept out of the signature and
// handled as an exact partition key (hwsim/sampled.cpp), because equal
// geometry makes the emitted micro-op schedule identical while a
// histogram can only make it similar.
//
// Signatures are reduced by a deterministic Gaussian random projection
// before clustering, as in SimPoint/BarrierPoint: the projection matrix
// is generated from a caller-supplied seed through util/rng.h — no
// global RNG, no time-derived state — so the whole sampling pipeline is
// bit-reproducible from (view, SamplingConfig).

#include <cstdint>
#include <vector>

#include "bnn/model.h"
#include "compress/model_view.h"

namespace bkc::hwsim {

/// Histogram bins: code lengths 1..kSignatureBins bits, lengths beyond
/// folding into the last bin. Grouped-Huffman codewords are at most
/// prefix + 9 index bits and every registered codec stays well under 32
/// bits per 9-bit sequence, so in practice nothing folds.
inline constexpr int kSignatureBins = 32;

/// Exact schedule key of a binary conv layer: two ops with equal keys
/// generate byte-identical micro-op traces in every variant (the trace
/// is a pure function of these fields plus the stream), so baseline
/// cycles — which consume no stream — may be shared between them with
/// zero error.
struct GeometryKey {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 0;
  std::int64_t stride = 0;
  std::int64_t padding = 0;
  std::int64_t in_h = 0;
  std::int64_t in_w = 0;
  std::int64_t out_h = 0;
  std::int64_t out_w = 0;

  static GeometryKey from_op(const bnn::OpRecord& op);

  auto operator<=>(const GeometryKey&) const = default;
};

/// The raw signature of one block: its code-length distribution
/// (kSignatureBins entries summing to 1). CheckError when the block
/// carries no code lengths or a zero-length codeword.
std::vector<double> block_signature(const compress::BlockStreamView& block);

/// Project every signature to `dims` dimensions with a shared Gaussian
/// matrix generated deterministically from `seed` (entries drawn in
/// fixed row-major order, scaled 1/sqrt(dims)). Equal (signatures,
/// dims, seed) always yields equal output. Preconditions: dims >= 1,
/// all signatures of length kSignatureBins.
std::vector<std::vector<double>> project_signatures(
    const std::vector<std::vector<double>>& signatures, int dims,
    std::uint64_t seed);

}  // namespace bkc::hwsim
