#include "hwsim/decoder_unit.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace bkc::hwsim {

StreamInfo StreamInfo::over(std::span<const std::uint8_t> lengths) {
  StreamInfo info;
  info.total_bits = std::accumulate(lengths.begin(), lengths.end(),
                                    std::uint64_t{0});
  info.code_lengths = lengths;
  return info;
}

double StreamInfo::mean_bits() const {
  check(!code_lengths.empty(), "StreamInfo: empty stream");
  return static_cast<double>(total_bits) /
         static_cast<double>(code_lengths.size());
}

DecoderUnitRuntime::DecoderUnitRuntime(const DecoderParams& params,
                                       MemoryHierarchy& memory,
                                       const StreamInfo& stream,
                                       std::vector<std::uint32_t> group_sizes,
                                       int regs_per_group,
                                       std::uint64_t start_cycle)
    : params_(params),
      memory_(&memory),
      stream_(stream),
      group_sizes_(std::move(group_sizes)),
      regs_per_group_(regs_per_group) {
  check(regs_per_group_ >= 1, "DecoderUnitRuntime: regs_per_group >= 1");
  check(!group_sizes_.empty(), "DecoderUnitRuntime: no groups");
  const std::uint64_t total = std::accumulate(
      group_sizes_.begin(), group_sizes_.end(), std::uint64_t{0});
  check(total == stream.code_lengths.size(),
        "DecoderUnitRuntime: group sizes must cover the stream");
  // lddu: configuration load + unit reset before the first fetch.
  decoder_time_ = start_cycle + static_cast<std::uint64_t>(
                                    params_.configure_cycles);
  fetch_done_cycle_ = decoder_time_;
  stream_request_cycle_ = decoder_time_;
  // The fetch schedule is analytic (see ensure_group).
  dram_latency_ =
      static_cast<std::uint64_t>(params_.stream_latency_cycles);
  chunk_transfer_cycles_ = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             static_cast<double>(params_.fetch_chunk_bytes) /
             params_.stream_bytes_per_cycle));
  group_ready_.assign(group_sizes_.size(), 0);
  group_freed_.assign(group_sizes_.size(), 0);
}

void DecoderUnitRuntime::ensure_group(std::size_t g) {
  check(g < group_sizes_.size(), "DecoderUnitRuntime: group out of range");
  while (groups_computed_ <= g) {
    const std::size_t group = groups_computed_;
    // Register-file backpressure: with room for two packed groups, group
    // g cannot start packing before group g-2's registers were all read.
    if (group >= 2) {
      decoder_time_ = std::max(decoder_time_, group_freed_[group - 2]);
    }
    std::uint64_t needed_bits = 0;
    for (std::size_t i = 0; i < group_sizes_[group]; ++i) {
      needed_bits += stream_.code_lengths[next_seq_ + i];
    }
    // Fetch T-byte chunks until this group's bits are buffered. The
    // streaming unit "sends a new request to fetch more bytes while
    // doing the decoding" (Sec IV-C): requests stream back-to-back from
    // the start of the activation, so chunk k completes one transfer
    // time after chunk k-1 and only the first fetch exposes the full
    // DRAM latency. The decoder consumes ~7 bits/cycle worth of stream
    // at most, far below channel bandwidth, so the prefetch never falls
    // behind and channel contention with the core is negligible (the
    // traffic volume is still accounted).
    while (bits_fetched_ - bits_consumed_ < needed_bits) {
      ++chunks_fetched_;
      fetch_done_cycle_ = stream_request_cycle_ + dram_latency_ +
                          chunks_fetched_ * chunk_transfer_cycles_;
      memory_->note_stream_traffic(params_.fetch_chunk_bytes);
      bits_fetched_ +=
          static_cast<std::uint64_t>(params_.fetch_chunk_bytes) * 8;
    }
    bits_consumed_ += needed_bits;
    // Decode: one sequence per cycle once its bits are in the buffer.
    if (fetch_done_cycle_ > decoder_time_) {
      fetch_wait_cycles_ += fetch_done_cycle_ - decoder_time_;
      decoder_time_ = fetch_done_cycle_;
    }
    decoder_time_ += group_sizes_[group] /
                     static_cast<std::uint64_t>(params_.decode_per_cycle);
    next_seq_ += group_sizes_[group];
    group_ready_[group] = decoder_time_;
    ++groups_computed_;
  }
}

std::uint64_t DecoderUnitRuntime::pop(std::uint64_t cycle) {
  const std::size_t group = next_pop_ / static_cast<std::size_t>(regs_per_group_);
  const std::size_t reg_in_group =
      next_pop_ % static_cast<std::size_t>(regs_per_group_);
  ensure_group(group);
  const std::uint64_t ready = group_ready_[group];
  const std::uint64_t done =
      std::max(cycle, ready) + static_cast<std::uint64_t>(params_.ldps_cycles);
  if (reg_in_group == static_cast<std::size_t>(regs_per_group_) - 1) {
    group_freed_[group] = done;
  }
  last_pop_cycle_ = done;
  ++next_pop_;
  return done;
}

std::uint64_t DecoderUnitRuntime::remaining_pops() const {
  const std::uint64_t total_regs =
      static_cast<std::uint64_t>(group_sizes_.size()) *
      static_cast<std::uint64_t>(regs_per_group_);
  return total_regs - next_pop_;
}

}  // namespace bkc::hwsim
