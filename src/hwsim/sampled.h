#pragma once
// BarrierPoint-style sampled simulation: compare_model accuracy at a
// fraction of the simulated trace volume.
//
// hwsim::compare_model simulates every binary conv layer of the model
// in three variants; at real model sizes that full cycle simulation —
// not compression, not I/O — dominates the wall clock of every config
// sweep. This subsystem exploits the structure of the workload instead
// of simulating it exhaustively:
//
//   1. Fingerprint each 3x3 block's decode trace as its code-length
//      histogram (hwsim/bbv.h) and reduce via a seeded random
//      projection — the BBV recipe.
//   2. Partition blocks by exact layer geometry (equal GeometryKey =>
//      byte-identical micro-op schedule), then cluster each partition's
//      signatures with the small deterministic k-means of
//      hwsim/cluster.h (k-means++ init off the seeded generator).
//   3. Simulate only each cluster's REPRESENTATIVE block (the member
//      closest to the centroid) through the existing DecoderUnit/core
//      model, and extrapolate: every member reports its cluster
//      representative's sw/hw cycles, so the model totals are
//      cluster-weighted sums.
//   4. Baseline cycles consume no stream, so they are memoized per
//      geometry key and shared across equal-geometry layers — including
//      the 1x1 binary convs — with ZERO error: sampled and exact
//      baseline totals are identical, and only the sw/hw columns carry
//      sampling error.
//
// The exact compare_model stays untouched as the oracle;
// tests/test_sampled_sim.cpp pins the sampled-vs-exact relative cycle
// error on the tiny ReActNet fixture and bit-identical results across
// repeated runs and thread counts 1/2/4/7.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "compress/model_view.h"
#include "hwsim/params.h"
#include "hwsim/perf_model.h"

namespace bkc::hwsim {

/// Knobs of the sampled path. Everything random (projection matrix,
/// k-means++ init) derives from `seed` alone — no global RNG, no
/// time-derived state — so equal (view, config) yield equal reports.
struct SamplingConfig {
  std::uint64_t seed = 0xb4cb10c5ULL;
  /// Random-projection target dimension for the signatures.
  int projection_dims = 8;
  /// Cluster budget per geometry group: k = min(this, group size).
  /// 1 collapses every equal-geometry group onto one representative;
  /// larger values buy accuracy for groups whose streams diverge.
  int max_clusters_per_group = 2;
  /// Lloyd iteration cap of the per-group k-means.
  int max_kmeans_iters = 16;
  /// Fan the representative simulations out over the shared thread
  /// pool. Results are bit-identical at every thread count (each
  /// simulation is an independent pure function; assembly is serial in
  /// fixed order).
  int num_threads = 1;
};

/// One phase cluster of the summary: which blocks (indices into
/// view.blocks) were folded together and how tight the fold was.
struct SampledClusterInfo {
  std::size_t representative = 0;      ///< simulated member
  std::vector<std::size_t> members;    ///< includes the representative
  /// Projected-signature L2 distance from members to the
  /// representative: the measured dispersion the extrapolation glosses
  /// over (0 for singleton clusters).
  double max_signature_distance = 0.0;
  double mean_signature_distance = 0.0;
  /// max |member stream bits - rep stream bits| / rep stream bits: a
  /// direct, measured proxy for the sw/hw extrapolation error, since
  /// the decode-side cycle costs scale with stream bits.
  double max_stream_bits_skew = 0.0;
};

/// The measured error summary returned next to the sampled report.
/// These are *measured dispersions of what was folded together*, not a
/// ground-truth error — ground truth needs the exact oracle (which the
/// tests and bench/speedup run alongside). Baseline cycles carry no
/// sampling error by construction (geometry-exact memoization).
struct SamplingSummary {
  std::size_t num_blocks = 0;           ///< 3x3 blocks in the view
  std::size_t num_geometry_groups = 0;  ///< distinct GeometryKeys (3x3)
  std::size_t num_clusters = 0;         ///< non-empty phase clusters
  std::size_t simulated_blocks = 0;     ///< representatives simulated
  /// simulated_blocks / num_blocks (1.0 = nothing saved; 0 blocks => 1).
  double simulated_fraction = 1.0;
  /// Dispersion maxima over all clusters (see SampledClusterInfo).
  double max_signature_distance = 0.0;
  double max_stream_bits_skew = 0.0;
  std::vector<SampledClusterInfo> clusters;
};

struct SampledSpeedupReport {
  SpeedupReport report;
  SamplingSummary summary;
};

/// The sampled counterpart of compare_model: same SpeedupReport shape
/// (one LayerComparison per 3x3 binary conv, in op order, named after
/// the op), cycles extrapolated as described in the file comment. Runs
/// zero compression-pipeline work (the instrumentation counters of
/// compress/instrumentation.h stay flat) and never mutates the view.
SampledSpeedupReport compare_model_sampled(
    const compress::CompressedModelView& view,
    const SamplingConfig& config = {}, const CpuParams& cpu = {},
    const DecoderParams& decoder = {}, const SamplingParams& sampling = {});

}  // namespace bkc::hwsim
