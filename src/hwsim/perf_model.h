#pragma once
// Whole-model timing: the execution-time column of Table I and the
// paper's two headline performance numbers (software decode 1.47x
// *slower*, hardware-assisted decode 1.35x *faster* than the
// uncompressed baseline).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bnn/model.h"
#include "compress/kernel_codec.h"
#include "compress/model_view.h"
#include "hwsim/conv_trace.h"
#include "hwsim/params.h"

namespace bkc::hwsim {

/// Cycle estimate for one op.
struct OpTiming {
  std::string name;
  bnn::OpClass op_class = bnn::OpClass::kOther;
  std::uint64_t cycles = 0;
};

/// Whole-model baseline timing with the per-class aggregation used by
/// Table I's execution-time column.
struct ModelTiming {
  std::vector<OpTiming> ops;
  std::map<bnn::OpClass, std::uint64_t> cycles_by_class;
  std::uint64_t total_cycles = 0;

  void add(OpTiming op);
  double fraction(bnn::OpClass op_class) const;
};

/// Analytic cycle model for the non-binary ops (stem, classifier,
/// normalization/activation): throughput-limited compute plus DRAM
/// bandwidth for their parameter traffic.
std::uint64_t analytic_op_cycles(const bnn::OpRecord& op,
                                 const CpuParams& cpu);

/// Baseline timing of every op in a model (binary convs simulated,
/// everything else analytic).
ModelTiming time_model_baseline(const std::vector<bnn::OpRecord>& ops,
                                const CpuParams& cpu = {},
                                const SamplingParams& sampling = {});

/// Per-3x3-layer variant comparison.
struct LayerComparison {
  std::string name;
  std::uint64_t baseline_cycles = 0;
  std::uint64_t sw_cycles = 0;
  std::uint64_t hw_cycles = 0;
  double sw_slowdown() const;  ///< sw / baseline (> 1 is slower)
  double hw_speedup() const;   ///< baseline / hw (> 1 is faster)
  LayerSimResult baseline_detail;
  LayerSimResult sw_detail;
  LayerSimResult hw_detail;
};

/// The full Sec VI performance experiment.
struct SpeedupReport {
  std::vector<LayerComparison> conv3x3;
  std::uint64_t other_cycles = 0;  ///< all non-3x3 ops (variant-invariant)
  std::uint64_t total_baseline = 0;
  std::uint64_t total_sw = 0;
  std::uint64_t total_hw = 0;

  double model_sw_slowdown() const;   ///< paper: 1.47x
  double model_hw_speedup() const;    ///< paper: 1.35x
  double conv3x3_sw_slowdown() const;
  double conv3x3_hw_speedup() const;
};

/// Run the three variants over every op of a compressed model's
/// artifact view (compress/model_view.h): each 3x3 binary conv is
/// simulated from its block's code-length vector, everything else from
/// the op records. The simulator consumes compression artifacts only —
/// it never runs (or re-runs) a compression pass, whether the view is
/// backed by an Engine's block_streams() or by a memory-mapped BKCM
/// container (compress::MappedBkcm). The view's borrowed artifacts must
/// outlive the call, nothing more.
SpeedupReport compare_model(const compress::CompressedModelView& view,
                            const CpuParams& cpu = {},
                            const DecoderParams& decoder = {},
                            const SamplingParams& sampling = {});

/// Cycle-for-cycle equality of two speedup reports: layer names and
/// every integer cycle field (the totals fix the derived ratios, so
/// this is exact). Used by the bench/test self-checks that pin
/// view-backed against recompression-backed or container-backed runs.
bool cycles_identical(const SpeedupReport& a, const SpeedupReport& b);

/// StreamInfo borrowing the code-length vector the compression pass
/// already computed (KernelCompression::code_lengths) — nothing is
/// re-derived; `compression` must outlive the result. CheckError when
/// the artifact carries no lengths.
StreamInfo stream_info_for(const compress::KernelCompression& compression);

/// Same, over one block of an artifact view.
StreamInfo stream_info_for(const compress::BlockStreamView& block);

}  // namespace bkc::hwsim
